//! Serving-layer invariants:
//!
//! 1. responses are bit-identical with the plan cache on or off and
//!    with any batching factor (and match the sequential oracle);
//! 2. graceful drain loses nothing — every accepted request resolves,
//!    and the books balance (accepted = completed + shed + expired);
//! 3. shedding only ever displaces strictly-lower-priority work.

use dwt::{dwt2d, Boundary, FilterBank, Matrix};
use proptest::prelude::*;
use wserv::sim::{run_sim, CostModel};
use wserv::{
    AdmissionQueue, Admit, DecomposeRequest, Entry, Priority, Rejection, ServiceConfig,
    WaveletService,
};

fn image(n: usize, salt: u64) -> Matrix {
    Matrix::from_fn(n, n, |r, c| {
        ((r as u64 * 31 + c as u64 * 17 + salt * 7) % 61) as f64 - 30.0
    })
}

/// A deterministic open-loop stream over a small shape pool.
fn stream(n_reqs: usize, seed: u64, rate: f64) -> Vec<(f64, DecomposeRequest)> {
    let sizes = [8usize, 16, 32];
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    let mut t = 0.0;
    let mut out = Vec::with_capacity(n_reqs);
    for _ in 0..n_reqs {
        let u = ((next() >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
        t += -u.ln() / rate; // exponential inter-arrival
        let size = sizes[(next() % sizes.len() as u64) as usize];
        let levels = 1 + (next() % 2) as usize;
        let prio = Priority::ALL[(next() % 3) as usize];
        let req = DecomposeRequest::new(image(size, next() % 97), FilterBank::haar(), levels)
            .with_priority(prio);
        out.push((t, req));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Caching and batching are pure execution strategies: the pyramids
    /// the service returns are bit-identical across {cache on, cache
    /// off} x {batch 1, batch 8}, and equal to the sequential oracle.
    #[test]
    fn responses_bit_identical_across_cache_and_batch(seed in 0u64..1_000_000) {
        let arrivals = stream(40, seed, 5_000.0);
        let cost = CostModel::default();
        let base = ServiceConfig::default()
            .with_shards(2)
            .with_queue_capacity(256); // ample: no shedding, pure identity check
        let configs = [
            base.clone().with_cache_capacity(8).with_max_batch(8),
            base.clone().with_cache_capacity(0).with_max_batch(8),
            base.clone().with_cache_capacity(8).with_max_batch(1),
            base.clone().with_cache_capacity(0).with_max_batch(1),
        ];
        let runs: Vec<_> = configs
            .iter()
            .map(|c| run_sim(c, &cost, arrivals.clone()))
            .collect();
        for (i, (_, req)) in arrivals.iter().enumerate() {
            let oracle =
                dwt2d::decompose(&req.image, &req.bank, req.levels, Boundary::Periodic).unwrap();
            for run in &runs {
                let resp = run.outcomes[i].as_ref().expect("uncontended run completes all");
                prop_assert_eq!(&resp.pyramid, &oracle);
            }
        }
        // The batching run really batched and the cache really hit —
        // otherwise the identity above is vacuous.
        prop_assert!(runs[0].metrics.cache_hit_rate() > 0.0);
        prop_assert!(runs[1].metrics.cache_hit_rate() == 0.0);
        prop_assert!(runs[2].metrics.mean_batch_occupancy() == 1.0);
    }

    /// The same stream replayed through the simulator twice produces
    /// identical outcomes and identical latency statistics.
    #[test]
    fn simulation_is_deterministic(seed in 0u64..1_000_000) {
        let cfg = ServiceConfig::default().with_shards(3).with_queue_capacity(4);
        let cost = CostModel::default();
        let a = run_sim(&cfg, &cost, stream(60, seed, 50_000.0));
        let b = run_sim(&cfg, &cost, stream(60, seed, 50_000.0));
        prop_assert_eq!(a.makespan_s, b.makespan_s);
        prop_assert_eq!(a.metrics.completed(), b.metrics.completed());
        prop_assert_eq!(
            a.metrics.latency_quantile(0.95),
            b.metrics.latency_quantile(0.95)
        );
        for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
            match (x, y) {
                (Ok(rx), Ok(ry)) => {
                    prop_assert_eq!(&rx.pyramid, &ry.pyramid);
                    prop_assert_eq!(rx.wait_s, ry.wait_s);
                    prop_assert_eq!(rx.service_s, ry.service_s);
                }
                (Err(ex), Err(ey)) => prop_assert_eq!(ex, ey),
                _ => prop_assert!(false, "outcome kind diverged between replays"),
            }
        }
    }

    /// Accounting closes under overload: every submitted request gets
    /// exactly one outcome, and accepted = completed + shed + expired.
    #[test]
    fn books_balance_under_overload(seed in 0u64..1_000_000) {
        let cfg = ServiceConfig::default().with_shards(2).with_queue_capacity(3);
        // Saturating rate so shedding and queue-full rejections occur.
        let run = run_sim(&cfg, &CostModel::default(), stream(80, seed, 200_000.0));
        prop_assert_eq!(run.outcomes.len(), 80);
        let ok = run.outcomes.iter().filter(|o| o.is_ok()).count() as u64;
        let shed = run
            .outcomes
            .iter()
            .filter(|o| matches!(o, Err(Rejection::Shed { .. })))
            .count() as u64;
        prop_assert_eq!(ok, run.metrics.completed());
        prop_assert_eq!(run.metrics.accepted(), ok + shed);
        prop_assert_eq!(shed, run.metrics.rejected(wserv::RejectKind::Shed));
    }

    /// Pure admission-queue property: a shed victim's class is always
    /// strictly below the displacing arrival's, and `QueueFull` is only
    /// returned when nothing strictly lower is queued.
    #[test]
    fn shedding_only_hits_strictly_lower_priority(
        capacity in 1usize..6,
        arrivals in prop::collection::vec(0usize..3, 1..60),
    ) {
        let mut q: AdmissionQueue<usize> = AdmissionQueue::new(capacity);
        let mut queued: Vec<Priority> = Vec::new(); // mirror of queue contents
        let bank = FilterBank::haar();
        for (i, &p) in arrivals.iter().enumerate() {
            let priority = Priority::ALL[p];
            let entry = Entry {
                id: i as u64,
                arrival: i as f64,
                req: DecomposeRequest::new(Matrix::zeros(8, 8), bank.clone(), 1)
                    .with_priority(priority),
                attempts: 0,
                tag: i,
            };
            match q.admit(i as f64, entry) {
                Admit::Accepted => queued.push(priority),
                Admit::AcceptedShedding(victim) => {
                    prop_assert!(
                        victim.req.priority < priority,
                        "shed victim {:?} not strictly below arrival {:?}",
                        victim.req.priority,
                        priority
                    );
                    let pos = queued
                        .iter()
                        .position(|&x| x == victim.req.priority)
                        .expect("victim must have been queued");
                    queued.remove(pos);
                    queued.push(priority);
                }
                Admit::Rejected(_, Rejection::QueueFull { .. }) => {
                    prop_assert!(
                        queued.iter().all(|&x| x >= priority),
                        "QueueFull returned while strictly lower work was queued"
                    );
                }
                Admit::Rejected(_, other) => {
                    prop_assert!(false, "unexpected rejection {:?}", other)
                }
            }
            prop_assert!(queued.len() <= capacity);
        }
    }
}

/// Live-server drain invariant: submit a burst, shut down, and require
/// that every handle resolves to exactly one outcome with the ledger
/// balanced. (Not a proptest: it exercises real threads and wall time.)
#[test]
fn graceful_drain_resolves_every_accepted_request() {
    let service = WaveletService::start(
        ServiceConfig::default()
            .with_shards(3)
            .with_queue_capacity(16)
            .with_cache_capacity(4)
            .with_max_batch(4),
    );
    let mut handles = Vec::new();
    let mut door_rejects = 0u64;
    for i in 0..120u64 {
        let size = [8usize, 16, 32][(i % 3) as usize];
        let req = DecomposeRequest::new(image(size, i), FilterBank::haar(), 1)
            .with_priority(Priority::ALL[(i % 3) as usize]);
        match service.submit(req) {
            Ok(h) => handles.push((i, size, h)),
            Err(_) => door_rejects += 1,
        }
    }
    let snapshot = service
        .shutdown()
        .expect("no worker died in a fault-free run");
    let mut ok = 0u64;
    let mut shed = 0u64;
    for (i, size, h) in handles {
        match h.wait() {
            Ok(resp) => {
                ok += 1;
                let req_img = image(size, i);
                let oracle =
                    dwt2d::decompose(&req_img, &FilterBank::haar(), 1, Boundary::Periodic).unwrap();
                assert_eq!(resp.pyramid, oracle, "request {i} corrupted in flight");
                assert!(resp.batch_size >= 1);
            }
            Err(Rejection::Shed { by }) => {
                shed += 1;
                assert!(by > Priority::Batch, "only a higher class displaces work");
            }
            Err(other) => panic!("unexpected terminal outcome: {other:?}"),
        }
    }
    assert_eq!(ok, snapshot.completed());
    assert_eq!(snapshot.accepted(), ok + shed);
    assert_eq!(shed, snapshot.rejected(wserv::RejectKind::Shed));
    assert_eq!(
        door_rejects,
        snapshot.rejected(wserv::RejectKind::QueueFull)
            + snapshot.rejected(wserv::RejectKind::Draining)
    );
    // The cache did its job across the drain.
    assert!(snapshot.cache_hit_rate() > 0.0);
    assert!(snapshot.budget_report().is_some());
}
