//! Cross-crate integration: every implementation of the Mallat
//! decomposition — sequential, rayon-parallel, the coarse-grain MIMD
//! simulation and both fine-grain SIMD algorithms — must agree on a real
//! synthetic scene.

use dwt::{dwt2d, parallel, Boundary, FilterBank};
use dwt_mimd::{run_mimd_dwt, MimdDwtConfig};
use imagery::{landsat_scene, SceneParams};
use maspar::{dilution, systolic, SimdMachine};
use paragon::{MachineSpec, Mapping, SpmdConfig};

#[test]
fn all_five_implementations_agree() {
    let image = landsat_scene(64, 64, SceneParams::default());
    let bank = FilterBank::daubechies(4).unwrap();
    let levels = 2;

    let reference = dwt2d::decompose(&image, &bank, levels, Boundary::Periodic).unwrap();

    // 1. rayon shared-memory parallel: bit-identical.
    let par = parallel::decompose_par(&image, &bank, levels, Boundary::Periodic).unwrap();
    assert_eq!(par, reference, "rayon parallel differs");

    // 2. coarse-grain MIMD on the simulated Paragon: bit-identical.
    let scfg = SpmdConfig::new(MachineSpec::paragon(), 8, Mapping::Snake);
    let mimd = run_mimd_dwt(&scfg, &MimdDwtConfig::tuned(bank.clone(), levels), &image).unwrap();
    assert_eq!(mimd.pyramid, reference, "MIMD simulation differs");

    // 3. SIMD systolic: bit-identical.
    let mut m = SimdMachine::mp2_16k();
    let sys = systolic::decompose(&mut m, &image, &bank, levels).unwrap();
    assert_eq!(sys, reference, "systolic differs");

    // 4. SIMD dilution (à trous): identical to round-off.
    let mut m = SimdMachine::mp2_16k();
    let dil = dilution::decompose(&mut m, &image, &bank, levels).unwrap();
    let err = reference.approx.max_abs_diff(&dil.approx).unwrap();
    assert!(err < 1e-10, "dilution approx differs by {err}");
    for (a, b) in reference.detail.iter().zip(&dil.detail) {
        assert!(a.lh.max_abs_diff(&b.lh).unwrap() < 1e-10);
        assert!(a.hl.max_abs_diff(&b.hl).unwrap() < 1e-10);
        assert!(a.hh.max_abs_diff(&b.hh).unwrap() < 1e-10);
    }
}

#[test]
fn reconstruction_inverts_every_path() {
    let image = landsat_scene(64, 64, SceneParams::default());
    for taps in [2usize, 8] {
        let bank = FilterBank::daubechies(taps).unwrap();
        let pyr = parallel::decompose_par(&image, &bank, 3, Boundary::Periodic).unwrap();
        let seq_rec = dwt2d::reconstruct(&pyr, &bank, Boundary::Periodic).unwrap();
        let par_rec = parallel::reconstruct_par(&pyr, &bank, Boundary::Periodic).unwrap();
        assert!(image.max_abs_diff(&seq_rec).unwrap() < 1e-9);
        assert!(image.max_abs_diff(&par_rec).unwrap() < 1e-9);
    }
}

#[test]
fn mimd_works_across_filters_levels_and_rank_counts() {
    let image = landsat_scene(48, 64, SceneParams::default());
    for taps in [2usize, 4] {
        let bank = FilterBank::daubechies(taps).unwrap();
        let reference = dwt2d::decompose(&image, &bank, 2, Boundary::Periodic).unwrap();
        for p in [1usize, 3, 6] {
            let scfg = SpmdConfig::new(MachineSpec::paragon(), p, Mapping::Snake);
            let run = run_mimd_dwt(&scfg, &MimdDwtConfig::tuned(bank.clone(), 2), &image).unwrap();
            assert_eq!(run.pyramid, reference, "D{taps} P={p}");
        }
    }
}

#[test]
fn t3d_and_workstation_profiles_also_run_the_dwt() {
    let image = landsat_scene(32, 32, SceneParams::default());
    let bank = FilterBank::haar();
    let reference = dwt2d::decompose(&image, &bank, 1, Boundary::Periodic).unwrap();
    for machine in [MachineSpec::t3d(), MachineSpec::dec5000()] {
        let nranks = if machine.topology.nodes() > 1 { 4 } else { 1 };
        let scfg = SpmdConfig::new(machine, nranks, Mapping::RowMajor);
        let run = run_mimd_dwt(&scfg, &MimdDwtConfig::tuned(bank.clone(), 1), &image).unwrap();
        assert_eq!(run.pyramid, reference);
        assert!(run.parallel_time() > 0.0);
    }
}
