//! Property-based tests over the core invariants, across crates.

use dwt::{compress, dwt1d, dwt2d, Boundary, FilterBank, Matrix};
use proptest::prelude::*;
use workload::centroid::{similarity, Centroid};
use workload::oracle::{schedule, schedule_finite};
use workload::{OpClass, TraceBuilder};

fn arb_filter() -> impl Strategy<Value = FilterBank> {
    prop_oneof![
        Just(FilterBank::daubechies(2).unwrap()),
        Just(FilterBank::daubechies(4).unwrap()),
        Just(FilterBank::daubechies(6).unwrap()),
        Just(FilterBank::daubechies(8).unwrap()),
        Just(FilterBank::daubechies(10).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Perfect reconstruction for arbitrary signals, filters and depths.
    #[test]
    fn dwt1d_perfect_reconstruction(
        bank in arb_filter(),
        data in prop::collection::vec(-1e3f64..1e3, 64),
        levels in 1usize..=3,
    ) {
        let dec = dwt1d::decompose(&data, &bank, levels, Boundary::Periodic).unwrap();
        let rec = dwt1d::reconstruct(&dec, &bank, Boundary::Periodic).unwrap();
        for (a, b) in data.iter().zip(&rec) {
            // Tabulated filter taps carry ~15 digits, so reconstruction
            // is exact relative to the signal magnitude.
            prop_assert!((a - b).abs() < 1e-7 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    /// Parseval: coefficient energy equals signal energy (periodic).
    #[test]
    fn dwt1d_energy_preservation(
        bank in arb_filter(),
        data in prop::collection::vec(-1e2f64..1e2, 32),
    ) {
        let dec = dwt1d::decompose(&data, &bank, 2, Boundary::Periodic).unwrap();
        let sig: f64 = data.iter().map(|v| v * v).sum();
        prop_assert!((dec.energy() - sig).abs() <= 1e-8 * sig.max(1.0));
    }

    /// 2-D round trip on arbitrary small images.
    #[test]
    fn dwt2d_round_trip(
        bank in arb_filter(),
        seed in 0u64..1000,
        rows in 1usize..=2,
        cols in 1usize..=2,
    ) {
        // 32-multiple sides keep level 2 at >= 16 samples, enough for
        // the longest built-in filter (D10).
        let (r, c) = (32 * rows, 32 * cols);
        let img = Matrix::from_fn(r, c, |i, j| {
            (((i * 31 + j * 17) as u64 ^ seed) % 255) as f64
        });
        let pyr = dwt2d::decompose(&img, &bank, 2, Boundary::Periodic).unwrap();
        let rec = dwt2d::reconstruct(&pyr, &bank, Boundary::Periodic).unwrap();
        prop_assert!(img.max_abs_diff(&rec).unwrap() < 1e-8);
    }

    /// Hard thresholding never increases coefficient energy, and the
    /// kept count decreases monotonically with the threshold.
    #[test]
    fn thresholding_monotonicity(t1 in 0.0f64..10.0, t2 in 0.0f64..10.0) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let img = Matrix::from_fn(16, 16, |i, j| ((i * 7 + j * 13) % 29) as f64 - 14.0);
        let bank = FilterBank::daubechies(4).unwrap();
        let base = dwt2d::decompose(&img, &bank, 2, Boundary::Periodic).unwrap();
        let mut a = base.clone();
        let mut b = base.clone();
        let sa = compress::threshold_details(&mut a, compress::Threshold::Hard(lo));
        let sb = compress::threshold_details(&mut b, compress::Threshold::Hard(hi));
        prop_assert!(sb.kept_detail_coeffs <= sa.kept_detail_coeffs);
        prop_assert!(a.energy() <= base.energy() + 1e-9);
        prop_assert!(b.energy() <= a.energy() + 1e-9);
    }

    /// Similarity is a bounded, symmetric, identity-respecting measure.
    #[test]
    fn similarity_metric_properties(
        a in prop::array::uniform5(0.0f64..100.0),
        b in prop::array::uniform5(0.0f64..100.0),
    ) {
        let ca = Centroid(a);
        let cb = Centroid(b);
        let s = similarity(&ca, &cb);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&s), "similarity {s}");
        prop_assert!((s - similarity(&cb, &ca)).abs() < 1e-12);
        prop_assert!(similarity(&ca, &ca) == 0.0);
    }

    /// Oracle schedule: levels respect dependencies and PIs account for
    /// every instruction; a width-limited schedule is never shorter than
    /// the oracle's.
    #[test]
    fn oracle_schedule_invariants(
        structure in prop::collection::vec((0usize..5, 0usize..4), 10..200),
        width in 1usize..8,
    ) {
        let mut b = TraceBuilder::new();
        for (i, &(class, ndeps)) in structure.iter().enumerate() {
            let class = OpClass::ALL[class];
            let deps: Vec<u32> = (0..ndeps.min(i))
                .map(|k| (i - 1 - k) as u32)
                .collect();
            b.emit(class, &deps);
        }
        let trace = b.build();
        let s = schedule(&trace);
        // Dependencies strictly precede their consumers.
        for (i, ins) in trace.instrs.iter().enumerate() {
            for &d in &ins.deps {
                prop_assert!(s.levels[d as usize] < s.levels[i]);
            }
        }
        // PIs cover all instructions exactly once.
        let total: u32 = s.pis.iter().flat_map(|pi| pi.iter()).sum();
        prop_assert_eq!(total as usize, trace.len());
        // Finite width cannot beat the dataflow bound.
        let f = schedule_finite(&trace, width);
        prop_assert!(f.cycles >= s.cpl());
        prop_assert!(f.cycles <= trace.len());
    }

    /// CIC deposition conserves charge for arbitrary particles.
    #[test]
    fn deposit_conserves_charge(
        positions in prop::collection::vec(
            prop::array::uniform3(0.0f64..8.0), 1..100),
        charge in -5.0f64..5.0,
    ) {
        let particles: Vec<pic::Particle> = positions
            .into_iter()
            .map(|pos| pic::Particle { pos, vel: [0.0; 3] })
            .collect();
        let mut rho = pic::Grid3::zeros(8);
        pic::deposit::deposit(&mut rho, &particles, charge);
        let expect = charge * particles.len() as f64;
        prop_assert!((rho.total() - expect).abs() < 1e-9 * (1.0 + expect.abs()));
    }

    /// Barnes-Hut with theta=0 equals direct summation for any layout.
    #[test]
    fn barnes_hut_theta_zero_exact(
        coords in prop::collection::vec(prop::array::uniform2(-10.0f64..10.0), 2..40),
    ) {
        let bodies: Vec<nbody::Body> = coords
            .into_iter()
            .map(|pos| nbody::Body::at(pos, 1.0))
            .collect();
        let (tree, _) = nbody::QuadTree::build(&bodies);
        let p = nbody::ForceParams {
            theta: 0.0,
            ..Default::default()
        };
        for i in 0..bodies.len().min(5) {
            let (bh, _) = nbody::tree_force(&tree, &bodies, i, &p);
            let ex = nbody::direct_force(&bodies, i, &p);
            prop_assert!((bh[0] - ex[0]).abs() < 1e-6);
            prop_assert!((bh[1] - ex[1]).abs() < 1e-6);
        }
    }

    /// Costzones always yields a complete, disjoint partition.
    #[test]
    fn costzones_partition_properties(
        n in 2usize..200,
        zones in 1usize..16,
        seed in 0u64..100,
    ) {
        let mut bodies = nbody::galaxy::two_galaxies(n, seed);
        for (i, b) in bodies.iter_mut().enumerate() {
            b.cost = 1 + (i as u64 % 37);
        }
        let (tree, _) = nbody::QuadTree::build(&bodies);
        let partition = nbody::costzones::costzones(&tree, &bodies, zones);
        prop_assert_eq!(partition.len(), zones);
        let mut seen: Vec<u32> = partition.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expect: Vec<u32> = (0..n as u32).collect();
        prop_assert_eq!(seen, expect);
    }
}
