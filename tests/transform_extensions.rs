//! Cross-validation of the transform extensions (SWT, packets, lifting)
//! against each other and the core Mallat transform on real scenes.

use dwt::packets::{best_basis, decompose_full, reconstruct as packet_rec, PacketNode};
use dwt::{dwt2d, lifting, swt, Boundary, FilterBank};
use imagery::{landsat_scene, SceneParams};

fn scene(n: usize) -> dwt::Matrix {
    landsat_scene(n, n, SceneParams::default())
}

#[test]
fn swt_samples_match_mallat_on_a_real_scene() {
    let img = scene(64);
    let bank = FilterBank::daubechies(4).unwrap();
    let undecimated = swt::decompose(&img, &bank, 2).unwrap();
    let mallat = dwt2d::decompose(&img, &bank, 2, Boundary::Periodic).unwrap();
    for (k, bands) in mallat.detail.iter().enumerate() {
        let s = &undecimated.levels[k];
        assert!(
            swt::sample_band(&s.hh, k + 1)
                .max_abs_diff(&bands.hh)
                .unwrap()
                < 1e-10
        );
    }
}

#[test]
fn every_transform_inverts_on_the_scene() {
    let img = scene(64);
    let bank = FilterBank::daubechies(8).unwrap();

    let mallat = dwt2d::decompose(&img, &bank, 3, Boundary::Periodic).unwrap();
    assert!(
        img.max_abs_diff(&dwt2d::reconstruct(&mallat, &bank, Boundary::Periodic).unwrap())
            .unwrap()
            < 1e-8
    );

    let stationary = swt::decompose(&img, &bank, 2).unwrap();
    assert!(
        img.max_abs_diff(&swt::reconstruct(&stationary, &bank).unwrap())
            .unwrap()
            < 1e-8
    );

    let packets = decompose_full(&img, &bank, 2, Boundary::Periodic).unwrap();
    assert!(
        img.max_abs_diff(&packet_rec(&packets, &bank, Boundary::Periodic).unwrap())
            .unwrap()
            < 1e-8
    );

    for kind in [lifting::LiftingKind::Cdf97, lifting::LiftingKind::LeGall53] {
        let pyr = lifting::decompose(&img, kind, 3).unwrap();
        assert!(
            img.max_abs_diff(&lifting::reconstruct(&pyr, kind).unwrap())
                .unwrap()
                < 1e-8,
            "{kind:?}"
        );
    }
}

#[test]
fn best_basis_is_at_least_as_compact_as_mallat() {
    // The Mallat tree is one admissible packet basis, so the best basis
    // can never have a higher entropy cost than it.
    let img = scene(64);
    let bank = FilterBank::daubechies(4).unwrap();
    let norm2 = img.energy();
    let (best, best_cost) = best_basis(&img, &bank, 3, Boundary::Periodic).unwrap();
    // Cost of the Mallat-shaped basis: decompose LL-only recursively.
    let pyr = dwt2d::decompose(&img, &bank, 3, Boundary::Periodic).unwrap();
    let mut mallat_cost = dwt::packets::entropy_cost(&pyr.approx, norm2);
    for bands in &pyr.detail {
        mallat_cost += dwt::packets::entropy_cost(&bands.lh, norm2);
        mallat_cost += dwt::packets::entropy_cost(&bands.hl, norm2);
        mallat_cost += dwt::packets::entropy_cost(&bands.hh, norm2);
    }
    assert!(
        best_cost <= mallat_cost + 1e-9,
        "best basis {best_cost} vs Mallat {mallat_cost}"
    );
    assert!(best.coefficients() == 64 * 64);
}

#[test]
fn cdf97_beats_d8_at_equal_coefficient_budget_on_the_scene() {
    // The JPEG 2000 filter should compress the remote-sensing scene at
    // least as well as the orthonormal D8 at the same keep fraction.
    let img = scene(128);
    let keep = 0.05;

    let bank = FilterBank::daubechies(8).unwrap();
    let mut d8 = dwt2d::decompose(&img, &bank, 4, Boundary::Periodic).unwrap();
    dwt::compress::compress_to_fraction(&mut d8, keep);
    let rec_d8 = dwt2d::reconstruct(&d8, &bank, Boundary::Periodic).unwrap();
    let psnr_d8 = dwt::compress::psnr(&img, &rec_d8, 255.0).unwrap();

    let mut p97 = lifting::decompose(&img, lifting::LiftingKind::Cdf97, 4).unwrap();
    dwt::compress::compress_to_fraction(&mut p97, keep);
    let rec_97 = lifting::reconstruct(&p97, lifting::LiftingKind::Cdf97).unwrap();
    let psnr_97 = dwt::compress::psnr(&img, &rec_97, 255.0).unwrap();

    // Both should produce usable imagery; 9/7 should be competitive
    // (within 1 dB) or better.
    assert!(psnr_d8 > 25.0, "D8 PSNR {psnr_d8}");
    assert!(
        psnr_97 > psnr_d8 - 1.0,
        "CDF 9/7 {psnr_97} dB vs D8 {psnr_d8} dB"
    );
}

#[test]
fn packet_tree_shapes_adapt_to_content() {
    let bank = FilterBank::haar();
    // Smooth scene: best basis should stay close to the Mallat shape
    // (few splits of detail bands). High-frequency checkerboard: the
    // detail branch must split.
    let smooth = dwt::Matrix::from_fn(32, 32, |r, c| (r + c) as f64);
    let (tree_smooth, _) = best_basis(&smooth, &bank, 2, Boundary::Periodic).unwrap();
    let checker = dwt::Matrix::from_fn(32, 32, |r, c| if (r + c) % 2 == 0 { 50.0 } else { -50.0 });
    let (tree_checker, _) = best_basis(&checker, &bank, 2, Boundary::Periodic).unwrap();
    // The checkerboard concentrates into a single HH packet: its best
    // basis is a split with (mostly) leaf children, while remaining a
    // valid representation either way.
    match (&tree_smooth, &tree_checker) {
        (PacketNode::Leaf(_), _) | (PacketNode::Split(_), _) => {}
    }
    let rec = packet_rec(&tree_checker, &bank, Boundary::Periodic).unwrap();
    assert!(checker.max_abs_diff(&rec).unwrap() < 1e-9);
}
