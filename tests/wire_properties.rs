//! Wire-protocol invariants:
//!
//! 1. the frame decoder never panics: arbitrary bytes produce either a
//!    decoded frame, a "need more bytes", or a *typed* [`WireError`] —
//!    nothing else, no matter the input;
//! 2. encode → decode is a bitwise round trip for frames, handshakes,
//!    requests, and responses (f64 payloads travel as IEEE-754 bit
//!    patterns, so NaN payloads and negative zeros survive);
//! 3. flipping any single bit of an encoded frame never yields a
//!    silently-accepted frame: the checksum (or a structural check)
//!    catches it with a typed error;
//! 4. progressive delivery is faithful: a header + plane sequence
//!    round-trips through real wire frames, reassembles bitwise equal
//!    to the monolithic response once every plane has arrived (lossless
//!    codec), and the client-visible error bound is monotone
//!    nonincreasing in planes received — in any arrival order.

use dwt::{dwt2d, Boundary, FilterBank, Matrix};
use dwt_mimd::CheckpointCodec;
use proptest::prelude::*;
use wserv::progressive::{pyramid_max_abs_diff, split_response, Reassembler};
use wserv::request::DecomposeResponse;
use wserv::wire::{
    decode_complete, decode_frame, decode_request, decode_response, decode_response_body,
    encode_frame, encode_progressive_header, encode_progressive_plane, encode_request,
    encode_response, Frame, FrameKind, ResponseBody, DEFAULT_MAX_PAYLOAD,
};
use wserv::{DecomposeRequest, Priority, Rejection, ServeResult};

fn kind(tag: u8) -> FrameKind {
    match tag % 6 {
        0 => FrameKind::Hello,
        1 => FrameKind::HelloAck,
        2 => FrameKind::Request,
        3 => FrameKind::Response,
        4 => FrameKind::Bye,
        _ => FrameKind::Cancel,
    }
}

fn image(n: usize, salt: u64) -> Matrix {
    Matrix::from_fn(n, n, |r, c| {
        ((r as u64 * 31 + c as u64 * 17 + salt * 7) % 61) as f64 - 30.5
    })
}

fn bank(tag: u8) -> FilterBank {
    match tag % 4 {
        0 => FilterBank::haar(),
        1 => FilterBank::daubechies(4).expect("D4 exists"),
        2 => FilterBank::cdf53(),
        _ => FilterBank::cdf97(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes through the incremental decoder: no panic, and
    /// every outcome is one of the three legal ones. The small
    /// `max_payload` exercises the `FrameTooLarge` guard.
    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(0u8..=255u8, 0..512),
        max in 0u32..4096,
    ) {
        match decode_frame(&bytes, max) {
            Ok(Some((frame, consumed))) => {
                prop_assert!(consumed <= bytes.len());
                prop_assert!(frame.payload.len() <= max as usize);
            }
            Ok(None) => {}  // legitimately incomplete
            Err(e) => {
                // Typed errors only; Display must not panic either.
                let _ = e.to_string();
            }
        }
        match decode_complete(&bytes, max) {
            Ok(frame) => prop_assert!(frame.payload.len() <= max as usize),
            Err(e) => { let _ = e.to_string(); }
        }
    }

    /// Arbitrary bytes *with* a valid magic prefix — deeper coverage of
    /// the header and checksum paths than fully random noise reaches.
    #[test]
    fn decoder_never_panics_on_magic_prefixed_bytes(
        tail in prop::collection::vec(0u8..=255u8, 0..256),
    ) {
        let mut bytes = b"WSRV".to_vec();
        bytes.extend_from_slice(&tail);
        match decode_frame(&bytes, DEFAULT_MAX_PAYLOAD) {
            Ok(Some((_, consumed))) => prop_assert!(consumed <= bytes.len()),
            Ok(None) => {}
            Err(e) => { let _ = e.to_string(); }
        }
    }

    /// encode → decode is bitwise for raw frames, both through the
    /// incremental decoder (with trailing garbage after the frame) and
    /// the complete-buffer decoder.
    #[test]
    fn frame_round_trips_bitwise(
        tag in 0u8..5,
        id in 0u64..u64::MAX,
        payload in prop::collection::vec(0u8..=255u8, 0..300),
        garbage in prop::collection::vec(0u8..=255u8, 0..16),
    ) {
        let frame = Frame::new(kind(tag), id, payload);
        let mut bytes = encode_frame(&frame).expect("small payload encodes");
        let framed_len = bytes.len();
        let (back, consumed) = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD)
            .expect("valid frame decodes")
            .expect("complete frame is not 'need more'");
        prop_assert_eq!(consumed, framed_len);
        prop_assert_eq!(&back, &frame);
        // Trailing bytes beyond the frame must not disturb the decode.
        bytes.extend_from_slice(&garbage);
        let (again, consumed) = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD)
            .expect("valid frame decodes with trailing bytes")
            .expect("complete frame is not 'need more'");
        prop_assert_eq!(consumed, framed_len);
        prop_assert_eq!(&again, &frame);
    }

    /// Any single-bit corruption of an encoded frame is caught: the
    /// decoder never silently accepts a flipped frame. (A flip in the
    /// length field may legally read as "need more bytes" or "frame too
    /// large"; what it must never do is return a *different* frame.)
    #[test]
    fn single_bit_flip_never_passes(
        tag in 0u8..5,
        id in 0u64..u64::MAX,
        payload in prop::collection::vec(0u8..=255u8, 1..128),
        flip_seed in 0usize..usize::MAX,
    ) {
        let frame = Frame::new(kind(tag), id, payload);
        let mut bytes = encode_frame(&frame).expect("small payload encodes");
        let bit = flip_seed % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        match decode_complete(&bytes, DEFAULT_MAX_PAYLOAD) {
            Ok(decoded) => panic!(
                "bit {} flipped yet decode produced kind {:?} id {}",
                bit, decoded.kind, decoded.id
            ),
            Err(e) => { let _ = e.to_string(); }
        }
    }

    /// Requests round-trip bitwise through the wire codec: geometry,
    /// filter taps, boundary mode, priority, and deadline all survive,
    /// and the image comes back bit-identical.
    #[test]
    fn request_round_trips_bitwise(
        size_tag in 0usize..3,
        bank_tag in 0u8..4,
        levels in 1usize..3,
        prio in 0usize..3,
        mode_tag in 0u8..3,
        salt in 0u64..1000,
        deadline in 0.0f64..=10.0,
        with_deadline in 0u8..2,
        id in 0u64..u64::MAX,
    ) {
        let n = [16usize, 32, 48][size_tag];
        let mode = match mode_tag {
            0 => Boundary::Periodic,
            1 => Boundary::Symmetric,
            _ => Boundary::Zero,
        };
        let mut req = DecomposeRequest::new(image(n, salt), bank(bank_tag), levels)
            .with_priority(Priority::ALL[prio])
            .with_mode(mode);
        if with_deadline == 1 {
            req = req.with_deadline(deadline);
        }
        let frame = encode_request(id, &req).expect("request encodes");
        prop_assert_eq!(frame.id, id);
        let back = decode_request(&frame).expect("encoded request decodes");
        prop_assert_eq!(back.levels, req.levels);
        prop_assert_eq!(back.mode, req.mode);
        prop_assert_eq!(back.priority, req.priority);
        prop_assert_eq!(
            back.deadline.map(f64::to_bits),
            req.deadline.map(f64::to_bits)
        );
        prop_assert_eq!(back.bank.name(), req.bank.name());
        let taps_back: Vec<u64> = back.bank.low().iter().map(|t| t.to_bits()).collect();
        let taps: Vec<u64> = req.bank.low().iter().map(|t| t.to_bits()).collect();
        prop_assert_eq!(taps_back, taps);
        prop_assert_eq!(back.image.rows(), req.image.rows());
        prop_assert_eq!(back.image.cols(), req.image.cols());
        let img_back: Vec<u64> = back.image.data().iter().map(|v| v.to_bits()).collect();
        let img: Vec<u64> = req.image.data().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(img_back, img);
    }

    /// Responses round-trip bitwise: a real pyramid (every plane, every
    /// level) and all the serving metadata, and every rejection variant.
    #[test]
    fn response_round_trips_bitwise(
        size_tag in 0usize..2,
        bank_tag in 0u8..4,
        levels in 1usize..3,
        salt in 0u64..1000,
        id in 0u64..u64::MAX,
        wait in 0.0f64..=1.0,
        service in 0.0f64..=1.0,
    ) {
        let n = [16usize, 32][size_tag];
        let b = bank(bank_tag);
        let pyramid = dwt2d::decompose(&image(n, salt), &b, levels, Boundary::Periodic)
            .expect("pool geometry is valid");
        let result: ServeResult = Ok(DecomposeResponse {
            pyramid,
            cache_hit: salt % 2 == 0,
            batch_size: 1 + (salt % 7) as usize,
            wait_s: wait,
            service_s: service,
            degraded: salt % 3 == 0,
            error_bound: if salt % 3 == 0 { 1e-3 } else { 0.0 },
        });
        let frame = encode_response(id, &result).expect("response encodes");
        let back = decode_response(&frame).expect("encoded response decodes");
        let (resp, orig) = match (&back, &result) {
            (Ok(a), Ok(b)) => (a, b),
            _ => panic!("Ok response must decode as Ok"),
        };
        prop_assert_eq!(resp.cache_hit, orig.cache_hit);
        prop_assert_eq!(resp.batch_size, orig.batch_size);
        prop_assert_eq!(resp.degraded, orig.degraded);
        prop_assert_eq!(resp.wait_s.to_bits(), orig.wait_s.to_bits());
        prop_assert_eq!(resp.service_s.to_bits(), orig.service_s.to_bits());
        prop_assert_eq!(resp.error_bound.to_bits(), orig.error_bound.to_bits());
        let planes = |p: &dwt::Pyramid| -> Vec<u64> {
            let mut out: Vec<u64> = p.approx.data().iter().map(|v| v.to_bits()).collect();
            for band in &p.detail {
                for m in [&band.lh, &band.hl, &band.hh] {
                    out.extend(m.data().iter().map(|v| v.to_bits()));
                }
            }
            out
        };
        prop_assert_eq!(planes(&resp.pyramid), planes(&orig.pyramid));
    }

    /// Every rejection variant survives the wire with its payload.
    #[test]
    fn rejection_round_trips(variant in 0usize..7, a in 0u64..100, x in 0.0f64..=5.0) {
        let rejection = match variant {
            0 => Rejection::QueueFull { depth: a as usize },
            1 => Rejection::Shed { by: Priority::ALL[(a % 3) as usize] },
            2 => Rejection::DeadlineExpired { deadline: x, now: x + 1.0 },
            3 => Rejection::Invalid { detail: format!("detail {a}") },
            4 => Rejection::Draining,
            5 => Rejection::ShardFailed { shard: a as usize, restarts: (a % 5) as u32 },
            _ => Rejection::Requeued { attempts: (a % 5) as u32 },
        };
        let result: ServeResult = Err(rejection.clone());
        let frame = encode_response(7, &result).expect("rejection encodes");
        let back = decode_response(&frame).expect("encoded rejection decodes");
        match back {
            Err(r) => prop_assert_eq!(r, rejection),
            Ok(_) => panic!("rejection must decode as Err"),
        }
    }

    /// Progressive delivery is lossless-complete: split a real response
    /// with the lossless codec, push header and every plane through the
    /// byte-level frame codec, reassemble in a *shuffled* arrival
    /// order, and the result is bitwise identical to the monolithic
    /// response. Continuation flags must describe the sequence exactly.
    #[test]
    fn progressive_reassembly_matches_monolithic_bitwise(
        size_tag in 0usize..2,
        bank_tag in 0u8..4,
        levels in 1usize..4,
        salt in 0u64..1000,
        order_seed in 0u64..u64::MAX,
    ) {
        let n = [16usize, 32][size_tag];
        let resp = response_fixture(n, bank_tag, levels, salt);
        let (header, planes) = split_response(&resp, CheckpointCodec::Raw)
            .expect("lossless split");
        prop_assert_eq!(planes.len(), 3 * levels);

        // Byte-level round trip of the whole sequence.
        let hf = encode_progressive_header(9, &header).expect("header encodes");
        prop_assert!(hf.more_follows());
        let hf_bytes = encode_frame(&hf).expect("header frame encodes");
        let hf_back = decode_complete(&hf_bytes, DEFAULT_MAX_PAYLOAD).expect("header decodes");
        let header_back = match decode_response_body(&hf_back).expect("header body decodes") {
            ResponseBody::Header(h) => h,
            other => panic!("header frame decoded as {other:?}"),
        };
        let mut planes_back = Vec::new();
        for (i, p) in planes.iter().enumerate() {
            let more = i + 1 < planes.len();
            let pf = encode_progressive_plane(9, p, more).expect("plane encodes");
            prop_assert_eq!(pf.more_follows(), more);
            let pf_bytes = encode_frame(&pf).expect("plane frame encodes");
            let pf_back =
                decode_complete(&pf_bytes, DEFAULT_MAX_PAYLOAD).expect("plane decodes");
            match decode_response_body(&pf_back).expect("plane body decodes") {
                ResponseBody::Plane(q) => {
                    prop_assert_eq!(&q, p);
                    planes_back.push(q);
                }
                other => panic!("plane frame decoded as {other:?}"),
            }
        }

        // Reassemble in a shuffled arrival order.
        shuffle(&mut planes_back, order_seed);
        let mut r = Reassembler::new(header_back).expect("header is coherent");
        for p in &planes_back {
            r.apply(p).expect("plane applies");
        }
        prop_assert!(r.complete());
        prop_assert_eq!(r.bound().to_bits(), resp.error_bound.to_bits());
        let got = r.into_response();
        prop_assert_eq!(
            pyramid_max_abs_diff(&got.pyramid, &resp.pyramid),
            Some(0.0)
        );
        prop_assert_eq!(&got.pyramid, &resp.pyramid);
    }

    /// The client-visible error bound is monotone nonincreasing in
    /// planes received, whatever the arrival order and however often a
    /// plane is replayed — and it starts at the header's declared
    /// bound.
    #[test]
    fn progressive_bound_is_monotone_nonincreasing(
        size_tag in 0usize..2,
        bank_tag in 0u8..4,
        levels in 1usize..3,
        salt in 0u64..1000,
        threshold in 0.0f64..0.5,
        step in 0.0f64..0.5,
        order_seed in 0u64..u64::MAX,
    ) {
        let n = [16usize, 32][size_tag];
        let resp = response_fixture(n, bank_tag, levels, salt);
        let codec = CheckpointCodec::WaveletQuant { threshold, step };
        let (header, planes) = split_response(&resp, codec).expect("lossy split");
        let base = header.base_error_bound;
        let declared = header.bound_after;
        let mut replayed: Vec<_> = planes.clone();
        replayed.extend(planes.iter().cloned());
        shuffle(&mut replayed, order_seed);

        let mut r = Reassembler::new(header).expect("header is coherent");
        prop_assert_eq!(r.bound(), base + declared);
        let mut prev = r.bound();
        for p in &replayed {
            r.apply(p).expect("plane applies");
            let now = r.bound();
            prop_assert!(
                now <= prev,
                "bound rose from {prev} to {now} at seq {}",
                p.seq
            );
            prev = now;
        }
        prop_assert!(r.complete());
        // All planes applied: only the codec's quantization error and
        // the degraded-mode base bound remain.
        prop_assert!(r.bound() <= base + codec.tolerance());
    }
}

/// A real decomposition wrapped in serving metadata (exact response:
/// `error_bound` 0, not degraded).
fn response_fixture(n: usize, bank_tag: u8, levels: usize, salt: u64) -> DecomposeResponse {
    let b = bank(bank_tag);
    let pyramid = dwt2d::decompose(&image(n, salt), &b, levels, Boundary::Periodic)
        .expect("fixture geometry is valid");
    DecomposeResponse {
        pyramid,
        cache_hit: false,
        batch_size: 1,
        wait_s: 0.25,
        service_s: 0.5,
        degraded: false,
        error_bound: 0.0,
    }
}

/// Deterministic Fisher–Yates driven by an LCG, so arrival order is a
/// pure function of the proptest seed.
fn shuffle<T>(v: &mut [T], mut seed: u64) {
    for i in (1..v.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        v.swap(i, j);
    }
}
