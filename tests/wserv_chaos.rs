//! Chaos invariants of the fault-tolerant serving layer.
//!
//! Under any seeded [`ShardFaultPlan`] — worker panics, permanent shard
//! crashes, stalls, poison requests — the serving layer must uphold:
//!
//! 1. **Exactly-once resolution.** Every accepted request terminates in
//!    exactly one outcome: a response (exact or bounded-error
//!    degraded), or a typed rejection. Nothing hangs, nothing is
//!    silently dropped, nothing resolves twice (the response cell
//!    debug-asserts single resolution).
//! 2. **Typed failures.** A worker death never surfaces as a
//!    caller-visible panic: supervised shards restart or fail over;
//!    unsupervised deaths become `ServiceError::WorkerPanicked` at
//!    shutdown with every stranded request resolved `ShardFailed`.
//! 3. **Deterministic replay.** The chaos simulator is a pure function
//!    of `(config, cost, stream)` — same seed, byte-identical run.
//! 4. **Asserted degradation.** A degraded response's detail planes
//!    deviate from the exact oracle by at most its carried
//!    `error_bound`; its LL plane is exact.

use dwt::engine::PlanShape;
use dwt::{dwt2d, Boundary, FilterBank, Matrix, Pyramid};
use proptest::prelude::*;
use wserv::sim::{run_chaos, run_sim, CostModel, SimReport};
use wserv::{
    DecomposeRequest, DegradedPolicy, Priority, RejectKind, Rejection, ServiceConfig, ServiceError,
    ShardFaultPlan, SupervisorPolicy, WaveletService,
};

fn image(n: usize, salt: u64) -> Matrix {
    Matrix::from_fn(n, n, |r, c| {
        ((r as u64 * 31 + c as u64 * 17 + salt * 7) % 61) as f64 - 30.0
    })
}

/// A deterministic open-loop stream over a small shape pool (the same
/// generator the serving property tests use).
fn stream(n_reqs: usize, seed: u64, rate: f64) -> Vec<(f64, DecomposeRequest)> {
    let sizes = [8usize, 16, 32];
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    let mut t = 0.0;
    let mut out = Vec::with_capacity(n_reqs);
    for _ in 0..n_reqs {
        let u = ((next() >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
        t += -u.ln() / rate;
        let size = sizes[(next() % sizes.len() as u64) as usize];
        let levels = 1 + (next() % 2) as usize;
        let prio = Priority::ALL[(next() % 3) as usize];
        let req = DecomposeRequest::new(image(size, next() % 97), FilterBank::haar(), levels)
            .with_priority(prio);
        out.push((t, req));
    }
    out
}

/// An `(image size, levels)` pair whose haar shape routes to `target`
/// out of `nshards` shards. Varies both axes: the shape hash's low bit
/// is a byte-parity, so size alone cannot reach every shard.
fn shape_on_shard(target: usize, nshards: usize) -> (usize, usize) {
    let bank = FilterBank::haar();
    (8..=256)
        .step_by(4)
        .flat_map(|size| [(size, 1usize), (size, 2)])
        .find(|&(size, levels)| {
            let shape = PlanShape::new(size, size, &bank, levels, Boundary::Periodic);
            wserv::shard::shard_of(&shape, nshards) == target
        })
        .expect("some (size, levels) pair routes to every shard")
}

fn oracle(req: &DecomposeRequest) -> Pyramid {
    dwt2d::decompose(&req.image, &req.bank, req.levels, req.mode).expect("valid request")
}

/// Assert a (possibly degraded) response pyramid against the exact
/// oracle: LL always exact, details within `bound`.
fn assert_within_bound(got: &Pyramid, exact: &Pyramid, bound: f64) {
    assert_eq!(got.approx, exact.approx, "LL plane must always be exact");
    for (g, e) in got.detail.iter().zip(exact.detail.iter()) {
        for (gp, ep) in [(&g.lh, &e.lh), (&g.hl, &e.hl), (&g.hh, &e.hh)] {
            for (a, b) in gp.data().iter().zip(ep.data().iter()) {
                assert!(
                    (a - b).abs() <= bound + 1e-12,
                    "detail coefficient {a} vs {b} exceeds the asserted bound {bound}"
                );
            }
        }
    }
}

fn assert_reports_identical(a: &SimReport, b: &SimReport) {
    assert_eq!(
        a.makespan_s, b.makespan_s,
        "makespan diverged between replays"
    );
    assert_eq!(a.metrics.completed(), b.metrics.completed());
    assert_eq!(a.metrics.restarts(), b.metrics.restarts());
    assert_eq!(a.metrics.requeued(), b.metrics.requeued());
    assert_eq!(a.metrics.quarantined(), b.metrics.quarantined());
    assert_eq!(a.metrics.degraded_served(), b.metrics.degraded_served());
    assert_eq!(a.metrics.failed_shards(), b.metrics.failed_shards());
    assert_eq!(
        a.metrics.latency_quantile(0.95),
        b.metrics.latency_quantile(0.95)
    );
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
        match (x, y) {
            (Ok(rx), Ok(ry)) => {
                assert_eq!(rx.pyramid, ry.pyramid, "response bits diverged");
                assert_eq!(rx.wait_s, ry.wait_s);
                assert_eq!(rx.service_s, ry.service_s);
                assert_eq!(rx.degraded, ry.degraded);
                assert_eq!(rx.error_bound, ry.error_bound);
            }
            (Err(ex), Err(ey)) => assert_eq!(ex, ey),
            _ => panic!("outcome kind diverged between replays"),
        }
    }
}

// ---------------------------------------------------------------------
// Live threaded driver
// ---------------------------------------------------------------------

/// Regression for the historical fatal `expect` on worker join: with
/// supervision disabled, a dead worker surfaces at shutdown as a typed
/// `ServiceError` — never a caller-visible panic — and every stranded
/// request resolves `ShardFailed`.
#[test]
fn unsupervised_worker_death_is_a_typed_shutdown_error() {
    let nshards = 2;
    let victim = 0;
    let (size, levels) = shape_on_shard(victim, nshards);
    let service = WaveletService::start(
        ServiceConfig::default()
            .with_shards(nshards)
            .with_max_batch(1)
            .with_supervisor(SupervisorPolicy::disabled())
            .with_faults(ShardFaultPlan::none().with_shard_crash(victim, 0)),
    );
    let handles: Vec<_> = (0..6u64)
        .map(|i| {
            service
                .submit(DecomposeRequest::new(
                    image(size, i),
                    FilterBank::haar(),
                    levels,
                ))
                .expect("queue has room")
        })
        .collect();
    // Give the worker a chance to pop a dispatch and die with it in
    // flight (the error path must hold either way).
    std::thread::sleep(std::time::Duration::from_millis(20));
    match service.shutdown() {
        Err(ServiceError::WorkerPanicked { shard }) => assert_eq!(shard, victim),
        Err(other) => panic!("wrong service error: {other:?}"),
        Ok(_) => panic!("a dead unsupervised worker must fail shutdown"),
    }
    for h in handles {
        match h.wait() {
            Err(Rejection::ShardFailed { shard, .. }) => assert_eq!(shard, victim),
            other => panic!("stranded request resolved {other:?}, want ShardFailed"),
        }
    }
}

/// A one-shot worker panic under supervision: the worker restarts, the
/// interrupted dispatch re-queues, and every request completes.
#[test]
fn supervisor_restarts_a_panicked_worker_without_losing_requests() {
    let nshards = 2;
    let victim = 1;
    let (size, levels) = shape_on_shard(victim, nshards);
    let service = WaveletService::start(
        ServiceConfig::default()
            .with_shards(nshards)
            .with_max_batch(1)
            .with_supervisor(SupervisorPolicy {
                max_restarts: 3,
                backoff_base_s: 2e-4,
                poll_s: 1e-4,
                ..SupervisorPolicy::default()
            })
            .with_faults(ShardFaultPlan::none().with_worker_panic(victim, 1)),
    );
    let handles: Vec<_> = (0..8u64)
        .map(|i| {
            (
                i,
                service
                    .submit(DecomposeRequest::new(
                        image(size, i),
                        FilterBank::haar(),
                        levels,
                    ))
                    .expect("queue has room"),
            )
        })
        .collect();
    let snapshot = service.shutdown().expect("supervised shutdown succeeds");
    for (i, h) in handles {
        let resp = h
            .wait()
            .unwrap_or_else(|r| panic!("request {i} lost: {r:?}"));
        assert_eq!(
            resp.pyramid,
            oracle(&DecomposeRequest::new(
                image(size, i),
                FilterBank::haar(),
                levels
            )),
            "request {i} corrupted across the restart"
        );
        assert!(!resp.degraded);
    }
    assert_eq!(snapshot.completed(), 8);
    assert_eq!(snapshot.restarts(), 1, "exactly one injected death");
    assert!(
        snapshot.requeued() >= 1,
        "the interrupted dispatch re-queued"
    );
    assert!(
        snapshot.shards[victim].lanes.fault_recovery > 0.0,
        "restart backoff and requeue must be charged to the FaultRecovery lane"
    );
    assert!(snapshot.failed_shards().is_empty());
}

/// A permanently crashing shard burns its restart budget, fails over,
/// and its work — in-flight, queued, and future — is served by the
/// ring survivor.
#[test]
fn restart_budget_exhaustion_fails_over_to_ring_survivors() {
    let nshards = 2;
    let victim = 0;
    let survivor = 1;
    let (size, levels) = shape_on_shard(victim, nshards);
    let service = WaveletService::start(
        ServiceConfig::default()
            .with_shards(nshards)
            .with_max_batch(4)
            .with_supervisor(SupervisorPolicy {
                max_restarts: 2,
                backoff_base_s: 2e-4,
                poll_s: 1e-4,
                ..SupervisorPolicy::default()
            })
            .with_faults(ShardFaultPlan::none().with_shard_crash(victim, 0)),
    );
    let first_wave: Vec<_> = (0..12u64)
        .map(|i| {
            (
                i,
                service
                    .submit(DecomposeRequest::new(
                        image(size, i),
                        FilterBank::haar(),
                        levels,
                    ))
                    .expect("queue has room"),
            )
        })
        .collect();
    // The crashed shard can never serve, so these resolve only after
    // failover re-routes them to the survivor — waiting is the
    // synchronization.
    for (i, h) in first_wave {
        match h.wait() {
            Ok(resp) => assert_eq!(
                resp.pyramid,
                oracle(&DecomposeRequest::new(
                    image(size, i),
                    FilterBank::haar(),
                    levels
                )),
                "failover corrupted request {i}"
            ),
            Err(Rejection::ShardFailed { shard, restarts }) => {
                assert_eq!(shard, victim);
                assert_eq!(restarts, 2);
            }
            Err(other) => panic!("request {i}: unexpected {other:?}"),
        }
    }
    // The shard is now marked failed: new work routes to the survivor.
    let late = service
        .submit(DecomposeRequest::new(
            image(size, 99),
            FilterBank::haar(),
            levels,
        ))
        .expect("failover routing admits to the survivor");
    let resp = late.wait().expect("survivor serves re-routed work");
    assert_eq!(
        resp.pyramid,
        oracle(&DecomposeRequest::new(
            image(size, 99),
            FilterBank::haar(),
            levels
        ))
    );
    let snapshot = service.shutdown().expect("supervised shutdown succeeds");
    assert_eq!(snapshot.failed_shards(), vec![victim]);
    assert_eq!(snapshot.restarts(), 2, "the whole budget was burned");
    assert!(snapshot.requeued() >= 1, "failover re-routed entries");
    assert!(snapshot.shards[survivor].completed > 0);
}

/// The poisoned-batch protocol: a request that panics execution is
/// quarantined (typed `Requeued` rejection) and its batchmates retry
/// solo and complete.
#[test]
fn poisoned_requests_quarantine_without_killing_batchmates() {
    let poisoned_id = 2u64;
    let service = WaveletService::start(
        ServiceConfig::default()
            .with_shards(1)
            .with_max_batch(4)
            .with_supervisor(SupervisorPolicy {
                poll_s: 1e-4,
                ..SupervisorPolicy::default()
            })
            .with_faults(ShardFaultPlan::none().with_poison(poisoned_id)),
    );
    let handles: Vec<_> = (0..6u64)
        .map(|i| {
            (
                i,
                service
                    .submit(DecomposeRequest::new(image(16, i), FilterBank::haar(), 1))
                    .expect("queue has room"),
            )
        })
        .collect();
    let snapshot = service
        .shutdown()
        .expect("quarantine never kills the service");
    for (i, h) in handles {
        match h.wait() {
            Ok(resp) => {
                assert_ne!(i, poisoned_id, "the poisoned request must not complete");
                assert_eq!(
                    resp.pyramid,
                    oracle(&DecomposeRequest::new(image(16, i), FilterBank::haar(), 1)),
                    "batchmate {i} corrupted by the quarantine retry"
                );
            }
            Err(Rejection::Requeued { attempts }) => {
                assert_eq!(i, poisoned_id, "only the poison is quarantined");
                assert!(attempts >= 1);
            }
            Err(other) => panic!("request {i}: unexpected {other:?}"),
        }
    }
    assert_eq!(snapshot.completed(), 5);
    assert_eq!(snapshot.quarantined(), 1);
    assert_eq!(snapshot.rejected(RejectKind::Requeued), 1);
    assert!(
        snapshot.failed_shards().is_empty(),
        "no worker died for a poison"
    );
}

/// Degraded-mode serving: under pressure, sub-interactive work gets a
/// bounded-error response (exact LL, thresholded/quantized details),
/// interactive work stays exact.
#[test]
fn degraded_mode_serves_bounded_error_under_pressure() {
    let policy = DegradedPolicy {
        threshold: 0.75,
        step: 0.5,
        queue_high_water: 0.0, // always under pressure: every dispatch degrades
    };
    let service = WaveletService::start(
        ServiceConfig::default()
            .with_shards(1)
            .with_max_batch(4)
            .with_degraded(policy),
    );
    let mut handles = Vec::new();
    for i in 0..8u64 {
        let prio = if i % 4 == 0 {
            Priority::Interactive
        } else {
            Priority::Batch
        };
        let req = DecomposeRequest::new(image(16, i), FilterBank::haar(), 2).with_priority(prio);
        handles.push((i, prio, service.submit(req).expect("queue has room")));
    }
    let snapshot = service.shutdown().expect("fault-free shutdown succeeds");
    let mut degraded_seen = 0;
    for (i, prio, h) in handles {
        let resp = h
            .wait()
            .unwrap_or_else(|r| panic!("request {i} lost: {r:?}"));
        let exact = oracle(&DecomposeRequest::new(image(16, i), FilterBank::haar(), 2));
        if prio == Priority::Interactive {
            assert!(!resp.degraded, "interactive work is never degraded");
            assert_eq!(resp.error_bound, 0.0);
            assert_eq!(resp.pyramid, exact);
        } else {
            assert!(
                resp.degraded,
                "sub-interactive work degrades under pressure"
            );
            assert_eq!(resp.error_bound, policy.error_bound());
            assert_within_bound(&resp.pyramid, &exact, resp.error_bound);
            degraded_seen += 1;
        }
    }
    assert_eq!(snapshot.degraded_served(), degraded_seen);
    assert!(degraded_seen > 0);
}

// ---------------------------------------------------------------------
// Deterministic chaos simulator
// ---------------------------------------------------------------------

/// With an empty fault plan the joint chaos event loop reproduces the
/// independent-shard simulator exactly.
#[test]
fn chaos_sim_with_empty_plan_matches_the_fault_free_sim() {
    let cfg = ServiceConfig::default()
        .with_shards(3)
        .with_queue_capacity(8);
    let cost = CostModel::default();
    let a = run_sim(&cfg, &cost, stream(80, 11, 100_000.0));
    let b = run_chaos(&cfg, &cost, stream(80, 11, 100_000.0));
    assert_reports_identical(&a, &b);
}

/// Simulated failover: a permanently crashed shard burns its budget,
/// its work re-routes, the recovery is charged to the FaultRecovery
/// lane, and the ledger still closes.
#[test]
fn chaos_sim_failover_reroutes_and_charges_fault_recovery() {
    let cfg = ServiceConfig::default()
        .with_shards(2)
        .with_queue_capacity(32)
        .with_supervisor(SupervisorPolicy {
            max_restarts: 2,
            ..SupervisorPolicy::default()
        })
        .with_faults(ShardFaultPlan::none().with_shard_crash(0, 0));
    let n = 60;
    let run = run_chaos(&cfg, &CostModel::default(), stream(n, 5, 50_000.0));
    assert_eq!(run.outcomes.len(), n);
    assert_eq!(run.metrics.failed_shards(), vec![0]);
    assert_eq!(run.metrics.restarts(), 2);
    assert!(run.metrics.requeued() > 0, "failover must re-route entries");
    assert!(
        run.metrics.shards[0].lanes.fault_recovery > 0.0,
        "restarts and requeues bill the FaultRecovery lane"
    );
    let ok = run.outcomes.iter().filter(|o| o.is_ok()).count() as u64;
    assert_eq!(ok, run.metrics.completed());
    assert!(ok > 0, "the survivor must serve re-routed work");
    // Exactness survives re-routing: responses match the oracle.
    let replay = stream(n, 5, 50_000.0);
    for (outcome, (_, req)) in run.outcomes.iter().zip(replay.iter()) {
        if let Ok(resp) = outcome {
            assert_eq!(resp.pyramid, oracle(req), "failover corrupted a response");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The chaos invariant, property-tested: under an arbitrary seeded
    /// fault plan every submitted request resolves exactly once (the
    /// simulator hard-fails otherwise), degraded responses honor their
    /// carried error bound against the exact oracle, the ledger closes,
    /// and the whole run replays byte-identically.
    #[test]
    fn chaos_invariants_hold_for_any_seeded_plan(seed in 0u64..1_000_000) {
        let degraded = DegradedPolicy::default();
        let plan = ShardFaultPlan::seeded(seed)
            .with_shard_crash((seed % 3) as usize, seed % 5)
            .with_worker_panic(((seed + 1) % 3) as usize, seed % 7)
            .with_stall(((seed + 2) % 3) as usize, 2.0, 0, 6)
            .with_poison_rate(0.05);
        let cfg = ServiceConfig::default()
            .with_shards(3)
            .with_queue_capacity(8)
            .with_supervisor(SupervisorPolicy {
                max_restarts: (seed % 3) as u32,
                ..SupervisorPolicy::default()
            })
            .with_degraded(degraded)
            .with_faults(plan);
        let cost = CostModel::default();
        let n = 70;
        let run = run_chaos(&cfg, &cost, stream(n, seed, 100_000.0));

        // Exactly-once: one terminal outcome per submission.
        prop_assert_eq!(run.outcomes.len(), n);
        let ok = run.outcomes.iter().filter(|o| o.is_ok()).count() as u64;
        prop_assert_eq!(ok, run.metrics.completed());

        // Every response honors its error contract.
        let replay = stream(n, seed, 100_000.0);
        for (outcome, (_, req)) in run.outcomes.iter().zip(replay.iter()) {
            match outcome {
                Ok(resp) if resp.degraded => {
                    prop_assert_eq!(resp.error_bound, degraded.error_bound());
                    assert_within_bound(&resp.pyramid, &oracle(req), resp.error_bound);
                }
                Ok(resp) => {
                    prop_assert_eq!(resp.error_bound, 0.0);
                    prop_assert_eq!(&resp.pyramid, &oracle(req));
                }
                Err(
                    Rejection::QueueFull { .. }
                    | Rejection::Shed { .. }
                    | Rejection::DeadlineExpired { .. }
                    | Rejection::ShardFailed { .. }
                    | Rejection::Requeued { .. },
                ) => {}
                Err(other) => prop_assert!(false, "untyped loss: {:?}", other),
            }
        }

        // Byte-identical replay from the same seed.
        let again = run_chaos(&cfg, &cost, stream(n, seed, 100_000.0));
        assert_reports_identical(&run, &again);
    }
}

// ---------------------------------------------------------------------
// Fault-matrix grid point (environment-driven, like tests/fault_matrix.rs)
// ---------------------------------------------------------------------

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Grid axis for CI: `WSERV_CRASH_SHARDS` (0..=2, default 1) shards
/// crash permanently at their first dispatch. Whatever the grid point,
/// every request resolves, survivors serve exact responses, and the
/// run replays byte-identically.
#[test]
fn serving_survives_the_configured_shard_crash_grid_point() {
    let crashes = env_usize("WSERV_CRASH_SHARDS", 1).min(2);
    let mut plan = ShardFaultPlan::seeded(7);
    for s in 0..crashes {
        plan = plan.with_shard_crash(s, 0);
    }
    let cfg = ServiceConfig::default()
        .with_shards(3)
        .with_queue_capacity(32)
        .with_supervisor(SupervisorPolicy {
            max_restarts: 1,
            ..SupervisorPolicy::default()
        })
        .with_faults(plan);
    let cost = CostModel::default();
    let n = 60;
    let run = run_chaos(&cfg, &cost, stream(n, 7, 50_000.0));
    assert_eq!(run.outcomes.len(), n);
    let ok = run.outcomes.iter().filter(|o| o.is_ok()).count() as u64;
    assert_eq!(ok, run.metrics.completed());
    assert!(ok > 0, "survivors must keep serving");
    assert!(run.metrics.failed_shards().len() <= crashes);
    let replay = stream(n, 7, 50_000.0);
    for (outcome, (_, req)) in run.outcomes.iter().zip(replay.iter()) {
        if let Ok(resp) = outcome {
            assert_eq!(resp.pyramid, oracle(req), "grid point corrupted a response");
        }
    }
    assert_reports_identical(&run, &run_chaos(&cfg, &cost, stream(n, 7, 50_000.0)));
}
