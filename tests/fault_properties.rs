//! Property tests of the deterministic fault-injection layer: seeded
//! fault schedules are perfectly reproducible, and crash recovery is
//! exact (0 ULP) against the fault-free oracle.

use dwt::{dwt2d, Boundary, FilterBank, Matrix};
use dwt_mimd::{MimdDwtConfig, ResiliencePolicy};
use paragon::{FaultPlan, MachineSpec, Mapping, SpmdConfig};
use proptest::prelude::*;

fn test_image(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |r, c| ((r * 19 + c * 11) % 29) as f64 - 14.0)
}

fn resilient_cfg() -> MimdDwtConfig {
    MimdDwtConfig::tuned(FilterBank::daubechies(4).unwrap(), 2)
        .with_resilience(ResiliencePolicy::Redistribute)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Identical fault-plan seeds reproduce the run exactly: same
    /// virtual times, same per-rank budgets, same coefficients.
    #[test]
    fn same_seed_reproduces_budgets_and_coefficients(
        seed in 0u64..1_000_000,
        p in 2usize..=8,
    ) {
        let img = test_image(32);
        let cfg = resilient_cfg();
        let mk = || {
            let plan = FaultPlan::seeded(seed)
                .with_drop_rate(5e-3)
                .with_corrupt_rate(1e-3)
                .with_delay(2e-3, 1e-4);
            SpmdConfig::new(MachineSpec::paragon(), p, Mapping::Snake).with_faults(plan)
        };
        let a = dwt_mimd::run_mimd_dwt(&mk(), &cfg, &img).unwrap();
        let b = dwt_mimd::run_mimd_dwt(&mk(), &cfg, &img).unwrap();
        prop_assert_eq!(a.parallel_time(), b.parallel_time());
        prop_assert_eq!(&a.budgets, &b.budgets);
        prop_assert_eq!(&a.faults, &b.faults);
        prop_assert_eq!(&a.pyramid, &b.pyramid);
    }

    /// A run that loses a rank at an arbitrary point of the schedule and
    /// redistributes its work produces coefficients bit-identical (0 ULP)
    /// to the sequential fault-free oracle.
    #[test]
    fn recovered_run_matches_fault_free_oracle_exactly(
        p in 2usize..=8,
        victim in 0usize..64,
        phase in 0u64..12,
    ) {
        let img = test_image(32);
        let cfg = resilient_cfg();
        let oracle = dwt2d::decompose(
            &img,
            &FilterBank::daubechies(4).unwrap(),
            2,
            Boundary::Periodic,
        )
        .unwrap();
        let plan = FaultPlan::none().with_crash(victim % p, phase);
        let scfg =
            SpmdConfig::new(MachineSpec::paragon(), p, Mapping::Snake).with_faults(plan);
        let run = dwt_mimd::run_mimd_dwt(&scfg, &cfg, &img).unwrap();
        prop_assert_eq!(&run.pyramid, &oracle);
    }

    /// A full decompose -> crash -> reconstruct pipeline with up to
    /// `nranks - 1` crashes produces output 0 ULP from the fault-free
    /// oracle, for both the striped and block decomposition layouts.
    /// The same crash schedule is injected into both the analysis and
    /// the synthesis run.
    #[test]
    fn resilient_pipeline_reconstructs_exactly(
        p in 2usize..=8,
        use_block in 0usize..2,
        raw_crashes in prop::collection::vec((0usize..64, 0u64..16), 1..8),
    ) {
        let img = test_image(32);
        let cfg = resilient_cfg();
        // Distinct victims, capped at p - 1 so one rank always survives.
        let mut crashes: Vec<(usize, u64)> = Vec::new();
        for (v, phase) in raw_crashes {
            let v = v % p;
            if crashes.iter().all(|&(w, _)| w != v) {
                crashes.push((v, phase));
            }
            if crashes.len() == p - 1 {
                break;
            }
        }
        let mk = || {
            let mut plan = FaultPlan::none();
            for &(v, phase) in &crashes {
                plan = plan.with_crash(v, phase);
            }
            SpmdConfig::new(MachineSpec::paragon(), p, Mapping::Snake).with_faults(plan)
        };
        let clean = SpmdConfig::new(MachineSpec::paragon(), p, Mapping::Snake);

        // Analysis: the oracle is the sequential transform (both
        // distributed layouts are bit-identical to it).
        let seq = dwt2d::decompose(
            &img,
            &FilterBank::daubechies(4).unwrap(),
            2,
            Boundary::Periodic,
        )
        .unwrap();
        let pyramid = if use_block == 1 {
            let run = dwt_mimd::block::run_block_dwt(&mk(), &cfg, &img).unwrap();
            prop_assert_eq!(&run.pyramid, &seq);
            run.pyramid
        } else {
            let run = dwt_mimd::run_mimd_dwt(&mk(), &cfg, &img).unwrap();
            prop_assert_eq!(&run.pyramid, &seq);
            run.pyramid
        };

        // Synthesis: the oracle is the fault-free *distributed*
        // reconstruction (rank-count independent; associates additions
        // differently from the sequential scatter form).
        let oracle = dwt_mimd::idwt::run_mimd_idwt(
            &clean,
            &MimdDwtConfig::tuned(FilterBank::daubechies(4).unwrap(), 2),
            &pyramid,
        )
        .unwrap();
        let run = dwt_mimd::idwt::run_mimd_idwt(&mk(), &cfg, &pyramid).unwrap();
        prop_assert_eq!(&run.image, &oracle.image);
    }

    /// An injected node slowdown is charged as fault-recovery time in
    /// the budget and never makes the simulated run faster. (Crashes can
    /// legitimately *reduce* communication — two stripes co-located on
    /// the adopter exchange guards for free — so this property is stated
    /// for slowdowns, whose effect is one-sided by construction.)
    #[test]
    fn slowdown_is_charged_and_one_sided(
        p in 2usize..=8,
        victim in 0usize..64,
        factor_pct in 150u64..=400,
    ) {
        let img = test_image(32);
        let cfg = resilient_cfg();
        let clean_cfg = SpmdConfig::new(MachineSpec::paragon(), p, Mapping::Snake);
        let clean = dwt_mimd::run_mimd_dwt(&clean_cfg, &cfg, &img).unwrap();
        let plan = FaultPlan::none().with_slowdown(
            victim % p,
            factor_pct as f64 / 100.0,
            0,
            u64::MAX,
        );
        let slow_cfg = clean_cfg.clone().with_faults(plan);
        let slow = dwt_mimd::run_mimd_dwt(&slow_cfg, &cfg, &img).unwrap();
        prop_assert!(slow.parallel_time() >= clean.parallel_time());
        let report = perfbudget::BudgetReport::from_ranks(&slow.budgets).unwrap();
        prop_assert!(report.avg_fault_recovery > 0.0, "slowdown excess must be charged");
        prop_assert_eq!(&slow.pyramid, &clean.pyramid);
    }

    /// Heterogeneous-capacity stress: crashes combined with a severe
    /// (≥10×) slowdown on one survivor. The capacity-aware LPT
    /// re-partition must keep the surviving ranks' useful time balanced
    /// — no survivor may carry more than twice the survivor mean — and
    /// the output must still match the fault-free oracle exactly.
    #[test]
    fn crashes_with_severe_slowdown_keep_survivors_balanced(
        p in 4usize..=8,
        raw_crashes in prop::collection::vec((0usize..64, 1u64..12), 1..3),
        slow_pick in 0usize..64,
        slow_factor_pct in 1000u64..=2000, // 10x..20x nominal
    ) {
        let img = test_image(32);
        let cfg = resilient_cfg();
        // Distinct crash victims, at most p - 2 so at least two ranks
        // survive and the balance ratio is meaningful.
        let mut crashes: Vec<(usize, u64)> = Vec::new();
        for (v, phase) in raw_crashes {
            let v = v % p;
            if crashes.iter().all(|&(w, _)| w != v) {
                crashes.push((v, phase));
            }
            if crashes.len() == p - 2 {
                break;
            }
        }
        // The slowed rank must be a survivor for the skew to matter.
        let crashed: Vec<usize> = crashes.iter().map(|&(v, _)| v).collect();
        let slow = (0..p)
            .cycle()
            .skip(slow_pick % p)
            .find(|r| !crashed.contains(r))
            .unwrap();
        let mut plan = FaultPlan::none().with_slowdown(
            slow,
            slow_factor_pct as f64 / 100.0,
            0,
            u64::MAX,
        );
        for &(v, phase) in &crashes {
            plan = plan.with_crash(v, phase);
        }
        let scfg = SpmdConfig::new(MachineSpec::paragon(), p, Mapping::Snake).with_faults(plan);
        let run = dwt_mimd::run_mimd_dwt(&scfg, &cfg, &img).unwrap();

        // Exactness survives the combined faults.
        let oracle = dwt2d::decompose(
            &img,
            &FilterBank::daubechies(4).unwrap(),
            2,
            Boundary::Periodic,
        )
        .unwrap();
        prop_assert_eq!(&run.pyramid, &oracle);

        // Balance over the survivors only: crashed ranks stop accruing
        // useful time at their crash and would fake imbalance.
        let survivors: Vec<perfbudget::RankBudget> = (0..p)
            .filter(|r| !run.faults.crashed_ranks.contains(r))
            .map(|r| run.budgets[r])
            .collect();
        prop_assert!(survivors.len() >= 2);
        let balance = perfbudget::BudgetReport::useful_balance(&survivors).unwrap();
        prop_assert!(
            balance <= 2.0,
            "max survivor useful time {}x the mean exceeds the 2x LPT bound",
            balance
        );
    }
}
