//! Property tests pinning the fused cache-blocked engine to the
//! materializing separable oracle.
//!
//! The engine (`dwt::engine`) replaces the two-pass textbook transform as
//! the production path of `dwt2d::decompose` / `parallel::decompose_par`.
//! These tests drive it across every boundary mode, filter length, depth
//! (1–5), ragged tile remainders (band widths that do not divide the
//! image), and thread counts, and require agreement with the independent
//! oracle `dwt2d::decompose_separable` to 1e-12 — the engine is in fact
//! designed to be bit-identical, performing the same accumulation chains
//! per coefficient.

use dwt::engine::DwtPlan;
use dwt::{dwt2d, Boundary, FilterBank, Matrix};
use proptest::prelude::*;

fn arb_filter() -> impl Strategy<Value = FilterBank> {
    prop_oneof![
        Just(FilterBank::daubechies(2).unwrap()),
        Just(FilterBank::daubechies(4).unwrap()),
        Just(FilterBank::daubechies(6).unwrap()),
        Just(FilterBank::daubechies(8).unwrap()),
        Just(FilterBank::daubechies(10).unwrap()),
    ]
}

fn arb_mode() -> impl Strategy<Value = Boundary> {
    prop_oneof![
        Just(Boundary::Periodic),
        Just(Boundary::Symmetric),
        Just(Boundary::Zero),
    ]
}

/// Deterministic image mixing a random texture sample with smooth
/// structure, so boundary windows see non-trivial data.
fn build_image(rows: usize, cols: usize, noise: &[f64]) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        let v = noise[(r * 31 + c * 17) % noise.len()];
        v + (r as f64 * 0.13).sin() * 3.0 - (c as f64 * 0.07).cos() * 2.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fused engine == separable oracle, to 1e-12, for every mode and
    /// filter, depths 1-5, odd/even tile remainders and thread counts.
    #[test]
    fn engine_matches_separable_oracle(
        bank in arb_filter(),
        mode in arb_mode(),
        levels in 1usize..=5,
        row_blocks in 5usize..=8,
        col_blocks in 5usize..=8,
        band_width in 3usize..=50,
        threads in 1usize..=4,
        noise in prop::collection::vec(-100.0f64..100.0, 64),
    ) {
        // Scale the base block count so every level halves evenly and the
        // coarsest input still covers the longest filter (2*5 >= 10).
        let rows = row_blocks << levels;
        let cols = col_blocks << levels;
        let img = build_image(rows, cols, &noise);

        let oracle = dwt2d::decompose_separable(&img, &bank, levels, mode).unwrap();
        let plan = DwtPlan::new(rows, cols, bank.clone(), levels, mode)
            .unwrap()
            .with_band_width(band_width)
            .with_threads(threads);
        let got = plan.decompose(&img).unwrap();

        let d = got.approx.max_abs_diff(&oracle.approx).unwrap();
        prop_assert!(d <= 1e-12, "LL differs by {d}");
        for (g, o) in got.detail.iter().zip(&oracle.detail) {
            for (name, gm, om) in [
                ("LH", &g.lh, &o.lh),
                ("HL", &g.hl, &o.hl),
                ("HH", &g.hh, &o.hh),
            ] {
                let d = gm.max_abs_diff(om).unwrap();
                prop_assert!(d <= 1e-12, "{name} differs by {d}");
            }
        }
    }

    /// Workspace-backed engine round trip is exact (1e-10 relative) for
    /// the periodic mode, across depths and tile remainders, including
    /// workspace reuse across calls.
    #[test]
    fn engine_round_trip(
        bank in arb_filter(),
        levels in 1usize..=5,
        row_blocks in 5usize..=8,
        col_blocks in 5usize..=8,
        band_width in 3usize..=50,
        noise in prop::collection::vec(-100.0f64..100.0, 64),
    ) {
        let rows = row_blocks << levels;
        let cols = col_blocks << levels;
        let img = build_image(rows, cols, &noise);

        let plan = DwtPlan::new(rows, cols, bank.clone(), levels, Boundary::Periodic)
            .unwrap()
            .with_band_width(band_width);
        let mut ws = plan.make_workspace();
        let mut pyr = plan.make_pyramid();
        let mut back = Matrix::zeros(rows, cols);
        let scale = img
            .data()
            .iter()
            .fold(1.0f64, |a, &v| a.max(v.abs()));
        // Two passes through the same workspace: steady-state reuse must
        // not change the numbers.
        for _ in 0..2 {
            plan.decompose_into(&img, &mut ws, &mut pyr).unwrap();
            plan.reconstruct_into(&pyr, &mut ws, &mut back).unwrap();
            let err = img.max_abs_diff(&back).unwrap();
            prop_assert!(err <= 1e-10 * scale, "round-trip error {err}");
        }
    }

    /// The engine's reconstruction agrees with the separable synthesis
    /// oracle for every boundary mode (synthesis is only an exact inverse
    /// for periodic, but both paths must compute the same thing).
    #[test]
    fn engine_reconstruct_matches_separable_oracle(
        bank in arb_filter(),
        mode in arb_mode(),
        levels in 1usize..=3,
        blocks in 5usize..=8,
        noise in prop::collection::vec(-100.0f64..100.0, 64),
    ) {
        let n = blocks << levels;
        let img = build_image(n, n, &noise);
        let pyr = dwt2d::decompose_separable(&img, &bank, levels, mode).unwrap();
        let oracle = dwt2d::reconstruct_separable(&pyr, &bank, mode).unwrap();
        let plan = DwtPlan::new(n, n, bank.clone(), levels, mode).unwrap();
        let got = plan.reconstruct(&pyr).unwrap();
        let d = oracle.max_abs_diff(&got).unwrap();
        prop_assert!(d <= 1e-12, "reconstruction differs by {d}");
    }
}
