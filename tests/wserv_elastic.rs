//! Invariants of the elastic sharding layer.
//!
//! Under any seeded workload, with stealing and split/merge enabled:
//!
//! 1. **Exactly-once resolution.** Every submitted request terminates
//!    in exactly one outcome, and the books balance — migration moves
//!    queue entries, never accounting.
//! 2. **Bit-identical responses.** Which shard executes a request must
//!    not change a single bit of its pyramid: elastic and static
//!    layouts agree on every matched response.
//! 3. **Deterministic replay.** The elastic simulator is a pure
//!    function of `(config, stream)`: same seed, byte-identical
//!    outcomes *and* byte-identical `BalanceAction` log.
//! 4. **Failures stay fenced.** A shard mid-failover is never chosen
//!    as a steal target — queued work never migrates onto a corpse.
//! 5. **Strict-priority shedding survives migration.** A shed victim's
//!    class stays strictly below the arrival that displaced it.

use dwt::engine::PlanShape;
use dwt::{dwt2d, Boundary, FilterBank, Matrix, Pyramid};
use proptest::prelude::*;
use wserv::sim::{run_sim, CostModel, SimReport};
use wserv::{
    BalanceAction, DecomposeRequest, ElasticPolicy, Priority, Rejection, ServiceConfig,
    ShardFaultPlan, SupervisorPolicy, WaveletService,
};

fn image(n: usize, salt: u64) -> Matrix {
    Matrix::from_fn(n, n, |r, c| {
        ((r as u64 * 31 + c as u64 * 17 + salt * 7) % 61) as f64 - 30.0
    })
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// An `(image size, levels)` pair whose haar shape routes home to
/// `target` out of `nshards` base shards.
fn shape_on_shard(target: usize, nshards: usize) -> (usize, usize) {
    let bank = FilterBank::haar();
    (8..=256)
        .step_by(4)
        .flat_map(|size| [(size, 1usize), (size, 2)])
        .find(|&(size, levels)| {
            let shape = PlanShape::new(size, size, &bank, levels, Boundary::Periodic);
            wserv::shard::shard_of(&shape, nshards) == target
        })
        .expect("some (size, levels) pair routes to every shard")
}

/// A deterministic Poisson stream skewed onto `hot` out of `nshards`
/// base shards: ~4 of 5 requests route home to the hot shard, the rest
/// spread uniformly, with mixed priorities. This is the imbalance the
/// controller exists to fix.
fn skewed_stream(
    n_reqs: usize,
    seed: u64,
    rate: f64,
    nshards: usize,
    hot: usize,
) -> Vec<(f64, DecomposeRequest)> {
    let mut state = seed;
    let mut t = 0.0;
    let mut out = Vec::with_capacity(n_reqs);
    for _ in 0..n_reqs {
        let u = ((splitmix(&mut state) >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
        t += -u.ln() / rate;
        let target = if splitmix(&mut state) % 5 < 4 {
            hot
        } else {
            (splitmix(&mut state) % nshards as u64) as usize
        };
        let (size, levels) = shape_on_shard(target, nshards);
        let prio = Priority::ALL[(splitmix(&mut state) % 3) as usize];
        let req = DecomposeRequest::new(
            image(size, splitmix(&mut state) % 97),
            FilterBank::haar(),
            levels,
        )
        .with_priority(prio);
        out.push((t, req));
    }
    out
}

fn oracle(req: &DecomposeRequest) -> Pyramid {
    dwt2d::decompose(&req.image, &req.bank, req.levels, req.mode).expect("valid request")
}

fn assert_reports_identical(a: &SimReport, b: &SimReport) {
    assert_eq!(a.makespan_s, b.makespan_s);
    assert_eq!(a.metrics.completed(), b.metrics.completed());
    assert_eq!(a.metrics.stolen(), b.metrics.stolen());
    assert_eq!(a.metrics.splits(), b.metrics.splits());
    assert_eq!(a.metrics.merges(), b.metrics.merges());
    assert_eq!(a.actions, b.actions, "BalanceAction log diverged");
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
        match (x, y) {
            (Ok(rx), Ok(ry)) => {
                assert_eq!(rx.pyramid, ry.pyramid, "response bits diverged");
                assert_eq!(rx.wait_s, ry.wait_s);
                assert_eq!(rx.service_s, ry.service_s);
            }
            (Err(ex), Err(ey)) => assert_eq!(ex, ey),
            _ => panic!("outcome kind diverged between replays"),
        }
    }
}

// ---------------------------------------------------------------------
// Directed regressions
// ---------------------------------------------------------------------

/// Skewed load with stealing on actually steals, and the imbalance the
/// budget report charges drops below the static layout's.
#[test]
fn stealing_levels_a_skewed_stream() {
    let nshards = 2;
    let n = 120;
    let stream = || skewed_stream(n, 42, 150_000.0, nshards, 0);
    let static_cfg = ServiceConfig::default()
        .with_shards(nshards)
        .with_queue_capacity(256);
    // Thresholds scaled to the simulator's ~10us/request service
    // times (the defaults target live wall-clock costs).
    let elastic_cfg = static_cfg.clone().with_elastic(ElasticPolicy {
        min_gap_s: 40e-6,
        steal_gap_s: 50e-6,
        ..ElasticPolicy::stealing()
    });
    let cost = CostModel::default();
    let stat = run_sim(&static_cfg, &cost, stream());
    let ela = run_sim(&elastic_cfg, &cost, stream());
    assert!(
        ela.metrics.stolen() > 0,
        "a 4:1 skew must trigger at least one steal, log {:?}",
        ela.actions
    );
    assert!(
        ela.actions
            .iter()
            .any(|(_, a)| matches!(a, BalanceAction::Steal { .. })),
        "the decision log must record the steals"
    );
    assert_eq!(ela.metrics.completed() + shed_count(&ela), n as u64);
    let (si, ei) = (imbalance_pct(&stat), imbalance_pct(&ela));
    assert!(
        ei < si,
        "stealing must reduce imbalance ({ei:.1}% vs static {si:.1}%)"
    );
}

/// Split/merge on a skewed stream activates the reserve shard, retires
/// it once the backlog drains, and loses nothing in either direction.
#[test]
fn split_activates_reserve_and_merge_retires_it() {
    let nshards = 2;
    let n = 160;
    let policy = ElasticPolicy {
        min_gap_s: 40e-6,
        steal_gap_s: 60e-6,
        split_backlog_s: 120e-6,
        merge_backlog_s: 30e-6,
        ..ElasticPolicy::split_merge(1)
    };
    let cfg = ServiceConfig::default()
        .with_shards(nshards)
        .with_queue_capacity(256)
        .with_elastic(policy);
    let run = run_sim(&cfg, &CostModel::default(), {
        skewed_stream(n, 7, 250_000.0, nshards, 0)
    });
    assert!(
        run.metrics.splits() > 0,
        "the hot shard must split onto the reserve, log {:?}",
        run.actions
    );
    assert!(
        run.metrics.merges() > 0,
        "the drained reserve must merge back, log {:?}",
        run.actions
    );
    assert_eq!(
        run.metrics.completed() + shed_count(&run),
        n as u64,
        "split/merge must not lose or duplicate a single request"
    );
    // The activated reserve slot's books are part of the snapshot.
    assert!(run.metrics.shards.len() > nshards);
    let replay = skewed_stream(n, 7, 250_000.0, nshards, 0);
    for (outcome, (_, req)) in run.outcomes.iter().zip(replay.iter()) {
        if let Ok(resp) = outcome {
            assert_eq!(resp.pyramid, oracle(req), "migration corrupted a response");
        }
    }
}

/// The failover fence: a shard that crashes mid-run is never a steal
/// target afterwards — queued work never migrates onto the corpse, and
/// every request still resolves exactly once.
#[test]
fn steal_never_targets_a_crashed_shard() {
    let nshards = 2;
    let victim = 1;
    let n = 100;
    // The *hot* shard is the victim: pre-crash it only ever donates
    // (steals flow hot -> cold), post-crash it is failed and fenced, so
    // any Steal targeting it — ever — is a bug.
    let cfg = ServiceConfig::default()
        .with_shards(nshards)
        .with_queue_capacity(256)
        .with_elastic(ElasticPolicy::stealing())
        .with_supervisor(SupervisorPolicy {
            max_restarts: 0,
            ..SupervisorPolicy::default()
        })
        .with_faults(ShardFaultPlan::none().with_shard_crash(victim, 2));
    let run = run_sim(
        &cfg,
        &CostModel::default(),
        skewed_stream(n, 13, 150_000.0, nshards, victim),
    );
    assert_eq!(run.metrics.failed_shards(), vec![victim]);
    for (t, action) in &run.actions {
        if let BalanceAction::Steal { to, .. } = action {
            assert_ne!(
                *to, victim,
                "t={t}: stole toward the hot/crashed shard {victim}"
            );
        }
    }
    assert_eq!(
        run.metrics.shards[victim].stolen_in, 0,
        "no entry may migrate onto the corpse"
    );
    // Exactly-once through crash + failover + stealing combined.
    assert_eq!(run.outcomes.len(), n);
    let ok = run.outcomes.iter().filter(|o| o.is_ok()).count() as u64;
    assert_eq!(ok, run.metrics.completed());
    for outcome in &run.outcomes {
        match outcome {
            Ok(_)
            | Err(
                Rejection::QueueFull { .. }
                | Rejection::Shed { .. }
                | Rejection::ShardFailed { .. }
                | Rejection::Requeued { .. },
            ) => {}
            Err(other) => panic!("untyped loss: {other:?}"),
        }
    }
}

/// The live driver end-to-end with split/merge enabled: every accepted
/// request resolves, the books close over base + activated reserve
/// slots only, and the decision log is exposed.
#[test]
fn live_elastic_service_loses_nothing() {
    let nshards = 2;
    let service = WaveletService::start(
        ServiceConfig::default()
            .with_shards(nshards)
            .with_queue_capacity(128)
            .with_max_batch(4)
            .with_elastic(ElasticPolicy {
                min_gap_s: 0.0,
                steal_gap_s: 50e-6,
                split_backlog_s: 200e-6,
                merge_backlog_s: 50e-6,
                ..ElasticPolicy::split_merge(1)
            }),
    );
    let (size, levels) = shape_on_shard(0, nshards);
    let (alt_size, alt_levels) = shape_on_shard(1, nshards);
    let handles: Vec<_> = (0..80u64)
        .map(|i| {
            // 4:1 skew onto shard 0 — enough pressure to make the
            // controller act under the live clock.
            let req = if i % 5 == 0 {
                DecomposeRequest::new(image(alt_size, i), FilterBank::haar(), alt_levels)
            } else {
                DecomposeRequest::new(image(size, i), FilterBank::haar(), levels)
            };
            (i, service.submit(req).expect("queue has room"))
        })
        .collect();
    for (i, h) in handles {
        match h.wait() {
            Ok(resp) => {
                let req = if i % 5 == 0 {
                    DecomposeRequest::new(image(alt_size, i), FilterBank::haar(), alt_levels)
                } else {
                    DecomposeRequest::new(image(size, i), FilterBank::haar(), levels)
                };
                assert_eq!(resp.pyramid, oracle(&req), "request {i} corrupted");
            }
            Err(Rejection::Shed { .. } | Rejection::QueueFull { .. }) => {}
            Err(other) => panic!("request {i}: unexpected {other:?}"),
        }
    }
    let log = service.elastic_log();
    let epoch = service.shard_map_epoch();
    let snapshot = service.shutdown().expect("clean drain");
    // The snapshot covers the base shards plus any activated reserve —
    // never a pristine reserve slot.
    assert!(snapshot.shards.len() >= nshards);
    assert!(snapshot.shards.len() <= nshards + 1);
    let migrated = snapshot.stolen();
    let split_count = snapshot.splits();
    // Whether the controller acted depends on live timing; what must
    // hold is consistency between the log, the map epoch, and books.
    if log.is_empty() {
        assert_eq!(migrated, 0);
        assert_eq!(split_count, 0);
        assert_eq!(epoch, 0, "no decision, no map mutation");
    }
    let ok = snapshot.completed();
    assert!(ok > 0, "the service must actually serve");
}

// ---------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------

fn shed_count(run: &SimReport) -> u64 {
    run.outcomes
        .iter()
        .filter(|o| matches!(o, Err(Rejection::Shed { .. })))
        .count() as u64
}

fn imbalance_pct(run: &SimReport) -> f64 {
    run.metrics
        .budget_report()
        .expect("completed work yields a budget report")
        .imbalance_pct()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Exactly-once books under any seed: every request terminates in
    /// one outcome, completions match the Ok count, and the admission
    /// ledger balances even though entries migrate between queues.
    #[test]
    fn elastic_books_balance_for_any_seed(seed in 0u64..1_000_000) {
        let cfg = ServiceConfig::default()
            .with_shards(3)
            .with_queue_capacity(8)
            .with_elastic(ElasticPolicy::split_merge(1));
        let n = 90;
        let run = run_sim(
            &cfg,
            &CostModel::default(),
            skewed_stream(n, seed, 200_000.0, 3, (seed % 3) as usize),
        );
        prop_assert_eq!(run.outcomes.len(), n);
        let ok = run.outcomes.iter().filter(|o| o.is_ok()).count() as u64;
        prop_assert_eq!(ok, run.metrics.completed());
        // Door accounting: accepted entries either complete or are
        // shed; migration must be counter-neutral.
        prop_assert_eq!(run.metrics.accepted(), ok + shed_count(&run));
    }

    /// A shed victim's priority class is strictly below the arrival
    /// that displaced it, elastic migrations notwithstanding.
    #[test]
    fn shedding_stays_strictly_prioritized_under_elastic(seed in 0u64..1_000_000) {
        let cfg = ServiceConfig::default()
            .with_shards(2)
            .with_queue_capacity(4) // tiny: force shedding
            .with_elastic(ElasticPolicy::stealing());
        let n = 80;
        let stream = skewed_stream(n, seed, 400_000.0, 2, 0);
        let run = run_sim(&cfg, &CostModel::default(), stream.clone());
        for (outcome, (_, req)) in run.outcomes.iter().zip(stream.iter()) {
            if let Err(Rejection::Shed { by }) = outcome {
                prop_assert!(
                    req.priority < *by,
                    "shed victim {:?} not strictly below arrival {:?}",
                    req.priority,
                    by
                );
            }
        }
    }

    /// Elastic placement must not change a single response bit: for
    /// every request served by both layouts, the pyramids are
    /// bit-identical to each other (and to the oracle).
    #[test]
    fn responses_are_bit_identical_to_the_static_layout(seed in 0u64..1_000_000) {
        let static_cfg = ServiceConfig::default()
            .with_shards(3)
            .with_queue_capacity(512); // ample: everything serves
        let elastic_cfg = static_cfg
            .clone()
            .with_elastic(ElasticPolicy::split_merge(1));
        let n = 60;
        let stream = || skewed_stream(n, seed, 150_000.0, 3, (seed % 3) as usize);
        let cost = CostModel::default();
        let stat = run_sim(&static_cfg, &cost, stream());
        let ela = run_sim(&elastic_cfg, &cost, stream());
        prop_assert_eq!(stat.outcomes.len(), ela.outcomes.len());
        for (i, (a, b)) in stat.outcomes.iter().zip(ela.outcomes.iter()).enumerate() {
            let (Ok(ra), Ok(rb)) = (a, b) else {
                panic!("request {i} must serve under both layouts");
            };
            prop_assert_eq!(
                &ra.pyramid, &rb.pyramid,
                "request {} bits diverged between layouts", i
            );
        }
    }

    /// The elastic simulator replays bit-identically from its seed —
    /// outcomes, metrics, and the BalanceAction decision log.
    #[test]
    fn elastic_replay_is_bit_identical(seed in 0u64..1_000_000) {
        let cfg = ServiceConfig::default()
            .with_shards(2)
            .with_queue_capacity(64)
            .with_elastic(ElasticPolicy {
                split_backlog_s: 500e-6,
                ..ElasticPolicy::split_merge(1)
            });
        let n = 80;
        let stream = || skewed_stream(n, seed, 250_000.0, 2, (seed % 2) as usize);
        let cost = CostModel::default();
        let a = run_sim(&cfg, &cost, stream());
        let b = run_sim(&cfg, &cost, stream());
        assert_reports_identical(&a, &b);
    }
}
