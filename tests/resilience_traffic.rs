//! Recovery-traffic tests: the cost-report cut (skip the per-level
//! report exchange when no rank is doomed in the next crash window) and
//! the wavelet checkpoint codec (threshold + quantize detail planes at
//! crash handoffs, with a proven per-coefficient error bound).

use dwt::{dwt2d, Boundary, FilterBank, Matrix};
use dwt_mimd::{CheckpointCodec, MimdDwtConfig, ResiliencePolicy};
use paragon::{FaultPlan, MachineSpec, Mapping, SpmdConfig};

fn ramp_image(n: usize) -> Matrix {
    // Smooth ramp: db4 has two vanishing moments, so detail planes are
    // ~0 away from the periodic seam and compress hard.
    Matrix::from_fn(n, n, |r, c| 0.25 * r as f64 + 0.1 * c as f64)
}

fn rough_image(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |r, c| ((r * 19 + c * 11) % 29) as f64 - 14.0)
}

fn cfg(levels: usize) -> MimdDwtConfig {
    MimdDwtConfig::tuned(FilterBank::daubechies(4).unwrap(), levels)
        .with_resilience(ResiliencePolicy::Redistribute)
}

fn scfg(p: usize, plan: FaultPlan) -> SpmdConfig {
    SpmdConfig::new(MachineSpec::paragon(), p, Mapping::Snake).with_faults(plan)
}

/// Phase index of the level-`l` cost report in the striped layout
/// (distribution = phase 0, each level spans 5 phases from `1 + 5l`,
/// report is the fourth).
fn report_phase(level: usize) -> usize {
    1 + 5 * level + 3
}

#[test]
fn cost_report_is_skipped_when_no_rank_is_doomed() {
    let img = rough_image(64);
    let run = dwt_mimd::run_mimd_dwt(&scfg(4, FaultPlan::none()), &cfg(3), &img).unwrap();
    for level in 0..3 {
        let rec = &run.timeline[report_phase(level)];
        assert_eq!(
            (rec.messages, rec.bytes),
            (0, 0),
            "quiet run must move no report bytes at level {level}"
        );
    }
}

#[test]
fn cost_report_runs_only_for_levels_that_feed_a_doomed_window() {
    let img = rough_image(64);
    // Crash late (level-2 window, phase 13): the level-1 report feeds
    // the re-partition that absorbs it, but the level-0 report's window
    // closes before the crash and stays silent.
    let plan = FaultPlan::none().with_crash(1, 13);
    let run = dwt_mimd::run_mimd_dwt(&scfg(4, plan), &cfg(3), &img).unwrap();
    let l0 = &run.timeline[report_phase(0)];
    let l1 = &run.timeline[report_phase(1)];
    assert_eq!((l0.messages, l0.bytes), (0, 0), "level-0 report not needed");
    assert!(l1.bytes > 0, "level-1 report must run before the crash");

    // The cut never trades correctness: output still exact.
    let oracle = dwt2d::decompose(
        &img,
        &FilterBank::daubechies(4).unwrap(),
        3,
        Boundary::Periodic,
    )
    .unwrap();
    assert_eq!(run.pyramid, oracle);

    // And it is a strict reliable-plane traffic reduction against a
    // build that always reports (simulated by an early-doomed run where
    // every window is live): the quiet phases carry strictly fewer
    // bytes than the active one.
    assert!(l1.bytes > l0.bytes);
}

#[test]
fn raw_checkpoints_stay_bit_exact_under_crash() {
    let img = rough_image(32);
    let plan = FaultPlan::none().with_crash(1, 7);
    let run = dwt_mimd::run_mimd_dwt(&scfg(4, plan), &cfg(2), &img).unwrap();
    let oracle = dwt2d::decompose(
        &img,
        &FilterBank::daubechies(4).unwrap(),
        2,
        Boundary::Periodic,
    )
    .unwrap();
    assert_eq!(run.pyramid, oracle);
}

#[test]
fn degenerate_quant_codec_is_lossless() {
    // threshold 0 + step 0 keeps every coefficient exactly: the codec
    // path must then be bit-identical to Raw.
    let codec = CheckpointCodec::WaveletQuant {
        threshold: 0.0,
        step: 0.0,
    };
    assert_eq!(codec.tolerance(), 0.0);
    let img = rough_image(32);
    let plan = FaultPlan::none().with_crash(1, 7);
    let c = cfg(2).with_checkpoint_codec(codec);
    let run = dwt_mimd::run_mimd_dwt(&scfg(4, plan), &c, &img).unwrap();
    let oracle = dwt2d::decompose(
        &img,
        &FilterBank::daubechies(4).unwrap(),
        2,
        Boundary::Periodic,
    )
    .unwrap();
    assert_eq!(run.pyramid, oracle);
}

#[test]
fn quantized_checkpoints_round_trip_within_tolerance_and_shrink_handoffs() {
    let img = ramp_image(32);
    let codec = CheckpointCodec::WaveletQuant {
        threshold: 0.5,
        step: 0.25,
    };
    let tol = codec.tolerance();
    let mk_plan = || FaultPlan::none().with_crash(1, 7);

    let raw_run = dwt_mimd::run_mimd_dwt(&scfg(4, mk_plan()), &cfg(2), &img).unwrap();
    let quant_run = dwt_mimd::run_mimd_dwt(
        &scfg(4, mk_plan()),
        &cfg(2).with_checkpoint_codec(codec),
        &img,
    )
    .unwrap();

    let oracle = dwt2d::decompose(
        &img,
        &FilterBank::daubechies(4).unwrap(),
        2,
        Boundary::Periodic,
    )
    .unwrap();

    // The LL chain ships raw, so the approximation plane stays exact;
    // every detail coefficient is within the codec's proven bound.
    assert_eq!(raw_run.pyramid, oracle);
    assert_eq!(quant_run.pyramid.approx, oracle.approx);
    let mut worst: f64 = 0.0;
    for (got, want) in quant_run.pyramid.detail.iter().zip(oracle.detail.iter()) {
        for (g, w) in [
            (&got.lh, &want.lh),
            (&got.hl, &want.hl),
            (&got.hh, &want.hh),
        ] {
            for (a, b) in g.data().iter().zip(w.data().iter()) {
                worst = worst.max((a - b).abs());
            }
        }
    }
    assert!(
        worst <= tol + 1e-12,
        "codec error {worst} exceeds bound {tol}"
    );

    // The compressed handoff moves strictly fewer recovery bytes. The
    // level-1 handoff phase (phase 6) carries the crashed role's state.
    let raw_bytes = raw_run.timeline[6].bytes;
    let quant_bytes = quant_run.timeline[6].bytes;
    assert!(raw_bytes > 0, "crash handoff must move state");
    assert!(
        quant_bytes < raw_bytes,
        "quantized checkpoint ({quant_bytes} B) must undercut raw ({raw_bytes} B)"
    );

    // The codec's compute is charged to the fault-recovery lane, not
    // hidden in useful time.
    let recovery = |budgets: &[perfbudget::RankBudget]| -> f64 {
        budgets.iter().map(|b| b.fault_recovery).sum()
    };
    assert!(recovery(&quant_run.budgets) > recovery(&raw_run.budgets));
    let useful =
        |budgets: &[perfbudget::RankBudget]| -> f64 { budgets.iter().map(|b| b.useful).sum() };
    assert!((useful(&quant_run.budgets) - useful(&raw_run.budgets)).abs() < 1e-12);
}
