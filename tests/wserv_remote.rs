//! End-to-end remote serving: [`RemoteServer`] + [`RemoteClient`] over
//! both transports, under seeded wire faults.
//!
//! What must hold:
//!
//! * every accepted request resolves exactly once — retries after
//!   request-path faults never double-execute (the server never saw
//!   them), retries after response-path losses replay the recorded
//!   outcome from the dedup book instead of re-executing;
//! * the per-connection in-flight window backpressures a pipelining
//!   client without losing or reordering responses;
//! * graceful drain is lossless for accepted work and cannot be held
//!   hostage by a half-open connection — past its grace the connection
//!   is aborted and counted in `conn_aborted`;
//! * a protocol mismatch is a terminal, typed handshake failure;
//! * the in-memory shim and localhost TCP produce identical outcome
//!   books for the same seed — same protocol, different bytes.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dwt::{FilterBank, Matrix};
use dwt_mimd::CheckpointCodec;
use wserv::progressive::pyramid_max_abs_diff;
use wserv::remote::{RemoteConfig, RemoteServer, RetryPolicy};
use wserv::transport::{Connector, FrameIo, RecvFrame, Transport, WireClock};
use wserv::wire::{
    decode_response, encode_hello, encode_request, FrameKind, Hello, DEFAULT_MAX_PAYLOAD,
    PROTOCOL_VERSION,
};
use wserv::{
    DecomposeRequest, MemListener, RemoteClient, ServiceConfig, SupervisorPolicy, TcpAcceptor,
    TcpConnector, TransportError, WireDir, WireFaultPlan,
};

fn tick() -> Duration {
    Duration::from_millis(1)
}

fn image(n: usize, salt: u64) -> Matrix {
    Matrix::from_fn(n, n, |r, c| {
        ((r as u64 * 31 + c as u64 * 17 + salt * 7) % 61) as f64 - 30.5
    })
}

fn request(salt: u64) -> DecomposeRequest {
    DecomposeRequest::new(image(16, salt), FilterBank::cdf53(), 2)
}

fn service_config() -> ServiceConfig {
    ServiceConfig::default()
        .with_shards(2)
        .with_queue_capacity(64)
        .with_supervisor(SupervisorPolicy {
            backoff_base_s: 2e-4,
            poll_s: 1e-4,
            ..SupervisorPolicy::default()
        })
}

fn remote_config() -> RemoteConfig {
    RemoteConfig {
        tick: tick(),
        drain_grace: Duration::from_millis(40),
        ..RemoteConfig::default()
    }
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 6,
        backoff_base_s: 1e-4,
        backoff_mult: 2.0,
        backoff_cap_s: 2e-3,
    }
}

/// The fault schedule shared by the exactly-once and parity tests.
/// Coordinates are `(client id, direction, cumulative frame index)`;
/// frame 0 each way is the handshake, so client `c`'s request `k`
/// first travels as C2S frame `k + 1` and its response as S2C frame
/// `k + 1` (while the connection lives).
fn wire_plan() -> WireFaultPlan {
    WireFaultPlan::seeded(1996)
        // Client 0's second request dies mid-frame on the way out: the
        // server never sees it, the retry is a fresh first delivery.
        .with_reset(0, WireDir::ClientToServer, 2)
        // Client 1's first *response* is truncated: the work already
        // executed, so the retry must be answered from the dedup book.
        .with_truncate(1, WireDir::ServerToClient, 1)
        // Client 2's second response takes a bit flip: the client's
        // checksum catches it, the retry replays the recorded outcome.
        .with_bitflip(2, WireDir::ServerToClient, 2)
        // And a stall on client 0's later response path: slow, not lost.
        .with_stall(0, WireDir::ServerToClient, 4, 3e-3)
}

/// Drive `clients × reqs` through a server on `connector`, return the
/// outcome book as `(client, request, ok)` triples plus total retries.
fn drive(
    connector: impl Fn(u64) -> Box<dyn Connector>,
    clients: u64,
    reqs: u64,
    faults: &WireFaultPlan,
) -> (Vec<(u64, u64, bool)>, u64) {
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let plan = faults.clone();
            let conn = connector(c);
            std::thread::spawn(move || {
                let mut client = RemoteClient::new(conn, c)
                    .with_faults(plan)
                    .with_retry(fast_retry())
                    .with_response_timeout(Duration::from_secs(5));
                let mut book = Vec::new();
                for k in 0..reqs {
                    let outcome = client.call(&request(c * 100 + k)).unwrap_or_else(|e| {
                        panic!("client {c} request {k}: transport gave up: {e}")
                    });
                    book.push((c, k, outcome.is_ok()));
                }
                client.goodbye();
                (book, client.retries)
            })
        })
        .collect();
    let mut book = Vec::new();
    let mut retries = 0;
    for h in handles {
        let (b, r) = h.join().expect("client threads never panic");
        book.extend(b);
        retries += r;
    }
    book.sort_unstable();
    (book, retries)
}

// ---------------------------------------------------------------------
// Exactly-once under seeded wire chaos (shim transport)
// ---------------------------------------------------------------------

/// Request-path faults retry transparently, response-path losses are
/// answered from the dedup book, and the service executes every request
/// exactly once — `completed` equals the number of *unique* requests
/// even though the wire carried more attempts than that.
#[test]
fn wire_chaos_resolves_every_request_exactly_once() {
    let (clients, reqs) = (3u64, 8u64);
    let listener = MemListener::new(1 << 16, tick());
    // Client-direction faults ride in each client's own plan; the
    // server injects the response-direction entries of the same plan.
    let config = RemoteConfig {
        wire_faults: wire_plan(),
        ..remote_config()
    };
    let server = RemoteServer::start(service_config(), config, Box::new(listener.clone()))
        .expect("config is valid");

    let (book, retries) = drive(|_| Box::new(listener.clone()), clients, reqs, &wire_plan());

    assert_eq!(book.len(), (clients * reqs) as usize);
    for &(c, k, ok) in &book {
        assert!(ok, "client {c} request {k} must resolve Ok under chaos");
    }
    assert!(
        retries >= 3,
        "reset + truncate + bitflip all force retries, saw {retries}"
    );

    let metrics = server.shutdown().expect("clean drain");
    assert_eq!(
        metrics.service.completed(),
        clients * reqs,
        "exactly-once: executions match unique requests despite {retries} retries"
    );
    assert!(
        metrics.transport.dedup_replays >= 2,
        "truncated and bit-flipped responses must replay from the book, saw {}",
        metrics.transport.dedup_replays
    );
    assert!(
        metrics.transport.conns_accepted >= clients,
        "every client handshook"
    );
    assert!(
        metrics.transport.frames_in > clients * reqs,
        "handshakes + requests"
    );
}

// ---------------------------------------------------------------------
// Retry policy edges
// ---------------------------------------------------------------------

/// With retries disabled the first injected reset surfaces to the
/// caller as the typed error; with the default policy the same schedule
/// succeeds. Either way the failed attempt never executed server-side.
#[test]
fn retry_budget_bounds_attempts_and_types_the_final_error() {
    let listener = MemListener::new(1 << 16, tick());
    let server = RemoteServer::start(
        service_config(),
        remote_config(),
        Box::new(listener.clone()),
    )
    .expect("config is valid");

    // Reset client 5's very first request frame (C2S index 1).
    let plan = WireFaultPlan::seeded(7).with_reset(5, WireDir::ClientToServer, 1);
    let mut no_retry = RemoteClient::new(Box::new(listener.clone()), 5)
        .with_faults(plan.clone())
        .with_retry(RetryPolicy {
            max_attempts: 1,
            ..fast_retry()
        });
    match no_retry.call(&request(1)) {
        Err(TransportError::ConnReset) => {}
        other => panic!("expected ConnReset with retries off, got {other:?}"),
    }
    assert_eq!(no_retry.retries, 0, "max_attempts = 1 means no resubmits");
    no_retry.goodbye();

    // Same fault index for client 6; the default budget rides it out.
    let plan = WireFaultPlan::seeded(7).with_reset(6, WireDir::ClientToServer, 1);
    let mut retrying = RemoteClient::new(Box::new(listener.clone()), 6)
        .with_faults(plan)
        .with_retry(fast_retry());
    let outcome = retrying
        .call(&request(2))
        .expect("retry rides out the reset");
    assert!(outcome.is_ok(), "request admits and serves after the retry");
    assert_eq!(retrying.retries, 1, "one reset, one resubmit");
    retrying.goodbye();

    let metrics = server.shutdown().expect("clean drain");
    assert_eq!(
        metrics.service.completed(),
        1,
        "the reset attempt of client 5 never reached the service"
    );
}

/// Exponential backoff grows per attempt and respects its cap.
#[test]
fn backoff_schedule_is_capped_exponential() {
    let policy = RetryPolicy {
        max_attempts: 10,
        backoff_base_s: 1e-3,
        backoff_mult: 2.0,
        backoff_cap_s: 5e-3,
    };
    assert_eq!(policy.backoff_s(1), 1e-3);
    assert_eq!(policy.backoff_s(2), 2e-3);
    assert_eq!(policy.backoff_s(3), 4e-3);
    assert_eq!(policy.backoff_s(4), 5e-3, "capped");
    assert_eq!(policy.backoff_s(9), 5e-3, "stays capped");
    policy.validate().expect("well-formed policy");
    assert!(RetryPolicy {
        max_attempts: 0,
        ..policy
    }
    .validate()
    .is_err());
}

// ---------------------------------------------------------------------
// Backpressure: the per-connection window over a tiny pipe
// ---------------------------------------------------------------------

/// A pipelining client that floods requests without reading responses:
/// the server's in-flight window (2) stops the reader, the bounded pipe
/// (256 B per direction, far smaller than one frame) backpressures both
/// sides, and once the client finally reads, every response arrives in
/// FIFO order with nothing lost.
#[test]
fn window_and_bounded_pipe_backpressure_a_pipelining_client() {
    let total = 6u64;
    let listener = MemListener::new(256, tick());
    let config = RemoteConfig {
        window: 2,
        ..remote_config()
    };
    let server = RemoteServer::start(service_config(), config, Box::new(listener.clone()))
        .expect("config is valid");

    let raw = listener.connect().expect("listener open");
    let send_half = raw.try_clone().expect("mem transport clones");
    let clock = WireClock::new();
    let mut rx = FrameIo::new(
        Box::new(raw),
        7,
        WireDir::ClientToServer,
        WireFaultPlan::none(),
        Arc::clone(&clock),
    );
    let mut tx = FrameIo::new(
        send_half,
        7,
        WireDir::ClientToServer,
        WireFaultPlan::none(),
        clock,
    );
    tx.send_frame(&encode_hello(
        FrameKind::Hello,
        7,
        &Hello {
            protocol: PROTOCOL_VERSION as u32,
            max_payload: DEFAULT_MAX_PAYLOAD,
            window: 8,
        },
    ))
    .expect("hello fits");
    loop {
        match rx.recv_frame().expect("handshake survives") {
            RecvFrame::Frame(f) if f.kind == FrameKind::HelloAck => break,
            RecvFrame::Frame(f) => panic!("expected HelloAck, got {:?}", f.kind),
            RecvFrame::Idle => continue,
            RecvFrame::Eof => panic!("server hung up mid-handshake"),
        }
    }

    // Flood from a second thread: sends block on the 256 B pipe and on
    // the server's window; the main thread deliberately reads nothing
    // until the whole burst is in flight.
    let sender = std::thread::spawn(move || {
        for id in 0..total {
            tx.send_frame(&encode_request(id, &request(id)).expect("request encodes"))
                .expect("backpressured send completes");
        }
        tx
    });

    let mut got = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while got.len() < total as usize {
        assert!(Instant::now() < deadline, "responses stalled: got {got:?}");
        match rx.recv_frame().expect("responses survive") {
            RecvFrame::Frame(f) if f.kind == FrameKind::Response => {
                let outcome = decode_response(&f).expect("well-formed response");
                assert!(outcome.is_ok(), "request {} must serve Ok", f.id);
                got.push(f.id);
            }
            RecvFrame::Frame(f) => panic!("unexpected {:?} frame", f.kind),
            RecvFrame::Idle => continue,
            RecvFrame::Eof => panic!("premature EOF with {got:?}"),
        }
    }
    assert_eq!(got, (0..total).collect::<Vec<_>>(), "FIFO responses");
    let mut tx = sender.join().expect("sender never panics");
    assert_eq!(tx.stats.frames_out, total + 1, "hello + every request sent");
    tx.shutdown_write();

    let metrics = server.shutdown().expect("clean drain");
    assert_eq!(metrics.service.completed(), total);
}

// ---------------------------------------------------------------------
// Drain with a half-open connection (conn_aborted)
// ---------------------------------------------------------------------

/// A connection that handshakes, sends half a frame, then goes silent
/// cannot hold drain hostage: `shutdown` completes shortly after the
/// grace window, the stuck connection is aborted and counted, and work
/// accepted on healthy connections is fully served first.
#[test]
fn drain_aborts_half_open_connections_after_grace() {
    let listener = MemListener::new(1 << 16, tick());
    let grace = Duration::from_millis(40);
    let config = RemoteConfig {
        drain_grace: grace,
        ..remote_config()
    };
    let server = RemoteServer::start(service_config(), config, Box::new(listener.clone()))
        .expect("config is valid");

    // A healthy client completes one request — drain must preserve it.
    let mut healthy = RemoteClient::new(Box::new(listener.clone()), 1);
    let outcome = healthy.call(&request(1)).expect("clean wire");
    assert!(outcome.is_ok());
    healthy.goodbye();

    // The half-open peer: full handshake, then half a request frame,
    // then silence — never a FIN, never the rest of the frame.
    let raw = listener.connect().expect("listener open");
    let mut stuck_half = raw.try_clone().expect("mem transport clones");
    let mut hio = FrameIo::new(
        Box::new(raw),
        99,
        WireDir::ClientToServer,
        WireFaultPlan::none(),
        WireClock::new(),
    );
    hio.send_frame(&encode_hello(
        FrameKind::Hello,
        99,
        &Hello {
            protocol: PROTOCOL_VERSION as u32,
            max_payload: DEFAULT_MAX_PAYLOAD,
            window: 1,
        },
    ))
    .expect("hello fits");
    loop {
        match hio.recv_frame().expect("handshake survives") {
            RecvFrame::Frame(f) if f.kind == FrameKind::HelloAck => break,
            RecvFrame::Frame(f) => panic!("expected HelloAck, got {:?}", f.kind),
            RecvFrame::Idle => continue,
            RecvFrame::Eof => panic!("server hung up mid-handshake"),
        }
    }
    let frame_bytes =
        wserv::wire::encode_frame(&encode_request(0, &request(9)).expect("request encodes"))
            .expect("request frame encodes");
    stuck_half
        .send(&frame_bytes[..frame_bytes.len() / 2])
        .expect("partial frame lands in the pipe");

    // Give the reader a tick to buffer the partial frame, then drain.
    std::thread::sleep(Duration::from_millis(5));
    let t0 = Instant::now();
    let metrics = server
        .shutdown()
        .expect("drain completes despite the half-open peer");
    let took = t0.elapsed();
    assert!(
        took < grace * 50,
        "drain must not hang on a half-open connection (took {took:?})"
    );
    assert!(
        metrics.transport.conn_aborted >= 1,
        "the half-open connection is aborted and counted"
    );
    assert_eq!(
        metrics.service.completed(),
        1,
        "accepted work survives drain"
    );

    // The aborted peer observes a reset, not a clean goodbye.
    let observed = loop {
        match hio.recv_frame() {
            Ok(RecvFrame::Idle) => continue,
            other => break other,
        }
    };
    assert!(
        matches!(
            observed,
            Err(TransportError::ConnReset) | Ok(RecvFrame::Eof)
        ),
        "half-open peer sees the connection die, got {observed:?}"
    );
}

// ---------------------------------------------------------------------
// Handshake mismatch
// ---------------------------------------------------------------------

/// A client speaking the wrong protocol version gets a terminal typed
/// [`TransportError::HandshakeMismatch`] — no retries, no service
/// traffic — and the server counts the refusal.
#[test]
fn protocol_mismatch_is_terminal_and_typed() {
    let listener = MemListener::new(1 << 16, tick());
    let server = RemoteServer::start(
        service_config(),
        remote_config(),
        Box::new(listener.clone()),
    )
    .expect("config is valid");

    let mut wrong = RemoteClient::new(Box::new(listener.clone()), 3)
        .with_claimed_protocol(PROTOCOL_VERSION as u32 + 41)
        .with_retry(fast_retry());
    match wrong.call(&request(1)) {
        Err(TransportError::HandshakeMismatch { detail }) => {
            assert!(
                detail.contains("protocol"),
                "diagnostic names the cause: {detail}"
            );
        }
        other => panic!("expected HandshakeMismatch, got {other:?}"),
    }
    assert_eq!(wrong.retries, 0, "mismatch is terminal, never retried");
    wrong.goodbye();

    let metrics = server.shutdown().expect("clean drain");
    assert!(metrics.transport.handshake_mismatch >= 1);
    assert_eq!(
        metrics.service.completed(),
        0,
        "no work crossed the bad handshake"
    );
}

// ---------------------------------------------------------------------
// Shim / TCP parity
// ---------------------------------------------------------------------

/// The same seed, the same requests, the same fault plan: the in-memory
/// shim and localhost TCP produce the identical outcome book. The shim
/// is the sandbox stand-in for the real wire, so divergence here means
/// one of them lies about the protocol.
#[test]
fn shim_and_tcp_produce_identical_outcome_books() {
    let (clients, reqs) = (2u64, 6u64);
    let plan = wire_plan();

    let faulty = || RemoteConfig {
        wire_faults: wire_plan(),
        ..remote_config()
    };
    let shim_book = {
        let listener = MemListener::new(1 << 16, tick());
        let server = RemoteServer::start(service_config(), faulty(), Box::new(listener.clone()))
            .expect("config is valid");
        let (book, _) = drive(|_| Box::new(listener.clone()), clients, reqs, &plan);
        let metrics = server.shutdown().expect("clean drain");
        assert_eq!(metrics.service.completed(), clients * reqs);
        book
    };

    let tcp_book = {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0", tick()).expect("loopback bind");
        let addr = acceptor.local_addr();
        let server = RemoteServer::start(service_config(), faulty(), Box::new(acceptor))
            .expect("config is valid");
        let (book, _) = drive(
            |_| Box::new(TcpConnector { addr, tick: tick() }),
            clients,
            reqs,
            &plan,
        );
        let metrics = server.shutdown().expect("clean drain");
        assert_eq!(metrics.service.completed(), clients * reqs);
        book
    };

    assert_eq!(shim_book, tcp_book, "same seed, same book, different bytes");
    assert!(
        shim_book.iter().all(|&(_, _, ok)| ok),
        "everything resolves Ok"
    );
}

// ---------------------------------------------------------------------
// Handshake payload negotiation
// ---------------------------------------------------------------------

/// Both sides settle on `min(client, server)` regardless of which end
/// announces the smaller window, and the settled window is *enforced*:
/// a request the negotiated window cannot frame fails typed at the
/// client's send path, terminally, without poisoning the connection
/// for later well-sized requests.
#[test]
fn handshake_negotiates_min_payload_in_both_directions() {
    // Client announces the smaller window.
    let listener = MemListener::new(1 << 16, tick());
    let server = RemoteServer::start(
        service_config(),
        remote_config(),
        Box::new(listener.clone()),
    )
    .expect("config is valid");
    let mut small_client = RemoteClient::new(Box::new(listener.clone()), 1).with_max_payload(4096);
    let outcome = small_client.call(&request(1)).expect("16x16 fits 4 KiB");
    assert!(outcome.is_ok());
    assert_eq!(
        small_client.negotiated_max_payload(),
        Some(4096),
        "server must honor the client's smaller announcement"
    );

    // An oversized request against the negotiated window fails typed at
    // send time — terminal, no retries — and the connection survives.
    let big = DecomposeRequest::new(image(32, 3), FilterBank::cdf53(), 2);
    match small_client.call(&big) {
        Err(TransportError::FrameTooLarge { len, max }) => {
            assert!(len > max, "diagnostic carries the sizes: {len} vs {max}");
            assert_eq!(max, 4096);
        }
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
    assert_eq!(small_client.retries, 0, "oversized send is never retried");
    let outcome = small_client
        .call(&request(2))
        .expect("well-sized follow-up still serves");
    assert!(outcome.is_ok());
    small_client.goodbye();
    server.shutdown().expect("clean drain");

    // Server announces the smaller window; the client clamps to it.
    let listener = MemListener::new(1 << 16, tick());
    let config = RemoteConfig {
        max_payload: 4096,
        ..remote_config()
    };
    let server = RemoteServer::start(service_config(), config, Box::new(listener.clone()))
        .expect("config is valid");
    let mut client = RemoteClient::new(Box::new(listener.clone()), 2);
    let outcome = client.call(&request(1)).expect("16x16 fits 4 KiB");
    assert!(outcome.is_ok());
    assert_eq!(
        client.negotiated_max_payload(),
        Some(4096),
        "client must clamp to the server's smaller announcement"
    );
    client.goodbye();
    server.shutdown().expect("clean drain");
}

/// A zero-attempt retry policy is a configuration bug, not a spin loop:
/// `call` fails typed before anything touches the wire.
#[test]
fn zero_attempt_retry_policy_fails_typed_without_traffic() {
    let listener = MemListener::new(1 << 16, tick());
    let server = RemoteServer::start(
        service_config(),
        remote_config(),
        Box::new(listener.clone()),
    )
    .expect("config is valid");
    let mut client = RemoteClient::new(Box::new(listener.clone()), 9).with_retry(RetryPolicy {
        max_attempts: 0,
        ..fast_retry()
    });
    match client.call(&request(1)) {
        Err(TransportError::InvalidConfig { detail }) => {
            assert!(detail.contains("max_attempts"), "names the field: {detail}");
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
    assert_eq!(client.retries, 0);
    assert_eq!(client.transport.frames_out, 0, "nothing touched the wire");
    let metrics = server.shutdown().expect("clean drain");
    assert_eq!(metrics.service.completed(), 0);
}

// ---------------------------------------------------------------------
// Progressive delivery end-to-end
// ---------------------------------------------------------------------

/// A progressive-lossless server delivers responses as header + plane
/// sequences, and the reassembled pyramid is bitwise identical to the
/// local engine oracle — over the shim and over TCP.
#[test]
fn progressive_lossless_is_bitwise_equal_to_oracle_over_shim_and_tcp() {
    let run = |connector: Box<dyn Connector>, server: RemoteServer| {
        let mut client = RemoteClient::new(connector, 4);
        for salt in 0..3u64 {
            let req = request(salt);
            let oracle = dwt::dwt2d::decompose(&req.image, &req.bank, req.levels, req.mode)
                .expect("oracle geometry is valid");
            let resp = client
                .call(&req)
                .expect("clean wire")
                .expect("request serves Ok");
            assert_eq!(resp.pyramid, oracle, "lossless progressive is bitwise");
            assert_eq!(resp.error_bound, 0.0);
            assert!(!resp.degraded);
        }
        assert_eq!(client.progressive.headers, 3, "every response streamed");
        assert_eq!(
            client.progressive.planes,
            3 * 3 * 2,
            "3 responses x 2 levels x 3 bands"
        );
        assert_eq!(client.progressive.cancels, 0, "no tolerance, no cancels");
        client.goodbye();
        let metrics = server.shutdown().expect("clean drain");
        assert_eq!(metrics.service.completed(), 3);
        assert_eq!(metrics.transport.planes_sent, 3 * 3 * 2);
    };

    let progressive = || RemoteConfig {
        progressive: Some(CheckpointCodec::Raw),
        ..remote_config()
    };
    let listener = MemListener::new(1 << 16, tick());
    let server = RemoteServer::start(service_config(), progressive(), Box::new(listener.clone()))
        .expect("config is valid");
    run(Box::new(listener), server);

    let acceptor = TcpAcceptor::bind("127.0.0.1:0", tick()).expect("loopback bind");
    let addr = acceptor.local_addr();
    let server = RemoteServer::start(service_config(), progressive(), Box::new(acceptor))
        .expect("config is valid");
    run(Box::new(TcpConnector { addr, tick: tick() }), server);
}

/// A tolerance-carrying client cancels once the running bound is good
/// enough; the partial response's *reported* bound is at most the
/// tolerance and its *actual* error versus the local oracle never
/// exceeds the report — over the shim and over TCP.
#[test]
fn progressive_tolerance_cancels_and_the_bound_is_honest() {
    let codec = CheckpointCodec::WaveletQuant {
        threshold: 1e-6,
        step: 0.0,
    };
    let tolerance = 40.0;
    let run = |connector: Box<dyn Connector>, server: RemoteServer| {
        let mut client = RemoteClient::new(connector, 5).with_tolerance(tolerance);
        for salt in 0..3u64 {
            // Deeper decompositions give the client planes to skip.
            let req = DecomposeRequest::new(image(32, salt), FilterBank::cdf53(), 3);
            let oracle = dwt::dwt2d::decompose(&req.image, &req.bank, req.levels, req.mode)
                .expect("oracle geometry is valid");
            let resp = client
                .call(&req)
                .expect("clean wire")
                .expect("request serves Ok");
            assert!(
                resp.error_bound <= tolerance,
                "reported bound {} must meet the tolerance",
                resp.error_bound
            );
            let actual =
                pyramid_max_abs_diff(&resp.pyramid, &oracle).expect("geometry matches the oracle");
            assert!(
                actual <= resp.error_bound,
                "actual error {actual} exceeds the reported bound {}",
                resp.error_bound
            );
        }
        assert!(
            client.progressive.partial_responses >= 1,
            "a 40.0 tolerance on this imagery must cut at least one sequence short, tally {:?}",
            client.progressive
        );
        assert_eq!(
            client.progressive.cancels, client.progressive.partial_responses,
            "every partial resolution sent its Cancel"
        );
        client.goodbye();
        let metrics = server.shutdown().expect("clean drain");
        assert_eq!(metrics.service.completed(), 3, "cancel never loses work");
    };

    let progressive = || RemoteConfig {
        progressive: Some(codec),
        ..remote_config()
    };
    let listener = MemListener::new(1 << 16, tick());
    let server = RemoteServer::start(service_config(), progressive(), Box::new(listener.clone()))
        .expect("config is valid");
    run(Box::new(listener), server);

    let acceptor = TcpAcceptor::bind("127.0.0.1:0", tick()).expect("loopback bind");
    let addr = acceptor.local_addr();
    let server = RemoteServer::start(service_config(), progressive(), Box::new(acceptor))
        .expect("config is valid");
    run(Box::new(TcpConnector { addr, tick: tick() }), server);
}

/// A byte-budget client stops reading once the budget's worth of
/// response bytes has landed — even with no tolerance at all — and the
/// partial response's reported bound stays honest against the local
/// oracle. Work is never lost: the server's books still read complete.
#[test]
fn byte_budget_cuts_delivery_and_surfaces_the_stop() {
    let codec = CheckpointCodec::WaveletQuant {
        threshold: 1e-6,
        step: 0.0,
    };
    let budget = 4096usize;
    let run = |connector: Box<dyn Connector>, server: RemoteServer| {
        let mut client = RemoteClient::new(connector, 6).with_byte_budget(budget);
        for salt in 0..3u64 {
            // Deep decompositions of a 32x32 image stream far more
            // than 4 KiB, so the budget always fires mid-sequence.
            let req = DecomposeRequest::new(image(32, salt), FilterBank::cdf53(), 3);
            let oracle = dwt::dwt2d::decompose(&req.image, &req.bank, req.levels, req.mode)
                .expect("oracle geometry is valid");
            let resp = client
                .call(&req)
                .expect("clean wire")
                .expect("request serves Ok");
            let actual =
                pyramid_max_abs_diff(&resp.pyramid, &oracle).expect("geometry matches the oracle");
            assert!(
                actual <= resp.error_bound,
                "actual error {actual} exceeds the reported bound {}",
                resp.error_bound
            );
        }
        assert!(
            client.progressive.budget_stops >= 1,
            "a 4 KiB budget on this imagery must stop at least one sequence, tally {:?}",
            client.progressive
        );
        assert_eq!(
            client.progressive.budget_stops, client.progressive.cancels,
            "with no tolerance every cancel is a budget stop"
        );
        assert_eq!(
            client.progressive.cancels, client.progressive.partial_responses,
            "every budget stop resolved from the partial reassembly"
        );
        client.goodbye();
        let metrics = server.shutdown().expect("clean drain");
        assert_eq!(
            metrics.service.completed(),
            3,
            "the budget never loses work"
        );
    };

    let progressive = || RemoteConfig {
        progressive: Some(codec),
        ..remote_config()
    };
    let listener = MemListener::new(1 << 16, tick());
    let server = RemoteServer::start(service_config(), progressive(), Box::new(listener.clone()))
        .expect("config is valid");
    run(Box::new(listener), server);

    let acceptor = TcpAcceptor::bind("127.0.0.1:0", tick()).expect("loopback bind");
    let addr = acceptor.local_addr();
    let server = RemoteServer::start(service_config(), progressive(), Box::new(acceptor))
        .expect("config is valid");
    run(Box::new(TcpConnector { addr, tick: tick() }), server);
}

/// Progressive delivery + tolerance cancels + seeded wire chaos: every
/// request still resolves exactly once (the dedup book replays recorded
/// outcomes; cancelled sequences never un-execute work), and the books
/// all read Ok.
#[test]
fn progressive_chaos_keeps_exactly_once_accounting() {
    let (clients, reqs) = (3u64, 6u64);
    let listener = MemListener::new(1 << 16, tick());
    let config = RemoteConfig {
        wire_faults: wire_plan(),
        progressive: Some(CheckpointCodec::WaveletQuant {
            threshold: 1e-6,
            step: 0.0,
        }),
        ..remote_config()
    };
    let server = RemoteServer::start(service_config(), config, Box::new(listener.clone()))
        .expect("config is valid");

    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let plan = wire_plan();
            let conn = Box::new(listener.clone());
            std::thread::spawn(move || {
                let mut client = RemoteClient::new(conn, c)
                    .with_faults(plan)
                    .with_retry(fast_retry())
                    .with_response_timeout(Duration::from_secs(5))
                    .with_tolerance(40.0);
                let mut ok = 0u64;
                for k in 0..reqs {
                    let req = DecomposeRequest::new(image(32, c * 100 + k), FilterBank::cdf53(), 3);
                    let outcome = client.call(&req).unwrap_or_else(|e| {
                        panic!("client {c} request {k}: transport gave up: {e}")
                    });
                    assert!(outcome.is_ok(), "client {c} request {k} resolves Ok");
                    ok += 1;
                }
                client.goodbye();
                (ok, client.retries, client.progressive)
            })
        })
        .collect();
    let mut oks = 0;
    let mut partials = 0;
    for h in handles {
        let (ok, _, tally) = h.join().expect("client threads never panic");
        oks += ok;
        partials += tally.partial_responses;
    }
    assert_eq!(oks, clients * reqs);
    assert!(partials >= 1, "the tolerance must trip at least once");

    let metrics = server.shutdown().expect("clean drain");
    assert_eq!(
        metrics.service.completed(),
        clients * reqs,
        "exactly-once accounting survives cancels under chaos"
    );
}
