//! End-to-end fidelity of the simulated applications: parallel runs must
//! reproduce the sequential physics, budgets must account for all time,
//! and everything must be deterministic.

use nbody::force::ForceParams;
use nbody::parallel::NbodyConfig;
use paragon::{MachineSpec, Mapping, SpmdConfig};
use pic::parallel::{GsumAlgo, ParPicConfig};
use pic::sim::{PicConfig, PicState};

fn paragon(p: usize) -> SpmdConfig {
    SpmdConfig::new(MachineSpec::paragon(), p, Mapping::Snake)
}

#[test]
fn nbody_parallel_equals_serial_on_both_machines() {
    let init = nbody::galaxy::two_galaxies(96, 3);
    let mut reference = init.clone();
    nbody::serial::run(&mut reference, &ForceParams::default(), 0.01, 2);
    let cfg = NbodyConfig::manager(ForceParams::default(), 0.01, 2);
    for scfg in [
        paragon(6),
        SpmdConfig::new(MachineSpec::t3d(), 6, Mapping::RowMajor),
    ] {
        let run = nbody::parallel::run_parallel(&scfg, &cfg, &init);
        assert_eq!(run.bodies, reference, "{}", scfg.machine.name);
    }
}

#[test]
fn pic_parallel_tracks_serial_on_both_machines() {
    let init = pic::particle::uniform_plasma(400, 8, 0.2, 9);
    let mut serial = PicState {
        cfg: PicConfig {
            m: 8,
            ..Default::default()
        },
        particles: init.clone(),
    };
    for _ in 0..2 {
        pic::sim::step(&mut serial);
    }
    for machine in [MachineSpec::paragon(), MachineSpec::t3d()] {
        let scfg = SpmdConfig::new(machine, 4, Mapping::RowMajor);
        let cfg = ParPicConfig {
            pic: PicConfig {
                m: 8,
                ..Default::default()
            },
            steps: 2,
            gsum: GsumAlgo::TreePrefix,
        };
        let run = pic::parallel::run_parallel(&scfg, &cfg, &init);
        for (a, b) in run.particles.iter().zip(&serial.particles) {
            for d in 0..3 {
                assert!(
                    (a.pos[d] - b.pos[d]).abs() < 1e-6,
                    "{}: {:?} vs {:?}",
                    scfg.machine.name,
                    a.pos,
                    b.pos
                );
            }
        }
    }
}

#[test]
fn budgets_account_for_all_time() {
    // useful + comm + redundancy-ish + wait must equal each rank's
    // completion time (nothing leaks out of the accounting).
    let init = nbody::galaxy::two_galaxies(128, 5);
    let cfg = NbodyConfig::manager(ForceParams::default(), 0.01, 2);
    let run = nbody::parallel::run_parallel(&paragon(8), &cfg, &init);
    for (rank, b) in run.budgets.iter().enumerate() {
        let sum = b.useful + b.communication + b.duplication + b.unique_redundancy + b.wait;
        assert!(
            (sum - b.completion).abs() < 1e-9 * b.completion.max(1e-12),
            "rank {rank}: categories sum to {sum}, completion {}",
            b.completion
        );
    }
}

#[test]
fn whole_stack_is_deterministic() {
    let init = nbody::galaxy::two_galaxies(64, 1);
    let cfg = NbodyConfig::manager(ForceParams::default(), 0.01, 1);
    let a = nbody::parallel::run_parallel(&paragon(4), &cfg, &init);
    let b = nbody::parallel::run_parallel(&paragon(4), &cfg, &init);
    assert_eq!(a.bodies, b.bodies);
    assert_eq!(a.budgets, b.budgets);

    let pinit = pic::particle::uniform_plasma(200, 8, 0.2, 2);
    let pcfg = ParPicConfig {
        pic: PicConfig {
            m: 8,
            ..Default::default()
        },
        steps: 2,
        gsum: GsumAlgo::NaiveGssum,
    };
    let x = pic::parallel::run_parallel(&paragon(4), &pcfg, &pinit);
    let y = pic::parallel::run_parallel(&paragon(4), &pcfg, &pinit);
    assert_eq!(x.particles, y.particles);
    assert_eq!(x.budgets, y.budgets);
}

#[test]
fn more_ranks_never_break_correctness_under_odd_counts() {
    // Rank counts that do not divide the problem sizes evenly.
    let init = nbody::galaxy::two_galaxies(101, 8);
    let mut reference = init.clone();
    nbody::serial::run(&mut reference, &ForceParams::default(), 0.01, 1);
    let cfg = NbodyConfig::manager(ForceParams::default(), 0.01, 1);
    for p in [3usize, 5, 7, 11] {
        let run = nbody::parallel::run_parallel(&paragon(p), &cfg, &init);
        assert_eq!(run.bodies, reference, "P={p}");
    }
}
