//! Reduced-size versions of every headline experimental *shape* from the
//! report, asserted as invariants: who wins, in which direction, and
//! where behaviour changes.

use dwt::FilterBank;
use dwt_mimd::{run_mimd_dwt, GuardOrdering, MimdDwtConfig};
use imagery::{landsat_scene, SceneParams};
use maspar::{dilution, systolic, MasParCost, SimdMachine, Virtualization};
use nbody::force::ForceParams;
use paragon::{MachineSpec, Mapping, SpmdConfig};
use pic::parallel::{GsumAlgo, ParPicConfig};
use pic::sim::PicConfig;

fn paragon(p: usize, mapping: Mapping) -> SpmdConfig {
    SpmdConfig::new(MachineSpec::paragon(), p, mapping)
}

/// Table 1's machine ordering: MasPar ≪ Paragon-32 < Paragon-1 < DEC.
#[test]
fn table1_machine_ordering() {
    let image = landsat_scene(128, 128, SceneParams::default());
    let bank = FilterBank::daubechies(8).unwrap();

    let mut mp2 = SimdMachine::mp2_16k();
    systolic::decompose(&mut mp2, &image, &bank, 1).unwrap();
    let t_maspar = mp2.seconds();

    let cfg = MimdDwtConfig::tuned(bank.clone(), 1);
    let t_p1 = run_mimd_dwt(&paragon(1, Mapping::Snake), &cfg, &image)
        .unwrap()
        .parallel_time();
    let t_p32 = run_mimd_dwt(&paragon(32, Mapping::Snake), &cfg, &image)
        .unwrap()
        .parallel_time();
    let t_dec = run_mimd_dwt(
        &SpmdConfig::new(MachineSpec::dec5000(), 1, Mapping::RowMajor),
        &cfg,
        &image,
    )
    .unwrap()
    .parallel_time();

    assert!(t_maspar < t_p32, "MasPar {t_maspar} !< Paragon32 {t_p32}");
    assert!(t_p32 < t_p1, "Paragon32 {t_p32} !< Paragon1 {t_p1}");
    assert!(t_p1 < t_dec, "Paragon1 {t_p1} !< DEC {t_dec}");
    // "Two orders of magnitude improvement over a workstation".
    assert!(
        t_dec / t_maspar > 50.0,
        "MasPar gain only {}x",
        t_dec / t_maspar
    );
}

/// Figures 5-7: the snake mapping with simultaneous exchange beats the
/// naive row-major + chain-ordered version at scale, and the advantage
/// of going from 16 to 32 ranks is small for the naive version
/// ("prevents scalability").
#[test]
fn figures_5_7_naive_collapse() {
    let image = landsat_scene(128, 128, SceneParams::default());
    let bank = FilterBank::daubechies(8).unwrap();
    let tuned = MimdDwtConfig::tuned(bank.clone(), 1);
    let naive_cfg = MimdDwtConfig {
        ordering: GuardOrdering::ChainOrdered,
        ..tuned.clone()
    };
    let snake = |p| {
        run_mimd_dwt(&paragon(p, Mapping::Snake), &tuned, &image)
            .unwrap()
            .parallel_time()
    };
    let naive = |p| {
        run_mimd_dwt(&paragon(p, Mapping::RowMajor), &naive_cfg, &image)
            .unwrap()
            .parallel_time()
    };
    // At 4 ranks both behave similarly (within 15%).
    let (s4, n4) = (snake(4), naive(4));
    assert!((n4 - s4).abs() / s4 < 0.15, "s4={s4} n4={n4}");
    // At 16 ranks the naive version is clearly worse.
    let (s16, n16) = (snake(16), naive(16));
    assert!(n16 > 1.05 * s16, "s16={s16} n16={n16}");
    // And the naive version gains little or nothing from 16 -> 32 while
    // snake keeps improving.
    let (s32, n32) = (snake(32), naive(32));
    assert!(s32 < s16);
    let naive_gain = n16 / n32;
    let snake_gain = s16 / s32;
    assert!(
        naive_gain < snake_gain,
        "naive gain {naive_gain} !< snake gain {snake_gain}"
    );
}

/// §4.1: hierarchical virtualization beats cut-and-stack; the dilution
/// algorithm never touches the router.
#[test]
fn maspar_design_claims() {
    let image = landsat_scene(128, 128, SceneParams::default());
    let bank = FilterBank::daubechies(4).unwrap();
    let run = |virt, diluted: bool| {
        let mut m = SimdMachine::new(16, 16, MasParCost::mp2(), virt);
        if diluted {
            dilution::decompose(&mut m, &image, &bank, 2).unwrap();
        } else {
            systolic::decompose(&mut m, &image, &bank, 2).unwrap();
        }
        (m.seconds(), m.router_transactions())
    };
    let (hier, _) = run(Virtualization::Hierarchical, false);
    let (cut, _) = run(Virtualization::CutAndStack, false);
    assert!(hier < cut, "hierarchical {hier} !< cut&stack {cut}");
    let (_, router_dil) = run(Virtualization::Hierarchical, true);
    assert_eq!(router_dil, 0, "dilution must avoid the router");
    // MP-1 vs MP-2 generation gap.
    let mut mp1 = SimdMachine::new(16, 16, MasParCost::mp1(), Virtualization::Hierarchical);
    systolic::decompose(&mut mp1, &image, &bank, 2).unwrap();
    assert!(mp1.seconds() > 3.0 * hier, "MP-1 should be much slower");
}

/// Appendix B: the gssum-style global sum collapses at 16+ ranks while
/// the tree version keeps scaling (PIC), and the T3D beats the Paragon
/// far more on N-body than on PIC.
#[test]
fn appendix_b_shapes() {
    // gssum vs tree on PIC.
    let init = pic::particle::uniform_plasma(20_000, 8, 0.2, 1);
    let run = |algo, p| {
        let cfg = ParPicConfig {
            pic: PicConfig {
                m: 8,
                ..Default::default()
            },
            steps: 1,
            gsum: algo,
        };
        pic::parallel::run_parallel(&paragon(p, Mapping::Snake), &cfg, &init).parallel_time()
    };
    let naive16 = run(GsumAlgo::NaiveGssum, 16);
    let tree16 = run(GsumAlgo::TreePrefix, 16);
    assert!(tree16 < naive16, "tree {tree16} !< gssum {naive16} at P=16");
    // gssum is fine at 4 ranks (the report: "works very efficiently for
    // 4- and 8-processor partitions").
    let naive4 = run(GsumAlgo::NaiveGssum, 4);
    let tree4 = run(GsumAlgo::TreePrefix, 4);
    assert!((naive4 - tree4).abs() / tree4 < 0.35, "{naive4} vs {tree4}");

    // Machine ratios per application.
    let mut bodies = nbody::galaxy::two_galaxies(512, 1);
    let stats = nbody::serial::step(&mut bodies, &ForceParams::default(), 0.01);
    let nb_ratio = nbody::serial::charged_seconds(&MachineSpec::paragon(), 512, &stats)
        / nbody::serial::charged_seconds(&MachineSpec::t3d(), 512, &stats);
    let pic_ratio = pic::parallel::serial_step_seconds(&MachineSpec::paragon(), 100_000, 16, false)
        / pic::parallel::serial_step_seconds(&MachineSpec::t3d(), 100_000, 16, false);
    assert!(
        nb_ratio > 2.0 * pic_ratio,
        "N-body should gain far more from the Alpha: nbody {nb_ratio:.1}x vs pic {pic_ratio:.1}x"
    );
}

/// Link statistics quantify the routing behaviour behind figures 4-7:
/// snake neighbours are always one hop apart and never share a link;
/// the naive placement's wrap messages take long multi-hop routes; and
/// concentrated traffic (the scatter/gather of the measured sessions)
/// genuinely stalls on shared links. Notably, the pairwise guard
/// exchanges alone do *not* stall even under the naive placement — the
/// per-message software overhead staggers them — which is why the naive
/// collapse also needs the blocking-chain effect (see EXPERIMENTS.md).
#[test]
fn link_stats_quantify_routing_behaviour() {
    let guard_stats = |mapping: Mapping| {
        let scfg = paragon(16, mapping);
        paragon::run_spmd(&scfg, |ctx| {
            // One bidirectional guard-exchange round.
            let me = ctx.rank();
            let n = ctx.nranks();
            let mut out = Vec::new();
            if me + 1 < n {
                out.push((me + 1, vec![0u8; 8192], 8192));
            }
            if me > 0 {
                out.push((me - 1, vec![0u8; 8192], 8192));
            }
            ctx.exchange(out)?;
            Ok(())
        })
        .expect("fault-free simulator configuration")
        .net
    };
    let snake = guard_stats(Mapping::Snake);
    let naive = guard_stats(Mapping::RowMajor);
    assert_eq!(snake.stall_s, 0.0, "snake neighbours never share a link");
    assert_eq!(
        snake.hops, snake.messages,
        "every snake guard message is exactly one hop"
    );
    assert!(naive.hops > snake.hops, "row-major wraps take extra hops");

    // Concentrated traffic: everyone sends to rank 0 at once — the
    // in-links of node 0 must serialize (stall > 0).
    let gather = paragon::run_spmd(&paragon(16, Mapping::Snake), |ctx| {
        let out = if ctx.rank() != 0 {
            vec![(0usize, vec![0u8; 65536], 65536)]
        } else {
            Vec::new()
        };
        ctx.exchange(out)?;
        Ok(())
    })
    .expect("fault-free simulator configuration")
    .net;
    assert!(
        gather.stall_s > 0.0,
        "many-to-one traffic must stall on shared links"
    );
}

/// Appendix B figure 9: paging makes single-node times superlinear.
#[test]
fn figure9_paging_threshold() {
    let m = 32;
    let mem = 32usize << 20;
    let below = 512 * 1024; // ~25 MB working set
    let above = 1 << 20; // ~49 MB
    let p = MachineSpec::paragon();
    let t_below_fair = pic::parallel::serial_step_seconds(&p, below, m, false);
    let t_below_real = pic::parallel::serial_step_seconds(&p, below, m, true);
    assert_eq!(t_below_fair, t_below_real, "below memory: no paging");
    let t_above_fair = pic::parallel::serial_step_seconds(&p, above, m, false);
    let t_above_real = pic::parallel::serial_step_seconds(&p, above, m, true);
    assert!(
        t_above_real > 2.0 * t_above_fair,
        "above memory must page hard"
    );
    let ws = above * pic::cost::PARTICLE_BYTES;
    assert!(ws > mem, "sanity: the 1M working set exceeds node memory");
}
