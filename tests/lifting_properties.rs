//! Property tests pinning the fused lifting engine to the naive
//! lifting oracle, and the reversible integer transforms to bitwise
//! round trips.
//!
//! Three pins, per ISSUE 6:
//!
//! * the engine's fused lifting sweep (selected by a `DwtPlan` built
//!   from a CDF bank) agrees with the hidden straight-line oracle in
//!   `dwt::lifting` to 1e-12 — it is designed to be bit-identical;
//! * the CDF 9/7 analysis/synthesis round trip is exact to 1e-10;
//! * the rounded integer transforms round-trip **bitwise (0 ULP)** on
//!   random i16-range matrices, across sizes *including odd
//!   dimensions*, where the f64 path cannot even run.

use dwt::engine::{lifting as elift, DwtPlan, KernelKind};
use dwt::lifting::{self, LiftingKind};
use dwt::{Boundary, FilterBank, Matrix};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = LiftingKind> {
    prop_oneof![Just(LiftingKind::Cdf97), Just(LiftingKind::LeGall53)]
}

/// Deterministic image mixing a random texture sample with smooth
/// structure, so wrap rows and pipeline margins see non-trivial data.
fn build_image(rows: usize, cols: usize, noise: &[f64]) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        let v = noise[(r * 31 + c * 17) % noise.len()];
        v + (r as f64 * 0.13).sin() * 3.0 - (c as f64 * 0.07).cos() * 2.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Engine lifting == naive oracle, to 1e-12, for both banks across
    /// depths and aspect ratios. Tall images exercise the fused
    /// pipeline; short ones the plain per-stage path.
    #[test]
    fn engine_lifting_matches_oracle(
        kind in arb_kind(),
        levels in 1usize..=4,
        row_blocks in 1usize..=12,
        col_blocks in 1usize..=12,
        noise in prop::collection::vec(-100.0f64..100.0, 64),
    ) {
        let rows = row_blocks << levels;
        let cols = col_blocks << levels;
        let img = build_image(rows, cols, &noise);

        let oracle = lifting::decompose_oracle(&img, kind, levels).unwrap();
        let plan = DwtPlan::new(
            rows,
            cols,
            FilterBank::for_lifting(kind),
            levels,
            Boundary::Periodic,
        )
        .unwrap();
        prop_assert_eq!(plan.kernel(), KernelKind::Lifting(kind));
        let got = plan.decompose(&img).unwrap();

        let d = got.approx.max_abs_diff(&oracle.approx).unwrap();
        prop_assert!(d <= 1e-12, "LL differs by {}", d);
        for (g, o) in got.detail.iter().zip(&oracle.detail) {
            for (name, gm, om) in [
                ("LH", &g.lh, &o.lh),
                ("HL", &g.hl, &o.hl),
                ("HH", &g.hh, &o.hh),
            ] {
                let d = gm.max_abs_diff(om).unwrap();
                prop_assert!(d <= 1e-12, "{} differs by {}", name, d);
            }
        }
    }

    /// Engine lifting synthesis == naive oracle synthesis to 1e-12, and
    /// the CDF 9/7 plan round trip is exact to 1e-10 (relative to the
    /// image magnitude), including workspace reuse across calls.
    #[test]
    fn lifting_round_trip_and_synthesis_oracle(
        kind in arb_kind(),
        levels in 1usize..=4,
        row_blocks in 1usize..=12,
        col_blocks in 1usize..=12,
        noise in prop::collection::vec(-100.0f64..100.0, 64),
    ) {
        let rows = row_blocks << levels;
        let cols = col_blocks << levels;
        let img = build_image(rows, cols, &noise);

        let plan = DwtPlan::new(
            rows,
            cols,
            FilterBank::for_lifting(kind),
            levels,
            Boundary::Periodic,
        )
        .unwrap();
        let mut ws = plan.make_workspace();
        let mut pyr = plan.make_pyramid();
        let mut back = Matrix::zeros(rows, cols);
        let scale = img.data().iter().fold(1.0f64, |a, &v| a.max(v.abs()));
        // Two passes through the same workspace: steady-state reuse must
        // not change the numbers.
        for _ in 0..2 {
            plan.decompose_into(&img, &mut ws, &mut pyr).unwrap();
            plan.reconstruct_into(&pyr, &mut ws, &mut back).unwrap();
            let err = img.max_abs_diff(&back).unwrap();
            prop_assert!(err <= 1e-10 * scale, "round-trip error {}", err);
        }
        let oracle_rec = lifting::reconstruct_oracle(&pyr, kind).unwrap();
        let d = oracle_rec.max_abs_diff(&back).unwrap();
        prop_assert!(d <= 1e-12, "synthesis differs from oracle by {}", d);
    }

    /// 1-D wrappers (now engine-backed) == 1-D oracles, bitwise.
    #[test]
    fn one_dimensional_wrappers_match_oracle(
        kind in arb_kind(),
        half in 1usize..=96,
        noise in prop::collection::vec(-1000.0f64..1000.0, 16),
    ) {
        let n = 2 * half;
        let x: Vec<f64> = (0..n)
            .map(|i| noise[i % noise.len()] + (i as f64 * 0.3).sin())
            .collect();
        let (a, d) = lifting::forward_1d(&x, kind).unwrap();
        let (oa, od) = lifting::forward_1d_oracle(&x, kind).unwrap();
        prop_assert_eq!(&a, &oa);
        prop_assert_eq!(&d, &od);
        let back = lifting::inverse_1d(&a, &d, kind).unwrap();
        let oback = lifting::inverse_1d_oracle(&oa, &od, kind).unwrap();
        prop_assert_eq!(back, oback);
    }

    /// Reversible integer lifting round-trips bitwise — zero ULP — on
    /// i16-range matrices of any shape, odd dimensions included.
    #[test]
    fn integer_lifting_round_trips_bitwise(
        kind in arb_kind(),
        rows in 1usize..=37,
        cols in 1usize..=37,
        levels in 1usize..=4,
        seed in 0u64..=u64::MAX / 2,
    ) {
        let orig: Vec<i32> = (0..rows * cols)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_add(seed)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 40) as i32 & 0xffff) - 32768
            })
            .collect();
        let mut data = orig.clone();
        elift::forward_int(&mut data, rows, cols, levels, kind).unwrap();
        elift::inverse_int(&mut data, rows, cols, levels, kind).unwrap();
        prop_assert_eq!(data, orig);
    }
}
