//! Fault-matrix gate: one configurable crash/drop scenario, driven by
//! environment variables so CI can sweep a grid without recompiling:
//!
//! * `FAULT_DROP_RATE` — link drop probability (default `0.001`);
//! * `FAULT_CRASHES`   — number of rank crashes to inject, `0..=3`
//!   (default `1`).
//!
//! Whatever the grid point, both distributed decompositions and the
//! distributed reconstruction must complete through redistribution and
//! match their fault-free oracles bit for bit.

use dwt::{dwt2d, Boundary, FilterBank, Matrix};
use dwt_mimd::block::run_block_dwt;
use dwt_mimd::idwt::run_mimd_idwt;
use dwt_mimd::{run_mimd_dwt, MimdDwtConfig, ResiliencePolicy};
use paragon::{FaultPlan, MachineSpec, Mapping, SpmdConfig};

const RANKS: usize = 8;
/// Staggered (rank, phase) crash schedule; `FAULT_CRASHES` takes a
/// prefix. Phases are valid for the striped (0..=16), block (0..=19)
/// and reconstruction (0..=13) 3-level resilient schedules.
const CRASHES: [(usize, u64); 3] = [(2, 6), (5, 11), (7, 3)];

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn plan() -> FaultPlan {
    let drop_rate = env_f64("FAULT_DROP_RATE", 0.001);
    let crashes = env_usize("FAULT_CRASHES", 1).min(CRASHES.len());
    let mut plan = FaultPlan::seeded(7).with_drop_rate(drop_rate);
    for &(rank, phase) in &CRASHES[..crashes] {
        plan = plan.with_crash(rank, phase);
    }
    plan
}

#[test]
fn striped_dwt_survives_the_configured_fault_grid_point() {
    let img = Matrix::from_fn(64, 64, |r, c| ((r * 7 + c * 3) % 17) as f64 - 8.0);
    let bank = FilterBank::daubechies(4).unwrap();
    let oracle = dwt2d::decompose(&img, &bank, 3, Boundary::Periodic).unwrap();
    let cfg = MimdDwtConfig::tuned(bank, 3).with_resilience(ResiliencePolicy::Redistribute);
    let scfg = SpmdConfig::new(MachineSpec::paragon(), RANKS, Mapping::Snake).with_faults(plan());
    let run = run_mimd_dwt(&scfg, &cfg, &img).expect("grid point must be recoverable");
    assert_eq!(run.pyramid, oracle, "recovered stripes differ from oracle");
}

#[test]
fn block_dwt_survives_the_configured_fault_grid_point() {
    let img = Matrix::from_fn(64, 64, |r, c| ((r * 7 + c * 3) % 17) as f64 - 8.0);
    let bank = FilterBank::daubechies(4).unwrap();
    let oracle = dwt2d::decompose(&img, &bank, 3, Boundary::Periodic).unwrap();
    let cfg = MimdDwtConfig::tuned(bank, 3).with_resilience(ResiliencePolicy::Redistribute);
    let scfg = SpmdConfig::new(MachineSpec::t3d(), RANKS, Mapping::RowMajor).with_faults(plan());
    let run = run_block_dwt(&scfg, &cfg, &img).expect("grid point must be recoverable");
    assert_eq!(run.pyramid, oracle, "recovered blocks differ from oracle");
}

#[test]
fn reconstruction_survives_the_configured_fault_grid_point() {
    let img = Matrix::from_fn(64, 64, |r, c| ((r * 7 + c * 3) % 17) as f64 - 8.0);
    let bank = FilterBank::daubechies(4).unwrap();
    let pyramid = dwt2d::decompose(&img, &bank, 3, Boundary::Periodic).unwrap();
    let cfg = MimdDwtConfig::tuned(bank, 3);
    // The oracle is the fault-free *distributed* reconstruction: its
    // per-row accumulation order is fixed, so it is rank-count
    // independent, but it associates additions differently from the
    // sequential scatter form.
    let clean = SpmdConfig::new(MachineSpec::paragon(), RANKS, Mapping::Snake);
    let oracle = run_mimd_idwt(&clean, &cfg, &pyramid).expect("fault-free oracle");
    let resilient = cfg.with_resilience(ResiliencePolicy::Redistribute);
    let scfg = clean.with_faults(plan());
    let run = run_mimd_idwt(&scfg, &resilient, &pyramid).expect("grid point must be recoverable");
    assert_eq!(
        run.image, oracle.image,
        "recovered reconstruction differs from the fault-free oracle"
    );
}
