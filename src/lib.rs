//! Umbrella crate of the reproduction of *"Wavelet Decomposition on
//! High-Performance Computing Systems"* (El-Ghazawi & Le Moigne, ICPP
//! 1996) and its companion JNNIE studies.
//!
//! This crate re-exports the member crates so that the examples and
//! integration tests can use every subsystem; see the individual crates
//! for the real APIs:
//!
//! * [`dwt`] — the Mallat multi-resolution transform (the paper's
//!   primary contribution);
//! * [`imagery`] — synthetic Landsat-TM scenes and PGM I/O;
//! * [`maspar`] — the fine-grain SIMD array simulator and algorithms;
//! * [`paragon`] — the coarse-grain message-passing machine simulator;
//! * [`dwt_mimd`] — the distributed wavelet decomposition;
//! * [`perfbudget`] — the overhead-accounting model;
//! * [`nbody`] / [`pic`] — the Appendix B applications;
//! * [`workload`] — the Appendix C characterization framework.

pub use dwt;
pub use dwt_mimd;
pub use imagery;
pub use maspar;
pub use nbody;
pub use paragon;
pub use perfbudget;
pub use pic;
pub use workload;
