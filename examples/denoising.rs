//! Wavelet denoising of a noisy acquisition: estimate the sensor noise
//! from the finest diagonal band, soft-threshold at the universal
//! threshold, and measure the PSNR gain.
//!
//! ```text
//! cargo run --release --example denoising
//! ```

use dwt::compress::psnr;
use dwt::denoise::{denoise, estimate_sigma};
use dwt::FilterBank;
use imagery::pgm::write_pgm;
use imagery::{landsat_scene, SceneParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::path::Path::new("target/denoising");
    std::fs::create_dir_all(out_dir)?;

    // A quiet reference scene and noisy acquisitions of it.
    let clean = landsat_scene(
        256,
        256,
        SceneParams {
            sensor_noise: 0.0,
            ..SceneParams::default()
        },
    );
    write_pgm(&clean, out_dir.join("clean.pgm"))?;
    let bank = FilterBank::daubechies(8)?;

    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>14}",
        "true sigma", "est. sigma", "zeroed", "noisy PSNR", "denoised PSNR"
    );
    for sigma in [4.0f64, 8.0, 16.0] {
        let noisy = landsat_scene(
            256,
            256,
            SceneParams {
                sensor_noise: sigma, // the scene's 3-uniform sum has unit variance
                ..SceneParams::default()
            },
        );
        let est = estimate_sigma(&noisy, &bank)?;
        let (restored, report) = denoise(&noisy, &bank, 3)?;
        let p_noisy = psnr(&clean, &noisy, 255.0).unwrap();
        let p_denoised = psnr(&clean, &restored, 255.0).unwrap();
        println!(
            "{sigma:>12.1} {est:>12.2} {:>11.1}% {p_noisy:>14.2} {p_denoised:>14.2}",
            100.0 * report.zeroed_fraction
        );
        if sigma == 8.0 {
            write_pgm(&noisy, out_dir.join("noisy.pgm"))?;
            write_pgm(&restored, out_dir.join("denoised.pgm"))?;
        }
    }
    println!();
    println!("wrote clean/noisy/denoised images to {}", out_dir.display());
    println!("note: the estimator sees the scene's own fine texture as");
    println!("noise floor, so low-noise estimates saturate near it.");
    Ok(())
}
