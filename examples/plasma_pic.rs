//! The Appendix B plasma application: a 3-D electrostatic PIC simulation
//! of a Langmuir (plasma) oscillation — field and kinetic energy slosh
//! back and forth — plus the worker-worker SPMD port with both global
//! sum algorithms.
//!
//! ```text
//! cargo run --release --example plasma_pic
//! ```

use paragon::{MachineSpec, Mapping, SpmdConfig};
use pic::parallel::{run_parallel, GsumAlgo, ParPicConfig};
use pic::particle::{wrap, Particle};
use pic::sim::{step, PicConfig, PicState};

fn main() {
    // A cold plasma on a lattice with a sinusoidal displacement along x.
    let m = 16usize;
    let mut particles = Vec::new();
    for z in 0..m {
        for y in 0..m {
            for x in 0..m {
                let xf = x as f64 + 0.4 * (2.0 * std::f64::consts::PI * x as f64 / m as f64).sin();
                particles.push(Particle {
                    pos: [wrap(xf, m as f64), y as f64, z as f64],
                    vel: [0.0; 3],
                });
            }
        }
    }
    let mut state = PicState {
        cfg: PicConfig {
            m,
            dt_max: 0.05,
            ..Default::default()
        },
        particles,
    };

    println!(
        "Langmuir oscillation, {} particles on a {m}^3 grid:",
        m * m * m
    );
    println!(
        "{:>6} {:>16} {:>16}",
        "step", "field energy", "kinetic energy"
    );
    for s in 0..60 {
        let diag = step(&mut state);
        if s % 6 == 0 {
            let kinetic: f64 = state
                .particles
                .iter()
                .map(|p| p.vel.iter().map(|v| v * v).sum::<f64>())
                .sum::<f64>()
                / 2.0;
            println!("{s:>6} {:>16.4} {kinetic:>16.4}", diag.field_energy);
        }
    }
    println!("energy oscillates between the field and the particles.");

    // The SPMD port: gssum vs tree global sum on the simulated Paragon.
    println!();
    println!("worker-worker port, 64K particles, 16 Paragon ranks:");
    let init = pic::particle::uniform_plasma(65_536, m, 0.2, 3);
    for (algo, name) in [
        (GsumAlgo::NaiveGssum, "NX gssum (many-to-many)"),
        (GsumAlgo::TreePrefix, "tree/prefix (one-to-one)"),
    ] {
        let cfg = ParPicConfig {
            pic: PicConfig {
                m,
                ..Default::default()
            },
            steps: 1,
            gsum: algo,
        };
        let run = run_parallel(
            &SpmdConfig::new(MachineSpec::paragon(), 16, Mapping::Snake),
            &cfg,
            &init,
        );
        println!("  {name:<26} {:>8.3}s per step", run.parallel_time());
    }
    println!("the paper's replacement of gssum wins at 16 processors.");
}
