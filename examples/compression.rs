//! Wavelet compression of remote-sensing imagery: rate/distortion sweep
//! over the fraction of detail coefficients kept — the image-compression
//! application the paper's introduction motivates.
//!
//! ```text
//! cargo run --release --example compression
//! ```

use dwt::{compress, dwt2d, Boundary, FilterBank};
use imagery::stats::entropy_bits;
use imagery::{landsat_scene, SceneParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = landsat_scene(512, 512, SceneParams::default());
    println!(
        "scene entropy: {:.2} bits/pixel (raw 8-bit storage bound)",
        entropy_bits(&image)
    );

    println!();
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10}",
        "filter", "keep frac", "kept coeffs", "energy kept", "PSNR (dB)"
    );
    for taps in [2usize, 4, 8] {
        let bank = FilterBank::daubechies(taps)?;
        let reference = dwt2d::decompose(&image, &bank, 4, Boundary::Periodic)?;
        for keep in [1.0, 0.25, 0.1, 0.05, 0.02] {
            let mut pyr = reference.clone();
            let stats = compress::compress_to_fraction(&mut pyr, keep);
            let rec = dwt2d::reconstruct(&pyr, &bank, Boundary::Periodic)?;
            let psnr = compress::psnr(&image, &rec, 255.0).expect("same shape");
            println!(
                "{:>8} {:>12.2} {:>12} {:>12.4} {:>10.2}",
                format!("D{taps}"),
                keep,
                stats.kept_detail_coeffs,
                stats.energy_retained,
                psnr
            );
        }
        println!();
    }
    println!("longer filters concentrate energy better: at equal keep");
    println!("fractions D8 should deliver the highest PSNR.");
    Ok(())
}
