//! The Appendix C toolchain end to end: write a small *program*, execute
//! it in the trace VM (the `spy` stage), schedule the dynamic trace on
//! the oracle (the SITA stage), and characterize the workload — then
//! save the trace to disk and show the analysis reproduces from the
//! file.
//!
//! ```text
//! cargo run --release --example trace_pipeline
//! ```

use workload::centroid::Centroid;
use workload::epi::{schedule_executed, MachineModel};
use workload::io::{read_trace, write_trace};
use workload::oracle::{schedule, smoothability};
use workload::program::{counted_loop, trace_program, Inst};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A dot-product-like kernel: load two arrays, multiply-accumulate.
    let body = vec![
        Inst::Load { dst: 5, addr: 0 }, // a[i]
        Inst::Load { dst: 6, addr: 1 }, // b[i]
        Inst::FMul { dst: 7, a: 5, b: 6 },
        Inst::Add { dst: 2, a: 2, b: 7 }, // acc +=
        Inst::Add { dst: 0, a: 0, b: 3 }, // advance pointers
        Inst::Add { dst: 1, a: 1, b: 3 },
    ];
    let mut prog = counted_loop(64, body);
    // Initialize pointers/stride before the loop runs (prepend).
    let mut insts = vec![
        Inst::LoadImm { dst: 0, imm: 0 },
        Inst::LoadImm { dst: 1, imm: 64 },
        Inst::LoadImm { dst: 2, imm: 0 },
        Inst::LoadImm { dst: 3, imm: 1 },
    ];
    insts.append(&mut prog.insts);
    // Fix branch target offset caused by prepending 4 instructions.
    for inst in &mut insts {
        if let Inst::BranchNz { target, .. } = inst {
            *target += 4;
        }
    }
    let prog = workload::program::Program { insts };

    let trace = trace_program(&prog, 128, 100_000)?;
    println!("traced {} dynamic instructions", trace.len());
    let counts = trace.class_counts();
    println!(
        "mix: mem {} / int {} / branch {} / fp {}",
        counts[0], counts[1], counts[2], counts[4]
    );

    let sched = schedule(&trace);
    println!(
        "oracle: CPL = {}, average parallelism = {:.2}",
        sched.cpl(),
        sched.avg_parallelism()
    );
    let c = Centroid::from_schedule(&sched);
    println!(
        "centroid (per cycle): mem {:.2}, int {:.2}, fp {:.2}",
        c.0[0], c.0[1], c.0[4]
    );
    let sm = smoothability(&trace);
    println!("smoothability: {:.3}", sm.smoothability);

    // Executed parallelism on two machine models.
    for (name, m) in [
        ("Cray Y-MP-like", MachineModel::cray_ymp_like()),
        ("narrow RISC", MachineModel::narrow_risc()),
    ] {
        let exec = schedule_executed(&trace, &m);
        println!(
            "executed on {name:<16}: {} cycles ({}x the oracle's)",
            exec.cycles(),
            exec.cycles() / sched.cpl().max(1)
        );
    }

    // Round-trip through the on-disk format.
    let dir = std::path::Path::new("target/trace_pipeline");
    std::fs::create_dir_all(dir)?;
    let path = dir.join("dotprod.trace");
    write_trace(&trace, std::fs::File::create(&path)?)?;
    let back = read_trace(std::io::BufReader::new(std::fs::File::open(&path)?))?;
    assert_eq!(back, trace);
    println!("trace saved to {} and re-read identically", path.display());
    Ok(())
}
