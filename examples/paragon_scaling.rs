//! Run the paper's Paragon scaling experiment end to end on the
//! simulated machine: distributed Mallat decomposition with snake-like
//! placement, checked bit-for-bit against the sequential transform.
//!
//! ```text
//! cargo run --release --example paragon_scaling
//! ```

use dwt::{dwt2d, Boundary, FilterBank};
use dwt_mimd::{run_mimd_dwt, MimdDwtConfig};
use imagery::{landsat_scene, SceneParams};
use paragon::{MachineSpec, Mapping, SpmdConfig};
use perfbudget::BudgetReport;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = landsat_scene(256, 256, SceneParams::default());
    let bank = FilterBank::daubechies(8)?;
    let cfg = MimdDwtConfig::tuned(bank.clone(), 1);

    // Ground truth from the sequential library.
    let reference = dwt2d::decompose(&image, &bank, 1, Boundary::Periodic)?;

    println!("F8/L1 on the simulated Intel Paragon (snake placement):");
    println!(
        "{:>4} {:>12} {:>9} {:>8} {:>8} {:>8}",
        "P", "T(s)", "speedup", "useful", "comm", "imbal"
    );
    let mut t1 = 0.0;
    for p in [1usize, 2, 4, 8, 16, 32] {
        let scfg = SpmdConfig::new(MachineSpec::paragon(), p, Mapping::Snake);
        let run = run_mimd_dwt(&scfg, &cfg, &image)?;
        assert_eq!(
            run.pyramid, reference,
            "distributed result must be bit-identical"
        );
        let t = run.parallel_time();
        if p == 1 {
            t1 = t;
        }
        let rep = BudgetReport::from_ranks(&run.budgets).expect("ranks");
        println!(
            "{p:>4} {t:>12.4} {:>9.2} {:>7.1}% {:>7.1}% {:>7.1}%",
            t1 / t,
            rep.useful_pct(),
            rep.communication_pct(),
            rep.imbalance_pct()
        );
    }
    println!();
    println!("every row produced exactly the same coefficients as the");
    println!("sequential transform — only the virtual time changes.");
    Ok(())
}
