//! Multiscale wavelet edge detection (modulus maxima) on the synthetic
//! Landsat scene — the "feature extraction" application of the paper's
//! introduction — with the maps written out as PGM images.
//!
//! ```text
//! cargo run --release --example edge_detection
//! ls target/edge_detection/
//! ```

use dwt::features::{edge_field, modulus_maxima};
use dwt::{FilterBank, Matrix};
use imagery::pgm::{normalize_for_display, write_pgm};
use imagery::{landsat_scene, SceneParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::path::Path::new("target/edge_detection");
    std::fs::create_dir_all(out_dir)?;

    let scene = landsat_scene(256, 256, SceneParams::default());
    write_pgm(&scene, out_dir.join("scene.pgm"))?;

    let bank = FilterBank::haar();
    println!("multiscale wavelet modulus maxima on a 256x256 scene:");
    println!(
        "{:>6} {:>14} {:>12} {:>14}",
        "scale", "max modulus", "edge pixels", "edge fraction"
    );
    for level in 1..=3usize {
        let field = edge_field(&scene, &bank, level)?;
        // Threshold at 20% of the maximum response at this scale.
        let max_mod = field.modulus.data().iter().cloned().fold(0.0, f64::max);
        let mask = modulus_maxima(&field, 0.2 * max_mod);
        let count = mask.data().iter().filter(|&&v| v > 0.0).count();
        println!(
            "{level:>6} {max_mod:>14.2} {count:>12} {:>14.4}",
            count as f64 / (256.0 * 256.0)
        );
        write_pgm(
            &normalize_for_display(&field.modulus),
            out_dir.join(format!("modulus_l{level}.pgm")),
        )?;
        let display = Matrix::from_fn(256, 256, |r, c| mask.get(r, c) * 255.0);
        write_pgm(&display, out_dir.join(format!("edges_l{level}.pgm")))?;
    }
    println!();
    println!(
        "wrote scene, modulus and edge maps to {} — edges that persist",
        out_dir.display()
    );
    println!("across scales are real structure (rivers, field borders);");
    println!("single-scale responses are sensor noise.");
    Ok(())
}
