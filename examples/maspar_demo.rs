//! The fine-grain SIMD path: run the systolic and dilution wavelet
//! algorithms on the simulated MasPar MP-2 and compare their cost
//! profiles.
//!
//! ```text
//! cargo run --release --example maspar_demo
//! ```

use dwt::FilterBank;
use imagery::{landsat_scene, SceneParams};
use maspar::{dilution, systolic, MasParCost, SimdMachine, Virtualization};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = landsat_scene(512, 512, SceneParams::default());
    let bank = FilterBank::daubechies(8)?;

    println!("512x512 scene, D8, 3 levels, on a 128x128 (16K PE) array:");
    println!(
        "{:<12} {:<14} {:>12} {:>10} {:>14}",
        "algorithm", "virtualization", "seconds", "router", "frames/sec"
    );
    let mut results = Vec::new();
    for (algo_name, diluted) in [("systolic", false), ("dilution", true)] {
        for virt in [Virtualization::Hierarchical, Virtualization::CutAndStack] {
            let mut machine = SimdMachine::new(128, 128, MasParCost::mp2(), virt);
            let pyr = if diluted {
                dilution::decompose(&mut machine, &image, &bank, 3)?
            } else {
                systolic::decompose(&mut machine, &image, &bank, 3)?
            };
            results.push(pyr);
            println!(
                "{:<12} {:<14?} {:>12.4} {:>10} {:>14.1}",
                algo_name,
                virt,
                machine.seconds(),
                machine.router_transactions(),
                1.0 / machine.seconds()
            );
        }
    }

    // All four variants compute the same decomposition.
    for r in &results[1..] {
        let err = results[0].approx.max_abs_diff(&r.approx).expect("shape");
        assert!(err < 1e-9, "algorithms disagree: {err}");
    }
    println!();
    println!("all variants produce identical coefficients; the MP-2 at");
    println!("~30+ frames/sec meets the paper's real-time video claim.");
    Ok(())
}
