//! The Appendix B astrophysics application: two interacting galaxies
//! integrated with Barnes-Hut, run both sequentially and as a
//! manager-worker program on the simulated Paragon.
//!
//! ```text
//! cargo run --release --example galaxy_collision
//! ```

use nbody::force::ForceParams;
use nbody::parallel::{run_parallel, NbodyConfig};
use nbody::{galaxy, serial, Body};
use paragon::{MachineSpec, Mapping, SpmdConfig};

fn extent(bodies: &[Body]) -> f64 {
    bodies
        .iter()
        .map(|b| b.pos[0].hypot(b.pos[1]))
        .fold(0.0, f64::max)
}

fn separation(bodies: &[Body]) -> f64 {
    // Distance between the two central (heavy) bodies.
    let heavy: Vec<&Body> = {
        let mut v: Vec<&Body> = bodies.iter().collect();
        v.sort_by(|a, b| b.mass.partial_cmp(&a.mass).expect("finite"));
        v.into_iter().take(2).collect()
    };
    let dx = heavy[0].pos[0] - heavy[1].pos[0];
    let dy = heavy[0].pos[1] - heavy[1].pos[1];
    dx.hypot(dy)
}

fn main() {
    let n = 2048;
    let steps = 120;
    let params = ForceParams::default();
    let mut bodies = galaxy::two_galaxies(n, 7);
    println!(
        "two galaxies, {n} bodies, initial separation {:.2}",
        separation(&bodies)
    );

    println!(
        "{:>6} {:>12} {:>10} {:>14}",
        "step", "separation", "extent", "interactions"
    );
    for step in 0..steps {
        let stats = serial::step(&mut bodies, &params, 0.01);
        if step % 20 == 0 || step == steps - 1 {
            println!(
                "{:>6} {:>12.3} {:>10.2} {:>14}",
                step,
                separation(&bodies),
                extent(&bodies),
                stats.interactions
            );
        }
    }
    println!("the galaxies fall toward each other (shrinking separation)");
    println!("while the encounter flings outer stars into tidal tails");
    println!("(growing extent).");

    // Cross-check: the SPMD port reproduces the sequential integration
    // bit for bit while predicting the machine time.
    let init = galaxy::two_galaxies(n, 7);
    let mut reference = init.clone();
    serial::run(&mut reference, &params, 0.01, 3);
    let cfg = NbodyConfig::manager(params, 0.01, 3);
    let run = run_parallel(
        &SpmdConfig::new(MachineSpec::paragon(), 16, Mapping::Snake),
        &cfg,
        &init,
    );
    assert_eq!(run.bodies, reference, "parallel must match serial");
    println!();
    println!(
        "16-rank Paragon run matches serial bit-for-bit; 3 steps take {:.2}s of virtual time",
        run.parallel_time()
    );
}
