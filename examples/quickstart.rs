//! Quickstart: decompose an image with the Mallat algorithm, inspect the
//! sub-bands, and reconstruct it exactly.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dwt::{compress, dwt2d, Boundary, FilterBank};
use imagery::{landsat_scene, SceneParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic 256x256 Landsat-TM-like scene (deterministic).
    let image = landsat_scene(256, 256, SceneParams::default());
    println!("image: {}x{} pixels", image.rows(), image.cols());

    // The paper's filter size 4 = Daubechies D4, two decomposition levels.
    let bank = FilterBank::daubechies(4)?;
    let pyramid = dwt2d::decompose(&image, &bank, 2, Boundary::Periodic)?;

    println!("decomposed into {} levels:", pyramid.levels());
    for (i, bands) in pyramid.detail.iter().enumerate() {
        println!(
            "  level {}: {}x{} sub-bands, detail energy LH={:.1} HL={:.1} HH={:.1}",
            i + 1,
            bands.rows(),
            bands.cols(),
            bands.lh.energy(),
            bands.hl.energy(),
            bands.hh.energy()
        );
    }
    println!(
        "  LL (the compressed image I_{}): {}x{}",
        pyramid.levels(),
        pyramid.approx.rows(),
        pyramid.approx.cols()
    );

    // Energy is preserved (Parseval) ...
    let rel = (pyramid.energy() - image.energy()).abs() / image.energy();
    println!("energy preserved to relative error {rel:.2e}");

    // ... and reconstruction is exact.
    let back = dwt2d::reconstruct(&pyramid, &bank, Boundary::Periodic)?;
    let err = image.max_abs_diff(&back).expect("same shape");
    println!("perfect reconstruction: max abs error {err:.2e}");
    let psnr = compress::psnr(&image, &back, 255.0).expect("same shape");
    println!("PSNR {psnr:.1} dB");
    assert!(err < 1e-9);
    Ok(())
}
