//! The Appendix C methodology end to end: trace two programs in the
//! 5-class ISA, schedule them on the oracle, and compare their centroids
//! — the quantitative basis for composing parallel benchmark suites.
//!
//! ```text
//! cargo run --release --example workload_similarity
//! ```

use workload::centroid::{similarity, Centroid};
use workload::nas::NasKernel;
use workload::oracle::{schedule, smoothability};
use workload::{OpClass, TraceBuilder};

fn main() {
    // A hand-written "application": a blocked matrix multiply kernel.
    let mut b = TraceBuilder::new();
    let n = 24usize;
    for i in 0..n {
        for j in 0..n {
            let mut acc = b.emit(OpClass::Int, &[]); // address setup
            for _k in 0..n / 4 {
                let a_ld = b.emit(OpClass::Mem, &[]);
                let b_ld = b.emit(OpClass::Mem, &[]);
                acc = b.emit(OpClass::Fp, &[acc, a_ld, b_ld]);
            }
            b.emit(OpClass::Mem, &[acc]); // store C[i][j]
            let _ = (i, j);
        }
    }
    let matmul = b.build();

    let sched = schedule(&matmul);
    let cm = Centroid::from_schedule(&sched);
    println!("matmul kernel: {} dynamic instructions", matmul.len());
    println!(
        "  oracle: CPL={}  average parallelism={:.1}",
        sched.cpl(),
        sched.avg_parallelism()
    );
    println!(
        "  centroid: MEM={:.1} INT={:.1} FP={:.1}",
        cm.0[0], cm.0[1], cm.0[4]
    );
    let sm = smoothability(&matmul);
    println!("  smoothability: {:.3}", sm.smoothability);

    // Which NAS-like benchmark exercises a machine most like matmul?
    println!();
    println!("similarity of matmul to the NPB-like suite (0=identical):");
    let mut rows: Vec<(f64, &'static str)> = NasKernel::ALL
        .iter()
        .map(|k| {
            let ck = Centroid::from_schedule(&schedule(&k.trace(1)));
            (similarity(&cm, &ck), k.name())
        })
        .collect();
    rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    for (sim, name) in &rows {
        println!("  {name:<8} {sim:.3}");
    }
    println!();
    println!(
        "closest: {} — a benchmark suite already containing it gains\n\
         little by adding matmul; the most distant kernels add coverage.",
        rows[0].1
    );
}
