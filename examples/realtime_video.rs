//! The paper's closing claim: "The MasPar, with the given configuration,
//! is capable of processing 30 images or more per second. Thus for
//! real-time video, multimedia applications ... high-performance
//! computing is quickly asserting its presence."
//!
//! This example measures sustained frames/second for every machine model
//! on the paper's three configurations — plus the modern comparison:
//! this host's rayon-parallel transform.
//!
//! ```text
//! cargo run --release --example realtime_video
//! ```

use dwt::{parallel, Boundary, FilterBank};
use dwt_mimd::{run_mimd_dwt, MimdDwtConfig};
use imagery::{landsat_scene, SceneParams};
use maspar::{systolic, SimdMachine};
use paragon::{MachineSpec, Mapping, SpmdConfig};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = landsat_scene(512, 512, SceneParams::default());
    println!("sustained wavelet decompositions per second, 512x512 frames:");
    println!(
        "{:<28} {:>10} {:>10} {:>10}",
        "machine", "F8/L1", "F4/L2", "F2/L4"
    );

    let configs = [(8usize, 1usize), (4, 2), (2, 4)];

    // MasPar MP-2 (virtual time).
    let mut row = format!("{:<28}", "MasPar MP-2 16K (1995)");
    for (f, l) in configs {
        let bank = FilterBank::daubechies(f)?;
        let mut m = SimdMachine::mp2_16k();
        systolic::decompose(&mut m, &image, &bank, l)?;
        row += &format!(" {:>10.1}", 1.0 / m.seconds());
    }
    println!("{row}");

    // Paragon 32 procs (virtual time).
    let mut row = format!("{:<28}", "Intel Paragon 32p (1995)");
    for (f, l) in configs {
        let cfg = MimdDwtConfig::tuned(FilterBank::daubechies(f)?, l);
        let scfg = SpmdConfig::new(MachineSpec::paragon(), 32, Mapping::Snake);
        let t = run_mimd_dwt(&scfg, &cfg, &image)?.parallel_time();
        row += &format!(" {:>10.1}", 1.0 / t);
    }
    println!("{row}");

    // This host, rayon (real wall time).
    let mut row = format!("{:<28}", "this host, rayon (real)");
    for (f, l) in configs {
        let bank = FilterBank::daubechies(f)?;
        // Warm up, then time a few frames.
        parallel::decompose_par(&image, &bank, l, Boundary::Periodic)?;
        let frames = 10;
        let start = Instant::now();
        for _ in 0..frames {
            parallel::decompose_par(&image, &bank, l, Boundary::Periodic)?;
        }
        let fps = frames as f64 / start.elapsed().as_secs_f64();
        row += &format!(" {fps:>10.1}");
    }
    println!("{row}");

    println!();
    println!("the 1995 MasPar clears the 30 frames/sec real-time bar the");
    println!("paper claims; three decades later one multicore node does the");
    println!("same job hundreds of times per second.");
    Ok(())
}
