//! Wavelet-based image registration — the remote-sensing application
//! (Le Moigne) that motivated fast wavelet decomposition at NASA:
//! register a shifted, differently-noised acquisition of a scene back
//! to its reference, coarse-to-fine over the pyramid.
//!
//! ```text
//! cargo run --release --example image_registration
//! ```

use dwt::FilterBank;
use imagery::register::{ncc_at, register_translation, shift_periodic, RegisterParams};
use imagery::{landsat_scene, SceneParams, TmBand};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let reference = landsat_scene(256, 256, SceneParams::default());
    let bank = FilterBank::daubechies(4)?;

    println!("registering acquisitions against the reference scene:");
    println!(
        "{:>24} {:>12} {:>12} {:>8}",
        "case", "true shift", "estimated", "NCC"
    );

    // Case 1: same band, new sensor noise, known shift.
    let renoised = landsat_scene(
        256,
        256,
        SceneParams {
            sensor_noise: 5.0,
            ..SceneParams::default()
        },
    );
    for (dy, dx) in [(12isize, -7isize), (-20, 33), (0, 0)] {
        let target = shift_periodic(&renoised, dy, dx);
        let reg = register_translation(&reference, &target, &bank, RegisterParams::default())?;
        println!(
            "{:>24} {:>12} {:>12} {:>8.4}",
            "noisy re-acquisition",
            format!("({dy},{dx})"),
            format!("({},{})", reg.dy, reg.dx),
            reg.score
        );
        assert_eq!((reg.dy, reg.dx), (dy, dx));
    }

    // Case 2: band-to-band registration (different spectral response).
    let nir = landsat_scene(
        256,
        256,
        SceneParams {
            band: TmBand::NearInfrared,
            ..SceneParams::default()
        },
    );
    let target = shift_periodic(&nir, 9, 18);
    let reg = register_translation(&reference, &target, &bank, RegisterParams::default())?;
    println!(
        "{:>24} {:>12} {:>12} {:>8.4}",
        "NIR band vs visible",
        "(9,18)",
        format!("({},{})", reg.dy, reg.dx),
        reg.score
    );
    assert_eq!((reg.dy, reg.dx), (9, 18));

    // Show the search is doing real work: the unshifted correlation is
    // far worse than the registered one.
    let naive = ncc_at(&reference, &target, 0, 0);
    println!();
    println!(
        "correlation before registration {naive:.4}, after {:.4}",
        reg.score
    );
    println!("the coarse-to-fine pyramid search does an exhaustive scan only");
    println!("at 1/64 the pixels, then +/-1-pixel refinements per level.");
    Ok(())
}
