//! Multi-resolution pyramid of a remote-sensing scene, written out as
//! PGM images for visual inspection — the paper's motivating EOSDIS
//! use case (browse products at multiple resolutions).
//!
//! ```text
//! cargo run --release --example landsat_pyramid
//! ls target/landsat_pyramid/
//! ```

use dwt::{dwt2d, Boundary, FilterBank, Pyramid};
use imagery::pgm::{normalize_for_display, write_pgm};
use imagery::{landsat_scene, SceneParams, TmBand};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::path::Path::new("target/landsat_pyramid");
    std::fs::create_dir_all(out_dir)?;

    let bank = FilterBank::daubechies(8)?;
    for (band, name) in [
        (TmBand::Visible, "visible"),
        (TmBand::NearInfrared, "nir"),
        (TmBand::Thermal, "thermal"),
    ] {
        let scene = landsat_scene(
            512,
            512,
            SceneParams {
                band,
                ..SceneParams::default()
            },
        );
        write_pgm(&scene, out_dir.join(format!("{name}.pgm")))?;

        let pyramid: Pyramid = dwt2d::decompose(&scene, &bank, 3, Boundary::Periodic)?;
        // The standard Mallat mosaic: LL in the corner, detail quadrants
        // around it (contrast-stretched for display).
        let mosaic = normalize_for_display(&pyramid.to_mallat_layout());
        write_pgm(&mosaic, out_dir.join(format!("{name}_mallat.pgm")))?;

        // Browse products: the LL band at each level, rescaled to 0..255.
        let mut ll = scene.clone();
        for level in 1..=3usize {
            let (next, _) = dwt2d::analyze_step(&ll, &bank, Boundary::Periodic)?;
            ll = next;
            // LL coefficients scale by 2 per level; normalize back.
            let scale = 1.0 / (1 << level) as f64;
            let browse = dwt::Matrix::from_fn(ll.rows(), ll.cols(), |r, c| {
                (ll.get(r, c) * scale).clamp(0.0, 255.0)
            });
            write_pgm(&browse, out_dir.join(format!("{name}_browse_l{level}.pgm")))?;
        }
        println!(
            "{name}: wrote full scene, Mallat mosaic and 3 browse levels to {}",
            out_dir.display()
        );
    }
    Ok(())
}
