# Common developer workflows. Run `just --list` to see targets.

# Build everything in release mode.
build:
    cargo build --release

# The tier-1 gate: release build plus the full test suite.
check:
    cargo build --release
    cargo test -q

# Lints as CI runs them.
lint:
    cargo clippy --workspace --all-targets -- -D warnings
    cargo fmt --all --check

# Regenerate BENCH_dwt.json (engine vs legacy, median ns/pixel).
# Set REPRO_FULL=1 for the full 256²–4096² size sweep.
bench-json:
    cargo run --release -p bench --bin bench_dwt

# Criterion engine benchmarks (human-readable companion to bench-json).
bench-engine:
    cargo bench -p bench --bench dwt_engine

# Regenerate BENCH_dwt.json with the lifting-vs-convolution rows (alias
# of bench-json, named for the lifting headline).
lift-bench:
    cargo run --release -p bench --bin bench_dwt

# Downscaled lifting bench as CI runs it: headline only at 512x512,
# writes target/BENCH_dwt_smoke.json, then asserts the lifting rows are
# present, carry the full row schema, and that CDF 5/3 lifting is no
# slower than the D4 convolution engine at the smoke size.
lift-bench-smoke:
    DWT_SMOKE=1 cargo run --release -p bench --bin bench_dwt
    python3 -c "import json; d = json.load(open('target/BENCH_dwt_smoke.json')); rows = d['results']; required = {'name', 'size', 'filter', 'levels', 'threads', 'median_ns_per_px', 'samples'}; missing = [sorted(required - set(r)) for r in rows if not required <= set(r)]; assert not missing, missing; lift = [r for r in rows if r['name'] == 'engine_lifting_1t' and r['filter'] == 'CDF53']; assert lift, 'no CDF53 lifting rows'; conv = [r for r in rows if r['name'] == 'engine_1t' and r['filter'] == 'D4' and r['size'] == lift[0]['size']]; assert conv, 'no D4 engine row at smoke size'; l = min(r['median_ns_per_px'] for r in lift); c = conv[0]['median_ns_per_px']; assert l <= c, f'lifting {l} ns/px slower than convolution {c} ns/px'; print(f'lifting smoke OK: {l:.3f} ns/px vs D4 engine {c:.3f} ns/px')"

# Fault-matrix gate: sweep the drop-rate x crash-count grid CI runs and
# assert crash recovery stays bit-identical at every point, for the
# striped and block decompositions and the distributed reconstruction.
faults:
    #!/usr/bin/env bash
    set -euo pipefail
    for drop in 0.0 0.001 0.02; do
        for crashes in 0 1 3; do
            echo "--- drop_rate=$drop crashes=$crashes"
            FAULT_DROP_RATE=$drop FAULT_CRASHES=$crashes \
                cargo test -q --test fault_matrix
        done
    done

# Regenerate BENCH_faults.json (degradation curves of the block DWT
# under injected link faults and rank crashes).
faults-json:
    cargo run --release -p bench --bin bench_faults

# Chaos gate: sweep the shard-crash axis of the serving fault grid and
# run the full chaos invariant suite (exactly-once resolution, seeded
# replay, supervision, failover, quarantine, degraded mode) at every
# point, live driver and sim both.
chaos:
    #!/usr/bin/env bash
    set -euo pipefail
    for crash_shards in 0 1 2; do
        echo "--- crash_shards=$crash_shards"
        WSERV_CRASH_SHARDS=$crash_shards cargo test -q --release --test wserv_chaos
    done

# Downscaled chaos gate as CI runs it: one crash-grid point plus the
# BENCH_service chaos-row schema and zero-lost-requests assertions on
# the smoke sweep.
chaos-smoke:
    WSERV_CRASH_SHARDS=1 cargo test -q --test wserv_chaos
    WSERV_SMOKE=1 cargo run --release -p bench --bin bench_service
    python3 -c "import json; rows = json.load(open('target/BENCH_service_smoke.json'))['chaos_results']; required = {'scenario', 'shards', 'rate_hz', 'requests', 'completed', 'degraded_served', 'restarts', 'requeued', 'quarantined', 'rejected_total', 'rejected_shard_failed', 'rejected_requeued', 'rejected_deadline', 'failed_shards', 'p95_ms', 'throughput_hz', 'makespan_s', 'fault_recovery_pct'}; missing = [sorted(required - set(r)) for r in rows if not required <= set(r)]; assert not missing, missing; lost = [(r['scenario'], r['requests'] - r['completed'] - r['rejected_total']) for r in rows if r['completed'] + r['rejected_total'] != r['requests']]; assert not lost, lost; crashed = [r for r in rows if r['failed_shards']]; assert crashed and all(r['fault_recovery_pct'] > 0 for r in crashed), 'no crash row charged FaultRecovery'; print('chaos smoke OK:', len(rows), 'rows,', len(crashed), 'with failed shards')"

# Regenerate BENCH_service.json (wserv load-generator sweep: arrival
# rate x shards x cache x batching, plus the seeded chaos scenario
# sweep; asserts cache/batching dominance, the exactly-once chaos
# invariant, and byte-reproducibility).
serve-bench:
    cargo run --release -p bench --bin bench_service

# Remote-transport gate: the wire-protocol property tests, the
# end-to-end remote suite (exactly-once under seeded wire faults,
# backpressure, drain with half-open connections, shim/TCP parity), and
# the full-scale transport rows of BENCH_service.json (closed-loop sim
# sweep plus the live shim-vs-TCP failover run; the binary itself
# asserts zero lost requests and identical resolution books).
remote-bench:
    cargo test -q --release --test wire_properties --test wserv_remote
    cargo run --release -p bench --bin bench_service

# Downscaled remote-transport gate as CI runs it: same tests, smoke
# bench, then schema + zero-lost + sim-vs-live assertions on the
# transport_results and transport_live rows.
remote-bench-smoke:
    cargo test -q --test wire_properties --test wserv_remote
    WSERV_SMOKE=1 cargo run --release -p bench --bin bench_service
    python3 -c "import json; d = json.load(open('target/BENCH_service_smoke.json')); rows = d['transport_results']; required = {'scenario', 'clients', 'reqs_per_client', 'delivered', 'retries', 'replays', 'frames', 'p50_ms', 'p95_ms', 'p99_ms', 'comm_ms', 'fault_recovery_ms', 'throughput_hz', 'makespan_s'}; missing = [sorted(required - set(r)) for r in rows if not required <= set(r)]; assert not missing, missing; names = {r['scenario'] for r in rows}; assert {'clean_wire', 'wire_chaos', 'failover_under_load'} <= names, names; lost = [(r['scenario'], r['clients'] * r['reqs_per_client'] - r['delivered']) for r in rows if r['delivered'] != r['clients'] * r['reqs_per_client']]; assert not lost, lost; chaos = next(r for r in rows if r['scenario'] == 'wire_chaos'); assert chaos['retries'] > 0 and chaos['replays'] > 0, 'wire chaos fired no faults'; live = d['transport_live']; assert {r['transport'] for r in live} == {'shim', 'tcp'}, live; comp = [(r['transport'], r['clients'] * r['reqs_per_client'] - r['completed']) for r in live if r['completed'] != r['clients'] * r['reqs_per_client']]; assert not comp, comp; assert all(r['sim_p99_ms'] > 0 and r['p99_ms'] > 0 for r in live), 'missing tail latencies'; print('remote smoke OK:', len(rows), 'sim rows,', len(live), 'live rows')"

# Progressive-delivery gate: the wire/progressive property tests, the
# progressive end-to-end remote tests (lossless bitwise over shim and
# TCP, honest bounds, cancel exactly-once under chaos), and the
# full-scale progressive rows of BENCH_service.json (bytes-to-tolerance
# vs monolithic, sim and live).
progressive-bench:
    cargo test -q --release --test wire_properties --test wserv_remote progressive
    cargo run --release -p bench --bin bench_service

# Downscaled progressive gate as CI runs it: same tests, smoke bench,
# then schema + error-bound + bytes-beat-monolithic assertions on the
# progressive_results and progressive_live rows.
progressive-bench-smoke:
    cargo test -q --test wire_properties --test wserv_remote progressive
    WSERV_SMOKE=1 cargo run --release -p bench --bin bench_service
    python3 -c "import json; d = json.load(open('target/BENCH_service_smoke.json')); rows = d['progressive_results']; required = {'scenario', 'clients', 'reqs_per_client', 'delivered', 'threshold', 'step', 'tolerance', 'planes', 'cancels', 'response_bytes', 'monolithic_bytes', 'savings_pct', 'max_error_bound', 'p50_ms', 'p95_ms', 'p99_ms', 'comm_ms', 'throughput_hz', 'makespan_s'}; missing = [sorted(required - set(r)) for r in rows if not required <= set(r)]; assert not missing, missing; by = {r['scenario']: r for r in rows}; assert {'monolithic', 'progressive_lossless', 'progressive_lossy', 'tolerance_cancel'} <= set(by), set(by); assert all(r['delivered'] == r['clients'] * r['reqs_per_client'] for r in rows), 'lost requests'; assert by['progressive_lossless']['max_error_bound'] == 0, 'lossless must be exact'; assert by['tolerance_cancel']['cancels'] > 0, 'tolerance never cancelled'; assert by['tolerance_cancel']['max_error_bound'] <= by['tolerance_cancel']['tolerance'], 'tolerance violated'; lossy = [r for r in rows if r['threshold'] > 0]; assert any(r['response_bytes'] < r['monolithic_bytes'] for r in lossy), 'no lossy scenario beat monolithic bytes'; live = d['progressive_live']; assert {r['transport'] for r in live} == {'shim', 'tcp'}, live; assert all(next(r for r in live if r['transport'] == t and r['scenario'] == 'progressive_cancel')['bytes_out'] < next(r for r in live if r['transport'] == t and r['scenario'] == 'monolithic')['bytes_out'] for t in ('shim', 'tcp')), 'live progressive did not beat monolithic bytes'; assert all(r['max_error_bound'] <= r['tolerance'] for r in live if r['scenario'] == 'progressive_cancel'), 'live bound exceeds tolerance'; print('progressive smoke OK:', len(rows), 'sim rows,', len(live), 'live rows')"

# Elastic-sharding gate: the elastic end-to-end suite (steals under
# skew, split/merge lifecycle, crash fences, exactly-once books,
# bit-identical replay) and the full-scale elastic_results rows of
# BENCH_service.json (static vs stealing vs split/merge under the
# seeded Zipf stream; the binary asserts elastic imbalance beats static
# and the matched-set p95 never regresses).
elastic-bench:
    cargo test -q --release --test wserv_elastic
    cargo run --release -p bench --bin bench_service

# Downscaled elastic gate as CI runs it: same tests, smoke bench, then
# schema + controller-acted + imbalance-beats-static assertions on the
# elastic_results rows.
elastic-bench-smoke:
    cargo test -q --test wserv_elastic
    WSERV_SMOKE=1 cargo run --release -p bench --bin bench_service
    python3 -c "import json; rows = json.load(open('target/BENCH_service_smoke.json'))['elastic_results']; required = {'scenario', 'requests', 'rate_hz', 'zipf_s', 'shards', 'reserve', 'accepted', 'completed', 'shed', 'stolen', 'splits', 'merges', 'actions', 'imbalance_pct', 'p50_ms', 'p95_ms', 'p99_ms', 'throughput_hz', 'makespan_s'}; missing = [sorted(required - set(r)) for r in rows if not required <= set(r)]; assert not missing, missing; by = {r['scenario']: r for r in rows}; assert {'static', 'stealing', 'split_merge'} <= set(by), set(by); lost = [(r['scenario'], r['accepted'] - r['completed'] - r['shed']) for r in rows if r['completed'] + r['shed'] != r['accepted']]; assert not lost, lost; assert by['stealing']['stolen'] > 0, 'stealing row never stole'; assert by['split_merge']['splits'] > 0 and by['split_merge']['merges'] > 0, 'split_merge row never split or merged'; assert all(by[s]['imbalance_pct'] < by['static']['imbalance_pct'] for s in ('stealing', 'split_merge')), 'elastic imbalance did not beat static'; print('elastic smoke OK:', len(rows), 'rows, static imbalance', by['static']['imbalance_pct'], '% vs stealing', by['stealing']['imbalance_pct'], '%')"

# Downscaled serving bench CI runs: fixed seed, small grid, writes
# target/BENCH_service_smoke.json and asserts the same dominance and
# reproducibility conditions.
serve-bench-smoke:
    WSERV_SMOKE=1 cargo run --release -p bench --bin bench_service
    python3 -c "import json; d = json.load(open('target/BENCH_service_smoke.json')); rows = d['results']; assert rows and any(r['cache_hit_rate'] > 0 for r in rows), 'plan cache never hit'; required = {'shards', 'cache_capacity', 'max_batch', 'rate_hz', 'accepted', 'completed', 'rejected_queue_full', 'rejected_shed', 'rejected_deadline', 'cache_hit_rate', 'mean_batch_occupancy', 'p50_ms', 'p95_ms', 'p99_ms', 'throughput_hz', 'makespan_s', 'useful_pct', 'imbalance_pct'}; missing = [sorted(required - set(r)) for r in rows if not required <= set(r)]; assert not missing, missing; print('serving smoke OK:', len(rows), 'rows')"
