//! Mallat multi-resolution discrete wavelet transform.
//!
//! This crate is the primary contribution of the reproduction of
//! *"Wavelet Decomposition on High-Performance Computing Systems"*
//! (El-Ghazawi & Le Moigne, ICPP 1996). It implements the fast
//! multi-resolution algorithm of Mallat (1989): a 2-D image is decomposed
//! level by level into four sub-bands by separable quadrature-mirror
//! filtering along rows and columns, each followed by decimation by two;
//! the low/low band becomes the input of the next level.
//!
//! The crate provides:
//!
//! * [`filters`] — orthonormal filter banks: Haar (the paper's "filter
//!   size 2"), Daubechies D4 ("filter size 4"), D6, D8 ("filter size 8"),
//!   and D10, plus construction from arbitrary low-pass taps.
//! * [`matrix`] — a dense row-major [`Matrix`] used for images and
//!   sub-bands.
//! * [`dwt1d`] — one-dimensional analysis/synthesis (convolve + decimate,
//!   upsample + convolve), with selectable [`boundary`] handling.
//! * [`dwt2d`] — the separable 2-D Mallat step and multi-level
//!   [`pyramid::Pyramid`] decomposition/reconstruction.
//! * [`compress`] — coefficient thresholding, quantization and
//!   reconstruction-quality metrics, the application the paper motivates
//!   (EOSDIS-scale image compression).
//! * [`engine`] — the production transform path: a fused, cache-blocked
//!   2-D kernel behind reusable [`engine::DwtPlan`]s and zero-allocation
//!   [`engine::DwtWorkspace`]s. The image is swept in column bands; each
//!   band carries a ring buffer of `filter_len` row-filtered rows — the
//!   tile *halo*, the shared-memory analogue of the guard zones the paper
//!   exchanges between Paragon nodes (its `filter_len - 2` boundary rows).
//!   Where the paper ships guard rows over the mesh once per level, the
//!   engine keeps them resident in L1 and recomputes nothing: every input
//!   row is row-filtered exactly once per band.
//! * [`parallel`] — a shared-memory parallel implementation using rayon
//!   with the same striped decomposition and guard-zone structure as the
//!   paper's coarse-grain Paragon algorithm; its multi-level entry point
//!   routes through the threaded [`engine`].
//!
//! # Quickstart
//!
//! ```
//! use dwt::{filters::FilterBank, matrix::Matrix, dwt2d, boundary::Boundary};
//!
//! // A 16x16 ramp image.
//! let img = Matrix::from_fn(16, 16, |r, c| (r * 16 + c) as f64);
//! let bank = FilterBank::daubechies(4).unwrap();
//!
//! // Two decomposition levels.
//! let pyr = dwt2d::decompose(&img, &bank, 2, Boundary::Periodic).unwrap();
//! let back = dwt2d::reconstruct(&pyr, &bank, Boundary::Periodic).unwrap();
//!
//! let err: f64 = img
//!     .data()
//!     .iter()
//!     .zip(back.data())
//!     .map(|(a, b)| (a - b).abs())
//!     .fold(0.0, f64::max);
//! assert!(err < 1e-9);
//! ```

pub mod boundary;
pub mod compress;
pub mod conv;
pub mod denoise;
pub mod dwt1d;
pub mod dwt2d;
pub mod engine;
pub mod error;
pub mod features;
pub mod filters;
pub mod lifting;
pub mod matrix;
pub mod packets;
pub mod parallel;
pub mod pyramid;
pub mod swt;

pub use boundary::Boundary;
pub use error::{DwtError, Result};
pub use filters::FilterBank;
pub use matrix::Matrix;
pub use pyramid::{Pyramid, Subbands};
