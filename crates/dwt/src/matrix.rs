//! Dense row-major matrix used for images and wavelet sub-bands.

use crate::error::{DwtError, Result};

/// A dense, row-major `f64` matrix.
///
/// This is the image/sub-band container used throughout the crate. It is
/// deliberately simple — contiguous storage, row slices, and the handful
/// of operations the transforms need — so that the parallel code can hand
/// out disjoint row stripes without aliasing issues.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wrap an existing row-major buffer. Errors if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(DwtError::DimensionMismatch {
                detail: format!(
                    "buffer of {} elements cannot back a {rows}x{cols} matrix",
                    data.len()
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Borrow row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Copy column `c` into `out` (which must have `rows` elements).
    pub fn copy_col_into(&self, c: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.rows);
        for (r, slot) in out.iter_mut().enumerate() {
            *slot = self.data[r * self.cols + c];
        }
    }

    /// Write `col` into column `c`.
    pub fn set_col(&mut self, c: usize, col: &[f64]) {
        debug_assert_eq!(col.len(), self.rows);
        for (r, &v) in col.iter().enumerate() {
            self.data[r * self.cols + c] = v;
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Extract the sub-matrix of size `h x w` whose top-left corner is
    /// `(r0, c0)`.
    pub fn submatrix(&self, r0: usize, c0: usize, h: usize, w: usize) -> Result<Matrix> {
        if r0 + h > self.rows || c0 + w > self.cols {
            return Err(DwtError::DimensionMismatch {
                detail: format!(
                    "sub-matrix {h}x{w}@({r0},{c0}) exceeds a {}x{} matrix",
                    self.rows, self.cols
                ),
            });
        }
        let mut out = Matrix::zeros(h, w);
        for r in 0..h {
            let src = (r0 + r) * self.cols + c0;
            out.row_mut(r).copy_from_slice(&self.data[src..src + w]);
        }
        Ok(out)
    }

    /// Paste `block` with its top-left corner at `(r0, c0)`.
    pub fn paste(&mut self, r0: usize, c0: usize, block: &Matrix) -> Result<()> {
        if r0 + block.rows > self.rows || c0 + block.cols > self.cols {
            return Err(DwtError::DimensionMismatch {
                detail: format!(
                    "paste of {}x{}@({r0},{c0}) exceeds a {}x{} matrix",
                    block.rows, block.cols, self.rows, self.cols
                ),
            });
        }
        for r in 0..block.rows {
            let dst = (r0 + r) * self.cols + c0;
            self.data[dst..dst + block.cols].copy_from_slice(block.row(r));
        }
        Ok(())
    }

    /// Sum of squared elements (signal energy).
    pub fn energy(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Largest absolute element difference against `other`.
    ///
    /// Returns `None` when shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> Option<f64> {
        if self.rows != other.rows || self.cols != other.cols {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max),
        )
    }

    /// Iterate over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_indexes_row_major() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.get(1, 2), 12.0);
    }

    #[test]
    fn from_vec_rejects_wrong_size() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(4, 2), m.get(2, 4));
    }

    #[test]
    fn column_copy_and_set() {
        let mut m = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f64);
        let mut col = vec![0.0; 4];
        m.copy_col_into(1, &mut col);
        assert_eq!(col, vec![1.0, 4.0, 7.0, 10.0]);
        m.set_col(1, &[9.0, 9.0, 9.0, 9.0]);
        assert_eq!(m.get(2, 1), 9.0);
        assert_eq!(m.get(2, 0), 6.0);
    }

    #[test]
    fn submatrix_and_paste() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let s = m.submatrix(1, 2, 2, 2).unwrap();
        assert_eq!(s.data(), &[6.0, 7.0, 10.0, 11.0]);
        let mut z = Matrix::zeros(4, 4);
        z.paste(2, 0, &s).unwrap();
        assert_eq!(z.get(2, 0), 6.0);
        assert_eq!(z.get(3, 1), 11.0);
        assert!(m.submatrix(3, 3, 2, 2).is_err());
        assert!(z.clone().paste(3, 3, &s).is_err());
    }

    #[test]
    fn energy_is_sum_of_squares() {
        let m = Matrix::from_vec(1, 3, vec![1.0, 2.0, 2.0]).unwrap();
        assert_eq!(m.energy(), 9.0);
    }

    #[test]
    fn max_abs_diff_detects_shape_mismatch() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(a.max_abs_diff(&b).is_none());
        let c = Matrix::from_vec(2, 2, vec![0.0, 0.5, 0.0, -2.0]).unwrap();
        assert_eq!(a.max_abs_diff(&c), Some(2.0));
    }
}
