//! Error type shared by the transform routines.

use std::fmt;

/// Errors reported by the wavelet routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DwtError {
    /// A signal or image dimension is not divisible by 2 for every
    /// requested decomposition level.
    OddLength {
        /// The offending dimension.
        len: usize,
        /// The decomposition level at which the dimension became odd.
        level: usize,
    },
    /// The signal is shorter than the filter, which breaks the
    /// orthogonality of the periodized filter bank.
    SignalTooShort {
        /// Signal length.
        len: usize,
        /// Filter length.
        filter_len: usize,
    },
    /// Requested an unsupported Daubechies filter length.
    UnsupportedFilter {
        /// Requested number of taps.
        taps: usize,
    },
    /// A user-supplied filter failed the orthonormality conditions.
    NotOrthonormal {
        /// Which condition failed, for diagnostics.
        detail: &'static str,
    },
    /// Zero decomposition levels requested where at least one is needed.
    ZeroLevels,
    /// The requested boundary policy is not supported by the selected
    /// kernel (the lifting factorizations are periodic-only).
    UnsupportedBoundary {
        /// Human-readable description of the unsupported combination.
        detail: String,
    },
    /// Matrix dimensions disagree with what the operation requires.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for DwtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DwtError::OddLength { len, level } => write!(
                f,
                "dimension {len} is not divisible by 2 at decomposition level {level}"
            ),
            DwtError::SignalTooShort { len, filter_len } => write!(
                f,
                "signal length {len} is shorter than filter length {filter_len}"
            ),
            DwtError::UnsupportedFilter { taps } => write!(
                f,
                "no built-in Daubechies filter with {taps} taps (supported: 2, 4, 6, 8, 10)"
            ),
            DwtError::NotOrthonormal { detail } => {
                write!(f, "filter bank is not orthonormal: {detail}")
            }
            DwtError::ZeroLevels => write!(f, "at least one decomposition level is required"),
            DwtError::UnsupportedBoundary { detail } => {
                write!(f, "unsupported boundary policy: {detail}")
            }
            DwtError::DimensionMismatch { detail } => write!(f, "dimension mismatch: {detail}"),
        }
    }
}

impl std::error::Error for DwtError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, DwtError>;
