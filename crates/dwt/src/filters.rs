//! Orthonormal quadrature-mirror filter banks.
//!
//! Following Mallat, an orthonormal wavelet basis is defined by a scaling
//! (low-pass) filter `L`; the wavelet (high-pass) filter `H` is its
//! quadrature mirror, obtained by the alternating-flip construction
//! `h[n] = (-1)^n l[L-1-n]`.
//!
//! The paper's experiments use filter sizes 8, 4 and 2; these map to the
//! Daubechies D8 and D4 filters and the Haar filter respectively.

use crate::error::{DwtError, Result};
use crate::lifting::LiftingKind;

/// Tolerance used when validating orthonormality conditions.
const ORTHO_TOL: f64 = 1e-8;

/// An analysis/synthesis filter pair.
///
/// Most constructors build *orthonormal* quadrature-mirror banks. The
/// [`FilterBank::cdf53`] / [`FilterBank::cdf97`] constructors build the
/// CDF *biorthogonal* banks; those carry a [`LiftingKind`] tag and the
/// engine executes them through its fused lifting kernel instead of the
/// convolution path (see [`crate::engine::lifting`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FilterBank {
    /// Human-readable name, e.g. `"D4"`.
    name: String,
    /// Low-pass (scaling) filter taps.
    low: Vec<f64>,
    /// High-pass (wavelet) filter taps, the quadrature mirror of `low`.
    high: Vec<f64>,
    /// Set when the bank is a lifting factorization; selects the engine's
    /// lifting kernel.
    lifting: Option<LiftingKind>,
}

impl FilterBank {
    /// Build a filter bank from low-pass taps, deriving the high-pass by
    /// alternating flip, and validate orthonormality:
    ///
    /// * `Σ l[n]² = 1` (unit norm),
    /// * `Σ l[n] l[n+2k] = 0` for `k ≠ 0` (orthogonality of even shifts),
    /// * `Σ l[n] = √2` (lowpass normalization).
    pub fn from_lowpass(name: impl Into<String>, low: Vec<f64>) -> Result<Self> {
        if low.len() < 2 || !low.len().is_multiple_of(2) {
            return Err(DwtError::NotOrthonormal {
                detail: "filter length must be even and at least 2",
            });
        }
        let norm: f64 = low.iter().map(|v| v * v).sum();
        if (norm - 1.0).abs() > ORTHO_TOL {
            return Err(DwtError::NotOrthonormal {
                detail: "low-pass taps do not have unit norm",
            });
        }
        for k in 1..low.len() / 2 {
            let dot: f64 = low
                .iter()
                .zip(low.iter().skip(2 * k))
                .map(|(a, b)| a * b)
                .sum();
            if dot.abs() > ORTHO_TOL {
                return Err(DwtError::NotOrthonormal {
                    detail: "even shifts of the low-pass filter are not orthogonal",
                });
            }
        }
        let sum: f64 = low.iter().sum();
        if (sum - std::f64::consts::SQRT_2).abs() > 1e-6 {
            return Err(DwtError::NotOrthonormal {
                detail: "low-pass taps do not sum to sqrt(2)",
            });
        }
        let len = low.len();
        let high: Vec<f64> = (0..len)
            .map(|n| {
                let sign = if n % 2 == 0 { 1.0 } else { -1.0 };
                sign * low[len - 1 - n]
            })
            .collect();
        Ok(FilterBank {
            name: name.into(),
            low,
            high,
            lifting: None,
        })
    }

    /// The CDF (LeGall) 5/3 biorthogonal bank — the lossless JPEG 2000
    /// transform. The taps are the equivalent analysis filters (recorded
    /// so [`crate::engine::PlanShape`] keys stay exact); execution runs
    /// through the engine's fused lifting kernel, periodic boundaries
    /// only.
    pub fn cdf53() -> Self {
        FilterBank {
            name: "CDF53".to_string(),
            low: vec![-0.125, 0.25, 0.75, 0.25, -0.125],
            high: vec![-0.5, 1.0, -0.5],
            lifting: Some(LiftingKind::LeGall53),
        }
    }

    /// The CDF 9/7 biorthogonal bank — the lossy JPEG 2000 transform.
    /// Same conventions as [`FilterBank::cdf53`].
    pub fn cdf97() -> Self {
        FilterBank {
            name: "CDF97".to_string(),
            low: vec![
                0.026748757410810,
                -0.016864118442875,
                -0.078223266528990,
                0.266864118442875,
                0.602949018236360,
                0.266864118442875,
                -0.078223266528990,
                -0.016864118442875,
                0.026748757410810,
            ],
            high: vec![
                0.091271763114250,
                -0.057543526228500,
                -0.591271763114250,
                1.115_087_052_457,
                -0.591271763114250,
                -0.057543526228500,
                0.091271763114250,
            ],
            lifting: Some(LiftingKind::Cdf97),
        }
    }

    /// The bank whose lifting factorization is `kind`.
    pub fn for_lifting(kind: LiftingKind) -> Self {
        match kind {
            LiftingKind::LeGall53 => FilterBank::cdf53(),
            LiftingKind::Cdf97 => FilterBank::cdf97(),
        }
    }

    /// The lifting factorization this bank executes through, if any.
    /// `None` means the convolution kernel.
    #[inline]
    pub fn lifting_kind(&self) -> Option<LiftingKind> {
        self.lifting
    }

    /// The Haar filter — the paper's "filter size 2".
    pub fn haar() -> Self {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        FilterBank::from_lowpass("Haar", vec![s, s]).expect("Haar filter is orthonormal")
    }

    /// A Daubechies filter with the given (even) number of taps.
    ///
    /// Supported lengths: 2 (Haar), 4, 6, 8, 10 — covering the paper's
    /// filter sizes 2, 4 and 8.
    pub fn daubechies(taps: usize) -> Result<Self> {
        // Standard minimum-phase Daubechies coefficients, normalized to
        // unit l2 norm (so the analysis operator is orthogonal).
        let low: Vec<f64> = match taps {
            2 => return Ok(FilterBank::haar()),
            4 => {
                let s3 = 3.0_f64.sqrt();
                let d = 4.0 * std::f64::consts::SQRT_2;
                vec![
                    (1.0 + s3) / d,
                    (3.0 + s3) / d,
                    (3.0 - s3) / d,
                    (1.0 - s3) / d,
                ]
            }
            6 => vec![
                0.332670552950957,
                0.806891509313339,
                0.459877502119331,
                -0.135011020010391,
                -0.085441273882241,
                0.035226291882101,
            ],
            8 => vec![
                0.230377813308855,
                0.714846570552542,
                0.630880767929590,
                -0.027983769416984,
                -0.187034811718881,
                0.030841381835987,
                0.032883011666983,
                -0.010597401784997,
            ],
            10 => vec![
                0.160102397974125,
                0.603829269797473,
                0.724308528438574,
                0.138428145901103,
                -0.242294887066190,
                -0.032244869585030,
                0.077571493840065,
                -0.006241490213012,
                -0.012580751999016,
                0.003335725285002,
            ],
            other => return Err(DwtError::UnsupportedFilter { taps: other }),
        };
        FilterBank::from_lowpass(format!("D{taps}"), low)
    }

    /// A Coiflet filter with the given (even) number of taps.
    ///
    /// Supported length: 6 — the coif1 bank ("Coif-6"), which has two
    /// vanishing moments for both the wavelet *and* the scaling function.
    /// Used by the engine benchmark matrix alongside the paper's
    /// Daubechies sizes.
    pub fn coiflet(taps: usize) -> Result<Self> {
        let low: Vec<f64> = match taps {
            6 => vec![
                -0.015655728135465,
                -0.072732619512854,
                0.384864846864203,
                0.852572020212255,
                0.337897662457809,
                -0.072732619512854,
            ],
            other => return Err(DwtError::UnsupportedFilter { taps: other }),
        };
        FilterBank::from_lowpass(format!("Coif{taps}"), low)
    }

    /// Filter name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of taps.
    #[inline]
    pub fn len(&self) -> usize {
        self.low.len()
    }

    /// Always false: construction rejects empty filters.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Low-pass taps.
    #[inline]
    pub fn low(&self) -> &[f64] {
        &self.low
    }

    /// High-pass taps.
    #[inline]
    pub fn high(&self) -> &[f64] {
        &self.high
    }

    /// The "diluted" (à trous) low-pass filter of the MasPar dilution
    /// algorithm: taps spread apart by `2^level - 1` zeros so that the
    /// filter aligns with the undecimated pixel grid at deeper levels.
    pub fn dilated_low(&self, level: u32) -> Vec<f64> {
        dilate(&self.low, level)
    }

    /// The diluted high-pass filter (see [`FilterBank::dilated_low`]).
    pub fn dilated_high(&self, level: u32) -> Vec<f64> {
        dilate(&self.high, level)
    }
}

fn dilate(taps: &[f64], level: u32) -> Vec<f64> {
    let gap = (1usize << level) - 1;
    if gap == 0 {
        return taps.to_vec();
    }
    let mut out = Vec::with_capacity(taps.len() + gap * (taps.len() - 1));
    for (i, &t) in taps.iter().enumerate() {
        out.push(t);
        if i + 1 != taps.len() {
            out.extend(std::iter::repeat_n(0.0, gap));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_orthonormal(bank: &FilterBank) {
        let l = bank.low();
        let h = bank.high();
        let norm_l: f64 = l.iter().map(|v| v * v).sum();
        let norm_h: f64 = h.iter().map(|v| v * v).sum();
        assert!((norm_l - 1.0).abs() < 1e-10, "low norm {norm_l}");
        assert!((norm_h - 1.0).abs() < 1e-10, "high norm {norm_h}");
        // Cross-orthogonality at all even shifts.
        let len = l.len() as isize;
        for k in -(len / 2)..=(len / 2) {
            let dot: f64 = (0..len)
                .filter_map(|n| {
                    let m = n + 2 * k;
                    if m >= 0 && m < len {
                        Some(l[n as usize] * h[m as usize])
                    } else {
                        None
                    }
                })
                .sum();
            assert!(dot.abs() < 1e-10, "L/H shift {k} dot {dot}");
        }
    }

    #[test]
    fn builtin_banks_are_orthonormal() {
        for taps in [2, 4, 6, 8, 10] {
            let bank = FilterBank::daubechies(taps).unwrap();
            assert_eq!(bank.len(), taps);
            assert_orthonormal(&bank);
        }
    }

    #[test]
    fn high_pass_sums_to_zero() {
        for taps in [2, 4, 6, 8, 10] {
            let bank = FilterBank::daubechies(taps).unwrap();
            let s: f64 = bank.high().iter().sum();
            assert!(s.abs() < 1e-8, "D{taps} high-pass sums to {s}");
        }
    }

    #[test]
    fn coiflet_is_orthonormal() {
        let bank = FilterBank::coiflet(6).unwrap();
        assert_eq!(bank.len(), 6);
        assert_eq!(bank.name(), "Coif6");
        assert_orthonormal(&bank);
        assert!(FilterBank::coiflet(12).is_err());
    }

    #[test]
    fn unsupported_taps_rejected() {
        assert_eq!(
            FilterBank::daubechies(12),
            Err(DwtError::UnsupportedFilter { taps: 12 })
        );
        assert!(FilterBank::daubechies(3).is_err());
    }

    #[test]
    fn from_lowpass_rejects_bad_filters() {
        // Not unit norm.
        assert!(FilterBank::from_lowpass("bad", vec![1.0, 1.0]).is_err());
        // Odd length.
        assert!(FilterBank::from_lowpass("bad", vec![1.0, 0.0, 0.0]).is_err());
        // Unit norm but shifts not orthogonal (and wrong sum).
        let v = 0.5_f64;
        assert!(FilterBank::from_lowpass("bad", vec![v, v, v, v]).is_err());
    }

    #[test]
    fn dilation_inserts_gaps() {
        let bank = FilterBank::haar();
        assert_eq!(bank.dilated_low(0).len(), 2);
        let d1 = bank.dilated_low(1);
        assert_eq!(d1.len(), 3);
        assert_eq!(d1[1], 0.0);
        let d2 = bank.dilated_low(2);
        assert_eq!(d2.len(), 5);
        assert_eq!(&d2[1..4], &[0.0, 0.0, 0.0]);
    }
}
