//! Biorthogonal wavelets by the lifting scheme: the CDF 9/7 and LeGall
//! 5/3 transforms at the core of JPEG 2000 — the direction image
//! compression took after the paper's era. Lifting factorizations are
//! perfectly invertible by construction (every predict/update step is
//! reversed by its negation), need no boundary-dependent filter algebra,
//! and run in place.
//!
//! Periodic boundaries, even-length signals.
//!
//! The entry points here are thin wrappers over the fused engine kernel
//! in [`crate::engine::lifting`]: the 1-D transforms run the engine's
//! vectorized half-signal kernels, and the 2-D transforms build a
//! [`crate::engine::DwtPlan`] (which selects the lifting kernel for the
//! CDF banks) so multi-level decomposition allocates nothing per level.
//! The original naive implementations are kept, hidden, as the
//! `*_oracle` functions — the property suite pins the engine to them
//! bit for bit.

use crate::engine::{self, DwtPlan};
use crate::error::{DwtError, Result};
use crate::filters::FilterBank;
use crate::matrix::Matrix;
use crate::pyramid::{Pyramid, Subbands};

/// Which biorthogonal transform to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiftingKind {
    /// Cohen–Daubechies–Feauveau 9/7 (lossy JPEG 2000).
    Cdf97,
    /// LeGall 5/3 (lossless JPEG 2000).
    LeGall53,
}

// CDF 9/7 lifting constants (Daubechies & Sweldens factorization).
// Shared with the engine kernel so both paths use identical literals.
pub(crate) const ALPHA: f64 = -1.586_134_342_059_924;
pub(crate) const BETA: f64 = -0.052_980_118_572_961;
pub(crate) const GAMMA: f64 = 0.882_911_075_530_934;
pub(crate) const DELTA: f64 = 0.443_506_852_043_971;
pub(crate) const ZETA: f64 = 1.230_174_104_914_001;

/// One lifting step: `target[i] += c * (other[i] + other[i ± 1])` with
/// periodic wrap, where `target`/`other` are the odd/even phases.
fn predict(odd: &mut [f64], even: &[f64], c: f64) {
    // odd[i] += c * (even[i] + even[i+1]), periodic in the half-length.
    let h = even.len();
    for i in 0..h {
        odd[i] += c * (even[i] + even[(i + 1) % h]);
    }
}

fn update(even: &mut [f64], odd: &[f64], c: f64) {
    // even[i] += c * (odd[i-1] + odd[i]), periodic.
    let h = odd.len();
    for i in 0..h {
        even[i] += c * (odd[(i + h - 1) % h] + odd[i]);
    }
}

/// Forward 1-D lifting transform: returns `(approx, detail)` halves.
pub fn forward_1d(x: &[f64], kind: LiftingKind) -> Result<(Vec<f64>, Vec<f64>)> {
    let n = x.len();
    if n < 2 || !n.is_multiple_of(2) {
        return Err(DwtError::OddLength { len: n, level: 1 });
    }
    let mut approx = vec![0.0; n / 2];
    let mut detail = vec![0.0; n / 2];
    engine::lifting::forward_1d_into(x, kind, &mut approx, &mut detail)?;
    Ok((approx, detail))
}

/// Inverse of [`forward_1d`].
pub fn inverse_1d(approx: &[f64], detail: &[f64], kind: LiftingKind) -> Result<Vec<f64>> {
    let mut out = vec![0.0; approx.len() + detail.len()];
    engine::lifting::inverse_1d_into(approx, detail, kind, &mut out)?;
    Ok(out)
}

fn check_even_image(rows: usize, cols: usize) -> Result<()> {
    if rows < 2 || !rows.is_multiple_of(2) {
        return Err(DwtError::OddLength {
            len: rows,
            level: 1,
        });
    }
    if cols < 2 || !cols.is_multiple_of(2) {
        return Err(DwtError::OddLength {
            len: cols,
            level: 1,
        });
    }
    Ok(())
}

/// One 2-D lifting analysis step, through the engine's fused kernel.
pub fn analyze_step(img: &Matrix, kind: LiftingKind) -> Result<(Matrix, Subbands)> {
    check_even_image(img.rows(), img.cols())?;
    let (rows, cols) = (img.rows(), img.cols());
    let (r2, c2) = (rows / 2, cols / 2);
    let mut ll = Matrix::zeros(r2, c2);
    let mut lh = Matrix::zeros(r2, c2);
    let mut hl = Matrix::zeros(r2, c2);
    let mut hh = Matrix::zeros(r2, c2);
    let mut buf = vec![0.0; engine::lifting::staging_len(rows, cols)];
    let mut e = vec![0.0; c2];
    let mut o = vec![0.0; c2];
    engine::lifting::forward_level(
        img.data(),
        rows,
        cols,
        kind,
        ll.data_mut(),
        lh.data_mut(),
        hl.data_mut(),
        hh.data_mut(),
        &mut buf,
        &mut e,
        &mut o,
    );
    Ok((ll, Subbands { lh, hl, hh }))
}

/// One 2-D lifting synthesis step, through the engine's fused kernel.
pub fn synthesize_step(ll: &Matrix, bands: &Subbands, kind: LiftingKind) -> Result<Matrix> {
    let (r, c) = (ll.rows(), ll.cols());
    if bands.rows() != r || bands.cols() != c {
        return Err(DwtError::DimensionMismatch {
            detail: format!(
                "LL is {r}x{c} but detail bands are {}x{}",
                bands.rows(),
                bands.cols()
            ),
        });
    }
    let (rows, cols) = (2 * r, 2 * c);
    let mut out = Matrix::zeros(rows, cols);
    let mut buf = vec![0.0; engine::lifting::staging_len(rows, cols)];
    engine::lifting::inverse_level(ll.data(), bands, rows, cols, kind, out.data_mut(), &mut buf);
    Ok(out)
}

/// Full multi-level 2-D decomposition with the lifting transform.
/// Routed through a [`DwtPlan`], so per-level work allocates nothing.
pub fn decompose(img: &Matrix, kind: LiftingKind, levels: usize) -> Result<Pyramid> {
    let bank = FilterBank::for_lifting(kind);
    let plan = DwtPlan::new(
        img.rows(),
        img.cols(),
        bank,
        levels,
        crate::Boundary::Periodic,
    )?;
    plan.decompose(img)
}

/// Invert [`decompose`].
pub fn reconstruct(pyr: &Pyramid, kind: LiftingKind) -> Result<Matrix> {
    let Some(finest) = pyr.detail.first() else {
        return Ok(pyr.approx.clone());
    };
    let (rows, cols) = (finest.rows() * 2, finest.cols() * 2);
    let bank = FilterBank::for_lifting(kind);
    let plan = DwtPlan::new(rows, cols, bank, pyr.levels(), crate::Boundary::Periodic)?;
    plan.reconstruct(pyr)
}

// ---------------------------------------------------------------------
// Hidden correctness oracles: the original straight-line lifting code,
// kept verbatim so property tests can pin the fused engine kernel to it
// bit for bit (the same pattern as `dwt2d::decompose_separable`).
// ---------------------------------------------------------------------

/// Original allocating forward transform (oracle).
#[doc(hidden)]
pub fn forward_1d_oracle(x: &[f64], kind: LiftingKind) -> Result<(Vec<f64>, Vec<f64>)> {
    let n = x.len();
    if n < 2 || !n.is_multiple_of(2) {
        return Err(DwtError::OddLength { len: n, level: 1 });
    }
    let h = n / 2;
    let mut even: Vec<f64> = (0..h).map(|i| x[2 * i]).collect();
    let mut odd: Vec<f64> = (0..h).map(|i| x[2 * i + 1]).collect();
    match kind {
        LiftingKind::Cdf97 => {
            predict(&mut odd, &even, ALPHA);
            update(&mut even, &odd, BETA);
            predict(&mut odd, &even, GAMMA);
            update(&mut even, &odd, DELTA);
            for v in &mut even {
                *v *= ZETA;
            }
            for v in &mut odd {
                *v /= ZETA;
            }
        }
        LiftingKind::LeGall53 => {
            predict(&mut odd, &even, -0.5);
            update(&mut even, &odd, 0.25);
        }
    }
    Ok((even, odd))
}

/// Original allocating inverse transform (oracle).
#[doc(hidden)]
pub fn inverse_1d_oracle(approx: &[f64], detail: &[f64], kind: LiftingKind) -> Result<Vec<f64>> {
    if approx.len() != detail.len() {
        return Err(DwtError::DimensionMismatch {
            detail: format!(
                "approx has {} samples, detail {}",
                approx.len(),
                detail.len()
            ),
        });
    }
    let mut even = approx.to_vec();
    let mut odd = detail.to_vec();
    match kind {
        LiftingKind::Cdf97 => {
            for v in &mut even {
                *v /= ZETA;
            }
            for v in &mut odd {
                *v *= ZETA;
            }
            update(&mut even, &odd, -DELTA);
            predict(&mut odd, &even, -GAMMA);
            update(&mut even, &odd, -BETA);
            predict(&mut odd, &even, -ALPHA);
        }
        LiftingKind::LeGall53 => {
            update(&mut even, &odd, -0.25);
            predict(&mut odd, &even, 0.5);
        }
    }
    let mut out = vec![0.0; even.len() * 2];
    for i in 0..even.len() {
        out[2 * i] = even[i];
        out[2 * i + 1] = odd[i];
    }
    Ok(out)
}

fn rows_pass(img: &Matrix, kind: LiftingKind) -> Result<(Matrix, Matrix)> {
    let half = img.cols() / 2;
    let mut low = Matrix::zeros(img.rows(), half);
    let mut high = Matrix::zeros(img.rows(), half);
    for r in 0..img.rows() {
        let (a, d) = forward_1d_oracle(img.row(r), kind)?;
        low.row_mut(r).copy_from_slice(&a);
        high.row_mut(r).copy_from_slice(&d);
    }
    Ok((low, high))
}

fn cols_pass(img: &Matrix, kind: LiftingKind) -> Result<(Matrix, Matrix)> {
    let half = img.rows() / 2;
    let mut low = Matrix::zeros(half, img.cols());
    let mut high = Matrix::zeros(half, img.cols());
    let mut col = vec![0.0; img.rows()];
    for c in 0..img.cols() {
        img.copy_col_into(c, &mut col);
        let (a, d) = forward_1d_oracle(&col, kind)?;
        low.set_col(c, &a);
        high.set_col(c, &d);
    }
    Ok((low, high))
}

/// Original 2-D analysis step (oracle).
#[doc(hidden)]
pub fn analyze_step_oracle(img: &Matrix, kind: LiftingKind) -> Result<(Matrix, Subbands)> {
    let (low, high) = rows_pass(img, kind)?;
    let (ll, lh) = cols_pass(&low, kind)?;
    let (hl, hh) = cols_pass(&high, kind)?;
    Ok((ll, Subbands { lh, hl, hh }))
}

/// Original 2-D synthesis step (oracle).
#[doc(hidden)]
pub fn synthesize_step_oracle(ll: &Matrix, bands: &Subbands, kind: LiftingKind) -> Result<Matrix> {
    let (r, c) = (ll.rows(), ll.cols());
    // Invert columns.
    let rebuild_cols = |a: &Matrix, d: &Matrix| -> Result<Matrix> {
        let mut out = Matrix::zeros(2 * r, c);
        let mut ac = vec![0.0; r];
        let mut dc = vec![0.0; r];
        for cc in 0..c {
            a.copy_col_into(cc, &mut ac);
            d.copy_col_into(cc, &mut dc);
            out.set_col(cc, &inverse_1d_oracle(&ac, &dc, kind)?);
        }
        Ok(out)
    };
    let low = rebuild_cols(ll, &bands.lh)?;
    let high = rebuild_cols(&bands.hl, &bands.hh)?;
    // Invert rows.
    let mut out = Matrix::zeros(2 * r, 2 * c);
    for rr in 0..2 * r {
        let x = inverse_1d_oracle(low.row(rr), high.row(rr), kind)?;
        out.row_mut(rr).copy_from_slice(&x);
    }
    Ok(out)
}

/// Original multi-level decomposition (oracle).
#[doc(hidden)]
pub fn decompose_oracle(img: &Matrix, kind: LiftingKind, levels: usize) -> Result<Pyramid> {
    if levels == 0 {
        return Err(DwtError::ZeroLevels);
    }
    let mut approx = img.clone();
    let mut detail = Vec::with_capacity(levels);
    for level in 1..=levels {
        if !approx.rows().is_multiple_of(2) || !approx.cols().is_multiple_of(2) {
            return Err(DwtError::OddLength {
                len: approx.rows().min(approx.cols()),
                level,
            });
        }
        let (ll, bands) = analyze_step_oracle(&approx, kind)?;
        detail.push(bands);
        approx = ll;
    }
    Ok(Pyramid { approx, detail })
}

/// Original multi-level reconstruction (oracle).
#[doc(hidden)]
pub fn reconstruct_oracle(pyr: &Pyramid, kind: LiftingKind) -> Result<Matrix> {
    let mut approx = pyr.approx.clone();
    for bands in pyr.detail.iter().rev() {
        approx = synthesize_step_oracle(&approx, bands, kind)?;
    }
    Ok(approx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 29 + 5) % 23) as f64 - 11.0 + (i as f64 * 0.4).sin())
            .collect()
    }

    fn image(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |r, c| {
            100.0 + 40.0 * ((r as f64 * 0.2).sin() + (c as f64 * 0.17).cos())
        })
    }

    #[test]
    fn perfect_reconstruction_1d() {
        for kind in [LiftingKind::Cdf97, LiftingKind::LeGall53] {
            let x = signal(64);
            let (a, d) = forward_1d(&x, kind).unwrap();
            let back = inverse_1d(&a, &d, kind).unwrap();
            for (u, v) in x.iter().zip(&back) {
                assert!((u - v).abs() < 1e-10, "{kind:?}: {u} vs {v}");
            }
        }
    }

    #[test]
    fn perfect_reconstruction_2d_multilevel() {
        for kind in [LiftingKind::Cdf97, LiftingKind::LeGall53] {
            let img = image(32);
            for levels in 1..=3 {
                let pyr = decompose(&img, kind, levels).unwrap();
                let rec = reconstruct(&pyr, kind).unwrap();
                let err = img.max_abs_diff(&rec).unwrap();
                assert!(err < 1e-9, "{kind:?} L{levels}: {err}");
            }
        }
    }

    #[test]
    fn wrappers_match_oracles_bitwise() {
        for kind in [LiftingKind::Cdf97, LiftingKind::LeGall53] {
            let x = signal(48);
            let (a, d) = forward_1d(&x, kind).unwrap();
            let (oa, od) = forward_1d_oracle(&x, kind).unwrap();
            assert_eq!(a, oa, "{kind:?} approx");
            assert_eq!(d, od, "{kind:?} detail");
            assert_eq!(
                inverse_1d(&a, &d, kind).unwrap(),
                inverse_1d_oracle(&oa, &od, kind).unwrap(),
                "{kind:?} inverse"
            );
            let img = image(24);
            let pyr = decompose(&img, kind, 2).unwrap();
            let opyr = decompose_oracle(&img, kind, 2).unwrap();
            assert_eq!(pyr, opyr, "{kind:?} pyramid");
            assert_eq!(
                reconstruct(&pyr, kind).unwrap(),
                reconstruct_oracle(&opyr, kind).unwrap(),
                "{kind:?} reconstruction"
            );
        }
    }

    #[test]
    fn legall_53_maps_integers_to_dyadic_rationals() {
        // 5/3 lifting uses only /2 and /4: exact in binary floating point
        // for integer inputs (the basis of lossless JPEG 2000).
        let x: Vec<f64> = (0..32).map(|i| ((i * 37) % 256) as f64).collect();
        let (a, d) = forward_1d(&x, LiftingKind::LeGall53).unwrap();
        let back = inverse_1d(&a, &d, LiftingKind::LeGall53).unwrap();
        assert_eq!(x, back, "5/3 round trip must be bit exact");
    }

    #[test]
    fn smooth_signals_have_tiny_details() {
        // CDF 9/7 has four vanishing moments: a cubic is annihilated in
        // the interior (and everywhere, with periodic wrap, for a
        // constant signal).
        let x = vec![7.5; 64];
        let (_, d) = forward_1d(&x, LiftingKind::Cdf97).unwrap();
        for v in &d {
            assert!(v.abs() < 1e-12);
        }
        let lin: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let (_, d) = forward_1d(&lin, LiftingKind::Cdf97).unwrap();
        // Interior details vanish (boundary wrap excites the ends).
        for v in &d[2..28] {
            assert!(v.abs() < 1e-9, "interior detail {v}");
        }
    }

    #[test]
    fn cdf97_compacts_energy_better_than_haar_on_smooth_images() {
        let img = image(64);
        let pyr97 = decompose(&img, LiftingKind::Cdf97, 3).unwrap();
        let haar = crate::dwt2d::decompose(
            &img,
            &crate::filters::FilterBank::haar(),
            3,
            crate::boundary::Boundary::Periodic,
        )
        .unwrap();
        let detail_energy = |p: &Pyramid| p.detail.iter().map(|b| b.energy()).sum::<f64>();
        // Normalize by total energy (the two transforms scale LL alike
        // enough for this comparison).
        let frac97 = detail_energy(&pyr97) / pyr97.energy();
        let frach = detail_energy(&haar) / haar.energy();
        assert!(
            frac97 < frach,
            "9/7 detail fraction {frac97} !< Haar {frach}"
        );
    }

    #[test]
    fn rejects_odd_lengths() {
        assert!(forward_1d(&signal(63), LiftingKind::Cdf97).is_err());
        assert!(decompose(&Matrix::zeros(12, 12), LiftingKind::Cdf97, 3).is_err());
        assert!(inverse_1d(&[1.0], &[1.0, 2.0], LiftingKind::Cdf97).is_err());
    }
}
