//! Wavelet-domain compression: thresholding, quantization, and
//! reconstruction-quality metrics.
//!
//! This is the application the paper motivates: on-line processing of
//! remotely sensed imagery (EOSDIS) where the LL band is a compressed
//! rendition of the image and small detail coefficients can be discarded.

use crate::matrix::Matrix;
use crate::pyramid::Pyramid;

/// Thresholding policy applied to detail coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Threshold {
    /// Zero coefficients with `|c| < t`, keep the rest unchanged.
    Hard(f64),
    /// Zero coefficients with `|c| < t`, shrink the rest toward zero by `t`.
    Soft(f64),
}

impl Threshold {
    #[inline]
    fn apply(self, c: f64) -> f64 {
        match self {
            Threshold::Hard(t) => {
                if c.abs() < t {
                    0.0
                } else {
                    c
                }
            }
            Threshold::Soft(t) => {
                if c.abs() < t {
                    0.0
                } else {
                    c - t * c.signum()
                }
            }
        }
    }
}

/// Summary statistics of a compression pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionStats {
    /// Detail coefficients before thresholding.
    pub total_detail_coeffs: usize,
    /// Detail coefficients that survived (non-zero after thresholding).
    pub kept_detail_coeffs: usize,
    /// Fraction of detail energy retained.
    pub energy_retained: f64,
}

impl CompressionStats {
    /// `kept / total`, in `[0, 1]`; 1.0 when there are no detail
    /// coefficients at all.
    pub fn keep_ratio(&self) -> f64 {
        if self.total_detail_coeffs == 0 {
            1.0
        } else {
            self.kept_detail_coeffs as f64 / self.total_detail_coeffs as f64
        }
    }
}

/// Threshold every *detail* coefficient of the pyramid in place (the LL
/// approximation band is never touched), returning statistics.
pub fn threshold_details(pyr: &mut Pyramid, policy: Threshold) -> CompressionStats {
    let mut total = 0usize;
    let mut kept = 0usize;
    let mut energy_before = 0.0;
    let mut energy_after = 0.0;
    for bands in &mut pyr.detail {
        for data in [
            bands.lh.data_mut(),
            bands.hl.data_mut(),
            bands.hh.data_mut(),
        ] {
            for v in data {
                total += 1;
                energy_before += *v * *v;
                *v = policy.apply(*v);
                if *v != 0.0 {
                    kept += 1;
                    energy_after += *v * *v;
                }
            }
        }
    }
    CompressionStats {
        total_detail_coeffs: total,
        kept_detail_coeffs: kept,
        energy_retained: if energy_before > 0.0 {
            energy_after / energy_before
        } else {
            1.0
        },
    }
}

/// Find the hard threshold that keeps (approximately) the `keep_fraction`
/// largest-magnitude detail coefficients, then apply it.
///
/// `keep_fraction` is clamped to `[0, 1]`.
pub fn compress_to_fraction(pyr: &mut Pyramid, keep_fraction: f64) -> CompressionStats {
    let keep_fraction = keep_fraction.clamp(0.0, 1.0);
    let mut mags: Vec<f64> = Vec::new();
    for bands in &pyr.detail {
        for data in [bands.lh.data(), bands.hl.data(), bands.hh.data()] {
            mags.extend(data.iter().map(|v| v.abs()));
        }
    }
    if mags.is_empty() {
        return CompressionStats {
            total_detail_coeffs: 0,
            kept_detail_coeffs: 0,
            energy_retained: 1.0,
        };
    }
    let keep = ((mags.len() as f64) * keep_fraction).round() as usize;
    let t = if keep == 0 {
        f64::INFINITY
    } else if keep >= mags.len() {
        0.0
    } else {
        // The threshold sits just below the keep-th largest magnitude.
        let idx = mags.len() - keep;
        mags.sort_by(|a, b| a.partial_cmp(b).expect("magnitudes are not NaN"));
        mags[idx]
    };
    threshold_details(pyr, Threshold::Hard(t))
}

/// Uniform scalar quantizer: coefficients are rounded to multiples of
/// `step`. Returns the number of distinct non-zero quantization bins used.
pub fn quantize(pyr: &mut Pyramid, step: f64) -> usize {
    assert!(step > 0.0, "quantization step must be positive");
    let mut bins = std::collections::HashSet::new();
    pyr.for_each_coeff_mut(|v| {
        let q = (*v / step).round();
        *v = q * step;
        if q != 0.0 {
            bins.insert(q as i64);
        }
    });
    bins.len()
}

/// Mean squared error between two equally sized images.
///
/// Returns `None` if shapes differ.
pub fn mse(a: &Matrix, b: &Matrix) -> Option<f64> {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return None;
    }
    let n = (a.rows() * a.cols()) as f64;
    Some(
        a.data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            / n,
    )
}

/// Peak signal-to-noise ratio in dB for a given peak value (255 for 8-bit
/// imagery). Returns `f64::INFINITY` for identical images and `None` for
/// shape mismatches.
pub fn psnr(a: &Matrix, b: &Matrix, peak: f64) -> Option<f64> {
    let m = mse(a, b)?;
    if m == 0.0 {
        return Some(f64::INFINITY);
    }
    Some(10.0 * (peak * peak / m).log10())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::Boundary;
    use crate::dwt2d;
    use crate::filters::FilterBank;

    fn busy_image(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |r, c| {
            100.0 + 50.0 * ((r as f64 * 0.7).sin() * (c as f64 * 0.3).cos()) + ((r * c) % 7) as f64
        })
    }

    #[test]
    fn hard_threshold_zeroes_small_coeffs() {
        assert_eq!(Threshold::Hard(1.0).apply(0.5), 0.0);
        assert_eq!(Threshold::Hard(1.0).apply(2.0), 2.0);
        assert_eq!(Threshold::Hard(1.0).apply(-2.0), -2.0);
    }

    #[test]
    fn soft_threshold_shrinks() {
        assert_eq!(Threshold::Soft(1.0).apply(0.5), 0.0);
        assert_eq!(Threshold::Soft(1.0).apply(2.0), 1.0);
        assert_eq!(Threshold::Soft(1.0).apply(-2.0), -1.0);
    }

    #[test]
    fn threshold_details_never_touches_ll() {
        let bank = FilterBank::daubechies(4).unwrap();
        let img = busy_image(32);
        let mut pyr = dwt2d::decompose(&img, &bank, 2, Boundary::Periodic).unwrap();
        let ll_before = pyr.approx.clone();
        threshold_details(&mut pyr, Threshold::Hard(f64::INFINITY));
        assert_eq!(pyr.approx, ll_before);
        for bands in &pyr.detail {
            assert_eq!(bands.energy(), 0.0);
        }
    }

    #[test]
    fn compress_to_fraction_keeps_roughly_that_many() {
        let bank = FilterBank::daubechies(4).unwrap();
        let img = busy_image(64);
        let mut pyr = dwt2d::decompose(&img, &bank, 3, Boundary::Periodic).unwrap();
        let stats = compress_to_fraction(&mut pyr, 0.1);
        let ratio = stats.keep_ratio();
        assert!(
            (0.05..=0.2).contains(&ratio),
            "keep ratio {ratio} far from 0.1"
        );
    }

    #[test]
    fn compress_keep_all_and_none() {
        let bank = FilterBank::haar();
        let img = busy_image(16);
        let mut pyr = dwt2d::decompose(&img, &bank, 1, Boundary::Periodic).unwrap();
        let full = compress_to_fraction(&mut pyr.clone(), 1.0);
        // Coefficients that are exactly zero stay "not kept".
        assert!(full.energy_retained > 0.999999);
        let none = compress_to_fraction(&mut pyr, 0.0);
        assert_eq!(none.kept_detail_coeffs, 0);
    }

    #[test]
    fn aggressive_compression_still_reconstructs_reasonably() {
        let bank = FilterBank::daubechies(8).unwrap();
        let img = busy_image(64);
        let mut pyr = dwt2d::decompose(&img, &bank, 3, Boundary::Periodic).unwrap();
        compress_to_fraction(&mut pyr, 0.05);
        let rec = dwt2d::reconstruct(&pyr, &bank, Boundary::Periodic).unwrap();
        let p = psnr(&img, &rec, 255.0).unwrap();
        assert!(p > 25.0, "PSNR {p} dB too low for a smooth image");
    }

    #[test]
    fn quantize_reduces_distinct_values() {
        let bank = FilterBank::haar();
        let img = busy_image(16);
        let mut pyr = dwt2d::decompose(&img, &bank, 1, Boundary::Periodic).unwrap();
        let bins = quantize(&mut pyr, 64.0);
        assert!(bins > 0);
        // All coefficients are now multiples of 64.
        pyr.for_each_coeff(|v| assert!((v / 64.0 - (v / 64.0).round()).abs() < 1e-12));
    }

    #[test]
    fn psnr_of_identical_images_is_infinite() {
        let img = busy_image(8);
        assert_eq!(psnr(&img, &img, 255.0), Some(f64::INFINITY));
        assert!(psnr(&img, &Matrix::zeros(4, 4), 255.0).is_none());
    }

    #[test]
    fn mse_simple_case() {
        let a = Matrix::from_vec(1, 2, vec![0.0, 0.0]).unwrap();
        let b = Matrix::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert_eq!(mse(&a, &b), Some(12.5));
    }
}
