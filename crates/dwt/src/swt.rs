//! The stationary (undecimated, à trous) wavelet transform.
//!
//! This is the transform the MasPar *dilution* algorithm computes: no
//! decimation, filters stretched by `2^level` instead. It is redundant
//! (every level is full size) and **shift-invariant**, which makes it
//! the right tool for feature extraction; sampling its bands on the
//! `2^level` grid recovers exactly the Mallat coefficients.
//!
//! Periodic boundaries only — the à trous reconstruction identity
//! (`Σ_d l[m]l[m+d] + h[m]h[m+d] = 2δ_d`) needs circular convolution.

use crate::boundary::Boundary;
use crate::conv;
use crate::error::{DwtError, Result};
use crate::filters::FilterBank;
use crate::matrix::Matrix;

/// The four undecimated bands of one SWT level (all full size).
#[derive(Debug, Clone, PartialEq)]
pub struct SwtLevel {
    /// Low/low (approximation at this scale).
    pub ll: Matrix,
    /// Low rows / high columns.
    pub lh: Matrix,
    /// High rows / low columns.
    pub hl: Matrix,
    /// High/high.
    pub hh: Matrix,
}

/// A full undecimated decomposition: `levels[k]` holds scale `k+1`.
/// The final approximation is `levels.last().ll`.
#[derive(Debug, Clone, PartialEq)]
pub struct SwtPyramid {
    /// Per-level bands, finest first.
    pub levels: Vec<SwtLevel>,
}

fn conv_rows(img: &Matrix, taps: &[f64]) -> Matrix {
    let mut out = Matrix::zeros(img.rows(), img.cols());
    for r in 0..img.rows() {
        out.row_mut(r)
            .copy_from_slice(&conv::convolve(img.row(r), taps, Boundary::Periodic));
    }
    out
}

fn conv_cols(img: &Matrix, taps: &[f64]) -> Matrix {
    let mut out = Matrix::zeros(img.rows(), img.cols());
    let mut col = vec![0.0; img.rows()];
    for c in 0..img.cols() {
        img.copy_col_into(c, &mut col);
        out.set_col(c, &conv::convolve(&col, taps, Boundary::Periodic));
    }
    out
}

/// Undecimated multi-level decomposition of `img`.
pub fn decompose(img: &Matrix, bank: &FilterBank, levels: usize) -> Result<SwtPyramid> {
    if levels == 0 {
        return Err(DwtError::ZeroLevels);
    }
    let support = (bank.len() - 1) * (1 << (levels - 1)) + 1;
    if img.rows() < support || img.cols() < support {
        return Err(DwtError::SignalTooShort {
            len: img.rows().min(img.cols()),
            filter_len: support,
        });
    }
    let mut out = Vec::with_capacity(levels);
    let mut approx = img.clone();
    for level in 0..levels as u32 {
        let dl = bank.dilated_low(level);
        let dh = bank.dilated_high(level);
        let low = conv_rows(&approx, &dl);
        let high = conv_rows(&approx, &dh);
        let lvl = SwtLevel {
            ll: conv_cols(&low, &dl),
            lh: conv_cols(&low, &dh),
            hl: conv_cols(&high, &dl),
            hh: conv_cols(&high, &dh),
        };
        approx = lvl.ll.clone();
        out.push(lvl);
    }
    Ok(SwtPyramid { levels: out })
}

/// Backward (synthesis) row convolution: `y[i] = Σ_m taps[m] x[i - m]`
/// (periodic). Together with the analysis `y[i] = Σ_m taps[m] x[i + m]`,
/// the filter autocorrelation identity of orthonormal QMF banks makes
/// `(L∘ + H∘)/2` the exact à trous inverse.
fn conv_rows_back(img: &Matrix, taps: &[f64]) -> Matrix {
    let n = img.cols() as isize;
    let mut out = Matrix::zeros(img.rows(), img.cols());
    for r in 0..img.rows() {
        let src = img.row(r);
        for i in 0..img.cols() {
            let mut acc = 0.0;
            for (m, &t) in taps.iter().enumerate() {
                if t == 0.0 {
                    continue;
                }
                let idx = (i as isize - m as isize).rem_euclid(n) as usize;
                acc += t * src[idx];
            }
            out.set(r, i, acc);
        }
    }
    out
}

/// Backward (synthesis) column convolution (see [`conv_rows_back`]).
fn conv_cols_back(img: &Matrix, taps: &[f64]) -> Matrix {
    let n = img.rows() as isize;
    let mut out = Matrix::zeros(img.rows(), img.cols());
    let mut col = vec![0.0; img.rows()];
    let mut dst = vec![0.0; img.rows()];
    for c in 0..img.cols() {
        img.copy_col_into(c, &mut col);
        for (i, d) in dst.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (m, &t) in taps.iter().enumerate() {
                if t == 0.0 {
                    continue;
                }
                let idx = (i as isize - m as isize).rem_euclid(n) as usize;
                acc += t * col[idx];
            }
            *d = acc;
        }
        out.set_col(c, &dst);
    }
    out
}

/// One inverse level: reconstruct scale-`level` approximation from the
/// four bands of scale `level+1`.
fn inverse_level(lvl: &SwtLevel, bank: &FilterBank, level: u32) -> Matrix {
    let dl = bank.dilated_low(level);
    let dh = bank.dilated_high(level);
    // Invert columns: low = (L∘ ll + H∘ lh)/2, high likewise.
    let low = add_scaled(
        &conv_cols_back(&lvl.ll, &dl),
        &conv_cols_back(&lvl.lh, &dh),
        0.5,
    );
    let high = add_scaled(
        &conv_cols_back(&lvl.hl, &dl),
        &conv_cols_back(&lvl.hh, &dh),
        0.5,
    );
    // Invert rows.
    add_scaled(&conv_rows_back(&low, &dl), &conv_rows_back(&high, &dh), 0.5)
}

fn add_scaled(a: &Matrix, b: &Matrix, scale: f64) -> Matrix {
    Matrix::from_fn(a.rows(), a.cols(), |r, c| {
        scale * (a.get(r, c) + b.get(r, c))
    })
}

/// Invert [`decompose`] exactly (periodic boundaries).
pub fn reconstruct(pyr: &SwtPyramid, bank: &FilterBank) -> Result<Matrix> {
    let Some(last) = pyr.levels.last() else {
        return Err(DwtError::ZeroLevels);
    };
    let mut approx = last.ll.clone();
    for (level, lvl) in pyr.levels.iter().enumerate().rev() {
        let merged = SwtLevel {
            ll: approx,
            lh: lvl.lh.clone(),
            hl: lvl.hl.clone(),
            hh: lvl.hh.clone(),
        };
        approx = inverse_level(&merged, bank, level as u32);
    }
    Ok(approx)
}

/// Sample an SWT band at the Mallat grid of its level (stride
/// `2^level`), recovering decimated coefficients.
pub fn sample_band(band: &Matrix, level: usize) -> Matrix {
    let stride = 1usize << level;
    Matrix::from_fn(band.rows() / stride, band.cols() / stride, |r, c| {
        band.get(r * stride, c * stride)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dwt2d;

    fn image(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |r, c| {
            ((r * 13 + c * 7) % 19) as f64 + (r as f64 * 0.3).sin()
        })
    }

    #[test]
    fn perfect_reconstruction() {
        let img = image(32);
        for taps in [2usize, 4, 8] {
            let bank = FilterBank::daubechies(taps).unwrap();
            for levels in 1..=3 {
                let pyr = decompose(&img, &bank, levels).unwrap();
                let rec = reconstruct(&pyr, &bank).unwrap();
                let err = img.max_abs_diff(&rec).unwrap();
                assert!(err < 1e-9, "D{taps} L{levels}: {err}");
            }
        }
    }

    #[test]
    fn sampling_recovers_mallat_coefficients() {
        let img = image(32);
        let bank = FilterBank::daubechies(4).unwrap();
        let swt = decompose(&img, &bank, 2).unwrap();
        let dwt = dwt2d::decompose(&img, &bank, 2, Boundary::Periodic).unwrap();
        // Level 1 bands sampled at stride 2, level 2 at stride 4.
        for (k, bands) in dwt.detail.iter().enumerate() {
            let lvl = k + 1;
            let s = &swt.levels[k];
            assert!(sample_band(&s.lh, lvl).max_abs_diff(&bands.lh).unwrap() < 1e-12);
            assert!(sample_band(&s.hl, lvl).max_abs_diff(&bands.hl).unwrap() < 1e-12);
            assert!(sample_band(&s.hh, lvl).max_abs_diff(&bands.hh).unwrap() < 1e-12);
        }
        assert!(
            sample_band(&swt.levels[1].ll, 2)
                .max_abs_diff(&dwt.approx)
                .unwrap()
                < 1e-12
        );
    }

    #[test]
    fn bands_are_full_size() {
        let img = image(16);
        let bank = FilterBank::haar();
        let pyr = decompose(&img, &bank, 3).unwrap();
        for lvl in &pyr.levels {
            assert_eq!(lvl.ll.rows(), 16);
            assert_eq!(lvl.hh.cols(), 16);
        }
    }

    #[test]
    fn shift_invariance_of_band_energy() {
        // The decimated DWT is famously shift-variant; the SWT's band
        // energies are exactly invariant under circular shifts.
        let img = image(32);
        let shifted = Matrix::from_fn(32, 32, |r, c| img.get((r + 1) % 32, (c + 3) % 32));
        let bank = FilterBank::daubechies(4).unwrap();
        let a = decompose(&img, &bank, 2).unwrap();
        let b = decompose(&shifted, &bank, 2).unwrap();
        for (la, lb) in a.levels.iter().zip(&b.levels) {
            assert!((la.lh.energy() - lb.lh.energy()).abs() < 1e-6);
            assert!((la.hh.energy() - lb.hh.energy()).abs() < 1e-6);
        }
    }

    #[test]
    fn rejects_zero_levels_and_tiny_images() {
        let img = image(8);
        let bank = FilterBank::daubechies(8).unwrap();
        assert!(decompose(&img, &bank, 0).is_err());
        // D8 dilated twice spans 29 samples > 8.
        assert!(decompose(&img, &bank, 3).is_err());
    }
}
