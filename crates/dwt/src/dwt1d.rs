//! One-dimensional multi-resolution analysis and synthesis.

use crate::boundary::Boundary;
use crate::conv;
use crate::error::{DwtError, Result};
use crate::filters::FilterBank;

/// The result of a multi-level 1-D decomposition.
///
/// `details[0]` holds the level-1 (finest) wavelet coefficients,
/// `details.last()` the coarsest; `approx` is the remaining scaling
/// coefficients at the deepest level.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition1d {
    /// Scaling (approximation) coefficients at the coarsest level.
    pub approx: Vec<f64>,
    /// Wavelet (detail) coefficients, finest level first.
    pub details: Vec<Vec<f64>>,
}

impl Decomposition1d {
    /// Number of decomposition levels.
    pub fn levels(&self) -> usize {
        self.details.len()
    }

    /// Original signal length.
    pub fn signal_len(&self) -> usize {
        self.approx.len() + self.details.iter().map(Vec::len).sum::<usize>()
    }

    /// Total coefficient energy (`Σ c²`), equal to the signal energy for
    /// periodic boundaries (Parseval).
    pub fn energy(&self) -> f64 {
        let e: f64 = self.approx.iter().map(|v| v * v).sum();
        e + self
            .details
            .iter()
            .flat_map(|d| d.iter())
            .map(|v| v * v)
            .sum::<f64>()
    }
}

/// Check that `len` survives `levels` halvings and is long enough for the
/// filter at every level.
fn validate(len: usize, filter_len: usize, levels: usize) -> Result<()> {
    if levels == 0 {
        return Err(DwtError::ZeroLevels);
    }
    let mut n = len;
    for level in 1..=levels {
        if !n.is_multiple_of(2) {
            return Err(DwtError::OddLength { len: n, level });
        }
        if n < filter_len {
            return Err(DwtError::SignalTooShort { len: n, filter_len });
        }
        n /= 2;
    }
    Ok(())
}

/// One analysis step: split `x` into `(approx, detail)` halves.
pub fn analyze_step(x: &[f64], bank: &FilterBank, mode: Boundary) -> Result<(Vec<f64>, Vec<f64>)> {
    validate(x.len(), bank.len(), 1)?;
    Ok((
        conv::analyze(x, bank.low(), mode),
        conv::analyze(x, bank.high(), mode),
    ))
}

/// One synthesis step: merge `(approx, detail)` back into a signal of
/// twice the length. Exact inverse of [`analyze_step`] for
/// [`Boundary::Periodic`].
pub fn synthesize_step(
    approx: &[f64],
    detail: &[f64],
    bank: &FilterBank,
    mode: Boundary,
) -> Result<Vec<f64>> {
    if approx.len() != detail.len() {
        return Err(DwtError::DimensionMismatch {
            detail: format!(
                "approx has {} coefficients but detail has {}",
                approx.len(),
                detail.len()
            ),
        });
    }
    let mut out = vec![0.0; 2 * approx.len()];
    conv::synthesize_add(approx, bank.low(), mode, &mut out)?;
    conv::synthesize_add(detail, bank.high(), mode, &mut out)?;
    Ok(out)
}

/// Full multi-level decomposition of `x`.
pub fn decompose(
    x: &[f64],
    bank: &FilterBank,
    levels: usize,
    mode: Boundary,
) -> Result<Decomposition1d> {
    validate(x.len(), bank.len(), levels)?;
    let mut approx = x.to_vec();
    let mut details = Vec::with_capacity(levels);
    for _ in 0..levels {
        let (a, d) = analyze_step(&approx, bank, mode)?;
        details.push(d);
        approx = a;
    }
    Ok(Decomposition1d { approx, details })
}

/// Invert [`decompose`].
pub fn reconstruct(dec: &Decomposition1d, bank: &FilterBank, mode: Boundary) -> Result<Vec<f64>> {
    let mut approx = dec.approx.clone();
    for detail in dec.details.iter().rev() {
        approx = synthesize_step(&approx, detail, bank, mode)?;
    }
    Ok(approx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn validate_rejects_bad_inputs() {
        assert_eq!(validate(16, 4, 0), Err(DwtError::ZeroLevels));
        assert_eq!(
            validate(6, 4, 2),
            Err(DwtError::OddLength { len: 3, level: 2 })
        );
        assert_eq!(
            validate(4, 8, 1),
            Err(DwtError::SignalTooShort {
                len: 4,
                filter_len: 8
            })
        );
        assert!(validate(16, 4, 2).is_ok());
    }

    #[test]
    fn perfect_reconstruction_multi_level() {
        for taps in [2usize, 4, 6, 8, 10] {
            let bank = FilterBank::daubechies(taps).unwrap();
            let x: Vec<f64> = (0..64).map(|i| ((i * 31 + 7) % 17) as f64 - 8.0).collect();
            for levels in 1..=3 {
                let dec = decompose(&x, &bank, levels, Boundary::Periodic).unwrap();
                let rec = reconstruct(&dec, &bank, Boundary::Periodic).unwrap();
                let err = x
                    .iter()
                    .zip(&rec)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f64::max);
                assert!(err < 1e-9, "D{taps} L{levels}: err {err}");
            }
        }
    }

    #[test]
    fn parseval_energy() {
        let bank = FilterBank::daubechies(8).unwrap();
        let x: Vec<f64> = (0..128).map(|i| (i as f64 * 0.21).cos() * 3.0).collect();
        let dec = decompose(&x, &bank, 4, Boundary::Periodic).unwrap();
        let ex: f64 = x.iter().map(|v| v * v).sum();
        assert!((dec.energy() - ex).abs() < 1e-8 * ex);
    }

    #[test]
    fn coefficient_counts() {
        let bank = FilterBank::haar();
        let dec = decompose(&ramp(32), &bank, 3, Boundary::Periodic).unwrap();
        assert_eq!(dec.levels(), 3);
        assert_eq!(dec.details[0].len(), 16);
        assert_eq!(dec.details[1].len(), 8);
        assert_eq!(dec.details[2].len(), 4);
        assert_eq!(dec.approx.len(), 4);
        assert_eq!(dec.signal_len(), 32);
    }

    #[test]
    fn constant_signal_has_no_detail() {
        // Orthonormal wavelets have at least one vanishing moment, so a
        // constant signal produces zero detail coefficients (periodic).
        for taps in [2usize, 4, 8] {
            let bank = FilterBank::daubechies(taps).unwrap();
            let x = vec![5.0; 32];
            let dec = decompose(&x, &bank, 2, Boundary::Periodic).unwrap();
            for d in dec.details.iter().flat_map(|d| d.iter()) {
                assert!(d.abs() < 1e-10);
            }
        }
    }

    #[test]
    fn d4_kills_linear_ramps_in_interior() {
        // D4 has two vanishing moments; interior detail coefficients of a
        // linear ramp vanish (edges wrap, so only check interior).
        let bank = FilterBank::daubechies(4).unwrap();
        let x = ramp(64);
        let (_, d) = analyze_step(&x, &bank, Boundary::Periodic).unwrap();
        for &v in &d[..d.len() - 2] {
            assert!(v.abs() < 1e-9, "interior detail {v}");
        }
    }

    #[test]
    fn synthesize_step_checks_lengths() {
        let bank = FilterBank::haar();
        assert!(synthesize_step(&[1.0, 2.0], &[1.0], &bank, Boundary::Periodic).is_err());
    }

    #[test]
    fn non_periodic_modes_run_and_shape_is_right() {
        let bank = FilterBank::daubechies(4).unwrap();
        let x = ramp(32);
        for mode in [Boundary::Symmetric, Boundary::Zero] {
            let dec = decompose(&x, &bank, 2, mode).unwrap();
            assert_eq!(dec.signal_len(), 32);
        }
    }
}
