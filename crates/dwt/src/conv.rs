//! Low-level filtering kernels: convolve-and-decimate (analysis) and its
//! adjoint, upsample-and-convolve (synthesis).
//!
//! The convention matches Mallat's algorithm as described in the paper:
//! the analysis output is
//!
//! ```text
//! y[k] = Σ_m f[m] · x[(2k + m)]          k = 0 .. n/2
//! ```
//!
//! with out-of-range samples supplied by a [`Boundary`] policy. For the
//! [`Boundary::Periodic`] mode and an orthonormal filter bank the
//! analysis operator is orthogonal, so the synthesis implemented here as
//! its adjoint is an exact inverse.

use crate::boundary::Boundary;

/// Filter `x` with `taps` and decimate by two, writing `x.len()/2`
/// outputs into `out`.
///
/// # Panics
///
/// Debug-asserts that `out.len() == x.len() / 2` and `x` is non-empty.
pub fn analyze_into(x: &[f64], taps: &[f64], mode: Boundary, out: &mut [f64]) {
    let n = x.len();
    debug_assert!(n > 0);
    debug_assert_eq!(out.len(), n / 2);
    // Fast path: the filter never leaves the signal except at the tail,
    // and periodic wrap can be done with cheap index arithmetic.
    for (k, slot) in out.iter_mut().enumerate() {
        let base = 2 * k;
        let mut acc = 0.0;
        if base + taps.len() <= n {
            // Entirely interior: no boundary handling needed.
            for (m, &t) in taps.iter().enumerate() {
                acc += t * x[base + m];
            }
        } else {
            for (m, &t) in taps.iter().enumerate() {
                if let Some(idx) = mode.map((base + m) as isize, n) {
                    acc += t * x[idx];
                }
            }
        }
        *slot = acc;
    }
}

/// Allocating wrapper around [`analyze_into`].
pub fn analyze(x: &[f64], taps: &[f64], mode: Boundary) -> Vec<f64> {
    let mut out = vec![0.0; x.len() / 2];
    analyze_into(x, taps, mode, &mut out);
    out
}

/// Scatter-add the adjoint of [`analyze_into`]: for every coefficient
/// `c[k]` add `c[k]·taps[m]` at extended position `2k+m`.
///
/// `out` must have length `2 * c.len()`; contributions that the boundary
/// mode maps outside the signal are dropped (`Zero`) or folded back
/// (`Periodic`, `Symmetric`).
pub fn synthesize_add(c: &[f64], taps: &[f64], mode: Boundary, out: &mut [f64]) {
    let n = out.len();
    debug_assert!(n > 0);
    debug_assert_eq!(n, 2 * c.len());
    for (k, &ck) in c.iter().enumerate() {
        if ck == 0.0 {
            continue;
        }
        let base = 2 * k;
        if base + taps.len() <= n {
            for (m, &t) in taps.iter().enumerate() {
                out[base + m] += ck * t;
            }
        } else {
            for (m, &t) in taps.iter().enumerate() {
                if let Some(idx) = mode.map((base + m) as isize, n) {
                    out[idx] += ck * t;
                }
            }
        }
    }
}

/// Undecimated (à trous style) filtering: `y[i] = Σ_m f[m] x[i+m]` with
/// boundary extension. Used by the MasPar dilution algorithm, where the
/// filter is stretched instead of the signal being decimated.
pub fn convolve(x: &[f64], taps: &[f64], mode: Boundary) -> Vec<f64> {
    let n = x.len();
    let mut out = vec![0.0; n];
    for (i, slot) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (m, &t) in taps.iter().enumerate() {
            if t == 0.0 {
                continue;
            }
            if let Some(idx) = mode.map((i + m) as isize, n) {
                acc += t * x[idx];
            }
        }
        *slot = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::FilterBank;

    #[test]
    fn haar_analysis_averages_pairs() {
        let bank = FilterBank::haar();
        let x = [2.0, 4.0, 6.0, 8.0];
        let a = analyze(&x, bank.low(), Boundary::Periodic);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((a[0] - s * 6.0).abs() < 1e-12);
        assert!((a[1] - s * 14.0).abs() < 1e-12);
        let d = analyze(&x, bank.high(), Boundary::Periodic);
        // Haar high-pass is (x0 - x1)/sqrt(2) with our flip convention:
        // h = [l1, -l0] = [s, -s].
        assert!((d[0] - s * (2.0 - 4.0)).abs() < 1e-12);
    }

    #[test]
    fn analysis_then_adjoint_is_identity_periodic() {
        for taps in [2usize, 4, 8] {
            let bank = FilterBank::daubechies(taps).unwrap();
            let x: Vec<f64> = (0..32).map(|i| ((i * 7 + 3) % 13) as f64).collect();
            let a = analyze(&x, bank.low(), Boundary::Periodic);
            let d = analyze(&x, bank.high(), Boundary::Periodic);
            let mut rec = vec![0.0; x.len()];
            synthesize_add(&a, bank.low(), Boundary::Periodic, &mut rec);
            synthesize_add(&d, bank.high(), Boundary::Periodic, &mut rec);
            for (orig, got) in x.iter().zip(&rec) {
                assert!((orig - got).abs() < 1e-10, "D{taps}: {orig} vs {got}");
            }
        }
    }

    #[test]
    fn energy_preserved_periodic() {
        let bank = FilterBank::daubechies(8).unwrap();
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin()).collect();
        let a = analyze(&x, bank.low(), Boundary::Periodic);
        let d = analyze(&x, bank.high(), Boundary::Periodic);
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ec: f64 = a.iter().chain(&d).map(|v| v * v).sum();
        assert!((ex - ec).abs() < 1e-9 * ex.max(1.0));
    }

    #[test]
    fn zero_boundary_drops_tail_contributions() {
        let bank = FilterBank::daubechies(4).unwrap();
        let x = [1.0, 1.0, 1.0, 1.0];
        let per = analyze(&x, bank.low(), Boundary::Periodic);
        let zer = analyze(&x, bank.low(), Boundary::Zero);
        // Interior coefficient identical, tail coefficient smaller in
        // magnitude because wrapped samples are dropped.
        assert!((per[0] - zer[0]).abs() < 1e-12);
        assert!(zer[1].abs() < per[1].abs());
    }

    #[test]
    fn convolve_with_identity_filter() {
        let x = [1.0, 2.0, 3.0];
        let y = convolve(&x, &[1.0], Boundary::Periodic);
        assert_eq!(y, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn convolve_dilated_filter_skips_zero_taps() {
        let x = [1.0, 2.0, 3.0, 4.0];
        // Dilated Haar-like filter [1, 0, 1]: y[i] = x[i] + x[i+2].
        let y = convolve(&x, &[1.0, 0.0, 1.0], Boundary::Periodic);
        assert_eq!(y, vec![4.0, 6.0, 4.0, 6.0]);
    }

    #[test]
    fn odd_length_signal_analysis_truncates() {
        let bank = FilterBank::haar();
        let x = [1.0, 2.0, 3.0];
        // n/2 = 1 coefficient.
        let a = analyze(&x, bank.low(), Boundary::Periodic);
        assert_eq!(a.len(), 1);
    }
}
