//! Low-level filtering kernels: convolve-and-decimate (analysis) and its
//! adjoint, upsample-and-convolve (synthesis).
//!
//! The convention matches Mallat's algorithm as described in the paper:
//! the analysis output is
//!
//! ```text
//! y[k] = Σ_m f[m] · x[(2k + m)]          k = 0 .. n/2
//! ```
//!
//! with out-of-range samples supplied by a [`Boundary`] policy. For the
//! [`Boundary::Periodic`] mode and an orthonormal filter bank the
//! analysis operator is orthogonal, so the synthesis implemented here as
//! its adjoint is an exact inverse.
//!
//! Each kernel is split into a **branchless interior loop** (the filter
//! window provably inside the signal, no boundary logic, auto-vectorizes)
//! and a **tail loop** that resolves the few boundary-crossing windows
//! through [`Boundary::map`]. Buffer-length preconditions are checked in
//! release builds too and reported as [`DwtError`] — a mismatched output
//! buffer (e.g. from an odd-sized input that a caller forgot to validate)
//! is a caller bug we refuse to paper over with silent truncation.

use crate::boundary::Boundary;
use crate::error::{DwtError, Result};

/// Number of leading analysis outputs whose filter window is entirely
/// interior: `k` such that `2k + filter_len <= n`.
#[inline]
pub(crate) fn interior_outputs(n: usize, filter_len: usize, out_len: usize) -> usize {
    if n >= filter_len {
        ((n - filter_len) / 2 + 1).min(out_len)
    } else {
        0
    }
}

/// Unchecked analysis kernel: `out` must hold exactly `x.len() / 2`
/// elements. Kept crate-private for pre-validated hot paths (the fused
/// engine); external callers go through [`analyze_into`].
#[inline]
pub(crate) fn analyze_unchecked(x: &[f64], taps: &[f64], mode: Boundary, out: &mut [f64]) {
    let n = x.len();
    debug_assert_eq!(out.len(), n / 2);
    let interior = interior_outputs(n, taps.len(), out.len());
    // Interior: the window never leaves the signal, so no per-sample
    // boundary checks — a pure multiply-accumulate LLVM can vectorize.
    for (k, slot) in out[..interior].iter_mut().enumerate() {
        let base = 2 * k;
        let window = &x[base..base + taps.len()];
        let mut acc = 0.0;
        for (&t, &v) in taps.iter().zip(window) {
            acc += t * v;
        }
        *slot = acc;
    }
    // Tail: windows that cross the right edge, resolved per tap.
    for (k, slot) in out.iter_mut().enumerate().skip(interior) {
        let base = 2 * k;
        let mut acc = 0.0;
        for (m, &t) in taps.iter().enumerate() {
            if let Some(idx) = mode.map((base + m) as isize, n) {
                acc += t * x[idx];
            }
        }
        *slot = acc;
    }
}

/// Filter `x` with `taps` and decimate by two, writing `x.len()/2`
/// outputs into `out`.
///
/// # Errors
///
/// [`DwtError::SignalTooShort`] when `x` is empty, and
/// [`DwtError::DimensionMismatch`] when `out.len() != x.len() / 2` — both
/// checked in release builds as well, so a mis-sized buffer can never be
/// silently truncated.
pub fn analyze_into(x: &[f64], taps: &[f64], mode: Boundary, out: &mut [f64]) -> Result<()> {
    if x.is_empty() {
        return Err(DwtError::SignalTooShort {
            len: 0,
            filter_len: taps.len(),
        });
    }
    if out.len() != x.len() / 2 {
        return Err(DwtError::DimensionMismatch {
            detail: format!(
                "analysis of {} samples yields {} coefficients but the output buffer holds {}",
                x.len(),
                x.len() / 2,
                out.len()
            ),
        });
    }
    analyze_unchecked(x, taps, mode, out);
    Ok(())
}

/// Allocating wrapper around [`analyze_into`].
pub fn analyze(x: &[f64], taps: &[f64], mode: Boundary) -> Vec<f64> {
    let mut out = vec![0.0; x.len() / 2];
    analyze_unchecked(x, taps, mode, &mut out);
    out
}

/// Unchecked synthesis kernel: `out` must hold exactly `2 * c.len()`
/// elements. Crate-private twin of [`synthesize_add`].
#[inline]
pub(crate) fn synthesize_add_unchecked(c: &[f64], taps: &[f64], mode: Boundary, out: &mut [f64]) {
    let n = out.len();
    debug_assert_eq!(n, 2 * c.len());
    let interior = interior_outputs(n, taps.len(), c.len());
    // Interior: scatter entirely inside the output, branch-free.
    for (k, &ck) in c[..interior].iter().enumerate() {
        if ck == 0.0 {
            continue;
        }
        let base = 2 * k;
        let window = &mut out[base..base + taps.len()];
        for (&t, slot) in taps.iter().zip(window) {
            *slot += ck * t;
        }
    }
    // Tail: contributions that the boundary mode folds back or drops.
    for (k, &ck) in c.iter().enumerate().skip(interior) {
        if ck == 0.0 {
            continue;
        }
        let base = 2 * k;
        for (m, &t) in taps.iter().enumerate() {
            if let Some(idx) = mode.map((base + m) as isize, n) {
                out[idx] += ck * t;
            }
        }
    }
}

/// Scatter-add the adjoint of [`analyze_into`]: for every coefficient
/// `c[k]` add `c[k]·taps[m]` at extended position `2k+m`.
///
/// `out` must have length `2 * c.len()`; contributions that the boundary
/// mode maps outside the signal are dropped (`Zero`) or folded back
/// (`Periodic`, `Symmetric`).
///
/// # Errors
///
/// [`DwtError::DimensionMismatch`] when `out.len() != 2 * c.len()` —
/// checked in release builds as well, so out-of-range taps are never
/// silently dropped on mis-sized (e.g. odd-length) buffers.
pub fn synthesize_add(c: &[f64], taps: &[f64], mode: Boundary, out: &mut [f64]) -> Result<()> {
    if out.is_empty() || out.len() != 2 * c.len() {
        return Err(DwtError::DimensionMismatch {
            detail: format!(
                "synthesis of {} coefficients fills {} samples but the output buffer holds {}",
                c.len(),
                2 * c.len(),
                out.len()
            ),
        });
    }
    synthesize_add_unchecked(c, taps, mode, out);
    Ok(())
}

/// Undecimated (à trous style) filtering: `y[i] = Σ_m f[m] x[i+m]` with
/// boundary extension. Used by the MasPar dilution algorithm, where the
/// filter is stretched instead of the signal being decimated.
pub fn convolve(x: &[f64], taps: &[f64], mode: Boundary) -> Vec<f64> {
    let n = x.len();
    let mut out = vec![0.0; n];
    for (i, slot) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (m, &t) in taps.iter().enumerate() {
            if t == 0.0 {
                continue;
            }
            if let Some(idx) = mode.map((i + m) as isize, n) {
                acc += t * x[idx];
            }
        }
        *slot = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::FilterBank;

    #[test]
    fn haar_analysis_averages_pairs() {
        let bank = FilterBank::haar();
        let x = [2.0, 4.0, 6.0, 8.0];
        let a = analyze(&x, bank.low(), Boundary::Periodic);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((a[0] - s * 6.0).abs() < 1e-12);
        assert!((a[1] - s * 14.0).abs() < 1e-12);
        let d = analyze(&x, bank.high(), Boundary::Periodic);
        // Haar high-pass is (x0 - x1)/sqrt(2) with our flip convention:
        // h = [l1, -l0] = [s, -s].
        assert!((d[0] - s * (2.0 - 4.0)).abs() < 1e-12);
    }

    #[test]
    fn analysis_then_adjoint_is_identity_periodic() {
        for taps in [2usize, 4, 8] {
            let bank = FilterBank::daubechies(taps).unwrap();
            let x: Vec<f64> = (0..32).map(|i| ((i * 7 + 3) % 13) as f64).collect();
            let a = analyze(&x, bank.low(), Boundary::Periodic);
            let d = analyze(&x, bank.high(), Boundary::Periodic);
            let mut rec = vec![0.0; x.len()];
            synthesize_add(&a, bank.low(), Boundary::Periodic, &mut rec).unwrap();
            synthesize_add(&d, bank.high(), Boundary::Periodic, &mut rec).unwrap();
            for (orig, got) in x.iter().zip(&rec) {
                assert!((orig - got).abs() < 1e-10, "D{taps}: {orig} vs {got}");
            }
        }
    }

    #[test]
    fn energy_preserved_periodic() {
        let bank = FilterBank::daubechies(8).unwrap();
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin()).collect();
        let a = analyze(&x, bank.low(), Boundary::Periodic);
        let d = analyze(&x, bank.high(), Boundary::Periodic);
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ec: f64 = a.iter().chain(&d).map(|v| v * v).sum();
        assert!((ex - ec).abs() < 1e-9 * ex.max(1.0));
    }

    #[test]
    fn zero_boundary_drops_tail_contributions() {
        let bank = FilterBank::daubechies(4).unwrap();
        let x = [1.0, 1.0, 1.0, 1.0];
        let per = analyze(&x, bank.low(), Boundary::Periodic);
        let zer = analyze(&x, bank.low(), Boundary::Zero);
        // Interior coefficient identical, tail coefficient smaller in
        // magnitude because wrapped samples are dropped.
        assert!((per[0] - zer[0]).abs() < 1e-12);
        assert!(zer[1].abs() < per[1].abs());
    }

    #[test]
    fn analyze_into_rejects_missized_output() {
        let bank = FilterBank::haar();
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut short = vec![0.0; 1];
        assert!(matches!(
            analyze_into(&x, bank.low(), Boundary::Zero, &mut short),
            Err(DwtError::DimensionMismatch { .. })
        ));
        let mut empty_in = vec![0.0; 0];
        assert!(matches!(
            analyze_into(&[], bank.low(), Boundary::Zero, &mut empty_in),
            Err(DwtError::SignalTooShort { len: 0, .. })
        ));
    }

    #[test]
    fn synthesize_add_rejects_missized_output() {
        let bank = FilterBank::haar();
        let c = [1.0, 2.0];
        // Odd-sized output: previously the tail taps were silently
        // dropped under Boundary::Zero; now it is a hard error.
        let mut odd = vec![0.0; 3];
        assert!(matches!(
            synthesize_add(&c, bank.low(), Boundary::Zero, &mut odd),
            Err(DwtError::DimensionMismatch { .. })
        ));
        let mut ok = vec![0.0; 4];
        assert!(synthesize_add(&c, bank.low(), Boundary::Zero, &mut ok).is_ok());
    }

    #[test]
    fn interior_split_matches_reference_all_modes() {
        // The split kernel must agree with a naive per-tap mapped
        // implementation everywhere, including signals shorter than the
        // filter (interior count 0).
        for mode in Boundary::ALL {
            for n in [4usize, 6, 8, 16, 32] {
                for taps in [2usize, 4, 8, 10] {
                    let bank = FilterBank::daubechies(taps).unwrap();
                    let x: Vec<f64> = (0..n).map(|i| ((i * 5 + 1) % 11) as f64 - 5.0).collect();
                    let mut naive = vec![0.0; n / 2];
                    for (k, slot) in naive.iter_mut().enumerate() {
                        let mut acc = 0.0;
                        for (m, &t) in bank.low().iter().enumerate() {
                            if let Some(idx) = mode.map((2 * k + m) as isize, n) {
                                acc += t * x[idx];
                            }
                        }
                        *slot = acc;
                    }
                    let got = analyze(&x, bank.low(), mode);
                    for (a, b) in naive.iter().zip(&got) {
                        assert!((a - b).abs() < 1e-15, "{mode:?} n={n} D{taps}");
                    }
                }
            }
        }
    }

    #[test]
    fn convolve_with_identity_filter() {
        let x = [1.0, 2.0, 3.0];
        let y = convolve(&x, &[1.0], Boundary::Periodic);
        assert_eq!(y, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn convolve_dilated_filter_skips_zero_taps() {
        let x = [1.0, 2.0, 3.0, 4.0];
        // Dilated Haar-like filter [1, 0, 1]: y[i] = x[i] + x[i+2].
        let y = convolve(&x, &[1.0, 0.0, 1.0], Boundary::Periodic);
        assert_eq!(y, vec![4.0, 6.0, 4.0, 6.0]);
    }

    #[test]
    fn odd_length_signal_analysis_truncates() {
        let bank = FilterBank::haar();
        let x = [1.0, 2.0, 3.0];
        // n/2 = 1 coefficient.
        let a = analyze(&x, bank.low(), Boundary::Periodic);
        assert_eq!(a.len(), 1);
    }
}
