//! Fused, cache-blocked 2-D DWT engine with reusable plans and
//! zero-allocation workspaces.
//!
//! # Why
//!
//! The paper's central observation is that wavelet throughput on real
//! machines is decided by **memory traffic and work partitioning**, not
//! FLOPs — its Paragon stripe algorithm exists precisely to keep filter
//! passes local to each node, shipping only a guard zone of
//! `filter_len - 2` rows between neighbours. The legacy separable path in
//! [`crate::dwt2d`] ignores that lesson on a single node: every level
//! materializes two full row-filtered intermediates, allocates fresh
//! matrices, and walks columns with a strided copy.
//!
//! This module is the shared-memory translation of the paper's guard-zone
//! design:
//!
//! * a [`DwtPlan`] precomputes everything the transform needs (validated
//!   geometry per level, tile/band width, thread-lane partitioning);
//! * a [`DwtWorkspace`] owns every scratch buffer, so steady-state
//!   decomposition and reconstruction perform **zero allocations**;
//! * the analysis kernel **fuses** the row and column passes: the image is
//!   processed in column *bands* (cache-sized tiles), and within a band a
//!   ring buffer of `filter_len` row-filtered rows — the tile's *halo*,
//!   the exact analogue of the paper's guard zone — slides down the image.
//!   Each input row is row-filtered once into the ring; each output row is
//!   produced by a column filter whose inner loop runs over **contiguous
//!   output columns** (vertical vectorization), which LLVM auto-vectorizes
//!   without any `unsafe`.
//!
//! The arithmetic performed per coefficient is the *same sequence of
//! operations* as the separable reference, so results are bit-identical —
//! [`crate::dwt2d::decompose_separable`] is kept (hidden) as the
//! property-test oracle.
//!
//! # Quickstart
//!
//! ```
//! use dwt::{engine::DwtPlan, matrix::Matrix, FilterBank, Boundary};
//!
//! let img = Matrix::from_fn(64, 64, |r, c| (r * c) as f64);
//! let bank = FilterBank::daubechies(4).unwrap();
//! let plan = DwtPlan::new(64, 64, bank, 3, Boundary::Periodic).unwrap();
//!
//! // Reusable state: allocate once, transform many frames.
//! let mut ws = plan.make_workspace();
//! let mut pyr = plan.make_pyramid();
//! plan.decompose_into(&img, &mut ws, &mut pyr).unwrap();
//!
//! let mut back = Matrix::zeros(64, 64);
//! plan.reconstruct_into(&pyr, &mut ws, &mut back).unwrap();
//! assert!(img.max_abs_diff(&back).unwrap() < 1e-9);
//! ```

use crate::boundary::Boundary;
use crate::conv;
use crate::dwt2d::validate_dims;
use crate::error::{DwtError, Result};
use crate::filters::FilterBank;
use crate::lifting::LiftingKind;
use crate::matrix::Matrix;
use crate::pyramid::{Pyramid, Subbands};

pub mod lifting;

/// Default band (tile) width in output columns. 256 output columns keep
/// the ring working set — `2 rings × filter_len rows × 8 B` — inside L1
/// for every built-in filter while leaving room for the input rows
/// streaming through L2.
pub const DEFAULT_BAND_WIDTH: usize = 256;

/// Shared low-level loops, used by the fused kernel and exported so the
/// machine-simulation crates (`dwt-mimd`) can run their per-rank filter
/// passes through the same SIMD-friendly code.
pub mod kernel {
    /// `dst[i] += t · src[i]` over contiguous slices — the vertical
    /// column-filter update. Auto-vectorizes.
    #[inline]
    pub fn axpy(dst: &mut [f64], src: &[f64], t: f64) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d += t * s;
        }
    }

    /// `dst[i] += ta · a[i] + tb · b[i]` — the synthesis pair update.
    #[inline]
    pub fn axpy_pair(dst: &mut [f64], a: &[f64], b: &[f64], ta: f64, tb: f64) {
        for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
            *d += ta * x + tb * y;
        }
    }

    /// The four-way column-filter update of one tap: the low/high
    /// intermediate rows `lrow`/`hrow` contribute to all four sub-band
    /// rows at once.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn accumulate_quad(
        ll: &mut [f64],
        lh: &mut [f64],
        hl: &mut [f64],
        hh: &mut [f64],
        lrow: &[f64],
        hrow: &[f64],
        tl: f64,
        th: f64,
    ) {
        axpy(ll, lrow, tl);
        axpy(lh, lrow, th);
        axpy(hl, hrow, tl);
        axpy(hh, hrow, th);
    }
}

/// Which arithmetic a plan executes. Selected per filter bank at plan
/// construction: the CDF biorthogonal banks carry a lifting
/// factorization and run through the fused [`lifting`] kernel (about
/// half the work of convolution); every orthonormal bank runs the
/// convolution kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Fused ring-buffer convolution (any [`Boundary`]).
    Convolution,
    /// Fused predict/update lifting sweep ([`Boundary::Periodic`] only).
    Lifting(LiftingKind),
}

/// Geometry of one decomposition level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LevelDims {
    rows_in: usize,
    cols_in: usize,
}

impl LevelDims {
    #[inline]
    fn rows_out(&self) -> usize {
        self.rows_in / 2
    }
    #[inline]
    fn cols_out(&self) -> usize {
        self.cols_in / 2
    }
}

/// Cheap, hashable identity of the geometry and arithmetic a [`DwtPlan`]
/// serves. Two plans with equal shapes produce bit-identical outputs for
/// the same input, so a shape is a sound cache key for plan/workspace
/// reuse (the serving layer's plan cache keys on this).
///
/// Filter identity is captured by the bank's name *and* the exact bit
/// patterns of its low-pass taps, so two distinct banks that happen to
/// share a name can never alias in a cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanShape {
    /// Image rows.
    pub rows: usize,
    /// Image columns.
    pub cols: usize,
    /// Decomposition depth.
    pub levels: usize,
    /// Boundary extension policy.
    pub mode: Boundary,
    /// Filter bank name (e.g. `"db4"`).
    pub filter: String,
    /// Exact low-pass taps as IEEE-754 bit patterns.
    filter_bits: Vec<u64>,
}

impl PlanShape {
    /// The shape a plan built from these parameters would have. Does not
    /// validate the geometry — [`DwtPlan::new`] still decides whether a
    /// plan for this shape can exist.
    pub fn new(rows: usize, cols: usize, bank: &FilterBank, levels: usize, mode: Boundary) -> Self {
        PlanShape {
            rows,
            cols,
            levels,
            mode,
            filter: bank.name().to_string(),
            filter_bits: bank.low().iter().map(|t| t.to_bits()).collect(),
        }
    }

    /// Total coefficients one decomposition of this shape produces
    /// (equal to `rows * cols`); the natural unit for per-request cost
    /// models and batch accounting.
    pub fn coeffs(&self) -> usize {
        self.rows * self.cols
    }

    /// Filter length in taps.
    pub fn filter_len(&self) -> usize {
        self.filter_bits.len()
    }
}

/// A reusable, pre-validated plan for multi-level 2-D decomposition and
/// reconstruction of images of one fixed geometry.
///
/// Building the plan performs all validation and sizing once; executing
/// it through [`DwtPlan::decompose_into`] / [`DwtPlan::reconstruct_into`]
/// with a [`DwtWorkspace`] allocates nothing.
#[derive(Debug, Clone)]
pub struct DwtPlan {
    rows: usize,
    cols: usize,
    levels: usize,
    bank: FilterBank,
    mode: Boundary,
    band_width: usize,
    threads: usize,
    kernel: KernelKind,
    level_dims: Vec<LevelDims>,
}

/// Lifting needs every level's dimensions even and at least 2, but has
/// no minimum-length-vs-filter constraint: the periodic predict/update
/// wraps are well defined for any half length.
fn validate_dims_lifting(rows: usize, cols: usize, levels: usize) -> Result<()> {
    if levels == 0 {
        return Err(DwtError::ZeroLevels);
    }
    let (mut r, mut c) = (rows, cols);
    for level in 1..=levels {
        if r < 2 || r % 2 != 0 {
            return Err(DwtError::OddLength { len: r, level });
        }
        if c < 2 || c % 2 != 0 {
            return Err(DwtError::OddLength { len: c, level });
        }
        r /= 2;
        c /= 2;
    }
    Ok(())
}

impl DwtPlan {
    /// Validate the geometry and build a single-threaded plan. Banks
    /// with a lifting factorization ([`FilterBank::lifting_kind`])
    /// select the fused lifting kernel, which supports
    /// [`Boundary::Periodic`] only.
    pub fn new(
        rows: usize,
        cols: usize,
        bank: FilterBank,
        levels: usize,
        mode: Boundary,
    ) -> Result<Self> {
        let kernel = match bank.lifting_kind() {
            Some(kind) => {
                if mode != Boundary::Periodic {
                    return Err(DwtError::UnsupportedBoundary {
                        detail: format!(
                            "lifting bank {} supports Periodic only, got {mode:?}",
                            bank.name()
                        ),
                    });
                }
                validate_dims_lifting(rows, cols, levels)?;
                KernelKind::Lifting(kind)
            }
            None => {
                validate_dims(rows, cols, bank.len(), levels)?;
                KernelKind::Convolution
            }
        };
        let mut level_dims = Vec::with_capacity(levels);
        let (mut r, mut c) = (rows, cols);
        for _ in 0..levels {
            level_dims.push(LevelDims {
                rows_in: r,
                cols_in: c,
            });
            r /= 2;
            c /= 2;
        }
        Ok(DwtPlan {
            rows,
            cols,
            levels,
            bank,
            mode,
            band_width: DEFAULT_BAND_WIDTH,
            threads: 1,
            kernel,
            level_dims,
        })
    }

    /// Use up to `threads` worker lanes (clamped to at least 1). Lane
    /// workspaces are sized when the [`DwtWorkspace`] is created, so set
    /// this before calling [`DwtPlan::make_workspace`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Override the band (tile) width in output columns. Values are
    /// clamped to at least the filter length.
    pub fn with_band_width(mut self, width: usize) -> Self {
        self.band_width = width.max(self.bank.len()).max(8);
        self
    }

    /// Image rows the plan was built for.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Image columns the plan was built for.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Decomposition depth.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Boundary policy.
    pub fn mode(&self) -> Boundary {
        self.mode
    }

    /// The filter bank.
    pub fn bank(&self) -> &FilterBank {
        &self.bank
    }

    /// Worker-lane count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Which kernel this plan executes.
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// The plan's cache key. Tuning knobs ([`DwtPlan::with_threads`],
    /// [`DwtPlan::with_band_width`]) are deliberately excluded: they
    /// change execution strategy, not results, and a cache should not
    /// fragment on them.
    pub fn shape(&self) -> PlanShape {
        PlanShape::new(self.rows, self.cols, &self.bank, self.levels, self.mode)
    }

    /// Band width actually used at the finest level.
    fn effective_band_width(&self) -> usize {
        self.band_width.min(self.cols / 2).max(1)
    }

    /// Allocate the workspace holding every scratch buffer the plan's
    /// execution needs. Reuse it across calls for zero steady-state
    /// allocations.
    pub fn make_workspace(&self) -> DwtWorkspace {
        // Ping-pong LL buffers. Decomposition alternates shrinking levels
        // between them, but reconstruction grows the approximation back up
        // through the same pair, so both must hold the largest
        // intermediate: the level-1 LL of rows/2 x cols/2.
        let ll_elems = (self.rows / 2) * (self.cols / 2);
        if let KernelKind::Lifting(_) = self.kernel {
            // The lifting sweep needs one rows x cols staging buffer and
            // two half-row scratch lanes; none of the convolution rings.
            return DwtWorkspace {
                ring_rows: self.bank.len().max(2),
                band_width: self.effective_band_width(),
                lanes: Vec::new(),
                ll_a: vec![0.0; ll_elems],
                ll_b: vec![0.0; ll_elems],
                synth_low: Vec::new(),
                synth_high: Vec::new(),
                col_a: Vec::new(),
                col_d: Vec::new(),
                col_buf: Vec::new(),
                lift_buf: vec![0.0; lifting::staging_len(self.rows, self.cols)],
                lift_e: vec![0.0; self.cols / 2],
                lift_o: vec![0.0; self.cols / 2],
            };
        }
        let flen = self.bank.len();
        let ring_rows = flen.max(2);
        let bw = self.effective_band_width();
        let lanes = (0..self.threads)
            .map(|_| LaneBuf {
                low_ring: vec![0.0; ring_rows * bw],
                high_ring: vec![0.0; ring_rows * bw],
            })
            .collect();
        // Synthesis intermediates: the finest level reassembles two
        // matrices of rows x cols/2 each.
        let synth_elems = self.rows * (self.cols / 2);
        DwtWorkspace {
            ring_rows,
            band_width: bw,
            lanes,
            ll_a: vec![0.0; ll_elems],
            ll_b: vec![0.0; ll_elems],
            synth_low: vec![0.0; synth_elems],
            synth_high: vec![0.0; synth_elems],
            col_a: vec![0.0; self.rows / 2],
            col_d: vec![0.0; self.rows / 2],
            col_buf: vec![0.0; self.rows],
            lift_buf: Vec::new(),
            lift_e: Vec::new(),
            lift_o: Vec::new(),
        }
    }

    /// Allocate a pyramid with the shapes this plan produces.
    pub fn make_pyramid(&self) -> Pyramid {
        Pyramid::zeros(self.rows, self.cols, self.levels)
            .expect("plan geometry validated at construction")
    }

    /// Check that `img` matches the planned geometry.
    fn check_image(&self, img: &Matrix) -> Result<()> {
        if img.rows() != self.rows || img.cols() != self.cols {
            return Err(DwtError::DimensionMismatch {
                detail: format!(
                    "plan is for {}x{} images but got {}x{}",
                    self.rows,
                    self.cols,
                    img.rows(),
                    img.cols()
                ),
            });
        }
        Ok(())
    }

    /// Check that `ws` was created by a plan of identical geometry.
    fn check_workspace(&self, ws: &DwtWorkspace) -> Result<()> {
        let want_bw = self.effective_band_width();
        let common_ok = ws.band_width == want_bw
            && ws.ring_rows == self.bank.len().max(2)
            && ws.ll_a.len() >= (self.rows / 2) * (self.cols / 2);
        let kernel_ok = match self.kernel {
            KernelKind::Lifting(_) => {
                ws.lift_buf.len() >= lifting::staging_len(self.rows, self.cols)
                    && ws.lift_e.len() >= self.cols / 2
                    && ws.lift_o.len() >= self.cols / 2
            }
            KernelKind::Convolution => ws.lanes.len() >= self.threads.min(self.rows / 2).max(1),
        };
        if !common_ok || !kernel_ok {
            return Err(DwtError::DimensionMismatch {
                detail: "workspace was built by a plan with different geometry".to_string(),
            });
        }
        Ok(())
    }

    /// Check that `pyr` has the shapes [`DwtPlan::make_pyramid`] creates.
    fn check_pyramid(&self, pyr: &Pyramid) -> Result<()> {
        let ok =
            pyr.levels() == self.levels
                && pyr.approx.rows() == self.rows >> self.levels
                && pyr.approx.cols() == self.cols >> self.levels
                && pyr.detail.iter().enumerate().all(|(i, b)| {
                    b.rows() == self.rows >> (i + 1) && b.cols() == self.cols >> (i + 1)
                });
        if !ok {
            return Err(DwtError::DimensionMismatch {
                detail: format!(
                    "pyramid shapes do not match a {}-level plan for {}x{} images",
                    self.levels, self.rows, self.cols
                ),
            });
        }
        Ok(())
    }

    /// Full multi-level decomposition into preallocated storage.
    /// Performs no heap allocation.
    pub fn decompose_into(
        &self,
        img: &Matrix,
        ws: &mut DwtWorkspace,
        out: &mut Pyramid,
    ) -> Result<()> {
        self.check_image(img)?;
        self.check_workspace(ws)?;
        self.check_pyramid(out)?;
        for level in 0..self.levels {
            let dims = self.level_dims[level];
            let last = level + 1 == self.levels;
            // Destructure the workspace so the borrows of the source
            // buffer and the destination buffer are disjoint.
            let (src, ll_dst): (&[f64], &mut [f64]) = match (level, level % 2) {
                (0, _) => (
                    img.data(),
                    if last {
                        out.approx.data_mut()
                    } else {
                        &mut ws.ll_a[..dims.rows_out() * dims.cols_out()]
                    },
                ),
                (_, 1) => (
                    &ws.ll_a[..dims.rows_in * dims.cols_in],
                    if last {
                        out.approx.data_mut()
                    } else {
                        &mut ws.ll_b[..dims.rows_out() * dims.cols_out()]
                    },
                ),
                _ => (
                    &ws.ll_b[..dims.rows_in * dims.cols_in],
                    if last {
                        out.approx.data_mut()
                    } else {
                        &mut ws.ll_a[..dims.rows_out() * dims.cols_out()]
                    },
                ),
            };
            let bands = &mut out.detail[level];
            let (lh, hl, hh) = bands.split_mut();
            if let KernelKind::Lifting(kind) = self.kernel {
                lifting::forward_level(
                    src,
                    dims.rows_in,
                    dims.cols_in,
                    kind,
                    ll_dst,
                    lh.data_mut(),
                    hl.data_mut(),
                    hh.data_mut(),
                    &mut ws.lift_buf,
                    &mut ws.lift_e,
                    &mut ws.lift_o,
                );
            } else {
                self.decompose_level(
                    src,
                    dims,
                    ll_dst,
                    lh.data_mut(),
                    hl.data_mut(),
                    hh.data_mut(),
                    &mut ws.lanes,
                    ws.ring_rows,
                    ws.band_width,
                );
            }
        }
        Ok(())
    }

    /// Convenience wrapper allocating the workspace and pyramid.
    pub fn decompose(&self, img: &Matrix) -> Result<Pyramid> {
        let mut ws = self.make_workspace();
        let mut out = self.make_pyramid();
        self.decompose_into(img, &mut ws, &mut out)?;
        Ok(out)
    }

    /// One level of the fused transform: distribute output-row stripes
    /// over the plan's thread lanes.
    #[allow(clippy::too_many_arguments)]
    fn decompose_level(
        &self,
        src: &[f64],
        dims: LevelDims,
        ll: &mut [f64],
        lh: &mut [f64],
        hl: &mut [f64],
        hh: &mut [f64],
        lanes: &mut [LaneBuf],
        ring_rows: usize,
        band_width: usize,
    ) {
        let rows_out = dims.rows_out();
        let cols_out = dims.cols_out();
        let nlanes = self.threads.min(lanes.len()).min(rows_out).max(1);
        if nlanes <= 1 {
            fused_band_sweep(
                src,
                dims,
                &self.bank,
                self.mode,
                0..rows_out,
                ll,
                lh,
                hl,
                hh,
                &mut lanes[0],
                ring_rows,
                band_width,
            );
            return;
        }
        // Contiguous output-row stripes, one per lane — the shared-memory
        // analogue of the paper's row-stripe distribution.
        let base = rows_out / nlanes;
        let rem = rows_out % nlanes;
        let mut jobs = Vec::with_capacity(nlanes);
        let (mut ll_rest, mut lh_rest, mut hl_rest, mut hh_rest) = (ll, lh, hl, hh);
        let mut lanes_rest = lanes;
        let mut k0 = 0usize;
        for lane in 0..nlanes {
            let take = base + usize::from(lane < rem);
            let (ll_c, ll_n) = ll_rest.split_at_mut(take * cols_out);
            let (lh_c, lh_n) = lh_rest.split_at_mut(take * cols_out);
            let (hl_c, hl_n) = hl_rest.split_at_mut(take * cols_out);
            let (hh_c, hh_n) = hh_rest.split_at_mut(take * cols_out);
            let (buf, buf_n) = lanes_rest.split_at_mut(1);
            jobs.push((k0..k0 + take, ll_c, lh_c, hl_c, hh_c, &mut buf[0]));
            ll_rest = ll_n;
            lh_rest = lh_n;
            hl_rest = hl_n;
            hh_rest = hh_n;
            lanes_rest = buf_n;
            k0 += take;
        }
        let bank = &self.bank;
        let mode = self.mode;
        std::thread::scope(|s| {
            for (range, ll_c, lh_c, hl_c, hh_c, buf) in jobs {
                s.spawn(move || {
                    fused_band_sweep(
                        src, dims, bank, mode, range, ll_c, lh_c, hl_c, hh_c, buf, ring_rows,
                        band_width,
                    );
                });
            }
        });
    }

    /// Full multi-level reconstruction into a preallocated image.
    /// Performs no heap allocation; exact inverse of
    /// [`DwtPlan::decompose_into`] for [`Boundary::Periodic`].
    pub fn reconstruct_into(
        &self,
        pyr: &Pyramid,
        ws: &mut DwtWorkspace,
        out: &mut Matrix,
    ) -> Result<()> {
        self.check_pyramid(pyr)?;
        self.check_workspace(ws)?;
        self.check_image(out)?;
        // Walk coarsest -> finest, ping-ponging the growing approximation
        // between the workspace LL buffers; the last step writes `out`.
        let coarse_elems = pyr.approx.rows() * pyr.approx.cols();
        ws.ll_a[..coarse_elems].copy_from_slice(pyr.approx.data());
        let mut cur_in_a = true;
        for level in (0..self.levels).rev() {
            let dims = self.level_dims[level];
            let (r, c) = (dims.rows_out(), dims.cols_out());
            let bands = &pyr.detail[level];
            // Split buffers for source and destination without overlap.
            let (src_buf, dst_buf): (&[f64], &mut [f64]) = if level == 0 {
                (
                    if cur_in_a {
                        &ws.ll_a[..r * c]
                    } else {
                        &ws.ll_b[..r * c]
                    },
                    out.data_mut(),
                )
            } else if cur_in_a {
                (
                    &ws.ll_a[..r * c],
                    &mut ws.ll_b[..dims.rows_in * dims.cols_in],
                )
            } else {
                (
                    &ws.ll_b[..r * c],
                    &mut ws.ll_a[..dims.rows_in * dims.cols_in],
                )
            };
            if let KernelKind::Lifting(kind) = self.kernel {
                lifting::inverse_level(
                    src_buf,
                    bands,
                    dims.rows_in,
                    dims.cols_in,
                    kind,
                    dst_buf,
                    &mut ws.lift_buf,
                );
            } else {
                synth_step_into(
                    src_buf,
                    r,
                    c,
                    bands,
                    &self.bank,
                    self.mode,
                    dst_buf,
                    &mut ws.synth_low[..dims.rows_in * c],
                    &mut ws.synth_high[..dims.rows_in * c],
                    &mut ws.col_a[..r],
                    &mut ws.col_d[..r],
                    &mut ws.col_buf[..dims.rows_in],
                )?;
            }
            cur_in_a = !cur_in_a;
        }
        Ok(())
    }

    /// Convenience wrapper allocating the workspace and output image.
    pub fn reconstruct(&self, pyr: &Pyramid) -> Result<Matrix> {
        let mut ws = self.make_workspace();
        let mut out = Matrix::zeros(self.rows, self.cols);
        self.reconstruct_into(pyr, &mut ws, &mut out)?;
        Ok(out)
    }
}

/// Per-lane scratch: the ring buffers holding `ring_rows` row-filtered
/// intermediate rows of one band — the tile halo.
#[derive(Debug, Clone)]
struct LaneBuf {
    low_ring: Vec<f64>,
    high_ring: Vec<f64>,
}

/// All scratch storage for executing a [`DwtPlan`]. Create once with
/// [`DwtPlan::make_workspace`], reuse for every frame.
#[derive(Debug, Clone)]
pub struct DwtWorkspace {
    ring_rows: usize,
    band_width: usize,
    lanes: Vec<LaneBuf>,
    ll_a: Vec<f64>,
    ll_b: Vec<f64>,
    synth_low: Vec<f64>,
    synth_high: Vec<f64>,
    col_a: Vec<f64>,
    col_d: Vec<f64>,
    col_buf: Vec<f64>,
    /// Lifting staging buffer ([`lifting::staging_len`] elements: the
    /// cache-blocked stash+ring window, or the whole image when it is
    /// small enough for the plain path), empty for convolution plans.
    lift_buf: Vec<f64>,
    /// Row-lift even/odd scratch (`cols / 2` each).
    lift_e: Vec<f64>,
    lift_o: Vec<f64>,
}

/// Row-filter input row `x_row` with both filters over output columns
/// `[c0, c0 + w)`, writing into `low_out`/`high_out` (length `w`).
/// The interior region is branch-free; only windows crossing the image
/// edge consult the boundary policy.
#[inline]
fn row_filter_band(
    x_row: &[f64],
    bank: &FilterBank,
    mode: Boundary,
    c0: usize,
    w: usize,
    low_out: &mut [f64],
    high_out: &mut [f64],
) {
    let n = x_row.len();
    let (low, high) = (bank.low(), bank.high());
    let flen = low.len();
    let interior_end = conv::interior_outputs(n, flen, n / 2).clamp(c0, c0 + w);
    for j in c0..interior_end {
        let window = &x_row[2 * j..2 * j + flen];
        let mut accl = 0.0;
        let mut acch = 0.0;
        for ((&tl, &th), &v) in low.iter().zip(high).zip(window) {
            accl += tl * v;
            acch += th * v;
        }
        low_out[j - c0] = accl;
        high_out[j - c0] = acch;
    }
    for j in interior_end..c0 + w {
        let base = 2 * j;
        let mut accl = 0.0;
        let mut acch = 0.0;
        for (m, (&tl, &th)) in low.iter().zip(high).enumerate() {
            if let Some(idx) = mode.map((base + m) as isize, n) {
                accl += tl * x_row[idx];
                acch += th * x_row[idx];
            }
        }
        low_out[j - c0] = accl;
        high_out[j - c0] = acch;
    }
}

/// Compute the ring slot for intermediate row `t`, filling it with the
/// row-filtered band of input row `mode.map(t)` (or zeros when the
/// boundary maps it outside the signal).
#[allow(clippy::too_many_arguments)]
#[inline]
fn fill_ring_row(
    src: &[f64],
    dims: LevelDims,
    bank: &FilterBank,
    mode: Boundary,
    t: usize,
    c0: usize,
    w: usize,
    buf: &mut LaneBuf,
    ring_rows: usize,
) {
    let slot = (t % ring_rows) * w;
    let low_slot = &mut buf.low_ring[slot..slot + w];
    let high_slot = &mut buf.high_ring[slot..slot + w];
    match mode.map(t as isize, dims.rows_in) {
        Some(i) => {
            let x_row = &src[i * dims.cols_in..(i + 1) * dims.cols_in];
            row_filter_band(x_row, bank, mode, c0, w, low_slot, high_slot);
        }
        None => {
            low_slot.fill(0.0);
            high_slot.fill(0.0);
        }
    }
}

/// The fused analysis kernel: for output rows `k_range` of one level,
/// sweep the image in column bands. Within a band, a ring buffer of
/// `ring_rows` row-filtered rows (the halo) slides down the image; each
/// output row is produced by a column filter whose inner loop runs over
/// contiguous output columns.
#[allow(clippy::too_many_arguments)]
fn fused_band_sweep(
    src: &[f64],
    dims: LevelDims,
    bank: &FilterBank,
    mode: Boundary,
    k_range: std::ops::Range<usize>,
    ll: &mut [f64],
    lh: &mut [f64],
    hl: &mut [f64],
    hh: &mut [f64],
    buf: &mut LaneBuf,
    ring_rows: usize,
    band_width: usize,
) {
    let cols_out = dims.cols_out();
    let (low, high) = (bank.low(), bank.high());
    let flen = low.len();
    let k0 = k_range.start;
    let mut c0 = 0usize;
    while c0 < cols_out {
        let w = band_width.min(cols_out - c0);
        // Prime the halo for the first output row of this stripe.
        for t in 2 * k0..2 * k0 + flen {
            fill_ring_row(src, dims, bank, mode, t, c0, w, buf, ring_rows);
        }
        for k in k_range.clone() {
            if k > k0 {
                // Slide the window: two fresh intermediate rows replace
                // the two evicted ones.
                fill_ring_row(
                    src,
                    dims,
                    bank,
                    mode,
                    2 * k + flen - 2,
                    c0,
                    w,
                    buf,
                    ring_rows,
                );
                fill_ring_row(
                    src,
                    dims,
                    bank,
                    mode,
                    2 * k + flen - 1,
                    c0,
                    w,
                    buf,
                    ring_rows,
                );
            }
            // Column filter: contiguous output chunks, one tap at a time,
            // ascending — the same accumulation order as the separable
            // reference, so results are bit-identical.
            let o = (k - k0) * cols_out + c0;
            let ll_row = &mut ll[o..o + w];
            let lh_row = &mut lh[o..o + w];
            let hl_row = &mut hl[o..o + w];
            let hh_row = &mut hh[o..o + w];
            ll_row.fill(0.0);
            lh_row.fill(0.0);
            hl_row.fill(0.0);
            hh_row.fill(0.0);
            for (m, (&tl, &th)) in low.iter().zip(high).enumerate() {
                let slot = ((2 * k + m) % ring_rows) * w;
                let lrow = &buf.low_ring[slot..slot + w];
                let hrow = &buf.high_ring[slot..slot + w];
                kernel::accumulate_quad(ll_row, lh_row, hl_row, hh_row, lrow, hrow, tl, th);
            }
        }
        c0 += w;
    }
}

/// One workspace-backed synthesis step: merge `(ll, bands)` of size
/// `r x c` into `dst` (`2r x 2c`), using caller-provided intermediates.
#[allow(clippy::too_many_arguments)]
fn synth_step_into(
    ll: &[f64],
    r: usize,
    c: usize,
    bands: &Subbands,
    bank: &FilterBank,
    mode: Boundary,
    dst: &mut [f64],
    low: &mut [f64],
    high: &mut [f64],
    col_a: &mut [f64],
    col_d: &mut [f64],
    col_buf: &mut [f64],
) -> Result<()> {
    if bands.rows() != r || bands.cols() != c {
        return Err(DwtError::DimensionMismatch {
            detail: format!(
                "LL is {r}x{c} but detail bands are {}x{}",
                bands.rows(),
                bands.cols()
            ),
        });
    }
    debug_assert_eq!(dst.len(), 4 * r * c);
    debug_assert_eq!(low.len(), 2 * r * c);
    // Invert the column pass: scatter the coefficient columns into the
    // low/high row-filtered intermediates.
    low.fill(0.0);
    high.fill(0.0);
    for cc in 0..c {
        for (rr, slot) in col_a.iter_mut().enumerate() {
            *slot = ll[rr * c + cc];
        }
        for (rr, slot) in col_d.iter_mut().enumerate() {
            *slot = bands.lh.get(rr, cc);
        }
        col_buf.fill(0.0);
        conv::synthesize_add_unchecked(col_a, bank.low(), mode, col_buf);
        conv::synthesize_add_unchecked(col_d, bank.high(), mode, col_buf);
        for (rr, &v) in col_buf.iter().enumerate() {
            low[rr * c + cc] = v;
        }

        for (rr, slot) in col_a.iter_mut().enumerate() {
            *slot = bands.hl.get(rr, cc);
        }
        for (rr, slot) in col_d.iter_mut().enumerate() {
            *slot = bands.hh.get(rr, cc);
        }
        col_buf.fill(0.0);
        conv::synthesize_add_unchecked(col_a, bank.low(), mode, col_buf);
        conv::synthesize_add_unchecked(col_d, bank.high(), mode, col_buf);
        for (rr, &v) in col_buf.iter().enumerate() {
            high[rr * c + cc] = v;
        }
    }
    // Invert the row pass.
    dst.fill(0.0);
    for rr in 0..2 * r {
        let drow = &mut dst[rr * 2 * c..(rr + 1) * 2 * c];
        conv::synthesize_add_unchecked(&low[rr * c..(rr + 1) * c], bank.low(), mode, drow);
        conv::synthesize_add_unchecked(&high[rr * c..(rr + 1) * c], bank.high(), mode, drow);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dwt2d;

    fn test_image(r: usize, c: usize) -> Matrix {
        Matrix::from_fn(r, c, |i, j| {
            ((i * 31 + j * 17) % 23) as f64 + (i as f64 * 0.37).sin() - (j as f64 * 0.11).cos()
        })
    }

    #[test]
    fn engine_matches_separable_reference_bitwise() {
        for taps in [2usize, 4, 6, 8, 10] {
            let bank = FilterBank::daubechies(taps).unwrap();
            let img = test_image(64, 96);
            for mode in Boundary::ALL {
                for levels in 1..=3 {
                    let reference = dwt2d::decompose_separable(&img, &bank, levels, mode).unwrap();
                    let plan = DwtPlan::new(64, 96, bank.clone(), levels, mode).unwrap();
                    let got = plan.decompose(&img).unwrap();
                    assert_eq!(
                        got.approx.max_abs_diff(&reference.approx),
                        Some(0.0),
                        "D{taps} {mode:?} L{levels} LL"
                    );
                    for (g, r) in got.detail.iter().zip(&reference.detail) {
                        assert_eq!(g.lh.max_abs_diff(&r.lh), Some(0.0), "D{taps} {mode:?} LH");
                        assert_eq!(g.hl.max_abs_diff(&r.hl), Some(0.0), "D{taps} {mode:?} HL");
                        assert_eq!(g.hh.max_abs_diff(&r.hh), Some(0.0), "D{taps} {mode:?} HH");
                    }
                }
            }
        }
    }

    #[test]
    fn threaded_engine_matches_single_thread() {
        let bank = FilterBank::daubechies(8).unwrap();
        let img = test_image(128, 64);
        let seq = DwtPlan::new(128, 64, bank.clone(), 3, Boundary::Periodic)
            .unwrap()
            .decompose(&img)
            .unwrap();
        for threads in [2usize, 3, 4, 7] {
            let par = DwtPlan::new(128, 64, bank.clone(), 3, Boundary::Periodic)
                .unwrap()
                .with_threads(threads)
                .decompose(&img)
                .unwrap();
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn small_band_widths_cover_remainders() {
        // Band widths that do not divide the output width exercise the
        // tile-remainder paths.
        let bank = FilterBank::daubechies(4).unwrap();
        let img = test_image(32, 40);
        let reference = dwt2d::decompose_separable(&img, &bank, 2, Boundary::Symmetric).unwrap();
        for bw in [5usize, 7, 8, 13, 20, 1000] {
            let plan = DwtPlan::new(32, 40, bank.clone(), 2, Boundary::Symmetric)
                .unwrap()
                .with_band_width(bw);
            let got = plan.decompose(&img).unwrap();
            assert_eq!(
                got.approx.max_abs_diff(&reference.approx),
                Some(0.0),
                "bw={bw}"
            );
            assert_eq!(got.detail, reference.detail, "bw={bw}");
        }
    }

    #[test]
    fn workspace_round_trip_is_exact_periodic() {
        let bank = FilterBank::daubechies(8).unwrap();
        let img = test_image(64, 64);
        let plan = DwtPlan::new(64, 64, bank, 3, Boundary::Periodic).unwrap();
        let mut ws = plan.make_workspace();
        let mut pyr = plan.make_pyramid();
        let mut back = Matrix::zeros(64, 64);
        // Run twice through the same workspace to verify reuse.
        for _ in 0..2 {
            plan.decompose_into(&img, &mut ws, &mut pyr).unwrap();
            plan.reconstruct_into(&pyr, &mut ws, &mut back).unwrap();
            let err = img.max_abs_diff(&back).unwrap();
            assert!(err < 1e-10, "round-trip error {err}");
        }
    }

    #[test]
    fn reconstruct_matches_separable_synthesis() {
        let bank = FilterBank::daubechies(4).unwrap();
        let img = test_image(32, 32);
        for mode in Boundary::ALL {
            let pyr = dwt2d::decompose_separable(&img, &bank, 2, mode).unwrap();
            let reference = dwt2d::reconstruct_separable(&pyr, &bank, mode).unwrap();
            let plan = DwtPlan::new(32, 32, bank.clone(), 2, mode).unwrap();
            let got = plan.reconstruct(&pyr).unwrap();
            assert_eq!(reference.max_abs_diff(&got), Some(0.0), "{mode:?}");
        }
    }

    #[test]
    fn rejects_mismatched_shapes() {
        let bank = FilterBank::haar();
        let plan = DwtPlan::new(16, 16, bank.clone(), 2, Boundary::Periodic).unwrap();
        let mut ws = plan.make_workspace();
        let mut pyr = plan.make_pyramid();
        let wrong = Matrix::zeros(8, 16);
        assert!(plan.decompose_into(&wrong, &mut ws, &mut pyr).is_err());
        let other_plan = DwtPlan::new(32, 32, bank, 2, Boundary::Periodic).unwrap();
        let img32 = Matrix::zeros(32, 32);
        assert!(other_plan
            .decompose_into(&img32, &mut ws, &mut pyr)
            .is_err());
    }

    #[test]
    fn plan_validates_geometry() {
        let bank = FilterBank::daubechies(8).unwrap();
        assert!(matches!(
            DwtPlan::new(10, 16, bank.clone(), 2, Boundary::Periodic),
            Err(DwtError::OddLength { .. })
        ));
        assert!(matches!(
            DwtPlan::new(4, 4, bank, 1, Boundary::Periodic),
            Err(DwtError::SignalTooShort { .. })
        ));
    }

    #[test]
    fn kernel_axpy_family() {
        let mut dst = vec![1.0, 2.0, 3.0];
        kernel::axpy(&mut dst, &[1.0, 1.0, 1.0], 0.5);
        assert_eq!(dst, vec![1.5, 2.5, 3.5]);
        kernel::axpy_pair(&mut dst, &[2.0, 2.0, 2.0], &[4.0, 4.0, 4.0], 0.25, 0.25);
        assert_eq!(dst, vec![3.0, 4.0, 5.0]);
    }
}
