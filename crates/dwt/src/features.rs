//! Wavelet feature extraction: multiscale edge detection by wavelet
//! modulus maxima (Mallat & Zhong) over the shift-invariant transform —
//! the "feature extraction" application of the paper's introduction.

use crate::error::Result;
use crate::filters::FilterBank;
use crate::matrix::Matrix;
use crate::swt;

/// Gradient-like wavelet response at one scale.
#[derive(Debug, Clone)]
pub struct EdgeField {
    /// Modulus `sqrt(Wx² + Wy²)` per pixel.
    pub modulus: Matrix,
    /// Gradient angle per pixel, radians.
    pub angle: Matrix,
}

/// Compute the wavelet gradient field at `level` (1-based) of the
/// undecimated transform: `Wx` from the row-high-pass band (vertical
/// structure), `Wy` from the column-high-pass band.
pub fn edge_field(img: &Matrix, bank: &FilterBank, level: usize) -> Result<EdgeField> {
    assert!(level >= 1, "levels are 1-based");
    let pyr = swt::decompose(img, bank, level)?;
    let lvl = &pyr.levels[level - 1];
    let (rows, cols) = (img.rows(), img.cols());
    let mut modulus = Matrix::zeros(rows, cols);
    let mut angle = Matrix::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            let wx = lvl.hl.get(r, c); // variation along rows (x)
            let wy = lvl.lh.get(r, c); // variation along columns (y)
            modulus.set(r, c, (wx * wx + wy * wy).sqrt());
            angle.set(r, c, wy.atan2(wx));
        }
    }
    Ok(EdgeField { modulus, angle })
}

/// Detect edges as local maxima of the modulus along the gradient
/// direction, above `threshold`. Returns a boolean mask as a 0/1 matrix.
pub fn modulus_maxima(field: &EdgeField, threshold: f64) -> Matrix {
    let (rows, cols) = (field.modulus.rows(), field.modulus.cols());
    let mut mask = Matrix::zeros(rows, cols);
    let at = |r: isize, c: isize| {
        let rr = r.rem_euclid(rows as isize) as usize;
        let cc = c.rem_euclid(cols as isize) as usize;
        field.modulus.get(rr, cc)
    };
    for r in 0..rows {
        for c in 0..cols {
            let m = field.modulus.get(r, c);
            if m < threshold {
                continue;
            }
            // Quantize the gradient direction to one of four axes and
            // compare against the two neighbours along it.
            let a = field.angle.get(r, c);
            let sector = ((a / std::f64::consts::FRAC_PI_4).round() as i64).rem_euclid(8);
            let (dr, dc): (isize, isize) = match sector {
                0 | 4 => (0, 1),
                1 | 5 => (1, 1),
                2 | 6 => (1, 0),
                _ => (1, -1),
            };
            let (r, c) = (r as isize, c as isize);
            if m >= at(r + dr, c + dc) && m >= at(r - dr, c - dc) {
                mask.set(r as usize, c as usize, 1.0);
            }
        }
    }
    mask
}

/// Convenience: count of edge pixels at a scale and threshold.
pub fn edge_count(img: &Matrix, bank: &FilterBank, level: usize, threshold: f64) -> Result<usize> {
    let field = edge_field(img, bank, level)?;
    let mask = modulus_maxima(&field, threshold);
    Ok(mask.data().iter().filter(|&&v| v > 0.0).count())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bright square on a dark background.
    fn square_image(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |r, c| {
            if (n / 4..3 * n / 4).contains(&r) && (n / 4..3 * n / 4).contains(&c) {
                200.0
            } else {
                50.0
            }
        })
    }

    #[test]
    fn flat_image_has_no_edges() {
        let img = Matrix::from_fn(32, 32, |_, _| 100.0);
        let bank = FilterBank::haar();
        assert_eq!(edge_count(&img, &bank, 1, 1.0).unwrap(), 0);
    }

    #[test]
    fn square_edges_are_found_on_the_boundary() {
        let n = 32;
        let img = square_image(n);
        let bank = FilterBank::haar();
        let field = edge_field(&img, &bank, 1).unwrap();
        let mask = modulus_maxima(&field, 10.0);
        // Every detected pixel lies within 2 pixels of the square border.
        let border = n / 4..3 * n / 4;
        for r in 0..n {
            for c in 0..n {
                if mask.get(r, c) > 0.0 {
                    let near_r = border.clone().any(|b| r.abs_diff(b) <= 2)
                        && (r.abs_diff(n / 4) <= 2
                            || r.abs_diff(3 * n / 4 - 1) <= 2
                            || c.abs_diff(n / 4) <= 2
                            || c.abs_diff(3 * n / 4 - 1) <= 2);
                    let _ = near_r;
                    let on_border_band = r.abs_diff(n / 4) <= 2
                        || r.abs_diff(3 * n / 4 - 1) <= 2
                        || c.abs_diff(n / 4) <= 2
                        || c.abs_diff(3 * n / 4 - 1) <= 2;
                    assert!(on_border_band, "spurious edge at ({r},{c})");
                }
            }
        }
        // And a meaningful number of border pixels was detected.
        let count = mask.data().iter().filter(|&&v| v > 0.0).count();
        assert!(count >= n, "only {count} edge pixels detected");
    }

    #[test]
    fn gradient_angle_points_across_a_vertical_edge() {
        let n = 32;
        // Step along columns: gradient along x.
        let img = Matrix::from_fn(n, n, |_, c| if c < n / 2 { 0.0 } else { 100.0 });
        let bank = FilterBank::haar();
        let field = edge_field(&img, &bank, 1).unwrap();
        // At the edge column, |Wx| >> |Wy| so the angle is ~0 or ~pi.
        let r = n / 2;
        let c = n / 2 - 1;
        let a = field.angle.get(r, c);
        assert!(
            a.abs() < 0.2 || (a.abs() - std::f64::consts::PI).abs() < 0.2,
            "angle {a}"
        );
        assert!(field.modulus.get(r, c) > 10.0);
    }

    #[test]
    fn deeper_scales_respond_to_broader_structure() {
        let img = square_image(64);
        let bank = FilterBank::haar();
        let f1 = edge_field(&img, &bank, 1).unwrap();
        let f2 = edge_field(&img, &bank, 2).unwrap();
        // The step edge persists across scales (a hallmark of real edges
        // vs noise in the modulus-maxima framework).
        let max1 = f1.modulus.data().iter().cloned().fold(0.0, f64::max);
        let max2 = f2.modulus.data().iter().cloned().fold(0.0, f64::max);
        assert!(max1 > 10.0 && max2 > 10.0);
    }

    #[test]
    fn threshold_is_monotonic() {
        let img = square_image(32);
        let bank = FilterBank::haar();
        let lo = edge_count(&img, &bank, 1, 5.0).unwrap();
        let hi = edge_count(&img, &bank, 1, 50.0).unwrap();
        assert!(hi <= lo);
    }
}
