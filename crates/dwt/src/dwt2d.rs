//! Separable 2-D Mallat decomposition and reconstruction.
//!
//! One decomposition level follows the paper's figure 1 exactly:
//!
//! 1. convolve the image **rows** with `L` and `H`,
//! 2. decimate the columns by two, giving `L_{k+1}` and `H_{k+1}`,
//! 3. convolve the **columns** of each with `L` and `H`,
//! 4. decimate the rows by two, giving `LL`, `LH`, `HL`, `HH`.
//!
//! `LL_{k+1}` is renamed `I_{k+1}` and fed to the next level.

use crate::boundary::Boundary;
use crate::conv;
use crate::error::{DwtError, Result};
use crate::filters::FilterBank;
use crate::matrix::Matrix;
use crate::pyramid::{Pyramid, Subbands};

/// Validate that an `rows x cols` image supports `levels` decomposition
/// levels with the given filter.
pub fn validate_dims(rows: usize, cols: usize, filter_len: usize, levels: usize) -> Result<()> {
    if levels == 0 {
        return Err(DwtError::ZeroLevels);
    }
    let mut r = rows;
    let mut c = cols;
    for level in 1..=levels {
        if !r.is_multiple_of(2) {
            return Err(DwtError::OddLength { len: r, level });
        }
        if !c.is_multiple_of(2) {
            return Err(DwtError::OddLength { len: c, level });
        }
        if r < filter_len || c < filter_len {
            return Err(DwtError::SignalTooShort {
                len: r.min(c),
                filter_len,
            });
        }
        r /= 2;
        c /= 2;
    }
    Ok(())
}

/// Row pass: filter every row of `img` with `taps` and decimate,
/// producing a `rows x cols/2` matrix.
///
/// Part of the legacy separable path kept as the property-test oracle;
/// the production entry points route through [`crate::engine`].
#[doc(hidden)]
pub fn filter_rows(img: &Matrix, taps: &[f64], mode: Boundary) -> Matrix {
    let mut out = Matrix::zeros(img.rows(), img.cols() / 2);
    for r in 0..img.rows() {
        let src = img.row(r);
        conv::analyze_into(src, taps, mode, out.row_mut(r)).expect("output sized to cols/2");
    }
    out
}

/// Column pass: filter every column of `img` with `taps` and decimate,
/// producing a `rows/2 x cols` matrix.
///
/// Part of the legacy separable path kept as the property-test oracle;
/// the production entry points route through [`crate::engine`].
#[doc(hidden)]
pub fn filter_cols(img: &Matrix, taps: &[f64], mode: Boundary) -> Matrix {
    let mut out = Matrix::zeros(img.rows() / 2, img.cols());
    let mut col = vec![0.0; img.rows()];
    let mut dst = vec![0.0; img.rows() / 2];
    for c in 0..img.cols() {
        img.copy_col_into(c, &mut col);
        conv::analyze_into(&col, taps, mode, &mut dst).expect("output sized to rows/2");
        out.set_col(c, &dst);
    }
    out
}

/// One 2-D analysis step producing `(LL, Subbands{LH, HL, HH})`.
pub fn analyze_step(img: &Matrix, bank: &FilterBank, mode: Boundary) -> Result<(Matrix, Subbands)> {
    validate_dims(img.rows(), img.cols(), bank.len(), 1)?;
    // Step 1+2: row filtering, column decimation.
    let low = filter_rows(img, bank.low(), mode);
    let high = filter_rows(img, bank.high(), mode);
    // Step 3+4: column filtering, row decimation.
    let ll = filter_cols(&low, bank.low(), mode);
    let lh = filter_cols(&low, bank.high(), mode);
    let hl = filter_cols(&high, bank.low(), mode);
    let hh = filter_cols(&high, bank.high(), mode);
    Ok((ll, Subbands { lh, hl, hh }))
}

/// One 2-D synthesis step: merge `(LL, LH, HL, HH)` back into an image of
/// twice the side length. Exact inverse of [`analyze_step`] for
/// [`Boundary::Periodic`].
pub fn synthesize_step(
    ll: &Matrix,
    bands: &Subbands,
    bank: &FilterBank,
    mode: Boundary,
) -> Result<Matrix> {
    let (r, c) = (ll.rows(), ll.cols());
    if bands.rows() != r || bands.cols() != c {
        return Err(DwtError::DimensionMismatch {
            detail: format!(
                "LL is {r}x{c} but detail bands are {}x{}",
                bands.rows(),
                bands.cols()
            ),
        });
    }
    // Invert the column pass: reassemble the row-filtered intermediates.
    let mut low = Matrix::zeros(2 * r, c);
    let mut high = Matrix::zeros(2 * r, c);
    {
        let mut a = vec![0.0; r];
        let mut d = vec![0.0; r];
        let mut colbuf = vec![0.0; 2 * r];
        for cc in 0..c {
            ll.copy_col_into(cc, &mut a);
            bands.lh.copy_col_into(cc, &mut d);
            colbuf.iter_mut().for_each(|v| *v = 0.0);
            conv::synthesize_add(&a, bank.low(), mode, &mut colbuf)?;
            conv::synthesize_add(&d, bank.high(), mode, &mut colbuf)?;
            low.set_col(cc, &colbuf);

            bands.hl.copy_col_into(cc, &mut a);
            bands.hh.copy_col_into(cc, &mut d);
            colbuf.iter_mut().for_each(|v| *v = 0.0);
            conv::synthesize_add(&a, bank.low(), mode, &mut colbuf)?;
            conv::synthesize_add(&d, bank.high(), mode, &mut colbuf)?;
            high.set_col(cc, &colbuf);
        }
    }
    // Invert the row pass.
    let mut out = Matrix::zeros(2 * r, 2 * c);
    for rr in 0..2 * r {
        let dst = out.row_mut(rr);
        conv::synthesize_add(low.row(rr), bank.low(), mode, dst)?;
        conv::synthesize_add(high.row(rr), bank.high(), mode, dst)?;
    }
    Ok(out)
}

/// Full multi-level Mallat decomposition.
///
/// Routes through the fused cache-blocked [`crate::engine`]; results are
/// bit-identical to the materializing separable reference
/// ([`decompose_separable`]). For repeated transforms of same-shaped
/// images, build a [`crate::engine::DwtPlan`] once and reuse its
/// workspace instead.
pub fn decompose(
    img: &Matrix,
    bank: &FilterBank,
    levels: usize,
    mode: Boundary,
) -> Result<Pyramid> {
    let plan = crate::engine::DwtPlan::new(img.rows(), img.cols(), bank.clone(), levels, mode)?;
    plan.decompose(img)
}

/// Invert [`decompose`]. Routes through the workspace-backed
/// [`crate::engine`] synthesis path.
pub fn reconstruct(pyr: &Pyramid, bank: &FilterBank, mode: Boundary) -> Result<Matrix> {
    let (rows, cols) = pyr.image_dims();
    let plan = crate::engine::DwtPlan::new(rows, cols, bank.clone(), pyr.levels(), mode)?;
    plan.reconstruct(pyr)
}

/// Reference multi-level decomposition: the textbook two-pass separable
/// algorithm that materializes both row-filtered intermediates at every
/// level. Kept as the independent oracle for the engine's property and
/// equivalence tests; use [`decompose`] in production code.
#[doc(hidden)]
pub fn decompose_separable(
    img: &Matrix,
    bank: &FilterBank,
    levels: usize,
    mode: Boundary,
) -> Result<Pyramid> {
    validate_dims(img.rows(), img.cols(), bank.len(), levels)?;
    let mut approx = img.clone();
    let mut detail = Vec::with_capacity(levels);
    for _ in 0..levels {
        let (ll, bands) = analyze_step(&approx, bank, mode)?;
        detail.push(bands);
        approx = ll;
    }
    Ok(Pyramid { approx, detail })
}

/// Reference multi-level reconstruction matching [`decompose_separable`].
#[doc(hidden)]
pub fn reconstruct_separable(pyr: &Pyramid, bank: &FilterBank, mode: Boundary) -> Result<Matrix> {
    let mut approx = pyr.approx.clone();
    for bands in pyr.detail.iter().rev() {
        approx = synthesize_step(&approx, bands, bank, mode)?;
    }
    Ok(approx)
}

/// Count of multiply-accumulate operations one decomposition level
/// performs on an `rows x cols` input: every output coefficient of the
/// four passes costs `filter_len` MACs. Used by the machine simulators'
/// cost models.
pub fn level_mac_count(rows: usize, cols: usize, filter_len: usize) -> u64 {
    // Row pass: 2 output matrices of rows x cols/2.
    let row_pass = 2 * rows as u64 * (cols as u64 / 2) * filter_len as u64;
    // Column pass: 4 output matrices of rows/2 x cols/2.
    let col_pass = 4 * (rows as u64 / 2) * (cols as u64 / 2) * filter_len as u64;
    row_pass + col_pass
}

/// Total MAC count for a full `levels`-deep decomposition.
pub fn total_mac_count(rows: usize, cols: usize, filter_len: usize, levels: usize) -> u64 {
    let mut total = 0;
    let (mut r, mut c) = (rows, cols);
    for _ in 0..levels {
        total += level_mac_count(r, c, filter_len);
        r /= 2;
        c /= 2;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |r, c| {
            ((r * 31 + c * 17) % 23) as f64 + (r as f64 * 0.5).sin()
        })
    }

    #[test]
    fn perfect_reconstruction_2d() {
        for taps in [2usize, 4, 8] {
            let bank = FilterBank::daubechies(taps).unwrap();
            let img = test_image(32);
            for levels in 1..=3 {
                let pyr = decompose(&img, &bank, levels, Boundary::Periodic).unwrap();
                let rec = reconstruct(&pyr, &bank, Boundary::Periodic).unwrap();
                let err = img.max_abs_diff(&rec).unwrap();
                assert!(err < 1e-9, "D{taps} L{levels}: err {err}");
            }
        }
    }

    #[test]
    fn band_shapes() {
        let bank = FilterBank::daubechies(4).unwrap();
        let img = test_image(16);
        let pyr = decompose(&img, &bank, 2, Boundary::Periodic).unwrap();
        assert_eq!(pyr.detail[0].rows(), 8);
        assert_eq!(pyr.detail[1].rows(), 4);
        assert_eq!(pyr.approx.rows(), 4);
        assert_eq!(pyr.image_dims(), (16, 16));
    }

    #[test]
    fn energy_preserved_2d() {
        let bank = FilterBank::daubechies(8).unwrap();
        let img = test_image(64);
        let pyr = decompose(&img, &bank, 3, Boundary::Periodic).unwrap();
        let rel = (pyr.energy() - img.energy()).abs() / img.energy();
        assert!(rel < 1e-10, "relative energy error {rel}");
    }

    #[test]
    fn constant_image_concentrates_in_ll() {
        let bank = FilterBank::daubechies(4).unwrap();
        let img = Matrix::from_fn(16, 16, |_, _| 7.0);
        let pyr = decompose(&img, &bank, 2, Boundary::Periodic).unwrap();
        for bands in &pyr.detail {
            assert!(bands.energy() < 1e-18);
        }
        // Each level scales the constant by 2 (sqrt(2) per dimension).
        let expect = 7.0 * 4.0;
        for &v in pyr.approx.data() {
            assert!((v - expect).abs() < 1e-9, "LL value {v}");
        }
    }

    #[test]
    fn vertical_edge_shows_in_hl() {
        // An image with a vertical edge (variation along rows) excites the
        // row-high-pass band HL.
        // The edge must fall inside a decimation pair (odd boundary), or
        // Haar's pairwise difference cannot see it.
        let bank = FilterBank::haar();
        let img = Matrix::from_fn(16, 16, |_, c| if c < 7 { 0.0 } else { 10.0 });
        let pyr = decompose(&img, &bank, 1, Boundary::Periodic).unwrap();
        let b = &pyr.detail[0];
        assert!(b.hl.energy() > 1.0, "hl energy {}", b.hl.energy());
        assert!(b.lh.energy() < 1e-18, "lh energy {}", b.lh.energy());
        assert!(b.hh.energy() < 1e-18, "hh energy {}", b.hh.energy());
    }

    #[test]
    fn horizontal_edge_shows_in_lh() {
        let bank = FilterBank::haar();
        let img = Matrix::from_fn(16, 16, |r, _| if r < 7 { 0.0 } else { 10.0 });
        let pyr = decompose(&img, &bank, 1, Boundary::Periodic).unwrap();
        let b = &pyr.detail[0];
        assert!(b.lh.energy() > 1.0);
        assert!(b.hl.energy() < 1e-18);
    }

    #[test]
    fn rejects_images_that_do_not_divide() {
        let bank = FilterBank::haar();
        let img = Matrix::zeros(12, 12);
        // 12 -> 6 -> 3: level 3 fails.
        assert!(decompose(&img, &bank, 2, Boundary::Periodic).is_ok());
        assert!(matches!(
            decompose(&img, &bank, 3, Boundary::Periodic),
            Err(DwtError::OddLength { len: 3, level: 3 })
        ));
    }

    #[test]
    fn non_square_images_work() {
        let bank = FilterBank::daubechies(4).unwrap();
        let img = Matrix::from_fn(16, 32, |r, c| (r * c) as f64);
        let pyr = decompose(&img, &bank, 2, Boundary::Periodic).unwrap();
        assert_eq!(pyr.approx.rows(), 4);
        assert_eq!(pyr.approx.cols(), 8);
        let rec = reconstruct(&pyr, &bank, Boundary::Periodic).unwrap();
        assert!(img.max_abs_diff(&rec).unwrap() < 1e-9);
    }

    #[test]
    fn mac_count_matches_formula() {
        // 8x8, filter 2, 1 level: rows: 2*8*4*2=128; cols: 4*4*4*2=128.
        assert_eq!(level_mac_count(8, 8, 2), 256);
        // Two levels on 8x8: 256 + level on 4x4 (2*4*2*2=32 + 4*2*2*2=32).
        assert_eq!(total_mac_count(8, 8, 2, 2), 256 + 64);
    }

    #[test]
    fn mallat_layout_round_trip_through_transform() {
        let bank = FilterBank::daubechies(4).unwrap();
        let img = test_image(32);
        let pyr = decompose(&img, &bank, 3, Boundary::Periodic).unwrap();
        let layout = pyr.to_mallat_layout();
        let pyr2 = Pyramid::from_mallat_layout(&layout, 3).unwrap();
        let rec = reconstruct(&pyr2, &bank, Boundary::Periodic).unwrap();
        assert!(img.max_abs_diff(&rec).unwrap() < 1e-9);
    }
}
