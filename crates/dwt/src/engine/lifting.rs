//! Fused lifting kernels for the CDF biorthogonal banks.
//!
//! The convolution engine in [`crate::engine`] performs
//! `2 · filter_len` multiply-adds per pixel per direction. A lifting
//! factorization (Daubechies & Sweldens) of the same transform needs
//! roughly half the arithmetic *and* half the memory traffic, because
//! every predict/update step is an in-place `x += c · (a + b)` — the
//! direction Barina et al. take to beat separable convolution on both
//! CPUs and GPUs.
//!
//! # Kernel structure
//!
//! One level runs as a **single fused sweep** over the image:
//!
//! * each input row is row-lifted once into a `rows x cols` staging
//!   buffer, packed as `[low | high]` halves (any 9/7 scaling folded
//!   into the write-out);
//! * the column transform runs as a software pipeline over that buffer:
//!   stage `k` of the predict/update schedule trails stage `k-1` by one
//!   row pair, so every buffer row is touched while still cache-hot.
//!   The periodic wrap rows that a stage cannot process mid-stream
//!   (a *deferral set* derived per stage, see [`defer_table`]) are
//!   finished in a short epilogue;
//! * as soon as a row pair leaves the last stage it is scattered to the
//!   four sub-bands (analysis) or row-unlifted into the output image
//!   (synthesis).
//!
//! The working set is a dozen buffer rows regardless of image height —
//! the lifting analogue of the convolution engine's ring-buffer halo.
//! Interior loops go through [`lift_step`], a manually 4-way unrolled
//! `dst[i] += c · (a[i] + b[i])` over contiguous rows (vertical
//! vectorization); boundary wraps take the scalar prologue/epilogue.
//!
//! Per element the arithmetic is the *same sequence of operations* as
//! the (hidden) oracle in [`crate::lifting`], so results are
//! bit-identical; the property suite pins that.
//!
//! # Integer lifting
//!
//! [`forward_int`] / [`inverse_int`] implement the reversible
//! (rounded) integer transforms on `i32` samples: LeGall 5/3 with the
//! JPEG 2000 `>> 1` / `(· + 2) >> 2` floors, and a rounded 9/7 where
//! every step adds `floor(c · (a + b) + 1/2)` and the final `ζ` scaling
//! is omitted. Both use whole-sample symmetric extension, so **odd**
//! lengths round-trip exactly too.

use crate::error::{DwtError, Result};
use crate::lifting::{LiftingKind, ALPHA, BETA, DELTA, GAMMA, ZETA};
use crate::pyramid::Subbands;

/// One lifting step of a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// `odd[j] += c · (even[j] + even[j+1])`, periodic.
    Predict,
    /// `even[j] += c · (odd[j-1] + odd[j])`, periodic.
    Update,
}

#[derive(Debug, Clone, Copy)]
struct Stage {
    op: Op,
    c: f64,
}

const FWD_53: [Stage; 2] = [
    Stage {
        op: Op::Predict,
        c: -0.5,
    },
    Stage {
        op: Op::Update,
        c: 0.25,
    },
];

const INV_53: [Stage; 2] = [
    Stage {
        op: Op::Update,
        c: -0.25,
    },
    Stage {
        op: Op::Predict,
        c: 0.5,
    },
];

const FWD_97: [Stage; 4] = [
    Stage {
        op: Op::Predict,
        c: ALPHA,
    },
    Stage {
        op: Op::Update,
        c: BETA,
    },
    Stage {
        op: Op::Predict,
        c: GAMMA,
    },
    Stage {
        op: Op::Update,
        c: DELTA,
    },
];

const INV_97: [Stage; 4] = [
    Stage {
        op: Op::Update,
        c: -DELTA,
    },
    Stage {
        op: Op::Predict,
        c: -GAMMA,
    },
    Stage {
        op: Op::Update,
        c: -BETA,
    },
    Stage {
        op: Op::Predict,
        c: -ALPHA,
    },
];

fn stages(kind: LiftingKind, inverse: bool) -> &'static [Stage] {
    match (kind, inverse) {
        (LiftingKind::LeGall53, false) => &FWD_53,
        (LiftingKind::LeGall53, true) => &INV_53,
        (LiftingKind::Cdf97, false) => &FWD_97,
        (LiftingKind::Cdf97, true) => &INV_97,
    }
}

/// The 9/7 normalization, `None` for the unnormalized 5/3.
fn zeta(kind: LiftingKind) -> Option<f64> {
    match kind {
        LiftingKind::Cdf97 => Some(ZETA),
        LiftingKind::LeGall53 => None,
    }
}

/// `dst[i] += c · (a[i] + b[i])` over contiguous slices — the vertical
/// lifting update. Manually unrolled 4-wide so the compiler keeps four
/// independent f64 lanes in flight; the remainder runs scalar.
#[inline]
pub fn lift_step(dst: &mut [f64], a: &[f64], b: &[f64], c: f64) {
    let n = dst.len();
    debug_assert!(a.len() >= n && b.len() >= n);
    let quads = n - n % 4;
    let mut i = 0usize;
    while i < quads {
        let a4 = &a[i..i + 4];
        let b4 = &b[i..i + 4];
        let d4 = &mut dst[i..i + 4];
        d4[0] += c * (a4[0] + b4[0]);
        d4[1] += c * (a4[1] + b4[1]);
        d4[2] += c * (a4[2] + b4[2]);
        d4[3] += c * (a4[3] + b4[3]);
        i += 4;
    }
    while i < n {
        dst[i] += c * (a[i] + b[i]);
        i += 1;
    }
}

/// Run a predict/update schedule over split even/odd halves of one
/// signal, periodic in the half length. The interior of each stage is a
/// single [`lift_step`]; only the wrap element is scalar.
fn lift_halves(e: &mut [f64], o: &mut [f64], stages: &[Stage]) {
    let h = e.len();
    debug_assert_eq!(o.len(), h);
    if h == 0 {
        return;
    }
    for st in stages {
        match st.op {
            Op::Predict => {
                // o[j] += c · (e[j] + e[j+1]); j = h-1 wraps to e[0].
                lift_step(&mut o[..h - 1], &e[..h - 1], &e[1..], st.c);
                o[h - 1] += st.c * (e[h - 1] + e[0]);
            }
            Op::Update => {
                // e[j] += c · (o[j-1] + o[j]); j = 0 wraps to o[h-1].
                e[0] += st.c * (o[h - 1] + o[0]);
                lift_step(&mut e[1..], &o[..h - 1], &o[1..], st.c);
            }
        }
    }
}

/// Run a schedule in place on an interleaved signal (`x[2j]` even,
/// `x[2j+1]` odd). Used by the 1-D inverse so the caller needs no
/// scratch.
fn lift_interleaved(x: &mut [f64], stages: &[Stage]) {
    let h = x.len() / 2;
    if h == 0 {
        return;
    }
    for st in stages {
        match st.op {
            Op::Predict => {
                for j in 0..h - 1 {
                    x[2 * j + 1] += st.c * (x[2 * j] + x[2 * j + 2]);
                }
                x[2 * h - 1] += st.c * (x[2 * h - 2] + x[0]);
            }
            Op::Update => {
                x[0] += st.c * (x[2 * h - 1] + x[1]);
                for j in 1..h {
                    x[2 * j] += st.c * (x[2 * j - 1] + x[2 * j + 1]);
                }
            }
        }
    }
}

/// Forward 1-D lifting transform into preallocated halves
/// (`approx.len() == detail.len() == x.len() / 2`). Allocation-free.
pub fn forward_1d_into(
    x: &[f64],
    kind: LiftingKind,
    approx: &mut [f64],
    detail: &mut [f64],
) -> Result<()> {
    let n = x.len();
    if n < 2 || !n.is_multiple_of(2) {
        return Err(DwtError::OddLength { len: n, level: 1 });
    }
    let h = n / 2;
    if approx.len() != h || detail.len() != h {
        return Err(DwtError::DimensionMismatch {
            detail: format!(
                "halves of length {} and {} for a signal of length {n}",
                approx.len(),
                detail.len()
            ),
        });
    }
    for (i, pair) in x.chunks_exact(2).enumerate() {
        approx[i] = pair[0];
        detail[i] = pair[1];
    }
    lift_halves(approx, detail, stages(kind, false));
    if let Some(z) = zeta(kind) {
        for v in approx.iter_mut() {
            *v *= z;
        }
        for v in detail.iter_mut() {
            *v /= z;
        }
    }
    Ok(())
}

/// Inverse of [`forward_1d_into`], writing the interleaved signal into
/// `out` (`out.len() == 2 · approx.len()`). Allocation-free.
pub fn inverse_1d_into(
    approx: &[f64],
    detail: &[f64],
    kind: LiftingKind,
    out: &mut [f64],
) -> Result<()> {
    let h = approx.len();
    if detail.len() != h {
        return Err(DwtError::DimensionMismatch {
            detail: format!("approx has {h} samples, detail {}", detail.len()),
        });
    }
    if out.len() != 2 * h {
        return Err(DwtError::DimensionMismatch {
            detail: format!("output of length {} for {h}-sample halves", out.len()),
        });
    }
    if h == 0 {
        return Ok(());
    }
    match zeta(kind) {
        Some(z) => {
            for i in 0..h {
                out[2 * i] = approx[i] / z;
                out[2 * i + 1] = detail[i] * z;
            }
        }
        None => {
            for i in 0..h {
                out[2 * i] = approx[i];
                out[2 * i + 1] = detail[i];
            }
        }
    }
    lift_interleaved(out, stages(kind, true));
    Ok(())
}

/// Staging-buffer length (in `f64`s) that covers both level paths for
/// every schedule: the plain path stages the whole image but only runs
/// below `h < 2·(nst + maxp + maxq) + 4` (at most 40 rows for the
/// deepest schedule, CDF 9/7), while the cache-blocked fused path
/// needs just `2·(stash + ring)` rows (at most 26).
pub(crate) fn staging_len(rows: usize, cols: usize) -> usize {
    rows.min(40) * cols
}

/// Per-stage deferral set of the software pipeline.
///
/// Rows stream through the column stages top-down, so stage `k` cannot
/// process the first `p_k` and last `q_k` row pairs mid-sweep: those
/// positions read periodic-wrap neighbours that either have not been
/// produced yet or are themselves deferred in stage `k-1`. The
/// recurrence (`(p, q)` per stage, in schedule order):
///
/// * stage 0: `p = 1` if it is an update (its `j = 0` wraps onto the
///   *last* odd row, which has not streamed in yet), else `p = 0`;
///   `q = 0` (a predict's `j = h-1` wraps onto row 0, long available);
/// * an update inherits `(p+1, q)` — its `j = p` input `d[p-1]` is
///   deferred upstream;
/// * a predict inherits `p` and grows `q` by one (or to one, the first
///   time a wrap-onto-deferred-row appears).
///
/// Deferred positions run in the epilogue, in schedule order — by then
/// every upstream value is final and, because later stages defer
/// supersets, nothing downstream has overwritten an input.
fn defer_table(stages: &[Stage]) -> Vec<(usize, usize)> {
    let mut table = Vec::with_capacity(stages.len());
    let (mut p, mut q) = (0usize, 0usize);
    for (k, st) in stages.iter().enumerate() {
        match st.op {
            Op::Update => {
                if k == 0 {
                    p = 1;
                } else {
                    p += 1;
                }
            }
            Op::Predict => {
                if k > 0 {
                    if q > 0 {
                        q += 1;
                    } else if p > 0 {
                        q = 1;
                    }
                }
            }
        }
        table.push((p, q));
    }
    table
}

/// Split three distinct rows of `buf` (row-major, `cols` wide) into one
/// mutable row and two shared rows (`a` and `b` may coincide).
fn row3<'a>(
    buf: &'a mut [f64],
    cols: usize,
    dst: usize,
    a: usize,
    b: usize,
) -> (&'a mut [f64], &'a [f64], &'a [f64]) {
    debug_assert!(dst != a && dst != b);
    let (left, rest) = buf.split_at_mut(dst * cols);
    let (drow, right) = rest.split_at_mut(cols);
    let left: &[f64] = left;
    let right: &[f64] = right;
    let fetch = move |idx: usize| -> &'a [f64] {
        if idx < dst {
            &left[idx * cols..(idx + 1) * cols]
        } else {
            let off = (idx - dst - 1) * cols;
            &right[off..off + cols]
        }
    };
    (drow, fetch(a), fetch(b))
}

/// Apply column stage `st` at row-pair index `j`: one [`lift_step`]
/// across the full row. `map` translates a logical row-pair index into
/// a staging-buffer slot (identity for the full buffer, a ring map for
/// the cache-blocked pipeline); pair `p` lives in rows
/// `2·map(p)`/`2·map(p)+1`.
fn col_stage(
    buf: &mut [f64],
    cols: usize,
    h: usize,
    st: Stage,
    j: usize,
    map: impl Fn(usize) -> usize,
) {
    match st.op {
        Op::Predict => {
            // d[j] += c · (s[j] + s[j+1]).
            let above = 2 * map(j);
            let below = 2 * map(if j + 1 == h { 0 } else { j + 1 });
            let (drow, s0, s1) = row3(buf, cols, 2 * map(j) + 1, above, below);
            lift_step(drow, s0, s1, st.c);
        }
        Op::Update => {
            // s[j] += c · (d[j-1] + d[j]).
            let above = 2 * map(if j == 0 { h - 1 } else { j - 1 }) + 1;
            let below = 2 * map(j) + 1;
            let (srow, d0, d1) = row3(buf, cols, 2 * map(j), above, below);
            lift_step(srow, d0, d1, st.c);
        }
    }
}

/// Row-lift input row `r` into staging row `brow`: deinterleave, run
/// the forward schedule on the halves, write back `[low | high]` with
/// the 9/7 scaling folded in.
#[allow(clippy::too_many_arguments)]
fn row_lift(
    src: &[f64],
    cols: usize,
    r: usize,
    brow: usize,
    st: &[Stage],
    z: Option<f64>,
    buf: &mut [f64],
    e: &mut [f64],
    o: &mut [f64],
) {
    let c2 = cols / 2;
    let x = &src[r * cols..(r + 1) * cols];
    let row = &mut buf[brow * cols..(brow + 1) * cols];
    match z {
        Some(z) => {
            for (i, pair) in x.chunks_exact(2).enumerate() {
                e[i] = pair[0];
                o[i] = pair[1];
            }
            lift_halves(&mut e[..c2], &mut o[..c2], st);
            for (dst, &v) in row[..c2].iter_mut().zip(e.iter()) {
                *dst = v * z;
            }
            for (dst, &v) in row[c2..].iter_mut().zip(o.iter()) {
                *dst = v / z;
            }
        }
        None => {
            // No scaling pass: deinterleave straight into the staging
            // row's halves and lift in place, skipping the copy-back.
            let (re, ro) = row.split_at_mut(c2);
            for (i, pair) in x.chunks_exact(2).enumerate() {
                re[i] = pair[0];
                ro[i] = pair[1];
            }
            lift_halves(re, ro, st);
        }
    }
}

/// Scatter finished staging pair (slot `bp`) into row `p` of the four
/// sub-bands, applying the column-pass 9/7 scaling.
#[allow(clippy::too_many_arguments)]
fn scatter_pair(
    buf: &[f64],
    cols: usize,
    bp: usize,
    p: usize,
    z: Option<f64>,
    ll: &mut [f64],
    lh: &mut [f64],
    hl: &mut [f64],
    hh: &mut [f64],
) {
    let c2 = cols / 2;
    let s = &buf[2 * bp * cols..(2 * bp + 1) * cols];
    let d = &buf[(2 * bp + 1) * cols..(2 * bp + 2) * cols];
    let llr = &mut ll[p * c2..(p + 1) * c2];
    let hlr = &mut hl[p * c2..(p + 1) * c2];
    let lhr = &mut lh[p * c2..(p + 1) * c2];
    let hhr = &mut hh[p * c2..(p + 1) * c2];
    match z {
        Some(z) => {
            for j in 0..c2 {
                llr[j] = s[j] * z;
                hlr[j] = s[c2 + j] * z;
                lhr[j] = d[j] / z;
                hhr[j] = d[c2 + j] / z;
            }
        }
        None => {
            llr.copy_from_slice(&s[..c2]);
            hlr.copy_from_slice(&s[c2..]);
            lhr.copy_from_slice(&d[..c2]);
            hhr.copy_from_slice(&d[c2..]);
        }
    }
}

/// One level of fused lifting analysis: `src` (`rows x cols`) into the
/// four sub-band slices. `buf` is `rows x cols` staging, `e`/`o` are
/// `cols/2` row scratch. Allocation-free; bit-identical to the oracle.
#[allow(clippy::too_many_arguments)]
pub(crate) fn forward_level(
    src: &[f64],
    rows: usize,
    cols: usize,
    kind: LiftingKind,
    ll: &mut [f64],
    lh: &mut [f64],
    hl: &mut [f64],
    hh: &mut [f64],
    buf: &mut [f64],
    e: &mut [f64],
    o: &mut [f64],
) {
    debug_assert!(rows >= 2 && rows.is_multiple_of(2) && cols >= 2 && cols.is_multiple_of(2));
    debug_assert!(src.len() >= rows * cols && buf.len() >= staging_len(rows, cols));
    let h = rows / 2;
    let st = stages(kind, false);
    let z = zeta(kind);
    let table = defer_table(st);
    let nst = st.len();
    let maxp = table.iter().map(|t| t.0).max().unwrap_or(0);
    let maxq = table.iter().map(|t| t.1).max().unwrap_or(0);
    if h < 2 * (nst + maxp + maxq) + 4 {
        // Short image: plain per-stage passes (identical arithmetic).
        let buf = &mut buf[..rows * cols];
        for r in 0..rows {
            row_lift(src, cols, r, r, st, z, buf, e, o);
        }
        for stage in st {
            for j in 0..h {
                col_stage(buf, cols, h, *stage, j, |p| p);
            }
        }
        for p in 0..h {
            scatter_pair(buf, cols, p, p, z, ll, lh, hl, hh);
        }
        return;
    }

    // Cache-blocked staging: the pipeline only ever touches the head
    // pairs the epilogue will revisit (`stash`, also the wrap target of
    // in-sweep `j = h-1` predicts) plus a sliding window of in-flight
    // pairs (`ring`, sized past the deepest stage's reach plus the
    // deferred tail), so the staging rows stay cache-resident instead
    // of streaming a second `rows x cols` image through memory.
    let stash = maxp + 1;
    let ring = nst + maxq + 4;
    let map = |p: usize| {
        if p < stash {
            p
        } else {
            stash + (p - stash) % ring
        }
    };
    let buf = &mut buf[..2 * (stash + ring) * cols];

    // Fused pipeline: row-lift feeds the column stages, each trailing
    // the previous by one row pair; finished pairs scatter immediately.
    let mut next_row = 0usize;
    for i in 0..h + nst - 1 {
        if i < h {
            // Stage 0 at pair i reaches rows 2i+1 (update) or 2i+2
            // (predict); its row-0 wrap is always available.
            let need = (2 * i + 2).min(rows - 1);
            while next_row <= need {
                let brow = 2 * map(next_row / 2) + next_row % 2;
                row_lift(src, cols, next_row, brow, st, z, buf, e, o);
                next_row += 1;
            }
        }
        for (k, (stage, &(p, q))) in st.iter().zip(&table).enumerate() {
            if i < k {
                break;
            }
            let j = i - k;
            if j >= p && j + q < h {
                col_stage(buf, cols, h, *stage, j, map);
            }
        }
        if i + 1 >= nst {
            let p = i + 1 - nst;
            if p >= maxp && p + maxq < h {
                scatter_pair(buf, cols, map(p), p, z, ll, lh, hl, hh);
            }
        }
    }
    // Epilogue: deferred wrap positions, in schedule order.
    for (stage, &(p, q)) in st.iter().zip(&table) {
        for j in 0..p {
            col_stage(buf, cols, h, *stage, j, map);
        }
        for j in h - q..h {
            col_stage(buf, cols, h, *stage, j, map);
        }
    }
    for p in 0..maxp {
        scatter_pair(buf, cols, map(p), p, z, ll, lh, hl, hh);
    }
    for p in h - maxq..h {
        scatter_pair(buf, cols, map(p), p, z, ll, lh, hl, hh);
    }
}

/// Gather logical staging row `t` (into buffer row `bt`) for the
/// synthesis sweep: even rows come from `LL`/`HL` (column unscale
/// `/ζ`), odd rows from `LH`/`HH` (`·ζ`).
fn gather_row(
    bands: (&[f64], &[f64], &[f64], &[f64]),
    cols: usize,
    t: usize,
    bt: usize,
    z: Option<f64>,
    buf: &mut [f64],
) {
    let (ll, lh, hl, hh) = bands;
    let c2 = cols / 2;
    let k = t / 2;
    let row = &mut buf[bt * cols..(bt + 1) * cols];
    let (left_src, right_src, scale_div) = if t.is_multiple_of(2) {
        (&ll[k * c2..(k + 1) * c2], &hl[k * c2..(k + 1) * c2], true)
    } else {
        (&lh[k * c2..(k + 1) * c2], &hh[k * c2..(k + 1) * c2], false)
    };
    match z {
        Some(z) => {
            if scale_div {
                for (dst, &v) in row[..c2].iter_mut().zip(left_src) {
                    *dst = v / z;
                }
                for (dst, &v) in row[c2..].iter_mut().zip(right_src) {
                    *dst = v / z;
                }
            } else {
                for (dst, &v) in row[..c2].iter_mut().zip(left_src) {
                    *dst = v * z;
                }
                for (dst, &v) in row[c2..].iter_mut().zip(right_src) {
                    *dst = v * z;
                }
            }
        }
        None => {
            row[..c2].copy_from_slice(left_src);
            row[c2..].copy_from_slice(right_src);
        }
    }
}

/// Finish staging row `bt` of the synthesis sweep as output row `t`:
/// row unscale, inverse row schedule on the `[low | high]` halves,
/// interleave into `dst`.
fn finalize_row(
    buf: &mut [f64],
    cols: usize,
    t: usize,
    bt: usize,
    st: &[Stage],
    z: Option<f64>,
    dst: &mut [f64],
) {
    let c2 = cols / 2;
    let row = &mut buf[bt * cols..(bt + 1) * cols];
    let (e, o) = row.split_at_mut(c2);
    if let Some(z) = z {
        for v in e.iter_mut() {
            *v /= z;
        }
        for v in o.iter_mut() {
            *v *= z;
        }
    }
    lift_halves(e, o, st);
    let out = &mut dst[t * cols..(t + 1) * cols];
    for i in 0..c2 {
        out[2 * i] = e[i];
        out[2 * i + 1] = o[i];
    }
}

/// One level of fused lifting synthesis: the four sub-bands
/// (`rows/2 x cols/2` each) into `dst` (`rows x cols`). Same pipeline
/// as [`forward_level`], run with the inverse schedule: gathered
/// sub-band rows stream through the inverse column stages, and each
/// finished row is inverse-row-lifted straight into `dst`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn inverse_level(
    ll: &[f64],
    bands: &Subbands,
    rows: usize,
    cols: usize,
    kind: LiftingKind,
    dst: &mut [f64],
    buf: &mut [f64],
) {
    debug_assert!(rows >= 2 && rows.is_multiple_of(2) && cols >= 2 && cols.is_multiple_of(2));
    debug_assert!(dst.len() >= rows * cols && buf.len() >= staging_len(rows, cols));
    let h = rows / 2;
    let st = stages(kind, true);
    let z = zeta(kind);
    let table = defer_table(st);
    let nst = st.len();
    let maxp = table.iter().map(|t| t.0).max().unwrap_or(0);
    let maxq = table.iter().map(|t| t.1).max().unwrap_or(0);
    let src = (ll, bands.lh.data(), bands.hl.data(), bands.hh.data());
    let dst = &mut dst[..rows * cols];

    if h < 2 * (nst + maxp + maxq) + 4 {
        let buf = &mut buf[..rows * cols];
        for t in 0..rows {
            gather_row(src, cols, t, t, z, buf);
        }
        for stage in st {
            for j in 0..h {
                col_stage(buf, cols, h, *stage, j, |p| p);
            }
        }
        for t in 0..rows {
            finalize_row(buf, cols, t, t, st, z, dst);
        }
        return;
    }

    // Same cache-blocked staging as the analysis sweep: deferred head
    // pairs persist in the stash, everything else cycles through a
    // small ring that stays cache-resident.
    let stash = maxp + 1;
    let ring = nst + maxq + 4;
    let map = |p: usize| {
        if p < stash {
            p
        } else {
            stash + (p - stash) % ring
        }
    };
    let buf = &mut buf[..2 * (stash + ring) * cols];

    let mut next_row = 0usize;
    for i in 0..h + nst - 1 {
        if i < h {
            let need = (2 * i + 2).min(rows - 1);
            while next_row <= need {
                let brow = 2 * map(next_row / 2) + next_row % 2;
                gather_row(src, cols, next_row, brow, z, buf);
                next_row += 1;
            }
        }
        for (k, (stage, &(p, q))) in st.iter().zip(&table).enumerate() {
            if i < k {
                break;
            }
            let j = i - k;
            if j >= p && j + q < h {
                col_stage(buf, cols, h, *stage, j, map);
            }
        }
        if i + 1 >= nst {
            let p = i + 1 - nst;
            // One pair wider than the stage deferral margins: finalize
            // mutates the staging row in place, and the epilogue stages
            // still read the *neighbours* of their deferred positions
            // (pairs maxp and h-maxq-1).
            if p > maxp && p + maxq + 1 < h {
                finalize_row(buf, cols, 2 * p, 2 * map(p), st, z, dst);
                finalize_row(buf, cols, 2 * p + 1, 2 * map(p) + 1, st, z, dst);
            }
        }
    }
    for (stage, &(p, q)) in st.iter().zip(&table) {
        for j in 0..p {
            col_stage(buf, cols, h, *stage, j, map);
        }
        for j in h - q..h {
            col_stage(buf, cols, h, *stage, j, map);
        }
    }
    for p in (0..=maxp).chain(h - maxq - 1..h) {
        finalize_row(buf, cols, 2 * p, 2 * map(p), st, z, dst);
        finalize_row(buf, cols, 2 * p + 1, 2 * map(p) + 1, st, z, dst);
    }
}

// ---------------------------------------------------------------------
// Reversible integer lifting (JPEG 2000 style).
// ---------------------------------------------------------------------

/// `floor(v + 1/2)` as `i32` — the rounding of every 9/7 integer step.
#[inline]
fn iround(v: f64) -> i32 {
    (v + 0.5).floor() as i32
}

/// Whole-sample symmetric neighbour clamps: `e[min(i+1, ne-1)]` to the
/// right, `d[max(i-1, 0)]` / `d[min(i, no-1)]` around an update. These
/// make every length (odd included) exactly reversible.
fn fwd_int_1d(x: &mut [i32], scratch: &mut [i32], kind: LiftingKind) {
    let n = x.len();
    if n < 2 {
        return;
    }
    let ne = n.div_ceil(2);
    let no = n / 2;
    let (e, o) = scratch[..n].split_at_mut(ne);
    for i in 0..ne {
        e[i] = x[2 * i];
    }
    for i in 0..no {
        o[i] = x[2 * i + 1];
    }
    match kind {
        LiftingKind::LeGall53 => {
            for i in 0..no {
                o[i] -= (e[i] + e[(i + 1).min(ne - 1)]) >> 1;
            }
            for i in 0..ne {
                o_update_53(e, o, no, i);
            }
        }
        LiftingKind::Cdf97 => {
            int_predict(e, o, ne, no, ALPHA);
            int_update(e, o, ne, no, BETA);
            int_predict(e, o, ne, no, GAMMA);
            int_update(e, o, ne, no, DELTA);
        }
    }
    x[..ne].copy_from_slice(e);
    x[ne..].copy_from_slice(o);
}

#[inline]
fn o_update_53(e: &mut [i32], o: &[i32], no: usize, i: usize) {
    let prev = o[i.saturating_sub(1)];
    let cur = o[i.min(no - 1)];
    e[i] += (prev + cur + 2) >> 2;
}

fn int_predict(e: &[i32], o: &mut [i32], ne: usize, no: usize, c: f64) {
    debug_assert!(no >= 1);
    for i in 0..no {
        let sum = e[i] + e[(i + 1).min(ne - 1)];
        o[i] += iround(c * sum as f64);
    }
}

fn int_update(e: &mut [i32], o: &[i32], _ne: usize, no: usize, c: f64) {
    for (i, ei) in e.iter_mut().enumerate() {
        let sum = o[i.saturating_sub(1)] + o[i.min(no - 1)];
        *ei += iround(c * sum as f64);
    }
}

fn inv_int_1d(x: &mut [i32], scratch: &mut [i32], kind: LiftingKind) {
    let n = x.len();
    if n < 2 {
        return;
    }
    let ne = n.div_ceil(2);
    let no = n / 2;
    let (e, o) = scratch[..n].split_at_mut(ne);
    e.copy_from_slice(&x[..ne]);
    o.copy_from_slice(&x[ne..]);
    match kind {
        LiftingKind::LeGall53 => {
            for i in 0..ne {
                let prev = o[i.saturating_sub(1)];
                let cur = o[i.min(no - 1)];
                e[i] -= (prev + cur + 2) >> 2;
            }
            for i in 0..no {
                o[i] += (e[i] + e[(i + 1).min(ne - 1)]) >> 1;
            }
        }
        LiftingKind::Cdf97 => {
            int_undo_update(e, o, no, DELTA);
            int_undo_predict(e, o, ne, no, GAMMA);
            int_undo_update(e, o, no, BETA);
            int_undo_predict(e, o, ne, no, ALPHA);
        }
    }
    for i in 0..ne {
        x[2 * i] = e[i];
    }
    for i in 0..no {
        x[2 * i + 1] = o[i];
    }
}

fn int_undo_update(e: &mut [i32], o: &[i32], no: usize, c: f64) {
    for (i, ei) in e.iter_mut().enumerate() {
        let sum = o[i.saturating_sub(1)] + o[i.min(no - 1)];
        *ei -= iround(c * sum as f64);
    }
}

fn int_undo_predict(e: &[i32], o: &mut [i32], ne: usize, no: usize, c: f64) {
    for i in 0..no {
        let sum = e[i] + e[(i + 1).min(ne - 1)];
        o[i] -= iround(c * sum as f64);
    }
}

fn check_int_args(len: usize, rows: usize, cols: usize, levels: usize) -> Result<()> {
    if levels == 0 {
        return Err(DwtError::ZeroLevels);
    }
    if len != rows * cols {
        return Err(DwtError::DimensionMismatch {
            detail: format!("buffer of {len} samples for a {rows}x{cols} image"),
        });
    }
    Ok(())
}

/// In-place multi-level reversible integer lifting analysis of a
/// row-major `rows x cols` image. Each level packs `[S | D]` halves
/// (rows then columns); the `ceil(r/2) x ceil(c/2)` approximation
/// corner recurses. Any dimensions (odd included) round-trip exactly
/// through [`inverse_int`] — zero ULP, by construction.
pub fn forward_int(
    data: &mut [i32],
    rows: usize,
    cols: usize,
    levels: usize,
    kind: LiftingKind,
) -> Result<()> {
    check_int_args(data.len(), rows, cols, levels)?;
    let mut colbuf = vec![0i32; rows];
    let mut scratch = vec![0i32; rows.max(cols)];
    let (mut r, mut c) = (rows, cols);
    for _ in 0..levels {
        for rr in 0..r {
            fwd_int_1d(&mut data[rr * cols..rr * cols + c], &mut scratch, kind);
        }
        for cc in 0..c {
            for rr in 0..r {
                colbuf[rr] = data[rr * cols + cc];
            }
            fwd_int_1d(&mut colbuf[..r], &mut scratch, kind);
            for rr in 0..r {
                data[rr * cols + cc] = colbuf[rr];
            }
        }
        r = r.div_ceil(2);
        c = c.div_ceil(2);
    }
    Ok(())
}

/// Exact inverse of [`forward_int`].
pub fn inverse_int(
    data: &mut [i32],
    rows: usize,
    cols: usize,
    levels: usize,
    kind: LiftingKind,
) -> Result<()> {
    check_int_args(data.len(), rows, cols, levels)?;
    let mut dims = Vec::with_capacity(levels);
    let (mut r, mut c) = (rows, cols);
    for _ in 0..levels {
        dims.push((r, c));
        r = r.div_ceil(2);
        c = c.div_ceil(2);
    }
    let mut colbuf = vec![0i32; rows];
    let mut scratch = vec![0i32; rows.max(cols)];
    for &(r, c) in dims.iter().rev() {
        for cc in 0..c {
            for rr in 0..r {
                colbuf[rr] = data[rr * cols + cc];
            }
            inv_int_1d(&mut colbuf[..r], &mut scratch, kind);
            for rr in 0..r {
                data[rr * cols + cc] = colbuf[rr];
            }
        }
        for rr in 0..r {
            inv_int_1d(&mut data[rr * cols..rr * cols + c], &mut scratch, kind);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifting as oracle;
    use crate::matrix::Matrix;

    fn signal(n: usize, salt: u64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(salt);
                ((x >> 33) % 1000) as f64 / 37.0 - 13.0
            })
            .collect()
    }

    fn image(r: usize, c: usize, salt: u64) -> Matrix {
        let data = signal(r * c, salt);
        Matrix::from_vec(r, c, data).unwrap()
    }

    const KINDS: [LiftingKind; 2] = [LiftingKind::Cdf97, LiftingKind::LeGall53];

    #[test]
    fn forward_1d_matches_oracle_bitwise() {
        for kind in KINDS {
            for n in [2usize, 4, 6, 10, 64, 130] {
                let x = signal(n, 7);
                let (oa, od) = oracle::forward_1d_oracle(&x, kind).unwrap();
                let mut a = vec![0.0; n / 2];
                let mut d = vec![0.0; n / 2];
                forward_1d_into(&x, kind, &mut a, &mut d).unwrap();
                assert_eq!(a, oa, "{kind:?} n={n} approx");
                assert_eq!(d, od, "{kind:?} n={n} detail");
            }
        }
    }

    #[test]
    fn inverse_1d_matches_oracle_bitwise() {
        for kind in KINDS {
            for n in [2usize, 4, 6, 10, 64, 130] {
                let a = signal(n / 2, 3);
                let d = signal(n / 2, 11);
                let want = oracle::inverse_1d_oracle(&a, &d, kind).unwrap();
                let mut got = vec![0.0; n];
                inverse_1d_into(&a, &d, kind, &mut got).unwrap();
                assert_eq!(got, want, "{kind:?} n={n}");
            }
        }
    }

    #[test]
    fn fused_level_matches_oracle_across_heights() {
        // Covers the short-image path, the fused pipeline, and the
        // switchover, for both schedules.
        for kind in KINDS {
            for rows in [2usize, 4, 8, 16, 24, 32, 48, 64, 96] {
                let cols = 12;
                let img = image(rows, cols, 31);
                let (oll, obands) = oracle::analyze_step_oracle(&img, kind).unwrap();
                let (h, c2) = (rows / 2, cols / 2);
                let mut ll = vec![0.0; h * c2];
                let mut lh = vec![0.0; h * c2];
                let mut hl = vec![0.0; h * c2];
                let mut hh = vec![0.0; h * c2];
                let mut buf = vec![0.0; rows * cols];
                let mut e = vec![0.0; c2];
                let mut o = vec![0.0; c2];
                forward_level(
                    img.data(),
                    rows,
                    cols,
                    kind,
                    &mut ll,
                    &mut lh,
                    &mut hl,
                    &mut hh,
                    &mut buf,
                    &mut e,
                    &mut o,
                );
                assert_eq!(ll, oll.data(), "{kind:?} rows={rows} LL");
                assert_eq!(lh, obands.lh.data(), "{kind:?} rows={rows} LH");
                assert_eq!(hl, obands.hl.data(), "{kind:?} rows={rows} HL");
                assert_eq!(hh, obands.hh.data(), "{kind:?} rows={rows} HH");
            }
        }
    }

    #[test]
    fn fused_inverse_matches_oracle_across_heights() {
        for kind in KINDS {
            for rows in [2usize, 4, 8, 16, 32, 48, 96] {
                let cols = 8;
                let img = image(rows, cols, 5);
                let (ll, bands) = oracle::analyze_step_oracle(&img, kind).unwrap();
                let want = oracle::synthesize_step_oracle(&ll, &bands, kind).unwrap();
                let mut dst = vec![0.0; rows * cols];
                let mut buf = vec![0.0; rows * cols];
                inverse_level(ll.data(), &bands, rows, cols, kind, &mut dst, &mut buf);
                assert_eq!(dst, want.data(), "{kind:?} rows={rows}");
            }
        }
    }

    #[test]
    fn integer_round_trip_is_bitwise_including_odd_dims() {
        for kind in KINDS {
            for (r, c) in [(1usize, 7usize), (5, 1), (7, 7), (8, 9), (33, 17), (64, 64)] {
                let orig: Vec<i32> = (0..r * c)
                    .map(|i| {
                        let x = (i as u64)
                            .wrapping_mul(2862933555777941757)
                            .wrapping_add(17);
                        ((x >> 40) as i32 % 65536) - 32768
                    })
                    .collect();
                for levels in 1..=3 {
                    let mut data = orig.clone();
                    forward_int(&mut data, r, c, levels, kind).unwrap();
                    if (r > 1 || c > 1) && levels == 1 {
                        assert_ne!(data, orig, "{kind:?} {r}x{c}: transform is not identity");
                    }
                    inverse_int(&mut data, r, c, levels, kind).unwrap();
                    assert_eq!(data, orig, "{kind:?} {r}x{c} L{levels}");
                }
            }
        }
    }

    #[test]
    fn integer_entry_points_validate() {
        let mut d = vec![0i32; 12];
        assert!(forward_int(&mut d, 3, 4, 0, LiftingKind::LeGall53).is_err());
        assert!(forward_int(&mut d, 5, 4, 1, LiftingKind::LeGall53).is_err());
        assert!(inverse_int(&mut d, 3, 5, 1, LiftingKind::Cdf97).is_err());
    }

    #[test]
    fn lift_step_handles_remainders() {
        for n in 0..9usize {
            let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let b: Vec<f64> = (0..n).map(|i| (i * 2) as f64).collect();
            let mut dst = vec![1.0; n];
            lift_step(&mut dst, &a, &b, 0.5);
            for i in 0..n {
                assert_eq!(dst[i], 1.0 + 0.5 * (a[i] + b[i]));
            }
        }
    }
}
