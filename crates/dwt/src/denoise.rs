//! Wavelet denoising: noise estimation from the finest diagonal band and
//! universal-threshold shrinkage (Donoho–Johnstone VisuShrink) — the
//! standard application of the thresholding machinery in [`crate::compress`]
//! to sensor noise like that of the paper's Landsat imagery.

use crate::boundary::Boundary;
use crate::compress::{threshold_details, Threshold};
use crate::dwt2d;
use crate::error::Result;
use crate::filters::FilterBank;
use crate::matrix::Matrix;

/// Estimate the additive-noise standard deviation from the finest
/// diagonal (HH) sub-band: `σ ≈ median(|HH|) / 0.6745` (the median
/// absolute deviation of a Gaussian).
pub fn estimate_sigma(img: &Matrix, bank: &FilterBank) -> Result<f64> {
    let pyr = dwt2d::decompose(img, bank, 1, Boundary::Periodic)?;
    let mut mags: Vec<f64> = pyr.detail[0].hh.data().iter().map(|v| v.abs()).collect();
    mags.sort_by(|a, b| a.partial_cmp(b).expect("finite coefficients"));
    let median = if mags.is_empty() {
        0.0
    } else {
        mags[mags.len() / 2]
    };
    Ok(median / 0.6745)
}

/// Summary of a denoising pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DenoiseReport {
    /// Estimated noise standard deviation.
    pub sigma: f64,
    /// The universal threshold applied.
    pub threshold: f64,
    /// Fraction of detail coefficients zeroed.
    pub zeroed_fraction: f64,
}

/// Denoise `img` by soft-thresholding its detail coefficients at the
/// universal threshold `σ √(2 ln N)`.
pub fn denoise(img: &Matrix, bank: &FilterBank, levels: usize) -> Result<(Matrix, DenoiseReport)> {
    let sigma = estimate_sigma(img, bank)?;
    let n = (img.rows() * img.cols()) as f64;
    let threshold = sigma * (2.0 * n.ln()).sqrt();
    let mut pyr = dwt2d::decompose(img, bank, levels, Boundary::Periodic)?;
    let stats = threshold_details(&mut pyr, Threshold::Soft(threshold));
    let out = dwt2d::reconstruct(&pyr, bank, Boundary::Periodic)?;
    Ok((
        out,
        DenoiseReport {
            sigma,
            threshold,
            zeroed_fraction: 1.0 - stats.keep_ratio(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::psnr;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A smooth test image.
    fn smooth(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |r, c| {
            128.0 + 60.0 * ((r as f64 * 0.15).sin() * (c as f64 * 0.1).cos())
        })
    }

    fn add_noise(img: &Matrix, sigma: f64, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(img.rows(), img.cols(), |r, c| {
            // Sum of 12 uniforms minus 6 ~ N(0,1).
            let g: f64 = (0..12).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() - 6.0;
            img.get(r, c) + sigma * g
        })
    }

    #[test]
    fn sigma_estimate_tracks_injected_noise() {
        let clean = smooth(64);
        let bank = FilterBank::daubechies(8).unwrap();
        for sigma in [2.0f64, 5.0, 10.0] {
            let noisy = add_noise(&clean, sigma, 7);
            let est = estimate_sigma(&noisy, &bank).unwrap();
            assert!(
                (est - sigma).abs() < 0.4 * sigma,
                "sigma {sigma}: estimated {est}"
            );
        }
    }

    #[test]
    fn clean_image_estimates_near_zero_noise() {
        // A smooth image has almost no finest-scale diagonal energy.
        let clean = smooth(64);
        let bank = FilterBank::daubechies(8).unwrap();
        let est = estimate_sigma(&clean, &bank).unwrap();
        assert!(est < 1.0, "clean image sigma estimate {est}");
    }

    #[test]
    fn denoising_improves_psnr() {
        let clean = smooth(128);
        let bank = FilterBank::daubechies(8).unwrap();
        let noisy = add_noise(&clean, 8.0, 3);
        let before = psnr(&clean, &noisy, 255.0).unwrap();
        let (denoised, report) = denoise(&noisy, &bank, 3).unwrap();
        let after = psnr(&clean, &denoised, 255.0).unwrap();
        assert!(
            after > before + 3.0,
            "PSNR {before:.1} -> {after:.1} dB (report {report:?})"
        );
        assert!(report.zeroed_fraction > 0.5);
    }

    #[test]
    fn denoising_a_clean_image_is_nearly_lossless() {
        let clean = smooth(64);
        let bank = FilterBank::daubechies(8).unwrap();
        let (out, report) = denoise(&clean, &bank, 2).unwrap();
        let p = psnr(&clean, &out, 255.0).unwrap();
        assert!(p > 40.0, "clean-image PSNR {p} (report {report:?})");
    }
}
