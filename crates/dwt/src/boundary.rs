//! Boundary extension policies for filtering at the signal edges.

/// How samples beyond the signal edges are supplied to the filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Boundary {
    /// Wrap around (circular convolution). The only mode that gives
    /// *exact* perfect reconstruction with orthonormal filters, and the
    /// mode used for all the paper's experiments.
    Periodic,
    /// Whole-sample symmetric reflection: `x[-1] = x[1]`, `x[N] = x[N-2]`.
    Symmetric,
    /// Samples outside the signal are zero.
    Zero,
}

impl Boundary {
    /// Resolve a possibly out-of-range index `i` against a signal of
    /// length `n`, returning `Some(index)` into the signal or `None` when
    /// the extended sample is zero.
    ///
    /// `i` may be any integer; the mapping is applied repeatedly until the
    /// index lands inside the signal (relevant when the filter is longer
    /// than the signal).
    #[inline]
    pub fn map(self, i: isize, n: usize) -> Option<usize> {
        debug_assert!(n > 0);
        let n_i = n as isize;
        match self {
            Boundary::Periodic => Some(i.rem_euclid(n_i) as usize),
            Boundary::Zero => {
                if i >= 0 && i < n_i {
                    Some(i as usize)
                } else {
                    None
                }
            }
            Boundary::Symmetric => {
                if n == 1 {
                    return Some(0);
                }
                // Whole-sample symmetry has period 2(n-1).
                let period = 2 * (n_i - 1);
                let mut j = i.rem_euclid(period);
                if j >= n_i {
                    j = period - j;
                }
                Some(j as usize)
            }
        }
    }

    /// All modes, for tests that sweep the whole space.
    pub const ALL: [Boundary; 3] = [Boundary::Periodic, Boundary::Symmetric, Boundary::Zero];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_wraps_both_directions() {
        assert_eq!(Boundary::Periodic.map(-1, 4), Some(3));
        assert_eq!(Boundary::Periodic.map(4, 4), Some(0));
        assert_eq!(Boundary::Periodic.map(9, 4), Some(1));
        assert_eq!(Boundary::Periodic.map(-5, 4), Some(3));
    }

    #[test]
    fn zero_returns_none_outside() {
        assert_eq!(Boundary::Zero.map(-1, 4), None);
        assert_eq!(Boundary::Zero.map(4, 4), None);
        assert_eq!(Boundary::Zero.map(2, 4), Some(2));
    }

    #[test]
    fn symmetric_reflects() {
        // Signal indices: 0 1 2 3; extension: x[-1]=x[1], x[4]=x[2].
        assert_eq!(Boundary::Symmetric.map(-1, 4), Some(1));
        assert_eq!(Boundary::Symmetric.map(4, 4), Some(2));
        assert_eq!(Boundary::Symmetric.map(5, 4), Some(1));
        assert_eq!(Boundary::Symmetric.map(6, 4), Some(0));
        // Period 2(n-1) = 6.
        assert_eq!(Boundary::Symmetric.map(7, 4), Some(1));
    }

    #[test]
    fn symmetric_handles_length_one() {
        assert_eq!(Boundary::Symmetric.map(-3, 1), Some(0));
        assert_eq!(Boundary::Symmetric.map(7, 1), Some(0));
    }

    #[test]
    fn in_range_indices_are_identity_for_all_modes() {
        for mode in Boundary::ALL {
            for i in 0..6isize {
                assert_eq!(mode.map(i, 6), Some(i as usize), "{mode:?}");
            }
        }
    }
}
