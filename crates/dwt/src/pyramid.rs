//! Multi-resolution pyramid containers.

use crate::error::{DwtError, Result};
use crate::matrix::Matrix;

/// The three detail sub-bands produced by one 2-D Mallat step.
///
/// Band naming is `<row-filter><column-filter>`: `lh` is low-pass along
/// rows and high-pass along columns, `hl` the converse, `hh` high-pass in
/// both directions. All three have half the parent's rows and columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Subbands {
    /// Low along rows, high along columns (horizontal edges).
    pub lh: Matrix,
    /// High along rows, low along columns (vertical edges).
    pub hl: Matrix,
    /// High in both directions (diagonal detail).
    pub hh: Matrix,
}

impl Subbands {
    /// Three zero-filled `rows x cols` bands.
    pub fn zeros(rows: usize, cols: usize) -> Subbands {
        Subbands {
            lh: Matrix::zeros(rows, cols),
            hl: Matrix::zeros(rows, cols),
            hh: Matrix::zeros(rows, cols),
        }
    }

    /// Disjoint mutable access to the three bands, in `(lh, hl, hh)`
    /// order. Used by [`crate::engine`] to fill all bands in one sweep.
    pub fn split_mut(&mut self) -> (&mut Matrix, &mut Matrix, &mut Matrix) {
        (&mut self.lh, &mut self.hl, &mut self.hh)
    }

    /// Rows of each band.
    pub fn rows(&self) -> usize {
        self.lh.rows()
    }

    /// Columns of each band.
    pub fn cols(&self) -> usize {
        self.lh.cols()
    }

    /// Total energy in the three bands.
    pub fn energy(&self) -> f64 {
        self.lh.energy() + self.hl.energy() + self.hh.energy()
    }
}

/// A complete multi-level 2-D wavelet decomposition.
///
/// `detail[0]` holds the finest (level-1) sub-bands; `approx` is the
/// LL band remaining after the deepest level — the compressed image
/// `I_k` in the paper's notation.
#[derive(Debug, Clone, PartialEq)]
pub struct Pyramid {
    /// LL band at the coarsest level.
    pub approx: Matrix,
    /// Detail sub-bands, finest level first.
    pub detail: Vec<Subbands>,
}

impl Pyramid {
    /// A zero-filled pyramid with the shapes a `levels`-deep decomposition
    /// of an `rows x cols` image produces. Used to preallocate the output
    /// of [`crate::engine::DwtPlan::decompose_into`].
    pub fn zeros(rows: usize, cols: usize, levels: usize) -> Result<Pyramid> {
        if levels == 0 {
            return Err(DwtError::ZeroLevels);
        }
        if rows >> levels << levels != rows || cols >> levels << levels != cols {
            return Err(DwtError::DimensionMismatch {
                detail: format!("{rows}x{cols} image does not divide by 2^{levels}"),
            });
        }
        let detail = (1..=levels)
            .map(|level| Subbands::zeros(rows >> level, cols >> level))
            .collect();
        Ok(Pyramid {
            approx: Matrix::zeros(rows >> levels, cols >> levels),
            detail,
        })
    }

    /// Number of decomposition levels.
    pub fn levels(&self) -> usize {
        self.detail.len()
    }

    /// Dimensions of the original image.
    pub fn image_dims(&self) -> (usize, usize) {
        let scale = 1usize << self.levels();
        (self.approx.rows() * scale, self.approx.cols() * scale)
    }

    /// Total coefficient energy across all bands.
    pub fn energy(&self) -> f64 {
        self.approx.energy() + self.detail.iter().map(Subbands::energy).sum::<f64>()
    }

    /// Total number of coefficients (equals the original pixel count).
    pub fn coefficient_count(&self) -> usize {
        let (r, c) = self.image_dims();
        r * c
    }

    /// Pack the pyramid into the standard Mallat single-image layout:
    /// the LL band in the top-left corner, each level's LH / HL / HH in
    /// the top-right / bottom-left / bottom-right quadrants of its scale.
    pub fn to_mallat_layout(&self) -> Matrix {
        let (rows, cols) = self.image_dims();
        let mut out = Matrix::zeros(rows, cols);
        out.paste(0, 0, &self.approx)
            .expect("approx fits by construction");
        for (i, bands) in self.detail.iter().enumerate() {
            // detail[0] is the finest = occupies the largest quadrants.
            let level = i + 1; // 1-based level number
            let h = rows >> level;
            let w = cols >> level;
            debug_assert_eq!((h, w), (bands.rows(), bands.cols()));
            out.paste(0, w, &bands.hl).expect("hl fits");
            out.paste(h, 0, &bands.lh).expect("lh fits");
            out.paste(h, w, &bands.hh).expect("hh fits");
        }
        out
    }

    /// Rebuild a pyramid from a Mallat-layout matrix produced by
    /// [`Pyramid::to_mallat_layout`].
    pub fn from_mallat_layout(layout: &Matrix, levels: usize) -> Result<Pyramid> {
        if levels == 0 {
            return Err(DwtError::ZeroLevels);
        }
        let (rows, cols) = (layout.rows(), layout.cols());
        if rows >> levels << levels != rows || cols >> levels << levels != cols {
            return Err(DwtError::DimensionMismatch {
                detail: format!("{rows}x{cols} layout does not divide by 2^{levels}"),
            });
        }
        let mut detail = Vec::with_capacity(levels);
        for level in 1..=levels {
            let h = rows >> level;
            let w = cols >> level;
            detail.push(Subbands {
                hl: layout.submatrix(0, w, h, w)?,
                lh: layout.submatrix(h, 0, h, w)?,
                hh: layout.submatrix(h, w, h, w)?,
            });
        }
        let approx = layout.submatrix(0, 0, rows >> levels, cols >> levels)?;
        Ok(Pyramid { approx, detail })
    }

    /// Visit every coefficient (approx first, then details finest→coarsest).
    pub fn for_each_coeff(&self, mut f: impl FnMut(f64)) {
        for &v in self.approx.data() {
            f(v);
        }
        for bands in &self.detail {
            for &v in bands
                .lh
                .data()
                .iter()
                .chain(bands.hl.data())
                .chain(bands.hh.data())
            {
                f(v);
            }
        }
    }

    /// Mutable visit of every coefficient, in the same order as
    /// [`Pyramid::for_each_coeff`].
    pub fn for_each_coeff_mut(&mut self, mut f: impl FnMut(&mut f64)) {
        for v in self.approx.data_mut() {
            f(v);
        }
        for bands in &mut self.detail {
            for v in bands.lh.data_mut() {
                f(v);
            }
            for v in bands.hl.data_mut() {
                f(v);
            }
            for v in bands.hh.data_mut() {
                f(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_pyramid() -> Pyramid {
        // 8x8 image, 2 levels: level-1 bands are 4x4, level-2 bands 2x2.
        let band = |v: f64, n: usize| Matrix::from_fn(n, n, |_, _| v);
        Pyramid {
            approx: band(9.0, 2),
            detail: vec![
                Subbands {
                    lh: band(1.0, 4),
                    hl: band(2.0, 4),
                    hh: band(3.0, 4),
                },
                Subbands {
                    lh: band(4.0, 2),
                    hl: band(5.0, 2),
                    hh: band(6.0, 2),
                },
            ],
        }
    }

    #[test]
    fn dims_and_counts() {
        let p = toy_pyramid();
        assert_eq!(p.levels(), 2);
        assert_eq!(p.image_dims(), (8, 8));
        assert_eq!(p.coefficient_count(), 64);
    }

    #[test]
    fn layout_round_trip() {
        let p = toy_pyramid();
        let layout = p.to_mallat_layout();
        assert_eq!(layout.rows(), 8);
        // LL corner.
        assert_eq!(layout.get(0, 0), 9.0);
        // Finest HH sits in the bottom-right 4x4 quadrant.
        assert_eq!(layout.get(7, 7), 3.0);
        // Finest HL (row-high) top-right.
        assert_eq!(layout.get(0, 7), 2.0);
        // Finest LH bottom-left.
        assert_eq!(layout.get(7, 0), 1.0);
        let q = Pyramid::from_mallat_layout(&layout, 2).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn layout_rejects_bad_levels() {
        let p = toy_pyramid();
        let layout = p.to_mallat_layout();
        assert!(Pyramid::from_mallat_layout(&layout, 0).is_err());
        assert!(Pyramid::from_mallat_layout(&layout, 4).is_err());
    }

    #[test]
    fn coeff_iteration_covers_everything() {
        let p = toy_pyramid();
        let mut count = 0usize;
        let mut sum = 0.0;
        p.for_each_coeff(|v| {
            count += 1;
            sum += v;
        });
        assert_eq!(count, 64);
        // 4 approx @9, 16 each of 1,2,3, 4 each of 4,5,6.
        let expect = 4.0 * 9.0 + 16.0 * (1.0 + 2.0 + 3.0) + 4.0 * (4.0 + 5.0 + 6.0);
        assert_eq!(sum, expect);
    }

    #[test]
    fn coeff_mutation_applies_everywhere() {
        let mut p = toy_pyramid();
        p.for_each_coeff_mut(|v| *v = 0.0);
        assert_eq!(p.energy(), 0.0);
    }
}
