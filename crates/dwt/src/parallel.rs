//! Shared-memory parallel Mallat decomposition using rayon.
//!
//! The work decomposition mirrors the paper's coarse-grain Paragon
//! algorithm: the image is processed in **row stripes**. The row-filter
//! pass is embarrassingly parallel over rows. The column-filter pass is
//! parallelized over *output* rows — output row `k` reads input rows
//! `2k .. 2k+filter_len`, the shared-memory analogue of the paper's guard
//! zone brought from the south neighbour.
//!
//! Synthesis is parallelized for [`Boundary::Periodic`] (the paper's
//! configuration); other modes fall back to the sequential kernels.

use rayon::prelude::*;

use crate::boundary::Boundary;
use crate::conv;
use crate::dwt2d;
use crate::engine;
use crate::error::Result;
use crate::filters::FilterBank;
use crate::matrix::Matrix;
use crate::pyramid::{Pyramid, Subbands};

/// Parallel row pass: filter every row with `taps` and decimate columns.
pub fn filter_rows_par(img: &Matrix, taps: &[f64], mode: Boundary) -> Matrix {
    let half = img.cols() / 2;
    let mut out = Matrix::zeros(img.rows(), half);
    out.data_mut()
        .par_chunks_exact_mut(half)
        .enumerate()
        .for_each(|(r, dst)| {
            conv::analyze_into(img.row(r), taps, mode, dst).expect("output sized to cols/2");
        });
    out
}

/// Parallel column pass: filter every column with `taps` and decimate
/// rows. Output row `k` is the accumulation `Σ_m taps[m] · in[2k+m]`,
/// computed row-wise for cache-friendliness.
///
/// Interior output rows (windows that stay inside the image) read their
/// source rows directly; boundary mapping is resolved once per tail row
/// up front, outside the tap loop, so the accumulation loops stay
/// branch-free.
pub fn filter_cols_par(img: &Matrix, taps: &[f64], mode: Boundary) -> Matrix {
    let in_rows = img.rows();
    let cols = img.cols();
    let out_rows = in_rows / 2;
    let flen = taps.len();
    let mut out = Matrix::zeros(out_rows, cols);
    let interior = conv::interior_outputs(in_rows, flen, out_rows);
    // Resolve the boundary policy for every (tail row, tap) pair before
    // entering the hot loops.
    let tail_map: Vec<Option<usize>> = (interior..out_rows)
        .flat_map(|k| (0..flen).map(move |m| ((2 * k + m) as isize, in_rows)))
        .map(|(i, n)| mode.map(i, n))
        .collect();
    out.data_mut()
        .par_chunks_exact_mut(cols)
        .enumerate()
        .for_each(|(k, dst)| {
            if k < interior {
                let base = 2 * k;
                for (m, &t) in taps.iter().enumerate() {
                    engine::kernel::axpy(dst, img.row(base + m), t);
                }
            } else {
                let maps = &tail_map[(k - interior) * flen..][..flen];
                for (&src_row, &t) in maps.iter().zip(taps) {
                    let Some(src_row) = src_row else { continue };
                    engine::kernel::axpy(dst, img.row(src_row), t);
                }
            }
        });
    out
}

/// One parallel 2-D analysis step producing `(LL, Subbands)`.
pub fn analyze_step_par(
    img: &Matrix,
    bank: &FilterBank,
    mode: Boundary,
) -> Result<(Matrix, Subbands)> {
    dwt2d::validate_dims(img.rows(), img.cols(), bank.len(), 1)?;
    let (low, high) = rayon::join(
        || filter_rows_par(img, bank.low(), mode),
        || filter_rows_par(img, bank.high(), mode),
    );
    let ((ll, lh), (hl, hh)) = rayon::join(
        || {
            rayon::join(
                || filter_cols_par(&low, bank.low(), mode),
                || filter_cols_par(&low, bank.high(), mode),
            )
        },
        || {
            rayon::join(
                || filter_cols_par(&high, bank.low(), mode),
                || filter_cols_par(&high, bank.high(), mode),
            )
        },
    );
    Ok((ll, Subbands { lh, hl, hh }))
}

/// Parallel multi-level decomposition. Produces bit-identical results to
/// [`dwt2d::decompose`] — the arithmetic per coefficient is the same
/// sequence of operations, only distributed over threads.
///
/// Routes through the fused [`engine`] with one worker lane per rayon
/// thread; each lane owns a contiguous stripe of output rows, the
/// shared-memory analogue of the paper's node-per-stripe distribution.
pub fn decompose_par(
    img: &Matrix,
    bank: &FilterBank,
    levels: usize,
    mode: Boundary,
) -> Result<Pyramid> {
    let plan = engine::DwtPlan::new(img.rows(), img.cols(), bank.clone(), levels, mode)?
        .with_threads(rayon::current_num_threads());
    plan.decompose(img)
}

/// Legacy stripe-parallel decomposition over the materializing separable
/// passes. Kept as an independent parallel oracle for the engine tests;
/// use [`decompose_par`] in production code.
#[doc(hidden)]
pub fn decompose_par_separable(
    img: &Matrix,
    bank: &FilterBank,
    levels: usize,
    mode: Boundary,
) -> Result<Pyramid> {
    dwt2d::validate_dims(img.rows(), img.cols(), bank.len(), levels)?;
    let mut approx = img.clone();
    let mut detail = Vec::with_capacity(levels);
    for _ in 0..levels {
        let (ll, bands) = analyze_step_par(&approx, bank, mode)?;
        detail.push(bands);
        approx = ll;
    }
    Ok(Pyramid { approx, detail })
}

/// Parallel synthesis row pass for periodic boundaries, in gather form:
/// output sample `n` receives `coef[(n-m)/2 mod half] · taps[m]` for every
/// tap `m` with `n - m` even.
fn synth_rows_gather(a: &Matrix, d: &Matrix, bank: &FilterBank, out: &mut Matrix) {
    let half = a.cols();
    let out_cols = out.cols();
    debug_assert_eq!(out_cols, 2 * half);
    let (low, high) = (bank.low(), bank.high());
    let a_data = a.data();
    let d_data = d.data();
    out.data_mut()
        .par_chunks_exact_mut(out_cols)
        .enumerate()
        .for_each(|(r, dst)| {
            let arow = &a_data[r * half..(r + 1) * half];
            let drow = &d_data[r * half..(r + 1) * half];
            for (n, slot) in dst.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (m, (&l, &h)) in low.iter().zip(high).enumerate() {
                    let t = n as isize - m as isize;
                    if t % 2 != 0 {
                        continue;
                    }
                    let k = (t / 2).rem_euclid(half as isize) as usize;
                    acc += arow[k] * l + drow[k] * h;
                }
                *slot = acc;
            }
        });
}

/// Parallel synthesis column pass (periodic), gather form over output rows.
fn synth_cols_gather(a: &Matrix, d: &Matrix, bank: &FilterBank, out: &mut Matrix) {
    let half = a.rows();
    let cols = a.cols();
    debug_assert_eq!(out.rows(), 2 * half);
    debug_assert_eq!(out.cols(), cols);
    let (low, high) = (bank.low(), bank.high());
    let a_data = a.data();
    let d_data = d.data();
    out.data_mut()
        .par_chunks_exact_mut(cols)
        .enumerate()
        .for_each(|(n, dst)| {
            dst.iter_mut().for_each(|v| *v = 0.0);
            for (m, (&l, &h)) in low.iter().zip(high).enumerate() {
                let t = n as isize - m as isize;
                if t % 2 != 0 {
                    continue;
                }
                let k = (t / 2).rem_euclid(half as isize) as usize;
                let arow = &a_data[k * cols..(k + 1) * cols];
                let drow = &d_data[k * cols..(k + 1) * cols];
                for ((slot, &av), &dv) in dst.iter_mut().zip(arow).zip(drow) {
                    *slot += av * l + dv * h;
                }
            }
        });
}

/// One parallel synthesis step (exact inverse of [`analyze_step_par`] for
/// periodic boundaries; delegates to the sequential kernel otherwise).
pub fn synthesize_step_par(
    ll: &Matrix,
    bands: &Subbands,
    bank: &FilterBank,
    mode: Boundary,
) -> Result<Matrix> {
    if mode != Boundary::Periodic {
        return dwt2d::synthesize_step(ll, bands, bank, mode);
    }
    let (r, c) = (ll.rows(), ll.cols());
    // Invert the column pass for the low and high row-intermediates.
    let (low, high) = rayon::join(
        || {
            let mut m = Matrix::zeros(2 * r, c);
            synth_cols_gather(ll, &bands.lh, bank, &mut m);
            m
        },
        || {
            let mut m = Matrix::zeros(2 * r, c);
            synth_cols_gather(&bands.hl, &bands.hh, bank, &mut m);
            m
        },
    );
    // Invert the row pass.
    let mut out = Matrix::zeros(2 * r, 2 * c);
    synth_rows_gather(&low, &high, bank, &mut out);
    Ok(out)
}

/// Parallel multi-level reconstruction.
pub fn reconstruct_par(pyr: &Pyramid, bank: &FilterBank, mode: Boundary) -> Result<Matrix> {
    let mut approx = pyr.approx.clone();
    for bands in pyr.detail.iter().rev() {
        approx = synthesize_step_par(&approx, bands, bank, mode)?;
    }
    Ok(approx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image(r: usize, c: usize) -> Matrix {
        Matrix::from_fn(r, c, |i, j| ((i * 37 + j * 11) % 19) as f64 - 9.0)
    }

    #[test]
    fn parallel_matches_sequential_decompose() {
        for taps in [2usize, 4, 8] {
            let bank = FilterBank::daubechies(taps).unwrap();
            let img = test_image(64, 32);
            for mode in Boundary::ALL {
                let seq = dwt2d::decompose(&img, &bank, 2, mode).unwrap();
                let par = decompose_par(&img, &bank, 2, mode).unwrap();
                let legacy = decompose_par_separable(&img, &bank, 2, mode).unwrap();
                assert_eq!(legacy, par, "D{taps} {mode:?} legacy-par differs");
                assert_eq!(
                    seq.approx.max_abs_diff(&par.approx),
                    Some(0.0),
                    "D{taps} {mode:?} LL differs"
                );
                for (s, p) in seq.detail.iter().zip(&par.detail) {
                    assert_eq!(s.lh.max_abs_diff(&p.lh), Some(0.0));
                    assert_eq!(s.hl.max_abs_diff(&p.hl), Some(0.0));
                    assert_eq!(s.hh.max_abs_diff(&p.hh), Some(0.0));
                }
            }
        }
    }

    #[test]
    fn parallel_perfect_reconstruction() {
        let bank = FilterBank::daubechies(8).unwrap();
        let img = test_image(64, 64);
        let pyr = decompose_par(&img, &bank, 3, Boundary::Periodic).unwrap();
        let rec = reconstruct_par(&pyr, &bank, Boundary::Periodic).unwrap();
        let err = img.max_abs_diff(&rec).unwrap();
        assert!(err < 1e-9, "round-trip error {err}");
    }

    #[test]
    fn parallel_synthesis_matches_sequential() {
        let bank = FilterBank::daubechies(4).unwrap();
        let img = test_image(32, 32);
        let pyr = dwt2d::decompose(&img, &bank, 1, Boundary::Periodic).unwrap();
        let seq =
            dwt2d::synthesize_step(&pyr.approx, &pyr.detail[0], &bank, Boundary::Periodic).unwrap();
        let par =
            synthesize_step_par(&pyr.approx, &pyr.detail[0], &bank, Boundary::Periodic).unwrap();
        let err = seq.max_abs_diff(&par).unwrap();
        assert!(err < 1e-12, "synthesis mismatch {err}");
    }

    #[test]
    fn non_periodic_synthesis_falls_back() {
        let bank = FilterBank::haar();
        let img = test_image(16, 16);
        let pyr = dwt2d::decompose(&img, &bank, 1, Boundary::Zero).unwrap();
        // Just verify it runs and produces the right shape.
        let rec = synthesize_step_par(&pyr.approx, &pyr.detail[0], &bank, Boundary::Zero).unwrap();
        assert_eq!(rec.rows(), 16);
        assert_eq!(rec.cols(), 16);
    }

    #[test]
    fn validates_dimensions() {
        let bank = FilterBank::haar();
        let img = Matrix::zeros(10, 10);
        assert!(decompose_par(&img, &bank, 2, Boundary::Periodic).is_err());
    }
}
