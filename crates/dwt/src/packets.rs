//! Wavelet packets: the full binary generalization of the Mallat
//! pyramid. Where the paper's algorithm re-decomposes only the low/low
//! band, the packet transform splits *every* sub-band, and the
//! Coifman–Wickerhauser best-basis algorithm then prunes the tree to the
//! most compact representation — the natural "future work" extension of
//! the paper's compression application.

use crate::boundary::Boundary;
use crate::dwt2d;
use crate::error::Result;
use crate::filters::FilterBank;
use crate::matrix::Matrix;

/// A node of the 2-D packet tree: either a leaf holding coefficients or
/// an internal node with four children (LL, LH, HL, HH order).
#[derive(Debug, Clone, PartialEq)]
pub enum PacketNode {
    /// Undecomposed coefficients.
    Leaf(Matrix),
    /// Split into the four filtered/decimated quadrants.
    Split(Box<[PacketNode; 4]>),
}

impl PacketNode {
    /// Number of coefficients under this node.
    pub fn coefficients(&self) -> usize {
        match self {
            PacketNode::Leaf(m) => m.rows() * m.cols(),
            PacketNode::Split(children) => children.iter().map(PacketNode::coefficients).sum(),
        }
    }

    /// Number of leaves under this node.
    pub fn leaves(&self) -> usize {
        match self {
            PacketNode::Leaf(_) => 1,
            PacketNode::Split(children) => children.iter().map(PacketNode::leaves).sum(),
        }
    }

    /// Visit every leaf.
    pub fn for_each_leaf(&self, f: &mut impl FnMut(&Matrix)) {
        match self {
            PacketNode::Leaf(m) => f(m),
            PacketNode::Split(children) => {
                for c in children.iter() {
                    c.for_each_leaf(f);
                }
            }
        }
    }
}

/// Decompose `img` into the *full* packet tree of the given depth
/// (every band split at every level).
pub fn decompose_full(
    img: &Matrix,
    bank: &FilterBank,
    depth: usize,
    mode: Boundary,
) -> Result<PacketNode> {
    if depth == 0 {
        return Ok(PacketNode::Leaf(img.clone()));
    }
    dwt2d::validate_dims(img.rows(), img.cols(), bank.len(), 1)?;
    let (ll, bands) = dwt2d::analyze_step(img, bank, mode)?;
    let children = [
        decompose_full(&ll, bank, depth - 1, mode)?,
        decompose_full(&bands.lh, bank, depth - 1, mode)?,
        decompose_full(&bands.hl, bank, depth - 1, mode)?,
        decompose_full(&bands.hh, bank, depth - 1, mode)?,
    ];
    Ok(PacketNode::Split(Box::new(children)))
}

/// Reconstruct the image from any packet tree (full, pruned, or the
/// Mallat-shaped one).
pub fn reconstruct(node: &PacketNode, bank: &FilterBank, mode: Boundary) -> Result<Matrix> {
    match node {
        PacketNode::Leaf(m) => Ok(m.clone()),
        PacketNode::Split(children) => {
            let ll = reconstruct(&children[0], bank, mode)?;
            let lh = reconstruct(&children[1], bank, mode)?;
            let hl = reconstruct(&children[2], bank, mode)?;
            let hh = reconstruct(&children[3], bank, mode)?;
            dwt2d::synthesize_step(&ll, &crate::pyramid::Subbands { lh, hl, hh }, bank, mode)
        }
    }
}

/// The Coifman–Wickerhauser additive cost: Shannon-like entropy
/// `−Σ p ln p` with `p = c²/‖c‖²` computed against a fixed global norm
/// so that costs add across nodes.
pub fn entropy_cost(m: &Matrix, global_norm2: f64) -> f64 {
    if global_norm2 <= 0.0 {
        return 0.0;
    }
    m.data()
        .iter()
        .map(|&c| {
            let p = c * c / global_norm2;
            if p > 0.0 {
                -p * p.ln()
            } else {
                0.0
            }
        })
        .sum()
}

/// Prune a full packet tree to its best basis: keep a split only when
/// its children's total cost beats the node's own cost.
/// Returns the pruned tree and its total cost.
pub fn best_basis(
    img: &Matrix,
    bank: &FilterBank,
    depth: usize,
    mode: Boundary,
) -> Result<(PacketNode, f64)> {
    let norm2 = img.energy();
    fn go(
        img: &Matrix,
        bank: &FilterBank,
        depth: usize,
        mode: Boundary,
        norm2: f64,
    ) -> Result<(PacketNode, f64)> {
        let own_cost = entropy_cost(img, norm2);
        if depth == 0 || dwt2d::validate_dims(img.rows(), img.cols(), bank.len(), 1).is_err() {
            return Ok((PacketNode::Leaf(img.clone()), own_cost));
        }
        let (ll, bands) = dwt2d::analyze_step(img, bank, mode)?;
        let parts = [&ll, &bands.lh, &bands.hl, &bands.hh];
        let mut children = Vec::with_capacity(4);
        let mut child_cost = 0.0;
        for p in parts {
            let (node, cost) = go(p, bank, depth - 1, mode, norm2)?;
            child_cost += cost;
            children.push(node);
        }
        if child_cost < own_cost {
            let children: [PacketNode; 4] = children.try_into().expect("four children");
            Ok((PacketNode::Split(Box::new(children)), child_cost))
        } else {
            Ok((PacketNode::Leaf(img.clone()), own_cost))
        }
    }
    go(img, bank, depth, mode, norm2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |r, c| {
            ((r * 7 + c * 13) % 19) as f64 + (c as f64 * 0.7).sin() * 4.0
        })
    }

    #[test]
    fn full_tree_shape() {
        let img = image(32);
        let bank = FilterBank::haar();
        let tree = decompose_full(&img, &bank, 2, Boundary::Periodic).unwrap();
        assert_eq!(tree.leaves(), 16);
        assert_eq!(tree.coefficients(), 32 * 32);
    }

    #[test]
    fn full_tree_perfect_reconstruction() {
        let img = image(32);
        for taps in [2usize, 4] {
            let bank = FilterBank::daubechies(taps).unwrap();
            let tree = decompose_full(&img, &bank, 2, Boundary::Periodic).unwrap();
            let rec = reconstruct(&tree, &bank, Boundary::Periodic).unwrap();
            let err = img.max_abs_diff(&rec).unwrap();
            assert!(err < 1e-9, "D{taps}: {err}");
        }
    }

    #[test]
    fn depth_zero_is_identity() {
        let img = image(16);
        let bank = FilterBank::haar();
        let tree = decompose_full(&img, &bank, 0, Boundary::Periodic).unwrap();
        assert_eq!(tree, PacketNode::Leaf(img.clone()));
        assert_eq!(reconstruct(&tree, &bank, Boundary::Periodic).unwrap(), img);
    }

    #[test]
    fn best_basis_reconstructs_exactly() {
        let img = image(32);
        let bank = FilterBank::daubechies(4).unwrap();
        let (tree, _) = best_basis(&img, &bank, 3, Boundary::Periodic).unwrap();
        let rec = reconstruct(&tree, &bank, Boundary::Periodic).unwrap();
        assert!(img.max_abs_diff(&rec).unwrap() < 1e-9);
    }

    #[test]
    fn best_basis_cost_never_exceeds_either_extreme() {
        let img = image(32);
        let bank = FilterBank::daubechies(4).unwrap();
        let norm2 = img.energy();
        let raw_cost = entropy_cost(&img, norm2);
        let (tree, best_cost) = best_basis(&img, &bank, 3, Boundary::Periodic).unwrap();
        // The pruned cost is at most the undecomposed cost...
        assert!(best_cost <= raw_cost + 1e-12);
        // ...and at most the fully decomposed cost.
        let full = decompose_full(&img, &bank, 3, Boundary::Periodic).unwrap();
        let mut full_cost = 0.0;
        full.for_each_leaf(&mut |m| full_cost += entropy_cost(m, norm2));
        assert!(best_cost <= full_cost + 1e-12);
        assert!(tree.coefficients() == 32 * 32);
    }

    #[test]
    fn oscillatory_texture_prefers_deeper_packets() {
        // A high-frequency texture concentrates in a HH-like packet that
        // plain Mallat (LL-only recursion) never splits: the best basis
        // should split at least one non-LL band.
        let img = Matrix::from_fn(32, 32, |r, c| if (r + c) % 2 == 0 { 10.0 } else { -10.0 });
        let bank = FilterBank::haar();
        let (tree, _) = best_basis(&img, &bank, 2, Boundary::Periodic).unwrap();
        // The checkerboard is a pure HH Haar component: the tree must be
        // more compact than the raw image representation.
        let norm2 = img.energy();
        let mut tree_cost = 0.0;
        tree.for_each_leaf(&mut |m| tree_cost += entropy_cost(m, norm2));
        assert!(tree_cost < entropy_cost(&img, norm2));
    }

    #[test]
    fn entropy_cost_basics() {
        // All energy in one coefficient: zero entropy.
        let spike = Matrix::from_vec(1, 4, vec![2.0, 0.0, 0.0, 0.0]).unwrap();
        assert!(entropy_cost(&spike, 4.0).abs() < 1e-12);
        // Spread energy: positive entropy.
        let flat = Matrix::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!(entropy_cost(&flat, 4.0) > 1.0);
        assert_eq!(entropy_cost(&flat, 0.0), 0.0);
    }
}
