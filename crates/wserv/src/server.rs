//! The live, threaded service driver.
//!
//! [`WaveletService`] owns one worker thread per shard. Submitters hash
//! the request's shape to a shard (walking the ring past failed shards
//! — see [`shard::route`]), admit it under that shard's lock, and get
//! back a [`ResponseHandle`] that resolves to exactly one
//! [`ServeResult`]. Workers pop coalesced batches, execute them through
//! the shard's [`PlanCache`], and resolve the waiters.
//!
//! # Fault tolerance
//!
//! Shard state (queue, in-flight dispatch, cache, metrics, dispatch
//! counter) lives *outside* the worker thread, so a worker death loses
//! nothing:
//!
//! * every popped batch is stashed in the shard's in-flight slot before
//!   execution, so whatever kills the worker, the supervisor can
//!   re-queue the exact requests it held;
//! * execution runs under [`std::panic::catch_unwind`]: a panic while
//!   executing (e.g. an injected poison request) is quarantined
//!   in-thread — batchmates are re-queued to retry *solo*, and a
//!   request that panics even alone is terminally rejected
//!   [`Rejection::Requeued`] instead of taking the worker down;
//! * a supervisor thread health-checks the workers and restarts dead
//!   ones under [`SupervisorPolicy`]'s bounded exponential-backoff
//!   budget; past the budget the shard is failed over — its queued and
//!   in-flight work re-routes to live successors on the shard ring, and
//!   future submissions route around it;
//! * under reduced capacity (covering for a failed peer, or a queue
//!   past the high-water mark) a shard may answer sub-interactive work
//!   with a degraded, bounded-error response ([`DegradedPolicy`])
//!   instead of letting the backlog shed it.
//!
//! Fault *injection* is deterministic and seeded ([`ShardFaultPlan`]):
//! the same plan drives the chaos simulator ([`crate::sim::run_chaos`])
//! and this live driver, at the same shard-local dispatch indices.
//!
//! Shutdown is a graceful drain: [`WaveletService::shutdown`] flips the
//! drain flag (new submissions are rejected [`Rejection::Draining`]),
//! wakes every worker, and joins them. Workers keep popping until their
//! queue is empty, so every accepted request still resolves — the drain
//! invariant the property tests pin down. A worker found dead at
//! shutdown surfaces as a typed [`ServiceError`], never as a
//! caller-visible panic, and its stranded requests are resolved
//! [`Rejection::ShardFailed`] first.

use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::admission::{AdmissionQueue, Admit};
use crate::batch::{Batch, BatchPolicy};
use crate::cache::PlanCache;
use crate::elastic::{
    BalanceAction, BalanceController, ElasticPolicy, QueuedShape, ShardLoad, ShardMap,
};
use crate::faults::{DegradedPolicy, ShardFaultPlan, SupervisorPolicy};
use crate::metrics::{LaneSplit, MetricsSnapshot, ShardMetrics};
use crate::request::{
    DecomposeRequest, DecomposeResponse, Entry, Priority, RejectKind, Rejection, ServeResult,
};
use crate::shard;

/// Service-wide configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker shards (each owns a queue, a cache, and a thread).
    pub shards: usize,
    /// Admission-queue capacity per shard.
    pub queue_capacity: usize,
    /// Plan-cache capacity per shard (0 disables reuse).
    pub cache_capacity: usize,
    /// Batching policy shared by all shards.
    pub batch: BatchPolicy,
    /// Engine worker lanes per cached plan.
    pub engine_threads: usize,
    /// Deterministic fault-injection schedule (empty = no faults).
    pub faults: ShardFaultPlan,
    /// Worker supervision: restart budget, backoff, requeue cost.
    pub supervisor: SupervisorPolicy,
    /// Degraded-mode serving under reduced capacity (`None` = always
    /// exact).
    pub degraded: Option<DegradedPolicy>,
    /// Elastic sharding: load-aware work stealing and split/merge
    /// (`None` = static FNV placement).
    pub elastic: Option<ElasticPolicy>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 4,
            queue_capacity: 64,
            cache_capacity: 16,
            batch: BatchPolicy::default(),
            engine_threads: 1,
            faults: ShardFaultPlan::none(),
            supervisor: SupervisorPolicy::default(),
            degraded: None,
            elastic: None,
        }
    }
}

impl ServiceConfig {
    /// Override the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Override the per-shard queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Override the per-shard plan-cache capacity (0 = cache off).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Override the batching cap.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.batch = BatchPolicy::new(max_batch);
        self
    }

    /// Inject a deterministic fault schedule.
    pub fn with_faults(mut self, faults: ShardFaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Override the supervision policy.
    pub fn with_supervisor(mut self, supervisor: SupervisorPolicy) -> Self {
        self.supervisor = supervisor;
        self
    }

    /// Enable degraded-mode serving under reduced capacity.
    pub fn with_degraded(mut self, degraded: DegradedPolicy) -> Self {
        self.degraded = Some(degraded);
        self
    }

    /// Enable elastic sharding under the given policy.
    pub fn with_elastic(mut self, elastic: ElasticPolicy) -> Self {
        self.elastic = Some(elastic);
        self
    }

    /// Total shard slots: the live shard count plus the elastic
    /// reserve pool (0 extra without elastic).
    pub fn total_slots(&self) -> usize {
        self.shards.max(1) + self.elastic.map_or(0, |e| e.reserve)
    }

    /// Validate the configuration's fault and recovery knobs.
    pub fn validate(&self) -> Result<(), String> {
        self.faults.validate(self.total_slots())?;
        self.supervisor.validate()?;
        if let Some(d) = &self.degraded {
            d.validate()?;
        }
        if let Some(e) = &self.elastic {
            e.validate()?;
        }
        Ok(())
    }
}

/// A shutdown-time failure of the service itself (as opposed to a
/// per-request [`Rejection`]). Surfaced as a typed error so callers
/// never see a worker panic propagate through `join`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// A shard worker was found dead at shutdown and supervision was
    /// disabled, so nothing restarted it. Its stranded requests were
    /// resolved [`Rejection::ShardFailed`] before this was returned.
    WorkerPanicked {
        /// The shard whose worker died.
        shard: usize,
    },
    /// The supervisor thread itself panicked (a service bug; worker
    /// threads may be left running detached).
    SupervisorFailed,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::WorkerPanicked { shard } => {
                write!(
                    f,
                    "shard {shard} worker panicked (no supervisor to restart it)"
                )
            }
            ServiceError::SupervisorFailed => write!(f, "supervisor thread panicked"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// One-shot slot a request's terminal outcome is published into.
#[derive(Debug, Default)]
pub struct ResponseCell {
    slot: Mutex<Option<ServeResult>>,
    ready: Condvar,
}

impl ResponseCell {
    fn resolve(&self, result: ServeResult) {
        let mut slot = self.slot.lock();
        debug_assert!(slot.is_none(), "a request resolves exactly once");
        *slot = Some(result);
        self.ready.notify_all();
    }
}

/// The submitter's side of an accepted request.
#[derive(Debug, Clone)]
pub struct ResponseHandle {
    cell: Arc<ResponseCell>,
}

impl ResponseHandle {
    /// Block until the request's terminal outcome arrives.
    pub fn wait(&self) -> ServeResult {
        let mut slot = self.cell.slot.lock();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            self.cell.ready.wait(&mut slot);
        }
    }

    /// The outcome, if already resolved (non-blocking).
    pub fn try_take(&self) -> Option<ServeResult> {
        self.cell.slot.lock().take()
    }
}

/// Lock-guarded half of one shard.
#[derive(Debug)]
struct Inner {
    queue: AdmissionQueue<Arc<ResponseCell>>,
    draining: bool,
}

/// One shard's state, owned by the service rather than by the worker
/// thread so nothing is lost when the worker dies.
#[derive(Debug)]
struct ShardShared {
    inner: Mutex<Inner>,
    work: Condvar,
    /// The batch currently being executed. Stashed *before* execution
    /// starts; whatever kills the worker, the supervisor re-queues it.
    in_flight: Mutex<Option<Batch<Arc<ResponseCell>>>>,
    /// The shard's plan cache; survives worker restarts warm.
    cache: Mutex<PlanCache>,
    /// The shard's metrics; survive worker restarts.
    metrics: Mutex<ShardMetrics>,
    /// Shard-local dispatch counter — the fault-injection coordinate.
    /// Monotonic across worker restarts (a restarted worker continues
    /// the sequence, which is what makes a permanent crash keep firing).
    dispatch: AtomicU64,
    /// Set when the restart budget is exhausted; submitters and the
    /// failover router treat the shard as dead.
    failed: AtomicBool,
    /// Worker restarts performed so far.
    restarts: AtomicU32,
}

impl ShardShared {
    fn new(config: &ServiceConfig) -> Self {
        ShardShared {
            inner: Mutex::new(Inner {
                queue: AdmissionQueue::new(config.queue_capacity),
                draining: false,
            }),
            work: Condvar::new(),
            in_flight: Mutex::new(None),
            cache: Mutex::new(PlanCache::new(config.cache_capacity, config.engine_threads)),
            metrics: Mutex::new(ShardMetrics::default()),
            dispatch: AtomicU64::new(0),
            failed: AtomicBool::new(false),
            restarts: AtomicU32::new(0),
        }
    }

    fn alive(&self) -> bool {
        !self.failed.load(Ordering::SeqCst)
    }
}

/// Shared elastic routing and control state of the live driver.
///
/// The [`ShardMap`] is *always* the routing authority — with elastic
/// disabled it is an unmodified map over the base shards, which routes
/// identically to the legacy [`shard::route`] ring. The controller is
/// present only under [`ServiceConfig::elastic`]; submitters tick it
/// opportunistically (`try_lock`, so at most one submitter balances at
/// a time and nobody queues behind the control plane).
///
/// Lock order: `ctrl` → `map` → shard `inner` (innermost). Shard inner
/// locks nest (two at once) only inside [`WaveletService::migrate`],
/// always in ascending index order, and only while `ctrl` is held — so
/// no cycle is possible with the single-inner-lock paths.
#[derive(Debug)]
struct LiveElastic {
    map: Mutex<ShardMap>,
    ctrl: Option<Mutex<BalanceController>>,
    /// Reserve slots that were activated at least once (their books are
    /// part of the final snapshot; never-activated slots served
    /// nothing and are omitted).
    ever_active: Mutex<Vec<bool>>,
    /// The decision log: `(seconds since service start, action)`.
    log: Mutex<Vec<(f64, BalanceAction)>>,
}

/// The running service.
#[derive(Debug)]
pub struct WaveletService {
    config: ServiceConfig,
    start: Instant,
    shards: Vec<Arc<ShardShared>>,
    elastic: Arc<LiveElastic>,
    /// Present when supervision is enabled; owns the worker handles.
    supervisor: Option<thread::JoinHandle<()>>,
    /// Worker handles when supervision is disabled (joined at
    /// shutdown, where a panic becomes a typed [`ServiceError`]).
    workers: Vec<thread::JoinHandle<()>>,
    next_id: Mutex<u64>,
}

impl WaveletService {
    /// Start the service: spawns one worker thread per shard, plus a
    /// supervisor when the policy enables one.
    ///
    /// # Panics
    ///
    /// On a malformed configuration (fault plan naming absent shards,
    /// negative costs, …) — see [`ServiceConfig::validate`].
    pub fn start(config: ServiceConfig) -> Self {
        let config = ServiceConfig {
            shards: config.shards.max(1),
            ..config
        };
        if let Err(reason) = config.validate() {
            panic!("invalid ServiceConfig: {reason}");
        }
        let start = Instant::now();
        let total = config.total_slots();
        let shards: Vec<Arc<ShardShared>> = (0..total)
            .map(|_| Arc::new(ShardShared::new(&config)))
            .collect();
        let elastic = Arc::new(LiveElastic {
            map: Mutex::new(ShardMap::new(config.shards, total - config.shards)),
            ctrl: config
                .elastic
                .map(|policy| Mutex::new(BalanceController::new(policy))),
            ever_active: Mutex::new(vec![false; total]),
            log: Mutex::new(Vec::new()),
        });
        // Reserve-slot workers spawn with the rest: they sleep on their
        // empty queues until a split routes work their way, and they
        // drain like any other shard at shutdown.
        let handles: Vec<thread::JoinHandle<()>> = (0..total)
            .map(|ix| spawn_worker(ix, &shards, &config, start, &elastic))
            .collect();
        let (supervisor, workers) = if config.supervisor.enabled() {
            let sup_shards = shards.clone();
            let sup_cfg = config.clone();
            let sup_elastic = Arc::clone(&elastic);
            let handles = handles.into_iter().map(Some).collect();
            let sup = thread::spawn(move || {
                supervisor_loop(&sup_shards, handles, &sup_cfg, start, &sup_elastic)
            });
            (Some(sup), Vec::new())
        } else {
            (None, handles)
        };
        WaveletService {
            config,
            start,
            shards,
            elastic,
            supervisor,
            workers,
            next_id: Mutex::new(0),
        }
    }

    /// Seconds since service start (the live service clock).
    pub fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Submit one request. `Err` is an at-the-door rejection; `Ok` is a
    /// handle that resolves to exactly one terminal outcome. Requests
    /// whose home shard has failed over route to its live successor on
    /// the shard ring.
    pub fn submit(&self, req: DecomposeRequest) -> Result<ResponseHandle, Rejection> {
        req.validate()?;
        let shape = req.shape();
        let alive: Vec<bool> = self.shards.iter().map(|s| s.alive()).collect();
        let (home, routed) = {
            let map = self.elastic.map.lock();
            (map.home(&shape), map.route(&shape, &alive))
        };
        let Some(shard_ix) = routed else {
            // Every shard is down; account the rejection to the home
            // shard so the books still balance per shard.
            let restarts = self.shards[home].restarts.load(Ordering::SeqCst);
            let mut inner = self.shards[home].inner.lock();
            inner.queue.counters.reject(RejectKind::ShardFailed);
            return Err(Rejection::ShardFailed {
                shard: home,
                restarts,
            });
        };
        let state = &self.shards[shard_ix];
        let cell = Arc::new(ResponseCell::default());
        let id = {
            let mut next = self.next_id.lock();
            let id = *next;
            *next += 1;
            id
        };
        let now = self.now();
        let incoming = req.priority;
        let entry = Entry {
            id,
            arrival: now,
            req,
            attempts: 0,
            tag: Arc::clone(&cell),
        };
        let admitted = {
            let mut inner = state.inner.lock();
            if inner.draining {
                inner.queue.counters.reject(RejectKind::Draining);
                return Err(Rejection::Draining);
            }
            inner.queue.admit(now, entry)
        };
        let result = match admitted {
            Admit::Accepted => {
                state.work.notify_one();
                Ok(ResponseHandle { cell })
            }
            Admit::AcceptedShedding(victim) => {
                // The queue guarantees the victim's class is strictly
                // below the arrival's; the rejection records who won.
                debug_assert!(victim.req.priority < incoming);
                victim.tag.resolve(Err(Rejection::Shed { by: incoming }));
                state.work.notify_one();
                Ok(ResponseHandle { cell })
            }
            Admit::Rejected(_, rejection) => Err(rejection),
        };
        // The control plane runs on the submit path (no clock thread):
        // each admission gives the balancer one chance to act.
        self.elastic_tick(now);
        result
    }

    /// The elastic controller's decision log so far: `(seconds since
    /// service start, action)` in decision order. Empty without
    /// [`ServiceConfig::elastic`].
    pub fn elastic_log(&self) -> Vec<(f64, BalanceAction)> {
        self.elastic.log.lock().clone()
    }

    /// Current routing-table version (bumped by every split, merge, and
    /// override mutation; 0 while the map is pristine).
    pub fn shard_map_epoch(&self) -> u64 {
        self.elastic.map.lock().epoch()
    }

    /// One opportunistic controller step at `now` seconds. `try_lock`
    /// keeps the control plane off the submit hot path: at most one
    /// submitter balances at a time, the rest skip.
    fn elastic_tick(&self, now: f64) {
        let Some(ctrl_m) = &self.elastic.ctrl else {
            return;
        };
        let Some(mut ctrl) = ctrl_m.try_lock() else {
            return;
        };
        if !ctrl.ready(now) {
            return;
        }
        let mut map = self.elastic.map.lock();
        let loads: Vec<ShardLoad> = self
            .shards
            .iter()
            .enumerate()
            .map(|(s, st)| {
                let inner = st.inner.lock();
                ShardLoad {
                    active: map.is_active(s),
                    failed: !st.alive(),
                    depth: inner.queue.len(),
                    free: inner.queue.free(),
                    queued: inner
                        .queue
                        .shape_census()
                        .into_iter()
                        .map(|(shape, count, movable)| QueuedShape {
                            key: shard::shape_key(&shape),
                            shape,
                            count,
                            movable,
                        })
                        .collect(),
                }
            })
            .collect();
        let Some(action) = ctrl.decide(now, &loads) else {
            return;
        };
        self.apply_action(&mut map, &action);
        self.elastic.log.lock().push((now, action));
    }

    /// Apply one decided action as queue surgery plus map mutation.
    /// Every migrated entry leaves exactly one queue and enters exactly
    /// one queue under its locks, so the exactly-once books never see
    /// the move.
    fn apply_action(&self, map: &mut ShardMap, action: &BalanceAction) {
        match action {
            BalanceAction::Steal { from, to, key, cap } => {
                self.migrate(*from, *to, *key, *cap);
            }
            BalanceAction::Split { from, to, keys } => {
                if !self.shards[*to].alive() {
                    return;
                }
                map.activate(*to);
                self.elastic.ever_active.lock()[*to] = true;
                for &key in keys {
                    map.set_override(key, *to);
                    self.migrate(*from, *to, key, usize::MAX);
                }
                self.shards[*from].metrics.lock().splits += 1;
            }
            BalanceAction::Merge { from } => {
                for key in map.overrides_to(*from) {
                    map.clear_override(key);
                }
                map.retire(*from);
                self.shards[*from].metrics.lock().merges += 1;
                // Drain the retiring queue losslessly back through the
                // map. The merge threshold keeps this tiny (usually
                // empty); a full routable queue resolves the entry as
                // a typed QueueFull rather than losing it.
                let queued = self.shards[*from].inner.lock().queue.drain();
                let alive: Vec<bool> = self.shards.iter().map(|s| s.alive()).collect();
                for entry in queued {
                    let Some(target) = map.route(&entry.req.shape(), &alive) else {
                        let me = &self.shards[*from];
                        let restarts = me.restarts.load(Ordering::SeqCst);
                        me.inner
                            .lock()
                            .queue
                            .counters
                            .reject(RejectKind::ShardFailed);
                        entry.tag.resolve(Err(Rejection::ShardFailed {
                            shard: *from,
                            restarts,
                        }));
                        continue;
                    };
                    let st = &self.shards[target];
                    let mut inner = st.inner.lock();
                    if inner.queue.free() > 0 {
                        inner.queue.accept_migrated(entry);
                        drop(inner);
                        self.shards[*from].metrics.lock().stolen_out += 1;
                        st.metrics.lock().stolen_in += 1;
                        st.work.notify_one();
                    } else {
                        let depth = inner.queue.len();
                        inner.queue.counters.reject(RejectKind::QueueFull);
                        drop(inner);
                        entry.tag.resolve(Err(Rejection::QueueFull { depth }));
                    }
                }
            }
        }
    }

    /// Migrate up to `cap` queued entries of routing key `key` from
    /// shard `from` to shard `to`, both inner locks held (ascending
    /// index order) so the move is atomic with respect to failover
    /// drains — an entry is owned by exactly one of the two mechanisms.
    fn migrate(&self, from: usize, to: usize, key: u64, cap: usize) {
        if from == to || !self.shards[from].alive() || !self.shards[to].alive() {
            // A shard mid-failover is never a steal source or target:
            // the controller already filters failed shards, and this
            // re-check closes the decide-to-apply race.
            return;
        }
        let (first, second) = (from.min(to), from.max(to));
        let mut g1 = self.shards[first].inner.lock();
        let mut g2 = self.shards[second].inner.lock();
        let (from_inner, to_inner) = if from < to {
            (&mut *g1, &mut *g2)
        } else {
            (&mut *g2, &mut *g1)
        };
        let cap = cap.min(to_inner.queue.free());
        if cap == 0 {
            return;
        }
        let taken = from_inner.queue.take_shape(key, cap);
        let moved = taken.len() as u64;
        for entry in taken {
            to_inner.queue.accept_migrated(entry);
        }
        drop(g2);
        drop(g1);
        if moved > 0 {
            self.shards[from].metrics.lock().stolen_out += moved;
            self.shards[to].metrics.lock().stolen_in += moved;
            self.shards[to].work.notify_all();
        }
    }

    /// Graceful drain: reject new work, let workers empty their queues,
    /// join them, and return the merged metrics.
    ///
    /// A worker found dead with supervision disabled surfaces as
    /// `Err(ServiceError::WorkerPanicked)` — never a caller-visible
    /// panic — after its stranded requests are resolved
    /// [`Rejection::ShardFailed`] (every accepted request still
    /// terminates, even through an error shutdown).
    pub fn shutdown(self) -> Result<MetricsSnapshot, ServiceError> {
        for state in &self.shards {
            let mut inner = state.inner.lock();
            inner.draining = true;
            drop(inner);
            state.work.notify_all();
        }
        let mut error = None;
        if let Some(sup) = self.supervisor {
            if sup.join().is_err() {
                error = Some(ServiceError::SupervisorFailed);
            }
        }
        for (ix, handle) in self.workers.into_iter().enumerate() {
            if handle.join().is_err() {
                self.shards[ix].failed.store(true, Ordering::SeqCst);
                self.shards[ix].metrics.lock().failed = true;
                error.get_or_insert(ServiceError::WorkerPanicked { shard: ix });
            }
        }
        // Backstop sweep: anything still queued or in flight (stranded
        // by an unsupervised death, or re-routed into a shard whose
        // worker had already drained) resolves ShardFailed so every
        // accepted request terminates.
        for (ix, state) in self.shards.iter().enumerate() {
            let stranded = state.in_flight.lock().take();
            let queued = state.inner.lock().queue.drain();
            let restarts = state.restarts.load(Ordering::SeqCst);
            for entry in stranded.into_iter().flat_map(|b| b.entries).chain(queued) {
                state
                    .inner
                    .lock()
                    .queue
                    .counters
                    .reject(RejectKind::ShardFailed);
                entry.tag.resolve(Err(Rejection::ShardFailed {
                    shard: ix,
                    restarts,
                }));
            }
        }
        // Close every shard's books exactly once. Reserve slots that
        // were never activated served nothing — they are omitted so
        // their zero-completion lanes don't skew the imbalance rollup
        // (activation always picks the lowest reserve slot, so the
        // omissions are a stable suffix).
        let now = self.start.elapsed().as_secs_f64();
        let ever_active = self.elastic.ever_active.lock().clone();
        let shards = self
            .shards
            .iter()
            .enumerate()
            .filter(|(ix, _)| *ix < self.config.shards || ever_active[*ix])
            .map(|(_, state)| {
                let mut m = state.metrics.lock().clone();
                m.queue = state.inner.lock().queue.counters.clone();
                m.absorb_cache(&state.cache.lock());
                m.finalize(now);
                m
            })
            .collect();
        match error {
            None => Ok(MetricsSnapshot { shards }),
            Some(e) => Err(e),
        }
    }
}

fn spawn_worker(
    shard_ix: usize,
    shards: &[Arc<ShardShared>],
    cfg: &ServiceConfig,
    start: Instant,
    elastic: &Arc<LiveElastic>,
) -> thread::JoinHandle<()> {
    let shards = shards.to_vec();
    let cfg = cfg.clone();
    let elastic = Arc::clone(elastic);
    thread::spawn(move || worker_loop(shard_ix, &shards, &cfg, start, &elastic))
}

/// Re-admit one entry into `target`'s queue at `now`, charging the
/// requeue cost to `charge` (the shard responsible for the recovery:
/// itself for quarantine and restart requeues, the failed shard for
/// failover re-routes). An entry the queue refuses resolves terminally
/// with the typed rejection.
fn readmit(
    charge: &ShardShared,
    target: &ShardShared,
    entry: Entry<Arc<ResponseCell>>,
    policy: &SupervisorPolicy,
    now: f64,
) {
    let incoming = entry.req.priority;
    let admitted = {
        let mut inner = target.inner.lock();
        inner.queue.admit(now, entry)
    };
    match admitted {
        Admit::Accepted => {
            charge.metrics.lock().record_requeue(policy.requeue_s);
            target.work.notify_one();
        }
        Admit::AcceptedShedding(victim) => {
            charge.metrics.lock().record_requeue(policy.requeue_s);
            victim.tag.resolve(Err(Rejection::Shed { by: incoming }));
            target.work.notify_one();
        }
        Admit::Rejected(entry, rejection) => entry.tag.resolve(Err(rejection)),
    }
}

/// The poisoned-batch quarantine, applied after a caught execution
/// panic: batchmates re-queue to retry solo (attempts + 1, so the
/// batcher isolates them); a request that panicked even solo is
/// terminally rejected instead of burning another worker.
fn quarantine(
    me: &ShardShared,
    batch: Batch<Arc<ResponseCell>>,
    policy: &SupervisorPolicy,
    now: f64,
) {
    if batch.len() == 1 {
        let entry = batch.entries.into_iter().next().expect("len checked");
        {
            let mut metrics = me.metrics.lock();
            metrics.quarantined += 1;
        }
        me.inner.lock().queue.counters.reject(RejectKind::Requeued);
        entry.tag.resolve(Err(Rejection::Requeued {
            attempts: entry.attempts + 1,
        }));
        return;
    }
    for mut entry in batch.entries {
        entry.attempts += 1;
        readmit(me, me, entry, policy, now);
    }
}

fn worker_loop(
    shard_ix: usize,
    shards: &[Arc<ShardShared>],
    cfg: &ServiceConfig,
    start: Instant,
    elastic: &Arc<LiveElastic>,
) {
    let me = &shards[shard_ix];
    loop {
        let wake = Instant::now();
        let popped = {
            let mut inner = me.inner.lock();
            loop {
                if !inner.queue.is_empty() {
                    let now = start.elapsed().as_secs_f64();
                    let depth_frac = inner.queue.len() as f64 / cfg.queue_capacity.max(1) as f64;
                    break Some((inner.queue.pop_batch(now, &cfg.batch), depth_frac));
                }
                if inner.draining {
                    break None;
                }
                me.work.wait(&mut inner);
            }
        };
        let Some((pop, depth_frac)) = popped else {
            // Queue empty and draining: done. The books are closed
            // centrally at shutdown (metrics are shared state).
            return;
        };
        let dispatch_start = start.elapsed().as_secs_f64();
        for entry in pop.expired {
            let deadline = entry.req.deadline.expect("expired implies a deadline");
            me.metrics
                .lock()
                .record_lost(dispatch_start - entry.arrival);
            entry.tag.resolve(Err(Rejection::DeadlineExpired {
                deadline,
                now: dispatch_start,
            }));
        }
        let Some(batch) = pop.batch else { continue };

        // Stash the dispatch before touching it: from here on, a worker
        // death strands nothing — the supervisor finds the batch in the
        // in-flight slot. The slot lock is held across execution (only
        // the supervisor ever contends, and only after a death).
        let mut slot = me.in_flight.lock();
        *slot = Some(batch);
        let k = me.dispatch.fetch_add(1, Ordering::SeqCst);
        if cfg.faults.worker_dies(shard_ix, k) {
            // Injected worker death: unwind out of the thread. The
            // slot guard unlocks on unwind; the batch stays stashed.
            panic!("injected worker death: shard {shard_ix}, dispatch {k}");
        }
        let batch_ref = slot.as_ref().expect("just stashed");
        let poisoned = batch_ref
            .entries
            .iter()
            .find(|e| cfg.faults.poisoned(e.id))
            .map(|e| e.id);
        let t0 = Instant::now();
        let executed = panic::catch_unwind(AssertUnwindSafe(|| {
            if let Some(id) = poisoned {
                panic!("injected poison request {id}");
            }
            let mut cache = me.cache.lock();
            shard::execute(&mut cache, batch_ref)
        }));
        let exec_s = t0.elapsed().as_secs_f64();
        let stall = cfg.faults.stall_factor(shard_ix, k);
        if stall > 1.0 {
            // Injected slowdown: this dispatch runs `stall`× slower.
            thread::sleep(Duration::from_secs_f64(exec_s * (stall - 1.0)));
        }
        let batch = slot.take().expect("still stashed");
        drop(slot);
        let t1 = Instant::now();
        match executed {
            Err(_) => {
                // Execution panicked and was quarantined in-thread: the
                // worker survives, the batch goes through the
                // poisoned-batch protocol.
                let now = start.elapsed().as_secs_f64();
                quarantine(me, batch, &cfg.supervisor, now);
            }
            Ok(Ok(done)) => {
                // Degrade sub-interactive work when capacity is reduced:
                // covering for a failed peer, or a queue past the
                // high-water mark.
                let peer_failed = shards
                    .iter()
                    .enumerate()
                    .any(|(i, s)| i != shard_ix && !s.alive());
                let degrade = cfg
                    .degraded
                    .filter(|d| peer_failed || depth_frac >= d.queue_high_water);
                let batch_size = batch.len();
                let shape_key = shard::shape_key(&batch.shape);
                let arrivals = batch.arrivals();
                let end = start.elapsed().as_secs_f64();
                let mut degraded_count = 0u64;
                for (entry, mut pyramid) in batch.entries.into_iter().zip(done.pyramids) {
                    let mut error_bound = 0.0;
                    let mut degraded = false;
                    if let Some(d) = degrade {
                        if entry.req.priority < Priority::Interactive {
                            shard::degrade_pyramid(&mut pyramid, &d);
                            error_bound = d.error_bound();
                            degraded = true;
                            degraded_count += 1;
                        }
                    }
                    entry.tag.resolve(Ok(DecomposeResponse {
                        pyramid,
                        cache_hit: done.cache_hit,
                        batch_size,
                        wait_s: (dispatch_start - entry.arrival).max(0.0),
                        service_s: (end - dispatch_start).max(0.0),
                        degraded,
                        error_bound,
                    }));
                }
                let deliver_s = t1.elapsed().as_secs_f64();
                let dispatch_s = (t0.duration_since(wake)).as_secs_f64();
                let split = LaneSplit {
                    dispatch_s,
                    // The cache splits build from reuse internally; a
                    // miss's whole execution interval is conservatively
                    // split by whether the plan was rebuilt.
                    plan_s: if done.cache_hit { 0.0 } else { exec_s * 0.5 },
                    transform_s: if done.cache_hit { exec_s } else { exec_s * 0.5 },
                    deliver_s,
                };
                let mut metrics = me.metrics.lock();
                metrics.record_batch(dispatch_start, end + deliver_s, &arrivals, split);
                metrics.degraded_served += degraded_count;
                drop(metrics);
                // Feed the cost book with the measured per-request
                // service time. `try_lock` only: a held controller is
                // mid-decision, and one skipped sample is cheaper than
                // a worker queuing behind the control plane.
                if let Some(ctrl) = &elastic.ctrl {
                    if let Some(mut c) = ctrl.try_lock() {
                        let per_req =
                            ((end + deliver_s) - dispatch_start).max(0.0) / batch_size as f64;
                        c.observe(shape_key, per_req);
                    }
                }
            }
            Ok(Err(detail)) => {
                // Engine refused the batch (validation raced a bad
                // request past admission): fail each entry, keep going.
                for entry in batch.entries {
                    entry.tag.resolve(Err(Rejection::Invalid {
                        detail: detail.clone(),
                    }));
                }
            }
        }
    }
}

/// The supervisor: polls worker liveness, restarts dead workers under
/// the backoff budget (re-queuing whatever the dead worker held), and
/// past the budget fails the shard over — every queued and in-flight
/// entry re-routes to its live successor on the shard ring.
fn supervisor_loop(
    shards: &[Arc<ShardShared>],
    mut handles: Vec<Option<thread::JoinHandle<()>>>,
    cfg: &ServiceConfig,
    start: Instant,
    elastic: &Arc<LiveElastic>,
) {
    let policy = cfg.supervisor;
    loop {
        let mut all_done = true;
        for s in 0..shards.len() {
            if handles[s].as_ref().is_some_and(|h| h.is_finished()) {
                let handle = handles[s].take().expect("presence just checked");
                if handle.join().is_err() {
                    let me = &shards[s];
                    let restart_no = me.restarts.load(Ordering::SeqCst) + 1;
                    if restart_no <= policy.max_restarts {
                        me.restarts.store(restart_no, Ordering::SeqCst);
                        // Re-queue the dispatch the dead worker held;
                        // the worker was the suspect, not the requests,
                        // so attempts are not bumped.
                        let stranded = me.in_flight.lock().take();
                        let now = start.elapsed().as_secs_f64();
                        if let Some(batch) = stranded {
                            for entry in batch.entries {
                                readmit(me, me, entry, &policy, now);
                            }
                        }
                        let backoff = policy.backoff_s(restart_no);
                        me.metrics.lock().record_restart(backoff);
                        thread::sleep(Duration::from_secs_f64(backoff));
                        handles[s] = Some(spawn_worker(s, shards, cfg, start, elastic));
                    } else {
                        fail_over(s, shards, &policy, start, elastic);
                    }
                }
            }
            if handles[s].is_some() {
                all_done = false;
            }
        }
        if all_done {
            return;
        }
        thread::sleep(Duration::from_secs_f64(policy.poll_s));
    }
}

/// Declare shard `s` failed and re-route its in-flight and queued work
/// to live successors through the shard map (which degenerates to the
/// legacy ring without elastic overrides). Entries with no live
/// successor resolve [`Rejection::ShardFailed`].
fn fail_over(
    s: usize,
    shards: &[Arc<ShardShared>],
    policy: &SupervisorPolicy,
    start: Instant,
    elastic: &Arc<LiveElastic>,
) {
    let me = &shards[s];
    me.failed.store(true, Ordering::SeqCst);
    me.metrics.lock().failed = true;
    let restarts = me.restarts.load(Ordering::SeqCst);
    let now = start.elapsed().as_secs_f64();
    let stranded = me.in_flight.lock().take();
    let queued = me.inner.lock().queue.drain();
    let alive: Vec<bool> = shards.iter().map(|x| x.alive()).collect();
    let map = elastic.map.lock();
    for entry in stranded.into_iter().flat_map(|b| b.entries).chain(queued) {
        match map.route(&entry.req.shape(), &alive) {
            Some(target) => readmit(me, &shards[target], entry, policy, now),
            None => {
                me.inner
                    .lock()
                    .queue
                    .counters
                    .reject(RejectKind::ShardFailed);
                entry
                    .tag
                    .resolve(Err(Rejection::ShardFailed { shard: s, restarts }));
            }
        }
    }
}
