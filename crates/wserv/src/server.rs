//! The live, threaded service driver.
//!
//! [`WaveletService`] owns one worker thread per shard. Submitters hash
//! the request's shape to a shard, admit it under that shard's lock,
//! and get back a [`ResponseHandle`] that resolves to exactly one
//! [`ServeResult`]. Workers pop coalesced batches, execute them through
//! a worker-owned [`PlanCache`] (no lock held during compute), and
//! resolve the waiters.
//!
//! Shutdown is a graceful drain: [`WaveletService::shutdown`] flips the
//! drain flag (new submissions are rejected [`Rejection::Draining`]),
//! wakes every worker, and joins them. Workers keep popping until their
//! queue is empty, so every accepted request still resolves — the drain
//! invariant the property tests pin down.

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::admission::{AdmissionQueue, Admit};
use crate::batch::BatchPolicy;
use crate::cache::PlanCache;
use crate::metrics::{LaneSplit, MetricsSnapshot, ShardMetrics};
use crate::request::{
    DecomposeRequest, DecomposeResponse, Entry, RejectKind, Rejection, ServeResult,
};
use crate::shard;

/// Service-wide configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker shards (each owns a queue, a cache, and a thread).
    pub shards: usize,
    /// Admission-queue capacity per shard.
    pub queue_capacity: usize,
    /// Plan-cache capacity per shard (0 disables reuse).
    pub cache_capacity: usize,
    /// Batching policy shared by all shards.
    pub batch: BatchPolicy,
    /// Engine worker lanes per cached plan.
    pub engine_threads: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 4,
            queue_capacity: 64,
            cache_capacity: 16,
            batch: BatchPolicy::default(),
            engine_threads: 1,
        }
    }
}

impl ServiceConfig {
    /// Override the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Override the per-shard queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Override the per-shard plan-cache capacity (0 = cache off).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Override the batching cap.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.batch = BatchPolicy::new(max_batch);
        self
    }
}

/// One-shot slot a request's terminal outcome is published into.
#[derive(Debug, Default)]
pub struct ResponseCell {
    slot: Mutex<Option<ServeResult>>,
    ready: Condvar,
}

impl ResponseCell {
    fn resolve(&self, result: ServeResult) {
        let mut slot = self.slot.lock();
        debug_assert!(slot.is_none(), "a request resolves exactly once");
        *slot = Some(result);
        self.ready.notify_all();
    }
}

/// The submitter's side of an accepted request.
#[derive(Debug, Clone)]
pub struct ResponseHandle {
    cell: Arc<ResponseCell>,
}

impl ResponseHandle {
    /// Block until the request's terminal outcome arrives.
    pub fn wait(&self) -> ServeResult {
        let mut slot = self.cell.slot.lock();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            self.cell.ready.wait(&mut slot);
        }
    }

    /// The outcome, if already resolved (non-blocking).
    pub fn try_take(&self) -> Option<ServeResult> {
        self.cell.slot.lock().take()
    }
}

/// Lock-guarded half of one shard.
#[derive(Debug)]
struct Inner {
    queue: AdmissionQueue<Arc<ResponseCell>>,
    draining: bool,
}

#[derive(Debug)]
struct ShardState {
    inner: Mutex<Inner>,
    work: Condvar,
}

/// The running service.
#[derive(Debug)]
pub struct WaveletService {
    config: ServiceConfig,
    start: Instant,
    shards: Vec<Arc<ShardState>>,
    workers: Vec<thread::JoinHandle<ShardMetrics>>,
    next_id: Mutex<u64>,
}

impl WaveletService {
    /// Start the service: spawns one worker thread per shard.
    pub fn start(config: ServiceConfig) -> Self {
        let config = ServiceConfig {
            shards: config.shards.max(1),
            ..config
        };
        let start = Instant::now();
        let shards: Vec<Arc<ShardState>> = (0..config.shards)
            .map(|_| {
                Arc::new(ShardState {
                    inner: Mutex::new(Inner {
                        queue: AdmissionQueue::new(config.queue_capacity),
                        draining: false,
                    }),
                    work: Condvar::new(),
                })
            })
            .collect();
        let workers = shards
            .iter()
            .map(|state| {
                let state = Arc::clone(state);
                let cfg = config.clone();
                thread::spawn(move || worker_loop(&state, &cfg, start))
            })
            .collect();
        WaveletService {
            config,
            start,
            shards,
            workers,
            next_id: Mutex::new(0),
        }
    }

    /// Seconds since service start (the live service clock).
    pub fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Submit one request. `Err` is an at-the-door rejection; `Ok` is a
    /// handle that resolves to exactly one terminal outcome.
    pub fn submit(&self, req: DecomposeRequest) -> Result<ResponseHandle, Rejection> {
        req.validate()?;
        let shard_ix = shard::shard_of(&req.shape(), self.config.shards);
        let state = &self.shards[shard_ix];
        let cell = Arc::new(ResponseCell::default());
        let id = {
            let mut next = self.next_id.lock();
            let id = *next;
            *next += 1;
            id
        };
        let now = self.now();
        let incoming = req.priority;
        let entry = Entry {
            id,
            arrival: now,
            req,
            tag: Arc::clone(&cell),
        };
        let admitted = {
            let mut inner = state.inner.lock();
            if inner.draining {
                inner.queue.counters.reject(RejectKind::Draining);
                return Err(Rejection::Draining);
            }
            inner.queue.admit(now, entry)
        };
        match admitted {
            Admit::Accepted => {
                state.work.notify_one();
                Ok(ResponseHandle { cell })
            }
            Admit::AcceptedShedding(victim) => {
                // The queue guarantees the victim's class is strictly
                // below the arrival's; the rejection records who won.
                debug_assert!(victim.req.priority < incoming);
                victim.tag.resolve(Err(Rejection::Shed { by: incoming }));
                state.work.notify_one();
                Ok(ResponseHandle { cell })
            }
            Admit::Rejected(_, rejection) => Err(rejection),
        }
    }

    /// Graceful drain: reject new work, let workers empty their queues,
    /// join them, and return the merged metrics.
    pub fn shutdown(self) -> MetricsSnapshot {
        for state in &self.shards {
            let mut inner = state.inner.lock();
            inner.draining = true;
            drop(inner);
            state.work.notify_all();
        }
        let shards = self
            .workers
            .into_iter()
            .map(|w| w.join().expect("shard worker panicked"))
            .collect();
        MetricsSnapshot { shards }
    }
}

fn worker_loop(state: &ShardState, cfg: &ServiceConfig, start: Instant) -> ShardMetrics {
    let mut cache = PlanCache::new(cfg.cache_capacity, cfg.engine_threads);
    let mut metrics = ShardMetrics::default();
    loop {
        let wake = Instant::now();
        let pop = {
            let mut inner = state.inner.lock();
            loop {
                if !inner.queue.is_empty() {
                    let now = start.elapsed().as_secs_f64();
                    break Some(inner.queue.pop_batch(now, &cfg.batch));
                }
                if inner.draining {
                    break None;
                }
                state.work.wait(&mut inner);
            }
        };
        let Some(pop) = pop else {
            // Queue empty and draining: close the books.
            let now = start.elapsed().as_secs_f64();
            let inner = state.inner.lock();
            metrics.queue = inner.queue.counters.clone();
            drop(inner);
            metrics.absorb_cache(&cache);
            metrics.finalize(now);
            return metrics;
        };
        let dispatch_start = start.elapsed().as_secs_f64();
        for entry in pop.expired {
            let deadline = entry.req.deadline.expect("expired implies a deadline");
            metrics.record_lost(dispatch_start - entry.arrival);
            entry.tag.resolve(Err(Rejection::DeadlineExpired {
                deadline,
                now: dispatch_start,
            }));
        }
        let Some(batch) = pop.batch else { continue };
        let t0 = Instant::now();
        let executed = shard::execute(&mut cache, &batch);
        let exec_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        match executed {
            Ok(done) => {
                let batch_size = batch.len();
                let arrivals = batch.arrivals();
                let end = start.elapsed().as_secs_f64();
                for (entry, pyramid) in batch.entries.into_iter().zip(done.pyramids) {
                    entry.tag.resolve(Ok(DecomposeResponse {
                        pyramid,
                        cache_hit: done.cache_hit,
                        batch_size,
                        wait_s: (dispatch_start - entry.arrival).max(0.0),
                        service_s: (end - dispatch_start).max(0.0),
                    }));
                }
                let deliver_s = t1.elapsed().as_secs_f64();
                let dispatch_s = (t0.duration_since(wake)).as_secs_f64();
                let split = LaneSplit {
                    dispatch_s,
                    // The cache splits build from reuse internally; a
                    // miss's whole execution interval is conservatively
                    // split by whether the plan was rebuilt.
                    plan_s: if done.cache_hit { 0.0 } else { exec_s * 0.5 },
                    transform_s: if done.cache_hit { exec_s } else { exec_s * 0.5 },
                    deliver_s,
                };
                metrics.record_batch(dispatch_start, end + deliver_s, &arrivals, split);
            }
            Err(detail) => {
                // Engine refused the batch (validation raced a bad
                // request past admission): fail each entry, keep going.
                for entry in batch.entries {
                    entry.tag.resolve(Err(Rejection::Invalid {
                        detail: detail.clone(),
                    }));
                }
            }
        }
    }
}
