//! Deterministic fault injection for the serving layer, plus the
//! policies that survive it.
//!
//! A [`ShardFaultPlan`] lifts the PR-2 fault model (seeded, pre-computed
//! schedules — no wall clock, no mutable RNG) from the SPMD simulators
//! into `wserv`. Every injection decision is either an explicit literal
//! event or a pure hash of the plan seed and a canonical coordinate, so
//! the discrete-event chaos simulator replays byte-identically from the
//! seed and the live threaded driver injects the *same* faults at the
//! same shard-local dispatch indices.
//!
//! Injected fault classes:
//!
//! * **worker panics** — the shard's worker thread dies at the entry of
//!   one dispatch (a one-shot event; the supervisor restarts it);
//! * **permanent shard crashes** — the worker dies at *every* dispatch
//!   from an index on, so restarts keep failing until the supervisor's
//!   restart budget is exhausted and the shard is failed over;
//! * **stalls/slowdowns** — a dispatch window on one shard executes
//!   slower by a factor (a throttled or degraded core);
//! * **poison requests** — executing a specific request panics
//!   mid-batch, exercising the poisoned-batch quarantine (retry
//!   batchmates solo, quarantine the request that keeps killing
//!   workers).
//!
//! The survival machinery is configured by [`SupervisorPolicy`]
//! (restart budget, backoff, requeue cost) and [`DegradedPolicy`]
//! (bounded-error approximate responses under reduced capacity). Both
//! are clock-free and shared verbatim by the live server and the sim.

/// Hash-domain separator for the poison-request decision stream.
const KIND_POISON: u64 = 0x706f_6973; // "pois"

/// One-shot worker death: shard `shard`'s worker panics at the entry of
/// its `at_dispatch`-th dispatch (shard-local, 0-based, monotonically
/// increasing across restarts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPanic {
    /// The affected shard.
    pub shard: usize,
    /// The shard-local dispatch index at whose entry the worker dies.
    pub at_dispatch: u64,
}

/// Permanent shard crash: the worker dies at the entry of every
/// dispatch with index `>= at_dispatch`, so each supervisor restart
/// dies again until the restart budget is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardCrash {
    /// The affected shard.
    pub shard: usize,
    /// First dispatch index at which the worker dies (and keeps dying).
    pub at_dispatch: u64,
}

/// Shard slowdown: dispatches with index in `[from_dispatch,
/// to_dispatch)` execute `factor`× slower.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStall {
    /// The affected shard.
    pub shard: usize,
    /// Execution-time multiplier (> 1 slows the shard down).
    pub factor: f64,
    /// First affected dispatch index.
    pub from_dispatch: u64,
    /// One past the last affected dispatch index.
    pub to_dispatch: u64,
}

/// A deterministic, seeded shard-fault schedule. See the module docs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShardFaultPlan {
    seed: u64,
    panics: Vec<WorkerPanic>,
    crashes: Vec<ShardCrash>,
    stalls: Vec<ShardStall>,
    poison_ids: Vec<u64>,
    poison_rate: f64,
}

impl ShardFaultPlan {
    /// The empty plan: no faults, zero overhead.
    pub fn none() -> Self {
        Self::default()
    }

    /// An empty plan carrying `seed` for the probabilistic streams.
    pub fn seeded(seed: u64) -> Self {
        ShardFaultPlan {
            seed,
            ..Self::default()
        }
    }

    /// Add a one-shot worker panic on `shard` at dispatch `at_dispatch`.
    pub fn with_worker_panic(mut self, shard: usize, at_dispatch: u64) -> Self {
        self.panics.push(WorkerPanic { shard, at_dispatch });
        self
    }

    /// Add a permanent crash of `shard` from dispatch `at_dispatch` on.
    pub fn with_shard_crash(mut self, shard: usize, at_dispatch: u64) -> Self {
        self.crashes.push(ShardCrash { shard, at_dispatch });
        self
    }

    /// Add a `factor`× slowdown of `shard` over dispatches `[from, to)`.
    pub fn with_stall(mut self, shard: usize, factor: f64, from: u64, to: u64) -> Self {
        self.stalls.push(ShardStall {
            shard,
            factor,
            from_dispatch: from,
            to_dispatch: to,
        });
        self
    }

    /// Poison the request with service-wide id `id`: executing it
    /// panics the worker (inside the quarantine guard).
    pub fn with_poison(mut self, id: u64) -> Self {
        self.poison_ids.push(id);
        self
    }

    /// Poison a seeded fraction of all requests (decision hashed from
    /// the seed and the request id).
    pub fn with_poison_rate(mut self, rate: f64) -> Self {
        self.poison_rate = rate;
        self
    }

    /// Whether the plan injects nothing (the fault-free fast path).
    pub fn is_empty(&self) -> bool {
        self.panics.is_empty()
            && self.crashes.is_empty()
            && self.stalls.is_empty()
            && self.poison_ids.is_empty()
            && self.poison_rate == 0.0
    }

    /// Validate against a shard count. Returns a human-readable reason
    /// on the first malformed entry.
    pub fn validate(&self, nshards: usize) -> Result<(), String> {
        if !((0.0..=1.0).contains(&self.poison_rate) && self.poison_rate.is_finite()) {
            return Err(format!("poison rate {} outside [0, 1]", self.poison_rate));
        }
        for p in &self.panics {
            if p.shard >= nshards {
                return Err(format!(
                    "panic on shard {} with only {nshards} shards",
                    p.shard
                ));
            }
        }
        for c in &self.crashes {
            if c.shard >= nshards {
                return Err(format!(
                    "crash of shard {} with only {nshards} shards",
                    c.shard
                ));
            }
        }
        for s in &self.stalls {
            if s.shard >= nshards {
                return Err(format!(
                    "stall on shard {} with only {nshards} shards",
                    s.shard
                ));
            }
            if !(s.factor >= 1.0 && s.factor.is_finite()) {
                return Err(format!("stall factor {} must be finite and >= 1", s.factor));
            }
            if s.from_dispatch >= s.to_dispatch {
                return Err(format!(
                    "stall window [{}, {}) is empty",
                    s.from_dispatch, s.to_dispatch
                ));
            }
        }
        Ok(())
    }

    /// Whether the worker of `shard` dies at the entry of dispatch
    /// `dispatch` (one-shot panic scheduled exactly there, or a
    /// permanent crash window covering it).
    pub fn worker_dies(&self, shard: usize, dispatch: u64) -> bool {
        self.panics
            .iter()
            .any(|p| p.shard == shard && p.at_dispatch == dispatch)
            || self.permanently_crashed(shard, dispatch)
    }

    /// Whether `shard` is inside a permanent-crash window at `dispatch`.
    pub fn permanently_crashed(&self, shard: usize, dispatch: u64) -> bool {
        self.crashes
            .iter()
            .any(|c| c.shard == shard && dispatch >= c.at_dispatch)
    }

    /// Shards with a permanent crash scheduled anywhere, ascending.
    pub fn crashed_shards(&self, nshards: usize) -> Vec<usize> {
        (0..nshards)
            .filter(|&s| self.crashes.iter().any(|c| c.shard == s))
            .collect()
    }

    /// Execution-time multiplier for `shard` at dispatch `dispatch`
    /// (product of all active stall windows; 1.0 when none).
    pub fn stall_factor(&self, shard: usize, dispatch: u64) -> f64 {
        self.stalls
            .iter()
            .filter(|s| s.shard == shard && (s.from_dispatch..s.to_dispatch).contains(&dispatch))
            .map(|s| s.factor)
            .product()
    }

    /// Whether executing the request with service-wide id `id` panics.
    pub fn poisoned(&self, id: u64) -> bool {
        if self.poison_ids.contains(&id) {
            return true;
        }
        self.poison_rate > 0.0 && self.decision(KIND_POISON, id) < self.poison_rate
    }

    /// The pure decision function: a uniform value in `[0, 1)` derived
    /// from the seed and a coordinate. SplitMix64 finalizer — the same
    /// construction `paragon::faults` uses.
    fn decision(&self, kind: u64, coord: u64) -> f64 {
        let mut h = self.seed ^ kind.wrapping_mul(0x9e3779b97f4a7c15);
        for v in [coord, kind] {
            h ^= v.wrapping_add(0x9e3779b97f4a7c15);
            h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
            h ^= h >> 31;
        }
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Supervision policy: how hard the service tries to keep a shard
/// alive before failing it over, and what recovery actions cost.
///
/// All costs are seconds on the service clock: wall seconds in the
/// live driver (the supervisor really backs off), virtual seconds
/// charged to the [`perfbudget::Category::FaultRecovery`] lane in the
/// simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorPolicy {
    /// Worker restarts allowed per shard before the shard is declared
    /// failed and its work re-routed to survivors.
    pub max_restarts: u32,
    /// Backoff charged before the first restart.
    pub backoff_base_s: f64,
    /// Multiplier applied to the backoff on each further restart.
    pub backoff_mult: f64,
    /// Seconds charged per re-queued or re-routed entry (the state
    /// handoff cost, billed to the FaultRecovery lane).
    pub requeue_s: f64,
    /// Supervisor health-check period in the live driver (wall
    /// seconds). The sim needs no polling — death is an event.
    pub poll_s: f64,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_restarts: 3,
            backoff_base_s: 1e-3,
            backoff_mult: 2.0,
            requeue_s: 5e-6,
            poll_s: 200e-6,
        }
    }
}

impl SupervisorPolicy {
    /// No supervision at all: a dead worker stays dead and is only
    /// discovered (and surfaced as a typed error) at shutdown.
    pub fn disabled() -> Self {
        SupervisorPolicy {
            max_restarts: 0,
            ..Self::default()
        }
    }

    /// Whether a supervisor runs (any restart budget at all).
    pub fn enabled(&self) -> bool {
        self.max_restarts > 0
    }

    /// Backoff charged before restart `restart` (1-based: the first
    /// restart waits the base backoff).
    pub fn backoff_s(&self, restart: u32) -> f64 {
        self.backoff_base_s * self.backoff_mult.powi(restart.saturating_sub(1) as i32)
    }

    /// Validate the policy. Returns a human-readable reason on failure.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("backoff_base_s", self.backoff_base_s),
            ("requeue_s", self.requeue_s),
            ("poll_s", self.poll_s),
        ] {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(format!("{name} = {v} must be finite and >= 0"));
            }
        }
        if !(self.backoff_mult >= 1.0 && self.backoff_mult.is_finite()) {
            return Err(format!(
                "backoff_mult = {} must be finite and >= 1",
                self.backoff_mult
            ));
        }
        Ok(())
    }
}

/// Degraded-mode serving: under reduced capacity, answer
/// lower-priority work with a bounded-error approximate response
/// instead of shipping the full pyramid (or rejecting outright).
///
/// The approximation is the `WaveletQuant` move from the checkpoint
/// codec: the LL plane ships exact, detail coefficients at or below
/// `threshold` are zeroed and survivors are quantized to `step`. The
/// per-coefficient error is bounded by `threshold + step / 2` — the
/// bound every degraded response carries and the chaos tests assert
/// end-to-end against the exact oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedPolicy {
    /// Detail magnitudes at or below this are zeroed.
    pub threshold: f64,
    /// Uniform quantizer step for surviving detail coefficients
    /// (`0.0` keeps survivors exact).
    pub step: f64,
    /// Queue depth (as a fraction of capacity, in `[0, 1]`) at or
    /// above which a healthy shard serves degraded. A shard covering
    /// for a failed peer serves degraded regardless.
    pub queue_high_water: f64,
}

impl Default for DegradedPolicy {
    fn default() -> Self {
        DegradedPolicy {
            threshold: 1e-2,
            step: 1e-2,
            queue_high_water: 0.75,
        }
    }
}

impl DegradedPolicy {
    /// Largest absolute error the degraded response can introduce into
    /// one detail coefficient (the LL plane is always exact).
    pub fn error_bound(&self) -> f64 {
        self.threshold + self.step / 2.0
    }

    /// Validate the policy. Returns a human-readable reason on failure.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [("threshold", self.threshold), ("step", self.step)] {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(format!("{name} = {v} must be finite and >= 0"));
            }
        }
        if !((0.0..=1.0).contains(&self.queue_high_water) && self.queue_high_water.is_finite()) {
            return Err(format!(
                "queue_high_water = {} outside [0, 1]",
                self.queue_high_water
            ));
        }
        Ok(())
    }
}

/// Hash-domain separator for the probabilistic bit-flip stream.
const KIND_WIRE_FLIP: u64 = 0x666c_6970; // "flip"
/// Hash-domain separator for the probabilistic reset stream.
const KIND_WIRE_RESET: u64 = 0x7273_6574; // "rset"
/// Hash-domain separator for bit-position entropy.
const KIND_WIRE_BITPOS: u64 = 0x6270_6f73; // "bpos"

/// Direction of a wire transfer, half of a fault coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireDir {
    /// Request path: client frames toward the server.
    ClientToServer = 0,
    /// Response path: server frames toward the client.
    ServerToClient = 1,
}

/// One scheduled wire fault, resolved by [`WireFaultPlan::decide`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireFault {
    /// Abortive close mid-frame: half the frame is sent, then both
    /// directions break. The peer observes a connection reset.
    Reset,
    /// Half the frame, then a clean FIN: the peer observes EOF
    /// mid-frame and types it as frame corruption.
    Truncate,
    /// One bit of the encoded frame flips in flight; the peer's
    /// checksum catches it. `entropy` seeds the bit position.
    BitFlip {
        /// Deterministic entropy; the injector reduces it modulo the
        /// frame's bit length to pick the flipped bit.
        entropy: u64,
    },
    /// The sender stalls `seconds` before the frame goes out (a
    /// congested or half-dead link).
    Stall {
        /// Stall duration: wall seconds in the live driver, virtual
        /// seconds charged by the simulator.
        seconds: f64,
    },
}

/// One literal wire-fault coordinate: connection `conn`, direction
/// `dir`, cumulative frame index `frame` (monotone across reconnects —
/// see `transport::WireClock`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireEvent {
    /// Connection id (the client-declared id from the handshake, so
    /// coordinates are stable across transports and runs).
    pub conn: u64,
    /// Transfer direction.
    pub dir: WireDir,
    /// Cumulative frame index on `(conn, dir)`.
    pub frame: u64,
}

/// A deterministic, seeded wire-fault schedule, the transport-level
/// sibling of [`ShardFaultPlan`]: literal events plus hashed rates, all
/// pure functions of the seed and a `(conn, dir, frame)` coordinate, so
/// the in-memory shim transport, the TCP transport and the closed-loop
/// simulator inject byte-identical fault sequences from the same seed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WireFaultPlan {
    seed: u64,
    resets: Vec<WireEvent>,
    truncates: Vec<WireEvent>,
    bitflips: Vec<WireEvent>,
    stalls: Vec<(WireEvent, f64)>,
    flip_rate: f64,
    reset_rate: f64,
}

impl WireFaultPlan {
    /// The empty plan: a perfect wire.
    pub fn none() -> Self {
        Self::default()
    }

    /// An empty plan carrying `seed` for the probabilistic streams.
    pub fn seeded(seed: u64) -> Self {
        WireFaultPlan {
            seed,
            ..Self::default()
        }
    }

    /// Schedule an abortive reset mid-frame at `(conn, dir, frame)`.
    pub fn with_reset(mut self, conn: u64, dir: WireDir, frame: u64) -> Self {
        self.resets.push(WireEvent { conn, dir, frame });
        self
    }

    /// Schedule a truncated frame (partial bytes, then clean FIN).
    pub fn with_truncate(mut self, conn: u64, dir: WireDir, frame: u64) -> Self {
        self.truncates.push(WireEvent { conn, dir, frame });
        self
    }

    /// Schedule a single-bit corruption caught by the peer's checksum.
    pub fn with_bitflip(mut self, conn: u64, dir: WireDir, frame: u64) -> Self {
        self.bitflips.push(WireEvent { conn, dir, frame });
        self
    }

    /// Schedule a `seconds` stall before the frame is sent.
    pub fn with_stall(mut self, conn: u64, dir: WireDir, frame: u64, seconds: f64) -> Self {
        self.stalls.push((WireEvent { conn, dir, frame }, seconds));
        self
    }

    /// Flip a bit in a seeded fraction of all frames.
    pub fn with_flip_rate(mut self, rate: f64) -> Self {
        self.flip_rate = rate;
        self
    }

    /// Abortively reset a seeded fraction of all frames mid-send.
    pub fn with_reset_rate(mut self, rate: f64) -> Self {
        self.reset_rate = rate;
        self
    }

    /// Whether the plan injects nothing (the fault-free fast path).
    pub fn is_empty(&self) -> bool {
        self.resets.is_empty()
            && self.truncates.is_empty()
            && self.bitflips.is_empty()
            && self.stalls.is_empty()
            && self.flip_rate == 0.0
            && self.reset_rate == 0.0
    }

    /// Validate the plan. Returns a human-readable reason on the first
    /// malformed entry.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("flip_rate", self.flip_rate),
            ("reset_rate", self.reset_rate),
        ] {
            if !((0.0..=1.0).contains(&rate) && rate.is_finite()) {
                return Err(format!("{name} = {rate} outside [0, 1]"));
            }
        }
        for (ev, s) in &self.stalls {
            if !(*s >= 0.0 && s.is_finite()) {
                return Err(format!(
                    "stall of {s} s at conn {} frame {} must be finite and >= 0",
                    ev.conn, ev.frame
                ));
            }
        }
        Ok(())
    }

    /// The fault (if any) scheduled for frame `frame` on `(conn, dir)`.
    /// Precedence when several match one coordinate: reset, truncate,
    /// bit-flip, stall — at most one fault fires per frame.
    pub fn decide(&self, conn: u64, dir: WireDir, frame: u64) -> Option<WireFault> {
        let hit = |evs: &[WireEvent]| {
            evs.iter()
                .any(|e| e.conn == conn && e.dir == dir && e.frame == frame)
        };
        let coord = wire_coord(conn, dir, frame);
        if hit(&self.resets)
            || (self.reset_rate > 0.0
                && decision(self.seed, KIND_WIRE_RESET, coord) < self.reset_rate)
        {
            return Some(WireFault::Reset);
        }
        if hit(&self.truncates) {
            return Some(WireFault::Truncate);
        }
        if hit(&self.bitflips)
            || (self.flip_rate > 0.0 && decision(self.seed, KIND_WIRE_FLIP, coord) < self.flip_rate)
        {
            return Some(WireFault::BitFlip {
                entropy: decision_bits(self.seed, KIND_WIRE_BITPOS, coord),
            });
        }
        self.stalls
            .iter()
            .find(|(e, _)| e.conn == conn && e.dir == dir && e.frame == frame)
            .map(|&(_, seconds)| WireFault::Stall { seconds })
    }
}

/// Fold a wire coordinate into one u64 for the decision hash.
fn wire_coord(conn: u64, dir: WireDir, frame: u64) -> u64 {
    let mut h = conn.wrapping_mul(0x9e3779b97f4a7c15) ^ ((dir as u64) << 63);
    h ^= frame.wrapping_add(0x9e3779b97f4a7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    h ^ (h >> 31)
}

/// Raw decision bits: the SplitMix64-finalizer stream shared with
/// [`ShardFaultPlan::decision`], exposed as a full-width value.
fn decision_bits(seed: u64, kind: u64, coord: u64) -> u64 {
    let mut h = seed ^ kind.wrapping_mul(0x9e3779b97f4a7c15);
    for v in [coord, kind] {
        h ^= v.wrapping_add(0x9e3779b97f4a7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
        h ^= h >> 31;
    }
    h
}

/// Uniform value in `[0, 1)` from the decision stream.
fn decision(seed: u64, kind: u64, coord: u64) -> f64 {
    (decision_bits(seed, kind, coord) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let p = ShardFaultPlan::none();
        assert!(p.is_empty());
        assert!(!p.worker_dies(0, 0));
        assert!(!p.permanently_crashed(1, 99));
        assert_eq!(p.stall_factor(2, 5), 1.0);
        assert!(!p.poisoned(17));
        assert!(p.crashed_shards(4).is_empty());
        assert!(p.validate(4).is_ok());
    }

    #[test]
    fn panic_is_one_shot_and_crash_is_permanent() {
        let p = ShardFaultPlan::none()
            .with_worker_panic(1, 3)
            .with_shard_crash(2, 5);
        assert!(!p.worker_dies(1, 2));
        assert!(p.worker_dies(1, 3));
        assert!(!p.worker_dies(1, 4), "a panic fires exactly once");
        assert!(!p.worker_dies(2, 4));
        assert!(p.worker_dies(2, 5));
        assert!(p.worker_dies(2, 17), "a crash keeps firing");
        assert!(p.permanently_crashed(2, 9));
        assert!(!p.permanently_crashed(1, 9));
        assert_eq!(p.crashed_shards(4), vec![2]);
    }

    #[test]
    fn stall_windows_stack_like_slowdowns() {
        let p = ShardFaultPlan::none()
            .with_stall(0, 2.0, 2, 6)
            .with_stall(0, 3.0, 4, 8);
        assert_eq!(p.stall_factor(0, 1), 1.0);
        assert_eq!(p.stall_factor(0, 2), 2.0);
        assert_eq!(p.stall_factor(0, 5), 6.0);
        assert_eq!(p.stall_factor(0, 7), 3.0);
        assert_eq!(p.stall_factor(1, 5), 1.0);
    }

    #[test]
    fn poison_decisions_are_deterministic_and_seed_sensitive() {
        let a = ShardFaultPlan::seeded(42).with_poison_rate(0.3);
        let b = ShardFaultPlan::seeded(42).with_poison_rate(0.3);
        let c = ShardFaultPlan::seeded(43).with_poison_rate(0.3);
        let va: Vec<bool> = (0..256).map(|id| a.poisoned(id)).collect();
        let vb: Vec<bool> = (0..256).map(|id| b.poisoned(id)).collect();
        let vc: Vec<bool> = (0..256).map(|id| c.poisoned(id)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc, "different seeds must differ somewhere");
        let rate = va.iter().filter(|&&x| x).count() as f64 / 256.0;
        assert!((rate - 0.3).abs() < 0.12, "empirical poison rate {rate}");
        assert!(ShardFaultPlan::none().with_poison(9).poisoned(9));
    }

    #[test]
    fn supervisor_backoff_grows_exponentially() {
        let s = SupervisorPolicy {
            max_restarts: 4,
            backoff_base_s: 1e-3,
            backoff_mult: 2.0,
            ..SupervisorPolicy::default()
        };
        assert!((s.backoff_s(1) - 1e-3).abs() < 1e-15);
        assert!((s.backoff_s(2) - 2e-3).abs() < 1e-15);
        assert!((s.backoff_s(3) - 4e-3).abs() < 1e-15);
        assert!(s.enabled());
        assert!(!SupervisorPolicy::disabled().enabled());
    }

    #[test]
    fn validation_rejects_malformed_plans_and_policies() {
        assert!(ShardFaultPlan::none()
            .with_worker_panic(4, 0)
            .validate(4)
            .is_err());
        assert!(ShardFaultPlan::none()
            .with_shard_crash(9, 0)
            .validate(4)
            .is_err());
        assert!(ShardFaultPlan::none()
            .with_stall(0, 0.5, 0, 1)
            .validate(4)
            .is_err());
        assert!(ShardFaultPlan::none()
            .with_stall(0, 2.0, 3, 3)
            .validate(4)
            .is_err());
        assert!(ShardFaultPlan::none()
            .with_poison_rate(1.5)
            .validate(4)
            .is_err());
        assert!(SupervisorPolicy {
            backoff_mult: 0.5,
            ..SupervisorPolicy::default()
        }
        .validate()
        .is_err());
        assert!(SupervisorPolicy {
            backoff_base_s: f64::NAN,
            ..SupervisorPolicy::default()
        }
        .validate()
        .is_err());
        assert!(DegradedPolicy {
            threshold: -1.0,
            ..DegradedPolicy::default()
        }
        .validate()
        .is_err());
        assert!(DegradedPolicy {
            queue_high_water: 2.0,
            ..DegradedPolicy::default()
        }
        .validate()
        .is_err());
        assert!(DegradedPolicy::default().validate().is_ok());
    }

    #[test]
    fn wire_plan_decides_deterministically_with_precedence() {
        let p = WireFaultPlan::seeded(1996)
            .with_reset(1, WireDir::ClientToServer, 3)
            .with_truncate(1, WireDir::ClientToServer, 3)
            .with_bitflip(1, WireDir::ServerToClient, 0)
            .with_stall(2, WireDir::ClientToServer, 5, 0.25);
        assert!(!p.is_empty());
        assert!(p.validate().is_ok());
        // Reset outranks the truncate scheduled at the same coordinate.
        assert_eq!(
            p.decide(1, WireDir::ClientToServer, 3),
            Some(WireFault::Reset)
        );
        assert!(matches!(
            p.decide(1, WireDir::ServerToClient, 0),
            Some(WireFault::BitFlip { .. })
        ));
        assert_eq!(
            p.decide(2, WireDir::ClientToServer, 5),
            Some(WireFault::Stall { seconds: 0.25 })
        );
        // Directions are independent coordinates.
        assert_eq!(p.decide(1, WireDir::ServerToClient, 3), None);
        assert_eq!(p.decide(1, WireDir::ClientToServer, 4), None);
        assert_eq!(
            WireFaultPlan::none().decide(0, WireDir::ClientToServer, 0),
            None
        );
    }

    #[test]
    fn wire_rates_are_seed_stable_and_roughly_calibrated() {
        let a = WireFaultPlan::seeded(7).with_flip_rate(0.2);
        let b = WireFaultPlan::seeded(7).with_flip_rate(0.2);
        let c = WireFaultPlan::seeded(8).with_flip_rate(0.2);
        let sample = |p: &WireFaultPlan| -> Vec<bool> {
            (0..512)
                .map(|i| p.decide(3, WireDir::ClientToServer, i).is_some())
                .collect()
        };
        assert_eq!(sample(&a), sample(&b));
        assert_ne!(sample(&a), sample(&c));
        let rate = sample(&a).iter().filter(|&&x| x).count() as f64 / 512.0;
        assert!((rate - 0.2).abs() < 0.1, "empirical flip rate {rate}");
    }

    #[test]
    fn wire_plan_validation_rejects_bad_rates_and_stalls() {
        assert!(WireFaultPlan::none()
            .with_flip_rate(1.5)
            .validate()
            .is_err());
        assert!(WireFaultPlan::none()
            .with_reset_rate(-0.1)
            .validate()
            .is_err());
        assert!(WireFaultPlan::none()
            .with_stall(0, WireDir::ClientToServer, 0, f64::NAN)
            .validate()
            .is_err());
        assert!(WireFaultPlan::none()
            .with_stall(0, WireDir::ClientToServer, 0, -1.0)
            .validate()
            .is_err());
        assert!(WireFaultPlan::none().validate().is_ok());
    }

    #[test]
    fn degraded_error_bound_matches_the_codec_vocabulary() {
        let d = DegradedPolicy {
            threshold: 0.5,
            step: 0.2,
            queue_high_water: 0.5,
        };
        assert!((d.error_bound() - 0.6).abs() < 1e-15);
    }
}
