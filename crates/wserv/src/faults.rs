//! Deterministic fault injection for the serving layer, plus the
//! policies that survive it.
//!
//! A [`ShardFaultPlan`] lifts the PR-2 fault model (seeded, pre-computed
//! schedules — no wall clock, no mutable RNG) from the SPMD simulators
//! into `wserv`. Every injection decision is either an explicit literal
//! event or a pure hash of the plan seed and a canonical coordinate, so
//! the discrete-event chaos simulator replays byte-identically from the
//! seed and the live threaded driver injects the *same* faults at the
//! same shard-local dispatch indices.
//!
//! Injected fault classes:
//!
//! * **worker panics** — the shard's worker thread dies at the entry of
//!   one dispatch (a one-shot event; the supervisor restarts it);
//! * **permanent shard crashes** — the worker dies at *every* dispatch
//!   from an index on, so restarts keep failing until the supervisor's
//!   restart budget is exhausted and the shard is failed over;
//! * **stalls/slowdowns** — a dispatch window on one shard executes
//!   slower by a factor (a throttled or degraded core);
//! * **poison requests** — executing a specific request panics
//!   mid-batch, exercising the poisoned-batch quarantine (retry
//!   batchmates solo, quarantine the request that keeps killing
//!   workers).
//!
//! The survival machinery is configured by [`SupervisorPolicy`]
//! (restart budget, backoff, requeue cost) and [`DegradedPolicy`]
//! (bounded-error approximate responses under reduced capacity). Both
//! are clock-free and shared verbatim by the live server and the sim.

/// Hash-domain separator for the poison-request decision stream.
const KIND_POISON: u64 = 0x706f_6973; // "pois"

/// One-shot worker death: shard `shard`'s worker panics at the entry of
/// its `at_dispatch`-th dispatch (shard-local, 0-based, monotonically
/// increasing across restarts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPanic {
    /// The affected shard.
    pub shard: usize,
    /// The shard-local dispatch index at whose entry the worker dies.
    pub at_dispatch: u64,
}

/// Permanent shard crash: the worker dies at the entry of every
/// dispatch with index `>= at_dispatch`, so each supervisor restart
/// dies again until the restart budget is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardCrash {
    /// The affected shard.
    pub shard: usize,
    /// First dispatch index at which the worker dies (and keeps dying).
    pub at_dispatch: u64,
}

/// Shard slowdown: dispatches with index in `[from_dispatch,
/// to_dispatch)` execute `factor`× slower.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStall {
    /// The affected shard.
    pub shard: usize,
    /// Execution-time multiplier (> 1 slows the shard down).
    pub factor: f64,
    /// First affected dispatch index.
    pub from_dispatch: u64,
    /// One past the last affected dispatch index.
    pub to_dispatch: u64,
}

/// A deterministic, seeded shard-fault schedule. See the module docs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShardFaultPlan {
    seed: u64,
    panics: Vec<WorkerPanic>,
    crashes: Vec<ShardCrash>,
    stalls: Vec<ShardStall>,
    poison_ids: Vec<u64>,
    poison_rate: f64,
}

impl ShardFaultPlan {
    /// The empty plan: no faults, zero overhead.
    pub fn none() -> Self {
        Self::default()
    }

    /// An empty plan carrying `seed` for the probabilistic streams.
    pub fn seeded(seed: u64) -> Self {
        ShardFaultPlan {
            seed,
            ..Self::default()
        }
    }

    /// Add a one-shot worker panic on `shard` at dispatch `at_dispatch`.
    pub fn with_worker_panic(mut self, shard: usize, at_dispatch: u64) -> Self {
        self.panics.push(WorkerPanic { shard, at_dispatch });
        self
    }

    /// Add a permanent crash of `shard` from dispatch `at_dispatch` on.
    pub fn with_shard_crash(mut self, shard: usize, at_dispatch: u64) -> Self {
        self.crashes.push(ShardCrash { shard, at_dispatch });
        self
    }

    /// Add a `factor`× slowdown of `shard` over dispatches `[from, to)`.
    pub fn with_stall(mut self, shard: usize, factor: f64, from: u64, to: u64) -> Self {
        self.stalls.push(ShardStall {
            shard,
            factor,
            from_dispatch: from,
            to_dispatch: to,
        });
        self
    }

    /// Poison the request with service-wide id `id`: executing it
    /// panics the worker (inside the quarantine guard).
    pub fn with_poison(mut self, id: u64) -> Self {
        self.poison_ids.push(id);
        self
    }

    /// Poison a seeded fraction of all requests (decision hashed from
    /// the seed and the request id).
    pub fn with_poison_rate(mut self, rate: f64) -> Self {
        self.poison_rate = rate;
        self
    }

    /// Whether the plan injects nothing (the fault-free fast path).
    pub fn is_empty(&self) -> bool {
        self.panics.is_empty()
            && self.crashes.is_empty()
            && self.stalls.is_empty()
            && self.poison_ids.is_empty()
            && self.poison_rate == 0.0
    }

    /// Validate against a shard count. Returns a human-readable reason
    /// on the first malformed entry.
    pub fn validate(&self, nshards: usize) -> Result<(), String> {
        if !((0.0..=1.0).contains(&self.poison_rate) && self.poison_rate.is_finite()) {
            return Err(format!("poison rate {} outside [0, 1]", self.poison_rate));
        }
        for p in &self.panics {
            if p.shard >= nshards {
                return Err(format!(
                    "panic on shard {} with only {nshards} shards",
                    p.shard
                ));
            }
        }
        for c in &self.crashes {
            if c.shard >= nshards {
                return Err(format!(
                    "crash of shard {} with only {nshards} shards",
                    c.shard
                ));
            }
        }
        for s in &self.stalls {
            if s.shard >= nshards {
                return Err(format!(
                    "stall on shard {} with only {nshards} shards",
                    s.shard
                ));
            }
            if !(s.factor >= 1.0 && s.factor.is_finite()) {
                return Err(format!("stall factor {} must be finite and >= 1", s.factor));
            }
            if s.from_dispatch >= s.to_dispatch {
                return Err(format!(
                    "stall window [{}, {}) is empty",
                    s.from_dispatch, s.to_dispatch
                ));
            }
        }
        Ok(())
    }

    /// Whether the worker of `shard` dies at the entry of dispatch
    /// `dispatch` (one-shot panic scheduled exactly there, or a
    /// permanent crash window covering it).
    pub fn worker_dies(&self, shard: usize, dispatch: u64) -> bool {
        self.panics
            .iter()
            .any(|p| p.shard == shard && p.at_dispatch == dispatch)
            || self.permanently_crashed(shard, dispatch)
    }

    /// Whether `shard` is inside a permanent-crash window at `dispatch`.
    pub fn permanently_crashed(&self, shard: usize, dispatch: u64) -> bool {
        self.crashes
            .iter()
            .any(|c| c.shard == shard && dispatch >= c.at_dispatch)
    }

    /// Shards with a permanent crash scheduled anywhere, ascending.
    pub fn crashed_shards(&self, nshards: usize) -> Vec<usize> {
        (0..nshards)
            .filter(|&s| self.crashes.iter().any(|c| c.shard == s))
            .collect()
    }

    /// Execution-time multiplier for `shard` at dispatch `dispatch`
    /// (product of all active stall windows; 1.0 when none).
    pub fn stall_factor(&self, shard: usize, dispatch: u64) -> f64 {
        self.stalls
            .iter()
            .filter(|s| s.shard == shard && (s.from_dispatch..s.to_dispatch).contains(&dispatch))
            .map(|s| s.factor)
            .product()
    }

    /// Whether executing the request with service-wide id `id` panics.
    pub fn poisoned(&self, id: u64) -> bool {
        if self.poison_ids.contains(&id) {
            return true;
        }
        self.poison_rate > 0.0 && self.decision(KIND_POISON, id) < self.poison_rate
    }

    /// The pure decision function: a uniform value in `[0, 1)` derived
    /// from the seed and a coordinate. SplitMix64 finalizer — the same
    /// construction `paragon::faults` uses.
    fn decision(&self, kind: u64, coord: u64) -> f64 {
        let mut h = self.seed ^ kind.wrapping_mul(0x9e3779b97f4a7c15);
        for v in [coord, kind] {
            h ^= v.wrapping_add(0x9e3779b97f4a7c15);
            h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
            h ^= h >> 31;
        }
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Supervision policy: how hard the service tries to keep a shard
/// alive before failing it over, and what recovery actions cost.
///
/// All costs are seconds on the service clock: wall seconds in the
/// live driver (the supervisor really backs off), virtual seconds
/// charged to the [`perfbudget::Category::FaultRecovery`] lane in the
/// simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorPolicy {
    /// Worker restarts allowed per shard before the shard is declared
    /// failed and its work re-routed to survivors.
    pub max_restarts: u32,
    /// Backoff charged before the first restart.
    pub backoff_base_s: f64,
    /// Multiplier applied to the backoff on each further restart.
    pub backoff_mult: f64,
    /// Seconds charged per re-queued or re-routed entry (the state
    /// handoff cost, billed to the FaultRecovery lane).
    pub requeue_s: f64,
    /// Supervisor health-check period in the live driver (wall
    /// seconds). The sim needs no polling — death is an event.
    pub poll_s: f64,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_restarts: 3,
            backoff_base_s: 1e-3,
            backoff_mult: 2.0,
            requeue_s: 5e-6,
            poll_s: 200e-6,
        }
    }
}

impl SupervisorPolicy {
    /// No supervision at all: a dead worker stays dead and is only
    /// discovered (and surfaced as a typed error) at shutdown.
    pub fn disabled() -> Self {
        SupervisorPolicy {
            max_restarts: 0,
            ..Self::default()
        }
    }

    /// Whether a supervisor runs (any restart budget at all).
    pub fn enabled(&self) -> bool {
        self.max_restarts > 0
    }

    /// Backoff charged before restart `restart` (1-based: the first
    /// restart waits the base backoff).
    pub fn backoff_s(&self, restart: u32) -> f64 {
        self.backoff_base_s * self.backoff_mult.powi(restart.saturating_sub(1) as i32)
    }

    /// Validate the policy. Returns a human-readable reason on failure.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("backoff_base_s", self.backoff_base_s),
            ("requeue_s", self.requeue_s),
            ("poll_s", self.poll_s),
        ] {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(format!("{name} = {v} must be finite and >= 0"));
            }
        }
        if !(self.backoff_mult >= 1.0 && self.backoff_mult.is_finite()) {
            return Err(format!(
                "backoff_mult = {} must be finite and >= 1",
                self.backoff_mult
            ));
        }
        Ok(())
    }
}

/// Degraded-mode serving: under reduced capacity, answer
/// lower-priority work with a bounded-error approximate response
/// instead of shipping the full pyramid (or rejecting outright).
///
/// The approximation is the `WaveletQuant` move from the checkpoint
/// codec: the LL plane ships exact, detail coefficients at or below
/// `threshold` are zeroed and survivors are quantized to `step`. The
/// per-coefficient error is bounded by `threshold + step / 2` — the
/// bound every degraded response carries and the chaos tests assert
/// end-to-end against the exact oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedPolicy {
    /// Detail magnitudes at or below this are zeroed.
    pub threshold: f64,
    /// Uniform quantizer step for surviving detail coefficients
    /// (`0.0` keeps survivors exact).
    pub step: f64,
    /// Queue depth (as a fraction of capacity, in `[0, 1]`) at or
    /// above which a healthy shard serves degraded. A shard covering
    /// for a failed peer serves degraded regardless.
    pub queue_high_water: f64,
}

impl Default for DegradedPolicy {
    fn default() -> Self {
        DegradedPolicy {
            threshold: 1e-2,
            step: 1e-2,
            queue_high_water: 0.75,
        }
    }
}

impl DegradedPolicy {
    /// Largest absolute error the degraded response can introduce into
    /// one detail coefficient (the LL plane is always exact).
    pub fn error_bound(&self) -> f64 {
        self.threshold + self.step / 2.0
    }

    /// Validate the policy. Returns a human-readable reason on failure.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [("threshold", self.threshold), ("step", self.step)] {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(format!("{name} = {v} must be finite and >= 0"));
            }
        }
        if !((0.0..=1.0).contains(&self.queue_high_water) && self.queue_high_water.is_finite()) {
            return Err(format!(
                "queue_high_water = {} outside [0, 1]",
                self.queue_high_water
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let p = ShardFaultPlan::none();
        assert!(p.is_empty());
        assert!(!p.worker_dies(0, 0));
        assert!(!p.permanently_crashed(1, 99));
        assert_eq!(p.stall_factor(2, 5), 1.0);
        assert!(!p.poisoned(17));
        assert!(p.crashed_shards(4).is_empty());
        assert!(p.validate(4).is_ok());
    }

    #[test]
    fn panic_is_one_shot_and_crash_is_permanent() {
        let p = ShardFaultPlan::none()
            .with_worker_panic(1, 3)
            .with_shard_crash(2, 5);
        assert!(!p.worker_dies(1, 2));
        assert!(p.worker_dies(1, 3));
        assert!(!p.worker_dies(1, 4), "a panic fires exactly once");
        assert!(!p.worker_dies(2, 4));
        assert!(p.worker_dies(2, 5));
        assert!(p.worker_dies(2, 17), "a crash keeps firing");
        assert!(p.permanently_crashed(2, 9));
        assert!(!p.permanently_crashed(1, 9));
        assert_eq!(p.crashed_shards(4), vec![2]);
    }

    #[test]
    fn stall_windows_stack_like_slowdowns() {
        let p = ShardFaultPlan::none()
            .with_stall(0, 2.0, 2, 6)
            .with_stall(0, 3.0, 4, 8);
        assert_eq!(p.stall_factor(0, 1), 1.0);
        assert_eq!(p.stall_factor(0, 2), 2.0);
        assert_eq!(p.stall_factor(0, 5), 6.0);
        assert_eq!(p.stall_factor(0, 7), 3.0);
        assert_eq!(p.stall_factor(1, 5), 1.0);
    }

    #[test]
    fn poison_decisions_are_deterministic_and_seed_sensitive() {
        let a = ShardFaultPlan::seeded(42).with_poison_rate(0.3);
        let b = ShardFaultPlan::seeded(42).with_poison_rate(0.3);
        let c = ShardFaultPlan::seeded(43).with_poison_rate(0.3);
        let va: Vec<bool> = (0..256).map(|id| a.poisoned(id)).collect();
        let vb: Vec<bool> = (0..256).map(|id| b.poisoned(id)).collect();
        let vc: Vec<bool> = (0..256).map(|id| c.poisoned(id)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc, "different seeds must differ somewhere");
        let rate = va.iter().filter(|&&x| x).count() as f64 / 256.0;
        assert!((rate - 0.3).abs() < 0.12, "empirical poison rate {rate}");
        assert!(ShardFaultPlan::none().with_poison(9).poisoned(9));
    }

    #[test]
    fn supervisor_backoff_grows_exponentially() {
        let s = SupervisorPolicy {
            max_restarts: 4,
            backoff_base_s: 1e-3,
            backoff_mult: 2.0,
            ..SupervisorPolicy::default()
        };
        assert!((s.backoff_s(1) - 1e-3).abs() < 1e-15);
        assert!((s.backoff_s(2) - 2e-3).abs() < 1e-15);
        assert!((s.backoff_s(3) - 4e-3).abs() < 1e-15);
        assert!(s.enabled());
        assert!(!SupervisorPolicy::disabled().enabled());
    }

    #[test]
    fn validation_rejects_malformed_plans_and_policies() {
        assert!(ShardFaultPlan::none()
            .with_worker_panic(4, 0)
            .validate(4)
            .is_err());
        assert!(ShardFaultPlan::none()
            .with_shard_crash(9, 0)
            .validate(4)
            .is_err());
        assert!(ShardFaultPlan::none()
            .with_stall(0, 0.5, 0, 1)
            .validate(4)
            .is_err());
        assert!(ShardFaultPlan::none()
            .with_stall(0, 2.0, 3, 3)
            .validate(4)
            .is_err());
        assert!(ShardFaultPlan::none()
            .with_poison_rate(1.5)
            .validate(4)
            .is_err());
        assert!(SupervisorPolicy {
            backoff_mult: 0.5,
            ..SupervisorPolicy::default()
        }
        .validate()
        .is_err());
        assert!(SupervisorPolicy {
            backoff_base_s: f64::NAN,
            ..SupervisorPolicy::default()
        }
        .validate()
        .is_err());
        assert!(DegradedPolicy {
            threshold: -1.0,
            ..DegradedPolicy::default()
        }
        .validate()
        .is_err());
        assert!(DegradedPolicy {
            queue_high_water: 2.0,
            ..DegradedPolicy::default()
        }
        .validate()
        .is_err());
        assert!(DegradedPolicy::default().validate().is_ok());
    }

    #[test]
    fn degraded_error_bound_matches_the_codec_vocabulary() {
        let d = DegradedPolicy {
            threshold: 0.5,
            step: 0.2,
            queue_high_water: 0.5,
        };
        assert!((d.error_bound() - 0.6).abs() < 1e-15);
    }
}
