//! Counters and histograms every pipeline stage exports.
//!
//! The lane accounting deliberately reuses the [`perfbudget`]
//! vocabulary (the JNNIE overhead categories) instead of inventing a
//! serving-specific one, so a shard reads like a rank of the SPMD
//! simulators and the whole service rolls up into an ordinary
//! [`BudgetReport`]:
//!
//! * [`Category::Useful`] — transform compute (the work a direct engine
//!   call would also do);
//! * [`Category::UniqueRedundancy`] — plan/workspace construction on
//!   cache misses (serving-only work the cache exists to amortize);
//! * [`Category::DuplicationRedundancy`] — per-dispatch overhead
//!   (queue pop, batch formation, worker wakeup), amortized by batching;
//! * [`Category::Communication`] — response delivery;
//! * [`Category::ImbalanceWait`] — shard idle time;
//! * [`Category::FaultRecovery`] — queue seconds wasted by entries that
//!   were shed or expired (work admitted and then lost to overload, the
//!   serving layer's failure lane).

use perfbudget::{BudgetReport, Category, RankBudget};

/// Exact-sample histogram with deterministic nearest-rank quantiles.
///
/// Samples are stored rather than binned: the serving benches record at
/// most a few hundred thousand points, and exact storage keeps the
/// emitted percentiles a pure function of the inputs (a binned sketch
/// would make them a function of bin-edge tuning too).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
}

impl Histogram {
    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Nearest-rank quantile `q` in `[0, 1]` (0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }

    /// Absorb another histogram's samples.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
    }
}

/// Counters the admission queue maintains about itself.
#[derive(Debug, Clone, Default)]
pub struct QueueCounters {
    /// Requests accepted into the queue.
    pub accepted: u64,
    /// Rejections by [`crate::RejectKind`] bucket.
    pub rejected: [u64; 7],
    /// Queue depth sampled after every successful admission.
    pub depth: Histogram,
}

impl QueueCounters {
    /// Count one rejection.
    pub fn reject(&mut self, kind: crate::RejectKind) {
        self.rejected[kind as usize] += 1;
    }

    /// Total rejections across buckets.
    pub fn total_rejected(&self) -> u64 {
        self.rejected.iter().sum()
    }
}

/// Seconds of one dispatch attributed to each budget lane.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaneSplit {
    /// Per-dispatch overhead (pop, coalesce, wakeup).
    pub dispatch_s: f64,
    /// Plan/workspace construction (cache miss only).
    pub plan_s: f64,
    /// Transform compute.
    pub transform_s: f64,
    /// Response delivery.
    pub deliver_s: f64,
}

/// Everything one worker shard exports.
#[derive(Debug, Clone, Default)]
pub struct ShardMetrics {
    /// Admission-queue counters (absorbed from the queue at drain).
    pub queue: QueueCounters,
    /// Requests fully served.
    pub completed: u64,
    /// Engine dispatches (batches) executed.
    pub batches: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses (plan + workspace built).
    pub cache_misses: u64,
    /// Plans evicted by LRU pressure.
    pub cache_evictions: u64,
    /// Queue wait per completed request (dispatch start − arrival).
    pub wait: Histogram,
    /// Service time per dispatch.
    pub service: Histogram,
    /// End-to-end latency per completed request.
    pub latency: Histogram,
    /// Requests per dispatch.
    pub batch_occupancy: Histogram,
    /// Lane accounting in the shared `perfbudget` vocabulary.
    pub lanes: RankBudget,
    /// Total busy seconds (sum of dispatch service intervals).
    pub busy_s: f64,
    /// Worker restarts the supervisor performed for this shard.
    pub restarts: u64,
    /// Entries re-queued after a worker death or batch panic
    /// (including entries re-routed *away* from this shard at
    /// failover).
    pub requeued: u64,
    /// Requests quarantined by the poisoned-batch protocol.
    pub quarantined: u64,
    /// Requests answered with a degraded (bounded-error) response.
    pub degraded_served: u64,
    /// Entries migrated *into* this shard's queue by an elastic steal
    /// or split.
    pub stolen_in: u64,
    /// Entries migrated *out of* this shard's queue by an elastic
    /// steal or split.
    pub stolen_out: u64,
    /// Split actions that divided this shard's shape set.
    pub splits: u64,
    /// Merge actions that retired this shard back to the reserve.
    pub merges: u64,
    /// Whether the shard ended the run failed over (restart budget
    /// exhausted).
    pub failed: bool,
}

impl ShardMetrics {
    /// Record one executed dispatch: its service interval, the arrival
    /// times of the requests it carried, and the lane split.
    pub fn record_batch(&mut self, start: f64, end: f64, arrivals: &[f64], split: LaneSplit) {
        self.batches += 1;
        self.completed += arrivals.len() as u64;
        self.batch_occupancy.record(arrivals.len() as f64);
        self.service.record(end - start);
        for &a in arrivals {
            self.wait.record((start - a).max(0.0));
            self.latency.record((end - a).max(0.0));
        }
        self.busy_s += end - start;
        self.lanes
            .charge(Category::DuplicationRedundancy, split.dispatch_s);
        self.lanes.charge(Category::UniqueRedundancy, split.plan_s);
        self.lanes.charge(Category::Useful, split.transform_s);
        self.lanes.charge(Category::Communication, split.deliver_s);
    }

    /// Record queue seconds wasted by a shed or expired entry.
    pub fn record_lost(&mut self, wasted_s: f64) {
        self.lanes
            .charge(Category::FaultRecovery, wasted_s.max(0.0));
    }

    /// Record one worker restart and its backoff cost.
    pub fn record_restart(&mut self, backoff_s: f64) {
        self.restarts += 1;
        self.lanes
            .charge(Category::FaultRecovery, backoff_s.max(0.0));
    }

    /// Record one entry re-queued (or re-routed at failover) and the
    /// handoff cost charged for it.
    pub fn record_requeue(&mut self, requeue_s: f64) {
        self.requeued += 1;
        self.lanes
            .charge(Category::FaultRecovery, requeue_s.max(0.0));
    }

    /// Copy cache counters out of the shard's plan cache.
    pub fn absorb_cache(&mut self, cache: &crate::PlanCache) {
        self.cache_hits = cache.hits;
        self.cache_misses = cache.misses;
        self.cache_evictions = cache.evictions;
    }

    /// Close the shard's books at service-clock time `now`: idle time
    /// becomes the imbalance/wait lane and `now` the completion time.
    pub fn finalize(&mut self, now: f64) {
        self.finalize_active(now, now);
    }

    /// Close the books over an explicit active span — how a
    /// reserve-born elastic shard finalizes: it only owes idle time for
    /// the `active_s` seconds it was actually activated, not the whole
    /// run, so a split late in a run does not spuriously inflate the
    /// imbalance lane. `completion` is when its last activation window
    /// closed.
    pub fn finalize_active(&mut self, active_s: f64, completion: f64) {
        self.lanes
            .charge(Category::ImbalanceWait, (active_s - self.busy_s).max(0.0));
        self.lanes.completion = completion;
    }

    /// Cache hit rate over terminated lookups (0 with no lookups).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Counters the remote transport layer exports, merged across all
/// connections a [`crate::RemoteServer`] (or client) ever carried.
/// Serialization/framing seconds are charged to the
/// [`Category::Communication`] lane by the remote driver.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransportMetrics {
    /// Connections the server accepted and handshook.
    pub conns_accepted: u64,
    /// Half-open or mid-frame connections force-closed at drain after
    /// exhausting their grace window.
    pub conn_aborted: u64,
    /// Connections that ended in a reset (observed or injected).
    pub conn_reset: u64,
    /// Frames fully received and checksum-verified.
    pub frames_in: u64,
    /// Frames fully sent.
    pub frames_out: u64,
    /// Bytes taken off the wire.
    pub bytes_in: u64,
    /// Bytes put on the wire.
    pub bytes_out: u64,
    /// Frames rejected as corrupt (checksum, framing, or payload).
    pub frame_corrupt: u64,
    /// Frames rejected as over the receive window.
    pub frame_too_large: u64,
    /// Handshakes refused for speaking the wrong protocol.
    pub handshake_mismatch: u64,
    /// Duplicate submissions answered from the dedup registry instead
    /// of re-executed (the exactly-once replays).
    pub dedup_replays: u64,
    /// Progressive detail-plane frames sent (server) or applied
    /// (client).
    pub planes_sent: u64,
    /// Progressive sequences cut short by an honored Cancel.
    pub cancels_honored: u64,
    /// Seconds spent encoding/decoding frames (Communication lane).
    pub ser_s: f64,
}

impl TransportMetrics {
    /// Fold one connection's wire counters into the totals.
    pub fn absorb_wire(&mut self, stats: &crate::transport::WireStats) {
        self.frames_in += stats.frames_in;
        self.frames_out += stats.frames_out;
        self.bytes_in += stats.bytes_in;
        self.bytes_out += stats.bytes_out;
        self.ser_s += stats.ser_s;
    }

    /// Count one terminal transport error against its taxonomy bucket.
    pub fn count_error(&mut self, err: &crate::transport::TransportError) {
        use crate::transport::TransportError::*;
        match err {
            ConnReset => self.conn_reset += 1,
            FrameCorrupt { .. } => self.frame_corrupt += 1,
            FrameTooLarge { .. } => self.frame_too_large += 1,
            HandshakeMismatch { .. } => self.handshake_mismatch += 1,
            ConnTimeout { .. } | InvalidConfig { .. } => {}
        }
    }

    /// Merge another transport snapshot into this one.
    pub fn merge(&mut self, other: &TransportMetrics) {
        self.conns_accepted += other.conns_accepted;
        self.conn_aborted += other.conn_aborted;
        self.conn_reset += other.conn_reset;
        self.frames_in += other.frames_in;
        self.frames_out += other.frames_out;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.frame_corrupt += other.frame_corrupt;
        self.frame_too_large += other.frame_too_large;
        self.handshake_mismatch += other.handshake_mismatch;
        self.dedup_replays += other.dedup_replays;
        self.planes_sent += other.planes_sent;
        self.cancels_honored += other.cancels_honored;
        self.ser_s += other.ser_s;
    }
}

/// Final service-wide view: one [`ShardMetrics`] per shard.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Per-shard exports, indexed by shard.
    pub shards: Vec<ShardMetrics>,
}

impl MetricsSnapshot {
    /// Requests accepted across shards.
    pub fn accepted(&self) -> u64 {
        self.shards.iter().map(|s| s.queue.accepted).sum()
    }

    /// Requests fully served across shards.
    pub fn completed(&self) -> u64 {
        self.shards.iter().map(|s| s.completed).sum()
    }

    /// Rejections in one taxonomy bucket, across shards.
    pub fn rejected(&self, kind: crate::RejectKind) -> u64 {
        self.shards
            .iter()
            .map(|s| s.queue.rejected[kind as usize])
            .sum()
    }

    /// Cache hit rate across shards.
    pub fn cache_hit_rate(&self) -> f64 {
        let hits: u64 = self.shards.iter().map(|s| s.cache_hits).sum();
        let total: u64 = self
            .shards
            .iter()
            .map(|s| s.cache_hits + s.cache_misses)
            .sum();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Worker restarts across shards.
    pub fn restarts(&self) -> u64 {
        self.shards.iter().map(|s| s.restarts).sum()
    }

    /// Entries re-queued or re-routed across shards.
    pub fn requeued(&self) -> u64 {
        self.shards.iter().map(|s| s.requeued).sum()
    }

    /// Requests quarantined by the poisoned-batch protocol.
    pub fn quarantined(&self) -> u64 {
        self.shards.iter().map(|s| s.quarantined).sum()
    }

    /// Requests served degraded (bounded-error responses).
    pub fn degraded_served(&self) -> u64 {
        self.shards.iter().map(|s| s.degraded_served).sum()
    }

    /// Entries migrated between shards by elastic steal/split actions.
    /// In-migrations and out-migrations are counted by opposite ends of
    /// the same move, so the two totals always agree.
    pub fn stolen(&self) -> u64 {
        let stolen_in: u64 = self.shards.iter().map(|s| s.stolen_in).sum();
        debug_assert_eq!(
            stolen_in,
            self.shards.iter().map(|s| s.stolen_out).sum::<u64>(),
            "every migrated entry leaves one queue and enters another"
        );
        stolen_in
    }

    /// Split actions across shards.
    pub fn splits(&self) -> u64 {
        self.shards.iter().map(|s| s.splits).sum()
    }

    /// Merge actions across shards.
    pub fn merges(&self) -> u64 {
        self.shards.iter().map(|s| s.merges).sum()
    }

    /// Shards that ended the run failed over, ascending.
    pub fn failed_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(ix, s)| s.failed.then_some(ix))
            .collect()
    }

    /// Nearest-rank latency quantile over all completed requests.
    pub fn latency_quantile(&self, q: f64) -> f64 {
        let mut merged = Histogram::default();
        for s in &self.shards {
            merged.merge(&s.latency);
        }
        merged.quantile(q)
    }

    /// Mean requests per engine dispatch.
    pub fn mean_batch_occupancy(&self) -> f64 {
        let mut merged = Histogram::default();
        for s in &self.shards {
            merged.merge(&s.batch_occupancy);
        }
        merged.mean()
    }

    /// Roll the shards up as ranks of a [`BudgetReport`] — the serving
    /// layer speaks the same overhead language as the SPMD simulators.
    pub fn budget_report(&self) -> Option<BudgetReport> {
        let lanes: Vec<RankBudget> = self.shards.iter().map(|s| s.lanes).collect();
        BudgetReport::from_ranks(&lanes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_nearest_rank_and_deterministic() {
        let mut h = Histogram::default();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(0.5), 3.0);
        assert_eq!(h.quantile(1.0), 5.0);
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), 3.0);
        assert_eq!(Histogram::default().quantile(0.99), 0.0);
    }

    #[test]
    fn lanes_follow_the_perfbudget_vocabulary() {
        let mut m = ShardMetrics::default();
        m.record_batch(
            1.0,
            2.0,
            &[0.5, 0.75],
            LaneSplit {
                dispatch_s: 0.1,
                plan_s: 0.2,
                transform_s: 0.6,
                deliver_s: 0.1,
            },
        );
        m.record_lost(0.25);
        m.finalize(4.0);
        assert_eq!(m.completed, 2);
        assert!((m.lanes.useful - 0.6).abs() < 1e-12);
        assert!((m.lanes.unique_redundancy - 0.2).abs() < 1e-12);
        assert!((m.lanes.duplication - 0.1).abs() < 1e-12);
        assert!((m.lanes.fault_recovery - 0.25).abs() < 1e-12);
        assert!((m.lanes.wait - 3.0).abs() < 1e-12);
        assert_eq!(m.lanes.completion, 4.0);
        // The shared vocabulary is what rolls shards into a report.
        let snap = MetricsSnapshot { shards: vec![m] };
        let report = snap.budget_report().expect("one shard");
        assert!(report.useful_pct() > 0.0);
    }
}
