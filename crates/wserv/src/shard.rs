//! Shard routing and batch execution.
//!
//! Requests are routed by *shape*, not round-robin: every request with
//! a given [`PlanShape`] lands on the same shard, so each plan is built
//! (and cached) on exactly one shard and same-shape requests can always
//! coalesce. The router is a stable FNV-1a hash of the shape — a pure
//! function of the request, identical in the live server and the
//! simulator.

use std::hash::{Hash, Hasher};

use dwt::engine::PlanShape;
use dwt::Pyramid;

use crate::batch::Batch;
use crate::cache::PlanCache;

/// FNV-1a, used instead of the std `DefaultHasher` so shard routing is
/// stable by specification rather than by implementation accident.
struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// The stable 64-bit routing key of a shape: its FNV-1a hash. This is
/// the coordinate the elastic [`crate::elastic::ShardMap`] keys its
/// overrides and the [`crate::elastic::CostBook`] keys its estimates
/// by, so steal/split decisions and the default hash placement agree on
/// what "the same shape" means.
pub fn shape_key(shape: &PlanShape) -> u64 {
    let mut h = Fnv1a(0xcbf2_9ce4_8422_2325);
    shape.hash(&mut h);
    h.finish()
}

/// The shard a shape routes to, in `0..nshards`.
pub fn shard_of(shape: &PlanShape, nshards: usize) -> usize {
    (shape_key(shape) % nshards.max(1) as u64) as usize
}

/// Failover routing: the shape's home shard if it is alive, otherwise
/// the first live successor walking the shard ring. `None` when every
/// shard is down. Pure function of `(shape, alive)`, identical in the
/// live server and the chaos simulator — which is what makes failover
/// deterministic and replayable.
pub fn route(shape: &PlanShape, alive: &[bool]) -> Option<usize> {
    let n = alive.len();
    if n == 0 {
        return None;
    }
    let home = shard_of(shape, n);
    (0..n).map(|i| (home + i) % n).find(|&ix| alive[ix])
}

/// Outcome of executing one batch through a shard's plan cache.
#[derive(Debug)]
pub struct Executed {
    /// One pyramid per batch entry, in dispatch order. Bit-identical to
    /// direct [`dwt::engine::DwtPlan::decompose_into`] calls on the same
    /// inputs — batching and caching never change arithmetic.
    pub pyramids: Vec<Pyramid>,
    /// Whether the plan lookup hit the cache.
    pub cache_hit: bool,
}

/// Execute every request of `batch` with one cached plan.
pub fn execute<T>(cache: &mut PlanCache, batch: &Batch<T>) -> Result<Executed, String> {
    let bank = &batch.entries[0].req.bank;
    let cache_hit = cache.ensure(&batch.shape, bank)?;
    let cached = cache.entry_mut(&batch.shape);
    let mut pyramids = Vec::with_capacity(batch.len());
    for entry in &batch.entries {
        let mut pyr = cached.plan.make_pyramid();
        cached
            .plan
            .decompose_into(&entry.req.image, &mut cached.workspace, &mut pyr)
            .map_err(|e| e.to_string())?;
        pyramids.push(pyr);
        cached.uses += 1;
    }
    Ok(Executed {
        pyramids,
        cache_hit,
    })
}

/// Degrade one response pyramid in place, `WaveletQuant`-style: detail
/// magnitudes at or below the policy threshold are zeroed, survivors
/// are quantized to the policy step, and the LL plane is untouched.
/// The per-coefficient error versus the exact pyramid is bounded by
/// [`DegradedPolicy::error_bound`] by construction. Returns the number
/// of surviving (nonzero) detail coefficients, which is what the
/// delivery cost of a degraded response scales with.
pub fn degrade_pyramid(pyr: &mut Pyramid, policy: &crate::faults::DegradedPolicy) -> usize {
    let mut kept = 0;
    for bands in &mut pyr.detail {
        let (lh, hl, hh) = bands.split_mut();
        for plane in [lh, hl, hh] {
            for v in plane.data_mut() {
                if v.abs() <= policy.threshold {
                    *v = 0.0;
                } else if policy.step > 0.0 {
                    *v = (*v / policy.step).round() * policy.step;
                }
                if *v != 0.0 {
                    kept += 1;
                }
            }
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::DegradedPolicy;
    use dwt::{dwt2d, Boundary, FilterBank, Matrix};

    #[test]
    fn failover_walks_the_ring_to_the_first_survivor() {
        let bank = FilterBank::haar();
        let shape = PlanShape::new(16, 16, &bank, 1, Boundary::Periodic);
        let n = 4;
        let home = shard_of(&shape, n);
        let all_up = vec![true; n];
        assert_eq!(route(&shape, &all_up), Some(home));
        let mut home_down = vec![true; n];
        home_down[home] = false;
        assert_eq!(route(&shape, &home_down), Some((home + 1) % n));
        let mut two_down = vec![true; n];
        two_down[home] = false;
        two_down[(home + 1) % n] = false;
        assert_eq!(route(&shape, &two_down), Some((home + 2) % n));
        assert_eq!(route(&shape, &vec![false; n]), None);
        assert_eq!(route(&shape, &[]), None);
    }

    #[test]
    fn degraded_pyramid_stays_within_the_error_bound() {
        let img = Matrix::from_fn(16, 16, |r, c| ((r * 13 + c * 7) % 23) as f64 - 11.0);
        let bank = FilterBank::haar();
        let exact = dwt2d::decompose(&img, &bank, 2, Boundary::Periodic).unwrap();
        let policy = DegradedPolicy {
            threshold: 1.5,
            step: 0.5,
            queue_high_water: 0.5,
        };
        let mut degraded = exact.clone();
        let kept = degrade_pyramid(&mut degraded, &policy);
        // LL plane is exact.
        assert_eq!(degraded.approx, exact.approx);
        // Detail planes are within the asserted bound, and the
        // threshold really zeroed something.
        let bound = policy.error_bound();
        let mut zeroed = 0;
        for (d, e) in degraded.detail.iter().zip(exact.detail.iter()) {
            for (dp, ep) in [(&d.lh, &e.lh), (&d.hl, &e.hl), (&d.hh, &e.hh)] {
                for (a, b) in dp.data().iter().zip(ep.data().iter()) {
                    assert!((a - b).abs() <= bound + 1e-12, "{a} vs {b} exceeds {bound}");
                    if *a == 0.0 && *b != 0.0 {
                        zeroed += 1;
                    }
                }
            }
        }
        assert!(zeroed > 0, "threshold never fired — test inputs too tame");
        assert!(kept > 0, "everything zeroed — test inputs too tame");
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let bank = FilterBank::daubechies(4).unwrap();
        for n in [1usize, 2, 3, 8] {
            let mut seen = vec![false; n];
            for size in [8usize, 16, 32, 64, 128] {
                let s = PlanShape::new(size, size, &bank, 2, Boundary::Periodic);
                let shard = shard_of(&s, n);
                assert!(shard < n);
                assert_eq!(shard, shard_of(&s, n), "routing must be deterministic");
                seen[shard] = true;
            }
            if n == 1 {
                assert!(seen[0]);
            }
        }
    }
}
