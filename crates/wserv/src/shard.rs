//! Shard routing and batch execution.
//!
//! Requests are routed by *shape*, not round-robin: every request with
//! a given [`PlanShape`] lands on the same shard, so each plan is built
//! (and cached) on exactly one shard and same-shape requests can always
//! coalesce. The router is a stable FNV-1a hash of the shape — a pure
//! function of the request, identical in the live server and the
//! simulator.

use std::hash::{Hash, Hasher};

use dwt::engine::PlanShape;
use dwt::Pyramid;

use crate::batch::Batch;
use crate::cache::PlanCache;

/// FNV-1a, used instead of the std `DefaultHasher` so shard routing is
/// stable by specification rather than by implementation accident.
struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// The shard a shape routes to, in `0..nshards`.
pub fn shard_of(shape: &PlanShape, nshards: usize) -> usize {
    let mut h = Fnv1a(0xcbf2_9ce4_8422_2325);
    shape.hash(&mut h);
    (h.finish() % nshards.max(1) as u64) as usize
}

/// Outcome of executing one batch through a shard's plan cache.
#[derive(Debug)]
pub struct Executed {
    /// One pyramid per batch entry, in dispatch order. Bit-identical to
    /// direct [`dwt::engine::DwtPlan::decompose_into`] calls on the same
    /// inputs — batching and caching never change arithmetic.
    pub pyramids: Vec<Pyramid>,
    /// Whether the plan lookup hit the cache.
    pub cache_hit: bool,
}

/// Execute every request of `batch` with one cached plan.
pub fn execute<T>(cache: &mut PlanCache, batch: &Batch<T>) -> Result<Executed, String> {
    let bank = &batch.entries[0].req.bank;
    let cache_hit = cache.ensure(&batch.shape, bank)?;
    let cached = cache.entry_mut(&batch.shape);
    let mut pyramids = Vec::with_capacity(batch.len());
    for entry in &batch.entries {
        let mut pyr = cached.plan.make_pyramid();
        cached
            .plan
            .decompose_into(&entry.req.image, &mut cached.workspace, &mut pyr)
            .map_err(|e| e.to_string())?;
        pyramids.push(pyr);
        cached.uses += 1;
    }
    Ok(Executed {
        pyramids,
        cache_hit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwt::{Boundary, FilterBank};

    #[test]
    fn routing_is_stable_and_in_range() {
        let bank = FilterBank::daubechies(4).unwrap();
        for n in [1usize, 2, 3, 8] {
            let mut seen = vec![false; n];
            for size in [8usize, 16, 32, 64, 128] {
                let s = PlanShape::new(size, size, &bank, 2, Boundary::Periodic);
                let shard = shard_of(&s, n);
                assert!(shard < n);
                assert_eq!(shard, shard_of(&s, n), "routing must be deterministic");
                seen[shard] = true;
            }
            if n == 1 {
                assert!(seen[0]);
            }
        }
    }
}
