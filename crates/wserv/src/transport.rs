//! Byte transports and framed I/O for remote `wserv`.
//!
//! Two transports sit behind one [`Transport`] trait:
//!
//! * [`TcpTransport`] — localhost TCP via `std::net`, the real wire;
//! * the in-memory bounded duplex pipe from [`mem_pair`] /
//!   [`MemListener`] — same semantics (backpressure, half-close, EOF,
//!   abortive reset) with no sockets, so the whole remote stack builds
//!   and tests in sandboxes with no network at all.
//!
//! [`FrameIo`] layers the wire protocol ([`crate::wire`]) on top of
//! either: incremental frame decode on the receive side, and — on the
//! send side — deterministic fault injection from a seeded
//! [`WireFaultPlan`]. Fault coordinates are `(connection id, direction,
//! cumulative frame index)`; the cumulative counters live in a shared
//! [`WireClock`] so they survive reconnects and a one-shot fault stays
//! one-shot across the retry that follows it.
//!
//! Every failure surfaces as a typed [`TransportError`]; the taxonomy
//! is part of the API and each variant implements `Display` +
//! `std::error::Error`.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::faults::{WireDir, WireFault, WireFaultPlan};
use crate::wire::{decode_frame, encode_frame, Frame, WireError, DEFAULT_MAX_PAYLOAD};

/// Typed transport failure. The taxonomy every remote caller matches
/// on; all variants are terminal for the connection they occur on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer went away abortively (reset mid-frame, broken pipe, or
    /// an injected reset). Idempotent work is safe to resubmit on a
    /// fresh connection.
    ConnReset,
    /// No bytes arrived within the caller's patience window.
    ConnTimeout {
        /// How long the caller waited, in milliseconds (integral so
        /// the error stays `Eq` and hashable).
        waited_ms: u64,
    },
    /// A frame declared a payload larger than the receive window.
    FrameTooLarge {
        /// Declared payload length.
        len: u64,
        /// The receive window it exceeded.
        max: u64,
    },
    /// The byte stream stopped being a frame stream: bad magic or
    /// version, checksum mismatch, truncated frame at EOF, or a payload
    /// that does not parse. Framing is unrecoverable past this point.
    FrameCorrupt {
        /// Human-readable cause.
        detail: String,
    },
    /// The peer speaks a different protocol or violated the handshake
    /// sequence. Retrying will not help.
    HandshakeMismatch {
        /// Human-readable cause.
        detail: String,
    },
    /// The caller's own configuration is unusable (e.g. a retry policy
    /// with zero attempts). Purely local; nothing was sent.
    InvalidConfig {
        /// Human-readable cause.
        detail: String,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::ConnReset => write!(f, "connection reset by peer"),
            TransportError::ConnTimeout { waited_ms } => {
                write!(f, "connection timed out after {waited_ms} ms")
            }
            TransportError::FrameTooLarge { len, max } => {
                write!(
                    f,
                    "frame payload {len} B exceeds the {max} B receive window"
                )
            }
            TransportError::FrameCorrupt { detail } => write!(f, "corrupt frame: {detail}"),
            TransportError::HandshakeMismatch { detail } => {
                write!(f, "handshake mismatch: {detail}")
            }
            TransportError::InvalidConfig { detail } => {
                write!(f, "invalid configuration: {detail}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::FrameCorrupt { detail } => TransportError::FrameCorrupt { detail },
            WireError::FrameTooLarge { len, max } => TransportError::FrameTooLarge { len, max },
        }
    }
}

/// Outcome of one byte-level receive attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recv {
    /// `n` bytes arrived.
    Data(usize),
    /// The peer half-closed its sending side (clean FIN).
    Eof,
    /// Nothing arrived within one poll tick; the stream is still open.
    /// Callers use the tick to re-check drain flags and deadlines.
    Idle,
}

/// A bidirectional byte stream: the minimal surface the frame layer
/// needs, implemented by TCP and by the in-memory pipe.
pub trait Transport: Send {
    /// Write all of `bytes`, blocking on backpressure. A send into a
    /// closed or reset stream is [`TransportError::ConnReset`].
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError>;

    /// Read up to `buf.len()` bytes, blocking at most one poll tick.
    fn recv(&mut self, buf: &mut [u8]) -> Result<Recv, TransportError>;

    /// Half-close: flush and FIN the sending side; the peer's reads
    /// drain what was sent, then see [`Recv::Eof`].
    fn shutdown_write(&mut self);

    /// Abortive close of both directions — the peer observes a reset,
    /// not a clean EOF. Used by injected [`WireFault::Reset`] and by
    /// drain when a half-open connection exhausts its grace.
    fn abort(&mut self);

    /// A second handle onto the same connection, so a reader thread and
    /// a writer thread can share it without a lock. `None` if the
    /// transport cannot be duplicated (the connection is then driven
    /// single-threaded).
    fn try_clone(&self) -> Option<Box<dyn Transport>>;
}

// ---------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------

/// Localhost TCP implementation of [`Transport`].
pub struct TcpTransport {
    stream: TcpStream,
    aborted: bool,
}

impl TcpTransport {
    /// Wrap a connected stream, arming it with `tick` as the read poll
    /// period and a generous write timeout (writes only stall under
    /// pathological backpressure; the bound keeps drain finite).
    pub fn new(stream: TcpStream, tick: Duration) -> Result<Self, TransportError> {
        stream
            .set_nodelay(true)
            .map_err(|_| TransportError::ConnReset)?;
        stream
            .set_read_timeout(Some(tick))
            .map_err(|_| TransportError::ConnReset)?;
        stream
            .set_write_timeout(Some(Duration::from_secs(10)))
            .map_err(|_| TransportError::ConnReset)?;
        Ok(TcpTransport {
            stream,
            aborted: false,
        })
    }

    /// Connect to `addr` and arm timeouts as [`TcpTransport::new`].
    pub fn connect(addr: SocketAddr, tick: Duration) -> Result<Self, TransportError> {
        let stream = TcpStream::connect(addr).map_err(|_| TransportError::ConnReset)?;
        TcpTransport::new(stream, tick)
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        if self.aborted {
            return Err(TransportError::ConnReset);
        }
        self.stream
            .write_all(bytes)
            .map_err(|_| TransportError::ConnReset)
    }

    fn recv(&mut self, buf: &mut [u8]) -> Result<Recv, TransportError> {
        if self.aborted {
            return Err(TransportError::ConnReset);
        }
        match self.stream.read(buf) {
            Ok(0) => Ok(Recv::Eof),
            Ok(n) => Ok(Recv::Data(n)),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                Ok(Recv::Idle)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(Recv::Idle),
            Err(_) => Err(TransportError::ConnReset),
        }
    }

    fn shutdown_write(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Write);
    }

    fn abort(&mut self) {
        // Dropping with unread inbound bytes makes the kernel RST; a
        // plain both-ways shutdown is the closest portable gesture.
        self.aborted = true;
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    fn try_clone(&self) -> Option<Box<dyn Transport>> {
        self.stream.try_clone().ok().map(|stream| {
            Box::new(TcpTransport {
                stream,
                aborted: self.aborted,
            }) as Box<dyn Transport>
        })
    }
}

// ---------------------------------------------------------------------
// In-memory bounded duplex pipe
// ---------------------------------------------------------------------

struct PipeState {
    buf: VecDeque<u8>,
    write_closed: bool,
    broken: bool,
}

struct Pipe {
    state: Mutex<PipeState>,
    capacity: usize,
    readable: Condvar,
    writable: Condvar,
}

impl Pipe {
    fn new(capacity: usize) -> Arc<Pipe> {
        Arc::new(Pipe {
            state: Mutex::new(PipeState {
                buf: VecDeque::new(),
                write_closed: false,
                broken: false,
            }),
            capacity,
            readable: Condvar::new(),
            writable: Condvar::new(),
        })
    }
}

/// One end of an in-memory duplex byte pipe. Each direction is a
/// bounded ring of `capacity` bytes, so a slow reader backpressures the
/// writer exactly like a full TCP send buffer would.
pub struct MemTransport {
    tx: Arc<Pipe>,
    rx: Arc<Pipe>,
    tick: Duration,
}

/// Build a connected duplex pair: what one end sends the other
/// receives. `capacity` bounds each direction's in-flight bytes (the
/// backpressure window); `tick` is the receive poll period.
pub fn mem_pair(capacity: usize, tick: Duration) -> (MemTransport, MemTransport) {
    let a = Pipe::new(capacity);
    let b = Pipe::new(capacity);
    (
        MemTransport {
            tx: Arc::clone(&a),
            rx: Arc::clone(&b),
            tick,
        },
        MemTransport { tx: b, rx: a, tick },
    )
}

impl Transport for MemTransport {
    fn send(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        let mut sent = 0;
        while sent < bytes.len() {
            let mut st = self.tx.state.lock();
            if st.broken {
                return Err(TransportError::ConnReset);
            }
            if st.write_closed {
                return Err(TransportError::ConnReset);
            }
            let room = self.tx.capacity.saturating_sub(st.buf.len());
            if room == 0 {
                // Backpressured: park until the reader drains bytes or
                // the pipe breaks. The tick keeps the wait responsive
                // to aborts without spinning.
                self.tx.writable.wait_for(&mut st, self.tick);
                continue;
            }
            let n = room.min(bytes.len() - sent);
            st.buf.extend(&bytes[sent..sent + n]);
            sent += n;
            self.tx.readable.notify_all();
        }
        Ok(())
    }

    fn recv(&mut self, buf: &mut [u8]) -> Result<Recv, TransportError> {
        let mut st = self.rx.state.lock();
        if st.buf.is_empty() {
            if st.broken {
                return Err(TransportError::ConnReset);
            }
            if st.write_closed {
                return Ok(Recv::Eof);
            }
            if self.rx.readable.wait_for(&mut st, self.tick) && st.buf.is_empty() {
                return if st.broken {
                    Err(TransportError::ConnReset)
                } else if st.write_closed {
                    Ok(Recv::Eof)
                } else {
                    Ok(Recv::Idle)
                };
            }
            if st.buf.is_empty() {
                // Woken without bytes: closed or broken state changed.
                return if st.broken {
                    Err(TransportError::ConnReset)
                } else if st.write_closed {
                    Ok(Recv::Eof)
                } else {
                    Ok(Recv::Idle)
                };
            }
        }
        let n = buf.len().min(st.buf.len());
        for slot in buf.iter_mut().take(n) {
            *slot = st.buf.pop_front().expect("len checked");
        }
        self.rx.writable.notify_all();
        Ok(Recv::Data(n))
    }

    fn shutdown_write(&mut self) {
        let mut st = self.tx.state.lock();
        st.write_closed = true;
        self.tx.readable.notify_all();
    }

    fn abort(&mut self) {
        for pipe in [&self.tx, &self.rx] {
            let mut st = pipe.state.lock();
            st.broken = true;
            pipe.readable.notify_all();
            pipe.writable.notify_all();
        }
    }

    fn try_clone(&self) -> Option<Box<dyn Transport>> {
        Some(Box::new(MemTransport {
            tx: Arc::clone(&self.tx),
            rx: Arc::clone(&self.rx),
            tick: self.tick,
        }))
    }
}

/// Accept side of the in-memory transport: clients [`MemListener::connect`],
/// the server accepts the other end of each pair.
#[derive(Clone)]
pub struct MemListener {
    inner: Arc<MemListenerState>,
    capacity: usize,
    tick: Duration,
}

struct MemListenerState {
    queue: Mutex<(VecDeque<MemTransport>, bool)>,
    pending: Condvar,
}

impl MemListener {
    /// A listener whose accepted connections use `capacity`-byte
    /// per-direction windows and `tick` receive polling.
    pub fn new(capacity: usize, tick: Duration) -> Self {
        MemListener {
            inner: Arc::new(MemListenerState {
                queue: Mutex::new((VecDeque::new(), false)),
                pending: Condvar::new(),
            }),
            capacity,
            tick,
        }
    }

    /// Dial the listener: returns the client end, queues the server end
    /// for `accept`. Fails with [`TransportError::ConnReset`] once the
    /// listener is closed (drain).
    pub fn connect(&self) -> Result<MemTransport, TransportError> {
        let (client, server) = mem_pair(self.capacity, self.tick);
        let mut q = self.inner.queue.lock();
        if q.1 {
            return Err(TransportError::ConnReset);
        }
        q.0.push_back(server);
        self.inner.pending.notify_all();
        Ok(client)
    }

    /// Take one pending connection, waiting at most one tick; `None`
    /// when the tick elapsed or the listener is closed and drained.
    pub fn accept(&self) -> Option<MemTransport> {
        let mut q = self.inner.queue.lock();
        if q.0.is_empty() && !q.1 {
            self.inner.pending.wait_for(&mut q, self.tick);
        }
        q.0.pop_front()
    }

    /// Stop accepting: future dials fail, already-queued pairs still
    /// accept (they connected before the drain).
    pub fn close(&self) {
        let mut q = self.inner.queue.lock();
        q.1 = true;
        self.inner.pending.notify_all();
    }

    /// Whether the listener has been closed.
    pub fn is_closed(&self) -> bool {
        self.inner.queue.lock().1
    }
}

// ---------------------------------------------------------------------
// Accept / dial abstractions
// ---------------------------------------------------------------------

/// Server-side accept surface over either transport.
pub trait Listener: Send {
    /// Take one pending connection, waiting at most one poll tick.
    /// `None` when the tick elapsed (or the listener is closed).
    fn poll_accept(&mut self) -> Option<Box<dyn Transport>>;

    /// Stop admitting new connections (drain).
    fn close(&self);
}

/// Client-side dial surface over either transport.
pub trait Connector: Send {
    /// Open a fresh connection to the server.
    fn dial(&self) -> Result<Box<dyn Transport>, TransportError>;
}

impl Listener for MemListener {
    fn poll_accept(&mut self) -> Option<Box<dyn Transport>> {
        self.accept().map(|t| Box::new(t) as Box<dyn Transport>)
    }

    fn close(&self) {
        MemListener::close(self);
    }
}

impl Connector for MemListener {
    fn dial(&self) -> Result<Box<dyn Transport>, TransportError> {
        self.connect().map(|t| Box::new(t) as Box<dyn Transport>)
    }
}

/// TCP accept side: a bound localhost listener polled non-blocking.
pub struct TcpAcceptor {
    listener: std::net::TcpListener,
    tick: Duration,
}

impl TcpAcceptor {
    /// Bind `addr` (use port 0 for an ephemeral port) and switch the
    /// listener to non-blocking polling at `tick`.
    pub fn bind(addr: &str, tick: Duration) -> Result<Self, TransportError> {
        let listener = std::net::TcpListener::bind(addr).map_err(|_| TransportError::ConnReset)?;
        listener
            .set_nonblocking(true)
            .map_err(|_| TransportError::ConnReset)?;
        Ok(TcpAcceptor { listener, tick })
    }

    /// The bound address (what clients dial).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an addr")
    }
}

impl Listener for TcpAcceptor {
    fn poll_accept(&mut self) -> Option<Box<dyn Transport>> {
        match self.listener.accept() {
            Ok((stream, _)) => TcpTransport::new(stream, self.tick)
                .ok()
                .map(|t| Box::new(t) as Box<dyn Transport>),
            Err(_) => {
                std::thread::sleep(self.tick);
                None
            }
        }
    }

    fn close(&self) {
        // Nothing to signal: the accept loop stops polling and the
        // socket closes when the acceptor drops; later dials are
        // refused by the OS and surface as ConnReset.
    }
}

/// TCP dial side.
pub struct TcpConnector {
    /// Server address.
    pub addr: SocketAddr,
    /// Receive poll period for dialed connections.
    pub tick: Duration,
}

impl Connector for TcpConnector {
    fn dial(&self) -> Result<Box<dyn Transport>, TransportError> {
        TcpTransport::connect(self.addr, self.tick).map(|t| Box::new(t) as Box<dyn Transport>)
    }
}

// ---------------------------------------------------------------------
// Framed I/O with fault injection
// ---------------------------------------------------------------------

/// Shared cumulative frame counters keyed by `(connection id,
/// direction)`. One clock lives on each side of the protocol and
/// survives reconnects, so fault coordinates are stable across retries
/// and identical between the live drivers and the simulator.
#[derive(Default)]
pub struct WireClock {
    counts: Mutex<HashMap<(u64, u8), u64>>,
}

impl WireClock {
    /// A fresh clock with all counters at zero.
    pub fn new() -> Arc<WireClock> {
        Arc::new(WireClock::default())
    }

    /// The next frame index for `(conn, dir)` (post-incremented).
    pub fn next(&self, conn: u64, dir: WireDir) -> u64 {
        let mut counts = self.counts.lock();
        let slot = counts.entry((conn, dir as u8)).or_insert(0);
        let idx = *slot;
        *slot += 1;
        idx
    }
}

/// Byte/frame counters for one framed connection; folded into
/// [`crate::metrics::TransportMetrics`] when the connection ends.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct WireStats {
    /// Frames fully sent.
    pub frames_out: u64,
    /// Frames fully received and verified.
    pub frames_in: u64,
    /// Bytes put on the wire (including injected-fault partial sends).
    pub bytes_out: u64,
    /// Bytes taken off the wire.
    pub bytes_in: u64,
    /// Seconds spent encoding and decoding frames (serialization cost,
    /// charged to the Communication lane).
    pub ser_s: f64,
    /// Faults this side injected on its send path.
    pub faults_injected: u64,
}

/// Outcome of one framed receive attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum RecvFrame {
    /// One complete, checksum-verified frame.
    Frame(Frame),
    /// Clean EOF between frames (peer finished sending).
    Eof,
    /// One poll tick elapsed with the frame still incomplete.
    Idle,
}

/// A framed connection: incremental decode over any [`Transport`], with
/// seeded wire faults injected on the send path.
pub struct FrameIo {
    io: Box<dyn Transport>,
    conn: u64,
    dir: WireDir,
    rbuf: Vec<u8>,
    max_payload: u32,
    faults: WireFaultPlan,
    clock: Arc<WireClock>,
    /// Live counters for this connection.
    pub stats: WireStats,
}

impl FrameIo {
    /// Frame `io`. `conn` and `dir` are this side's fault coordinates
    /// (`dir` is the direction of *our* sends); `clock` supplies the
    /// cumulative frame indices the `faults` plan keys on.
    pub fn new(
        io: Box<dyn Transport>,
        conn: u64,
        dir: WireDir,
        faults: WireFaultPlan,
        clock: Arc<WireClock>,
    ) -> Self {
        FrameIo {
            io,
            conn,
            dir,
            rbuf: Vec::new(),
            max_payload: DEFAULT_MAX_PAYLOAD,
            faults,
            clock,
            stats: WireStats::default(),
        }
    }

    /// Shrink the payload window (received frames declaring more, and
    /// attempts to *send* more, are [`TransportError::FrameTooLarge`]).
    pub fn with_max_payload(mut self, max_payload: u32) -> Self {
        self.max_payload = max_payload;
        self
    }

    /// Adjust the payload window in place — used after handshake
    /// negotiation settles on `min(client, server)`.
    pub fn set_max_payload(&mut self, max_payload: u32) {
        self.max_payload = max_payload;
    }

    /// The payload window currently enforced in both directions.
    pub fn max_payload(&self) -> u32 {
        self.max_payload
    }

    /// Re-key the fault coordinates once the peer's identity is known
    /// (a server learns the connection id from the client's Hello).
    pub fn set_conn(&mut self, conn: u64) {
        self.conn = conn;
    }

    /// Whether any bytes of a frame are buffered but incomplete — a
    /// half-open peer mid-frame. Drain uses this to distinguish "idle
    /// between frames" from "stalled inside one".
    pub fn mid_frame(&self) -> bool {
        !self.rbuf.is_empty()
    }

    /// Encode and send one frame, injecting whatever the fault plan
    /// schedules at this `(conn, dir, frame index)`. Injected resets
    /// and truncations kill the connection and surface as
    /// [`TransportError::ConnReset`] to this side too, so callers
    /// immediately fail over instead of waiting out a timeout.
    ///
    /// Payloads over the negotiated window are refused *before* any
    /// bytes hit the wire ([`TransportError::FrameTooLarge`]) — the
    /// connection stays usable and no fault index is consumed.
    pub fn send_frame(&mut self, frame: &Frame) -> Result<(), TransportError> {
        if frame.payload.len() as u64 > self.max_payload as u64 {
            return Err(TransportError::FrameTooLarge {
                len: frame.payload.len() as u64,
                max: self.max_payload as u64,
            });
        }
        let idx = self.clock.next(self.conn, self.dir);
        let t0 = Instant::now();
        let mut bytes = encode_frame(frame)?;
        self.stats.ser_s += t0.elapsed().as_secs_f64();
        match self.faults.decide(self.conn, self.dir, idx) {
            None => {}
            Some(WireFault::BitFlip { entropy }) => {
                self.stats.faults_injected += 1;
                let bit = (entropy % (bytes.len() as u64 * 8)) as usize;
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
            Some(WireFault::Truncate) => {
                // Half the frame, then a clean FIN: the peer sees EOF
                // mid-frame and types it FrameCorrupt.
                self.stats.faults_injected += 1;
                let half = &bytes[..bytes.len() / 2];
                let _ = self.io.send(half);
                self.stats.bytes_out += half.len() as u64;
                self.io.shutdown_write();
                return Err(TransportError::ConnReset);
            }
            Some(WireFault::Reset) => {
                // Half the frame, then an abortive close: the peer sees
                // a reset, not an EOF.
                self.stats.faults_injected += 1;
                let half = &bytes[..bytes.len() / 2];
                let _ = self.io.send(half);
                self.stats.bytes_out += half.len() as u64;
                self.io.abort();
                return Err(TransportError::ConnReset);
            }
            Some(WireFault::Stall { seconds }) => {
                self.stats.faults_injected += 1;
                std::thread::sleep(Duration::from_secs_f64(seconds));
            }
        }
        self.io.send(&bytes)?;
        self.stats.bytes_out += bytes.len() as u64;
        self.stats.frames_out += 1;
        Ok(())
    }

    /// Receive one frame, waiting at most one poll tick for progress.
    /// Corrupt bytes, oversized declarations, truncation at EOF and
    /// resets all surface as their typed [`TransportError`].
    pub fn recv_frame(&mut self) -> Result<RecvFrame, TransportError> {
        loop {
            if !self.rbuf.is_empty() {
                let t0 = Instant::now();
                let decoded = decode_frame(&self.rbuf, self.max_payload);
                self.stats.ser_s += t0.elapsed().as_secs_f64();
                match decoded {
                    Ok(Some((frame, consumed))) => {
                        self.rbuf.drain(..consumed);
                        self.stats.frames_in += 1;
                        return Ok(RecvFrame::Frame(frame));
                    }
                    Ok(None) => {}
                    Err(e) => return Err(e.into()),
                }
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.io.recv(&mut chunk)? {
                Recv::Data(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    self.stats.bytes_in += n as u64;
                }
                Recv::Eof => {
                    return if self.rbuf.is_empty() {
                        Ok(RecvFrame::Eof)
                    } else {
                        Err(TransportError::FrameCorrupt {
                            detail: "stream ended mid-frame".into(),
                        })
                    };
                }
                Recv::Idle => return Ok(RecvFrame::Idle),
            }
        }
    }

    /// Half-close the sending side (clean goodbye).
    pub fn shutdown_write(&mut self) {
        self.io.shutdown_write();
    }

    /// Abortively close both directions.
    pub fn abort(&mut self) {
        self.io.abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::FrameKind;

    fn tick() -> Duration {
        Duration::from_millis(2)
    }

    fn frame(id: u64, n: usize) -> Frame {
        Frame::new(
            FrameKind::Request,
            id,
            (0..n).map(|i| (i % 251) as u8).collect(),
        )
    }

    #[test]
    fn mem_pair_round_trips_frames_both_ways() {
        let (a, b) = mem_pair(1 << 16, tick());
        let clock = WireClock::new();
        let mut a = FrameIo::new(
            Box::new(a),
            1,
            WireDir::ClientToServer,
            WireFaultPlan::none(),
            Arc::clone(&clock),
        );
        let mut b = FrameIo::new(
            Box::new(b),
            1,
            WireDir::ServerToClient,
            WireFaultPlan::none(),
            clock,
        );
        a.send_frame(&frame(7, 100)).unwrap();
        match b.recv_frame().unwrap() {
            RecvFrame::Frame(f) => assert_eq!(f, frame(7, 100)),
            other => panic!("unexpected {other:?}"),
        }
        b.send_frame(&frame(8, 3)).unwrap();
        match a.recv_frame().unwrap() {
            RecvFrame::Frame(f) => assert_eq!(f.id, 8),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bounded_pipe_backpressures_until_the_reader_drains() {
        // Window far smaller than the frame: the send must interleave
        // with reads instead of ballooning memory.
        let (a, b) = mem_pair(64, tick());
        let clock = WireClock::new();
        let mut tx = FrameIo::new(
            Box::new(a),
            1,
            WireDir::ClientToServer,
            WireFaultPlan::none(),
            Arc::clone(&clock),
        );
        let mut rx = FrameIo::new(
            Box::new(b),
            1,
            WireDir::ServerToClient,
            WireFaultPlan::none(),
            clock,
        );
        let big = frame(9, 4096);
        let big2 = big.clone();
        let h = std::thread::spawn(move || tx.send_frame(&big2));
        loop {
            match rx.recv_frame().unwrap() {
                RecvFrame::Frame(f) => {
                    assert_eq!(f, big);
                    break;
                }
                RecvFrame::Idle => continue,
                RecvFrame::Eof => panic!("premature EOF"),
            }
        }
        h.join().unwrap().unwrap();
    }

    #[test]
    fn half_close_yields_eof_and_abort_yields_reset() {
        let (mut a, b) = mem_pair(1 << 10, tick());
        let clock = WireClock::new();
        let mut rx = FrameIo::new(
            Box::new(b),
            1,
            WireDir::ServerToClient,
            WireFaultPlan::none(),
            clock,
        );
        a.shutdown_write();
        assert_eq!(rx.recv_frame().unwrap(), RecvFrame::Eof);
        let (mut a, b) = mem_pair(1 << 10, tick());
        let clock = WireClock::new();
        let mut rx = FrameIo::new(
            Box::new(b),
            1,
            WireDir::ServerToClient,
            WireFaultPlan::none(),
            clock,
        );
        a.abort();
        assert_eq!(rx.recv_frame(), Err(TransportError::ConnReset));
    }

    #[test]
    fn injected_bitflip_is_caught_by_the_peer_checksum() {
        let (a, b) = mem_pair(1 << 16, tick());
        let clock = WireClock::new();
        let mut tx = FrameIo::new(
            Box::new(a),
            3,
            WireDir::ClientToServer,
            WireFaultPlan::seeded(11).with_bitflip(3, WireDir::ClientToServer, 0),
            Arc::clone(&clock),
        );
        let mut rx = FrameIo::new(
            Box::new(b),
            3,
            WireDir::ServerToClient,
            WireFaultPlan::none(),
            clock,
        );
        tx.send_frame(&frame(1, 64)).unwrap();
        assert_eq!(tx.stats.faults_injected, 1);
        match rx.recv_frame() {
            Err(TransportError::FrameCorrupt { .. }) => {}
            other => panic!("expected FrameCorrupt, got {other:?}"),
        }
    }

    #[test]
    fn injected_truncation_and_reset_type_correctly_at_the_peer() {
        for (fault_is_reset, want_reset) in [(false, false), (true, true)] {
            let (a, b) = mem_pair(1 << 16, tick());
            let clock = WireClock::new();
            let plan = if fault_is_reset {
                WireFaultPlan::none().with_reset(5, WireDir::ClientToServer, 0)
            } else {
                WireFaultPlan::none().with_truncate(5, WireDir::ClientToServer, 0)
            };
            let mut tx = FrameIo::new(
                Box::new(a),
                5,
                WireDir::ClientToServer,
                plan,
                Arc::clone(&clock),
            );
            let mut rx = FrameIo::new(
                Box::new(b),
                5,
                WireDir::ServerToClient,
                WireFaultPlan::none(),
                clock,
            );
            assert_eq!(
                tx.send_frame(&frame(1, 64)),
                Err(TransportError::ConnReset),
                "sender learns immediately"
            );
            let got = loop {
                match rx.recv_frame() {
                    Ok(RecvFrame::Idle) => continue,
                    other => break other,
                }
            };
            if want_reset {
                assert_eq!(got, Err(TransportError::ConnReset));
            } else {
                match got {
                    Err(TransportError::FrameCorrupt { detail }) => {
                        assert!(detail.contains("mid-frame"), "{detail}");
                    }
                    other => panic!("expected truncation corruption, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn one_shot_faults_stay_one_shot_across_reconnects() {
        // Same clock across two connections from conn id 9: the fault
        // at frame index 0 fires once; the retry (frame index 1, on the
        // fresh connection) sails through.
        let clock = WireClock::new();
        let plan = WireFaultPlan::none().with_reset(9, WireDir::ClientToServer, 0);
        let (a, _b) = mem_pair(1 << 16, tick());
        let mut tx = FrameIo::new(
            Box::new(a),
            9,
            WireDir::ClientToServer,
            plan.clone(),
            Arc::clone(&clock),
        );
        assert_eq!(tx.send_frame(&frame(1, 32)), Err(TransportError::ConnReset));
        let (a2, b2) = mem_pair(1 << 16, tick());
        let mut tx2 = FrameIo::new(Box::new(a2), 9, WireDir::ClientToServer, plan, clock);
        tx2.send_frame(&frame(1, 32)).unwrap();
        let mut rx = FrameIo::new(
            Box::new(b2),
            9,
            WireDir::ServerToClient,
            WireFaultPlan::none(),
            WireClock::new(),
        );
        match rx.recv_frame().unwrap() {
            RecvFrame::Frame(f) => assert_eq!(f.id, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mem_listener_hands_out_connected_pairs_and_closes() {
        let lst = MemListener::new(1 << 12, tick());
        let mut client = lst.connect().unwrap();
        let mut server = lst.accept().expect("pending connection");
        client.send(b"ping").unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(server.recv(&mut buf).unwrap(), Recv::Data(4));
        assert_eq!(&buf[..4], b"ping");
        lst.close();
        assert!(lst.is_closed());
        assert_eq!(lst.connect().err(), Some(TransportError::ConnReset));
        assert!(lst.accept().is_none());
    }

    #[test]
    fn tcp_transport_round_trips_over_localhost() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let t = TcpTransport::new(stream, tick()).unwrap();
            let mut io = FrameIo::new(
                Box::new(t),
                1,
                WireDir::ServerToClient,
                WireFaultPlan::none(),
                WireClock::new(),
            );
            let f = loop {
                match io.recv_frame().unwrap() {
                    RecvFrame::Frame(f) => break f,
                    RecvFrame::Idle => continue,
                    RecvFrame::Eof => panic!("premature EOF"),
                }
            };
            io.send_frame(&f).unwrap();
        });
        let t = TcpTransport::connect(addr, tick()).unwrap();
        let mut io = FrameIo::new(
            Box::new(t),
            1,
            WireDir::ClientToServer,
            WireFaultPlan::none(),
            WireClock::new(),
        );
        let f = frame(77, 256);
        io.send_frame(&f).unwrap();
        let echo = loop {
            match io.recv_frame().unwrap() {
                RecvFrame::Frame(f) => break f,
                RecvFrame::Idle => continue,
                RecvFrame::Eof => panic!("premature EOF"),
            }
        };
        assert_eq!(echo, f);
        server.join().unwrap();
    }
}
