//! Request/response vocabulary of the serving layer.
//!
//! A [`DecomposeRequest`] names everything the engine needs (image,
//! bank, depth, boundary) plus the two serving-only attributes the
//! admission policy consumes: a [`Priority`] class and an optional
//! deadline on the service clock. Every accepted request terminates in
//! exactly one [`ServeResult`]: a [`DecomposeResponse`] or a typed
//! [`Rejection`] — nothing is silently dropped.
//!
//! All times are `f64` seconds on the *service clock*: wall seconds
//! since service start in the live server, virtual seconds in the
//! discrete-event simulator. The policy state machines never read a
//! clock themselves; callers pass `now` in, which is what makes the
//! simulator byte-reproducible.

use dwt::engine::PlanShape;
use dwt::{dwt2d, Boundary, FilterBank, Matrix, Pyramid};

/// Scheduling class of a request. Order is meaningful: a class sheds
/// only strictly smaller classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Bulk/offline work; first to go under overload.
    Batch = 0,
    /// Default class.
    Standard = 1,
    /// Latency-sensitive, usually deadline-carrying work.
    Interactive = 2,
}

impl Priority {
    /// All classes, ascending.
    pub const ALL: [Priority; 3] = [Priority::Batch, Priority::Standard, Priority::Interactive];

    /// Stable label for machine-readable output.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Batch => "batch",
            Priority::Standard => "standard",
            Priority::Interactive => "interactive",
        }
    }
}

/// One unit of work submitted to the service.
#[derive(Debug, Clone)]
pub struct DecomposeRequest {
    /// The image to decompose.
    pub image: Matrix,
    /// Analysis filter bank.
    pub bank: FilterBank,
    /// Decomposition depth.
    pub levels: usize,
    /// Boundary extension policy.
    pub mode: Boundary,
    /// Scheduling class.
    pub priority: Priority,
    /// Absolute deadline on the service clock; a request past it is
    /// fast-failed instead of executed.
    pub deadline: Option<f64>,
}

impl DecomposeRequest {
    /// A standard-priority, deadline-free request with periodic
    /// boundaries (the engine's exact-reconstruction mode).
    pub fn new(image: Matrix, bank: FilterBank, levels: usize) -> Self {
        DecomposeRequest {
            image,
            bank,
            levels,
            mode: Boundary::Periodic,
            priority: Priority::Standard,
            deadline: None,
        }
    }

    /// Same request in a different scheduling class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Same request with an absolute deadline on the service clock.
    pub fn with_deadline(mut self, deadline: f64) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Same request with a different boundary policy.
    pub fn with_mode(mut self, mode: Boundary) -> Self {
        self.mode = mode;
        self
    }

    /// The plan-cache key this request maps to. Requests with equal
    /// shapes are batchable into one engine dispatch and share a cached
    /// [`dwt::engine::DwtPlan`].
    pub fn shape(&self) -> PlanShape {
        PlanShape::new(
            self.image.rows(),
            self.image.cols(),
            &self.bank,
            self.levels,
            self.mode,
        )
    }

    /// Whether the request is past its deadline at `now`.
    pub fn expired(&self, now: f64) -> bool {
        self.deadline.is_some_and(|d| d < now)
    }

    /// Cheap admission-time validation (full validation happens again
    /// when the plan is built; this catches malformed geometry before
    /// it occupies queue space).
    pub fn validate(&self) -> Result<(), Rejection> {
        dwt2d::validate_dims(
            self.image.rows(),
            self.image.cols(),
            self.bank.len(),
            self.levels,
        )
        .map_err(|e| Rejection::Invalid {
            detail: e.to_string(),
        })
    }
}

/// Why a request did not execute. Every variant is a *terminal* outcome
/// delivered to the submitter — the rejection taxonomy is part of the
/// API, not a log line.
#[derive(Debug, Clone, PartialEq)]
pub enum Rejection {
    /// The shard's admission queue was full and no lower-priority entry
    /// was available to shed.
    QueueFull {
        /// Queue depth at rejection time.
        depth: usize,
    },
    /// Evicted from the queue by an arriving request of *strictly*
    /// higher class.
    Shed {
        /// The class that displaced this request.
        by: Priority,
    },
    /// Past its deadline (fast-failed at admission or at dequeue,
    /// whichever noticed first).
    DeadlineExpired {
        /// The request's deadline.
        deadline: f64,
        /// Service-clock time when expiry was detected.
        now: f64,
    },
    /// Malformed request (geometry the engine cannot serve).
    Invalid {
        /// Human-readable cause.
        detail: String,
    },
    /// Submitted after graceful drain began.
    Draining,
    /// The request's shard is down past its restart budget and no
    /// surviving shard could take the work (every failover target was
    /// also failed, full, or draining).
    ShardFailed {
        /// The failed home shard.
        shard: usize,
        /// Worker restarts burned before the shard was declared failed.
        restarts: u32,
    },
    /// Quarantined by the poisoned-batch protocol: executing this
    /// request kept panicking the worker, including on a solo retry.
    Requeued {
        /// Execution attempts made before quarantine.
        attempts: u32,
    },
}

impl Rejection {
    /// The variant's counter bucket.
    pub fn kind(&self) -> RejectKind {
        match self {
            Rejection::QueueFull { .. } => RejectKind::QueueFull,
            Rejection::Shed { .. } => RejectKind::Shed,
            Rejection::DeadlineExpired { .. } => RejectKind::DeadlineExpired,
            Rejection::Invalid { .. } => RejectKind::Invalid,
            Rejection::Draining => RejectKind::Draining,
            Rejection::ShardFailed { .. } => RejectKind::ShardFailed,
            Rejection::Requeued { .. } => RejectKind::Requeued,
        }
    }
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::QueueFull { depth } => {
                write!(f, "admission queue full at depth {depth}")
            }
            Rejection::Shed { by } => {
                write!(f, "shed by arriving {} work", by.label())
            }
            Rejection::DeadlineExpired { deadline, now } => {
                write!(f, "deadline {deadline} s expired at service time {now} s")
            }
            Rejection::Invalid { detail } => write!(f, "invalid request: {detail}"),
            Rejection::Draining => write!(f, "service is draining"),
            Rejection::ShardFailed { shard, restarts } => {
                write!(f, "shard {shard} failed after {restarts} restarts")
            }
            Rejection::Requeued { attempts } => {
                write!(f, "quarantined after {attempts} execution attempts")
            }
        }
    }
}

impl std::error::Error for Rejection {}

/// Counter buckets of the rejection taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectKind {
    /// See [`Rejection::QueueFull`].
    QueueFull = 0,
    /// See [`Rejection::Shed`].
    Shed = 1,
    /// See [`Rejection::DeadlineExpired`].
    DeadlineExpired = 2,
    /// See [`Rejection::Invalid`].
    Invalid = 3,
    /// See [`Rejection::Draining`].
    Draining = 4,
    /// See [`Rejection::ShardFailed`].
    ShardFailed = 5,
    /// See [`Rejection::Requeued`].
    Requeued = 6,
}

impl RejectKind {
    /// All buckets, in counter order.
    pub const ALL: [RejectKind; 7] = [
        RejectKind::QueueFull,
        RejectKind::Shed,
        RejectKind::DeadlineExpired,
        RejectKind::Invalid,
        RejectKind::Draining,
        RejectKind::ShardFailed,
        RejectKind::Requeued,
    ];

    /// Stable label for machine-readable output.
    pub fn label(self) -> &'static str {
        match self {
            RejectKind::QueueFull => "queue_full",
            RejectKind::Shed => "shed",
            RejectKind::DeadlineExpired => "deadline_expired",
            RejectKind::Invalid => "invalid",
            RejectKind::Draining => "draining",
            RejectKind::ShardFailed => "shard_failed",
            RejectKind::Requeued => "requeued",
        }
    }
}

/// Successful completion of a request.
#[derive(Debug, Clone, PartialEq)]
pub struct DecomposeResponse {
    /// The decomposition. Exact responses are bit-identical to a direct
    /// engine call on the same input — batching and caching never
    /// change arithmetic. Degraded responses (`error_bound > 0`) carry
    /// an exact LL plane and threshold-quantized detail planes.
    pub pyramid: Pyramid,
    /// Whether the plan came from the cache.
    pub cache_hit: bool,
    /// How many requests shared this engine dispatch.
    pub batch_size: usize,
    /// Seconds spent queued (dispatch start − arrival).
    pub wait_s: f64,
    /// Seconds of service (dispatch start → completion).
    pub service_s: f64,
    /// Whether this is a degraded-mode (bounded-error) response.
    pub degraded: bool,
    /// Largest absolute per-coefficient error the response can carry
    /// versus the exact decomposition (`0.0` for exact responses; the
    /// LL plane is always exact either way).
    pub error_bound: f64,
}

impl DecomposeResponse {
    /// End-to-end latency on the service clock.
    pub fn latency_s(&self) -> f64 {
        self.wait_s + self.service_s
    }
}

/// The one terminal outcome every accepted request resolves to.
pub type ServeResult = Result<DecomposeResponse, Rejection>;

/// A request inside the pipeline, tagged with the driver's bookkeeping
/// handle (`T` is a response ticket in the live server, an index in the
/// simulator).
#[derive(Debug)]
pub struct Entry<T> {
    /// Service-wide request id (admission order).
    pub id: u64,
    /// Arrival time on the service clock.
    pub arrival: f64,
    /// The request itself.
    pub req: DecomposeRequest,
    /// Execution attempts that ended in a worker panic (poisoned-batch
    /// protocol). Entries with `attempts > 0` are retried *solo* — the
    /// batcher neither coalesces behind them nor picks them as mates —
    /// so one suspect cannot take a second batch down with it.
    pub attempts: u32,
    /// Driver bookkeeping handle.
    pub tag: T,
}

impl<T> Entry<T> {
    /// Whether the entry must dispatch alone (it already survived a
    /// batch panic and is under suspicion).
    pub fn solo(&self) -> bool {
        self.attempts > 0
    }
}
