//! The `wserv` wire protocol: length-prefixed binary frames.
//!
//! Every message on a remote connection is one frame:
//!
//! ```text
//!  offset  size  field
//!  ------  ----  -----------------------------------------------
//!       0     4  magic  = "WSRV"
//!       4     1  protocol version (= 2)
//!       5     1  frame kind (Hello / HelloAck / Request / Response /
//!                Bye / Cancel)
//!       6     1  flags (bit 0 = continuation: more frames follow for
//!                this id; other bits must be zero)
//!       7     1  reserved, must be zero
//!       8     8  request id (client-assigned; client id for Hello)
//!      16     4  payload length N (little-endian, bounded)
//!      20     N  payload (kind-specific encoding)
//!    20+N     8  checksum = FNV-1a 64 over bytes [0, 20+N)
//! ```
//!
//! Protocol version 2 repurposed one of version 1's two reserved
//! header bytes as a flags field so a response can span a *sequence*
//! of frames: a progressive header frame (exact LL plane) followed by
//! detail-plane frames ordered by energy, every frame but the last
//! carrying [`FLAG_CONTINUE`]. Version 2 also added
//! [`FrameKind::Cancel`], the client's idempotent "stop sending planes
//! for this id".
//!
//! All integers are little-endian; all floating-point payloads are
//! IEEE-754 bit patterns, so encode→decode round-trips *bitwise* — the
//! property tests pin that down. The decoder is incremental (feed it a
//! growing byte buffer) and total: arbitrary input never panics, it
//! yields a typed [`WireError`] or asks for more bytes. A frame whose
//! checksum does not match its bytes is [`WireError::FrameCorrupt`]; a
//! frame whose declared payload exceeds the receive window is
//! [`WireError::FrameTooLarge`] *before* any allocation of that size.
//! Encoding is checked too: a payload or field that cannot fit its
//! wire-format width surfaces as a typed error at *encode* time
//! instead of silently truncating the length field.

use std::fmt;

use crate::request::{DecomposeRequest, DecomposeResponse, Priority, Rejection, ServeResult};
use dwt::lifting::LiftingKind;
use dwt::{Boundary, FilterBank, Matrix, Pyramid, Subbands};

/// Frame magic: `"WSRV"`.
pub const MAGIC: [u8; 4] = *b"WSRV";
/// Protocol version this build speaks (2: continuation flag + Cancel).
pub const PROTOCOL_VERSION: u8 = 2;
/// Fixed header bytes before the payload.
pub const HEADER_LEN: usize = 20;
/// Trailing checksum bytes after the payload.
pub const TRAILER_LEN: usize = 8;
/// Default receive window for one frame's payload (16 MiB).
pub const DEFAULT_MAX_PAYLOAD: u32 = 16 << 20;
/// Header flag bit 0: more frames follow for this request id (a
/// progressive response's header and every detail plane but the last).
pub const FLAG_CONTINUE: u8 = 0x01;
/// Every flag bit this build understands; others must be zero.
pub const FLAG_MASK: u8 = FLAG_CONTINUE;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client handshake: id field is the client id, payload is
    /// [`Hello`].
    Hello = 0,
    /// Server handshake reply, payload is [`Hello`] (the server's view).
    HelloAck = 1,
    /// A [`DecomposeRequest`], id field is the client-assigned request
    /// id (the dedup key for idempotent resubmits).
    Request = 2,
    /// A [`ServeResult`] for the request with the same id — either one
    /// monolithic frame, or a progressive sequence (header + planes)
    /// linked by [`FLAG_CONTINUE`].
    Response = 3,
    /// Clean goodbye before FIN; no payload.
    Bye = 4,
    /// Client asks the server to stop sending plane frames for this id
    /// (its tolerance is met). Idempotent: unknown, finished, or
    /// repeated ids are all no-ops; no payload.
    Cancel = 5,
}

impl FrameKind {
    fn from_u8(v: u8) -> Option<FrameKind> {
        match v {
            0 => Some(FrameKind::Hello),
            1 => Some(FrameKind::HelloAck),
            2 => Some(FrameKind::Request),
            3 => Some(FrameKind::Response),
            4 => Some(FrameKind::Bye),
            5 => Some(FrameKind::Cancel),
            _ => None,
        }
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// What the payload encodes.
    pub kind: FrameKind,
    /// Request id (client id for handshake frames).
    pub id: u64,
    /// Header flags ([`FLAG_CONTINUE`] is the only defined bit).
    pub flags: u8,
    /// Kind-specific payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with no flags set.
    pub fn new(kind: FrameKind, id: u64, payload: Vec<u8>) -> Frame {
        Frame {
            kind,
            id,
            flags: 0,
            payload,
        }
    }

    /// Set [`FLAG_CONTINUE`]: more frames follow for this id.
    pub fn with_continue(mut self) -> Frame {
        self.flags |= FLAG_CONTINUE;
        self
    }

    /// Whether more frames follow for this id.
    pub fn more_follows(&self) -> bool {
        self.flags & FLAG_CONTINUE != 0
    }
}

/// Typed decode failure. Every malformed, truncated, or adversarial
/// input maps to exactly one of these — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The bytes cannot be a frame: bad magic, unknown version or kind,
    /// nonzero reserved bits, checksum mismatch, truncated input, or a
    /// payload that does not parse as its kind.
    FrameCorrupt {
        /// Human-readable cause.
        detail: String,
    },
    /// The declared payload length exceeds the receive window. Raised
    /// before any payload-sized allocation.
    FrameTooLarge {
        /// Declared payload length.
        len: u64,
        /// The receive window it exceeded.
        max: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::FrameCorrupt { detail } => write!(f, "corrupt frame: {detail}"),
            WireError::FrameTooLarge { len, max } => {
                write!(
                    f,
                    "frame payload {len} B exceeds the {max} B receive window"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

fn corrupt(detail: impl Into<String>) -> WireError {
    WireError::FrameCorrupt {
        detail: detail.into(),
    }
}

/// FNV-1a 64 over `bytes` — the same construction shard routing uses,
/// chosen for stability by specification.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Narrow a `usize` field into its `u32` wire width, or fail typed at
/// encode time — never silently truncate a length field.
fn wire_u32(n: usize, what: &str) -> Result<u32, WireError> {
    u32::try_from(n).map_err(|_| {
        // FrameTooLarge carries the offending size; the detail of
        // *which* field overflowed matters less than failing typed
        // before a peer sees a mangled frame.
        let _ = what;
        WireError::FrameTooLarge {
            len: n as u64,
            max: u32::MAX as u64,
        }
    })
}

/// Encode one frame to bytes (header, payload, checksum). Fails typed
/// if the payload cannot fit the 32-bit length field (instead of
/// truncating it into a frame the peer must reject as corrupt) or if
/// the frame carries flag bits this protocol version does not define.
pub fn encode_frame(frame: &Frame) -> Result<Vec<u8>, WireError> {
    let len = wire_u32(frame.payload.len(), "frame payload")?;
    if frame.flags & !FLAG_MASK != 0 {
        return Err(corrupt(format!(
            "undefined flag bits {:#04x} at encode time",
            frame.flags & !FLAG_MASK
        )));
    }
    let mut out = Vec::with_capacity(HEADER_LEN + frame.payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.push(PROTOCOL_VERSION);
    out.push(frame.kind as u8);
    out.push(frame.flags);
    out.push(0);
    out.extend_from_slice(&frame.id.to_le_bytes());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&frame.payload);
    let sum = checksum(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    Ok(out)
}

/// Incremental decode: `Ok(None)` means the buffer holds a valid prefix
/// of a frame and more bytes are needed; `Ok(Some((frame, consumed)))`
/// yields one frame and how many bytes it spanned. Errors are terminal
/// for the byte stream (framing is lost once bytes are untrustworthy).
pub fn decode_frame(buf: &[u8], max_payload: u32) -> Result<Option<(Frame, usize)>, WireError> {
    if buf.len() < HEADER_LEN {
        // Reject bad magic as soon as the bytes disagree, without
        // waiting for a full header.
        let n = buf.len().min(4);
        if buf[..n] != MAGIC[..n] {
            return Err(corrupt("bad magic"));
        }
        return Ok(None);
    }
    if buf[0..4] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    if buf[4] != PROTOCOL_VERSION {
        return Err(corrupt(format!(
            "protocol version {} (this build speaks {PROTOCOL_VERSION})",
            buf[4]
        )));
    }
    let Some(kind) = FrameKind::from_u8(buf[5]) else {
        return Err(corrupt(format!("unknown frame kind {}", buf[5])));
    };
    let flags = buf[6];
    if flags & !FLAG_MASK != 0 {
        return Err(corrupt(format!(
            "undefined flag bits {:#04x}",
            flags & !FLAG_MASK
        )));
    }
    if buf[7] != 0 {
        return Err(corrupt("nonzero reserved bits"));
    }
    let id = u64::from_le_bytes(buf[8..16].try_into().expect("slice is 8 bytes"));
    let len = u32::from_le_bytes(buf[16..20].try_into().expect("slice is 4 bytes"));
    if len > max_payload {
        return Err(WireError::FrameTooLarge {
            len: len as u64,
            max: max_payload as u64,
        });
    }
    let total = HEADER_LEN + len as usize + TRAILER_LEN;
    if buf.len() < total {
        return Ok(None);
    }
    let body = &buf[..HEADER_LEN + len as usize];
    let declared = u64::from_le_bytes(
        buf[HEADER_LEN + len as usize..total]
            .try_into()
            .expect("slice is 8 bytes"),
    );
    if checksum(body) != declared {
        return Err(corrupt("checksum mismatch"));
    }
    Ok(Some((
        Frame {
            kind,
            id,
            flags,
            payload: body[HEADER_LEN..].to_vec(),
        },
        total,
    )))
}

/// Decode a buffer that must hold exactly one complete frame (the
/// non-streaming entry point the property tests drive): truncated input
/// and trailing garbage are both [`WireError::FrameCorrupt`].
pub fn decode_complete(buf: &[u8], max_payload: u32) -> Result<Frame, WireError> {
    match decode_frame(buf, max_payload)? {
        None => Err(corrupt("truncated frame")),
        Some((frame, consumed)) if consumed == buf.len() => Ok(frame),
        Some(_) => Err(corrupt("trailing bytes after frame")),
    }
}

// ---------------------------------------------------------------------
// Payload codecs. Each reads through a bounds-checked cursor so short or
// oversized payloads surface as FrameCorrupt, never a panic.
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt("payload shorter than its fields"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `len`-prefixed f64 plane of exactly `n` values.
    fn plane(&mut self, n: usize) -> Result<Vec<f64>, WireError> {
        let bytes = self.take(n.checked_mul(8).ok_or_else(|| corrupt("plane overflow"))?)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect())
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("string is not UTF-8"))
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(corrupt("trailing bytes in payload"))
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) -> Result<(), WireError> {
    out.extend_from_slice(&wire_u32(s.len(), "string")?.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_plane(out: &mut Vec<u8>, data: &[f64]) {
    for v in data {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

/// Guard a decoded `rows x cols` geometry against adversarial sizes:
/// the element count must agree with what the payload can actually
/// hold, which the cursor enforces by refusing short reads.
fn matrix(r: &mut Reader<'_>) -> Result<Matrix, WireError> {
    let rows = r.u32()? as usize;
    let cols = r.u32()? as usize;
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| corrupt("matrix dims overflow"))?;
    let data = r.plane(n)?;
    Matrix::from_vec(rows, cols, data).map_err(|e| corrupt(e.to_string()))
}

fn put_matrix(out: &mut Vec<u8>, m: &Matrix) -> Result<(), WireError> {
    out.extend_from_slice(&wire_u32(m.rows(), "matrix rows")?.to_le_bytes());
    out.extend_from_slice(&wire_u32(m.cols(), "matrix cols")?.to_le_bytes());
    put_plane(out, m.data());
    Ok(())
}

/// Handshake payload: what each side speaks and the windows it offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Protocol version the sender speaks.
    pub protocol: u32,
    /// Largest frame payload the sender will accept.
    pub max_payload: u32,
    /// In-flight request window the sender honors per connection.
    pub window: u32,
}

/// Encode a handshake frame (`Hello` from clients, `HelloAck` from the
/// server). The frame id carries the client id.
pub fn encode_hello(kind: FrameKind, client_id: u64, hello: &Hello) -> Frame {
    let mut payload = Vec::with_capacity(12);
    payload.extend_from_slice(&hello.protocol.to_le_bytes());
    payload.extend_from_slice(&hello.max_payload.to_le_bytes());
    payload.extend_from_slice(&hello.window.to_le_bytes());
    Frame::new(kind, client_id, payload)
}

/// Decode a handshake payload.
pub fn decode_hello(frame: &Frame) -> Result<Hello, WireError> {
    let mut r = Reader::new(&frame.payload);
    let hello = Hello {
        protocol: r.u32()?,
        max_payload: r.u32()?,
        window: r.u32()?,
    };
    r.done()?;
    Ok(hello)
}

fn encode_bank(out: &mut Vec<u8>, bank: &FilterBank) -> Result<(), WireError> {
    match bank.lifting_kind() {
        Some(LiftingKind::LeGall53) => out.push(1),
        Some(LiftingKind::Cdf97) => out.push(2),
        None => {
            // Orthonormal banks reconstruct exactly from their low-pass
            // taps (the high-pass is the deterministic alternating
            // flip), so ship name + taps bit-exactly.
            out.push(0);
            put_string(out, bank.name())?;
            out.extend_from_slice(&wire_u32(bank.low().len(), "filter taps")?.to_le_bytes());
            put_plane(out, bank.low());
        }
    }
    Ok(())
}

fn decode_bank(r: &mut Reader<'_>) -> Result<FilterBank, WireError> {
    match r.u8()? {
        1 => Ok(FilterBank::cdf53()),
        2 => Ok(FilterBank::cdf97()),
        0 => {
            let name = r.string()?;
            let taps = r.u32()? as usize;
            let low = r.plane(taps)?;
            FilterBank::from_lowpass(name, low).map_err(|e| corrupt(e.to_string()))
        }
        k => Err(corrupt(format!("unknown filter-bank tag {k}"))),
    }
}

fn boundary_tag(mode: Boundary) -> u8 {
    match mode {
        Boundary::Periodic => 0,
        Boundary::Symmetric => 1,
        Boundary::Zero => 2,
    }
}

fn decode_boundary(tag: u8) -> Result<Boundary, WireError> {
    match tag {
        0 => Ok(Boundary::Periodic),
        1 => Ok(Boundary::Symmetric),
        2 => Ok(Boundary::Zero),
        t => Err(corrupt(format!("unknown boundary tag {t}"))),
    }
}

fn priority_tag(p: Priority) -> u8 {
    p as u8
}

fn decode_priority(tag: u8) -> Result<Priority, WireError> {
    match tag {
        0 => Ok(Priority::Batch),
        1 => Ok(Priority::Standard),
        2 => Ok(Priority::Interactive),
        t => Err(corrupt(format!("unknown priority tag {t}"))),
    }
}

/// Encode one request as a [`FrameKind::Request`] frame with id `id`.
/// Fails typed if any geometry field exceeds its 32-bit wire width.
pub fn encode_request(id: u64, req: &DecomposeRequest) -> Result<Frame, WireError> {
    let mut payload = Vec::with_capacity(16 + req.image.data().len() * 8);
    payload.push(priority_tag(req.priority));
    payload.push(boundary_tag(req.mode));
    payload.push(req.deadline.is_some() as u8);
    payload.push(0);
    payload.extend_from_slice(&wire_u32(req.levels, "levels")?.to_le_bytes());
    if let Some(d) = req.deadline {
        payload.extend_from_slice(&d.to_bits().to_le_bytes());
    }
    encode_bank(&mut payload, &req.bank)?;
    put_matrix(&mut payload, &req.image)?;
    Ok(Frame::new(FrameKind::Request, id, payload))
}

/// Decode a [`FrameKind::Request`] payload.
pub fn decode_request(frame: &Frame) -> Result<DecomposeRequest, WireError> {
    let mut r = Reader::new(&frame.payload);
    let priority = decode_priority(r.u8()?)?;
    let mode = decode_boundary(r.u8()?)?;
    let has_deadline = match r.u8()? {
        0 => false,
        1 => true,
        t => return Err(corrupt(format!("bad deadline flag {t}"))),
    };
    if r.u8()? != 0 {
        return Err(corrupt("nonzero request padding"));
    }
    let levels = r.u32()? as usize;
    let deadline = if has_deadline { Some(r.f64()?) } else { None };
    let bank = decode_bank(&mut r)?;
    let image = matrix(&mut r)?;
    r.done()?;
    Ok(DecomposeRequest {
        image,
        bank,
        levels,
        mode,
        priority,
        deadline,
    })
}

fn encode_pyramid(out: &mut Vec<u8>, pyr: &Pyramid) -> Result<(), WireError> {
    let (rows, cols) = pyr.image_dims();
    out.extend_from_slice(&wire_u32(rows, "pyramid rows")?.to_le_bytes());
    out.extend_from_slice(&wire_u32(cols, "pyramid cols")?.to_le_bytes());
    out.extend_from_slice(&wire_u32(pyr.levels(), "pyramid levels")?.to_le_bytes());
    put_plane(out, pyr.approx.data());
    for bands in &pyr.detail {
        put_plane(out, bands.lh.data());
        put_plane(out, bands.hl.data());
        put_plane(out, bands.hh.data());
    }
    Ok(())
}

fn decode_pyramid(r: &mut Reader<'_>) -> Result<Pyramid, WireError> {
    let rows = r.u32()? as usize;
    let cols = r.u32()? as usize;
    let levels = r.u32()? as usize;
    if levels == 0 || levels >= 32 {
        return Err(corrupt(format!("pyramid depth {levels} out of range")));
    }
    if rows >> levels << levels != rows || cols >> levels << levels != cols {
        return Err(corrupt(format!(
            "pyramid dims {rows}x{cols} do not divide by 2^{levels}"
        )));
    }
    let band = |r: &mut Reader<'_>, h: usize, w: usize| -> Result<Matrix, WireError> {
        let data = r.plane(h.checked_mul(w).ok_or_else(|| corrupt("band overflow"))?)?;
        Matrix::from_vec(h, w, data).map_err(|e| corrupt(e.to_string()))
    };
    let approx = band(r, rows >> levels, cols >> levels)?;
    let mut detail = Vec::with_capacity(levels);
    for level in 1..=levels {
        let (h, w) = (rows >> level, cols >> level);
        detail.push(Subbands {
            lh: band(r, h, w)?,
            hl: band(r, h, w)?,
            hh: band(r, h, w)?,
        });
    }
    Ok(Pyramid { approx, detail })
}

fn encode_rejection(out: &mut Vec<u8>, rej: &Rejection) -> Result<(), WireError> {
    match rej {
        Rejection::QueueFull { depth } => {
            out.push(0);
            out.extend_from_slice(&(*depth as u64).to_le_bytes());
        }
        Rejection::Shed { by } => {
            out.push(1);
            out.push(priority_tag(*by));
        }
        Rejection::DeadlineExpired { deadline, now } => {
            out.push(2);
            out.extend_from_slice(&deadline.to_bits().to_le_bytes());
            out.extend_from_slice(&now.to_bits().to_le_bytes());
        }
        Rejection::Invalid { detail } => {
            out.push(3);
            put_string(out, detail)?;
        }
        Rejection::Draining => out.push(4),
        Rejection::ShardFailed { shard, restarts } => {
            out.push(5);
            out.extend_from_slice(&(*shard as u64).to_le_bytes());
            out.extend_from_slice(&restarts.to_le_bytes());
        }
        Rejection::Requeued { attempts } => {
            out.push(6);
            out.extend_from_slice(&attempts.to_le_bytes());
        }
    }
    Ok(())
}

fn decode_rejection(r: &mut Reader<'_>) -> Result<Rejection, WireError> {
    Ok(match r.u8()? {
        0 => Rejection::QueueFull {
            depth: r.u64()? as usize,
        },
        1 => Rejection::Shed {
            by: decode_priority(r.u8()?)?,
        },
        2 => Rejection::DeadlineExpired {
            deadline: r.f64()?,
            now: r.f64()?,
        },
        3 => Rejection::Invalid {
            detail: r.string()?,
        },
        4 => Rejection::Draining,
        5 => Rejection::ShardFailed {
            shard: r.u64()? as usize,
            restarts: r.u32()?,
        },
        6 => Rejection::Requeued { attempts: r.u32()? },
        t => return Err(corrupt(format!("unknown rejection tag {t}"))),
    })
}

/// Encode one terminal outcome as a [`FrameKind::Response`] frame.
pub fn encode_response(id: u64, result: &ServeResult) -> Result<Frame, WireError> {
    let mut payload = Vec::new();
    match result {
        Ok(resp) => {
            payload.push(0);
            payload.push(resp.cache_hit as u8);
            payload.push(resp.degraded as u8);
            payload.push(0);
            payload.extend_from_slice(&wire_u32(resp.batch_size, "batch size")?.to_le_bytes());
            payload.extend_from_slice(&resp.wait_s.to_bits().to_le_bytes());
            payload.extend_from_slice(&resp.service_s.to_bits().to_le_bytes());
            payload.extend_from_slice(&resp.error_bound.to_bits().to_le_bytes());
            encode_pyramid(&mut payload, &resp.pyramid)?;
        }
        Err(rej) => {
            payload.push(1);
            encode_rejection(&mut payload, rej)?;
        }
    }
    Ok(Frame::new(FrameKind::Response, id, payload))
}

/// Decode a [`FrameKind::Response`] payload that must be a *terminal*
/// outcome (tag 0 or 1). Progressive header/plane payloads are a typed
/// error here; use [`decode_response_body`] to accept all three.
pub fn decode_response(frame: &Frame) -> Result<ServeResult, WireError> {
    let mut r = Reader::new(&frame.payload);
    let result = match r.u8()? {
        0 => {
            let cache_hit = r.u8()? != 0;
            let degraded = r.u8()? != 0;
            if r.u8()? != 0 {
                return Err(corrupt("nonzero response padding"));
            }
            let batch_size = r.u32()? as usize;
            let wait_s = r.f64()?;
            let service_s = r.f64()?;
            let error_bound = r.f64()?;
            let pyramid = decode_pyramid(&mut r)?;
            Ok(DecomposeResponse {
                pyramid,
                cache_hit,
                batch_size,
                wait_s,
                service_s,
                degraded,
                error_bound,
            })
        }
        1 => Err(decode_rejection(&mut r)?),
        t @ (2 | 3) => {
            return Err(corrupt(format!(
                "progressive response tag {t} where a terminal outcome was expected"
            )))
        }
        t => return Err(corrupt(format!("unknown outcome tag {t}"))),
    };
    r.done()?;
    Ok(result)
}

// ---------------------------------------------------------------------
// Progressive response payloads (outcome tags 2 and 3)
// ---------------------------------------------------------------------

/// First frame of a progressive response: all the serving metadata, the
/// geometry, the plane count, and the *exact* LL plane. Carries
/// [`FLAG_CONTINUE`] whenever detail planes follow.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressiveHeader {
    /// Whether the plan came from the cache.
    pub cache_hit: bool,
    /// Whether the server served this in degraded mode.
    pub degraded: bool,
    /// Requests sharing the engine dispatch.
    pub batch_size: usize,
    /// Seconds queued before dispatch.
    pub wait_s: f64,
    /// Seconds of service.
    pub service_s: f64,
    /// The server-side error bound of the *complete* pyramid versus the
    /// exact decomposition (degraded-mode quantization; `0.0` if exact).
    pub base_error_bound: f64,
    /// Original image rows.
    pub rows: usize,
    /// Original image cols.
    pub cols: usize,
    /// Decomposition depth.
    pub levels: usize,
    /// Detail-plane frames that follow (3 per level).
    pub planes_total: usize,
    /// Largest absolute error the on-wire codec may add to any detail
    /// coefficient (`threshold + step / 2`; `0.0` for lossless).
    pub codec_tolerance: f64,
    /// Error bound of the reassembly after this frame alone (missing
    /// detail planes read as zero), *relative to the shipped pyramid*.
    pub bound_after: f64,
    /// The LL plane, always exact.
    pub approx: Matrix,
}

/// Which detail band a plane frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaneBand {
    /// Low-high (horizontal detail).
    Lh = 0,
    /// High-low (vertical detail).
    Hl = 1,
    /// High-high (diagonal detail).
    Hh = 2,
}

impl PlaneBand {
    fn from_u8(v: u8) -> Option<PlaneBand> {
        match v {
            0 => Some(PlaneBand::Lh),
            1 => Some(PlaneBand::Hl),
            2 => Some(PlaneBand::Hh),
            _ => None,
        }
    }
}

/// Coefficients of one detail plane, densely or sparsely encoded —
/// whichever is fewer bytes for the plane's post-quantization support.
#[derive(Debug, Clone, PartialEq)]
pub enum PlaneCoeffs {
    /// Every coefficient, row-major.
    Dense(Vec<f64>),
    /// `(row-major index, value)` for the nonzero coefficients, indices
    /// strictly ascending (the canonical order; decode enforces it).
    Sparse(Vec<(u32, f64)>),
}

/// One detail-plane frame of a progressive response.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressivePlane {
    /// 1-based position in the energy-ordered plane sequence.
    pub seq: usize,
    /// Pyramid level (1 = finest).
    pub level: usize,
    /// Which band of that level.
    pub band: PlaneBand,
    /// Plane rows (`image rows >> level`).
    pub rows: usize,
    /// Plane cols (`image cols >> level`).
    pub cols: usize,
    /// Error bound of the reassembly once this plane is applied,
    /// relative to the shipped pyramid: `max(codec tolerance, largest
    /// original |coeff| over the planes still outstanding)`. Monotone
    /// nonincreasing along the sequence by construction.
    pub bound_after: f64,
    /// The (possibly quantized) coefficients.
    pub coeffs: PlaneCoeffs,
}

/// Encode the header frame of a progressive response.
pub fn encode_progressive_header(id: u64, h: &ProgressiveHeader) -> Result<Frame, WireError> {
    let mut payload = Vec::with_capacity(64 + h.approx.data().len() * 8);
    payload.push(2);
    payload.push(h.cache_hit as u8);
    payload.push(h.degraded as u8);
    payload.push(0);
    payload.extend_from_slice(&wire_u32(h.batch_size, "batch size")?.to_le_bytes());
    payload.extend_from_slice(&h.wait_s.to_bits().to_le_bytes());
    payload.extend_from_slice(&h.service_s.to_bits().to_le_bytes());
    payload.extend_from_slice(&h.base_error_bound.to_bits().to_le_bytes());
    payload.extend_from_slice(&wire_u32(h.rows, "pyramid rows")?.to_le_bytes());
    payload.extend_from_slice(&wire_u32(h.cols, "pyramid cols")?.to_le_bytes());
    payload.extend_from_slice(&wire_u32(h.levels, "pyramid levels")?.to_le_bytes());
    payload.extend_from_slice(&wire_u32(h.planes_total, "plane count")?.to_le_bytes());
    payload.extend_from_slice(&h.codec_tolerance.to_bits().to_le_bytes());
    payload.extend_from_slice(&h.bound_after.to_bits().to_le_bytes());
    put_matrix(&mut payload, &h.approx)?;
    let frame = Frame::new(FrameKind::Response, id, payload);
    Ok(if h.planes_total > 0 {
        frame.with_continue()
    } else {
        frame
    })
}

fn decode_progressive_header(r: &mut Reader<'_>) -> Result<ProgressiveHeader, WireError> {
    let cache_hit = r.u8()? != 0;
    let degraded = r.u8()? != 0;
    if r.u8()? != 0 {
        return Err(corrupt("nonzero progressive header padding"));
    }
    let batch_size = r.u32()? as usize;
    let wait_s = r.f64()?;
    let service_s = r.f64()?;
    let base_error_bound = r.f64()?;
    let rows = r.u32()? as usize;
    let cols = r.u32()? as usize;
    let levels = r.u32()? as usize;
    let planes_total = r.u32()? as usize;
    let codec_tolerance = r.f64()?;
    let bound_after = r.f64()?;
    if levels == 0 || levels >= 32 {
        return Err(corrupt(format!("pyramid depth {levels} out of range")));
    }
    if rows >> levels << levels != rows || cols >> levels << levels != cols {
        return Err(corrupt(format!(
            "pyramid dims {rows}x{cols} do not divide by 2^{levels}"
        )));
    }
    if planes_total != 3 * levels {
        return Err(corrupt(format!(
            "progressive header declares {planes_total} planes for {levels} levels"
        )));
    }
    let approx = matrix(r)?;
    if approx.rows() != rows >> levels || approx.cols() != cols >> levels {
        return Err(corrupt(format!(
            "LL plane is {}x{}, geometry demands {}x{}",
            approx.rows(),
            approx.cols(),
            rows >> levels,
            cols >> levels
        )));
    }
    Ok(ProgressiveHeader {
        cache_hit,
        degraded,
        batch_size,
        wait_s,
        service_s,
        base_error_bound,
        rows,
        cols,
        levels,
        planes_total,
        codec_tolerance,
        bound_after,
        approx,
    })
}

/// Encode one detail-plane frame; `more` sets [`FLAG_CONTINUE`] (clear
/// only on the final plane of the sequence).
pub fn encode_progressive_plane(
    id: u64,
    p: &ProgressivePlane,
    more: bool,
) -> Result<Frame, WireError> {
    let mut payload = Vec::with_capacity(32);
    payload.push(3);
    payload.push(p.band as u8);
    match &p.coeffs {
        PlaneCoeffs::Dense(_) => payload.push(0),
        PlaneCoeffs::Sparse(_) => payload.push(1),
    }
    payload.push(0);
    payload.extend_from_slice(&wire_u32(p.seq, "plane seq")?.to_le_bytes());
    payload.extend_from_slice(&wire_u32(p.level, "plane level")?.to_le_bytes());
    payload.extend_from_slice(&wire_u32(p.rows, "plane rows")?.to_le_bytes());
    payload.extend_from_slice(&wire_u32(p.cols, "plane cols")?.to_le_bytes());
    payload.extend_from_slice(&p.bound_after.to_bits().to_le_bytes());
    match &p.coeffs {
        PlaneCoeffs::Dense(data) => {
            if data.len() != p.rows * p.cols {
                return Err(corrupt(format!(
                    "dense plane holds {} values, geometry demands {}",
                    data.len(),
                    p.rows * p.cols
                )));
            }
            put_plane(&mut payload, data);
        }
        PlaneCoeffs::Sparse(entries) => {
            payload.extend_from_slice(&wire_u32(entries.len(), "sparse count")?.to_le_bytes());
            for &(ix, v) in entries {
                payload.extend_from_slice(&ix.to_le_bytes());
                payload.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
    }
    let frame = Frame::new(FrameKind::Response, id, payload);
    Ok(if more { frame.with_continue() } else { frame })
}

fn decode_progressive_plane(r: &mut Reader<'_>) -> Result<ProgressivePlane, WireError> {
    let band = PlaneBand::from_u8(r.u8()?)
        .ok_or_else(|| corrupt("unknown detail band tag".to_string()))?;
    let encoding = r.u8()?;
    if r.u8()? != 0 {
        return Err(corrupt("nonzero plane padding"));
    }
    let seq = r.u32()? as usize;
    let level = r.u32()? as usize;
    let rows = r.u32()? as usize;
    let cols = r.u32()? as usize;
    let bound_after = r.f64()?;
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| corrupt("plane dims overflow"))?;
    let coeffs = match encoding {
        0 => PlaneCoeffs::Dense(r.plane(n)?),
        1 => {
            let count = r.u32()? as usize;
            if count > n {
                return Err(corrupt(format!(
                    "sparse plane declares {count} entries in {n} slots"
                )));
            }
            let mut entries = Vec::with_capacity(count);
            let mut prev: Option<u32> = None;
            for _ in 0..count {
                let ix = r.u32()?;
                let v = r.f64()?;
                if ix as usize >= n {
                    return Err(corrupt(format!("sparse index {ix} out of {n} slots")));
                }
                if prev.is_some_and(|p| ix <= p) {
                    return Err(corrupt("sparse indices not strictly ascending"));
                }
                prev = Some(ix);
                entries.push((ix, v));
            }
            PlaneCoeffs::Sparse(entries)
        }
        t => return Err(corrupt(format!("unknown plane encoding {t}"))),
    };
    Ok(ProgressivePlane {
        seq,
        level,
        band,
        rows,
        cols,
        bound_after,
        coeffs,
    })
}

/// Every shape a [`FrameKind::Response`] payload can take.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// A terminal outcome (monolithic response or rejection).
    Outcome(ServeResult),
    /// The first frame of a progressive sequence.
    Header(ProgressiveHeader),
    /// One detail plane of a progressive sequence.
    Plane(ProgressivePlane),
}

/// Decode any [`FrameKind::Response`] payload — monolithic outcome,
/// progressive header, or progressive plane.
pub fn decode_response_body(frame: &Frame) -> Result<ResponseBody, WireError> {
    match frame.payload.first() {
        Some(2) => {
            let mut r = Reader::new(&frame.payload);
            let _tag = r.u8()?;
            let h = decode_progressive_header(&mut r)?;
            r.done()?;
            Ok(ResponseBody::Header(h))
        }
        Some(3) => {
            let mut r = Reader::new(&frame.payload);
            let _tag = r.u8()?;
            let p = decode_progressive_plane(&mut r)?;
            r.done()?;
            Ok(ResponseBody::Plane(p))
        }
        _ => Ok(ResponseBody::Outcome(decode_response(frame)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> DecomposeRequest {
        let img = Matrix::from_fn(8, 8, |r, c| (r * 8 + c) as f64 - 31.5);
        DecomposeRequest::new(img, FilterBank::haar(), 2)
            .with_priority(Priority::Interactive)
            .with_deadline(0.125)
    }

    #[test]
    fn frames_round_trip_bitwise() {
        let req = sample_request();
        for frame in [
            encode_hello(
                FrameKind::Hello,
                7,
                &Hello {
                    protocol: PROTOCOL_VERSION as u32,
                    max_payload: DEFAULT_MAX_PAYLOAD,
                    window: 4,
                },
            ),
            encode_request(42, &req).unwrap(),
            encode_response(
                42,
                &Err(Rejection::ShardFailed {
                    shard: 2,
                    restarts: 3,
                }),
            )
            .unwrap(),
            Frame::new(FrameKind::Bye, 0, Vec::new()),
            Frame::new(FrameKind::Cancel, 17, Vec::new()),
            Frame::new(FrameKind::Response, 3, vec![9, 9]).with_continue(),
        ] {
            let bytes = encode_frame(&frame).unwrap();
            let decoded = decode_complete(&bytes, DEFAULT_MAX_PAYLOAD).expect("valid frame");
            assert_eq!(decoded, frame);
        }
        let back =
            decode_request(&encode_request(9, &req).unwrap()).expect("valid request payload");
        assert_eq!(back.image, req.image);
        assert_eq!(back.bank, req.bank);
        assert_eq!(back.levels, req.levels);
        assert_eq!(back.deadline, req.deadline);
        assert_eq!(back.priority, req.priority);
    }

    #[test]
    fn undefined_flag_bits_are_rejected_both_ways() {
        let mut frame = Frame::new(FrameKind::Bye, 0, Vec::new());
        frame.flags = 0x82;
        assert!(matches!(
            encode_frame(&frame),
            Err(WireError::FrameCorrupt { .. })
        ));
        let mut bytes = encode_frame(&Frame::new(FrameKind::Bye, 0, Vec::new())).unwrap();
        bytes[6] = 0x02;
        assert!(matches!(
            decode_frame(&bytes, DEFAULT_MAX_PAYLOAD),
            Err(WireError::FrameCorrupt { .. })
        ));
        // Reserved byte 7 must stay zero too.
        let mut bytes = encode_frame(&Frame::new(FrameKind::Bye, 0, Vec::new())).unwrap();
        bytes[7] = 1;
        assert!(matches!(
            decode_frame(&bytes, DEFAULT_MAX_PAYLOAD),
            Err(WireError::FrameCorrupt { .. })
        ));
    }

    #[test]
    fn continue_flag_round_trips_and_reads_back() {
        let f = Frame::new(FrameKind::Response, 5, vec![1]).with_continue();
        assert!(f.more_follows());
        let bytes = encode_frame(&f).unwrap();
        let got = decode_complete(&bytes, DEFAULT_MAX_PAYLOAD).unwrap();
        assert!(got.more_follows());
        assert_eq!(got, f);
        assert!(!Frame::new(FrameKind::Response, 5, vec![1]).more_follows());
    }

    #[test]
    fn oversized_matrix_dims_are_typed_at_encode_time() {
        // A Matrix with > u32::MAX rows cannot be built in a test, so
        // exercise the checked helper directly.
        match wire_u32(u32::MAX as usize + 1, "matrix rows") {
            Err(WireError::FrameTooLarge { len, max }) => {
                assert_eq!(len, u32::MAX as u64 + 1);
                assert_eq!(max, u32::MAX as u64);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        assert_eq!(wire_u32(7, "ok").unwrap(), 7);
    }

    fn sample_progressive() -> (ProgressiveHeader, Vec<ProgressivePlane>) {
        let header = ProgressiveHeader {
            cache_hit: true,
            degraded: false,
            batch_size: 3,
            wait_s: 0.25,
            service_s: 0.5,
            base_error_bound: 0.0,
            rows: 8,
            cols: 8,
            levels: 2,
            planes_total: 6,
            codec_tolerance: 0.05,
            bound_after: 1.5,
            approx: Matrix::from_fn(2, 2, |r, c| (r + c) as f64),
        };
        let planes = vec![
            ProgressivePlane {
                seq: 1,
                level: 2,
                band: PlaneBand::Lh,
                rows: 2,
                cols: 2,
                bound_after: 0.75,
                coeffs: PlaneCoeffs::Dense(vec![1.0, -2.0, 0.0, 0.5]),
            },
            ProgressivePlane {
                seq: 2,
                level: 1,
                band: PlaneBand::Hh,
                rows: 4,
                cols: 4,
                bound_after: 0.05,
                coeffs: PlaneCoeffs::Sparse(vec![(0, 3.0), (5, -1.25), (15, 0.125)]),
            },
        ];
        (header, planes)
    }

    #[test]
    fn progressive_payloads_round_trip() {
        let (header, planes) = sample_progressive();
        let hf = encode_progressive_header(11, &header).unwrap();
        assert!(hf.more_follows(), "planes follow, CONTINUE must be set");
        match decode_response_body(&hf).unwrap() {
            ResponseBody::Header(got) => assert_eq!(got, header),
            other => panic!("expected header, got {other:?}"),
        }
        for (i, p) in planes.iter().enumerate() {
            let more = i + 1 < planes.len();
            let pf = encode_progressive_plane(11, p, more).unwrap();
            assert_eq!(pf.more_follows(), more);
            match decode_response_body(&pf).unwrap() {
                ResponseBody::Plane(got) => assert_eq!(&got, p),
                other => panic!("expected plane, got {other:?}"),
            }
        }
        // decode_response refuses progressive payloads with a typed error.
        assert!(matches!(
            decode_response(&hf),
            Err(WireError::FrameCorrupt { .. })
        ));
        // decode_response_body still passes terminal outcomes through.
        let term = encode_response(11, &Err(Rejection::Draining)).unwrap();
        assert!(matches!(
            decode_response_body(&term).unwrap(),
            ResponseBody::Outcome(Err(Rejection::Draining))
        ));
    }

    #[test]
    fn progressive_decode_rejects_malformed_planes() {
        let (header, planes) = sample_progressive();
        // Sparse indices must be strictly ascending.
        let mut bad = planes[1].clone();
        bad.coeffs = PlaneCoeffs::Sparse(vec![(5, 1.0), (5, 2.0)]);
        let f = encode_progressive_plane(1, &bad, false).unwrap();
        assert!(matches!(
            decode_response_body(&f),
            Err(WireError::FrameCorrupt { .. })
        ));
        // Sparse index out of range.
        let mut bad = planes[1].clone();
        bad.coeffs = PlaneCoeffs::Sparse(vec![(16, 1.0)]);
        let f = encode_progressive_plane(1, &bad, false).unwrap();
        assert!(matches!(
            decode_response_body(&f),
            Err(WireError::FrameCorrupt { .. })
        ));
        // Dense length mismatch is caught at encode time.
        let mut bad = planes[0].clone();
        bad.coeffs = PlaneCoeffs::Dense(vec![1.0]);
        assert!(matches!(
            encode_progressive_plane(1, &bad, false),
            Err(WireError::FrameCorrupt { .. })
        ));
        // Header with inconsistent plane count.
        let mut badh = header.clone();
        badh.planes_total = 5;
        let f = encode_progressive_header(1, &badh).unwrap();
        assert!(matches!(
            decode_response_body(&f),
            Err(WireError::FrameCorrupt { .. })
        ));
    }

    #[test]
    fn banks_round_trip_including_lifting_kinds() {
        for bank in [
            FilterBank::haar(),
            FilterBank::daubechies(4).unwrap(),
            FilterBank::cdf53(),
            FilterBank::cdf97(),
        ] {
            let mut out = Vec::new();
            encode_bank(&mut out, &bank).unwrap();
            let got = decode_bank(&mut Reader::new(&out)).expect("valid bank");
            assert_eq!(got, bank);
            assert_eq!(got.lifting_kind(), bank.lifting_kind());
        }
    }

    #[test]
    fn bit_flips_are_caught_by_the_checksum() {
        let bytes = encode_frame(&encode_request(1, &sample_request()).unwrap()).unwrap();
        for pos in [4usize, 9, HEADER_LEN + 3, bytes.len() - 12] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            let err = decode_complete(&bad, DEFAULT_MAX_PAYLOAD).expect_err("flip must fail");
            assert!(matches!(err, WireError::FrameCorrupt { .. }), "{err}");
        }
    }

    #[test]
    fn oversized_declared_payload_is_too_large_before_allocation() {
        let mut bytes = encode_frame(&Frame::new(FrameKind::Bye, 0, Vec::new())).unwrap();
        bytes[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        match decode_frame(&bytes, 1024) {
            Err(WireError::FrameTooLarge { len, max }) => {
                assert_eq!(len, u32::MAX as u64);
                assert_eq!(max, 1024);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        let bytes = encode_frame(&encode_request(1, &sample_request()).unwrap()).unwrap();
        for cut in [
            0usize,
            3,
            7,
            HEADER_LEN - 1,
            HEADER_LEN + 5,
            bytes.len() - 1,
        ] {
            match decode_frame(&bytes[..cut], DEFAULT_MAX_PAYLOAD) {
                Ok(None) | Err(WireError::FrameCorrupt { .. }) => {}
                other => panic!("cut at {cut}: unexpected {other:?}"),
            }
            assert!(matches!(
                decode_complete(&bytes[..cut], DEFAULT_MAX_PAYLOAD),
                Err(WireError::FrameCorrupt { .. })
            ));
        }
    }

    #[test]
    fn streaming_decode_consumes_exactly_one_frame() {
        let a = encode_frame(&encode_request(1, &sample_request()).unwrap()).unwrap();
        let b = encode_frame(&Frame::new(FrameKind::Bye, 9, Vec::new())).unwrap();
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        let (f1, n1) = decode_frame(&stream, DEFAULT_MAX_PAYLOAD)
            .expect("valid")
            .expect("complete");
        assert_eq!(n1, a.len());
        assert_eq!(f1.kind, FrameKind::Request);
        let (f2, n2) = decode_frame(&stream[n1..], DEFAULT_MAX_PAYLOAD)
            .expect("valid")
            .expect("complete");
        assert_eq!(n2, b.len());
        assert_eq!(f2.kind, FrameKind::Bye);
        assert_eq!(f2.id, 9);
    }
}
