//! Remote serving: [`RemoteServer`] puts the wire protocol in front of
//! [`WaveletService::submit`], [`RemoteClient`] drives it from the
//! other side.
//!
//! ## Connection anatomy
//!
//! Each accepted connection gets two threads. The *reader* performs the
//! handshake, then turns Request frames into `submit()` calls; the
//! *writer* waits on the resulting [`ResponseHandle`]s in FIFO order
//! and streams Response frames back. Between them sits a bounded
//! in-flight window: the reader stops pulling bytes once `window`
//! submitted requests have unsent responses, so a client that floods
//! requests without reading responses backpressures itself (its TCP
//! send buffer / pipe window fills) instead of ballooning server
//! memory.
//!
//! ## Exactly-once
//!
//! Clients assign monotone request ids and resubmit idempotently after
//! transport faults. The server keeps a per-client *resolution book*:
//! a request id is `InFlight` from submission until its outcome is
//! recorded, then `Done(result)`. A resubmit of a `Done` id replays the
//! recorded outcome without re-execution; a resubmit of an `InFlight`
//! id (the original connection died mid-service) waits for the
//! original resolution and sends that. Execution happens at most once
//! per id; rejected submissions are deliberately *not* recorded, so a
//! retry after `QueueFull` re-attempts admission rather than replaying
//! the rejection.
//!
//! ## Progressive delivery
//!
//! With [`RemoteConfig::progressive`] set, successful responses ship
//! as a plane sequence instead of one monolithic frame: a header frame
//! (metadata + exact LL plane, [`crate::wire::FLAG_CONTINUE`] set),
//! then detail planes in decreasing energy order, the last with the
//! flag clear. The whole sequence occupies *one* window permit — flow
//! control is per-request, so a progressive response cannot starve its
//! neighbours beyond what a monolithic one would. A client whose
//! tolerance is met mid-sequence sends [`FrameKind::Cancel`]; the
//! reader records the id and the writer stops the sequence at the next
//! plane boundary. Cancel is idempotent and dedup-safe: the request
//! already executed and its outcome is in the resolution book, so
//! cancellation only trims delivery, never accounting.
//!
//! ## Drain
//!
//! [`RemoteServer::shutdown`] closes the listener, lets every reader
//! stop at a frame boundary, runs the service's own graceful drain
//! (which resolves every accepted request), and lets writers flush
//! those responses before FIN — lossless for everything accepted. A
//! half-open connection (partial frame, then silence) cannot block
//! this: after `drain_grace` it is aborted and counted in
//! [`TransportMetrics::conn_aborted`].

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use dwt_mimd::CheckpointCodec;

use crate::faults::{WireDir, WireFaultPlan};
use crate::metrics::{MetricsSnapshot, TransportMetrics};
use crate::progressive::{split_response, Reassembler};
use crate::request::{DecomposeRequest, Rejection, ServeResult};
use crate::server::{ResponseHandle, ServiceConfig, ServiceError, WaveletService};
use crate::transport::{
    Connector, FrameIo, Listener, RecvFrame, Transport, TransportError, WireClock,
};
use crate::wire::{
    decode_hello, decode_request, decode_response_body, encode_hello, encode_progressive_header,
    encode_progressive_plane, encode_request, encode_response, Frame, FrameKind, Hello,
    ResponseBody, DEFAULT_MAX_PAYLOAD, HEADER_LEN, PROTOCOL_VERSION, TRAILER_LEN,
};

/// Smallest payload window either side will settle on: enough to frame
/// a handshake or rejection even against an absurd peer announcement.
const MIN_NEGOTIATED_PAYLOAD: u32 = 64;

/// `min(ours, theirs)` with the floor both sides clamp to, so the two
/// ends always agree on the window byte-for-byte.
fn negotiate_payload(ours: u32, theirs: u32) -> u32 {
    ours.max(MIN_NEGOTIATED_PAYLOAD)
        .min(theirs.max(MIN_NEGOTIATED_PAYLOAD))
}

/// Remote-layer knobs, layered on top of a [`ServiceConfig`].
#[derive(Debug, Clone)]
pub struct RemoteConfig {
    /// Per-connection in-flight window: submitted requests whose
    /// responses are not yet sent. The reader stops reading at the cap.
    pub window: u32,
    /// Largest frame payload either side accepts.
    pub max_payload: u32,
    /// Poll period for receive/accept waits.
    pub tick: Duration,
    /// How long drain waits for a mid-frame connection to finish its
    /// frame before aborting it.
    pub drain_grace: Duration,
    /// Seeded wire faults, injected on the server's send path (the
    /// client injects its own directions from the same plan).
    pub wire_faults: WireFaultPlan,
    /// When set, successful responses stream progressively (header +
    /// energy-ordered detail planes) with this codec quantizing the
    /// planes on the wire. `None` keeps monolithic responses.
    pub progressive: Option<CheckpointCodec>,
}

impl Default for RemoteConfig {
    fn default() -> Self {
        RemoteConfig {
            window: 8,
            max_payload: DEFAULT_MAX_PAYLOAD,
            tick: Duration::from_millis(1),
            drain_grace: Duration::from_millis(50),
            wire_faults: WireFaultPlan::none(),
            progressive: None,
        }
    }
}

impl RemoteConfig {
    /// Validate the knobs. Returns a human-readable reason on failure.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("window must be >= 1".into());
        }
        if self.max_payload < MIN_NEGOTIATED_PAYLOAD {
            return Err(format!(
                "max_payload {} is too small to frame",
                self.max_payload
            ));
        }
        if let Some(codec) = &self.progressive {
            if !codec.is_valid() {
                return Err("progressive codec parameters must be finite and >= 0".into());
            }
        }
        self.wire_faults.validate()
    }
}

/// Everything a finished remote run exports: the service's own books
/// plus the transport layer's.
#[derive(Debug, Clone, Default)]
pub struct RemoteMetrics {
    /// Per-shard service metrics (as an in-process run would export).
    pub service: MetricsSnapshot,
    /// Transport counters merged over every connection.
    pub transport: TransportMetrics,
}

// ---------------------------------------------------------------------
// Dedup registry (the per-client resolution book)
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Slot {
    InFlight,
    Done(ServeResult),
}

#[derive(Default)]
struct ClientBook {
    entries: BTreeMap<u64, Slot>,
    max_id: u64,
}

struct Dedup {
    books: Mutex<HashMap<u64, ClientBook>>,
    resolved: Condvar,
    /// Resolved entries older than this many ids below the client's
    /// newest are pruned — a client retries only its outstanding window,
    /// so anything far behind the head can never be asked for again.
    keep: u64,
}

impl Dedup {
    fn new(window: u32) -> Arc<Dedup> {
        Arc::new(Dedup {
            books: Mutex::new(HashMap::new()),
            resolved: Condvar::new(),
            keep: window as u64 * 4 + 64,
        })
    }

    /// Look up `(client, id)`; if unseen, mark it `InFlight` and return
    /// `None` (the caller owns the submission).
    fn claim(&self, client: u64, id: u64) -> Option<Slot> {
        let mut books = self.books.lock();
        let book = books.entry(client).or_default();
        book.max_id = book.max_id.max(id);
        match book.entries.get(&id) {
            Some(slot) => Some(slot.clone()),
            None => {
                book.entries.insert(id, Slot::InFlight);
                None
            }
        }
    }

    /// Record the terminal outcome for `(client, id)` and prune the
    /// book's resolved tail.
    fn resolve(&self, client: u64, id: u64, result: &ServeResult) {
        let mut books = self.books.lock();
        let book = books.entry(client).or_default();
        book.entries.insert(id, Slot::Done(result.clone()));
        let horizon = book.max_id.saturating_sub(self.keep);
        while let Some((&first, slot)) = book.entries.first_key_value() {
            if first >= horizon || !matches!(slot, Slot::Done(_)) {
                break;
            }
            book.entries.remove(&first);
        }
        self.resolved.notify_all();
    }

    /// Wait until `(client, id)` resolves (the original connection's
    /// writer records it), bailing out if `dead` is raised.
    fn await_done(
        &self,
        client: u64,
        id: u64,
        tick: Duration,
        dead: &AtomicBool,
    ) -> Option<ServeResult> {
        let mut books = self.books.lock();
        loop {
            if let Some(Slot::Done(result)) = books.get(&client).and_then(|b| b.entries.get(&id)) {
                return Some(result.clone());
            }
            if dead.load(Ordering::SeqCst) {
                return None;
            }
            self.resolved.wait_for(&mut books, tick);
        }
    }
}

// ---------------------------------------------------------------------
// Per-connection in-flight window
// ---------------------------------------------------------------------

struct Window {
    permits: Mutex<u32>,
    freed: Condvar,
}

impl Window {
    fn new(cap: u32) -> Arc<Window> {
        Arc::new(Window {
            permits: Mutex::new(cap),
            freed: Condvar::new(),
        })
    }

    /// Take one permit; `false` if the connection died while waiting.
    fn acquire(&self, tick: Duration, dead: &AtomicBool) -> bool {
        let mut permits = self.permits.lock();
        loop {
            if *permits > 0 {
                *permits -= 1;
                return true;
            }
            if dead.load(Ordering::SeqCst) {
                return false;
            }
            self.freed.wait_for(&mut permits, tick);
        }
    }

    fn release(&self) {
        *self.permits.lock() += 1;
        self.freed.notify_all();
    }
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

enum WriteItem {
    /// Wait on the service handle, record the outcome, send it.
    Resolve { id: u64, handle: ResponseHandle },
    /// Send a known outcome (rejection or dedup replay).
    Ready { id: u64, result: ServeResult },
    /// Wait for another connection's writer to record the outcome.
    AwaitDedup { id: u64 },
    /// The server's half of the handshake.
    Ack { client: u64 },
}

struct ServerShared {
    service: Mutex<Option<WaveletService>>,
    dedup: Arc<Dedup>,
    clock: Arc<WireClock>,
    metrics: Mutex<TransportMetrics>,
    drain: AtomicBool,
    config: RemoteConfig,
}

/// The wire protocol in front of a [`WaveletService`]. See the module
/// docs for the connection anatomy and drain semantics.
pub struct RemoteServer {
    shared: Arc<ServerShared>,
    accept: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

impl RemoteServer {
    /// Start the service and the accept loop on `listener`.
    pub fn start(
        service: ServiceConfig,
        config: RemoteConfig,
        mut listener: Box<dyn Listener>,
    ) -> Result<RemoteServer, String> {
        service.validate()?;
        config.validate()?;
        let shared = Arc::new(ServerShared {
            service: Mutex::new(Some(WaveletService::start(service))),
            dedup: Dedup::new(config.window),
            clock: WireClock::new(),
            metrics: Mutex::new(TransportMetrics::default()),
            drain: AtomicBool::new(false),
            config,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            loop {
                if accept_shared.drain.load(Ordering::SeqCst) {
                    listener.close();
                    break;
                }
                if let Some(transport) = listener.poll_accept() {
                    let conn_shared = Arc::clone(&accept_shared);
                    conns.push(std::thread::spawn(move || {
                        conn_main(conn_shared, transport);
                    }));
                }
            }
            conns
        });
        Ok(RemoteServer {
            shared,
            accept: Some(accept),
        })
    }

    /// Graceful drain: stop accepting, finish every accepted request,
    /// flush responses, FIN all connections, then return the merged
    /// books. Half-open connections are aborted after their grace and
    /// counted in [`TransportMetrics::conn_aborted`].
    pub fn shutdown(mut self) -> Result<RemoteMetrics, ServiceError> {
        self.shared.drain.store(true, Ordering::SeqCst);
        let conns = self
            .accept
            .take()
            .expect("shutdown runs once")
            .join()
            .expect("accept loop never panics");
        // Drain the service *while* connection writers are still
        // running: its shutdown resolves every accepted request, which
        // is exactly what the writers are waiting to flush.
        let service = self
            .shared
            .service
            .lock()
            .take()
            .expect("service present until shutdown");
        let snapshot = service.shutdown()?;
        for conn in conns {
            conn.join().expect("connection threads never panic");
        }
        let transport = *self.shared.metrics.lock();
        Ok(RemoteMetrics {
            service: snapshot,
            transport,
        })
    }
}

/// One connection, reader side. Spawns and joins its writer.
fn conn_main(shared: Arc<ServerShared>, transport: Box<dyn Transport>) {
    let cfg = &shared.config;
    let mut local = TransportMetrics::default();
    let write_half = transport.try_clone();
    let mut rio = FrameIo::new(
        transport,
        0,
        WireDir::ServerToClient,
        WireFaultPlan::none(),
        Arc::clone(&shared.clock),
    )
    .with_max_payload(cfg.max_payload);

    // Handshake: first frame must be a Hello within the grace window.
    let started = Instant::now();
    let hello = loop {
        match rio.recv_frame() {
            Ok(RecvFrame::Frame(f)) if f.kind == FrameKind::Hello => match decode_hello(&f) {
                Ok(h) => break Some((f.id, h)),
                Err(e) => {
                    local.count_error(&e.into());
                    break None;
                }
            },
            Ok(RecvFrame::Frame(_)) => {
                local.handshake_mismatch += 1;
                break None;
            }
            Ok(RecvFrame::Eof) => break None,
            Ok(RecvFrame::Idle) => {
                if started.elapsed() > cfg.drain_grace.max(Duration::from_millis(250))
                    || shared.drain.load(Ordering::SeqCst)
                {
                    break None;
                }
            }
            Err(e) => {
                local.count_error(&e);
                break None;
            }
        }
    };
    let Some((client, hello)) = hello else {
        rio.abort();
        merge_stats(&shared, local, &rio, None);
        return;
    };

    let protocol_ok = hello.protocol == PROTOCOL_VERSION as u32;
    if !protocol_ok {
        local.handshake_mismatch += 1;
    } else {
        local.conns_accepted += 1;
    }
    rio.set_conn(client);

    // Both sides settle on min(client, server) for the payload window,
    // so neither peer can push a frame the other must reject. The ack
    // still announces our raw config — the client runs the same
    // negotiation over the two announced values.
    let eff_payload = negotiate_payload(cfg.max_payload, hello.max_payload);
    rio.set_max_payload(eff_payload);

    // Writer thread: FIFO over the queue, owns the send half.
    let Some(write_io) = write_half else {
        rio.abort();
        merge_stats(&shared, local, &rio, None);
        return;
    };
    let wio = FrameIo::new(
        write_io,
        client,
        WireDir::ServerToClient,
        cfg.wire_faults.clone(),
        Arc::clone(&shared.clock),
    )
    .with_max_payload(eff_payload);
    let window = Window::new(cfg.window.min(hello.window.max(1)));
    let dead = Arc::new(AtomicBool::new(false));
    let cancels: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
    let (tx, rx) = mpsc::channel::<WriteItem>();
    let writer = {
        let shared = Arc::clone(&shared);
        let window = Arc::clone(&window);
        let dead = Arc::clone(&dead);
        let cancels = Arc::clone(&cancels);
        std::thread::spawn(move || writer_main(shared, client, wio, rx, window, dead, cancels))
    };
    tx.send(WriteItem::Ack { client })
        .expect("writer just spawned");

    if !protocol_ok {
        // The ack (carrying our protocol) is the client's mismatch
        // evidence; nothing further is served on this connection.
        drop(tx);
        let (wstats, _) = writer.join().expect("writer never panics");
        merge_stats(&shared, local, &rio, Some(wstats));
        return;
    }

    // Main read loop.
    let mut drain_seen: Option<Instant> = None;
    let mut abort = false;
    loop {
        match rio.recv_frame() {
            Ok(RecvFrame::Frame(f)) => match f.kind {
                FrameKind::Request => {
                    if !window.acquire(cfg.tick, &dead) {
                        abort = true;
                        break;
                    }
                    let item = match shared.dedup.claim(client, f.id) {
                        Some(Slot::Done(result)) => {
                            local.dedup_replays += 1;
                            WriteItem::Ready { id: f.id, result }
                        }
                        Some(Slot::InFlight) => {
                            local.dedup_replays += 1;
                            WriteItem::AwaitDedup { id: f.id }
                        }
                        None => {
                            let t0 = Instant::now();
                            let decoded = decode_request(&f);
                            local.ser_s += t0.elapsed().as_secs_f64();
                            match decoded {
                                Err(e) => {
                                    local.count_error(&e.into());
                                    window.release();
                                    abort = true;
                                    break;
                                }
                                Ok(req) => {
                                    let submitted = shared
                                        .service
                                        .lock()
                                        .as_ref()
                                        .map(|svc| svc.submit(req))
                                        .unwrap_or(Err(Rejection::Draining));
                                    match submitted {
                                        Ok(handle) => WriteItem::Resolve { id: f.id, handle },
                                        Err(rej) => {
                                            // Not recorded in the book: a
                                            // rejected request was never
                                            // executed, so a retry may
                                            // re-attempt admission.
                                            forget_claim(&shared.dedup, client, f.id);
                                            WriteItem::Ready {
                                                id: f.id,
                                                result: Err(rej),
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    };
                    if tx.send(item).is_err() {
                        abort = true;
                        break;
                    }
                }
                FrameKind::Cancel => {
                    // Idempotent: unknown, finished, and repeated ids
                    // are all no-ops — the writer simply never (or no
                    // longer) finds more planes to cut.
                    cancels.lock().insert(f.id);
                }
                FrameKind::Bye => break,
                _ => {
                    local.count_error(&TransportError::FrameCorrupt {
                        detail: format!("unexpected {:?} frame mid-stream", f.kind),
                    });
                    abort = true;
                    break;
                }
            },
            Ok(RecvFrame::Eof) => break,
            Ok(RecvFrame::Idle) => {
                if dead.load(Ordering::SeqCst) {
                    abort = true;
                    break;
                }
                if shared.drain.load(Ordering::SeqCst) {
                    let seen = *drain_seen.get_or_insert_with(Instant::now);
                    if !rio.mid_frame() {
                        break;
                    }
                    if seen.elapsed() >= cfg.drain_grace {
                        // Half-open mid-frame past its grace: abort so
                        // drain cannot be held hostage.
                        local.conn_aborted += 1;
                        abort = true;
                        break;
                    }
                }
            }
            Err(e) => {
                local.count_error(&e);
                abort = true;
                break;
            }
        }
    }
    if abort {
        dead.store(true, Ordering::SeqCst);
        rio.abort();
    }
    drop(tx);
    let (wstats, wmetrics) = writer.join().expect("writer never panics");
    local.merge(&wmetrics);
    merge_stats(&shared, local, &rio, Some(wstats));
}

/// Remove an `InFlight` claim that was never submitted (rejection path).
fn forget_claim(dedup: &Dedup, client: u64, id: u64) {
    let mut books = dedup.books.lock();
    if let Some(book) = books.get_mut(&client) {
        if matches!(book.entries.get(&id), Some(Slot::InFlight)) {
            book.entries.remove(&id);
        }
    }
}

/// Send one response — progressively when configured and successful,
/// monolithically otherwise. Checks `cancels` between plane frames so
/// an honored Cancel cuts the sequence at the next boundary. A
/// monolithic response over the negotiated payload window degrades to
/// a typed rejection instead of killing the connection.
fn send_response(
    shared: &ServerShared,
    wio: &mut FrameIo,
    cancels: &Mutex<HashSet<u64>>,
    id: u64,
    result: &ServeResult,
    local: &mut TransportMetrics,
) -> Result<(), TransportError> {
    let sent = if let (Some(codec), Ok(resp)) = (shared.config.progressive, result) {
        (|| {
            let (header, planes) = split_response(resp, codec)?;
            wio.send_frame(&encode_progressive_header(id, &header)?)?;
            for (i, plane) in planes.iter().enumerate() {
                if cancels.lock().contains(&id) {
                    local.cancels_honored += 1;
                    return Ok(());
                }
                let more = i + 1 < planes.len();
                wio.send_frame(&encode_progressive_plane(id, plane, more)?)?;
                local.planes_sent += 1;
            }
            Ok(())
        })()
    } else {
        let t0 = Instant::now();
        let frame = encode_response(id, result)?;
        local.ser_s += t0.elapsed().as_secs_f64();
        wio.send_frame(&frame)
    };
    match sent {
        Err(TransportError::FrameTooLarge { len, max }) => {
            local.frame_too_large += 1;
            let fallback = encode_response(
                id,
                &Err(Rejection::Invalid {
                    detail: format!("response payload {len} B exceeds negotiated window {max} B"),
                }),
            )?;
            wio.send_frame(&fallback)
        }
        other => other,
    }
}

/// Writer side of one connection: resolve → record → send, FIFO.
fn writer_main(
    shared: Arc<ServerShared>,
    client: u64,
    mut wio: FrameIo,
    rx: mpsc::Receiver<WriteItem>,
    window: Arc<Window>,
    dead: Arc<AtomicBool>,
    cancels: Arc<Mutex<HashSet<u64>>>,
) -> (crate::transport::WireStats, TransportMetrics) {
    let mut local = TransportMetrics::default();
    let tick = shared.config.tick;
    let mut send_ok = true;
    for item in rx.iter() {
        let (id, result, releases) = match item {
            WriteItem::Ack { client } => {
                let ack = encode_hello(
                    FrameKind::HelloAck,
                    client,
                    &Hello {
                        protocol: PROTOCOL_VERSION as u32,
                        max_payload: shared.config.max_payload,
                        window: shared.config.window,
                    },
                );
                if send_ok {
                    if let Err(e) = wio.send_frame(&ack) {
                        local.count_error(&e);
                        send_ok = false;
                        dead.store(true, Ordering::SeqCst);
                    }
                }
                continue;
            }
            WriteItem::Resolve { id, handle } => {
                let result = handle.wait();
                shared.dedup.resolve(client, id, &result);
                (id, result, true)
            }
            WriteItem::Ready { id, result } => (id, result, true),
            WriteItem::AwaitDedup { id } => {
                match shared.dedup.await_done(client, id, tick, &dead) {
                    Some(result) => (id, result, true),
                    None => {
                        window.release();
                        continue;
                    }
                }
            }
        };
        if send_ok {
            if let Err(e) = send_response(&shared, &mut wio, &cancels, id, &result, &mut local) {
                local.count_error(&e);
                send_ok = false;
                // The reader must stop pulling new work; resolutions
                // already recorded stay replayable from the book.
                dead.store(true, Ordering::SeqCst);
            }
        }
        if releases {
            window.release();
        }
    }
    if send_ok {
        wio.shutdown_write();
    }
    (wio.stats, local)
}

fn merge_stats(
    shared: &Arc<ServerShared>,
    mut local: TransportMetrics,
    rio: &FrameIo,
    wstats: Option<crate::transport::WireStats>,
) {
    local.absorb_wire(&rio.stats);
    if let Some(w) = wstats {
        local.absorb_wire(&w);
    }
    shared.metrics.lock().merge(&local);
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// Capped exponential backoff for idempotent resubmits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per request (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the second attempt, in seconds.
    pub backoff_base_s: f64,
    /// Multiplier applied per further attempt.
    pub backoff_mult: f64,
    /// Ceiling on any single backoff, in seconds.
    pub backoff_cap_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            backoff_base_s: 1e-3,
            backoff_mult: 2.0,
            backoff_cap_s: 100e-3,
        }
    }
}

impl RetryPolicy {
    /// Backoff slept after failed attempt `attempt` (1-based: the
    /// first failure is attempt 1 and sleeps `backoff_base_s`).
    ///
    /// `attempt = 0` is not a valid failed attempt; it is clamped to 1
    /// rather than panicking, so the schedule stays total. Callers
    /// should never reach it: [`RetryPolicy::validate`] rejects
    /// `max_attempts == 0` and [`RemoteClient::call`] refuses to run
    /// with an invalid policy.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        let attempt = attempt.max(1);
        (self.backoff_base_s * self.backoff_mult.powi((attempt - 1) as i32)).min(self.backoff_cap_s)
    }

    /// Validate the policy. Returns a human-readable reason on failure.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_attempts == 0 {
            return Err("max_attempts must be >= 1".into());
        }
        for (name, v) in [
            ("backoff_base_s", self.backoff_base_s),
            ("backoff_cap_s", self.backoff_cap_s),
        ] {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(format!("{name} = {v} must be finite and >= 0"));
            }
        }
        if !(self.backoff_mult >= 1.0 && self.backoff_mult.is_finite()) {
            return Err(format!(
                "backoff_mult = {} must be finite and >= 1",
                self.backoff_mult
            ));
        }
        Ok(())
    }
}

/// Client-side accounting of progressive delivery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgressiveTally {
    /// Progressive header frames received.
    pub headers: u64,
    /// Detail-plane frames applied.
    pub planes: u64,
    /// Cancel frames sent after meeting tolerance or a byte budget.
    pub cancels: u64,
    /// Calls resolved from a partial (cut-short) reassembly.
    pub partial_responses: u64,
    /// Sequences cut short because the byte budget was reached before
    /// completion (a subset of `cancels`).
    pub budget_stops: u64,
}

/// A synchronous closed-loop client: one outstanding request, retried
/// with capped exponential backoff across reconnects. Ids are assigned
/// monotonically, so the server's resolution book preserves
/// exactly-once execution under any schedule of wire faults.
pub struct RemoteClient {
    connector: Box<dyn Connector>,
    client_id: u64,
    protocol: u32,
    next_id: u64,
    io: Option<FrameIo>,
    faults: WireFaultPlan,
    clock: Arc<WireClock>,
    retry: RetryPolicy,
    response_timeout: Duration,
    /// Payload window announced in our Hello.
    max_payload: u32,
    /// `(max_payload, window)` settled by the last handshake.
    negotiated: Option<(u32, u32)>,
    /// Stop reading a progressive sequence (and Cancel it) once the
    /// running error bound reaches this.
    tolerance: Option<f64>,
    /// Stop reading a progressive sequence (and Cancel it) once this
    /// many response bytes have arrived for the call, complete or not.
    byte_budget: Option<usize>,
    /// Client-side transport counters (errors observed, frames/bytes).
    pub transport: TransportMetrics,
    /// Progressive delivery counters.
    pub progressive: ProgressiveTally,
    /// Resubmits performed across all calls.
    pub retries: u64,
}

impl RemoteClient {
    /// A client dialing through `connector` as `client_id`. Connections
    /// are opened lazily on first use and after faults.
    pub fn new(connector: Box<dyn Connector>, client_id: u64) -> RemoteClient {
        RemoteClient {
            connector,
            client_id,
            protocol: PROTOCOL_VERSION as u32,
            next_id: 0,
            io: None,
            faults: WireFaultPlan::none(),
            clock: WireClock::new(),
            retry: RetryPolicy::default(),
            response_timeout: Duration::from_secs(30),
            max_payload: DEFAULT_MAX_PAYLOAD,
            negotiated: None,
            tolerance: None,
            byte_budget: None,
            transport: TransportMetrics::default(),
            progressive: ProgressiveTally::default(),
            retries: 0,
        }
    }

    /// Inject `faults` on this client's send path (request direction).
    pub fn with_faults(mut self, faults: WireFaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Override the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Give up on any single response after `timeout`.
    pub fn with_response_timeout(mut self, timeout: Duration) -> Self {
        self.response_timeout = timeout;
        self
    }

    /// Claim a different protocol version in the handshake (tests use
    /// this to provoke [`TransportError::HandshakeMismatch`]).
    pub fn with_claimed_protocol(mut self, protocol: u32) -> Self {
        self.protocol = protocol;
        self
    }

    /// Announce a different payload window in the handshake; the
    /// connection settles on `min(ours, server's)`.
    pub fn with_max_payload(mut self, max_payload: u32) -> Self {
        self.max_payload = max_payload;
        self
    }

    /// Stop reading progressive sequences — and Cancel the request —
    /// once the running error bound is at most `tolerance`. Without a
    /// tolerance the client always reads sequences to completion.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = Some(tolerance);
        self
    }

    /// Stop reading progressive sequences — and Cancel the request —
    /// once at least `budget` response bytes (on-wire frame bytes for
    /// the call) have arrived, even if the running error bound has not
    /// met any tolerance. The partial response delivered is whatever
    /// refinement the budget paid for; budget-cut calls are surfaced in
    /// [`ProgressiveTally::budget_stops`]. Composes with
    /// [`RemoteClient::with_tolerance`]: whichever predicate fires
    /// first cancels the stream.
    pub fn with_byte_budget(mut self, budget: usize) -> Self {
        self.byte_budget = Some(budget.max(1));
        self
    }

    /// The payload window the last handshake settled on
    /// (`min(client, server)`); `None` before the first connection.
    pub fn negotiated_max_payload(&self) -> Option<u32> {
        self.negotiated.map(|(p, _)| p)
    }

    /// The in-flight window the last handshake settled on; `None`
    /// before the first connection.
    pub fn negotiated_window(&self) -> Option<u32> {
        self.negotiated.map(|(_, w)| w)
    }

    fn ensure_conn(&mut self) -> Result<(), TransportError> {
        if self.io.is_some() {
            return Ok(());
        }
        let transport = self.connector.dial()?;
        let mut io = FrameIo::new(
            transport,
            self.client_id,
            WireDir::ClientToServer,
            self.faults.clone(),
            Arc::clone(&self.clock),
        );
        io.send_frame(&encode_hello(
            FrameKind::Hello,
            self.client_id,
            &Hello {
                protocol: self.protocol,
                max_payload: self.max_payload,
                window: 1,
            },
        ))?;
        let deadline = Instant::now() + self.response_timeout;
        loop {
            match io.recv_frame()? {
                RecvFrame::Frame(f) if f.kind == FrameKind::HelloAck => {
                    let ack = decode_hello(&f)?;
                    if ack.protocol != self.protocol {
                        return Err(TransportError::HandshakeMismatch {
                            detail: format!(
                                "server speaks protocol {}, we speak {}",
                                ack.protocol, self.protocol
                            ),
                        });
                    }
                    // Same negotiation the server runs over the two
                    // announced values, so both ends enforce the same
                    // window in both directions.
                    let eff = negotiate_payload(self.max_payload, ack.max_payload);
                    io.set_max_payload(eff);
                    // This client is synchronous (announces window 1)
                    // and validate() forbids a zero server window, so
                    // min(ours, theirs) is always 1.
                    self.negotiated = Some((eff, 1));
                    break;
                }
                RecvFrame::Frame(f) => {
                    return Err(TransportError::HandshakeMismatch {
                        detail: format!("expected HelloAck, got {:?}", f.kind),
                    });
                }
                RecvFrame::Eof => return Err(TransportError::ConnReset),
                RecvFrame::Idle => {
                    if Instant::now() >= deadline {
                        return Err(TransportError::ConnTimeout {
                            waited_ms: self.response_timeout.as_millis() as u64,
                        });
                    }
                }
            }
        }
        self.io = Some(io);
        Ok(())
    }

    /// One request/response exchange. The error carries whether it is
    /// *terminal*: a protocol disagreement, or a request the negotiated
    /// payload window deterministically refuses at send time (a
    /// FrameTooLarge seen on the *receive* path is corruption of the
    /// length field and stays retryable).
    fn attempt(
        &mut self,
        id: u64,
        req: &DecomposeRequest,
    ) -> Result<ServeResult, (TransportError, bool)> {
        self.ensure_conn().map_err(|e| {
            let terminal = matches!(e, TransportError::HandshakeMismatch { .. });
            (e, terminal)
        })?;
        let io = self.io.as_mut().expect("ensure_conn succeeded");
        let frame = encode_request(id, req).map_err(|e| (TransportError::from(e), true))?;
        io.send_frame(&frame).map_err(|e| {
            let terminal = matches!(e, TransportError::FrameTooLarge { .. });
            (e, terminal)
        })?;
        let (result, drop_conn) = recv_response(
            io,
            id,
            self.response_timeout,
            self.tolerance,
            self.byte_budget,
            &mut self.progressive,
        )
        .map_err(|e| (e, false))?;
        if drop_conn {
            // The Cancel could not be sent; redial lazily rather than
            // read a sequence the server will keep streaming.
            if let Some(io) = self.io.take() {
                self.transport.absorb_wire(&io.stats);
            }
        }
        Ok(result)
    }

    /// Submit one request and wait for its outcome, retrying
    /// idempotently (same request id) across transport faults.
    /// Handshake mismatches and send-side oversized requests are
    /// terminal — retrying cannot fix a protocol disagreement or
    /// shrink a payload the negotiated window refuses. An invalid
    /// [`RetryPolicy`] fails typed before anything is sent.
    pub fn call(&mut self, req: &DecomposeRequest) -> Result<ServeResult, TransportError> {
        if let Err(detail) = self.retry.validate() {
            return Err(TransportError::InvalidConfig { detail });
        }
        let id = self.next_id;
        self.next_id += 1;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.attempt(id, req) {
                Ok(result) => return Ok(result),
                Err((e, true)) => {
                    self.io = None;
                    self.transport.count_error(&e);
                    return Err(e);
                }
                Err((e, false)) => {
                    self.transport.count_error(&e);
                    if let Some(io) = self.io.take() {
                        self.transport.absorb_wire(&io.stats);
                    }
                    if attempt >= self.retry.max_attempts {
                        return Err(e);
                    }
                    self.retries += 1;
                    std::thread::sleep(Duration::from_secs_f64(self.retry.backoff_s(attempt)));
                }
            }
        }
    }

    /// Clean goodbye: Bye frame, FIN, fold the connection's counters.
    pub fn goodbye(&mut self) {
        if let Some(mut io) = self.io.take() {
            let _ = io.send_frame(&Frame::new(FrameKind::Bye, self.client_id, Vec::new()));
            io.shutdown_write();
            self.transport.absorb_wire(&io.stats);
        }
    }
}

/// Cancel the in-flight sequence and resolve the call from the partial
/// reassembly. The second return says whether the connection must be
/// dropped (the Cancel itself could not be sent).
fn cancel_and_finish(
    io: &mut FrameIo,
    id: u64,
    assembly: Reassembler,
    tally: &mut ProgressiveTally,
) -> Result<(ServeResult, bool), TransportError> {
    let cancel_sent = io
        .send_frame(&Frame::new(FrameKind::Cancel, id, Vec::new()))
        .is_ok();
    tally.cancels += 1;
    tally.partial_responses += 1;
    Ok((Ok(assembly.into_response()), !cancel_sent))
}

/// Wait for the response to `id` — a terminal outcome, or a progressive
/// sequence reassembled incrementally (cut short by Cancel once
/// `tolerance` is met or `byte_budget` response bytes have landed).
/// Returns `(result, drop_connection)`.
fn recv_response(
    io: &mut FrameIo,
    id: u64,
    timeout: Duration,
    tolerance: Option<f64>,
    byte_budget: Option<usize>,
    tally: &mut ProgressiveTally,
) -> Result<(ServeResult, bool), TransportError> {
    let deadline = Instant::now() + timeout;
    let mut assembly: Option<Reassembler> = None;
    // On-wire bytes received for this call's Response frames; the
    // byte-budget predicate is over delivered wire bytes, not decoded
    // coefficient counts, so it bounds what the link actually carried.
    let mut got_bytes = 0usize;
    let over_budget = |got: usize| byte_budget.is_some_and(|b| got >= b);
    loop {
        match io.recv_frame()? {
            RecvFrame::Frame(f) if f.kind == FrameKind::Response && f.id == id => {
                got_bytes += HEADER_LEN + f.payload.len() + TRAILER_LEN;
                match decode_response_body(&f)? {
                    ResponseBody::Outcome(result) => return Ok((result, false)),
                    ResponseBody::Header(h) => {
                        let more = f.more_follows();
                        let r = Reassembler::new(h)?;
                        tally.headers += 1;
                        if !more {
                            // Zero-plane sequence: complete by itself.
                            return Ok((Ok(r.into_response()), false));
                        }
                        if tolerance.is_some_and(|tol| r.bound() <= tol) {
                            return cancel_and_finish(io, id, r, tally);
                        }
                        if over_budget(got_bytes) {
                            tally.budget_stops += 1;
                            return cancel_and_finish(io, id, r, tally);
                        }
                        assembly = Some(r);
                    }
                    ResponseBody::Plane(p) => {
                        let Some(r) = assembly.as_mut() else {
                            return Err(TransportError::FrameCorrupt {
                                detail: "detail plane before progressive header".into(),
                            });
                        };
                        r.apply(&p)?;
                        tally.planes += 1;
                        if r.complete() || !f.more_follows() {
                            let r = assembly.take().expect("assembly just applied");
                            if !r.complete() {
                                // The server cut the sequence (e.g. a
                                // Cancel from a prior attempt landed
                                // late); the partial result is still
                                // within its reported bound.
                                tally.partial_responses += 1;
                            }
                            return Ok((Ok(r.into_response()), false));
                        }
                        if tolerance.is_some_and(|tol| r.bound() <= tol) {
                            let r = assembly.take().expect("assembly just applied");
                            return cancel_and_finish(io, id, r, tally);
                        }
                        if over_budget(got_bytes) {
                            tally.budget_stops += 1;
                            let r = assembly.take().expect("assembly just applied");
                            return cancel_and_finish(io, id, r, tally);
                        }
                    }
                }
            }
            RecvFrame::Frame(f) if f.kind == FrameKind::Response => {
                // A stale response frame from an earlier id — a prior
                // attempt's monolithic reply or the tail of a cancelled
                // sequence; harmless, keep waiting for ours.
                debug_assert!(f.id < id, "responses never outrun requests");
            }
            RecvFrame::Frame(f) => {
                return Err(TransportError::FrameCorrupt {
                    detail: format!("unexpected {:?} frame mid-stream", f.kind),
                });
            }
            RecvFrame::Eof => return Err(TransportError::ConnReset),
            RecvFrame::Idle => {
                if Instant::now() >= deadline {
                    return Err(TransportError::ConnTimeout {
                        waited_ms: timeout.as_millis() as u64,
                    });
                }
            }
        }
    }
}

impl Drop for RemoteClient {
    fn drop(&mut self) {
        self.goodbye();
    }
}
