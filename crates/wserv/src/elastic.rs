//! Elastic sharding: a load-aware shard controller with cross-shard
//! work stealing and split/merge.
//!
//! Static FNV shape-hash routing ([`crate::shard::shard_of`]) keeps
//! same-shape work coalescible, but under a skewed shape distribution
//! it hotspots one shard while its peers idle — the `ImbalanceWait`
//! lane of the performance budget made first-class by the source
//! paper's overhead taxonomy. This module adds the control plane that
//! fixes it without giving up determinism:
//!
//! * [`ShardMap`] — the epoch-versioned routing authority. Explicit
//!   `shape → shard` overrides are layered over the FNV default, and a
//!   bounded *reserve pool* of shard slots can be activated (split) and
//!   retired (merge) at runtime. The live threaded driver, the
//!   supervisor/failover ring, and the discrete-event simulators all
//!   route through the same map, so elastic decisions replay
//!   bit-identically from `(config, seed)`.
//! * [`CostBook`] — per-shape EWMA of measured service seconds per
//!   request. Queue depth alone cannot compare shards when per-shape
//!   cost varies ~1.6× between kernel families; the book turns a
//!   queue census into *backlog seconds*.
//! * [`BalanceController`] — a clock-free policy state machine (every
//!   decision takes `now` as a parameter, like the admission queue)
//!   that consumes per-shard [`ShardLoad`] observations and issues
//!   typed [`BalanceAction`]s:
//!
//!   - **steal**: migrate queued same-shape entries from the most
//!     backlogged shard's admission queue to the least backlogged one.
//!     Priority class is preserved (entries re-enter their class
//!     bucket), solo (poison-suspect) entries are never moved, and the
//!     exactly-once books are untouched — migration is queue surgery,
//!     not re-admission.
//!   - **split**: activate a reserve slot and pin a subset of a hot
//!     shard's queued shapes to it via map overrides, then migrate the
//!     queued work; future arrivals of the moved shapes follow the
//!     override.
//!   - **merge**: retire a cold reserve-born shard — clear its
//!     overrides, deactivate it in the map, and drain its queue
//!     losslessly back through the map.
//!
//! A shard that has failed over (restart budget exhausted, or
//! mid-failover in the live driver) is never a steal source, steal
//! target, split source/target, or merge candidate: rebalancing and
//! failover move entries through the same admission-queue surgery, and
//! keeping the failed shard out of the controller's eligible set is
//! what guarantees an entry is owned by exactly one recovery mechanism
//! at a time.

use std::collections::BTreeMap;

use dwt::engine::PlanShape;

use crate::shard::{self, shape_key};

/// Knobs of the elastic control plane. All thresholds are in seconds
/// of estimated backlog (queue census priced through the [`CostBook`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElasticPolicy {
    /// Reserve shard slots available to split into (0 = steal-only).
    pub reserve: usize,
    /// Enable cross-shard work stealing.
    pub steal: bool,
    /// Enable split (reserve activation) and merge (reserve retire).
    pub split_merge: bool,
    /// Hysteresis: minimum seconds between controller actions.
    pub min_gap_s: f64,
    /// Steal when the hot/cold backlog gap reaches this many seconds.
    pub steal_gap_s: f64,
    /// Split when the hot shard's backlog reaches this many seconds
    /// (and a reserve slot plus a second queued shape are available).
    pub split_backlog_s: f64,
    /// Merge a reserve-born shard whose backlog has fallen to or below
    /// this many seconds.
    pub merge_backlog_s: f64,
    /// EWMA smoothing factor of the per-shape cost book, in `(0, 1]`.
    pub ewma_alpha: f64,
    /// Per-request cost estimate used before the first observation of
    /// a shape.
    pub default_cost_s: f64,
}

impl ElasticPolicy {
    /// Steal-only elasticity: rebalance queued work across the static
    /// shard set, never changing the shard count.
    pub fn stealing() -> Self {
        ElasticPolicy {
            reserve: 0,
            steal: true,
            split_merge: false,
            min_gap_s: 200e-6,
            steal_gap_s: 400e-6,
            split_backlog_s: f64::INFINITY,
            merge_backlog_s: 0.0,
            ewma_alpha: 0.3,
            default_cost_s: 150e-6,
        }
    }

    /// Full elasticity: stealing plus split into (and merge back out
    /// of) a reserve pool of `reserve` extra shard slots.
    pub fn split_merge(reserve: usize) -> Self {
        ElasticPolicy {
            reserve,
            steal: true,
            split_merge: true,
            min_gap_s: 200e-6,
            steal_gap_s: 400e-6,
            split_backlog_s: 2e-3,
            merge_backlog_s: 50e-6,
            ewma_alpha: 0.3,
            default_cost_s: 150e-6,
        }
    }

    /// Validate the policy. Returns a human-readable reason on failure.
    pub fn validate(&self) -> Result<(), String> {
        if self.split_merge && self.reserve == 0 {
            return Err("split_merge requires a non-empty reserve pool".into());
        }
        if !(self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0) {
            return Err(format!(
                "ewma_alpha = {} must be in (0, 1]",
                self.ewma_alpha
            ));
        }
        for (name, v) in [
            ("min_gap_s", self.min_gap_s),
            ("steal_gap_s", self.steal_gap_s),
            ("merge_backlog_s", self.merge_backlog_s),
            ("default_cost_s", self.default_cost_s),
        ] {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(format!("{name} = {v} must be finite and >= 0"));
            }
        }
        // Infinity is legal here: it is how a steal-only policy turns
        // splitting off. Only NaN and negatives are rejected.
        if self.split_backlog_s.is_nan() || self.split_backlog_s < 0.0 {
            return Err(format!(
                "split_backlog_s = {} must be >= 0",
                self.split_backlog_s
            ));
        }
        Ok(())
    }
}

/// The epoch-versioned routing authority: explicit shape overrides
/// layered over the FNV default, plus the active/reserve shard set.
///
/// With an empty override set and no reserve, routing is exactly the
/// static [`shard::route`]: home = FNV hash over the base shard count,
/// ring successors past failed shards. Overrides redirect individual
/// shapes (split pins); inactive reserve slots are skipped by the ring
/// walk, so activating or retiring a slot never perturbs the relative
/// order of the surviving shards. Every mutation bumps the epoch, which
/// is how drivers and tests pin "the routing table changed".
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMap {
    /// Domain of the FNV default hash (the boot-time shard count).
    base: usize,
    /// Total slots: `base` live shards plus the reserve pool.
    total: usize,
    /// Which slots participate in routing.
    active: Vec<bool>,
    /// Explicit shape overrides, keyed by [`shape_key`]. A `BTreeMap`
    /// keeps iteration (and therefore merge drains) deterministic.
    overrides: BTreeMap<u64, usize>,
    /// Version counter, bumped by every mutation.
    epoch: u64,
}

impl ShardMap {
    /// A map over `base` live shards plus `reserve` inactive slots.
    pub fn new(base: usize, reserve: usize) -> Self {
        let base = base.max(1);
        let total = base + reserve;
        let mut active = vec![false; total];
        for a in active.iter_mut().take(base) {
            *a = true;
        }
        ShardMap {
            base,
            total,
            active,
            overrides: BTreeMap::new(),
            epoch: 0,
        }
    }

    /// The boot-time shard count (the FNV default's domain).
    pub fn base(&self) -> usize {
        self.base
    }

    /// Total slots, reserve included.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Current routing-table version.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether slot `s` currently participates in routing.
    pub fn is_active(&self, s: usize) -> bool {
        self.active.get(s).copied().unwrap_or(false)
    }

    /// The shape's FNV home shard (override-blind) — the shard its
    /// rejections are accounted to, stable across elastic actions.
    pub fn home(&self, shape: &PlanShape) -> usize {
        shard::shard_of(shape, self.base)
    }

    /// Route a shape: its override target if one is set and active,
    /// else its FNV home; walk ring successors over the active ∩ alive
    /// slots when the preferred shard is inactive or dead. `None` when
    /// every active shard is down. Pure function of
    /// `(shape, map, alive)` — identical in the live driver and the
    /// simulators, which is what makes elastic failover replayable.
    pub fn route(&self, shape: &PlanShape, alive: &[bool]) -> Option<usize> {
        debug_assert_eq!(alive.len(), self.total, "alive vector must cover all slots");
        let key = shape_key(shape);
        let prefer = match self.overrides.get(&key) {
            Some(&s) if self.is_active(s) => s,
            _ => (key % self.base as u64) as usize,
        };
        (0..self.total)
            .map(|i| (prefer + i) % self.total)
            .find(|&ix| self.active[ix] && alive.get(ix).copied().unwrap_or(false))
    }

    /// Pin `key` to `shard`. Bumps the epoch.
    pub fn set_override(&mut self, key: u64, shard: usize) {
        debug_assert!(shard < self.total);
        self.overrides.insert(key, shard);
        self.epoch += 1;
    }

    /// Remove the pin on `key`, if any. Bumps the epoch when something
    /// was removed.
    pub fn clear_override(&mut self, key: u64) {
        if self.overrides.remove(&key).is_some() {
            self.epoch += 1;
        }
    }

    /// The keys currently pinned to `shard`, ascending.
    pub fn overrides_to(&self, shard: usize) -> Vec<u64> {
        self.overrides
            .iter()
            .filter_map(|(&k, &s)| (s == shard).then_some(k))
            .collect()
    }

    /// Number of overrides currently set.
    pub fn override_count(&self) -> usize {
        self.overrides.len()
    }

    /// Activate a reserve slot (split). Bumps the epoch.
    pub fn activate(&mut self, s: usize) {
        debug_assert!(s < self.total);
        if !self.active[s] {
            self.active[s] = true;
            self.epoch += 1;
        }
    }

    /// Retire a slot back to the reserve (merge). Bumps the epoch.
    /// Base slots cannot be retired — the map must always keep the FNV
    /// domain routable.
    pub fn retire(&mut self, s: usize) {
        debug_assert!(
            s >= self.base && s < self.total,
            "only reserve slots retire"
        );
        if self.active[s] {
            self.active[s] = false;
            self.epoch += 1;
        }
    }

    /// The lowest inactive reserve slot, if any — where the next split
    /// lands (deterministic by construction).
    pub fn next_reserve_slot(&self) -> Option<usize> {
        (self.base..self.total).find(|&s| !self.active[s])
    }
}

/// Per-shape EWMA of measured service seconds per request.
///
/// Keys are [`shape_key`]s; the backing `BTreeMap` keeps iteration
/// deterministic. Before the first observation of a shape the book
/// answers the policy's `default_cost_s`, so the controller can act on
/// a cold start without dividing by zero.
#[derive(Debug, Clone)]
pub struct CostBook {
    alpha: f64,
    default_s: f64,
    map: BTreeMap<u64, f64>,
}

impl CostBook {
    /// A book with smoothing factor `alpha` and cold-start estimate
    /// `default_s`.
    pub fn new(alpha: f64, default_s: f64) -> Self {
        CostBook {
            alpha: alpha.clamp(f64::MIN_POSITIVE, 1.0),
            default_s,
            map: BTreeMap::new(),
        }
    }

    /// Fold one measured per-request service time into the estimate.
    pub fn observe(&mut self, key: u64, s_per_req: f64) {
        if !(s_per_req >= 0.0 && s_per_req.is_finite()) {
            return;
        }
        let e = self.map.entry(key).or_insert(s_per_req);
        *e += self.alpha * (s_per_req - *e);
    }

    /// Current per-request estimate for `key`.
    pub fn estimate(&self, key: u64) -> f64 {
        self.map.get(&key).copied().unwrap_or(self.default_s)
    }

    /// Shapes observed so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// One shape's queued presence on a shard, as observed by the census.
#[derive(Debug, Clone)]
pub struct QueuedShape {
    /// The shape itself (what queue surgery extracts by).
    pub shape: PlanShape,
    /// Its routing key.
    pub key: u64,
    /// Entries of this shape queued, solo entries included.
    pub count: usize,
    /// Entries eligible for migration (non-solo; poison suspects stay
    /// on their shard so quarantine isolation is never diluted).
    pub movable: usize,
}

/// One shard's load observation, the controller's input.
#[derive(Debug, Clone)]
pub struct ShardLoad {
    /// Whether the slot participates in routing.
    pub active: bool,
    /// Whether the shard has failed over (never rebalanced).
    pub failed: bool,
    /// Queue depth.
    pub depth: usize,
    /// Admission slots left before the queue is full.
    pub free: usize,
    /// Per-shape census of the queue, deterministic order.
    pub queued: Vec<QueuedShape>,
}

impl ShardLoad {
    /// Whether the controller may move work to or from this shard.
    fn eligible(&self) -> bool {
        self.active && !self.failed
    }
}

/// A typed rebalancing decision. Actions are data, not effects: the
/// drivers (live service and simulators) apply them through identical
/// queue surgery, and the per-run action log is what the determinism
/// tests replay.
#[derive(Debug, Clone, PartialEq)]
pub enum BalanceAction {
    /// Migrate up to `cap` queued entries of shape `key` from shard
    /// `from`'s admission queue to shard `to`'s.
    Steal {
        /// Overloaded source shard.
        from: usize,
        /// Idle target shard.
        to: usize,
        /// The shape being migrated.
        key: u64,
        /// Migration bound (the target's free queue slots at decision
        /// time).
        cap: usize,
    },
    /// Activate reserve slot `to` and pin `keys` (a subset of `from`'s
    /// queued shapes) to it, migrating their queued entries.
    Split {
        /// The hot shard being divided.
        from: usize,
        /// The reserve slot being activated.
        to: usize,
        /// The shape keys pinned to the new shard.
        keys: Vec<u64>,
    },
    /// Retire reserve-born shard `from`: clear its overrides,
    /// deactivate it, and drain its queue back through the map.
    Merge {
        /// The cold shard being retired.
        from: usize,
    },
}

impl BalanceAction {
    /// Stable label for machine-readable output.
    pub fn label(&self) -> &'static str {
        match self {
            BalanceAction::Steal { .. } => "steal",
            BalanceAction::Split { .. } => "split",
            BalanceAction::Merge { .. } => "merge",
        }
    }
}

/// The clock-free balance policy state machine. Owns the cost book and
/// the hysteresis clock; consumes [`ShardLoad`] observations; emits at
/// most one [`BalanceAction`] per decision so every action lands at a
/// well-defined virtual time.
#[derive(Debug, Clone)]
pub struct BalanceController {
    policy: ElasticPolicy,
    book: CostBook,
    last_action_t: f64,
}

impl BalanceController {
    /// A controller for `policy`. Panics on an invalid policy (the
    /// drivers validate configuration up front).
    pub fn new(policy: ElasticPolicy) -> Self {
        if let Err(reason) = policy.validate() {
            panic!("invalid ElasticPolicy: {reason}");
        }
        BalanceController {
            policy,
            book: CostBook::new(policy.ewma_alpha, policy.default_cost_s),
            last_action_t: f64::NEG_INFINITY,
        }
    }

    /// The policy this controller runs.
    pub fn policy(&self) -> &ElasticPolicy {
        &self.policy
    }

    /// Read access to the cost book (tests and diagnostics).
    pub fn book(&self) -> &CostBook {
        &self.book
    }

    /// Fold one measured per-request service time into the cost book.
    pub fn observe(&mut self, key: u64, s_per_req: f64) {
        self.book.observe(key, s_per_req);
    }

    /// Whether the hysteresis window has elapsed — callers check this
    /// before paying for a queue census.
    pub fn ready(&self, now: f64) -> bool {
        now - self.last_action_t >= self.policy.min_gap_s
    }

    /// Estimated backlog seconds of one load observation.
    pub fn backlog_s(&self, load: &ShardLoad) -> f64 {
        load.queued
            .iter()
            .map(|q| q.count as f64 * self.book.estimate(q.key))
            .sum()
    }

    /// Decide at most one action at virtual time `now` given the
    /// per-slot observations (indexed by shard slot, reserve included).
    /// Deterministic: ties break toward the lowest shard index, shape
    /// candidates are examined in census order.
    pub fn decide(&mut self, now: f64, loads: &[ShardLoad]) -> Option<BalanceAction> {
        if !self.ready(now) {
            return None;
        }
        let action = self
            .decide_split(loads)
            .or_else(|| self.decide_steal(loads))
            .or_else(|| self.decide_merge(loads));
        if action.is_some() {
            self.last_action_t = now;
        }
        action
    }

    /// Hot shard past the split threshold with ≥ 2 distinct movable
    /// shapes, and a reserve slot free: divide its shape set.
    fn decide_split(&self, loads: &[ShardLoad]) -> Option<BalanceAction> {
        if !self.policy.split_merge {
            return None;
        }
        let to = loads.iter().position(|l| !l.active && !l.failed)?;
        let (from, load, backlog) = loads
            .iter()
            .enumerate()
            .filter(|(_, l)| l.eligible())
            .map(|(s, l)| (s, l, self.backlog_s(l)))
            .max_by(|a, b| a.2.total_cmp(&b.2).then(b.0.cmp(&a.0)))?;
        if backlog < self.policy.split_backlog_s {
            return None;
        }
        let movable: Vec<&QueuedShape> = load.queued.iter().filter(|q| q.movable > 0).collect();
        if movable.len() < 2 {
            return None;
        }
        // Greedy two-way partition of the queued shapes by estimated
        // backlog, heaviest first; the lighter side moves so the
        // hottest shape keeps its warm plan cache.
        let mut ranked: Vec<(&QueuedShape, f64)> = movable
            .iter()
            .map(|q| (*q, q.count as f64 * self.book.estimate(q.key)))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.key.cmp(&b.0.key)));
        let (mut stay_s, mut move_s) = (0.0f64, 0.0f64);
        let mut keys = Vec::new();
        for (q, cost) in ranked {
            if stay_s <= move_s {
                stay_s += cost;
            } else {
                move_s += cost;
                keys.push(q.key);
            }
        }
        if keys.is_empty() {
            return None;
        }
        keys.sort_unstable();
        Some(BalanceAction::Split { from, to, keys })
    }

    /// Hot/cold backlog gap past the threshold: migrate the queued
    /// shape whose movable backlog best levels the pair.
    fn decide_steal(&self, loads: &[ShardLoad]) -> Option<BalanceAction> {
        if !self.policy.steal {
            return None;
        }
        let mut hot: Option<(usize, f64)> = None;
        let mut cold: Option<(usize, f64)> = None;
        for (s, l) in loads.iter().enumerate() {
            if !l.eligible() {
                continue;
            }
            let b = self.backlog_s(l);
            if hot.is_none_or(|(_, hb)| b > hb) {
                hot = Some((s, b));
            }
            if cold.is_none_or(|(_, cb)| b < cb) {
                cold = Some((s, b));
            }
        }
        let ((from, hot_b), (to, cold_b)) = (hot?, cold?);
        let gap = hot_b - cold_b;
        if from == to || gap < self.policy.steal_gap_s || loads[to].free == 0 {
            return None;
        }
        // Pick the shape whose migrated backlog lands closest to half
        // the gap (perfect leveling), bounded by the target's free
        // queue slots.
        let mut best: Option<(&QueuedShape, usize, f64)> = None;
        for q in &loads[from].queued {
            let cap = q.movable.min(loads[to].free);
            if cap == 0 {
                continue;
            }
            let moved = cap as f64 * self.book.estimate(q.key);
            let miss = (gap / 2.0 - moved).abs();
            if best.is_none_or(|(.., bm)| miss < bm) {
                best = Some((q, cap, miss));
            }
        }
        let (q, cap, _) = best?;
        Some(BalanceAction::Steal {
            from,
            to,
            key: q.key,
            cap,
        })
    }

    /// A reserve-born shard gone cold: retire it. Only slots outside
    /// the FNV base domain merge, so the default hash always has a
    /// routable home.
    fn decide_merge(&self, loads: &[ShardLoad]) -> Option<BalanceAction> {
        if !self.policy.split_merge {
            return None;
        }
        let base = loads.len() - self.policy.reserve;
        loads
            .iter()
            .enumerate()
            .skip(base)
            .filter(|(_, l)| l.eligible())
            .find(|(_, l)| self.backlog_s(l) <= self.policy.merge_backlog_s)
            .map(|(from, _)| BalanceAction::Merge { from })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwt::{Boundary, FilterBank};

    fn shape(n: usize) -> PlanShape {
        PlanShape::new(n, n, &FilterBank::haar(), 1, Boundary::Periodic)
    }

    fn load(active: bool, queued: Vec<(PlanShape, usize, usize)>, free: usize) -> ShardLoad {
        let depth = queued.iter().map(|(_, c, _)| *c).sum();
        ShardLoad {
            active,
            failed: false,
            depth,
            free,
            queued: queued
                .into_iter()
                .map(|(shape, count, movable)| QueuedShape {
                    key: shape_key(&shape),
                    shape,
                    count,
                    movable,
                })
                .collect(),
        }
    }

    #[test]
    fn map_matches_static_routing_when_unmodified() {
        let map = ShardMap::new(4, 0);
        for n in [8usize, 16, 32, 64, 128] {
            let s = shape(n);
            let all_up = vec![true; 4];
            assert_eq!(map.route(&s, &all_up), shard::route(&s, &all_up));
            let mut one_down = vec![true; 4];
            one_down[shard::shard_of(&s, 4)] = false;
            assert_eq!(map.route(&s, &one_down), shard::route(&s, &one_down));
        }
        assert_eq!(map.epoch(), 0);
    }

    #[test]
    fn map_matches_static_routing_with_inactive_reserve() {
        // Reserve slots that were never activated must not perturb the
        // static ring: the failover order over the base shards is the
        // same as without a reserve.
        let map = ShardMap::new(4, 2);
        for n in [8usize, 16, 32, 64, 128] {
            let s = shape(n);
            for down in 0..4usize {
                let mut alive = vec![true; 6];
                alive[down] = false;
                let expect = {
                    let mut base_alive = vec![true; 4];
                    base_alive[down] = false;
                    shard::route(&s, &base_alive)
                };
                assert_eq!(map.route(&s, &alive), expect, "size {n} down {down}");
            }
        }
    }

    #[test]
    fn overrides_redirect_and_epoch_versions_every_mutation() {
        let mut map = ShardMap::new(2, 2);
        let s = shape(32);
        let key = shape_key(&s);
        let alive = vec![true; 4];
        let home = map.home(&s);
        assert_eq!(map.route(&s, &alive), Some(home));

        map.activate(2);
        assert_eq!(map.epoch(), 1);
        map.set_override(key, 2);
        assert_eq!(map.epoch(), 2);
        assert_eq!(map.route(&s, &alive), Some(2));
        assert_eq!(map.overrides_to(2), vec![key]);

        // A dead override target falls back to the ring.
        let mut two_down = alive.clone();
        two_down[2] = false;
        let ringed = map.route(&s, &two_down).expect("survivors exist");
        assert_ne!(ringed, 2);

        // Retiring the slot disables the override without removing it…
        map.retire(2);
        assert_eq!(map.epoch(), 3);
        assert_eq!(map.route(&s, &alive), Some(home));
        // …and clearing it restores the pristine table.
        map.clear_override(key);
        assert_eq!(map.epoch(), 4);
        assert_eq!(map.override_count(), 0);
        assert_eq!(map.next_reserve_slot(), Some(2));
    }

    #[test]
    fn cost_book_ewma_converges_and_defaults_cold() {
        let mut book = CostBook::new(0.5, 100e-6);
        assert_eq!(book.estimate(7), 100e-6);
        book.observe(7, 1e-3);
        assert!(
            (book.estimate(7) - 1e-3).abs() < 1e-12,
            "first observation seeds"
        );
        book.observe(7, 2e-3);
        assert!((book.estimate(7) - 1.5e-3).abs() < 1e-12);
        book.observe(7, f64::NAN); // ignored
        assert!((book.estimate(7) - 1.5e-3).abs() < 1e-12);
        assert_eq!(book.len(), 1);
    }

    #[test]
    fn steal_levels_the_hot_and_cold_shards() {
        let mut ctrl = BalanceController::new(ElasticPolicy::stealing());
        let (a, b) = (shape(64), shape(32));
        let loads = vec![
            load(true, vec![(a.clone(), 8, 8), (b.clone(), 2, 2)], 54),
            load(true, vec![], 64),
        ];
        let action = ctrl.decide(0.0, &loads).expect("gap is enormous");
        match &action {
            BalanceAction::Steal { from, to, key, cap } => {
                assert_eq!((*from, *to), (0, 1));
                assert!(*key == shape_key(&a) || *key == shape_key(&b));
                assert!(*cap > 0);
            }
            other => panic!("expected steal, got {other:?}"),
        }
        // Hysteresis: an immediate second decision is suppressed.
        assert!(ctrl.decide(0.0, &loads).is_none());
        assert!(ctrl.decide(1.0, &loads).is_some());
    }

    #[test]
    fn steal_never_targets_failed_or_full_shards() {
        let mut ctrl = BalanceController::new(ElasticPolicy::stealing());
        let s = shape(64);
        let mut loads = vec![
            load(true, vec![(s.clone(), 8, 8)], 56),
            load(true, vec![], 64),
        ];
        loads[1].failed = true;
        assert!(
            ctrl.decide(0.0, &loads).is_none(),
            "the only idle shard is failed — no steal may target it"
        );
        loads[1].failed = false;
        loads[1].free = 0;
        assert!(
            ctrl.decide(0.0, &loads).is_none(),
            "a full target queue admits no migration"
        );
    }

    #[test]
    fn split_pins_the_lighter_half_and_merge_retires_cold_reserves() {
        let mut policy = ElasticPolicy::split_merge(1);
        policy.split_backlog_s = 1e-3;
        let mut ctrl = BalanceController::new(policy);
        let (a, b) = (shape(64), shape(32));
        ctrl.observe(shape_key(&a), 1e-3);
        ctrl.observe(shape_key(&b), 1e-4);
        let loads = vec![
            load(true, vec![(a.clone(), 6, 6), (b.clone(), 4, 4)], 54),
            load(false, vec![], 64),
        ];
        match ctrl.decide(0.0, &loads).expect("hot shard over threshold") {
            BalanceAction::Split { from, to, keys } => {
                assert_eq!((from, to), (0, 1));
                // The heavier shape (a) stays home; the lighter moves.
                assert_eq!(keys, vec![shape_key(&b)]);
            }
            other => panic!("expected split, got {other:?}"),
        }
        // Once the reserve shard is active and cold, it merges back.
        let loads = vec![load(true, vec![], 64), load(true, vec![], 64)];
        match ctrl.decide(1.0, &loads).expect("cold reserve shard") {
            BalanceAction::Merge { from } => assert_eq!(from, 1),
            other => panic!("expected merge, got {other:?}"),
        }
    }

    #[test]
    fn policy_validation_rejects_nonsense() {
        assert!(ElasticPolicy::stealing().validate().is_ok());
        assert!(ElasticPolicy::split_merge(2).validate().is_ok());
        let mut p = ElasticPolicy::split_merge(0);
        assert!(p.validate().is_err(), "split with no reserve");
        p = ElasticPolicy::stealing();
        p.ewma_alpha = 0.0;
        assert!(p.validate().is_err());
        p = ElasticPolicy::stealing();
        p.steal_gap_s = f64::NAN;
        assert!(p.validate().is_err());
    }
}
