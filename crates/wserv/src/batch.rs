//! Same-shape request coalescing.
//!
//! A batch is a set of queued requests with one [`PlanShape`], executed
//! as a single engine dispatch: one cache lookup, one worker wakeup,
//! one plan drive over N images. Batching is *adaptive*: the batcher
//! never waits for more arrivals — it takes whatever same-shape work is
//! already queued (up to [`BatchPolicy::max_batch`]) behind the
//! highest-priority head-of-line request. Under light load batches
//! degrade to size 1 and add no latency; under heavy load the queue is
//! deep and occupancy climbs toward the cap, amortizing per-dispatch
//! overhead exactly when throughput matters.

use dwt::engine::PlanShape;

use crate::request::Entry;

/// Batching knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Most requests one engine dispatch may carry (≥ 1).
    pub max_batch: usize,
}

impl BatchPolicy {
    /// A policy dispatching at most `max_batch` requests at once.
    pub fn new(max_batch: usize) -> Self {
        BatchPolicy {
            max_batch: max_batch.max(1),
        }
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy::new(8)
    }
}

/// One coalesced engine dispatch.
#[derive(Debug)]
pub struct Batch<T> {
    /// The shared plan-cache key of every entry.
    pub shape: PlanShape,
    /// The requests, in dequeue order (leader first).
    pub entries: Vec<Entry<T>>,
}

impl<T> Batch<T> {
    /// Requests in the dispatch.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the batch is empty (never true for batches the queue
    /// hands out, but keeps clippy's `len` contract honest).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Arrival times of the batched requests, in dispatch order.
    pub fn arrivals(&self) -> Vec<f64> {
        self.entries.iter().map(|e| e.arrival).collect()
    }
}
