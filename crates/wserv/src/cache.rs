//! Shape-keyed LRU cache of engine plans and their workspaces.
//!
//! [`dwt::engine::DwtPlan`] construction validates geometry and sizes
//! every scratch buffer; [`dwt::engine::DwtWorkspace`] allocation is the
//! dominant per-request cost for small images. Both are a pure function
//! of the [`PlanShape`], so the service builds them once per shape and
//! replays them for every later request — the inference-serving "keep
//! transform state resident" move. Hit/miss/eviction counters are part
//! of the cache itself so every consumer reports the same numbers.
//!
//! Capacity 0 disables reuse entirely (every lookup rebuilds); the
//! benches use that as the cache-off baseline.

use std::collections::VecDeque;

use dwt::engine::{DwtPlan, DwtWorkspace, PlanShape};
use dwt::FilterBank;

/// A resident plan and the scratch space its execution reuses.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The validated, pre-sized plan.
    pub plan: DwtPlan,
    /// Zero-allocation execution scratch, reused across requests.
    pub workspace: DwtWorkspace,
    /// Requests served by this entry since it was built.
    pub uses: u64,
}

/// LRU plan cache. Entries are keyed by [`PlanShape`]; the most
/// recently used entry lives at the back of the deque.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    threads: usize,
    entries: VecDeque<(PlanShape, CachedPlan)>,
    /// Rebuild slot for the cache-off mode (capacity 0).
    scratch: Option<(PlanShape, CachedPlan)>,
    /// Lookups served by a resident plan.
    pub hits: u64,
    /// Lookups that had to build a plan.
    pub misses: u64,
    /// Entries displaced by LRU pressure.
    pub evictions: u64,
}

impl PlanCache {
    /// A cache holding up to `capacity` plans, each built with
    /// `threads` engine worker lanes. `capacity == 0` disables reuse.
    pub fn new(capacity: usize, threads: usize) -> Self {
        PlanCache {
            capacity,
            threads: threads.max(1),
            entries: VecDeque::new(),
            scratch: None,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Whether reuse is enabled.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no plan is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit rate over lookups so far (0 with no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Make a plan for `shape` resident, building (and possibly
    /// evicting) on miss. Returns whether the lookup was a hit. `bank`
    /// must be the filter bank the shape was keyed from — the shape
    /// embeds the exact tap bits, so a mismatch cannot alias silently.
    pub fn ensure(&mut self, shape: &PlanShape, bank: &FilterBank) -> Result<bool, String> {
        if !self.enabled() {
            // Cache-off baseline: rebuild on every lookup.
            self.misses += 1;
            self.scratch = Some((shape.clone(), Self::build(shape, bank, self.threads)?));
            return Ok(false);
        }
        if let Some(pos) = self.entries.iter().position(|(s, _)| s == shape) {
            self.hits += 1;
            // Move to the MRU end.
            let entry = self.entries.remove(pos).expect("position just found");
            self.entries.push_back(entry);
            return Ok(true);
        }
        self.misses += 1;
        let built = Self::build(shape, bank, self.threads)?;
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.evictions += 1;
        }
        self.entries.push_back((shape.clone(), built));
        Ok(false)
    }

    /// The resident entry for `shape`. Panics if [`PlanCache::ensure`]
    /// did not just succeed for the same shape — the two calls are one
    /// logical lookup split so callers can time plan construction
    /// separately from execution.
    pub fn entry_mut(&mut self, shape: &PlanShape) -> &mut CachedPlan {
        if !self.enabled() {
            let (s, entry) = self
                .scratch
                .as_mut()
                .expect("ensure() precedes entry_mut()");
            assert!(s == shape, "entry_mut() shape differs from ensure()");
            return entry;
        }
        let pos = self
            .entries
            .iter()
            .position(|(s, _)| s == shape)
            .expect("ensure() precedes entry_mut()");
        &mut self.entries[pos].1
    }

    fn build(shape: &PlanShape, bank: &FilterBank, threads: usize) -> Result<CachedPlan, String> {
        let plan = DwtPlan::new(
            shape.rows,
            shape.cols,
            bank.clone(),
            shape.levels,
            shape.mode,
        )
        .map_err(|e| e.to_string())?
        .with_threads(threads);
        let workspace = plan.make_workspace();
        Ok(CachedPlan {
            plan,
            workspace,
            uses: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwt::Boundary;

    fn shape(n: usize) -> (PlanShape, FilterBank) {
        let bank = FilterBank::haar();
        let s = PlanShape::new(n, n, &bank, 1, Boundary::Periodic);
        (s, bank)
    }

    #[test]
    fn lru_evicts_oldest_and_counts() {
        let mut c = PlanCache::new(2, 1);
        let (s8, b) = shape(8);
        let (s16, _) = shape(16);
        let (s32, _) = shape(32);
        assert!(!c.ensure(&s8, &b).unwrap());
        assert!(!c.ensure(&s16, &b).unwrap());
        assert!(c.ensure(&s8, &b).unwrap()); // hit refreshes 8 to MRU
        assert!(!c.ensure(&s32, &b).unwrap()); // evicts 16, the LRU
        assert!(c.ensure(&s8, &b).unwrap());
        assert!(!c.ensure(&s16, &b).unwrap()); // 16 was evicted: miss
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 4);
        assert_eq!(c.evictions, 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_zero_always_rebuilds() {
        let mut c = PlanCache::new(0, 1);
        let (s8, b) = shape(8);
        for _ in 0..3 {
            assert!(!c.ensure(&s8, &b).unwrap());
            assert_eq!(c.entry_mut(&s8).plan.rows(), 8);
        }
        assert_eq!(c.hits, 0);
        assert_eq!(c.misses, 3);
        assert!(c.is_empty());
    }
}
