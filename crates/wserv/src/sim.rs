//! Deterministic discrete-event driver.
//!
//! The simulator reuses the *same* policy state machines as the live
//! server — [`AdmissionQueue`], [`BatchPolicy`] coalescing,
//! [`PlanCache`] — but advances a virtual clock and prices each stage
//! with an analytic [`CostModel`] instead of reading wall time. Two
//! consequences:
//!
//! 1. **Byte-reproducible benchmarks.** Every latency number is a pure
//!    function of (config, cost model, arrival stream); running the
//!    bench twice produces identical JSON.
//! 2. **Grounded outputs.** Transforms still execute for real through
//!    the shared [`crate::shard::execute`] path, so the simulator's
//!    responses carry actual pyramids and the bit-identity invariants
//!    (cache on/off, batch 1/N) are checkable against the engine.
//!
//! Shards share nothing, so each is simulated as an independent
//! single-server queue; arrivals are admitted at their own timestamps
//! before each dispatch decision, which reproduces the live ordering.

use std::collections::VecDeque;

use crate::admission::{AdmissionQueue, Admit};
use crate::cache::PlanCache;
use crate::metrics::{LaneSplit, MetricsSnapshot, ShardMetrics};
use crate::request::{
    DecomposeRequest, DecomposeResponse, Entry, RejectKind, Rejection, ServeResult,
};
use crate::server::ServiceConfig;
use crate::shard;
use dwt::engine::PlanShape;

/// Analytic stage costs, loosely calibrated to the measured engine
/// numbers in `BENCH_dwt.json` (the absolute scale matters less than
/// the ratios: plan construction and per-dispatch overhead are each
/// worth tens of microseconds, i.e. comparable to a small transform —
/// which is exactly the regime where caching and batching pay).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Transform seconds per coefficient-tap (folds in the level-sum
    /// geometric factor).
    pub transform_s_per_coeff_tap: f64,
    /// Fixed plan + workspace construction cost (cache miss).
    pub plan_base_s: f64,
    /// Size-dependent plan construction cost (cache miss).
    pub plan_s_per_coeff: f64,
    /// Fixed per-dispatch overhead (pop, coalesce, wakeup) — the cost
    /// batching amortizes.
    pub dispatch_s: f64,
    /// Response delivery cost per request.
    pub deliver_s_per_request: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            transform_s_per_coeff_tap: 0.45e-9,
            plan_base_s: 20e-6,
            plan_s_per_coeff: 1e-9,
            dispatch_s: 25e-6,
            deliver_s_per_request: 2e-6,
        }
    }
}

impl CostModel {
    /// Transform seconds for one request of `shape`.
    pub fn transform_s(&self, shape: &PlanShape) -> f64 {
        self.transform_s_per_coeff_tap * shape.coeffs() as f64 * shape.filter_len() as f64
    }

    /// Plan construction seconds for `shape`.
    pub fn plan_s(&self, shape: &PlanShape) -> f64 {
        self.plan_base_s + self.plan_s_per_coeff * shape.coeffs() as f64
    }
}

/// Everything one simulated run produces.
#[derive(Debug)]
pub struct SimReport {
    /// One terminal outcome per submitted request, in stream order.
    pub outcomes: Vec<ServeResult>,
    /// Per-shard metrics, same schema as the live server's snapshot.
    pub metrics: MetricsSnapshot,
    /// Virtual time at which the last shard went idle.
    pub makespan_s: f64,
}

impl SimReport {
    /// Completed requests per virtual second.
    pub fn throughput(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.metrics.completed() as f64 / self.makespan_s
        } else {
            0.0
        }
    }
}

/// Run the service over a timestamped arrival stream (non-decreasing
/// times, virtual seconds) and return every outcome plus the metrics.
pub fn run_sim(
    config: &ServiceConfig,
    cost: &CostModel,
    stream: Vec<(f64, DecomposeRequest)>,
) -> SimReport {
    let nshards = config.shards.max(1);
    let mut outcomes: Vec<Option<ServeResult>> = (0..stream.len()).map(|_| None).collect();
    let mut per_shard: Vec<VecDeque<Entry<usize>>> =
        (0..nshards).map(|_| VecDeque::new()).collect();
    let mut invalid_per_shard = vec![0u64; nshards];
    let mut last_t = f64::NEG_INFINITY;
    for (ix, (t, req)) in stream.into_iter().enumerate() {
        assert!(t >= last_t, "arrival stream must be sorted by time");
        last_t = t;
        let shard_ix = shard::shard_of(&req.shape(), nshards);
        if let Err(rejection) = req.validate() {
            invalid_per_shard[shard_ix] += 1;
            outcomes[ix] = Some(Err(rejection));
            continue;
        }
        per_shard[shard_ix].push_back(Entry {
            id: ix as u64,
            arrival: t,
            req,
            tag: ix,
        });
    }

    let mut shards = Vec::with_capacity(nshards);
    let mut makespan_s: f64 = 0.0;
    for (shard_ix, arrivals) in per_shard.into_iter().enumerate() {
        let (metrics, idle_at) = run_shard(
            config,
            cost,
            arrivals,
            invalid_per_shard[shard_ix],
            &mut outcomes,
        );
        makespan_s = makespan_s.max(idle_at);
        shards.push(metrics);
    }
    SimReport {
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("every request terminates in exactly one outcome"))
            .collect(),
        metrics: MetricsSnapshot { shards },
        makespan_s,
    }
}

fn run_shard(
    config: &ServiceConfig,
    cost: &CostModel,
    mut arrivals: VecDeque<Entry<usize>>,
    invalid: u64,
    outcomes: &mut [Option<ServeResult>],
) -> (ShardMetrics, f64) {
    let mut queue: AdmissionQueue<usize> = AdmissionQueue::new(config.queue_capacity);
    let mut cache = PlanCache::new(config.cache_capacity, config.engine_threads);
    let mut metrics = ShardMetrics::default();
    for _ in 0..invalid {
        queue.counters.reject(RejectKind::Invalid);
    }
    let mut t_free = 0.0f64;
    loop {
        // The worker's next dispatch moment: immediately when work is
        // queued, otherwise when the next arrival lands.
        let dispatch_at = if queue.is_empty() {
            match arrivals.front() {
                None => break,
                Some(next) => t_free.max(next.arrival),
            }
        } else {
            t_free
        };
        // Replay every arrival up to that moment at its own timestamp,
        // exactly as the live submitters would have.
        while arrivals.front().is_some_and(|e| e.arrival <= dispatch_at) {
            let entry = arrivals.pop_front().expect("front just checked");
            let now = entry.arrival;
            let incoming = entry.req.priority;
            match queue.admit(now, entry) {
                Admit::Accepted => {}
                Admit::AcceptedShedding(victim) => {
                    metrics.record_lost((now - victim.arrival).max(0.0));
                    outcomes[victim.tag] = Some(Err(Rejection::Shed { by: incoming }));
                }
                Admit::Rejected(e, rejection) => {
                    outcomes[e.tag] = Some(Err(rejection));
                }
            }
        }
        let pop = queue.pop_batch(dispatch_at, &config.batch);
        for e in pop.expired {
            let deadline = e.req.deadline.expect("expired implies a deadline");
            metrics.record_lost((dispatch_at - e.arrival).max(0.0));
            outcomes[e.tag] = Some(Err(Rejection::DeadlineExpired {
                deadline,
                now: dispatch_at,
            }));
        }
        let Some(batch) = pop.batch else {
            t_free = dispatch_at;
            continue;
        };
        match shard::execute(&mut cache, &batch) {
            Ok(done) => {
                let batch_size = batch.len();
                let plan_s = if done.cache_hit {
                    0.0
                } else {
                    cost.plan_s(&batch.shape)
                };
                let transform_s = cost.transform_s(&batch.shape) * batch_size as f64;
                let deliver_s = cost.deliver_s_per_request * batch_size as f64;
                let end = dispatch_at + cost.dispatch_s + plan_s + transform_s + deliver_s;
                metrics.record_batch(
                    dispatch_at,
                    end,
                    &batch.arrivals(),
                    LaneSplit {
                        dispatch_s: cost.dispatch_s,
                        plan_s,
                        transform_s,
                        deliver_s,
                    },
                );
                for (entry, pyramid) in batch.entries.into_iter().zip(done.pyramids) {
                    outcomes[entry.tag] = Some(Ok(DecomposeResponse {
                        pyramid,
                        cache_hit: done.cache_hit,
                        batch_size,
                        wait_s: (dispatch_at - entry.arrival).max(0.0),
                        service_s: end - dispatch_at,
                    }));
                }
                t_free = end;
            }
            Err(detail) => {
                // Unreachable for validated requests; keep the contract
                // that every entry terminates anyway.
                for entry in batch.entries {
                    outcomes[entry.tag] = Some(Err(Rejection::Invalid {
                        detail: detail.clone(),
                    }));
                }
                t_free = dispatch_at;
            }
        }
    }
    metrics.queue = queue.counters.clone();
    metrics.absorb_cache(&cache);
    metrics.finalize(t_free);
    (metrics, t_free)
}
