//! Deterministic discrete-event driver.
//!
//! The simulator reuses the *same* policy state machines as the live
//! server — [`AdmissionQueue`], [`BatchPolicy`] coalescing,
//! [`PlanCache`] — but advances a virtual clock and prices each stage
//! with an analytic [`CostModel`] instead of reading wall time. Two
//! consequences:
//!
//! 1. **Byte-reproducible benchmarks.** Every latency number is a pure
//!    function of (config, cost model, arrival stream); running the
//!    bench twice produces identical JSON.
//! 2. **Grounded outputs.** Transforms still execute for real through
//!    the shared [`crate::shard::execute`] path, so the simulator's
//!    responses carry actual pyramids and the bit-identity invariants
//!    (cache on/off, batch 1/N) are checkable against the engine.
//!
//! In the fault-free simulator ([`run_sim`]) shards share nothing, so
//! each is simulated as an independent single-server queue; arrivals
//! are admitted at their own timestamps before each dispatch decision,
//! which reproduces the live ordering.
//!
//! The *chaos* simulator ([`run_chaos`]) additionally injects a seeded
//! [`crate::faults::ShardFaultPlan`] and models the recovery machinery
//! of the live driver — supervisor restarts with backoff, poisoned-
//! batch quarantine, failover re-routing, degraded-mode responses. A
//! failed shard changes where *other* shards' arrivals route, so the
//! chaos run is one joint event loop over all shards instead of N
//! independent ones. It is still a pure function of
//! `(config, cost, stream)`: replaying the same seed is byte-identical.

use std::collections::VecDeque;

use crate::admission::{AdmissionQueue, Admit};
use crate::cache::PlanCache;
use crate::elastic::{BalanceAction, BalanceController, QueuedShape, ShardLoad, ShardMap};
use crate::faults::{WireDir, WireFault, WireFaultPlan};
use crate::metrics::{Histogram, LaneSplit, MetricsSnapshot, ShardMetrics};
use crate::progressive::{split_response, Reassembler};
use crate::remote::RetryPolicy;
use crate::request::{
    DecomposeRequest, DecomposeResponse, Entry, Priority, RejectKind, Rejection, ServeResult,
};
use crate::server::ServiceConfig;
use crate::shard;
use crate::transport::TransportError;
use crate::wire::{self, encode_progressive_header, encode_progressive_plane};
use dwt::engine::PlanShape;
use dwt_mimd::CheckpointCodec;

/// Analytic stage costs, loosely calibrated to the measured engine
/// numbers in `BENCH_dwt.json` (the absolute scale matters less than
/// the ratios: plan construction and per-dispatch overhead are each
/// worth tens of microseconds, i.e. comparable to a small transform —
/// which is exactly the regime where caching and batching pay).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Transform seconds per coefficient-tap (folds in the level-sum
    /// geometric factor).
    pub transform_s_per_coeff_tap: f64,
    /// Fixed plan + workspace construction cost (cache miss).
    pub plan_base_s: f64,
    /// Size-dependent plan construction cost (cache miss).
    pub plan_s_per_coeff: f64,
    /// Fixed per-dispatch overhead (pop, coalesce, wakeup) — the cost
    /// batching amortizes.
    pub dispatch_s: f64,
    /// Response delivery cost per request.
    pub deliver_s_per_request: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            transform_s_per_coeff_tap: 0.45e-9,
            plan_base_s: 20e-6,
            plan_s_per_coeff: 1e-9,
            dispatch_s: 25e-6,
            deliver_s_per_request: 2e-6,
        }
    }
}

impl CostModel {
    /// Transform seconds for one request of `shape`.
    pub fn transform_s(&self, shape: &PlanShape) -> f64 {
        self.transform_s_per_coeff_tap * shape.coeffs() as f64 * shape.filter_len() as f64
    }

    /// Plan construction seconds for `shape`.
    pub fn plan_s(&self, shape: &PlanShape) -> f64 {
        self.plan_base_s + self.plan_s_per_coeff * shape.coeffs() as f64
    }
}

/// Everything one simulated run produces.
#[derive(Debug)]
pub struct SimReport {
    /// One terminal outcome per submitted request, in stream order.
    pub outcomes: Vec<ServeResult>,
    /// Per-shard metrics, same schema as the live server's snapshot.
    /// With elastic sharding, reserve slots that were activated follow
    /// the base shards (never-activated slots have no books to close
    /// and are omitted).
    pub metrics: MetricsSnapshot,
    /// Virtual time at which the last shard went idle.
    pub makespan_s: f64,
    /// The elastic controller's decision log, `(virtual time, action)`
    /// in decision order — empty without [`ServiceConfig::elastic`].
    /// Replaying the same `(config, stream)` reproduces this exactly.
    pub actions: Vec<(f64, BalanceAction)>,
}

impl SimReport {
    /// Completed requests per virtual second.
    pub fn throughput(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.metrics.completed() as f64 / self.makespan_s
        } else {
            0.0
        }
    }
}

/// Run the service over a timestamped arrival stream (non-decreasing
/// times, virtual seconds) and return every outcome plus the metrics.
pub fn run_sim(
    config: &ServiceConfig,
    cost: &CostModel,
    stream: Vec<(f64, DecomposeRequest)>,
) -> SimReport {
    if config.elastic.is_some() {
        // Elastic decisions couple the shards (a steal moves work
        // between queues), so the independent per-shard loops below no
        // longer apply; the joint chaos event loop handles it — and
        // with an empty fault plan it orders events identically.
        return run_chaos(config, cost, stream);
    }
    let nshards = config.shards.max(1);
    let mut outcomes: Vec<Option<ServeResult>> = (0..stream.len()).map(|_| None).collect();
    let mut per_shard: Vec<VecDeque<Entry<usize>>> =
        (0..nshards).map(|_| VecDeque::new()).collect();
    let mut invalid_per_shard = vec![0u64; nshards];
    let mut last_t = f64::NEG_INFINITY;
    for (ix, (t, req)) in stream.into_iter().enumerate() {
        assert!(t >= last_t, "arrival stream must be sorted by time");
        last_t = t;
        let shard_ix = shard::shard_of(&req.shape(), nshards);
        if let Err(rejection) = req.validate() {
            invalid_per_shard[shard_ix] += 1;
            outcomes[ix] = Some(Err(rejection));
            continue;
        }
        per_shard[shard_ix].push_back(Entry {
            id: ix as u64,
            arrival: t,
            req,
            attempts: 0,
            tag: ix,
        });
    }

    let mut shards = Vec::with_capacity(nshards);
    let mut makespan_s: f64 = 0.0;
    for (shard_ix, arrivals) in per_shard.into_iter().enumerate() {
        let (metrics, idle_at) = run_shard(
            config,
            cost,
            arrivals,
            invalid_per_shard[shard_ix],
            &mut outcomes,
        );
        makespan_s = makespan_s.max(idle_at);
        shards.push(metrics);
    }
    SimReport {
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("every request terminates in exactly one outcome"))
            .collect(),
        metrics: MetricsSnapshot { shards },
        makespan_s,
        actions: Vec::new(),
    }
}

fn run_shard(
    config: &ServiceConfig,
    cost: &CostModel,
    mut arrivals: VecDeque<Entry<usize>>,
    invalid: u64,
    outcomes: &mut [Option<ServeResult>],
) -> (ShardMetrics, f64) {
    let mut queue: AdmissionQueue<usize> = AdmissionQueue::new(config.queue_capacity);
    let mut cache = PlanCache::new(config.cache_capacity, config.engine_threads);
    let mut metrics = ShardMetrics::default();
    for _ in 0..invalid {
        queue.counters.reject(RejectKind::Invalid);
    }
    let mut t_free = 0.0f64;
    loop {
        // The worker's next dispatch moment: immediately when work is
        // queued, otherwise when the next arrival lands.
        let dispatch_at = if queue.is_empty() {
            match arrivals.front() {
                None => break,
                Some(next) => t_free.max(next.arrival),
            }
        } else {
            t_free
        };
        // Replay every arrival up to that moment at its own timestamp,
        // exactly as the live submitters would have.
        while arrivals.front().is_some_and(|e| e.arrival <= dispatch_at) {
            let entry = arrivals.pop_front().expect("front just checked");
            let now = entry.arrival;
            let incoming = entry.req.priority;
            match queue.admit(now, entry) {
                Admit::Accepted => {}
                Admit::AcceptedShedding(victim) => {
                    metrics.record_lost((now - victim.arrival).max(0.0));
                    outcomes[victim.tag] = Some(Err(Rejection::Shed { by: incoming }));
                }
                Admit::Rejected(e, rejection) => {
                    outcomes[e.tag] = Some(Err(rejection));
                }
            }
        }
        let pop = queue.pop_batch(dispatch_at, &config.batch);
        for e in pop.expired {
            let deadline = e.req.deadline.expect("expired implies a deadline");
            metrics.record_lost((dispatch_at - e.arrival).max(0.0));
            outcomes[e.tag] = Some(Err(Rejection::DeadlineExpired {
                deadline,
                now: dispatch_at,
            }));
        }
        let Some(batch) = pop.batch else {
            t_free = dispatch_at;
            continue;
        };
        match shard::execute(&mut cache, &batch) {
            Ok(done) => {
                let batch_size = batch.len();
                let plan_s = if done.cache_hit {
                    0.0
                } else {
                    cost.plan_s(&batch.shape)
                };
                let transform_s = cost.transform_s(&batch.shape) * batch_size as f64;
                let deliver_s = cost.deliver_s_per_request * batch_size as f64;
                let end = dispatch_at + cost.dispatch_s + plan_s + transform_s + deliver_s;
                metrics.record_batch(
                    dispatch_at,
                    end,
                    &batch.arrivals(),
                    LaneSplit {
                        dispatch_s: cost.dispatch_s,
                        plan_s,
                        transform_s,
                        deliver_s,
                    },
                );
                for (entry, pyramid) in batch.entries.into_iter().zip(done.pyramids) {
                    outcomes[entry.tag] = Some(Ok(DecomposeResponse {
                        pyramid,
                        cache_hit: done.cache_hit,
                        batch_size,
                        wait_s: (dispatch_at - entry.arrival).max(0.0),
                        service_s: end - dispatch_at,
                        degraded: false,
                        error_bound: 0.0,
                    }));
                }
                t_free = end;
            }
            Err(detail) => {
                // Unreachable for validated requests; keep the contract
                // that every entry terminates anyway.
                for entry in batch.entries {
                    outcomes[entry.tag] = Some(Err(Rejection::Invalid {
                        detail: detail.clone(),
                    }));
                }
                t_free = dispatch_at;
            }
        }
    }
    metrics.queue = queue.counters.clone();
    metrics.absorb_cache(&cache);
    metrics.finalize(t_free);
    (metrics, t_free)
}

/// One shard of the joint chaos event loop.
struct ChaosShard {
    queue: AdmissionQueue<usize>,
    cache: PlanCache,
    metrics: ShardMetrics,
    /// Virtual time at which the shard's worker is next free.
    t_free: f64,
    /// Shard-local dispatch counter — the fault-injection coordinate,
    /// monotonic across simulated restarts (exactly like the live
    /// driver's shared counter).
    dispatch: u64,
    restarts: u32,
    failed: bool,
}

impl ChaosShard {
    fn new(config: &ServiceConfig) -> Self {
        ChaosShard {
            queue: AdmissionQueue::new(config.queue_capacity),
            cache: PlanCache::new(config.cache_capacity, config.engine_threads),
            metrics: ShardMetrics::default(),
            t_free: 0.0,
            dispatch: 0,
            restarts: 0,
            failed: false,
        }
    }
}

/// Run the service under the configuration's [`ShardFaultPlan`] as one
/// joint multi-shard discrete-event loop and return every outcome plus
/// the metrics.
///
/// Semantics mirror the live driver event for event:
///
/// * a worker death scheduled at a dispatch index fires at that shard's
///   k-th dispatch; within the restart budget the dispatch's entries
///   re-queue (attempts unchanged) and the shard pays the exponential
///   backoff in virtual time, both charged to the FaultRecovery lane;
/// * past the budget the shard fails over: queued and in-flight work
///   re-routes to live ring successors ([`shard::route`]), entries with
///   no survivor resolve [`Rejection::ShardFailed`], and subsequent
///   arrivals route around the corpse;
/// * a poisoned batch panics at execution: batchmates re-queue to retry
///   solo (attempts + 1), a solo poison resolves
///   [`Rejection::Requeued`];
/// * stall windows multiply the dispatch's compute time;
/// * with a [`crate::faults::DegradedPolicy`], sub-interactive work on
///   a pressured shard (peer failed, or queue past the high-water
///   fraction) is answered with threshold-quantized detail planes and
///   the policy's error bound, delivery priced by surviving
///   coefficients.
///
/// With an empty fault plan this reproduces [`run_sim`]'s behavior (the
/// joint loop and the independent loops order events identically when
/// no shard ever interacts). Everything is a pure function of
/// `(config, cost, stream)` — replays are byte-identical.
pub fn run_chaos(
    config: &ServiceConfig,
    cost: &CostModel,
    stream: Vec<(f64, DecomposeRequest)>,
) -> SimReport {
    let nshards = config.shards.max(1);
    let total = config.total_slots();
    config
        .faults
        .validate(total)
        .expect("invalid fault plan for this shard count");
    if let Some(e) = &config.elastic {
        e.validate().expect("invalid elastic policy");
    }
    let mut map = ShardMap::new(nshards, total - nshards);
    let mut rt: Option<ElasticRt> = config.elastic.map(|policy| ElasticRt::new(policy, total));
    let mut outcomes: Vec<Option<ServeResult>> = (0..stream.len()).map(|_| None).collect();
    let mut shards: Vec<ChaosShard> = (0..total).map(|_| ChaosShard::new(config)).collect();
    let mut arrivals: VecDeque<(f64, usize, DecomposeRequest)> = VecDeque::new();
    let mut last_t = f64::NEG_INFINITY;
    for (ix, (t, req)) in stream.into_iter().enumerate() {
        assert!(t >= last_t, "arrival stream must be sorted by time");
        last_t = t;
        if let Err(rejection) = req.validate() {
            let home = shard::shard_of(&req.shape(), nshards);
            shards[home].queue.counters.reject(RejectKind::Invalid);
            outcomes[ix] = Some(Err(rejection));
            continue;
        }
        arrivals.push_back((t, ix, req));
    }

    loop {
        // The next dispatch moment across live shards with queued work.
        let next_dispatch = shards
            .iter()
            .enumerate()
            .filter(|(_, sh)| !sh.failed && !sh.queue.is_empty())
            .map(|(s, sh)| (sh.t_free, s))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let now = match (arrivals.front(), next_dispatch) {
            (None, None) => break,
            // Arrivals up to the dispatch moment land first, at their
            // own timestamps — the live submitters' ordering.
            (Some(&(ta, _, _)), Some((td, _))) if ta <= td => {
                let (ta, ix, req) = arrivals.pop_front().expect("front just checked");
                chaos_arrival(&mut shards, &map, ta, ix, req, &mut outcomes);
                ta
            }
            (Some(_), None) => {
                let (ta, ix, req) = arrivals.pop_front().expect("front just checked");
                chaos_arrival(&mut shards, &map, ta, ix, req, &mut outcomes);
                ta
            }
            (_, Some((td, s))) => {
                chaos_dispatch(
                    &mut shards,
                    &map,
                    config,
                    cost,
                    s,
                    &mut outcomes,
                    rt.as_mut().map(|r| &mut r.ctrl),
                );
                td
            }
        };
        // The controller runs after every event, at that event's
        // virtual time — the sim-side mirror of the live driver's
        // submit-path tick.
        if let Some(rt) = rt.as_mut() {
            elastic_step(&mut shards, &mut map, rt, now, &mut outcomes);
        }
    }

    let mut makespan_s: f64 = 0.0;
    let mut out_shards = Vec::with_capacity(total);
    for (s, mut sh) in shards.into_iter().enumerate() {
        sh.metrics.queue = sh.queue.counters.clone();
        sh.metrics.absorb_cache(&sh.cache);
        if s < nshards {
            makespan_s = makespan_s.max(sh.t_free);
            sh.metrics.finalize(sh.t_free);
            out_shards.push(sh.metrics);
            continue;
        }
        // Reserve slots: a slot that never activated has no books to
        // close (it routed nothing, served nothing) — including it
        // with completion 0 would misread the whole run as imbalance.
        // Activation always picks the lowest inactive slot, so the
        // omitted slots are a suffix and the emitted indices are
        // stable. An activated slot owes idle time only over its
        // active windows.
        let rt = rt.as_mut().expect("reserve slots exist only with elastic");
        if !rt.ever_active[s] {
            continue;
        }
        let (active_s, end) = match rt.activated_at[s].take() {
            Some(t0) => {
                let end = sh.t_free.max(t0);
                (rt.active_s[s] + end - t0, end)
            }
            None => (rt.active_s[s], rt.last_end[s]),
        };
        makespan_s = makespan_s.max(end);
        sh.metrics.finalize_active(active_s, end);
        out_shards.push(sh.metrics);
    }
    SimReport {
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("every request terminates in exactly one outcome"))
            .collect(),
        metrics: MetricsSnapshot { shards: out_shards },
        makespan_s,
        actions: rt.map(|r| r.actions).unwrap_or_default(),
    }
}

/// The elastic control plane's runtime state inside the chaos loop:
/// the controller itself, per-slot activation windows (for honest
/// imbalance accounting of reserve-born shards), and the decision log.
struct ElasticRt {
    ctrl: BalanceController,
    /// Start of the slot's current activation window, if active now.
    activated_at: Vec<Option<f64>>,
    /// Seconds of *closed* activation windows accumulated so far.
    active_s: Vec<f64>,
    /// End of the slot's last closed activation window.
    last_end: Vec<f64>,
    /// Whether the slot was ever activated (split at least once).
    ever_active: Vec<bool>,
    actions: Vec<(f64, BalanceAction)>,
}

impl ElasticRt {
    fn new(policy: crate::elastic::ElasticPolicy, total: usize) -> Self {
        ElasticRt {
            ctrl: BalanceController::new(policy),
            activated_at: vec![None; total],
            active_s: vec![0.0; total],
            last_end: vec![0.0; total],
            ever_active: vec![false; total],
            actions: Vec::new(),
        }
    }
}

/// Move one already-admitted entry from `from`'s queue into `to`'s.
/// Counter-neutral on the door books (the entry was accepted once, at
/// its original shard); an idle target's free time advances to the
/// migration moment, exactly like [`chaos_admit`]'s idle rule.
fn elastic_migrate(shards: &mut [ChaosShard], from: usize, to: usize, entry: Entry<usize>, t: f64) {
    if shards[to].queue.is_empty() {
        shards[to].t_free = shards[to].t_free.max(t);
    }
    shards[to].queue.accept_migrated(entry);
    shards[from].metrics.stolen_out += 1;
    shards[to].metrics.stolen_in += 1;
}

/// One controller step at virtual time `t`: census every slot, ask for
/// a decision, apply it as queue surgery + map mutation, log it.
fn elastic_step(
    shards: &mut [ChaosShard],
    map: &mut ShardMap,
    rt: &mut ElasticRt,
    t: f64,
    outcomes: &mut [Option<ServeResult>],
) {
    if !rt.ctrl.ready(t) {
        return;
    }
    let loads: Vec<ShardLoad> = shards
        .iter()
        .enumerate()
        .map(|(s, sh)| ShardLoad {
            active: map.is_active(s),
            failed: sh.failed,
            depth: sh.queue.len(),
            free: sh.queue.free(),
            queued: sh
                .queue
                .shape_census()
                .into_iter()
                .map(|(shape, count, movable)| QueuedShape {
                    key: shard::shape_key(&shape),
                    shape,
                    count,
                    movable,
                })
                .collect(),
        })
        .collect();
    let Some(action) = rt.ctrl.decide(t, &loads) else {
        return;
    };
    match &action {
        BalanceAction::Steal { from, to, key, cap } => {
            let (from, to) = (*from, *to);
            let cap = (*cap).min(shards[to].queue.free());
            for entry in shards[from].queue.take_shape(*key, cap) {
                elastic_migrate(shards, from, to, entry, t);
            }
        }
        BalanceAction::Split { from, to, keys } => {
            let (from, to) = (*from, *to);
            map.activate(to);
            rt.activated_at[to] = Some(t);
            rt.ever_active[to] = true;
            shards[to].t_free = shards[to].t_free.max(t);
            for &key in keys {
                map.set_override(key, to);
                let cap = shards[to].queue.free();
                for entry in shards[from].queue.take_shape(key, cap) {
                    elastic_migrate(shards, from, to, entry, t);
                }
            }
            shards[from].metrics.splits += 1;
        }
        BalanceAction::Merge { from } => {
            let from = *from;
            for key in map.overrides_to(from) {
                map.clear_override(key);
            }
            map.retire(from);
            if let Some(t0) = rt.activated_at[from].take() {
                rt.active_s[from] += t.max(t0) - t0;
                rt.last_end[from] = rt.last_end[from].max(t).max(shards[from].t_free);
            }
            shards[from].metrics.merges += 1;
            // Drain the retiring queue losslessly back through the map.
            // The merge threshold keeps this drain tiny (usually
            // empty); should every routable queue be full anyway, the
            // entry resolves a typed QueueFull rather than vanishing.
            let alive: Vec<bool> = shards.iter().map(|sh| !sh.failed).collect();
            for entry in shards[from].queue.drain() {
                let routed = map
                    .route(&entry.req.shape(), &alive)
                    .filter(|&tgt| shards[tgt].queue.free() > 0)
                    .or_else(|| {
                        (0..shards.len()).find(|&x| {
                            map.is_active(x) && !shards[x].failed && shards[x].queue.free() > 0
                        })
                    });
                match routed {
                    Some(target) => elastic_migrate(shards, from, target, entry, t),
                    None => {
                        let depth = shards[from].queue.len();
                        shards[from].queue.counters.reject(RejectKind::QueueFull);
                        outcomes[entry.tag] = Some(Err(Rejection::QueueFull { depth }));
                    }
                }
            }
        }
    }
    rt.actions.push((t, action));
}

/// Route and admit one external arrival at its own timestamp. Routing
/// goes through the [`ShardMap`] (overrides, active set, ring
/// successors); rejections are accounted to the shape's stable FNV
/// home, which elastic actions never move.
fn chaos_arrival(
    shards: &mut [ChaosShard],
    map: &ShardMap,
    t: f64,
    ix: usize,
    req: DecomposeRequest,
    outcomes: &mut [Option<ServeResult>],
) {
    let shape = req.shape();
    let home = map.home(&shape);
    let alive: Vec<bool> = shards.iter().map(|sh| !sh.failed).collect();
    let Some(target) = map.route(&shape, &alive) else {
        let restarts = shards[home].restarts;
        shards[home].queue.counters.reject(RejectKind::ShardFailed);
        outcomes[ix] = Some(Err(Rejection::ShardFailed {
            shard: home,
            restarts,
        }));
        return;
    };
    let entry = Entry {
        id: ix as u64,
        arrival: t,
        req,
        attempts: 0,
        tag: ix,
    };
    chaos_admit(shards, target, entry, t, outcomes);
}

/// Admit one entry into `target`'s queue at virtual time `t`, resolving
/// shed victims and refusals. An idle shard's free time advances to the
/// admission time (it cannot dispatch work before the work exists).
fn chaos_admit(
    shards: &mut [ChaosShard],
    target: usize,
    entry: Entry<usize>,
    t: f64,
    outcomes: &mut [Option<ServeResult>],
) -> bool {
    let incoming = entry.req.priority;
    let sh = &mut shards[target];
    if sh.queue.is_empty() {
        sh.t_free = sh.t_free.max(t);
    }
    match sh.queue.admit(t, entry) {
        Admit::Accepted => true,
        Admit::AcceptedShedding(victim) => {
            sh.metrics.record_lost((t - victim.arrival).max(0.0));
            outcomes[victim.tag] = Some(Err(Rejection::Shed { by: incoming }));
            true
        }
        Admit::Rejected(e, rejection) => {
            outcomes[e.tag] = Some(Err(rejection));
            false
        }
    }
}

/// Re-admit a recovered entry, charging the requeue handoff to shard
/// `charge` (the shard whose failure caused it).
fn chaos_readmit(
    shards: &mut [ChaosShard],
    charge: usize,
    target: usize,
    entry: Entry<usize>,
    config: &ServiceConfig,
    t: f64,
    outcomes: &mut [Option<ServeResult>],
) {
    if chaos_admit(shards, target, entry, t, outcomes) {
        shards[charge]
            .metrics
            .record_requeue(config.supervisor.requeue_s);
    }
}

/// Fail shard `s` over: re-route its in-flight (`batch`) and queued
/// entries to live ring successors; entries with no survivor resolve
/// [`Rejection::ShardFailed`].
fn chaos_fail_over(
    shards: &mut [ChaosShard],
    map: &ShardMap,
    s: usize,
    batch: Option<crate::batch::Batch<usize>>,
    config: &ServiceConfig,
    t: f64,
    outcomes: &mut [Option<ServeResult>],
) {
    shards[s].failed = true;
    shards[s].metrics.failed = true;
    let restarts = shards[s].restarts;
    let queued = shards[s].queue.drain();
    let alive: Vec<bool> = shards.iter().map(|sh| !sh.failed).collect();
    for entry in batch.into_iter().flat_map(|b| b.entries).chain(queued) {
        match map.route(&entry.req.shape(), &alive) {
            Some(target) => chaos_readmit(shards, s, target, entry, config, t, outcomes),
            None => {
                shards[s].queue.counters.reject(RejectKind::ShardFailed);
                outcomes[entry.tag] = Some(Err(Rejection::ShardFailed { shard: s, restarts }));
            }
        }
    }
}

/// One dispatch on shard `s` at its free time, with fault injection.
/// `ctrl` (present under elastic sharding) gets the batch's measured
/// per-request service time folded into its cost book.
#[allow(clippy::too_many_arguments)]
fn chaos_dispatch(
    shards: &mut [ChaosShard],
    map: &ShardMap,
    config: &ServiceConfig,
    cost: &CostModel,
    s: usize,
    outcomes: &mut [Option<ServeResult>],
    ctrl: Option<&mut BalanceController>,
) {
    let t = shards[s].t_free;
    let depth_frac = shards[s].queue.len() as f64 / config.queue_capacity.max(1) as f64;
    let pop = shards[s].queue.pop_batch(t, &config.batch);
    for e in pop.expired {
        let deadline = e.req.deadline.expect("expired implies a deadline");
        shards[s].metrics.record_lost((t - e.arrival).max(0.0));
        outcomes[e.tag] = Some(Err(Rejection::DeadlineExpired { deadline, now: t }));
    }
    let Some(batch) = pop.batch else { return };
    let k = shards[s].dispatch;
    shards[s].dispatch += 1;

    if config.faults.worker_dies(s, k) {
        let restart_no = shards[s].restarts + 1;
        if config.supervisor.enabled() && restart_no <= config.supervisor.max_restarts {
            // Supervisor restart: the dead worker's dispatch re-queues
            // (the worker was the suspect, attempts stay), the shard
            // pays the backoff in virtual time.
            shards[s].restarts = restart_no;
            let backoff = config.supervisor.backoff_s(restart_no);
            shards[s].metrics.record_restart(backoff);
            for entry in batch.entries {
                chaos_readmit(shards, s, s, entry, config, t, outcomes);
            }
            shards[s].t_free = t + backoff;
        } else {
            chaos_fail_over(shards, map, s, Some(batch), config, t, outcomes);
        }
        return;
    }

    if batch.entries.iter().any(|e| config.faults.poisoned(e.id)) {
        // Execution panics; the quarantine runs in-thread after one
        // dispatch overhead's worth of work.
        if batch.len() == 1 {
            let entry = batch.entries.into_iter().next().expect("len checked");
            shards[s].metrics.quarantined += 1;
            shards[s].queue.counters.reject(RejectKind::Requeued);
            outcomes[entry.tag] = Some(Err(Rejection::Requeued {
                attempts: entry.attempts + 1,
            }));
        } else {
            for mut entry in batch.entries {
                entry.attempts += 1;
                chaos_readmit(shards, s, s, entry, config, t, outcomes);
            }
        }
        shards[s].t_free = t + cost.dispatch_s;
        return;
    }

    let peer_failed = shards.iter().enumerate().any(|(i, sh)| i != s && sh.failed);
    let degrade = config
        .degraded
        .filter(|d| peer_failed || depth_frac >= d.queue_high_water);
    match shard::execute(&mut shards[s].cache, &batch) {
        Ok(done) => {
            let batch_size = batch.len();
            let shape_key = shard::shape_key(&batch.shape);
            let plan_s = if done.cache_hit {
                0.0
            } else {
                cost.plan_s(&batch.shape)
            };
            let transform_s = cost.transform_s(&batch.shape) * batch_size as f64;
            let stall = config.faults.stall_factor(s, k);
            // Price delivery per response: a degraded response ships
            // only surviving coefficients.
            let mut responses = Vec::with_capacity(batch_size);
            let mut frac_sum = 0.0;
            let mut degraded_count = 0u64;
            for (entry, mut pyramid) in batch.entries.into_iter().zip(done.pyramids) {
                let mut error_bound = 0.0;
                let mut degraded = false;
                let mut frac = 1.0;
                if let Some(d) = degrade {
                    if entry.req.priority < Priority::Interactive {
                        let total_detail: usize = pyramid
                            .detail
                            .iter()
                            .map(|b| b.lh.data().len() + b.hl.data().len() + b.hh.data().len())
                            .sum();
                        let approx_len = pyramid.approx.data().len();
                        let kept = shard::degrade_pyramid(&mut pyramid, &d);
                        frac =
                            (approx_len + kept) as f64 / (approx_len + total_detail).max(1) as f64;
                        error_bound = d.error_bound();
                        degraded = true;
                        degraded_count += 1;
                    }
                }
                frac_sum += frac;
                responses.push((entry, pyramid, degraded, error_bound));
            }
            let deliver_s = cost.deliver_s_per_request * frac_sum;
            // Keep the fault-free arithmetic bit-identical to
            // `run_sim`'s (same association, no `* 1.0` rounding), so
            // an empty fault plan reproduces it exactly.
            let end = if stall == 1.0 {
                t + cost.dispatch_s + plan_s + transform_s + deliver_s
            } else {
                t + cost.dispatch_s + (plan_s + transform_s) * stall + deliver_s
            };
            let arrivals: Vec<f64> = responses.iter().map(|(e, ..)| e.arrival).collect();
            shards[s].metrics.record_batch(
                t,
                end,
                &arrivals,
                LaneSplit {
                    dispatch_s: cost.dispatch_s,
                    plan_s: plan_s * stall,
                    transform_s: transform_s * stall,
                    deliver_s,
                },
            );
            shards[s].metrics.degraded_served += degraded_count;
            if let Some(ctrl) = ctrl {
                // Feed the cost book the measured per-request service
                // time — the same signal the live workers feed it.
                ctrl.observe(shape_key, (end - t) / batch_size as f64);
            }
            for (entry, pyramid, degraded, error_bound) in responses {
                outcomes[entry.tag] = Some(Ok(DecomposeResponse {
                    pyramid,
                    cache_hit: done.cache_hit,
                    batch_size,
                    wait_s: (t - entry.arrival).max(0.0),
                    service_s: end - t,
                    degraded,
                    error_bound,
                }));
            }
            shards[s].t_free = end;
        }
        Err(detail) => {
            for entry in batch.entries {
                outcomes[entry.tag] = Some(Err(Rejection::Invalid {
                    detail: detail.clone(),
                }));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Closed-loop transport simulation
// ---------------------------------------------------------------------

/// Analytic price of the wire between a client and the service:
/// serialization, framing, transfer, and propagation. All virtual
/// seconds — the closed-loop simulator charges these to the
/// Communication lane so the live benchmark can compare its measured
/// framing cost against the model's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireCostModel {
    /// Encode + decode cost per payload byte (both ends combined).
    pub ser_s_per_byte: f64,
    /// Fixed cost per frame: header, checksum, syscall.
    pub frame_overhead_s: f64,
    /// Transfer cost per payload byte on the wire.
    pub wire_s_per_byte: f64,
    /// Propagation round trip.
    pub rtt_s: f64,
}

impl Default for WireCostModel {
    fn default() -> Self {
        // Loopback-ish numbers: memcpy-rate serialization, ~10 Gb/s
        // transfer, microseconds of per-frame overhead (header,
        // checksum, syscall, scheduler wakeup).
        WireCostModel {
            ser_s_per_byte: 0.4e-9,
            frame_overhead_s: 8e-6,
            wire_s_per_byte: 0.8e-9,
            rtt_s: 60e-6,
        }
    }
}

impl WireCostModel {
    /// One-way cost of a frame carrying `payload_bytes` of payload:
    /// per-frame overhead, serialization + transfer per byte, and half
    /// a round trip of propagation. Progressive delivery prices each
    /// header/plane frame through this with its actual encoded size.
    pub fn frame_payload_s(&self, payload_bytes: f64) -> f64 {
        self.frame_overhead_s
            + payload_bytes * (self.ser_s_per_byte + self.wire_s_per_byte)
            + self.rtt_s / 2.0
    }

    /// One-way cost of a request frame carrying `shape`'s image.
    pub fn request_s(&self, shape: &PlanShape) -> f64 {
        self.frame_payload_s(shape.coeffs() as f64 * 8.0 + 64.0)
    }

    /// One-way cost of a monolithic successful response (a pyramid
    /// holds exactly `coeffs()` coefficients).
    pub fn response_ok_s(&self, shape: &PlanShape) -> f64 {
        self.frame_payload_s(shape.coeffs() as f64 * 8.0 + 64.0)
    }

    /// One-way cost of a rejection response (payload is a short tag).
    pub fn response_err_s(&self) -> f64 {
        self.frame_payload_s(64.0)
    }

    /// Hello + HelloAck exchange on a fresh connection.
    pub fn handshake_s(&self) -> f64 {
        2.0 * self.frame_overhead_s
            + 32.0 * (self.ser_s_per_byte + self.wire_s_per_byte)
            + self.rtt_s
    }

    /// Validate the model. Returns a human-readable reason on failure.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("ser_s_per_byte", self.ser_s_per_byte),
            ("frame_overhead_s", self.frame_overhead_s),
            ("wire_s_per_byte", self.wire_s_per_byte),
            ("rtt_s", self.rtt_s),
        ] {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(format!("{name} = {v} must be finite and >= 0"));
            }
        }
        Ok(())
    }
}

/// Shape of a closed-loop multi-client run: `clients` synchronous
/// clients, each keeping exactly one outstanding request and submitting
/// its next the moment the previous response lands.
#[derive(Debug, Clone)]
pub struct ClosedLoopConfig {
    /// Number of concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client issues.
    pub reqs_per_client: usize,
    /// Client think time between a delivery and the next submit.
    pub think_s: f64,
    /// Stagger between client start times (client `c` connects at
    /// `c * client_stagger_s`), breaking exact submission ties the way
    /// real clients never tie.
    pub client_stagger_s: f64,
    /// Client-side retry policy — mirror the live clients'.
    pub retry: RetryPolicy,
    /// The wire price model.
    pub wire: WireCostModel,
    /// Seeded wire faults, sharing the live transports' coordinate
    /// space: `conn` is the client id, frame 0 each direction is the
    /// handshake, request `k`'s first attempt is client-to-server
    /// frame `k + 1` when fault-free.
    pub wire_faults: WireFaultPlan,
    /// When set, successful responses stream progressively and each
    /// header/plane frame is priced individually — the simulator's
    /// prediction of [`crate::RemoteConfig::progressive`] plus
    /// [`crate::RemoteClient::with_tolerance`].
    pub progressive: Option<ProgressiveSim>,
}

/// Progressive-delivery knobs of the closed-loop simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressiveSim {
    /// Codec quantizing detail planes on the wire (mirror the server's
    /// [`crate::RemoteConfig::progressive`]).
    pub codec: CheckpointCodec,
    /// Client tolerance: once the running error bound reaches this,
    /// the simulated client cancels the rest of the sequence. `None`
    /// reads every sequence to completion.
    pub tolerance: Option<f64>,
    /// Client byte budget: once this many on-wire response bytes have
    /// been delivered for a call, the simulated client cancels the
    /// rest of the sequence — the mirror of
    /// [`crate::RemoteClient::with_byte_budget`]. Composes with
    /// `tolerance`: whichever predicate fires first cancels.
    pub byte_budget: Option<usize>,
}

impl Default for ClosedLoopConfig {
    fn default() -> Self {
        ClosedLoopConfig {
            clients: 4,
            reqs_per_client: 16,
            think_s: 0.0,
            client_stagger_s: 5e-6,
            retry: RetryPolicy::default(),
            wire: WireCostModel::default(),
            wire_faults: WireFaultPlan::none(),
            progressive: None,
        }
    }
}

impl ClosedLoopConfig {
    /// Validate the configuration. Returns a human-readable reason on
    /// failure.
    pub fn validate(&self) -> Result<(), String> {
        if self.clients == 0 {
            return Err("clients must be >= 1".into());
        }
        for (name, v) in [
            ("think_s", self.think_s),
            ("client_stagger_s", self.client_stagger_s),
        ] {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(format!("{name} = {v} must be finite and >= 0"));
            }
        }
        if let Some(ps) = &self.progressive {
            if !ps.codec.is_valid() {
                return Err("progressive codec parameters must be finite and >= 0".into());
            }
            if let Some(tol) = ps.tolerance {
                if !(tol >= 0.0 && tol.is_finite()) {
                    return Err(format!("tolerance = {tol} must be finite and >= 0"));
                }
            }
            if ps.byte_budget == Some(0) {
                return Err("byte_budget must be >= 1".into());
            }
        }
        self.retry.validate()?;
        self.wire.validate()?;
        self.wire_faults.validate()
    }
}

/// What a closed-loop client observed for one of its requests: the
/// service outcome it received, or the transport error it gave up with
/// after exhausting its retry budget.
pub type ClientOutcome = Result<ServeResult, TransportError>;

/// Everything a closed-loop run produces.
#[derive(Debug)]
pub struct ClosedLoopReport {
    /// Client-observed outcome per request, indexed
    /// `client * reqs_per_client + k`.
    pub outcomes: Vec<ClientOutcome>,
    /// Server-side metrics (the same shape [`run_chaos`] reports).
    pub metrics: MetricsSnapshot,
    /// Client-observed end-to-end latency per *delivered* request:
    /// first submit to response in hand, across every retry.
    pub latency: Histogram,
    /// Virtual time at which the last shard went idle or the last
    /// response landed, whichever is later.
    pub makespan_s: f64,
    /// Serialization + framing + transfer seconds across every frame
    /// and handshake — the Communication-lane charge.
    pub comm_s: f64,
    /// Fault-detection, backoff, and stall seconds — the
    /// FaultRecovery-lane charge.
    pub fault_recovery_s: f64,
    /// Client attempts beyond the first, summed over all requests.
    pub retries: u64,
    /// Responses the server re-sent from its resolution book instead
    /// of re-executing.
    pub replays: u64,
    /// Frames placed on the wire in either direction, handshakes and
    /// faulted frames included.
    pub frames: u64,
    /// Progressive detail-plane frames delivered to clients.
    pub planes: u64,
    /// Progressive sequences cut short by a tolerance-met Cancel.
    pub cancels: u64,
    /// Progressive sequences cut short because the client's byte
    /// budget was reached before completion (a subset of `cancels`).
    pub budget_stops: u64,
    /// Response-direction payload bytes placed on the wire (headers,
    /// planes, monolithic responses; faulted frames included).
    pub response_bytes: u64,
    /// Counterfactual payload bytes had every response shipped as one
    /// monolithic frame exactly once — the baseline `response_bytes`
    /// is compared against for bytes-to-tolerance.
    pub monolithic_bytes: u64,
}

impl ClosedLoopReport {
    /// Requests that reached their client, per virtual second.
    pub fn throughput(&self) -> f64 {
        let delivered = self.outcomes.iter().filter(|o| o.is_ok()).count();
        if self.makespan_s > 0.0 {
            delivered as f64 / self.makespan_s
        } else {
            0.0
        }
    }
}

/// Running totals of wire time inside the closed-loop simulator.
#[derive(Default)]
struct WireLedger {
    comm_s: f64,
    fault_s: f64,
    frames: u64,
    retries: u64,
    replays: u64,
    planes: u64,
    cancels: u64,
    budget_stops: u64,
    response_bytes: u64,
    monolithic_bytes: u64,
}

/// Per-client state inside the closed-loop simulator.
struct SimClient {
    /// Next client-to-server frame index (0 was the Hello).
    c2s: u64,
    /// Next server-to-client frame index (0 was the HelloAck).
    s2c: u64,
    /// Request index this client issues next.
    next_k: usize,
    /// Time of the first attempt of the in-flight request.
    first_submit: f64,
    /// Attempts started on the in-flight request (1-based).
    attempts: u32,
    /// Outcome slot the client is waiting on, once its request has
    /// reached the service.
    waiting_ix: Option<usize>,
}

/// What the send half of one attempt concluded.
enum SendHalf {
    /// The frame arrives at the server at this time.
    Arrives(f64),
    /// The frame was lost; the client notices at this time.
    Lost(f64, TransportError),
}

/// Walk one client-to-server frame through the fault plan.
fn send_half(
    cl: &ClosedLoopConfig,
    sc: &mut SimClient,
    conn: u64,
    t: f64,
    one_way: f64,
    acc: &mut WireLedger,
) -> SendHalf {
    let idx = sc.c2s;
    sc.c2s += 1;
    acc.frames += 1;
    match cl.wire_faults.decide(conn, WireDir::ClientToServer, idx) {
        None => {
            acc.comm_s += one_way;
            SendHalf::Arrives(t + one_way)
        }
        Some(WireFault::Stall { seconds }) => {
            acc.comm_s += one_way;
            acc.fault_s += seconds;
            SendHalf::Arrives(t + seconds + one_way)
        }
        Some(WireFault::Reset) | Some(WireFault::Truncate) => {
            // Abortive close / mid-frame FIN: the sender's own stream
            // errors within about a round trip.
            let detect = one_way + cl.wire.rtt_s / 2.0;
            acc.fault_s += detect;
            SendHalf::Lost(t + detect, TransportError::ConnReset)
        }
        Some(WireFault::BitFlip { .. }) => {
            // The server's checksum rejects the frame and aborts the
            // connection; the client sees the reset a round trip later.
            let detect = one_way + cl.wire.rtt_s;
            acc.fault_s += detect;
            SendHalf::Lost(t + detect, TransportError::ConnReset)
        }
    }
}

/// What the response delivery of one attempt concluded.
enum RecvHalf {
    /// The response lands at the client at this time.
    Delivered(f64),
    /// The response was lost; the client notices at this time.
    Lost(f64, TransportError),
}

/// Walk one server-to-client frame through the fault plan.
fn recv_half(
    cl: &ClosedLoopConfig,
    sc: &mut SimClient,
    conn: u64,
    t_res: f64,
    one_way: f64,
    acc: &mut WireLedger,
) -> RecvHalf {
    let idx = sc.s2c;
    sc.s2c += 1;
    acc.frames += 1;
    match cl.wire_faults.decide(conn, WireDir::ServerToClient, idx) {
        None => {
            acc.comm_s += one_way;
            RecvHalf::Delivered(t_res + one_way)
        }
        Some(WireFault::Stall { seconds }) => {
            acc.comm_s += one_way;
            acc.fault_s += seconds;
            RecvHalf::Delivered(t_res + seconds + one_way)
        }
        Some(WireFault::Reset) | Some(WireFault::Truncate) => {
            let detect = one_way + cl.wire.rtt_s / 2.0;
            acc.fault_s += detect;
            RecvHalf::Lost(t_res + detect, TransportError::ConnReset)
        }
        Some(WireFault::BitFlip { .. }) => {
            // The client's own checksum rejects this one on receipt.
            acc.fault_s += one_way;
            RecvHalf::Lost(
                t_res + one_way,
                TransportError::FrameCorrupt {
                    detail: "checksum mismatch".into(),
                },
            )
        }
    }
}

/// Charge one failed attempt: capped exponential backoff, then a fresh
/// connection's handshake (which consumes one frame index in each
/// direction, exactly like the live reconnect — handshake frames are
/// never faulted themselves; the live connect path retries internally).
fn pay_retry(cl: &ClosedLoopConfig, sc: &mut SimClient, t: f64, acc: &mut WireLedger) -> f64 {
    acc.retries += 1;
    let back = cl.retry.backoff_s(sc.attempts);
    sc.attempts += 1;
    sc.c2s += 1; // Hello
    sc.s2c += 1; // HelloAck
    acc.frames += 2;
    let shake = cl.wire.handshake_s();
    acc.fault_s += back;
    acc.comm_s += shake;
    t + back + shake
}

/// Send a request frame until it reaches the server or the attempt
/// budget dies. `Ok` carries the arrival time, `Err` the give-up time
/// and the error the client last saw.
fn send_until_arrives(
    cl: &ClosedLoopConfig,
    sc: &mut SimClient,
    conn: u64,
    mut t: f64,
    one_way: f64,
    acc: &mut WireLedger,
) -> Result<f64, (f64, TransportError)> {
    loop {
        match send_half(cl, sc, conn, t, one_way, acc) {
            SendHalf::Arrives(ta) => return Ok(ta),
            SendHalf::Lost(tl, err) => {
                if sc.attempts >= cl.retry.max_attempts {
                    return Err((tl, err));
                }
                t = pay_retry(cl, sc, tl, acc);
            }
        }
    }
}

/// Deliver a resolved result to its client, replaying on response-path
/// losses: each failed delivery costs a backoff + reconnect + request
/// resend, and the server answers the resend from its resolution book
/// (never by re-executing). `Ok` carries the delivery time and the
/// result *as the client assembled it* — identical to the server's for
/// monolithic delivery, a (possibly partial) reassembly under
/// [`ClosedLoopConfig::progressive`].
///
/// Progressive sequences price every header/plane frame individually
/// through [`WireCostModel::frame_payload_s`] with its actual encoded
/// size; a frame lost mid-sequence costs a backoff + reconnect +
/// request resend and the server replays the *whole* sequence from the
/// header (the reassembly is idempotent). A tolerance-met Cancel
/// consumes one client-to-server frame index priced as an empty frame;
/// unlike live delivery it is never faulted itself — the live client
/// simply drops the connection when a Cancel fails, which costs it
/// nothing the simulator tracks.
fn deliver_result(
    cl: &ClosedLoopConfig,
    sc: &mut SimClient,
    conn: u64,
    shape: &PlanShape,
    t_res: f64,
    res: &ServeResult,
    acc: &mut WireLedger,
) -> Result<(f64, ServeResult), (f64, TransportError)> {
    let req_cost = cl.wire.request_s(shape);
    let mono_bytes = match res {
        Ok(_) => shape.coeffs() as u64 * 8 + 64,
        Err(_) => 64,
    };
    acc.monolithic_bytes += mono_bytes;

    if let (Some(ps), Ok(resp)) = (&cl.progressive, res) {
        let (header, planes) =
            split_response(resp, ps.codec).expect("validated codec splits any response");
        let hbytes = encode_progressive_header(0, &header)
            .expect("header always frames")
            .payload
            .len() as u64;
        let pbytes: Vec<u64> = planes
            .iter()
            .enumerate()
            .map(|(i, p)| {
                encode_progressive_plane(0, p, i + 1 < planes.len())
                    .expect("planes always frame")
                    .payload
                    .len() as u64
            })
            .collect();
        // On-wire bytes delivered this attempt (framing included), the
        // same quantity the live client's byte-budget predicate sees.
        let wire_len = |payload: u64| payload + (wire::HEADER_LEN + wire::TRAILER_LEN) as u64;
        let mut t = t_res;
        'attempt: loop {
            let mut reasm = Reassembler::new(header.clone()).expect("header geometry is valid");
            let mut got_bytes = 0u64;
            acc.response_bytes += hbytes;
            match recv_half(cl, sc, conn, t, cl.wire.frame_payload_s(hbytes as f64), acc) {
                RecvHalf::Delivered(td) => {
                    t = td;
                    got_bytes += wire_len(hbytes);
                }
                RecvHalf::Lost(tl, err) => {
                    if sc.attempts >= cl.retry.max_attempts {
                        return Err((tl, err));
                    }
                    let t_re = pay_retry(cl, sc, tl, acc);
                    let ta = send_until_arrives(cl, sc, conn, t_re, req_cost, acc)?;
                    acc.replays += 1;
                    t = ta;
                    continue 'attempt;
                }
            }
            let tolerance_met = |r: &Reassembler| ps.tolerance.is_some_and(|tol| r.bound() <= tol);
            let over_budget = |got: u64| ps.byte_budget.is_some_and(|b| got >= b as u64);
            if (tolerance_met(&reasm) || over_budget(got_bytes)) && !reasm.complete() {
                sc.c2s += 1; // Cancel frame
                acc.frames += 1;
                acc.comm_s += cl.wire.frame_payload_s(0.0);
                acc.cancels += 1;
                if !tolerance_met(&reasm) {
                    acc.budget_stops += 1;
                }
                return Ok((t, Ok(reasm.into_response())));
            }
            for (j, plane) in planes.iter().enumerate() {
                acc.response_bytes += pbytes[j];
                match recv_half(
                    cl,
                    sc,
                    conn,
                    t,
                    cl.wire.frame_payload_s(pbytes[j] as f64),
                    acc,
                ) {
                    RecvHalf::Delivered(td) => {
                        t = td;
                        got_bytes += wire_len(pbytes[j]);
                        reasm.apply(plane).expect("planes fit their header");
                        acc.planes += 1;
                        if (tolerance_met(&reasm) || over_budget(got_bytes)) && !reasm.complete() {
                            sc.c2s += 1; // Cancel frame
                            acc.frames += 1;
                            acc.comm_s += cl.wire.frame_payload_s(0.0);
                            acc.cancels += 1;
                            if !tolerance_met(&reasm) {
                                acc.budget_stops += 1;
                            }
                            return Ok((t, Ok(reasm.into_response())));
                        }
                    }
                    RecvHalf::Lost(tl, err) => {
                        if sc.attempts >= cl.retry.max_attempts {
                            return Err((tl, err));
                        }
                        let t_re = pay_retry(cl, sc, tl, acc);
                        let ta = send_until_arrives(cl, sc, conn, t_re, req_cost, acc)?;
                        acc.replays += 1;
                        t = ta;
                        continue 'attempt;
                    }
                }
            }
            return Ok((t, Ok(reasm.into_response())));
        }
    }

    let one_way = match res {
        Ok(_) => cl.wire.response_ok_s(shape),
        Err(_) => cl.wire.response_err_s(),
    };
    let mut t = t_res;
    loop {
        acc.response_bytes += mono_bytes;
        match recv_half(cl, sc, conn, t, one_way, acc) {
            RecvHalf::Delivered(td) => return Ok((td, res.clone())),
            RecvHalf::Lost(tl, err) => {
                if sc.attempts >= cl.retry.max_attempts {
                    return Err((tl, err));
                }
                let t_re = pay_retry(cl, sc, tl, acc);
                let ta = send_until_arrives(cl, sc, conn, t_re, req_cost, acc)?;
                acc.replays += 1;
                t = ta;
            }
        }
    }
}

/// Move a client past its finished request: record the terminal moment
/// and schedule the next submit (or retire the client).
fn advance_client(
    cl: &ClosedLoopConfig,
    sc: &mut SimClient,
    next_action: &mut Option<f64>,
    t: f64,
) {
    sc.next_k += 1;
    if sc.next_k < cl.reqs_per_client {
        *next_action = Some(t + cl.think_s);
    }
}

/// Turn freshly visible resolutions into deliveries. `now` is the
/// event time that made them visible: a served outcome surfaced by the
/// dispatch starting at `now` resolves at `now + service_s`; rejection
/// moments not carried by the outcome use `now` itself.
#[allow(clippy::too_many_arguments)]
fn drain_resolutions(
    cl: &ClosedLoopConfig,
    shapes: &[PlanShape],
    clients: &mut [SimClient],
    next_action: &mut [Option<f64>],
    outcomes: &[Option<ServeResult>],
    client_out: &mut [Option<ClientOutcome>],
    latency: &mut Histogram,
    acc: &mut WireLedger,
    last_delivery: &mut f64,
    now: f64,
) {
    for c in 0..clients.len() {
        let Some(ix) = clients[c].waiting_ix else {
            continue;
        };
        let Some(res) = outcomes[ix].clone() else {
            continue;
        };
        clients[c].waiting_ix = None;
        let t_res = match &res {
            Ok(resp) => now + resp.service_s,
            Err(Rejection::DeadlineExpired { now: tx, .. }) => *tx,
            Err(_) => now,
        };
        let conn = c as u64;
        match deliver_result(cl, &mut clients[c], conn, &shapes[ix], t_res, &res, acc) {
            Ok((td, assembled)) => {
                latency.record(td - clients[c].first_submit);
                *last_delivery = last_delivery.max(td);
                client_out[ix] = Some(Ok(assembled));
                advance_client(cl, &mut clients[c], &mut next_action[c], td);
            }
            Err((tl, err)) => {
                *last_delivery = last_delivery.max(tl);
                client_out[ix] = Some(Err(err));
                advance_client(cl, &mut clients[c], &mut next_action[c], tl);
            }
        }
    }
}

/// Run the service under a closed-loop multi-client workload with the
/// wire itself in the loop, and return client-observed outcomes and
/// latencies.
///
/// This is the simulator's prediction of what [`crate::RemoteServer`]
/// plus [`crate::RemoteClient`] do under the same
/// `(config, wire_faults)` pair: each client keeps one outstanding
/// request; every frame pays the [`WireCostModel`];
/// [`WireFaultPlan`] faults consume the same
/// `(conn = client id, dir, cumulative frame index)` coordinates the
/// live transports consume. A lost request is resubmitted after capped
/// exponential backoff and a reconnect; a lost *response* is recovered
/// by resubmitting the id and replaying the server's recorded
/// resolution — never by re-executing, exactly the live dedup book's
/// contract.
///
/// The server side is the same joint event machinery as [`run_chaos`],
/// so the configuration's [`crate::faults::ShardFaultPlan`] applies:
/// worker kills, restart backoff, failover, poisoned batches, and
/// degraded delivery all compose with wire faults. Everything is a
/// pure function of the inputs — replays are byte-identical.
///
/// `requests` supplies each client's stream back to back:
/// `requests[c * reqs_per_client + k]` is client `c`'s `k`-th request.
pub fn run_closed_loop(
    config: &ServiceConfig,
    cost: &CostModel,
    cl: &ClosedLoopConfig,
    requests: Vec<DecomposeRequest>,
) -> ClosedLoopReport {
    let nshards = config.shards.max(1);
    config
        .faults
        .validate(nshards)
        .expect("invalid fault plan for this shard count");
    cl.validate().expect("invalid closed-loop config");
    assert_eq!(
        requests.len(),
        cl.clients * cl.reqs_per_client,
        "need exactly clients * reqs_per_client requests"
    );

    let n = requests.len();
    let shapes: Vec<PlanShape> = requests.iter().map(|r| r.shape()).collect();
    let mut pool: Vec<Option<DecomposeRequest>> = requests.into_iter().map(Some).collect();
    let mut outcomes: Vec<Option<ServeResult>> = (0..n).map(|_| None).collect();
    let mut client_out: Vec<Option<ClientOutcome>> = (0..n).map(|_| None).collect();
    let mut shards: Vec<ChaosShard> = (0..nshards).map(|_| ChaosShard::new(config)).collect();
    // The closed-loop simulator models the wire, not the elastic
    // control plane: routing is the static map (identical to legacy
    // ring routing), and any configured elastic policy is ignored.
    let map = ShardMap::new(nshards, 0);
    let mut latency = Histogram::default();
    let mut acc = WireLedger::default();
    let mut last_delivery: f64 = 0.0;

    // Every client connects (handshake already counted as frame 0 each
    // way by starting the counters at 1) and schedules its first
    // submit.
    let mut clients: Vec<SimClient> = (0..cl.clients)
        .map(|_| SimClient {
            c2s: 1,
            s2c: 1,
            next_k: 0,
            first_submit: 0.0,
            attempts: 0,
            waiting_ix: None,
        })
        .collect();
    acc.frames += 2 * cl.clients as u64;
    acc.comm_s += cl.wire.handshake_s() * cl.clients as f64;
    let mut next_action: Vec<Option<f64>> = (0..cl.clients)
        .map(|c| {
            if cl.reqs_per_client == 0 {
                None
            } else {
                Some(c as f64 * cl.client_stagger_s + cl.wire.handshake_s())
            }
        })
        .collect();
    // Request frames in flight toward the service:
    // (arrival time, send order, outcome ix).
    let mut wire_in: Vec<(f64, u64, usize)> = Vec::new();
    let mut wire_seq = 0u64;

    loop {
        let next_submit = next_action
            .iter()
            .enumerate()
            .filter_map(|(c, t)| t.map(|t| (t, c)))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let next_arrival = wire_in
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0).then(a.1 .1.cmp(&b.1 .1)))
            .map(|(pos, &(t, _, _))| (t, pos));
        let next_dispatch = shards
            .iter()
            .enumerate()
            .filter(|(_, sh)| !sh.failed && !sh.queue.is_empty())
            .map(|(s, sh)| (sh.t_free, s))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        let ts = next_submit.map(|(t, _)| t).unwrap_or(f64::INFINITY);
        let ta = next_arrival.map(|(t, _)| t).unwrap_or(f64::INFINITY);
        let td = next_dispatch.map(|(t, _)| t).unwrap_or(f64::INFINITY);
        if ts.is_infinite() && ta.is_infinite() && td.is_infinite() {
            break;
        }

        if ts <= ta && ts <= td {
            // A client starts its next request, walking send-half
            // losses closed-form until the frame reaches the service
            // (the server is oblivious until then, so nothing else can
            // interleave).
            let (_, c) = next_submit.expect("ts finite implies a submit");
            next_action[c] = None;
            let conn = c as u64;
            let ix = c * cl.reqs_per_client + clients[c].next_k;
            clients[c].first_submit = ts;
            clients[c].attempts = 1;
            let one_way = cl.wire.request_s(&shapes[ix]);
            match send_until_arrives(cl, &mut clients[c], conn, ts, one_way, &mut acc) {
                Ok(tarr) => {
                    wire_in.push((tarr, wire_seq, ix));
                    wire_seq += 1;
                    clients[c].waiting_ix = Some(ix);
                }
                Err((tl, err)) => {
                    last_delivery = last_delivery.max(tl);
                    client_out[ix] = Some(Err(err));
                    advance_client(cl, &mut clients[c], &mut next_action[c], tl);
                }
            }
        } else if ta <= td {
            // A request frame reaches the service.
            let (_, pos) = next_arrival.expect("ta finite implies an arrival");
            let (t, _, ix) = wire_in.remove(pos);
            let req = pool[ix].take().expect("each request arrives once");
            if let Err(rejection) = req.validate() {
                let home = shard::shard_of(&req.shape(), nshards);
                shards[home].queue.counters.reject(RejectKind::Invalid);
                outcomes[ix] = Some(Err(rejection));
            } else {
                chaos_arrival(&mut shards, &map, t, ix, req, &mut outcomes);
            }
            drain_resolutions(
                cl,
                &shapes,
                &mut clients,
                &mut next_action,
                &outcomes,
                &mut client_out,
                &mut latency,
                &mut acc,
                &mut last_delivery,
                t,
            );
        } else {
            let (t, s) = next_dispatch.expect("td finite implies a dispatch");
            chaos_dispatch(&mut shards, &map, config, cost, s, &mut outcomes, None);
            drain_resolutions(
                cl,
                &shapes,
                &mut clients,
                &mut next_action,
                &outcomes,
                &mut client_out,
                &mut latency,
                &mut acc,
                &mut last_delivery,
                t,
            );
        }
    }

    let mut makespan_s = last_delivery;
    let mut out_shards = Vec::with_capacity(nshards);
    for mut sh in shards {
        makespan_s = makespan_s.max(sh.t_free);
        sh.metrics.queue = sh.queue.counters.clone();
        sh.metrics.absorb_cache(&sh.cache);
        sh.metrics.finalize(sh.t_free);
        out_shards.push(sh.metrics);
    }
    ClosedLoopReport {
        outcomes: client_out
            .into_iter()
            .map(|o| o.expect("every request terminates at its client"))
            .collect(),
        metrics: MetricsSnapshot { shards: out_shards },
        latency,
        makespan_s,
        comm_s: acc.comm_s,
        fault_recovery_s: acc.fault_s,
        retries: acc.retries,
        replays: acc.replays,
        frames: acc.frames,
        planes: acc.planes,
        cancels: acc.cancels,
        budget_stops: acc.budget_stops,
        response_bytes: acc.response_bytes,
        monolithic_bytes: acc.monolithic_bytes,
    }
}
