//! `wserv` — a sharded, batching wavelet-decomposition service.
//!
//! This crate puts the `dwt` engine behind a real serving pipeline:
//!
//! ```text
//!                         submit(DecomposeRequest)
//!                                   │
//!                         validate + shape-hash route
//!                ┌──────────────────┼──────────────────┐
//!                ▼                  ▼                  ▼
//!          shard 0            shard 1     …      shard N-1
//!        ┌─────────────────────────────────────────────────┐
//!        │ AdmissionQueue: bounded, 3 priority classes,    │
//!        │   deadline fast-fail, shed strictly-lower work  │
//!        │ Batch: coalesce same-shape entries (≤ max_batch)│
//!        │ PlanCache: shape-keyed LRU of plan + workspace  │
//!        │ execute: one plan drive over the whole batch    │
//!        └─────────────────────────────────────────────────┘
//!                │ resolve ResponseHandle / record metrics
//!                ▼
//!        MetricsSnapshot → perfbudget::BudgetReport
//! ```
//!
//! Two drivers share every policy component:
//!
//! * [`WaveletService`] — the live threaded server (one worker thread
//!   per shard, wall-clock service time, graceful-drain shutdown);
//! * [`sim::run_sim`] — a deterministic discrete-event simulator
//!   (virtual clock, analytic [`sim::CostModel`]) used by the
//!   `bench_service` load generator to emit byte-reproducible latency
//!   and throughput numbers.
//!
//! The split is what makes both halves testable: policies are pure
//! state machines over an explicit `now`, so property tests can drive
//! them deterministically, while the live server only contributes
//! threading and timekeeping.
//!
//! Every request terminates in exactly one [`ServeResult`]; the
//! rejection taxonomy ([`Rejection`]) is part of the API. All stages
//! account their time in the shared [`perfbudget`] lane vocabulary so a
//! serving run rolls up into the same [`perfbudget::BudgetReport`] as
//! the SPMD simulators.
//!
//! Faults are part of the configuration, not an accident: a seeded
//! [`ShardFaultPlan`] injects worker panics, permanent shard crashes,
//! stall windows and poison requests into both drivers at the same
//! shard-local dispatch indices. Workers isolate panics with
//! `catch_unwind`; a supervisor ([`SupervisorPolicy`]) restarts the
//! dead under a bounded exponential-backoff budget, exhausted shards
//! fail over to ring successors ([`shard::route`]) with typed
//! [`Rejection::ShardFailed`] / [`Rejection::Requeued`] outcomes for
//! what cannot be saved, and an optional [`DegradedPolicy`] answers
//! sub-interactive work on pressured shards with bounded-error
//! responses instead of rejections ([`sim::run_chaos`] is the sim-side
//! counterpart). Restart, requeue and backoff time lands in the
//! FaultRecovery lane.

pub mod admission;
pub mod batch;
pub mod cache;
pub mod elastic;
pub mod faults;
pub mod metrics;
pub mod progressive;
pub mod remote;
pub mod request;
pub mod server;
pub mod shard;
pub mod sim;
pub mod transport;
pub mod wire;

pub use admission::{AdmissionQueue, Admit, Pop};
pub use batch::{Batch, BatchPolicy};
pub use cache::{CachedPlan, PlanCache};
pub use elastic::{
    BalanceAction, BalanceController, CostBook, ElasticPolicy, QueuedShape, ShardLoad, ShardMap,
};
pub use faults::{
    DegradedPolicy, ShardFaultPlan, SupervisorPolicy, WireDir, WireFault, WireFaultPlan,
};
pub use metrics::{
    Histogram, LaneSplit, MetricsSnapshot, QueueCounters, ShardMetrics, TransportMetrics,
};
pub use progressive::{pyramid_max_abs_diff, split_response, Reassembler};
pub use remote::{
    ProgressiveTally, RemoteClient, RemoteConfig, RemoteMetrics, RemoteServer, RetryPolicy,
};
pub use request::{
    DecomposeRequest, DecomposeResponse, Entry, Priority, RejectKind, Rejection, ServeResult,
};
pub use server::{ResponseHandle, ServiceConfig, ServiceError, WaveletService};
pub use sim::{
    run_closed_loop, ClientOutcome, ClosedLoopConfig, ClosedLoopReport, ProgressiveSim,
    WireCostModel,
};
pub use transport::{
    mem_pair, MemListener, TcpAcceptor, TcpConnector, TcpTransport, Transport, TransportError,
};
pub use wire::{
    Frame, FrameKind, PlaneBand, PlaneCoeffs, ProgressiveHeader, ProgressivePlane, ResponseBody,
    WireError,
};
