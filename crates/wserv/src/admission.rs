//! Bounded admission queue with priority shedding and deadline
//! fast-fail.
//!
//! The queue is a pure, clock-free state machine: every mutation takes
//! `now` as a parameter, so the same type backs the threaded server
//! (wall clock) and the discrete-event simulator (virtual clock) with
//! identical policy behavior.
//!
//! Overload policy, in order:
//! 1. a request past its deadline is fast-failed at the door;
//! 2. a request arriving at a full queue sheds the *youngest entry of
//!    the lowest queued class* — but only if that class is **strictly
//!    below** the arrival's (equal-priority work is never displaced,
//!    so shedding can only trade up);
//! 3. otherwise the arrival itself is rejected `QueueFull`.
//!
//! Dequeue is strict-priority, FIFO within a class. Expired entries are
//! swept (and reported, never silently dropped) at every dequeue.

use crate::batch::{Batch, BatchPolicy};
use crate::metrics::QueueCounters;
use crate::request::{Entry, Priority, RejectKind, Rejection};
use std::collections::VecDeque;

/// Outcome of offering one entry to the queue.
#[derive(Debug)]
pub enum Admit<T> {
    /// Entry queued.
    Accepted,
    /// Entry queued after evicting a strictly-lower-priority victim the
    /// caller must now fail with [`Rejection::Shed`].
    AcceptedShedding(Entry<T>),
    /// Entry not queued; it is handed back with the typed cause.
    Rejected(Entry<T>, Rejection),
}

/// Result of one dequeue attempt.
#[derive(Debug)]
pub struct Pop<T> {
    /// The coalesced dispatch, if any work was ready.
    pub batch: Option<Batch<T>>,
    /// Entries found past their deadline during the sweep; the caller
    /// must fail each with [`Rejection::DeadlineExpired`].
    pub expired: Vec<Entry<T>>,
}

/// Bounded, priority-bucketed admission queue.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    capacity: usize,
    /// One FIFO per [`Priority`], indexed by the class discriminant.
    buckets: [VecDeque<Entry<T>>; 3],
    /// Self-reported counters (accepted/rejected/shed/depth).
    pub counters: QueueCounters,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` entries (≥ 1).
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            capacity: capacity.max(1),
            buckets: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            counters: QueueCounters::default(),
        }
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(VecDeque::len).sum()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(VecDeque::is_empty)
    }

    /// Offer one entry at service-clock time `now`.
    pub fn admit(&mut self, now: f64, entry: Entry<T>) -> Admit<T> {
        if entry.req.expired(now) {
            self.counters.reject(RejectKind::DeadlineExpired);
            let deadline = entry.req.deadline.expect("expired implies a deadline");
            return Admit::Rejected(entry, Rejection::DeadlineExpired { deadline, now });
        }
        if self.len() == self.capacity {
            match self.shed_victim(entry.req.priority) {
                Some(victim) => {
                    self.counters.reject(RejectKind::Shed);
                    self.push(entry);
                    return Admit::AcceptedShedding(victim);
                }
                None => {
                    self.counters.reject(RejectKind::QueueFull);
                    let depth = self.len();
                    return Admit::Rejected(entry, Rejection::QueueFull { depth });
                }
            }
        }
        self.push(entry);
        Admit::Accepted
    }

    /// Dequeue one coalesced batch at service-clock time `now`: sweep
    /// expired entries, take the highest-priority head of line, then
    /// greedily coalesce queued same-shape work (priority order, FIFO
    /// within a class) up to the policy's cap.
    pub fn pop_batch(&mut self, now: f64, policy: &BatchPolicy) -> Pop<T> {
        let mut expired = Vec::new();
        for bucket in self.buckets.iter_mut() {
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].req.expired(now) {
                    expired.push(bucket.remove(i).expect("index in range"));
                } else {
                    i += 1;
                }
            }
        }
        for _ in &expired {
            self.counters.reject(RejectKind::DeadlineExpired);
        }

        let leader = self
            .buckets
            .iter_mut()
            .rev() // Interactive first
            .find_map(VecDeque::pop_front);
        let Some(leader) = leader else {
            return Pop {
                batch: None,
                expired,
            };
        };
        let shape = leader.req.shape();
        let solo = leader.solo();
        let mut entries = vec![leader];
        // A solo (retry-after-panic) leader dispatches alone, and solo
        // entries are never picked as mates: the poisoned-batch
        // protocol needs each suspect isolated to one dispatch.
        if !solo {
            for bucket in self.buckets.iter_mut().rev() {
                let mut i = 0;
                while i < bucket.len() && entries.len() < policy.max_batch {
                    if bucket[i].req.shape() == shape && !bucket[i].solo() {
                        entries.push(bucket.remove(i).expect("index in range"));
                    } else {
                        i += 1;
                    }
                }
            }
        }
        Pop {
            batch: Some(Batch { shape, entries }),
            expired,
        }
    }

    /// Remove every queued entry (used by tests and by fail-stop
    /// teardown paths; graceful drain instead keeps popping batches).
    pub fn drain(&mut self) -> Vec<Entry<T>> {
        let mut all = Vec::new();
        for bucket in self.buckets.iter_mut().rev() {
            all.extend(bucket.drain(..));
        }
        all
    }

    /// Per-shape census of the queue for the elastic controller:
    /// `(shape, queued, movable)` where `movable` excludes solo
    /// (poison-suspect) entries, which never migrate. Order is
    /// deterministic — first appearance scanning Interactive → Batch,
    /// FIFO within a class — so controller decisions built on the
    /// census replay bit-identically.
    pub fn shape_census(&self) -> Vec<(dwt::engine::PlanShape, usize, usize)> {
        let mut census: Vec<(dwt::engine::PlanShape, usize, usize)> = Vec::new();
        for bucket in self.buckets.iter().rev() {
            for entry in bucket {
                let shape = entry.req.shape();
                let movable = usize::from(!entry.solo());
                match census.iter_mut().find(|(s, ..)| *s == shape) {
                    Some((_, count, mv)) => {
                        *count += 1;
                        *mv += movable;
                    }
                    None => census.push((shape, 1, movable)),
                }
            }
        }
        census
    }

    /// Remove up to `limit` non-solo entries whose shape hashes to the
    /// routing key (scanning Interactive → Batch, FIFO within a class)
    /// for migration to another shard. The removed entries keep their
    /// priority class and ids; the exactly-once books are untouched
    /// because the entries stay queued — just elsewhere.
    pub fn take_shape(&mut self, key: u64, limit: usize) -> Vec<Entry<T>> {
        let mut taken = Vec::new();
        for bucket in self.buckets.iter_mut().rev() {
            let mut i = 0;
            while i < bucket.len() && taken.len() < limit {
                if crate::shard::shape_key(&bucket[i].req.shape()) == key && !bucket[i].solo() {
                    taken.push(bucket.remove(i).expect("index in range"));
                } else {
                    i += 1;
                }
            }
        }
        if !taken.is_empty() {
            self.counters.depth.record(self.len() as f64);
        }
        taken
    }

    /// Accept an entry migrated from another shard's queue. Unlike
    /// [`AdmissionQueue::admit`] this is counter-neutral: the entry was
    /// already door-counted (`accepted`) on its original shard, so only
    /// the depth gauge moves. The caller (the elastic driver) bounds
    /// migrations by this queue's free space, so capacity is respected
    /// by construction; the debug assert keeps that contract honest.
    pub fn accept_migrated(&mut self, entry: Entry<T>) {
        debug_assert!(self.len() < self.capacity, "migration overfilled the queue");
        self.buckets[entry.req.priority as usize].push_back(entry);
        self.counters.depth.record(self.len() as f64);
    }

    /// Admission slots left before the queue is full.
    pub fn free(&self) -> usize {
        self.capacity - self.len()
    }

    fn push(&mut self, entry: Entry<T>) {
        self.counters.accepted += 1;
        self.buckets[entry.req.priority as usize].push_back(entry);
        self.counters.depth.record(self.len() as f64);
    }

    /// The youngest entry of the lowest queued class strictly below
    /// `incoming`, if any.
    fn shed_victim(&mut self, incoming: Priority) -> Option<Entry<T>> {
        for class in Priority::ALL {
            if class >= incoming {
                break;
            }
            if let Some(victim) = self.buckets[class as usize].pop_back() {
                return Some(victim);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::DecomposeRequest;
    use dwt::{FilterBank, Matrix};

    fn req(priority: Priority) -> DecomposeRequest {
        DecomposeRequest::new(Matrix::zeros(8, 8), FilterBank::haar(), 1).with_priority(priority)
    }

    fn entry(id: u64, priority: Priority) -> Entry<u64> {
        Entry {
            id,
            arrival: id as f64,
            req: req(priority),
            attempts: 0,
            tag: id,
        }
    }

    #[test]
    fn sheds_only_strictly_lower_priority() {
        let mut q: AdmissionQueue<u64> = AdmissionQueue::new(2);
        assert!(matches!(
            q.admit(0.0, entry(0, Priority::Batch)),
            Admit::Accepted
        ));
        assert!(matches!(
            q.admit(0.0, entry(1, Priority::Standard)),
            Admit::Accepted
        ));
        // Equal class does not displace equal class.
        match q.admit(0.0, entry(2, Priority::Batch)) {
            Admit::Rejected(e, Rejection::QueueFull { depth: 2 }) => assert_eq!(e.id, 2),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // Higher class sheds the lowest class present.
        match q.admit(0.0, entry(3, Priority::Interactive)) {
            Admit::AcceptedShedding(victim) => {
                assert_eq!(victim.id, 0);
                assert!(victim.req.priority < Priority::Interactive);
            }
            other => panic!("expected shed, got {other:?}"),
        }
        // Queue now holds only Standard + Interactive: another
        // Interactive arrival sheds the Standard entry.
        match q.admit(0.0, entry(4, Priority::Interactive)) {
            Admit::AcceptedShedding(victim) => assert_eq!(victim.id, 1),
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(q.counters.rejected[RejectKind::Shed as usize], 2);
        assert_eq!(q.counters.rejected[RejectKind::QueueFull as usize], 1);
    }

    #[test]
    fn deadline_fast_fail_and_dequeue_sweep() {
        let mut q: AdmissionQueue<u64> = AdmissionQueue::new(8);
        let mut stale = entry(0, Priority::Standard);
        stale.req = stale.req.clone().with_deadline(1.0);
        assert!(matches!(q.admit(0.0, stale), Admit::Accepted));
        let mut dead = entry(1, Priority::Standard);
        dead.req = dead.req.clone().with_deadline(0.5);
        // Already expired at the door.
        assert!(matches!(
            q.admit(2.0, dead),
            Admit::Rejected(_, Rejection::DeadlineExpired { .. })
        ));
        // The queued entry expired while waiting: swept at dequeue.
        let pop = q.pop_batch(2.0, &BatchPolicy::new(4));
        assert!(pop.batch.is_none());
        assert_eq!(pop.expired.len(), 1);
        assert_eq!(pop.expired[0].id, 0);
    }

    #[test]
    fn solo_entries_neither_lead_batches_nor_join_them() {
        let mut q: AdmissionQueue<u64> = AdmissionQueue::new(8);
        let mut suspect = entry(0, Priority::Interactive);
        suspect.attempts = 1;
        assert!(matches!(q.admit(0.0, suspect), Admit::Accepted));
        for id in 1..4 {
            assert!(matches!(
                q.admit(0.0, entry(id, Priority::Standard)),
                Admit::Accepted
            ));
        }
        // The suspect is head of line: it dispatches alone.
        let pop = q.pop_batch(1.0, &BatchPolicy::new(8));
        let batch = pop.batch.expect("work queued");
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.entries[0].id, 0);
        // A clean leader never picks up a queued suspect as a mate.
        let mut late_suspect = entry(9, Priority::Batch);
        late_suspect.attempts = 2;
        assert!(matches!(q.admit(1.0, late_suspect), Admit::Accepted));
        let pop = q.pop_batch(2.0, &BatchPolicy::new(8));
        let batch = pop.batch.expect("work queued");
        assert_eq!(batch.len(), 3);
        assert!(batch.entries.iter().all(|e| e.id != 9));
    }

    #[test]
    fn pop_coalesces_same_shape_by_priority_then_fifo() {
        let mut q: AdmissionQueue<u64> = AdmissionQueue::new(8);
        for (id, p) in [
            (0, Priority::Batch),
            (1, Priority::Standard),
            (2, Priority::Interactive),
            (3, Priority::Standard),
        ] {
            assert!(matches!(q.admit(0.0, entry(id, p)), Admit::Accepted));
        }
        let pop = q.pop_batch(1.0, &BatchPolicy::new(3));
        let batch = pop.batch.expect("work queued");
        let ids: Vec<u64> = batch.entries.iter().map(|e| e.id).collect();
        // Leader is the Interactive head; mates follow in priority
        // order then FIFO; the cap leaves the Batch entry queued.
        assert_eq!(ids, vec![2, 1, 3]);
        assert_eq!(q.len(), 1);
    }
}
