//! Progressive, prioritized response delivery.
//!
//! The paper's banded pyramid is naturally progressive: the LL plane
//! carries most of the energy and each detail plane refines it. This
//! module turns a [`DecomposeResponse`] into an ordered plane sequence
//! — the header frame ships the exact LL plane plus all serving
//! metadata, then detail planes follow in decreasing energy order — and
//! reassembles the sequence on the receiving side with a running,
//! provable error bound, so a client can stop (and cancel the request)
//! the moment its tolerance is met.
//!
//! Detail planes are optionally compressed on the wire with
//! [`CheckpointCodec::WaveletQuant`] — the exact arithmetic the
//! recovery layer uses for checkpoints, so the codec's
//! `threshold + step / 2` bound carries over verbatim. With
//! [`CheckpointCodec::Raw`] (or an all-zero quantizer) planes ship
//! untouched and a complete reassembly is **bitwise identical** to the
//! monolithic response.
//!
//! Bound bookkeeping: each frame carries `bound_after`, the largest
//! absolute per-coefficient error of the partial reassembly *versus
//! the shipped (post-codec) pyramid* once that frame is applied —
//! `max(codec tolerance, max |original coefficient| over planes still
//! outstanding)`. The outstanding set only shrinks along the sequence,
//! so the bound is monotone nonincreasing by construction. The bound
//! versus the *exact* decomposition adds the server-side
//! `base_error_bound` (triangle inequality); [`Reassembler::bound`]
//! reports that sum.

use dwt::Pyramid;
use dwt_mimd::{encode_plane, CheckpointCodec};

use crate::request::DecomposeResponse;
use crate::wire::{PlaneBand, PlaneCoeffs, ProgressiveHeader, ProgressivePlane, WireError};

fn corrupt(detail: impl Into<String>) -> WireError {
    WireError::FrameCorrupt {
        detail: detail.into(),
    }
}

fn max_abs(data: &[f64]) -> f64 {
    data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
}

/// Sparse wins when `kept * (8 + 4) < total * 8` — the same breakeven
/// [`dwt_mimd::encoded_bytes`] bills for checkpoints.
fn pick_coeffs(data: Vec<f64>) -> PlaneCoeffs {
    let kept = data.iter().filter(|v| **v != 0.0).count();
    if kept * 12 < data.len() * 8 {
        PlaneCoeffs::Sparse(
            data.iter()
                .enumerate()
                .filter(|(_, v)| **v != 0.0)
                .map(|(i, v)| (i as u32, *v))
                .collect(),
        )
    } else {
        PlaneCoeffs::Dense(data)
    }
}

/// Split a successful response into a progressive header + detail-plane
/// sequence, quantizing detail planes with `codec` on the way out.
///
/// Plane order is decreasing post-codec energy (ties broken by
/// `(level, band)` so the order is total and deterministic). Each
/// plane's `bound_after` is computed from the **original** coefficient
/// magnitudes of the planes still outstanding, so the sequence of
/// bounds is honest for a receiver that reads missing planes as zero.
///
/// With a lossless codec (`Raw`, or `WaveletQuant` with
/// `threshold == 0 && step == 0`) planes ship untouched — byte-for-byte
/// the monolithic coefficients, including signed zeros.
pub fn split_response(
    resp: &DecomposeResponse,
    codec: CheckpointCodec,
) -> Result<(ProgressiveHeader, Vec<ProgressivePlane>), WireError> {
    if !codec.is_valid() {
        return Err(corrupt("invalid progressive codec parameters"));
    }
    let lossless = codec.tolerance() == 0.0;
    let (rows, cols) = resp.pyramid.image_dims();
    let levels = resp.pyramid.levels();

    struct Cand {
        level: usize,
        band: PlaneBand,
        rows: usize,
        cols: usize,
        data: Vec<f64>,
        orig_max: f64,
        energy: f64,
    }
    let mut cands = Vec::with_capacity(3 * levels);
    for (i, sb) in resp.pyramid.detail.iter().enumerate() {
        let level = i + 1;
        for (band, m) in [
            (PlaneBand::Lh, &sb.lh),
            (PlaneBand::Hl, &sb.hl),
            (PlaneBand::Hh, &sb.hh),
        ] {
            let orig_max = max_abs(m.data());
            let data = if lossless {
                // encode_plane normalizes -0.0 to +0.0; bypass it so a
                // complete lossless reassembly stays bitwise identical.
                m.data().to_vec()
            } else {
                let mut coded = m.clone();
                let (threshold, step) = match codec {
                    CheckpointCodec::Raw => (0.0, 0.0),
                    CheckpointCodec::WaveletQuant { threshold, step } => (threshold, step),
                };
                encode_plane(&mut coded, threshold, step);
                coded.into_vec()
            };
            let energy = data.iter().map(|v| v * v).sum::<f64>();
            cands.push(Cand {
                level,
                band,
                rows: m.rows(),
                cols: m.cols(),
                data,
                orig_max,
                energy,
            });
        }
    }
    // Highest-energy planes first; ties resolved structurally so the
    // order (and therefore the wire bytes) is deterministic.
    cands.sort_by(|a, b| {
        b.energy
            .total_cmp(&a.energy)
            .then(a.level.cmp(&b.level))
            .then((a.band as u8).cmp(&(b.band as u8)))
    });

    // bound_after[j] = max(codec tolerance, max orig_max over planes
    // strictly after j). Computed back-to-front.
    let tol = codec.tolerance();
    let n = cands.len();
    let mut bounds = vec![tol; n];
    let mut running = tol;
    for j in (0..n).rev() {
        bounds[j] = running;
        running = running.max(cands[j].orig_max);
    }
    let header_bound = running; // all detail planes outstanding

    let header = ProgressiveHeader {
        cache_hit: resp.cache_hit,
        degraded: resp.degraded,
        batch_size: resp.batch_size,
        wait_s: resp.wait_s,
        service_s: resp.service_s,
        base_error_bound: resp.error_bound,
        rows,
        cols,
        levels,
        planes_total: n,
        codec_tolerance: tol,
        bound_after: header_bound,
        approx: resp.pyramid.approx.clone(),
    };
    let planes = cands
        .into_iter()
        .zip(bounds)
        .enumerate()
        .map(|(j, (c, bound_after))| ProgressivePlane {
            seq: j + 1,
            level: c.level,
            band: c.band,
            rows: c.rows,
            cols: c.cols,
            bound_after,
            coeffs: pick_coeffs(c.data),
        })
        .collect();
    Ok((header, planes))
}

/// Incremental client-side reassembly of a progressive response.
///
/// Applying planes is idempotent (a replayed sequence after a retry
/// re-applies planes already held without changing the result), and
/// [`Reassembler::bound`] is monotone nonincreasing as planes land.
#[derive(Debug, Clone)]
pub struct Reassembler {
    header: ProgressiveHeader,
    pyramid: Pyramid,
    applied: Vec<bool>,
    /// Tightest `bound_after` seen so far (progressive part only).
    progressive_bound: f64,
}

impl Reassembler {
    /// Start a reassembly from the header frame's payload.
    pub fn new(header: ProgressiveHeader) -> Result<Reassembler, WireError> {
        let mut pyramid = Pyramid::zeros(header.rows, header.cols, header.levels)
            .map_err(|e| corrupt(format!("progressive header geometry: {e}")))?;
        pyramid.approx = header.approx.clone();
        let applied = vec![false; header.planes_total];
        let progressive_bound = header.bound_after;
        Ok(Reassembler {
            header,
            pyramid,
            applied,
            progressive_bound,
        })
    }

    /// Apply one detail-plane frame. Duplicate `seq` values (dedup
    /// replays resend the whole sequence) are no-ops.
    pub fn apply(&mut self, plane: &ProgressivePlane) -> Result<(), WireError> {
        if plane.seq == 0 || plane.seq > self.header.planes_total {
            return Err(corrupt(format!(
                "plane seq {} outside 1..={}",
                plane.seq, self.header.planes_total
            )));
        }
        if plane.level == 0 || plane.level > self.header.levels {
            return Err(corrupt(format!(
                "plane level {} outside 1..={}",
                plane.level, self.header.levels
            )));
        }
        let sb = &mut self.pyramid.detail[plane.level - 1];
        let (rows, cols) = (sb.rows(), sb.cols());
        if plane.rows != rows || plane.cols != cols {
            return Err(corrupt(format!(
                "plane is {}x{}, level {} demands {}x{}",
                plane.rows, plane.cols, plane.level, rows, cols
            )));
        }
        let target = match plane.band {
            PlaneBand::Lh => &mut sb.lh,
            PlaneBand::Hl => &mut sb.hl,
            PlaneBand::Hh => &mut sb.hh,
        };
        match &plane.coeffs {
            PlaneCoeffs::Dense(data) => {
                if data.len() != rows * cols {
                    return Err(corrupt("dense plane length mismatch"));
                }
                target.data_mut().copy_from_slice(data);
            }
            PlaneCoeffs::Sparse(entries) => {
                let out = target.data_mut();
                out.fill(0.0);
                for &(ix, v) in entries {
                    let ix = ix as usize;
                    if ix >= out.len() {
                        return Err(corrupt("sparse plane index out of range"));
                    }
                    out[ix] = v;
                }
            }
        }
        if !self.applied[plane.seq - 1] {
            self.applied[plane.seq - 1] = true;
            // min() keeps the bound monotone even if frames land out of
            // the canonical order after a replay.
            self.progressive_bound = self.progressive_bound.min(plane.bound_after);
        }
        Ok(())
    }

    /// Largest absolute per-coefficient error of the current partial
    /// pyramid versus the **exact** decomposition: the server-side
    /// degradation bound plus the progressive truncation/codec bound.
    pub fn bound(&self) -> f64 {
        self.header.base_error_bound + self.progressive_bound
    }

    /// Detail planes applied so far.
    pub fn planes_received(&self) -> usize {
        self.applied.iter().filter(|a| **a).count()
    }

    /// Whether every detail plane has arrived.
    pub fn complete(&self) -> bool {
        self.applied.iter().all(|a| *a)
    }

    /// The serving metadata carried by the header frame.
    pub fn header(&self) -> &ProgressiveHeader {
        &self.header
    }

    /// Finish the reassembly into a [`DecomposeResponse`]. Partial
    /// reassemblies read missing planes as zero; `error_bound` is
    /// [`Reassembler::bound`] and `degraded` reflects any nonzero
    /// bound, whether server-side or progressive.
    pub fn into_response(self) -> DecomposeResponse {
        let error_bound = self.bound();
        DecomposeResponse {
            pyramid: self.pyramid,
            cache_hit: self.header.cache_hit,
            batch_size: self.header.batch_size,
            wait_s: self.header.wait_s,
            service_s: self.header.service_s,
            degraded: self.header.degraded || error_bound > 0.0,
            error_bound,
        }
    }
}

/// Max-abs difference between two pyramids of identical geometry
/// (useful for asserting delivered error bounds in tests/benches).
pub fn pyramid_max_abs_diff(a: &Pyramid, b: &Pyramid) -> Option<f64> {
    let mut worst = a.approx.max_abs_diff(&b.approx)?;
    if a.detail.len() != b.detail.len() {
        return None;
    }
    for (sa, sb) in a.detail.iter().zip(&b.detail) {
        for (ma, mb) in [(&sa.lh, &sb.lh), (&sa.hl, &sb.hl), (&sa.hh, &sb.hh)] {
            worst = worst.max(ma.max_abs_diff(mb)?);
        }
    }
    Some(worst)
}

/// Total wire payload bytes of a plane sequence plus its header — the
/// progressive cost the ledger compares against monolithic shipping.
pub fn sequence_payload_bytes(
    header: &ProgressiveHeader,
    planes: &[ProgressivePlane],
) -> Result<usize, WireError> {
    let mut total = crate::wire::encode_progressive_header(0, header)?
        .payload
        .len();
    for (i, p) in planes.iter().enumerate() {
        total += crate::wire::encode_progressive_plane(0, p, i + 1 < planes.len())?
            .payload
            .len();
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwt::engine::DwtPlan;
    use dwt::{Boundary, FilterBank, Matrix};

    fn exact_response(rows: usize, cols: usize, levels: usize) -> DecomposeResponse {
        let img = Matrix::from_fn(rows, cols, |r, c| {
            ((r * 31 + c * 17) % 23) as f64 - 11.0 + if (r + c) % 5 == 0 { 0.25 } else { 0.0 }
        });
        let plan = DwtPlan::new(rows, cols, FilterBank::cdf97(), levels, Boundary::Periodic)
            .expect("plan");
        let pyramid = plan.decompose(&img).expect("decompose");
        DecomposeResponse {
            pyramid,
            cache_hit: false,
            batch_size: 1,
            wait_s: 0.0,
            service_s: 0.001,
            degraded: false,
            error_bound: 0.0,
        }
    }

    #[test]
    fn lossless_reassembly_is_bitwise_identical() {
        let resp = exact_response(16, 16, 3);
        let (header, planes) = split_response(&resp, CheckpointCodec::Raw).unwrap();
        assert_eq!(planes.len(), 9);
        let mut r = Reassembler::new(header).unwrap();
        for p in &planes {
            r.apply(p).unwrap();
        }
        assert!(r.complete());
        assert_eq!(r.bound(), 0.0);
        let got = r.into_response();
        assert_eq!(got.pyramid, resp.pyramid, "bitwise-equal pyramids");
        assert!(!got.degraded);
    }

    #[test]
    fn bounds_are_monotone_and_honest() {
        let resp = exact_response(32, 32, 2);
        let codec = CheckpointCodec::WaveletQuant {
            threshold: 0.05,
            step: 0.1,
        };
        let (header, planes) = split_response(&resp, codec).unwrap();
        let mut r = Reassembler::new(header).unwrap();
        let mut prev = r.bound();
        for p in &planes {
            r.apply(p).unwrap();
            let now = r.bound();
            assert!(now <= prev, "bound rose from {prev} to {now}");
            prev = now;
            // Honesty: the partial pyramid is within the reported bound
            // of the exact decomposition at every step.
            let partial = r.clone().into_response();
            let diff = pyramid_max_abs_diff(&partial.pyramid, &resp.pyramid).unwrap();
            assert!(
                diff <= now + 1e-12,
                "actual error {diff} exceeds reported bound {now}"
            );
        }
        assert!(r.complete());
        assert!((r.bound() - codec.tolerance()).abs() < 1e-15);
    }

    #[test]
    fn duplicate_planes_are_idempotent() {
        let resp = exact_response(8, 8, 1);
        let (header, planes) = split_response(&resp, CheckpointCodec::Raw).unwrap();
        let mut r = Reassembler::new(header.clone()).unwrap();
        for p in &planes {
            r.apply(p).unwrap();
        }
        let bound = r.bound();
        let snapshot = r.clone().into_response();
        for p in &planes {
            r.apply(p).unwrap(); // full replay
        }
        assert_eq!(r.bound(), bound);
        assert_eq!(r.into_response().pyramid, snapshot.pyramid);
    }

    #[test]
    fn planes_stream_highest_energy_first() {
        let resp = exact_response(32, 32, 3);
        let (_, planes) = split_response(&resp, CheckpointCodec::Raw).unwrap();
        let energy = |p: &ProgressivePlane| match &p.coeffs {
            PlaneCoeffs::Dense(d) => d.iter().map(|v| v * v).sum::<f64>(),
            PlaneCoeffs::Sparse(s) => s.iter().map(|(_, v)| v * v).sum::<f64>(),
        };
        for w in planes.windows(2) {
            assert!(
                energy(&w[0]) >= energy(&w[1]),
                "plane {} outranks plane {}",
                w[1].seq,
                w[0].seq
            );
        }
    }

    #[test]
    fn lossy_split_shrinks_wire_bytes() {
        let resp = exact_response(32, 32, 2);
        let (lossless_h, lossless_p) = split_response(&resp, CheckpointCodec::Raw).unwrap();
        let codec = CheckpointCodec::WaveletQuant {
            threshold: 2.0,
            step: 0.5,
        };
        let (lossy_h, lossy_p) = split_response(&resp, codec).unwrap();
        let full = sequence_payload_bytes(&lossless_h, &lossless_p).unwrap();
        let lossy = sequence_payload_bytes(&lossy_h, &lossy_p).unwrap();
        assert!(
            lossy < full,
            "quantized sequence ({lossy} B) should undercut lossless ({full} B)"
        );
    }

    #[test]
    fn invalid_codec_is_rejected() {
        let resp = exact_response(8, 8, 1);
        let bad = CheckpointCodec::WaveletQuant {
            threshold: f64::NAN,
            step: 0.0,
        };
        assert!(split_response(&resp, bad).is_err());
    }
}
