//! Plasma diagnostics: energy bookkeeping and velocity-distribution
//! moments for validating PIC runs.

use crate::grid::Grid3;
use crate::particle::Particle;
use crate::sim::PicState;

/// Energy and temperature snapshot of a PIC state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Diagnostics {
    /// Kinetic energy `Σ m v²/2`.
    pub kinetic: f64,
    /// Electrostatic field energy `Σ E²/2` over the grid.
    pub field: f64,
    /// Mean velocity (drift) per component.
    pub drift: [f64; 3],
    /// Velocity variance (thermal spread) per component.
    pub thermal: [f64; 3],
}

impl Diagnostics {
    /// Total (kinetic + field) energy.
    pub fn total(&self) -> f64 {
        self.kinetic + self.field
    }
}

/// Kinetic quantities from the particles.
pub fn particle_moments(particles: &[Particle], mass: f64) -> ([f64; 3], [f64; 3], f64) {
    let n = particles.len().max(1) as f64;
    let mut drift = [0.0; 3];
    for p in particles {
        for d in 0..3 {
            drift[d] += p.vel[d];
        }
    }
    for d in drift.iter_mut() {
        *d /= n;
    }
    let mut thermal = [0.0; 3];
    let mut kinetic = 0.0;
    for p in particles {
        for d in 0..3 {
            let dv = p.vel[d] - drift[d];
            thermal[d] += dv * dv;
            kinetic += 0.5 * mass * p.vel[d] * p.vel[d];
        }
    }
    for t in thermal.iter_mut() {
        *t /= n;
    }
    (drift, thermal, kinetic)
}

/// Field energy from the three `E` component grids.
pub fn field_energy(e: &[Grid3; 3]) -> f64 {
    e.iter()
        .map(|g| g.data.iter().map(|v| v * v).sum::<f64>())
        .sum::<f64>()
        / 2.0
}

/// Full diagnostics of a state (solves the field once).
pub fn diagnose(state: &PicState) -> Diagnostics {
    let rho = crate::sim::charge_grid(state);
    let phi = crate::poisson::solve_poisson(&rho);
    let e = crate::poisson::efield(&phi);
    let (drift, thermal, kinetic) = particle_moments(&state.particles, state.cfg.mass);
    Diagnostics {
        kinetic,
        field: field_energy(&e),
        drift,
        thermal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particle::uniform_plasma;
    use crate::sim::{step, PicConfig};

    #[test]
    fn moments_of_a_cold_beam() {
        let particles: Vec<Particle> = (0..100)
            .map(|i| Particle {
                pos: [i as f64 % 8.0, 0.0, 0.0],
                vel: [2.0, 0.0, 0.0],
            })
            .collect();
        let (drift, thermal, kinetic) = particle_moments(&particles, 1.0);
        assert!((drift[0] - 2.0).abs() < 1e-12);
        assert_eq!(thermal[0], 0.0);
        assert!((kinetic - 100.0 * 2.0).abs() < 1e-9);
    }

    #[test]
    fn thermal_spread_is_variance() {
        let particles = vec![
            Particle {
                pos: [0.0; 3],
                vel: [1.0, 0.0, 0.0],
            },
            Particle {
                pos: [1.0; 3],
                vel: [-1.0, 0.0, 0.0],
            },
        ];
        let (drift, thermal, _) = particle_moments(&particles, 1.0);
        assert_eq!(drift[0], 0.0);
        assert!((thermal[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn total_energy_is_roughly_conserved_over_a_run() {
        let mut state = crate::sim::PicState {
            cfg: PicConfig {
                m: 8,
                dt_max: 0.02,
                ..Default::default()
            },
            particles: uniform_plasma(1000, 8, 0.3, 3),
        };
        let before = diagnose(&state);
        for _ in 0..20 {
            step(&mut state);
        }
        let after = diagnose(&state);
        let drift = (after.total() - before.total()).abs() / before.total().max(1e-9);
        assert!(
            drift < 0.25,
            "energy drifted {:.1}% over 20 steps",
            100.0 * drift
        );
    }

    #[test]
    fn momentum_drift_stays_zero() {
        let mut state = crate::sim::PicState {
            cfg: PicConfig {
                m: 8,
                ..Default::default()
            },
            particles: uniform_plasma(2000, 8, 0.2, 5),
        };
        let before = diagnose(&state);
        for _ in 0..5 {
            step(&mut state);
        }
        let after = diagnose(&state);
        for d in 0..3 {
            assert!(
                (after.drift[d] - before.drift[d]).abs() < 0.02,
                "drift component {d} moved"
            );
        }
    }
}
