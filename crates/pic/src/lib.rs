#![allow(clippy::needless_range_loop)] // co-indexing several arrays by dimension is the clear idiom here

//! 3-D electrostatic Particle-In-Cell (PIC) simulation — the second
//! application of the JNNIE overhead study (Appendix B of the source
//! report).
//!
//! The time step follows the report's four phases:
//!
//! 1. **Charge assignment** — Cloud-In-Cell (trilinear) deposition of
//!    particle charge onto the periodic grid ([`deposit`]);
//! 2. **Field solve** — Poisson's equation by 3-D FFT
//!    ([`fft`], [`poisson`]), then the electric field by central
//!    differences;
//! 3. **Force interpolation** — trilinear gather of `E` at the particle
//!    positions;
//! 4. **Push** — leapfrog update with the report's adaptive time-step
//!    scheme (particles never cross more than one cell per step).
//!
//! The worker-worker SPMD port ([`parallel`]) divides the particles
//! uniformly, makes the charge grid global with either the `gssum`-style
//! many-to-many sum or the report's tree-based replacement, and
//! slab-decomposes the FFT.

pub mod deposit;
pub mod diagnostics;
pub mod fft;
pub mod grid;
pub mod parallel;
pub mod particle;
pub mod poisson;
pub mod sim;

pub use grid::Grid3;
pub use particle::Particle;
pub use sim::{PicConfig, PicState};

/// Operation-count cost constants for the virtual-time machine models,
/// calibrated to the serial iteration times of the report's tables 1–2
/// (memory-access-heavy, matching PIC's measured instruction mix).
pub mod cost {
    use paragon::Ops;

    /// Cloud-In-Cell deposition, per particle.
    pub fn deposit_ops() -> Ops {
        Ops {
            flops: 30,
            intops: 8,
            memops: 40,
        }
    }

    /// Field interpolation + leapfrog push, per particle.
    pub fn push_ops() -> Ops {
        Ops {
            flops: 50,
            intops: 12,
            memops: 70,
        }
    }

    /// Field solve (3-D FFT + Poisson + gradient), per grid point.
    pub fn grid_ops_per_point(m: usize) -> Ops {
        let logm = (usize::BITS - m.leading_zeros() - 1) as u64;
        Ops {
            flops: 14 * logm,
            intops: 18,
            memops: 10 * logm,
        }
    }

    /// Wire size of one particle (position + velocity, 6 doubles).
    pub const PARTICLE_BYTES: usize = 48;
}
