//! Sequential PIC time stepping.

use crate::deposit::{deposit, interpolate};
use crate::grid::Grid3;
use crate::particle::{wrap, Particle};
use crate::poisson::{efield, solve_poisson};

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct PicConfig {
    /// Grid side `m` (the report uses 32 and 64).
    pub m: usize,
    /// Particle charge (electrons: negative; a neutralizing background
    /// is implied by the zeroed k=0 mode of the field solve).
    pub charge: f64,
    /// Particle mass.
    pub mass: f64,
    /// Upper bound on the time step.
    pub dt_max: f64,
    /// Safety factor of the adaptive step: particles may move at most
    /// `courant` cells per step (the report's "adaptive time-step
    /// adjustment scheme ... to prevent the particles from moving any
    /// further than neighboring grid cells").
    pub courant: f64,
}

impl Default for PicConfig {
    fn default() -> Self {
        PicConfig {
            m: 16,
            charge: -1.0,
            mass: 1.0,
            dt_max: 0.2,
            courant: 0.8,
        }
    }
}

/// Mutable simulation state.
#[derive(Debug, Clone)]
pub struct PicState {
    /// Configuration.
    pub cfg: PicConfig,
    /// The particles.
    pub particles: Vec<Particle>,
}

/// Diagnostics of one step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepDiag {
    /// Time step actually taken.
    pub dt: f64,
    /// Maximum particle speed before the push.
    pub v_max: f64,
    /// Field energy `Σ E²/2`.
    pub field_energy: f64,
}

/// The adaptive time step for a given maximum speed.
pub fn adaptive_dt(cfg: &PicConfig, v_max: f64) -> f64 {
    if v_max > 0.0 {
        cfg.dt_max.min(cfg.courant / v_max)
    } else {
        cfg.dt_max
    }
}

/// Deposit the state's particles onto a fresh charge grid.
pub fn charge_grid(state: &PicState) -> Grid3 {
    let mut rho = Grid3::zeros(state.cfg.m);
    deposit(&mut rho, &state.particles, state.cfg.charge);
    rho
}

/// Advance one step (all four phases). Returns diagnostics.
pub fn step(state: &mut PicState) -> StepDiag {
    let rho = charge_grid(state);
    let phi = solve_poisson(&rho);
    let e = efield(&phi);
    push(state, &e)
}

/// Phase 3+4 given a solved field: interpolate, adapt dt, push.
pub fn push(state: &mut PicState, e: &[Grid3; 3]) -> StepDiag {
    let cfg = state.cfg;
    let mf = cfg.m as f64;
    let v_max = state
        .particles
        .iter()
        .map(|p| p.vel[0].abs().max(p.vel[1].abs()).max(p.vel[2].abs()))
        .fold(0.0, f64::max);
    let dt = adaptive_dt(&cfg, v_max);
    let qm = cfg.charge / cfg.mass;
    for p in &mut state.particles {
        let f = interpolate(e, p.pos);
        for d in 0..3 {
            p.vel[d] += qm * f[d] * dt;
            p.pos[d] = wrap(p.pos[d] + p.vel[d] * dt, mf);
        }
    }
    let field_energy = e
        .iter()
        .map(|g| g.data.iter().map(|v| v * v).sum::<f64>())
        .sum::<f64>()
        / 2.0;
    StepDiag {
        dt,
        v_max,
        field_energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particle::uniform_plasma;

    fn state(n: usize, m: usize, seed: u64) -> PicState {
        PicState {
            cfg: PicConfig {
                m,
                ..Default::default()
            },
            particles: uniform_plasma(n, m, 0.2, seed),
        }
    }

    #[test]
    fn particles_stay_in_the_box() {
        let mut s = state(300, 8, 1);
        for _ in 0..10 {
            step(&mut s);
        }
        for p in &s.particles {
            for d in 0..3 {
                assert!((0.0..8.0).contains(&p.pos[d]), "{:?}", p.pos);
            }
        }
    }

    #[test]
    fn adaptive_dt_caps_displacement() {
        let cfg = PicConfig::default();
        assert_eq!(adaptive_dt(&cfg, 0.0), cfg.dt_max);
        let dt = adaptive_dt(&cfg, 10.0);
        assert!((dt - 0.08).abs() < 1e-12);
        // Max displacement per step = v_max * dt <= courant cells.
        assert!(10.0 * dt <= cfg.courant + 1e-12);
    }

    #[test]
    fn momentum_is_conserved_for_a_neutral_plasma() {
        // Internal electrostatic forces cannot change total momentum.
        let mut s = state(500, 8, 9);
        let mom = |s: &PicState| {
            s.particles.iter().fold([0.0f64; 3], |mut m, p| {
                for d in 0..3 {
                    m[d] += p.vel[d];
                }
                m
            })
        };
        let before = mom(&s);
        for _ in 0..5 {
            step(&mut s);
        }
        let after = mom(&s);
        let scale: f64 = s
            .particles
            .iter()
            .map(|p| p.vel[0].abs() + p.vel[1].abs() + p.vel[2].abs())
            .sum::<f64>()
            .max(1.0);
        for d in 0..3 {
            assert!(
                (after[d] - before[d]).abs() < 0.02 * scale,
                "momentum drift in dim {d}: {} -> {}",
                before[d],
                after[d]
            );
        }
    }

    #[test]
    fn perturbed_cold_plasma_oscillates() {
        // A cold plasma with a sinusoidal density perturbation converts
        // field energy into kinetic energy (a Langmuir oscillation): the
        // particles, initially at rest, must pick up speed.
        let m = 8usize;
        let mut particles = Vec::new();
        for z in 0..m {
            for y in 0..m {
                for x in 0..m {
                    let xf =
                        x as f64 + 0.3 * (2.0 * std::f64::consts::PI * x as f64 / m as f64).sin();
                    particles.push(Particle {
                        pos: [crate::particle::wrap(xf, m as f64), y as f64, z as f64],
                        vel: [0.0; 3],
                    });
                }
            }
        }
        let mut s = PicState {
            cfg: PicConfig {
                m,
                dt_max: 0.05,
                ..Default::default()
            },
            particles,
        };
        let e0 = step(&mut s).field_energy;
        assert!(e0 > 1e-6, "perturbation should create a field: {e0}");
        for _ in 0..5 {
            step(&mut s);
        }
        let kinetic: f64 = s
            .particles
            .iter()
            .map(|p| p.vel.iter().map(|v| v * v).sum::<f64>())
            .sum::<f64>()
            / 2.0;
        assert!(kinetic > 1e-8, "particles never accelerated: {kinetic}");
    }

    #[test]
    fn cold_uniform_plasma_stays_quiet() {
        // Perfectly cold, uniform plasma: forces stay at the noise level
        // and velocities stay tiny.
        let mut s = state(2000, 8, 2);
        for p in &mut s.particles {
            p.vel = [0.0; 3];
        }
        for _ in 0..5 {
            step(&mut s);
        }
        let v_max = s
            .particles
            .iter()
            .map(|p| p.vel[0].abs().max(p.vel[1].abs()).max(p.vel[2].abs()))
            .fold(0.0, f64::max);
        assert!(v_max < 0.5, "cold plasma accelerated to {v_max}");
    }
}
