//! Radix-2 complex FFT, written from scratch (the paper used a vendor
//! 1-D FFT routine; this is our substrate equivalent).

use std::f64::consts::PI;

/// A complex number as `(re, im)`.
pub type Complex = (f64, f64);

#[inline]
fn c_mul(a: Complex, b: Complex) -> Complex {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

#[inline]
fn c_add(a: Complex, b: Complex) -> Complex {
    (a.0 + b.0, a.1 + b.1)
}

#[inline]
fn c_sub(a: Complex, b: Complex) -> Complex {
    (a.0 - b.0, a.1 - b.1)
}

/// In-place iterative Cooley-Tukey FFT. `inverse` selects the inverse
/// transform (which also divides by `n`).
///
/// # Panics
///
/// Panics unless `x.len()` is a power of two.
pub fn fft(x: &mut [Complex], inverse: bool) {
    let n = x.len();
    assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            x.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut w = (1.0, 0.0);
            for k in 0..len / 2 {
                let u = x[start + k];
                let v = c_mul(x[start + k + len / 2], w);
                x[start + k] = c_add(u, v);
                x[start + k + len / 2] = c_sub(u, v);
                w = c_mul(w, wlen);
            }
        }
        len <<= 1;
    }
    if inverse {
        let inv_n = 1.0 / n as f64;
        for v in x.iter_mut() {
            v.0 *= inv_n;
            v.1 *= inv_n;
        }
    }
}

/// 3-D FFT over a cubic grid of side `m`, stored x-fastest
/// (`idx = x + m*(y + m*z)`). Transforms along each dimension in turn —
/// the factorization into 1-D transforms the paper describes for its
/// slab-decomposed parallel FFT.
pub fn fft3(data: &mut [Complex], m: usize, inverse: bool) {
    assert_eq!(data.len(), m * m * m, "grid size mismatch");
    let mut line = vec![(0.0, 0.0); m];
    // X lines.
    for z in 0..m {
        for y in 0..m {
            let base = m * (y + m * z);
            line.copy_from_slice(&data[base..base + m]);
            fft(&mut line, inverse);
            data[base..base + m].copy_from_slice(&line);
        }
    }
    // Y lines.
    for z in 0..m {
        for x in 0..m {
            for y in 0..m {
                line[y] = data[x + m * (y + m * z)];
            }
            fft(&mut line, inverse);
            for y in 0..m {
                data[x + m * (y + m * z)] = line[y];
            }
        }
    }
    // Z lines.
    for y in 0..m {
        for x in 0..m {
            for z in 0..m {
                line[z] = data[x + m * (y + m * z)];
            }
            fft(&mut line, inverse);
            for z in 0..m {
                data[x + m * (y + m * z)] = line[z];
            }
        }
    }
}

/// Naive `O(n²)` DFT used as a test oracle.
pub fn dft_reference(x: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = x.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut out = vec![(0.0, 0.0); n];
    for (k, o) in out.iter_mut().enumerate() {
        for (j, &v) in x.iter().enumerate() {
            let ang = sign * 2.0 * PI * (k * j) as f64 / n as f64;
            *o = c_add(*o, c_mul(v, (ang.cos(), ang.sin())));
        }
    }
    if inverse {
        for o in &mut out {
            o.0 /= n as f64;
            o.1 /= n as f64;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| {
                (
                    (i as f64 * 0.7).sin() + 0.3 * (i as f64 * 2.1).cos(),
                    (i as f64 * 1.3).cos() * 0.5,
                )
            })
            .collect()
    }

    #[test]
    fn matches_reference_dft() {
        for n in [1usize, 2, 4, 8, 32, 128] {
            let x = signal(n);
            let mut got = x.clone();
            fft(&mut got, false);
            let want = dft_reference(&x, false);
            for (g, w) in got.iter().zip(&want) {
                assert!((g.0 - w.0).abs() < 1e-9, "n={n}");
                assert!((g.1 - w.1).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let x = signal(64);
        let mut y = x.clone();
        fft(&mut y, false);
        fft(&mut y, true);
        for (a, b) in x.iter().zip(&y) {
            assert!((a.0 - b.0).abs() < 1e-12);
            assert!((a.1 - b.1).abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy() {
        let x = signal(128);
        let e_time: f64 = x.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum();
        let mut y = x.clone();
        fft(&mut y, false);
        let e_freq: f64 = y.iter().map(|c| c.0 * c.0 + c.1 * c.1).sum::<f64>() / 128.0;
        assert!((e_time - e_freq).abs() < 1e-9 * e_time);
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut x = vec![(0.0, 0.0); 16];
        x[0] = (1.0, 0.0);
        fft(&mut x, false);
        for c in &x {
            assert!((c.0 - 1.0).abs() < 1e-12 && c.1.abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        fft(&mut [(0.0, 0.0); 3], false);
    }

    #[test]
    fn fft3_round_trip() {
        let m = 8;
        let x: Vec<Complex> = (0..m * m * m)
            .map(|i| ((i as f64 * 0.17).sin(), 0.0))
            .collect();
        let mut y = x.clone();
        fft3(&mut y, m, false);
        fft3(&mut y, m, true);
        for (a, b) in x.iter().zip(&y) {
            assert!((a.0 - b.0).abs() < 1e-11);
            assert!(b.1.abs() < 1e-11);
        }
    }

    #[test]
    fn fft3_of_plane_wave_is_single_spike() {
        let m = 8;
        let k = 3usize;
        let mut x: Vec<Complex> = Vec::with_capacity(m * m * m);
        for z in 0..m {
            let _ = z;
        }
        for zz in 0..m {
            for yy in 0..m {
                for xx in 0..m {
                    let _ = (yy, zz);
                    let ang = 2.0 * PI * (k * xx) as f64 / m as f64;
                    x.push((ang.cos(), ang.sin()));
                }
            }
        }
        fft3(&mut x, m, false);
        // Spike at (k, 0, 0) with magnitude m^3.
        let spike = x[k];
        assert!((spike.0 - (m * m * m) as f64).abs() < 1e-9);
        let total_off: f64 = x
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != k)
            .map(|(_, c)| c.0.abs() + c.1.abs())
            .sum();
        assert!(total_off < 1e-6, "off-spike energy {total_off}");
    }
}
