//! The FFT Poisson solver and field evaluation (the report's step 2).
//!
//! Solves `∇²φ = −ρ` on the periodic grid using the eigenvalues of the
//! discrete 7-point Laplacian (`4 sin²(π k / m)` per dimension, Δx = 1),
//! so that the finite-difference residual is exact to round-off. The
//! mean (k = 0) charge mode is removed — the neutralizing background of
//! an electrostatic plasma. The electric field is the report's central
//! difference `E_g = −(φ_{g+1} − φ_{g−1}) / 2Δx`.

use crate::fft::{fft3, Complex};
use crate::grid::Grid3;

/// Solve `∇²φ = −ρ`, returning `φ`.
pub fn solve_poisson(rho: &Grid3) -> Grid3 {
    let m = rho.m;
    let mut hat: Vec<Complex> = rho.data.iter().map(|&v| (v, 0.0)).collect();
    fft3(&mut hat, m, false);
    for kz in 0..m {
        for ky in 0..m {
            for kx in 0..m {
                let i = kx + m * (ky + m * kz);
                if kx == 0 && ky == 0 && kz == 0 {
                    hat[i] = (0.0, 0.0); // neutralizing background
                    continue;
                }
                let s = |k: usize| {
                    let a = (std::f64::consts::PI * k as f64 / m as f64).sin();
                    4.0 * a * a
                };
                let k2 = s(kx) + s(ky) + s(kz);
                hat[i].0 /= k2;
                hat[i].1 /= k2;
            }
        }
    }
    fft3(&mut hat, m, true);
    Grid3 {
        m,
        data: hat.into_iter().map(|c| c.0).collect(),
    }
}

/// Central-difference gradient: `E = −∇φ`.
pub fn efield(phi: &Grid3) -> [Grid3; 3] {
    let m = phi.m as isize;
    let mut e = [
        Grid3::zeros(phi.m),
        Grid3::zeros(phi.m),
        Grid3::zeros(phi.m),
    ];
    for z in 0..m {
        for y in 0..m {
            for x in 0..m {
                let i = phi.idx(x, y, z);
                e[0].data[i] = -(phi.at(x + 1, y, z) - phi.at(x - 1, y, z)) / 2.0;
                e[1].data[i] = -(phi.at(x, y + 1, z) - phi.at(x, y - 1, z)) / 2.0;
                e[2].data[i] = -(phi.at(x, y, z + 1) - phi.at(x, y, z - 1)) / 2.0;
            }
        }
    }
    e
}

/// Apply the discrete 7-point Laplacian (test utility).
pub fn discrete_laplacian(phi: &Grid3) -> Grid3 {
    let m = phi.m as isize;
    let mut out = Grid3::zeros(phi.m);
    for z in 0..m {
        for y in 0..m {
            for x in 0..m {
                let i = phi.idx(x, y, z);
                out.data[i] = phi.at(x + 1, y, z)
                    + phi.at(x - 1, y, z)
                    + phi.at(x, y + 1, z)
                    + phi.at(x, y - 1, z)
                    + phi.at(x, y, z + 1)
                    + phi.at(x, y, z - 1)
                    - 6.0 * phi.at(x, y, z);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(g: &Grid3) -> f64 {
        g.total() / g.data.len() as f64
    }

    #[test]
    fn poisson_inverts_the_discrete_laplacian() {
        let m = 8;
        let mut rho = Grid3::zeros(m);
        for (i, v) in rho.data.iter_mut().enumerate() {
            *v = ((i * 31) % 13) as f64 - 6.0;
        }
        let phi = solve_poisson(&rho);
        let lap = discrete_laplacian(&phi);
        // ∇²φ = −(ρ − mean(ρ)).
        let rho_mean = mean(&rho);
        for (l, r) in lap.data.iter().zip(&rho.data) {
            assert!(
                (l + (r - rho_mean)).abs() < 1e-9,
                "laplacian residual {l} vs {}",
                -(r - rho_mean)
            );
        }
    }

    #[test]
    fn potential_has_zero_mean() {
        let m = 8;
        let mut rho = Grid3::zeros(m);
        rho.data[5] = 1.0;
        let phi = solve_poisson(&rho);
        assert!(mean(&phi).abs() < 1e-12);
    }

    #[test]
    fn point_charge_potential_decays_with_distance() {
        let m = 16;
        let mut rho = Grid3::zeros(m);
        let c = m as isize / 2;
        let i = rho.idx(c, c, c);
        rho.data[i] = 1.0;
        let phi = solve_poisson(&rho);
        let p0 = phi.at(c, c, c);
        let p2 = phi.at(c + 2, c, c);
        let p5 = phi.at(c + 5, c, c);
        assert!(p0 > p2 && p2 > p5, "{p0} {p2} {p5}");
    }

    #[test]
    fn efield_points_away_from_positive_charge() {
        let m = 16;
        let mut rho = Grid3::zeros(m);
        let c = m as isize / 2;
        let i = rho.idx(c, c, c);
        rho.data[i] = 1.0;
        let phi = solve_poisson(&rho);
        let e = efield(&phi);
        // Just east of the charge, E_x should be positive (pointing away).
        assert!(e[0].at(c + 1, c, c) > 0.0);
        assert!(e[0].at(c - 1, c, c) < 0.0);
    }

    #[test]
    fn efield_of_constant_potential_is_zero() {
        let mut phi = Grid3::zeros(4);
        for v in &mut phi.data {
            *v = 3.7;
        }
        let e = efield(&phi);
        for g in &e {
            assert!(g.data.iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn single_mode_solution_matches_eigenvalue() {
        let m = 8;
        let mut rho = Grid3::zeros(m);
        for x in 0..m as isize {
            for y in 0..m as isize {
                for z in 0..m as isize {
                    let i = rho.idx(x, y, z);
                    rho.data[i] = (2.0 * std::f64::consts::PI * x as f64 / m as f64).cos();
                }
            }
        }
        let phi = solve_poisson(&rho);
        let lam = 4.0 * (std::f64::consts::PI / m as f64).sin().powi(2);
        for (p, r) in phi.data.iter().zip(&rho.data) {
            assert!((p - r / lam).abs() < 1e-9);
        }
    }
}
