//! Particles (finite-size charge clouds) and initial conditions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One charge cloud. All particles share the same charge and mass
/// (electrons against a neutralizing background).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Particle {
    /// Position inside the periodic domain `[0, m)³` (grid units).
    pub pos: [f64; 3],
    /// Velocity, grid cells per unit time.
    pub vel: [f64; 3],
}

/// Wrap a coordinate into `[0, m)`.
#[inline]
pub fn wrap(x: f64, m: f64) -> f64 {
    let r = x % m;
    if r < 0.0 {
        r + m
    } else {
        r
    }
}

/// A uniform plasma: positions uniform over the box, velocities
/// quasi-Maxwellian (sum of three uniforms) with thermal spread
/// `v_thermal`. Deterministic per seed.
pub fn uniform_plasma(n: usize, m: usize, v_thermal: f64, seed: u64) -> Vec<Particle> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mf = m as f64;
    (0..n)
        .map(|_| {
            let mut p = Particle {
                pos: [0.0; 3],
                vel: [0.0; 3],
            };
            for d in 0..3 {
                p.pos[d] = rng.gen_range(0.0..mf);
                p.vel[d] = v_thermal * (0..3).map(|_| rng.gen_range(-1.0_f64..1.0)).sum::<f64>();
            }
            p
        })
        .collect()
}

/// A two-stream setup: half the particles drift `+x`, half `−x` — the
/// classic instability test problem for electrostatic PIC codes.
pub fn two_stream(n: usize, m: usize, drift: f64, seed: u64) -> Vec<Particle> {
    let mut ps = uniform_plasma(n, m, drift * 0.05, seed);
    for (i, p) in ps.iter_mut().enumerate() {
        p.vel[0] += if i % 2 == 0 { drift } else { -drift };
    }
    ps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_stays_in_range() {
        assert_eq!(wrap(5.0, 4.0), 1.0);
        assert_eq!(wrap(-1.0, 4.0), 3.0);
        assert_eq!(wrap(3.5, 4.0), 3.5);
        assert_eq!(wrap(0.0, 4.0), 0.0);
    }

    #[test]
    fn plasma_is_deterministic_and_in_box() {
        let a = uniform_plasma(100, 8, 0.1, 3);
        let b = uniform_plasma(100, 8, 0.1, 3);
        assert_eq!(a, b);
        for p in &a {
            for d in 0..3 {
                assert!((0.0..8.0).contains(&p.pos[d]));
            }
        }
    }

    #[test]
    fn two_stream_has_two_drift_populations() {
        let ps = two_stream(100, 8, 1.0, 1);
        let right = ps.iter().filter(|p| p.vel[0] > 0.5).count();
        let left = ps.iter().filter(|p| p.vel[0] < -0.5).count();
        assert_eq!(right, 50);
        assert_eq!(left, 50);
    }
}
