//! The periodic cubic field grid.

/// A scalar field on an `m x m x m` periodic grid, x-fastest layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid3 {
    /// Grid side (cells per dimension).
    pub m: usize,
    /// Field values, `idx = x + m*(y + m*z)`.
    pub data: Vec<f64>,
}

impl Grid3 {
    /// Zero-filled grid.
    pub fn zeros(m: usize) -> Self {
        Grid3 {
            m,
            data: vec![0.0; m * m * m],
        }
    }

    /// Flat index with periodic wrap.
    #[inline]
    pub fn idx(&self, x: isize, y: isize, z: isize) -> usize {
        let m = self.m as isize;
        let xr = x.rem_euclid(m) as usize;
        let yr = y.rem_euclid(m) as usize;
        let zr = z.rem_euclid(m) as usize;
        xr + self.m * (yr + self.m * zr)
    }

    /// Value at (wrapped) coordinates.
    #[inline]
    pub fn at(&self, x: isize, y: isize, z: isize) -> f64 {
        self.data[self.idx(x, y, z)]
    }

    /// Add `v` at (wrapped) coordinates.
    #[inline]
    pub fn add(&mut self, x: isize, y: isize, z: isize, v: f64) {
        let i = self.idx(x, y, z);
        self.data[i] += v;
    }

    /// Sum of all values (total deposited charge).
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_x_fastest() {
        let g = Grid3::zeros(4);
        assert_eq!(g.idx(1, 0, 0), 1);
        assert_eq!(g.idx(0, 1, 0), 4);
        assert_eq!(g.idx(0, 0, 1), 16);
    }

    #[test]
    fn wraps_periodically() {
        let g = Grid3::zeros(4);
        assert_eq!(g.idx(-1, 0, 0), 3);
        assert_eq!(g.idx(4, 5, -2), g.idx(0, 1, 2));
    }

    #[test]
    fn add_accumulates() {
        let mut g = Grid3::zeros(2);
        g.add(0, 0, 0, 1.5);
        g.add(2, 0, 0, 2.5); // wraps to (0,0,0)
        assert_eq!(g.at(0, 0, 0), 4.0);
        assert_eq!(g.total(), 4.0);
    }
}
