//! Cloud-In-Cell charge assignment and field interpolation (trilinear),
//! the report's step 1 and step 3.

use crate::grid::Grid3;
use crate::particle::Particle;

/// The 8 grid nodes and weights bracketing a position.
#[inline]
fn cic_stencil(pos: [f64; 3]) -> ([isize; 3], [f64; 3]) {
    let base = [
        pos[0].floor() as isize,
        pos[1].floor() as isize,
        pos[2].floor() as isize,
    ];
    let frac = [
        pos[0] - base[0] as f64,
        pos[1] - base[1] as f64,
        pos[2] - base[2] as f64,
    ];
    (base, frac)
}

/// Deposit `charge` for every particle onto `rho` with CIC weights.
pub fn deposit(rho: &mut Grid3, particles: &[Particle], charge: f64) {
    for p in particles {
        let (b, f) = cic_stencil(p.pos);
        for dz in 0..2 {
            for dy in 0..2 {
                for dx in 0..2 {
                    let w = (if dx == 0 { 1.0 - f[0] } else { f[0] })
                        * (if dy == 0 { 1.0 - f[1] } else { f[1] })
                        * (if dz == 0 { 1.0 - f[2] } else { f[2] });
                    rho.add(b[0] + dx, b[1] + dy, b[2] + dz, charge * w);
                }
            }
        }
    }
}

/// Trilinear interpolation of a vector field (three grids) at `pos`.
pub fn interpolate(e: &[Grid3; 3], pos: [f64; 3]) -> [f64; 3] {
    let (b, f) = cic_stencil(pos);
    let mut out = [0.0; 3];
    for dz in 0..2 {
        for dy in 0..2 {
            for dx in 0..2 {
                let w = (if dx == 0 { 1.0 - f[0] } else { f[0] })
                    * (if dy == 0 { 1.0 - f[1] } else { f[1] })
                    * (if dz == 0 { 1.0 - f[2] } else { f[2] });
                for (d, grid) in e.iter().enumerate() {
                    out[d] += w * grid.at(b[0] + dx, b[1] + dy, b[2] + dz);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deposit_conserves_total_charge() {
        let particles = crate::particle::uniform_plasma(200, 8, 0.1, 7);
        let mut rho = Grid3::zeros(8);
        deposit(&mut rho, &particles, -1.0);
        assert!((rho.total() + 200.0).abs() < 1e-9);
    }

    #[test]
    fn particle_on_node_deposits_to_single_node() {
        let mut rho = Grid3::zeros(4);
        let p = Particle {
            pos: [2.0, 1.0, 3.0],
            vel: [0.0; 3],
        };
        deposit(&mut rho, &[p], 5.0);
        assert!((rho.at(2, 1, 3) - 5.0).abs() < 1e-12);
        assert!((rho.total() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn midpoint_particle_splits_evenly() {
        let mut rho = Grid3::zeros(4);
        let p = Particle {
            pos: [1.5, 0.0, 0.0],
            vel: [0.0; 3],
        };
        deposit(&mut rho, &[p], 8.0);
        assert!((rho.at(1, 0, 0) - 4.0).abs() < 1e-12);
        assert!((rho.at(2, 0, 0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn deposit_wraps_at_the_boundary() {
        let mut rho = Grid3::zeros(4);
        let p = Particle {
            pos: [3.5, 0.0, 0.0],
            vel: [0.0; 3],
        };
        deposit(&mut rho, &[p], 2.0);
        assert!((rho.at(3, 0, 0) - 1.0).abs() < 1e-12);
        assert!((rho.at(0, 0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interpolation_of_constant_field_is_exact() {
        let m = 4;
        let mut e = [Grid3::zeros(m), Grid3::zeros(m), Grid3::zeros(m)];
        for (d, g) in e.iter_mut().enumerate() {
            for v in &mut g.data {
                *v = (d + 1) as f64;
            }
        }
        let got = interpolate(&e, [1.3, 2.7, 0.1]);
        assert!((got[0] - 1.0).abs() < 1e-12);
        assert!((got[1] - 2.0).abs() < 1e-12);
        assert!((got[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn interpolation_is_linear_along_an_axis() {
        let m = 4;
        let mut e = [Grid3::zeros(m), Grid3::zeros(m), Grid3::zeros(m)];
        // E_x = x at nodes 0..3 (periodic, but we test inside 0..2).
        for x in 0..m as isize {
            for y in 0..m as isize {
                for z in 0..m as isize {
                    let i = e[0].idx(x, y, z);
                    e[0].data[i] = x as f64;
                }
            }
        }
        let got = interpolate(&e, [1.25, 0.0, 0.0]);
        assert!((got[0] - 1.25).abs() < 1e-12);
    }

    #[test]
    fn deposit_interpolate_adjointness() {
        // <deposit(p), F> == q * interpolate(F, p) — CIC gather and
        // scatter use the same weights.
        let m = 8;
        let mut field = Grid3::zeros(m);
        for (i, v) in field.data.iter_mut().enumerate() {
            *v = ((i * 37) % 11) as f64 - 5.0;
        }
        let p = Particle {
            pos: [3.3, 6.8, 0.4],
            vel: [0.0; 3],
        };
        let mut rho = Grid3::zeros(m);
        deposit(&mut rho, &[p], 2.5);
        let lhs: f64 = rho.data.iter().zip(&field.data).map(|(a, b)| a * b).sum();
        let e = [field.clone(), Grid3::zeros(m), Grid3::zeros(m)];
        let rhs = 2.5 * interpolate(&e, p.pos)[0];
        assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
    }
}
