//! Worker-worker SPMD port of the PIC step (the report's §2.3).
//!
//! Particles are divided uniformly among the ranks; the field grids are
//! replicated. Each step:
//!
//! 1. every rank deposits its own particles onto a private charge grid;
//! 2. the grids are made global with a **global sum** — either the NX
//!    `gssum`-style many-to-many ([`GsumAlgo::NaiveGssum`]) that the
//!    report found collapses beyond 8 processors, or the tree-based
//!    one-to-one replacement ([`GsumAlgo::TreePrefix`]);
//! 3. the FFT field solve is slab-decomposed: each rank is charged its
//!    slab's share of the grid work plus the slab transpose, and the
//!    electric field is made global again (slab-masked global sum);
//! 4. the adaptive time step is agreed globally, and every rank pushes
//!    its own particles.

use paragon::{CommError, Ctx, Ops, SpmdConfig};
use perfbudget::{Category, RankBudget};

use crate::cost;
use crate::deposit::deposit;
use crate::grid::Grid3;
use crate::particle::Particle;
use crate::poisson::{efield, solve_poisson};
use crate::sim::{adaptive_dt, PicConfig, PicState, StepDiag};

/// Which global-sum algorithm makes the grids global.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GsumAlgo {
    /// Every rank sends its full grid to every other rank (`O(P²)`
    /// messages) — the NX `gssum` behaviour the report measured first.
    NaiveGssum,
    /// Binomial-tree reduce + broadcast with one-to-one messages — the
    /// report's parallel-prefix replacement.
    TreePrefix,
}

/// Parallel run configuration.
#[derive(Debug, Clone, Copy)]
pub struct ParPicConfig {
    /// Physics/grid parameters.
    pub pic: PicConfig,
    /// Steps to simulate.
    pub steps: usize,
    /// Global-sum algorithm.
    pub gsum: GsumAlgo,
}

/// Result of a parallel run.
#[derive(Debug)]
pub struct PicRun {
    /// Final particles, in original order.
    pub particles: Vec<Particle>,
    /// Per-rank budgets.
    pub budgets: Vec<RankBudget>,
    /// Per-step diagnostics (from rank 0's perspective).
    pub diags: Vec<StepDiag>,
}

impl PicRun {
    /// Parallel execution time.
    pub fn parallel_time(&self) -> f64 {
        self.budgets
            .iter()
            .map(|b| b.completion)
            .fold(0.0, f64::max)
    }
}

fn gsum(ctx: &mut Ctx, algo: GsumAlgo, v: &mut [f64]) -> Result<(), CommError> {
    match algo {
        GsumAlgo::NaiveGssum => ctx.gsum_naive(v),
        GsumAlgo::TreePrefix => ctx.gsum_tree(v),
    }
}

/// Run `cfg.steps` worker-worker steps over `init` on the simulated
/// machine described by `scfg`.
pub fn run_parallel(scfg: &SpmdConfig, cfg: &ParPicConfig, init: &[Particle]) -> PicRun {
    let n = init.len();
    let nranks = scfg.nranks;
    let res = paragon::run_spmd(scfg, |ctx| {
        let rank = ctx.rank();
        let lo = rank * n / nranks;
        let hi = (rank + 1) * n / nranks;
        let mut state = PicState {
            cfg: cfg.pic,
            particles: init[lo..hi].to_vec(),
        };
        // Figuring out the uniform split is parallelization bookkeeping.
        ctx.charge_as(
            Ops {
                flops: 0,
                intops: 24,
                memops: 2 * (hi - lo) as u64,
            },
            Category::UniqueRedundancy,
        );
        let m = cfg.pic.m;
        let m3 = (m * m * m) as u64;
        // Working set: own particles + replicated field grids (rho, phi,
        // 3 E components, FFT buffer).
        ctx.set_working_set((hi - lo) * cost::PARTICLE_BYTES + 6 * 8 * m3 as usize);

        let mut diags = Vec::with_capacity(cfg.steps);
        for _ in 0..cfg.steps {
            // Phase 1: local deposition.
            let mut rho = Grid3::zeros(m);
            deposit(&mut rho, &state.particles, cfg.pic.charge);
            ctx.charge(cost::deposit_ops().times(state.particles.len() as u64));

            // Phase 2a: make the charge grid global.
            gsum(ctx, cfg.gsum, &mut rho.data)?;

            // Phase 2b: slab-decomposed field solve. The numerical work
            // is done on the (replicated) global grid; each rank is
            // charged its slab share plus the slab transpose traffic.
            let phi = solve_poisson(&rho);
            let e = efield(&phi);
            ctx.charge(cost::grid_ops_per_point(m).times(m3.div_ceil(nranks as u64)));
            if nranks > 1 {
                let bytes = ((m3 as usize * 16) / (nranks * nranks)).max(16);
                let msgs: Vec<(usize, (), usize)> = (0..nranks)
                    .filter(|&j| j != rank)
                    .map(|j| (j, (), bytes))
                    .collect();
                ctx.exchange(msgs)?;
            }

            // Phase 2c: make the field global (slab-masked global sum).
            let z_lo = rank * m / nranks;
            let z_hi = (rank + 1) * m / nranks;
            let mut eglob: Vec<f64> = Vec::with_capacity(3 * m3 as usize);
            for comp in &e {
                for z in 0..m {
                    let plane = &comp.data[z * m * m..(z + 1) * m * m];
                    if z >= z_lo && z < z_hi {
                        eglob.extend_from_slice(plane);
                    } else {
                        eglob.extend(std::iter::repeat_n(0.0, m * m));
                    }
                }
            }
            gsum(ctx, cfg.gsum, &mut eglob)?;
            let mut e_global = [Grid3::zeros(m), Grid3::zeros(m), Grid3::zeros(m)];
            for (d, g) in e_global.iter_mut().enumerate() {
                g.data
                    .copy_from_slice(&eglob[d * m3 as usize..(d + 1) * m3 as usize]);
            }

            // Phase 3-4: agree on dt, then push local particles.
            let v_local = state
                .particles
                .iter()
                .map(|p| p.vel[0].abs().max(p.vel[1].abs()).max(p.vel[2].abs()))
                .fold(0.0, f64::max);
            let gathered = ctx.gather(0, v_local, 8)?;
            let v_max = if let Some(vs) = gathered {
                let vm = vs.into_iter().map(|(_, v)| v).fold(0.0, f64::max);
                ctx.broadcast(0, Some(vm), 8)?
            } else {
                ctx.broadcast::<f64>(0, None, 8)?
            };
            // Force the agreed dt by pinning every rank's v_max view.
            let dt = adaptive_dt(&cfg.pic, v_max);
            let diag = push_with_dt(&mut state, &e_global, dt, v_max);
            ctx.charge(cost::push_ops().times(state.particles.len() as u64));
            diags.push(diag);
            ctx.barrier()?;
        }
        Ok((state.particles, diags))
    })
    .expect("PIC runs on a fault-free simulator configuration");

    let budgets = res.budgets.clone();
    let outputs = res
        .ok_outputs()
        .expect("PIC runs on a fault-free simulator configuration");
    let mut particles = Vec::with_capacity(n);
    let mut diags = Vec::new();
    for (i, (part, d)) in outputs.into_iter().enumerate() {
        particles.extend(part);
        if i == 0 {
            diags = d;
        }
    }
    PicRun {
        particles,
        budgets,
        diags,
    }
}

/// Push with an externally agreed dt (the global reduction result).
fn push_with_dt(state: &mut PicState, e: &[Grid3; 3], dt: f64, v_max: f64) -> StepDiag {
    // Reuse the serial push by temporarily pinning dt through the config:
    // adaptive_dt(cfg, v) picks min(dt_max, courant/v); we instead push
    // directly here to use the agreed value.
    let mf = state.cfg.m as f64;
    let qm = state.cfg.charge / state.cfg.mass;
    for p in &mut state.particles {
        let f = crate::deposit::interpolate(e, p.pos);
        for d in 0..3 {
            p.vel[d] += qm * f[d] * dt;
            p.pos[d] = crate::particle::wrap(p.pos[d] + p.vel[d] * dt, mf);
        }
    }
    let field_energy = e
        .iter()
        .map(|g| g.data.iter().map(|v| v * v).sum::<f64>())
        .sum::<f64>()
        / 2.0;
    StepDiag {
        dt,
        v_max,
        field_energy,
    }
}

/// Virtual seconds for one *serial* PIC step of `n` particles on grid
/// `m` — the model behind the report's tables 1–2 serial rows. When
/// `with_paging` is set, the single node's working set is applied to the
/// machine's paging model (the report's figure 9 effect).
pub fn serial_step_seconds(
    machine: &paragon::MachineSpec,
    n: usize,
    m: usize,
    with_paging: bool,
) -> f64 {
    let m3 = (m * m * m) as u64;
    let ops = cost::deposit_ops()
        .times(n as u64)
        .plus(cost::push_ops().times(n as u64))
        .plus(cost::grid_ops_per_point(m).times(m3));
    let base = machine.cpu.seconds(ops);
    if with_paging {
        let ws = n * cost::PARTICLE_BYTES + 6 * 8 * m3 as usize;
        base * machine.mem.paging_factor(ws)
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particle::uniform_plasma;
    use paragon::{MachineSpec, Mapping};

    fn spmd(p: usize) -> SpmdConfig {
        SpmdConfig::new(MachineSpec::paragon(), p, Mapping::Snake)
    }

    fn cfg(steps: usize, gsum: GsumAlgo) -> ParPicConfig {
        ParPicConfig {
            pic: PicConfig {
                m: 8,
                ..Default::default()
            },
            steps,
            gsum,
        }
    }

    #[test]
    fn single_rank_matches_serial_bitwise() {
        let init = uniform_plasma(200, 8, 0.2, 3);
        let mut serial = PicState {
            cfg: cfg(1, GsumAlgo::TreePrefix).pic,
            particles: init.clone(),
        };
        for _ in 0..3 {
            crate::sim::step(&mut serial);
        }
        let run = run_parallel(&spmd(1), &cfg(3, GsumAlgo::TreePrefix), &init);
        assert_eq!(run.particles, serial.particles);
    }

    #[test]
    fn multi_rank_matches_serial_closely() {
        let init = uniform_plasma(300, 8, 0.2, 5);
        let mut serial = PicState {
            cfg: cfg(1, GsumAlgo::TreePrefix).pic,
            particles: init.clone(),
        };
        for _ in 0..2 {
            crate::sim::step(&mut serial);
        }
        for p in [2usize, 4] {
            for algo in [GsumAlgo::NaiveGssum, GsumAlgo::TreePrefix] {
                let run = run_parallel(&spmd(p), &cfg(2, algo), &init);
                assert_eq!(run.particles.len(), serial.particles.len());
                for (a, b) in run.particles.iter().zip(&serial.particles) {
                    for d in 0..3 {
                        assert!(
                            (a.pos[d] - b.pos[d]).abs() < 1e-6,
                            "P={p} {algo:?}: {:?} vs {:?}",
                            a.pos,
                            b.pos
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tree_gsum_beats_naive_at_scale() {
        let init = uniform_plasma(2000, 16, 0.2, 1);
        let mk = |algo| {
            let c = ParPicConfig {
                pic: PicConfig {
                    m: 16,
                    ..Default::default()
                },
                steps: 1,
                gsum: algo,
            };
            run_parallel(&spmd(16), &c, &init).parallel_time()
        };
        let naive = mk(GsumAlgo::NaiveGssum);
        let tree = mk(GsumAlgo::TreePrefix);
        assert!(
            tree < naive,
            "tree ({tree:.4}s) should beat gssum ({naive:.4}s) at P=16"
        );
    }

    #[test]
    fn scales_with_processors_for_large_runs() {
        let init = uniform_plasma(20_000, 8, 0.2, 2);
        let t1 = run_parallel(&spmd(1), &cfg(1, GsumAlgo::TreePrefix), &init).parallel_time();
        let t8 = run_parallel(&spmd(8), &cfg(1, GsumAlgo::TreePrefix), &init).parallel_time();
        assert!(
            t1 / t8 > 3.0,
            "8-rank speedup {:.2} (t1={t1:.3} t8={t8:.3})",
            t1 / t8
        );
    }

    #[test]
    fn serial_seconds_match_report_calibration() {
        // Table 1: PIC 256K particles, m=32 -> 13.35 s/iteration on the
        // Paragon; m=64 -> 21.92 s.
        let p = MachineSpec::paragon();
        let t32 = serial_step_seconds(&p, 256 * 1024, 32, false);
        assert!((10.0..18.0).contains(&t32), "m=32: {t32}");
        let t64 = serial_step_seconds(&p, 256 * 1024, 64, false);
        assert!((17.0..28.0).contains(&t64), "m=64: {t64}");
        // T3D is ~2-3x faster overall on PIC.
        let t3d = serial_step_seconds(&MachineSpec::t3d(), 256 * 1024, 32, false);
        let ratio = t32 / t3d;
        assert!((1.5..4.5).contains(&ratio), "Paragon/T3D PIC ratio {ratio}");
    }

    #[test]
    fn paging_produces_superlinear_uniprocessor_times() {
        // Figure 9: beyond ~640K particles the uniprocessor pages.
        let p = MachineSpec::paragon();
        let fair = serial_step_seconds(&p, 1 << 20, 32, false);
        let real = serial_step_seconds(&p, 1 << 20, 32, true);
        assert!(real > 3.0 * fair, "paging factor only {}", real / fair);
        // Below the memory limit the two agree.
        let small_fair = serial_step_seconds(&p, 256 * 1024, 32, false);
        let small_real = serial_step_seconds(&p, 256 * 1024, 32, true);
        assert_eq!(small_fair, small_real);
    }

    #[test]
    fn deterministic() {
        let init = uniform_plasma(200, 8, 0.2, 7);
        let a = run_parallel(&spmd(4), &cfg(2, GsumAlgo::TreePrefix), &init);
        let b = run_parallel(&spmd(4), &cfg(2, GsumAlgo::TreePrefix), &init);
        assert_eq!(a.particles, b.particles);
        assert_eq!(a.parallel_time(), b.parallel_time());
    }
}
