//! Shared plumbing for the reproduction harnesses: experiment
//! configurations matching the paper's setups and table formatting.

use dwt::{Boundary, FilterBank, Matrix};
use dwt_mimd::{GuardOrdering, MimdDwtConfig};
use imagery::{landsat_scene, SceneParams};
use paragon::{MachineSpec, Mapping, SpmdConfig};

/// The paper's three experiment configurations: (filter size, levels).
pub const PAPER_CONFIGS: [(usize, usize); 3] = [(8, 1), (4, 2), (2, 4)];

/// Label such as `F8/L1`.
pub fn config_label(filter: usize, levels: usize) -> String {
    format!("F{filter}/L{levels}")
}

/// Whether the harness should run the full paper-sized experiments.
/// Reduced sizes keep a full `cargo bench` pass quick; set
/// `REPRO_FULL=1` for the paper's exact sizes.
pub fn full_size() -> bool {
    std::env::var("REPRO_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The 512×512 Landsat-TM stand-in scene of the paper's experiments
/// (or a 256×256 reduction when not in full mode).
pub fn paper_image() -> Matrix {
    let n = if full_size() { 512 } else { 256 };
    landsat_scene(n, n, SceneParams::default())
}

/// SPMD config on the simulated Paragon.
pub fn paragon_cfg(nranks: usize, mapping: Mapping) -> SpmdConfig {
    SpmdConfig::new(MachineSpec::paragon(), nranks, mapping)
}

/// SPMD config on the simulated T3D.
pub fn t3d_cfg(nranks: usize) -> SpmdConfig {
    SpmdConfig::new(MachineSpec::t3d(), nranks, Mapping::RowMajor)
}

/// The tuned distributed-DWT configuration (snake + simultaneous).
pub fn tuned_dwt(filter: usize, levels: usize) -> MimdDwtConfig {
    MimdDwtConfig::tuned(
        FilterBank::daubechies(filter).expect("paper filter sizes exist"),
        levels,
    )
}

/// The naive distributed-DWT configuration (row-major placement is
/// chosen by the caller; this sets the chain-ordered blocking exchange).
pub fn naive_dwt(filter: usize, levels: usize) -> MimdDwtConfig {
    MimdDwtConfig {
        ordering: GuardOrdering::ChainOrdered,
        ..tuned_dwt(filter, levels)
    }
}

/// Boundary mode used throughout the reproduction.
pub const MODE: Boundary = Boundary::Periodic;

/// Print a header banner for a harness section.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Format a speedup series as `P=1: 1.00x  P=2: 1.9x ...`.
pub fn speedup_row(times: &[(usize, f64)]) -> String {
    let t1 = times
        .iter()
        .find(|(p, _)| *p == 1)
        .map(|&(_, t)| t)
        .unwrap_or(times[0].1);
    times
        .iter()
        .map(|(p, t)| format!("P={p:<2} T={t:8.4}s S={:5.2}x", t1 / t))
        .collect::<Vec<_>>()
        .join("  |  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_are_the_three_from_the_evaluation() {
        assert_eq!(PAPER_CONFIGS.len(), 3);
        assert_eq!(config_label(8, 1), "F8/L1");
    }

    #[test]
    fn image_matches_requested_size() {
        let img = paper_image();
        assert!(img.rows() == 256 || img.rows() == 512);
        assert_eq!(img.rows(), img.cols());
    }

    #[test]
    fn speedup_row_normalizes_to_p1() {
        let row = speedup_row(&[(1, 4.0), (2, 2.0)]);
        assert!(row.contains("S= 1.00x"));
        assert!(row.contains("S= 2.00x"));
    }
}
