//! Machine-readable serving benchmark: a seeded open-loop load
//! generator drives the `wserv` discrete-event simulator across an
//! arrival-rate x shard-count x cache x batching grid, plus a seeded
//! chaos sweep (worker panics, shard crashes, stalls, poison requests,
//! degraded-mode brownout) through `run_chaos`, and writes
//! `BENCH_service.json` in the current directory. Every chaos row is
//! checked for the exactly-once invariant: completed + rejected equals
//! submitted — injected faults lose nothing.
//!
//! Every latency and throughput number is *virtual* (simulated) time:
//! the whole file is a pure function of the seed, and this harness
//! proves it by generating the report twice and comparing the bytes.
//!
//! Run from the repo root with `just serve-bench` (or
//! `cargo run --release -p bench --bin bench_service`). Set
//! `WSERV_SMOKE=1` for the downscaled CI mode, which writes
//! `target/BENCH_service_smoke.json` instead and additionally asserts
//! the acceptance conditions on the smaller grid.

use dwt::{FilterBank, Matrix};
use wserv::sim::{run_chaos, run_sim, CostModel, SimReport};
use wserv::{
    DecomposeRequest, DegradedPolicy, Priority, RejectKind, ServiceConfig, ShardFaultPlan,
    SupervisorPolicy,
};

const SEED: u64 = 1996; // the paper's year; any fixed seed works

/// SplitMix64 — the same generator `paragon::faults` seeds from.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        // Strictly positive so ln() is finite.
        ((self.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64
    }
}

/// The tenant shape pool: sizes x banks x depths, sixteen plan shapes.
/// The CDF 5/3 and 9/7 entries compile to lifting-kernel plans, so the
/// cache and batch paths exercise both engine kinds under load.
fn shape_pool() -> Vec<(usize, FilterBank, usize)> {
    let haar = FilterBank::haar();
    let d4 = FilterBank::daubechies(4).expect("D4 exists");
    let cdf53 = FilterBank::cdf53();
    let cdf97 = FilterBank::cdf97();
    vec![
        (32, haar.clone(), 1),
        (32, haar.clone(), 2),
        (32, d4.clone(), 1),
        (32, d4.clone(), 2),
        (64, haar.clone(), 1),
        (64, haar, 2),
        (64, d4.clone(), 1),
        (64, d4, 2),
        (32, cdf53.clone(), 1),
        (32, cdf53.clone(), 2),
        (64, cdf53.clone(), 2),
        (96, cdf53, 3),
        (32, cdf97.clone(), 1),
        (64, cdf97.clone(), 2),
        (96, cdf97.clone(), 1),
        (128, cdf97, 3),
    ]
}

fn image(n: usize, salt: u64) -> Matrix {
    Matrix::from_fn(n, n, |r, c| {
        ((r as u64 * 31 + c as u64 * 17 + salt * 7) % 61) as f64 - 30.0
    })
}

/// Seeded open-loop stream: exponential inter-arrivals at `rate_hz`,
/// shapes uniform over the pool, priorities mixed, and a tight deadline
/// on part of the interactive class so the expiry path is exercised.
fn stream(n_reqs: usize, rate_hz: f64) -> Vec<(f64, DecomposeRequest)> {
    let pool = shape_pool();
    let mut rng = SplitMix64(SEED);
    let mut t = 0.0;
    let mut out = Vec::with_capacity(n_reqs);
    for _ in 0..n_reqs {
        t += -rng.unit_f64().ln() / rate_hz;
        let (size, bank, levels) = pool[(rng.next_u64() % pool.len() as u64) as usize].clone();
        let priority = Priority::ALL[(rng.next_u64() % 3) as usize];
        let mut req = DecomposeRequest::new(image(size, rng.next_u64() % 13), bank, levels)
            .with_priority(priority);
        // Loose enough not to censor the p95 comparison at saturation,
        // tight enough that deep overload still trips the expiry path.
        if priority == Priority::Interactive && rng.next_u64().is_multiple_of(2) {
            req = req.with_deadline(t + 5e-3);
        }
        out.push((t, req));
    }
    out
}

struct Cell {
    shards: usize,
    cache_capacity: usize,
    max_batch: usize,
    rate_hz: f64,
    report: SimReport,
}

impl Cell {
    fn p_ms(&self, q: f64) -> f64 {
        self.report.metrics.latency_quantile(q) * 1e3
    }

    fn json(&self) -> String {
        let m = &self.report.metrics;
        let budget = m.budget_report().expect("at least one shard");
        format!(
            concat!(
                "{{\"shards\": {}, \"cache_capacity\": {}, \"max_batch\": {}, ",
                "\"rate_hz\": {}, \"accepted\": {}, \"completed\": {}, ",
                "\"rejected_queue_full\": {}, \"rejected_shed\": {}, ",
                "\"rejected_deadline\": {}, \"cache_hit_rate\": {:.4}, ",
                "\"mean_batch_occupancy\": {:.4}, \"p50_ms\": {:.6}, ",
                "\"p95_ms\": {:.6}, \"p99_ms\": {:.6}, \"throughput_hz\": {:.3}, ",
                "\"makespan_s\": {:.9}, \"useful_pct\": {:.3}, \"imbalance_pct\": {:.3}}}"
            ),
            self.shards,
            self.cache_capacity,
            self.max_batch,
            self.rate_hz,
            m.accepted(),
            m.completed(),
            m.rejected(RejectKind::QueueFull),
            m.rejected(RejectKind::Shed),
            m.rejected(RejectKind::DeadlineExpired),
            m.cache_hit_rate(),
            m.mean_batch_occupancy(),
            self.p_ms(0.50),
            self.p_ms(0.95),
            self.p_ms(0.99),
            self.report.throughput(),
            self.report.makespan_s,
            budget.useful_pct(),
            budget.imbalance_pct(),
        )
    }
}

fn sweep(n_reqs: usize, shard_grid: &[usize], rates: &[f64]) -> Vec<Cell> {
    let cost = CostModel::default();
    let mut cells = Vec::new();
    for &shards in shard_grid {
        for &(cache_capacity, max_batch) in &[(16usize, 8usize), (0, 8), (16, 1), (0, 1)] {
            for &rate_hz in rates {
                let cfg = ServiceConfig::default()
                    .with_shards(shards)
                    .with_queue_capacity(64)
                    .with_cache_capacity(cache_capacity)
                    .with_max_batch(max_batch);
                let report = run_sim(&cfg, &cost, stream(n_reqs, rate_hz));
                let cell = Cell {
                    shards,
                    cache_capacity,
                    max_batch,
                    rate_hz,
                    report,
                };
                eprintln!(
                    "shards={shards} cache={cache_capacity:<2} batch={max_batch} \
                     rate={rate_hz:<8} p95={:.3}ms tput={:.0}/s hit={:.2}",
                    cell.p_ms(0.95),
                    cell.report.throughput(),
                    cell.report.metrics.cache_hit_rate()
                );
                cells.push(cell);
            }
        }
    }
    cells
}

/// Seeded chaos scenarios for the fault-tolerance sweep: every plan is a
/// pure function of `SEED`, so the rows reproduce byte for byte. The
/// grid covers each injected fault kind in isolation plus one combined
/// brownout, all on the same three-shard service.
fn chaos_scenarios() -> Vec<(&'static str, ServiceConfig)> {
    let base = || {
        ServiceConfig::default()
            .with_shards(3)
            .with_queue_capacity(64)
            .with_cache_capacity(16)
            .with_max_batch(4)
    };
    vec![
        ("fault_free", base()),
        (
            "worker_panic",
            base().with_faults(ShardFaultPlan::seeded(SEED).with_worker_panic(0, 3)),
        ),
        (
            "shard_crash_failover",
            base()
                .with_faults(ShardFaultPlan::seeded(SEED).with_shard_crash(0, 0))
                .with_supervisor(SupervisorPolicy {
                    max_restarts: 2,
                    ..SupervisorPolicy::default()
                }),
        ),
        (
            "poison_quarantine",
            base().with_faults(ShardFaultPlan::seeded(SEED).with_poison_rate(0.05)),
        ),
        (
            "stall_window",
            base().with_faults(ShardFaultPlan::seeded(SEED).with_stall(1, 3.0, 0, 40)),
        ),
        (
            "degraded_brownout",
            base()
                .with_faults(ShardFaultPlan::seeded(SEED).with_shard_crash(2, 0))
                .with_supervisor(SupervisorPolicy {
                    max_restarts: 1,
                    ..SupervisorPolicy::default()
                })
                .with_degraded(DegradedPolicy::default()),
        ),
        (
            "combined",
            base()
                .with_faults(
                    ShardFaultPlan::seeded(SEED)
                        .with_shard_crash(0, 2)
                        .with_worker_panic(1, 5)
                        .with_stall(2, 2.0, 0, 30)
                        .with_poison_rate(0.02),
                )
                .with_supervisor(SupervisorPolicy {
                    max_restarts: 1,
                    ..SupervisorPolicy::default()
                })
                .with_degraded(DegradedPolicy::default()),
        ),
    ]
}

struct ChaosCell {
    scenario: &'static str,
    shards: usize,
    rate_hz: f64,
    requests: usize,
    report: SimReport,
}

impl ChaosCell {
    /// The chaos invariant, asserted on every generated row: each
    /// submitted request resolves exactly once (completed, typed
    /// rejection, or bounded-error degraded response) — injected crashes
    /// lose nothing.
    fn assert_nothing_lost(&self) {
        let m = &self.report.metrics;
        assert_eq!(
            self.report.outcomes.len(),
            self.requests,
            "{}: every request must have a terminal outcome",
            self.scenario
        );
        let ok = self.report.outcomes.iter().filter(|o| o.is_ok()).count() as u64;
        assert_eq!(
            ok,
            m.completed(),
            "{}: completions must match Ok outcomes",
            self.scenario
        );
        let rejected: u64 = RejectKind::ALL.iter().map(|&k| m.rejected(k)).sum();
        assert_eq!(
            ok + rejected,
            self.requests as u64,
            "{}: lost requests (completed {} + rejected {} != submitted {})",
            self.scenario,
            ok,
            rejected,
            self.requests
        );
        let degraded = self
            .report
            .outcomes
            .iter()
            .filter(|o| o.as_ref().is_ok_and(|r| r.degraded))
            .count() as u64;
        assert_eq!(
            degraded,
            m.degraded_served(),
            "{}: degraded counter must match degraded Ok outcomes",
            self.scenario
        );
    }

    fn json(&self) -> String {
        let m = &self.report.metrics;
        let budget = m.budget_report().expect("at least one shard");
        let failed: Vec<String> = m.failed_shards().iter().map(|s| s.to_string()).collect();
        let rejected_total: u64 = RejectKind::ALL.iter().map(|&k| m.rejected(k)).sum();
        format!(
            concat!(
                "{{\"scenario\": \"{}\", \"shards\": {}, \"rate_hz\": {}, ",
                "\"requests\": {}, \"completed\": {}, \"degraded_served\": {}, ",
                "\"restarts\": {}, \"requeued\": {}, \"quarantined\": {}, ",
                "\"rejected_total\": {}, ",
                "\"rejected_shard_failed\": {}, \"rejected_requeued\": {}, ",
                "\"rejected_deadline\": {}, \"failed_shards\": [{}], ",
                "\"p95_ms\": {:.6}, \"throughput_hz\": {:.3}, ",
                "\"makespan_s\": {:.9}, \"fault_recovery_pct\": {:.3}}}"
            ),
            self.scenario,
            self.shards,
            self.rate_hz,
            self.requests,
            m.completed(),
            m.degraded_served(),
            m.restarts(),
            m.requeued(),
            m.quarantined(),
            rejected_total,
            m.rejected(RejectKind::ShardFailed),
            m.rejected(RejectKind::Requeued),
            m.rejected(RejectKind::DeadlineExpired),
            failed.join(", "),
            m.latency_quantile(0.95) * 1e3,
            self.report.throughput(),
            self.report.makespan_s,
            budget.fault_pct(),
        )
    }
}

fn chaos_sweep(n_reqs: usize, rate_hz: f64) -> Vec<ChaosCell> {
    let cost = CostModel::default();
    let mut cells = Vec::new();
    for (scenario, cfg) in chaos_scenarios() {
        let report = run_chaos(&cfg, &cost, stream(n_reqs, rate_hz));
        let cell = ChaosCell {
            scenario,
            shards: 3,
            rate_hz,
            requests: n_reqs,
            report,
        };
        cell.assert_nothing_lost();
        let m = &cell.report.metrics;
        eprintln!(
            "chaos {scenario:<20} completed={:<4} degraded={:<3} restarts={} \
             requeued={:<3} failed_shards={:?}",
            m.completed(),
            m.degraded_served(),
            m.restarts(),
            m.requeued(),
            m.failed_shards()
        );
        cells.push(cell);
    }
    cells
}

/// Spot checks that the chaos grid exercises what it claims to: the
/// failover scenario loses a shard yet strands nothing, and the
/// brownout scenario actually serves bounded-error responses.
fn assert_chaos_coverage(cells: &[ChaosCell]) {
    let find = |name: &str| -> &ChaosCell {
        cells
            .iter()
            .find(|c| c.scenario == name)
            .expect("scenario present in the chaos grid")
    };
    let fault_free = find("fault_free");
    assert_eq!(
        fault_free.report.metrics.failed_shards(),
        Vec::<usize>::new()
    );
    assert_eq!(fault_free.report.metrics.restarts(), 0);
    let failover = find("shard_crash_failover");
    assert!(
        !failover.report.metrics.failed_shards().is_empty(),
        "crash scenario must exhaust the restart budget"
    );
    assert!(failover.report.metrics.restarts() > 0);
    let brownout = find("degraded_brownout");
    assert!(
        brownout.report.metrics.degraded_served() > 0,
        "brownout scenario must serve degraded responses"
    );
    let panicked = find("worker_panic");
    assert!(panicked.report.metrics.restarts() > 0);
    assert_eq!(panicked.report.metrics.failed_shards(), Vec::<usize>::new());
    let poisoned = find("poison_quarantine");
    assert!(poisoned.report.metrics.quarantined() > 0);
}

fn render(n_reqs: usize, cells: &[Cell], chaos: &[ChaosCell]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"wserv_load\",\n");
    out.push_str("  \"unit\": \"virtual_seconds\",\n");
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"requests_per_cell\": {n_reqs},\n"));
    out.push_str(&format!("  \"shape_pool\": {},\n", shape_pool().len()));
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&c.json());
        out.push_str(if i + 1 == cells.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"chaos_requests_per_cell\": {},\n",
        chaos.first().map_or(0, |c| c.requests)
    ));
    out.push_str("  \"chaos_results\": [\n");
    for (i, c) in chaos.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&c.json());
        out.push_str(if i + 1 == chaos.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// p95 latency of each run over the *matched set* of request ids that
/// completed in both. Under overload the two systems shed different
/// victims, so comparing raw completed-set quantiles confounds speed
/// with survivorship (the slower system completes a faster-skewed
/// subset); the matched set removes that bias.
fn matched_p95(a: &SimReport, b: &SimReport) -> (f64, f64) {
    let mut ha = wserv::Histogram::default();
    let mut hb = wserv::Histogram::default();
    for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
        if let (Ok(rx), Ok(ry)) = (x, y) {
            ha.record(rx.latency_s());
            hb.record(ry.latency_s());
        }
    }
    (ha.quantile(0.95), hb.quantile(0.95))
}

/// Acceptance criteria, checked on every run:
/// * at the top arrival rate, cache-on strictly beats cache-off on
///   matched-set p95 at equal shard count and batching;
/// * at the top arrival rate, batching strictly raises saturation
///   throughput over batch-1 at equal shard count and caching.
fn assert_dominance(cells: &[Cell], top_rate: f64) {
    let find = |shards: usize, cache: usize, batch: usize| -> &Cell {
        cells
            .iter()
            .find(|c| {
                c.shards == shards
                    && c.cache_capacity == cache
                    && c.max_batch == batch
                    && c.rate_hz == top_rate
            })
            .expect("cell present in the grid")
    };
    let shard_grid: Vec<usize> = {
        let mut v: Vec<usize> = cells.iter().map(|c| c.shards).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    for &shards in &shard_grid {
        for &batch in &[1usize, 8] {
            let on = find(shards, 16, batch);
            let off = find(shards, 0, batch);
            let (on_p95, off_p95) = matched_p95(&on.report, &off.report);
            assert!(
                on_p95 < off_p95,
                "cache-on matched-set p95 {:.4}ms must undercut cache-off {:.4}ms \
                 (shards={shards} batch={batch})",
                on_p95 * 1e3,
                off_p95 * 1e3
            );
            assert!(on.report.metrics.cache_hit_rate() > 0.0);
        }
        for &cache in &[0usize, 16] {
            let batched = find(shards, cache, 8);
            let single = find(shards, cache, 1);
            assert!(
                batched.report.throughput() > single.report.throughput(),
                "batch-8 throughput {:.0}/s must beat batch-1 {:.0}/s \
                 (shards={shards} cache={cache})",
                batched.report.throughput(),
                single.report.throughput()
            );
        }
    }
}

fn main() {
    let smoke = std::env::var("WSERV_SMOKE").is_ok_and(|v| v == "1");
    let (n_reqs, shard_grid, rates): (usize, Vec<usize>, Vec<f64>) = if smoke {
        (300, vec![2], vec![20_000.0, 120_000.0])
    } else {
        (1500, vec![1, 4], vec![5_000.0, 20_000.0, 120_000.0])
    };
    let top_rate = *rates.last().expect("non-empty rate grid");

    let chaos_reqs = if smoke { 200 } else { 800 };
    let chaos_rate = 50_000.0;

    let cells = sweep(n_reqs, &shard_grid, &rates);
    assert_dominance(&cells, top_rate);
    let chaos = chaos_sweep(chaos_reqs, chaos_rate);
    assert_chaos_coverage(&chaos);
    let report = render(n_reqs, &cells, &chaos);

    // Byte-reproducibility is part of the contract: regenerate the
    // whole sweep — chaos rows included — and require the identical
    // document.
    let again = render(
        n_reqs,
        &sweep(n_reqs, &shard_grid, &rates),
        &chaos_sweep(chaos_reqs, chaos_rate),
    );
    assert_eq!(report, again, "service bench must be byte-reproducible");

    let path = if smoke {
        "target/BENCH_service_smoke.json"
    } else {
        "BENCH_service.json"
    };
    std::fs::write(path, &report).unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path}");
}
