//! Machine-readable serving benchmark: a seeded open-loop load
//! generator drives the `wserv` discrete-event simulator across an
//! arrival-rate x shard-count x cache x batching grid, plus a seeded
//! chaos sweep (worker panics, shard crashes, stalls, poison requests,
//! degraded-mode brownout) through `run_chaos`, plus a closed-loop
//! multi-client transport sweep (`transport_results`) through
//! `run_closed_loop` with the wire itself in the loop — framing cost
//! charged to the Communication lane, seeded `WireFaultPlan` resets,
//! truncations, bit flips and stalls — and writes `BENCH_service.json`
//! in the current directory. Every chaos and transport row is checked
//! for the exactly-once invariant: nothing injected loses a request.
//!
//! Every latency and throughput number in those sections is *virtual*
//! (simulated) time: they are a pure function of the seed, and this
//! harness proves it by generating the report twice and comparing the
//! bytes. A final `transport_live` section then runs the same
//! closed-loop workload for real — `RemoteServer` + `RemoteClient`
//! over both the in-memory shim transport and localhost TCP, with the
//! same wire faults and with real worker threads killed mid-load — and
//! reports measured wall-clock tail latency next to the simulator's
//! prediction. Live rows are wall-clock and sit outside the
//! byte-compare; their invariants (exactly-once, zero lost,
//! shim-vs-TCP identical resolution books) are asserted instead.
//!
//! Run from the repo root with `just serve-bench` (or
//! `cargo run --release -p bench --bin bench_service`). Set
//! `WSERV_SMOKE=1` for the downscaled CI mode, which writes
//! `target/BENCH_service_smoke.json` instead and additionally asserts
//! the acceptance conditions on the smaller grid.

use std::time::{Duration, Instant};

use dwt::{dwt2d, FilterBank, Matrix};
use dwt_mimd::CheckpointCodec;
use wserv::progressive::pyramid_max_abs_diff;
use wserv::sim::{
    run_chaos, run_closed_loop, run_sim, ClosedLoopConfig, ClosedLoopReport, CostModel,
    ProgressiveSim, SimReport,
};
use wserv::transport::Connector;
use wserv::{
    DecomposeRequest, DegradedPolicy, ElasticPolicy, MemListener, Priority, RejectKind,
    RemoteClient, RemoteConfig, RemoteMetrics, RemoteServer, RetryPolicy, ServeResult,
    ServiceConfig, ShardFaultPlan, SupervisorPolicy, TcpAcceptor, TcpConnector, WireDir,
    WireFaultPlan,
};

const SEED: u64 = 1996; // the paper's year; any fixed seed works

/// SplitMix64 — the same generator `paragon::faults` seeds from.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        // Strictly positive so ln() is finite.
        ((self.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64
    }
}

/// The tenant shape pool: sizes x banks x depths, sixteen plan shapes.
/// The CDF 5/3 and 9/7 entries compile to lifting-kernel plans, so the
/// cache and batch paths exercise both engine kinds under load.
fn shape_pool() -> Vec<(usize, FilterBank, usize)> {
    let haar = FilterBank::haar();
    let d4 = FilterBank::daubechies(4).expect("D4 exists");
    let cdf53 = FilterBank::cdf53();
    let cdf97 = FilterBank::cdf97();
    vec![
        (32, haar.clone(), 1),
        (32, haar.clone(), 2),
        (32, d4.clone(), 1),
        (32, d4.clone(), 2),
        (64, haar.clone(), 1),
        (64, haar, 2),
        (64, d4.clone(), 1),
        (64, d4, 2),
        (32, cdf53.clone(), 1),
        (32, cdf53.clone(), 2),
        (64, cdf53.clone(), 2),
        (96, cdf53, 3),
        (32, cdf97.clone(), 1),
        (64, cdf97.clone(), 2),
        (96, cdf97.clone(), 1),
        (128, cdf97, 3),
    ]
}

fn image(n: usize, salt: u64) -> Matrix {
    Matrix::from_fn(n, n, |r, c| {
        ((r as u64 * 31 + c as u64 * 17 + salt * 7) % 61) as f64 - 30.0
    })
}

/// Seeded open-loop stream: exponential inter-arrivals at `rate_hz`,
/// shapes uniform over the pool, priorities mixed, and a tight deadline
/// on part of the interactive class so the expiry path is exercised.
fn stream(n_reqs: usize, rate_hz: f64) -> Vec<(f64, DecomposeRequest)> {
    let pool = shape_pool();
    let mut rng = SplitMix64(SEED);
    let mut t = 0.0;
    let mut out = Vec::with_capacity(n_reqs);
    for _ in 0..n_reqs {
        t += -rng.unit_f64().ln() / rate_hz;
        let (size, bank, levels) = pool[(rng.next_u64() % pool.len() as u64) as usize].clone();
        let priority = Priority::ALL[(rng.next_u64() % 3) as usize];
        let mut req = DecomposeRequest::new(image(size, rng.next_u64() % 13), bank, levels)
            .with_priority(priority);
        // Loose enough not to censor the p95 comparison at saturation,
        // tight enough that deep overload still trips the expiry path.
        if priority == Priority::Interactive && rng.next_u64().is_multiple_of(2) {
            req = req.with_deadline(t + 5e-3);
        }
        out.push((t, req));
    }
    out
}

struct Cell {
    shards: usize,
    cache_capacity: usize,
    max_batch: usize,
    rate_hz: f64,
    report: SimReport,
}

impl Cell {
    fn p_ms(&self, q: f64) -> f64 {
        self.report.metrics.latency_quantile(q) * 1e3
    }

    fn json(&self) -> String {
        let m = &self.report.metrics;
        let budget = m.budget_report().expect("at least one shard");
        format!(
            concat!(
                "{{\"shards\": {}, \"cache_capacity\": {}, \"max_batch\": {}, ",
                "\"rate_hz\": {}, \"accepted\": {}, \"completed\": {}, ",
                "\"rejected_queue_full\": {}, \"rejected_shed\": {}, ",
                "\"rejected_deadline\": {}, \"cache_hit_rate\": {:.4}, ",
                "\"mean_batch_occupancy\": {:.4}, \"p50_ms\": {:.6}, ",
                "\"p95_ms\": {:.6}, \"p99_ms\": {:.6}, \"throughput_hz\": {:.3}, ",
                "\"makespan_s\": {:.9}, \"useful_pct\": {:.3}, \"imbalance_pct\": {:.3}}}"
            ),
            self.shards,
            self.cache_capacity,
            self.max_batch,
            self.rate_hz,
            m.accepted(),
            m.completed(),
            m.rejected(RejectKind::QueueFull),
            m.rejected(RejectKind::Shed),
            m.rejected(RejectKind::DeadlineExpired),
            m.cache_hit_rate(),
            m.mean_batch_occupancy(),
            self.p_ms(0.50),
            self.p_ms(0.95),
            self.p_ms(0.99),
            self.report.throughput(),
            self.report.makespan_s,
            budget.useful_pct(),
            budget.imbalance_pct(),
        )
    }
}

fn sweep(n_reqs: usize, shard_grid: &[usize], rates: &[f64]) -> Vec<Cell> {
    let cost = CostModel::default();
    let mut cells = Vec::new();
    for &shards in shard_grid {
        for &(cache_capacity, max_batch) in &[(16usize, 8usize), (0, 8), (16, 1), (0, 1)] {
            for &rate_hz in rates {
                let cfg = ServiceConfig::default()
                    .with_shards(shards)
                    .with_queue_capacity(64)
                    .with_cache_capacity(cache_capacity)
                    .with_max_batch(max_batch);
                let report = run_sim(&cfg, &cost, stream(n_reqs, rate_hz));
                let cell = Cell {
                    shards,
                    cache_capacity,
                    max_batch,
                    rate_hz,
                    report,
                };
                eprintln!(
                    "shards={shards} cache={cache_capacity:<2} batch={max_batch} \
                     rate={rate_hz:<8} p95={:.3}ms tput={:.0}/s hit={:.2}",
                    cell.p_ms(0.95),
                    cell.report.throughput(),
                    cell.report.metrics.cache_hit_rate()
                );
                cells.push(cell);
            }
        }
    }
    cells
}

/// Seeded chaos scenarios for the fault-tolerance sweep: every plan is a
/// pure function of `SEED`, so the rows reproduce byte for byte. The
/// grid covers each injected fault kind in isolation plus one combined
/// brownout, all on the same three-shard service.
fn chaos_scenarios() -> Vec<(&'static str, ServiceConfig)> {
    let base = || {
        ServiceConfig::default()
            .with_shards(3)
            .with_queue_capacity(64)
            .with_cache_capacity(16)
            .with_max_batch(4)
    };
    vec![
        ("fault_free", base()),
        (
            "worker_panic",
            base().with_faults(ShardFaultPlan::seeded(SEED).with_worker_panic(0, 3)),
        ),
        (
            "shard_crash_failover",
            base()
                .with_faults(ShardFaultPlan::seeded(SEED).with_shard_crash(0, 0))
                .with_supervisor(SupervisorPolicy {
                    max_restarts: 2,
                    ..SupervisorPolicy::default()
                }),
        ),
        (
            "poison_quarantine",
            base().with_faults(ShardFaultPlan::seeded(SEED).with_poison_rate(0.05)),
        ),
        (
            "stall_window",
            base().with_faults(ShardFaultPlan::seeded(SEED).with_stall(1, 3.0, 0, 40)),
        ),
        (
            "degraded_brownout",
            base()
                .with_faults(ShardFaultPlan::seeded(SEED).with_shard_crash(2, 0))
                .with_supervisor(SupervisorPolicy {
                    max_restarts: 1,
                    ..SupervisorPolicy::default()
                })
                .with_degraded(DegradedPolicy::default()),
        ),
        (
            "combined",
            base()
                .with_faults(
                    ShardFaultPlan::seeded(SEED)
                        .with_shard_crash(0, 2)
                        .with_worker_panic(1, 5)
                        .with_stall(2, 2.0, 0, 30)
                        .with_poison_rate(0.02),
                )
                .with_supervisor(SupervisorPolicy {
                    max_restarts: 1,
                    ..SupervisorPolicy::default()
                })
                .with_degraded(DegradedPolicy::default()),
        ),
    ]
}

struct ChaosCell {
    scenario: &'static str,
    shards: usize,
    rate_hz: f64,
    requests: usize,
    report: SimReport,
}

impl ChaosCell {
    /// The chaos invariant, asserted on every generated row: each
    /// submitted request resolves exactly once (completed, typed
    /// rejection, or bounded-error degraded response) — injected crashes
    /// lose nothing.
    fn assert_nothing_lost(&self) {
        let m = &self.report.metrics;
        assert_eq!(
            self.report.outcomes.len(),
            self.requests,
            "{}: every request must have a terminal outcome",
            self.scenario
        );
        let ok = self.report.outcomes.iter().filter(|o| o.is_ok()).count() as u64;
        assert_eq!(
            ok,
            m.completed(),
            "{}: completions must match Ok outcomes",
            self.scenario
        );
        let rejected: u64 = RejectKind::ALL.iter().map(|&k| m.rejected(k)).sum();
        assert_eq!(
            ok + rejected,
            self.requests as u64,
            "{}: lost requests (completed {} + rejected {} != submitted {})",
            self.scenario,
            ok,
            rejected,
            self.requests
        );
        let degraded = self
            .report
            .outcomes
            .iter()
            .filter(|o| o.as_ref().is_ok_and(|r| r.degraded))
            .count() as u64;
        assert_eq!(
            degraded,
            m.degraded_served(),
            "{}: degraded counter must match degraded Ok outcomes",
            self.scenario
        );
    }

    fn json(&self) -> String {
        let m = &self.report.metrics;
        let budget = m.budget_report().expect("at least one shard");
        let failed: Vec<String> = m.failed_shards().iter().map(|s| s.to_string()).collect();
        let rejected_total: u64 = RejectKind::ALL.iter().map(|&k| m.rejected(k)).sum();
        format!(
            concat!(
                "{{\"scenario\": \"{}\", \"shards\": {}, \"rate_hz\": {}, ",
                "\"requests\": {}, \"completed\": {}, \"degraded_served\": {}, ",
                "\"restarts\": {}, \"requeued\": {}, \"quarantined\": {}, ",
                "\"rejected_total\": {}, ",
                "\"rejected_shard_failed\": {}, \"rejected_requeued\": {}, ",
                "\"rejected_deadline\": {}, \"failed_shards\": [{}], ",
                "\"p95_ms\": {:.6}, \"throughput_hz\": {:.3}, ",
                "\"makespan_s\": {:.9}, \"fault_recovery_pct\": {:.3}}}"
            ),
            self.scenario,
            self.shards,
            self.rate_hz,
            self.requests,
            m.completed(),
            m.degraded_served(),
            m.restarts(),
            m.requeued(),
            m.quarantined(),
            rejected_total,
            m.rejected(RejectKind::ShardFailed),
            m.rejected(RejectKind::Requeued),
            m.rejected(RejectKind::DeadlineExpired),
            failed.join(", "),
            m.latency_quantile(0.95) * 1e3,
            self.report.throughput(),
            self.report.makespan_s,
            budget.fault_pct(),
        )
    }
}

fn chaos_sweep(n_reqs: usize, rate_hz: f64) -> Vec<ChaosCell> {
    let cost = CostModel::default();
    let mut cells = Vec::new();
    for (scenario, cfg) in chaos_scenarios() {
        let report = run_chaos(&cfg, &cost, stream(n_reqs, rate_hz));
        let cell = ChaosCell {
            scenario,
            shards: 3,
            rate_hz,
            requests: n_reqs,
            report,
        };
        cell.assert_nothing_lost();
        let m = &cell.report.metrics;
        eprintln!(
            "chaos {scenario:<20} completed={:<4} degraded={:<3} restarts={} \
             requeued={:<3} failed_shards={:?}",
            m.completed(),
            m.degraded_served(),
            m.restarts(),
            m.requeued(),
            m.failed_shards()
        );
        cells.push(cell);
    }
    cells
}

/// Spot checks that the chaos grid exercises what it claims to: the
/// failover scenario loses a shard yet strands nothing, and the
/// brownout scenario actually serves bounded-error responses.
fn assert_chaos_coverage(cells: &[ChaosCell]) {
    let find = |name: &str| -> &ChaosCell {
        cells
            .iter()
            .find(|c| c.scenario == name)
            .expect("scenario present in the chaos grid")
    };
    let fault_free = find("fault_free");
    assert_eq!(
        fault_free.report.metrics.failed_shards(),
        Vec::<usize>::new()
    );
    assert_eq!(fault_free.report.metrics.restarts(), 0);
    let failover = find("shard_crash_failover");
    assert!(
        !failover.report.metrics.failed_shards().is_empty(),
        "crash scenario must exhaust the restart budget"
    );
    assert!(failover.report.metrics.restarts() > 0);
    let brownout = find("degraded_brownout");
    assert!(
        brownout.report.metrics.degraded_served() > 0,
        "brownout scenario must serve degraded responses"
    );
    let panicked = find("worker_panic");
    assert!(panicked.report.metrics.restarts() > 0);
    assert_eq!(panicked.report.metrics.failed_shards(), Vec::<usize>::new());
    let poisoned = find("poison_quarantine");
    assert!(poisoned.report.metrics.quarantined() > 0);
}

/// Per-client request streams for the closed-loop sweeps, flattened
/// `client * reqs_per_client + k`. Deadline-free on purpose: the live
/// comparison needs outcomes that do not depend on wall-clock timing,
/// so the shim and TCP resolution books can be asserted identical.
fn closed_requests(clients: usize, reqs_per_client: usize) -> Vec<DecomposeRequest> {
    let pool = shape_pool();
    let mut out = Vec::with_capacity(clients * reqs_per_client);
    for c in 0..clients {
        let mut rng = SplitMix64(SEED ^ (c as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        for _ in 0..reqs_per_client {
            let (size, bank, levels) = pool[(rng.next_u64() % pool.len() as u64) as usize].clone();
            let priority = Priority::ALL[(rng.next_u64() % 3) as usize];
            out.push(
                DecomposeRequest::new(image(size, rng.next_u64() % 13), bank, levels)
                    .with_priority(priority),
            );
        }
    }
    out
}

/// The literal wire-fault schedule shared by the deterministic sweep
/// and the live drivers. Coordinates are `(conn = client id, dir,
/// cumulative frame index)`: frame 0 each way is the handshake, so the
/// client-to-server reset at frame 2 kills client 0's second request
/// mid-frame, and the server-to-client bit flip at frame 2 corrupts
/// client 2's second response — which the client recovers via
/// resubmit + dedup replay, never re-execution.
fn wire_chaos_plan() -> WireFaultPlan {
    WireFaultPlan::seeded(SEED)
        .with_reset(0, WireDir::ClientToServer, 2)
        .with_truncate(1, WireDir::ClientToServer, 4)
        .with_bitflip(2, WireDir::ServerToClient, 2)
        .with_stall(1, WireDir::ServerToClient, 3, 4e-3)
}

/// The shard-fault schedule for the failover-under-load scenarios:
/// shard 0's worker is killed once mid-load (supervised restart),
/// shard 1 crashes permanently and fails over to the survivors.
fn kill_plan() -> ShardFaultPlan {
    ShardFaultPlan::seeded(SEED)
        .with_worker_panic(0, 1)
        .with_shard_crash(1, 2)
}

/// Base service shape for every closed-loop scenario: three shards so
/// one can die and two survive, a queue deep enough that closed-loop
/// admission never rejects.
fn closed_loop_service(faults: ShardFaultPlan) -> ServiceConfig {
    ServiceConfig::default()
        .with_shards(3)
        .with_queue_capacity(64)
        .with_cache_capacity(16)
        .with_max_batch(4)
        .with_faults(faults)
        .with_supervisor(SupervisorPolicy {
            max_restarts: 1,
            ..SupervisorPolicy::default()
        })
}

/// Deterministic closed-loop transport scenarios.
fn transport_scenarios() -> Vec<(&'static str, ServiceConfig, WireFaultPlan)> {
    vec![
        (
            "clean_wire",
            closed_loop_service(ShardFaultPlan::none()),
            WireFaultPlan::none(),
        ),
        (
            "wire_chaos",
            closed_loop_service(ShardFaultPlan::none()),
            wire_chaos_plan(),
        ),
        (
            "flip_rate",
            closed_loop_service(ShardFaultPlan::none()),
            WireFaultPlan::seeded(SEED).with_flip_rate(0.01),
        ),
        (
            "failover_under_load",
            closed_loop_service(kill_plan()),
            wire_chaos_plan(),
        ),
    ]
}

struct TransportCell {
    scenario: &'static str,
    clients: usize,
    reqs_per_client: usize,
    report: ClosedLoopReport,
}

impl TransportCell {
    fn requests(&self) -> usize {
        self.clients * self.reqs_per_client
    }

    /// The transport exactly-once invariant: every request terminates
    /// at its client exactly once, and with the literal fault plans
    /// and default retry budget nothing is lost to the wire either.
    fn assert_nothing_lost(&self) {
        assert_eq!(
            self.report.outcomes.len(),
            self.requests(),
            "{}: every request must terminate at its client",
            self.scenario
        );
        let delivered = self.report.outcomes.iter().filter(|o| o.is_ok()).count();
        let given_up = self.requests() - delivered;
        assert_eq!(
            given_up, 0,
            "{}: the retry budget must cover the fault plan (lost {given_up})",
            self.scenario
        );
        // Deadline-free closed-loop traffic under a shallow queue never
        // rejects: every delivered outcome is a served response.
        let served = self
            .report
            .outcomes
            .iter()
            .filter(|o| matches!(o, Ok(Ok(_))))
            .count();
        assert_eq!(
            served,
            self.requests(),
            "{}: closed-loop requests must all serve",
            self.scenario
        );
    }

    fn p_ms(&self, q: f64) -> f64 {
        self.report.latency.quantile(q) * 1e3
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"scenario\": \"{}\", \"clients\": {}, \"reqs_per_client\": {}, ",
                "\"delivered\": {}, \"retries\": {}, \"replays\": {}, \"frames\": {}, ",
                "\"p50_ms\": {:.6}, \"p95_ms\": {:.6}, \"p99_ms\": {:.6}, ",
                "\"comm_ms\": {:.6}, \"fault_recovery_ms\": {:.6}, ",
                "\"throughput_hz\": {:.3}, \"makespan_s\": {:.9}}}"
            ),
            self.scenario,
            self.clients,
            self.reqs_per_client,
            self.report.outcomes.iter().filter(|o| o.is_ok()).count(),
            self.report.retries,
            self.report.replays,
            self.report.frames,
            self.p_ms(0.50),
            self.p_ms(0.95),
            self.p_ms(0.99),
            self.report.comm_s * 1e3,
            self.report.fault_recovery_s * 1e3,
            self.report.throughput(),
            self.report.makespan_s,
        )
    }
}

fn transport_sweep(clients: usize, reqs_per_client: usize) -> Vec<TransportCell> {
    let cost = CostModel::default();
    let mut cells = Vec::new();
    for (scenario, cfg, wire_faults) in transport_scenarios() {
        let cl = ClosedLoopConfig {
            clients,
            reqs_per_client,
            wire_faults,
            ..ClosedLoopConfig::default()
        };
        let report = run_closed_loop(&cfg, &cost, &cl, closed_requests(clients, reqs_per_client));
        let cell = TransportCell {
            scenario,
            clients,
            reqs_per_client,
            report,
        };
        cell.assert_nothing_lost();
        eprintln!(
            "transport {scenario:<20} delivered={:<3} retries={:<2} replays={:<2} \
             frames={:<4} p99={:.3}ms comm={:.3}ms",
            cell.report.outcomes.iter().filter(|o| o.is_ok()).count(),
            cell.report.retries,
            cell.report.replays,
            cell.report.frames,
            cell.p_ms(0.99),
            cell.report.comm_s * 1e3,
        );
        cells.push(cell);
    }
    cells
}

/// Spot checks that the transport grid exercises what it claims to.
fn assert_transport_coverage(cells: &[TransportCell]) {
    let find = |name: &str| -> &TransportCell {
        cells
            .iter()
            .find(|c| c.scenario == name)
            .expect("scenario present in the transport grid")
    };
    let clean = find("clean_wire");
    assert_eq!(clean.report.retries, 0, "a clean wire never retries");
    assert_eq!(clean.report.replays, 0);
    assert!(clean.report.comm_s > 0.0, "framing cost must be charged");
    let chaos = find("wire_chaos");
    assert!(chaos.report.retries > 0, "wire chaos must force retries");
    assert!(
        chaos.report.replays > 0,
        "a response-path fault must recover via dedup replay"
    );
    assert!(
        chaos.report.fault_recovery_s > 0.0,
        "fault handling must be charged to the FaultRecovery lane"
    );
    let failover = find("failover_under_load");
    assert!(
        !failover.report.metrics.failed_shards().is_empty(),
        "the failover scenario must actually lose a shard"
    );
    assert!(failover.report.metrics.restarts() > 0);
    assert!(
        failover.p_ms(0.99) >= clean.p_ms(0.99),
        "killing workers mid-load cannot improve the p99 tail"
    );
}

// ---------------------------------------------------------------------
// Progressive delivery: bytes-to-tolerance vs monolithic
// ---------------------------------------------------------------------

/// The detail-plane codec every lossy progressive scenario shares:
/// `threshold + step / 2 = 0.5` of absolute per-coefficient tolerance.
fn lossy_codec() -> CheckpointCodec {
    CheckpointCodec::WaveletQuant {
        threshold: 0.25,
        step: 0.5,
    }
}

/// Deterministic progressive scenarios over the same closed-loop
/// workload: a monolithic baseline, lossless streaming (must stay
/// bitwise), lossy streaming (must shrink the wire), tolerance-met
/// cancellation (must shrink it further), cancellation under the
/// literal wire-chaos plan (must stay exactly-once), and a hard byte
/// budget (must bound the wire regardless of tolerance).
fn progressive_scenarios() -> Vec<(&'static str, Option<ProgressiveSim>, WireFaultPlan)> {
    vec![
        ("monolithic", None, WireFaultPlan::none()),
        (
            "progressive_lossless",
            Some(ProgressiveSim {
                codec: CheckpointCodec::Raw,
                tolerance: None,
                byte_budget: None,
            }),
            WireFaultPlan::none(),
        ),
        (
            "progressive_lossy",
            Some(ProgressiveSim {
                codec: lossy_codec(),
                tolerance: None,
                byte_budget: None,
            }),
            WireFaultPlan::none(),
        ),
        (
            "tolerance_cancel",
            Some(ProgressiveSim {
                codec: lossy_codec(),
                tolerance: Some(30.0),
                byte_budget: None,
            }),
            WireFaultPlan::none(),
        ),
        (
            "tolerance_cancel_chaos",
            Some(ProgressiveSim {
                codec: lossy_codec(),
                tolerance: Some(30.0),
                byte_budget: None,
            }),
            wire_chaos_plan(),
        ),
        (
            "byte_budget",
            Some(ProgressiveSim {
                codec: lossy_codec(),
                tolerance: None,
                byte_budget: Some(4096),
            }),
            WireFaultPlan::none(),
        ),
    ]
}

struct ProgressiveCell {
    scenario: &'static str,
    clients: usize,
    reqs_per_client: usize,
    progressive: Option<ProgressiveSim>,
    report: ClosedLoopReport,
}

impl ProgressiveCell {
    fn requests(&self) -> usize {
        self.clients * self.reqs_per_client
    }

    /// Largest reported error bound across delivered responses.
    fn max_error_bound(&self) -> f64 {
        self.report
            .outcomes
            .iter()
            .filter_map(|o| match o {
                Ok(Ok(r)) => Some(r.error_bound),
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    fn savings_pct(&self) -> f64 {
        if self.report.monolithic_bytes == 0 {
            return 0.0;
        }
        (1.0 - self.report.response_bytes as f64 / self.report.monolithic_bytes as f64) * 100.0
    }

    fn p_ms(&self, q: f64) -> f64 {
        self.report.latency.quantile(q) * 1e3
    }

    fn json(&self) -> String {
        let (threshold, step, tolerance, budget) = match &self.progressive {
            None => (0.0, 0.0, "null".to_string(), "null".to_string()),
            Some(p) => {
                let (t, s) = match p.codec {
                    CheckpointCodec::Raw => (0.0, 0.0),
                    CheckpointCodec::WaveletQuant { threshold, step } => (threshold, step),
                };
                (
                    t,
                    s,
                    p.tolerance.map_or("null".into(), |v| format!("{v}")),
                    p.byte_budget.map_or("null".into(), |v| format!("{v}")),
                )
            }
        };
        format!(
            concat!(
                "{{\"scenario\": \"{}\", \"clients\": {}, \"reqs_per_client\": {}, ",
                "\"delivered\": {}, \"threshold\": {}, \"step\": {}, ",
                "\"tolerance\": {}, \"byte_budget\": {}, \"planes\": {}, \"cancels\": {}, ",
                "\"budget_stops\": {}, ",
                "\"response_bytes\": {}, \"monolithic_bytes\": {}, ",
                "\"savings_pct\": {:.3}, \"max_error_bound\": {:.6}, ",
                "\"p50_ms\": {:.6}, \"p95_ms\": {:.6}, \"p99_ms\": {:.6}, ",
                "\"comm_ms\": {:.6}, \"throughput_hz\": {:.3}, \"makespan_s\": {:.9}}}"
            ),
            self.scenario,
            self.clients,
            self.reqs_per_client,
            self.report.outcomes.iter().filter(|o| o.is_ok()).count(),
            threshold,
            step,
            tolerance,
            budget,
            self.report.planes,
            self.report.cancels,
            self.report.budget_stops,
            self.report.response_bytes,
            self.report.monolithic_bytes,
            self.savings_pct(),
            self.max_error_bound(),
            self.p_ms(0.50),
            self.p_ms(0.95),
            self.p_ms(0.99),
            self.report.comm_s * 1e3,
            self.report.throughput(),
            self.report.makespan_s,
        )
    }
}

fn progressive_sweep(clients: usize, reqs_per_client: usize) -> Vec<ProgressiveCell> {
    let cost = CostModel::default();
    let mut cells = Vec::new();
    for (scenario, progressive, wire_faults) in progressive_scenarios() {
        let cl = ClosedLoopConfig {
            clients,
            reqs_per_client,
            wire_faults,
            progressive,
            ..ClosedLoopConfig::default()
        };
        let report = run_closed_loop(
            &closed_loop_service(ShardFaultPlan::none()),
            &cost,
            &cl,
            closed_requests(clients, reqs_per_client),
        );
        let cell = ProgressiveCell {
            scenario,
            clients,
            reqs_per_client,
            progressive,
            report,
        };
        eprintln!(
            "progressive {scenario:<23} delivered={:<3} planes={:<4} cancels={:<3} \
             resp_B={:<7} mono_B={:<7} savings={:.1}% bound={:.3}",
            cell.report.outcomes.iter().filter(|o| o.is_ok()).count(),
            cell.report.planes,
            cell.report.cancels,
            cell.report.response_bytes,
            cell.report.monolithic_bytes,
            cell.savings_pct(),
            cell.max_error_bound(),
        );
        cells.push(cell);
    }
    cells
}

/// The progressive acceptance checks, on every generated grid:
///
/// * nothing is ever lost: every request terminates at its client, in
///   every scenario, cancels and chaos included;
/// * lossless streaming is *bitwise*: each delivered pyramid equals the
///   monolithic baseline's for the same request, with a zero bound;
/// * every reported error bound is honest against the local engine
///   oracle (`actual max-abs error <= bound`);
/// * lossy streaming beats the monolithic counterfactual on response
///   bytes, and tolerance-met cancellation beats plain lossy.
fn assert_progressive_coverage(cells: &[ProgressiveCell]) {
    let find = |name: &str| -> &ProgressiveCell {
        cells
            .iter()
            .find(|c| c.scenario == name)
            .expect("scenario present in the progressive grid")
    };
    for cell in cells {
        assert_eq!(
            cell.report.outcomes.len(),
            cell.requests(),
            "{}: every request must terminate at its client",
            cell.scenario
        );
        let served = cell
            .report
            .outcomes
            .iter()
            .filter(|o| matches!(o, Ok(Ok(_))))
            .count();
        assert_eq!(
            served,
            cell.requests(),
            "{}: closed-loop requests must all serve",
            cell.scenario
        );
    }

    let mono = find("monolithic");
    assert_eq!(mono.report.planes, 0);
    assert_eq!(mono.report.cancels, 0);

    // Lossless streaming: bitwise against the monolithic baseline.
    let lossless = find("progressive_lossless");
    assert!(lossless.report.planes > 0, "responses must actually stream");
    assert_eq!(lossless.report.cancels, 0, "no tolerance, no cancels");
    for (i, (a, b)) in mono
        .report
        .outcomes
        .iter()
        .zip(lossless.report.outcomes.iter())
        .enumerate()
    {
        let (Ok(Ok(ra)), Ok(Ok(rb))) = (a, b) else {
            panic!("request {i} must serve in both runs");
        };
        assert_eq!(
            ra.pyramid, rb.pyramid,
            "request {i}: lossless streaming must be bitwise"
        );
        assert_eq!(rb.error_bound, 0.0);
    }

    // Every reported bound is honest against the engine oracle.
    let requests = closed_requests(mono.clients, mono.reqs_per_client);
    for cell in cells {
        for (req, out) in requests.iter().zip(cell.report.outcomes.iter()) {
            let Ok(Ok(resp)) = out else { continue };
            let oracle = dwt2d::decompose(&req.image, &req.bank, req.levels, req.mode)
                .expect("pool geometry is valid");
            let actual =
                pyramid_max_abs_diff(&resp.pyramid, &oracle).expect("geometry matches the oracle");
            assert!(
                actual <= resp.error_bound,
                "{}: actual error {actual} exceeds the reported bound {}",
                cell.scenario,
                resp.error_bound
            );
        }
    }

    // Bytes-to-tolerance: quantization shrinks the wire, cancellation
    // shrinks it further, and the tolerance is respected.
    let lossy = find("progressive_lossy");
    assert!(
        lossy.report.response_bytes < lossy.report.monolithic_bytes,
        "lossy streaming must beat the monolithic counterfactual \
         ({} vs {} bytes)",
        lossy.report.response_bytes,
        lossy.report.monolithic_bytes
    );
    let cancel = find("tolerance_cancel");
    assert!(
        cancel.report.cancels > 0,
        "a 30.0 tolerance on this imagery must cancel at least once"
    );
    assert!(
        cancel.report.response_bytes < lossy.report.response_bytes,
        "cancellation must save bytes over reading every plane \
         ({} vs {} bytes)",
        cancel.report.response_bytes,
        lossy.report.response_bytes
    );
    let chaos = find("tolerance_cancel_chaos");
    assert!(
        chaos.report.retries > 0,
        "the chaos plan must force at least one retry"
    );
    // The byte budget is the second cancel predicate: every delivery
    // still terminates, the budget cuts are surfaced, and the wire
    // carries less than reading every plane would.
    let budget = find("byte_budget");
    assert!(
        budget.report.budget_stops > 0,
        "a 4 KiB budget on this imagery must stop at least one sequence"
    );
    assert_eq!(
        budget.report.budget_stops, budget.report.cancels,
        "with no tolerance every cancel here is a budget stop"
    );
    assert!(
        budget.report.response_bytes < lossy.report.response_bytes,
        "a byte budget must save wire over reading every plane \
         ({} vs {} bytes)",
        budget.report.response_bytes,
        lossy.report.response_bytes
    );

    eprintln!(
        "progressive acceptance: lossless bitwise over {} responses, \
         lossy saves {:.1}%, cancel saves {:.1}%",
        mono.requests(),
        lossy.savings_pct(),
        cancel.savings_pct(),
    );
}

// ---------------------------------------------------------------------
// Live closed-loop mode: real server, real sockets, real worker kills
// ---------------------------------------------------------------------

/// Stable label of a client-observed service outcome, the currency of
/// the cross-transport resolution-book comparison.
fn outcome_label(res: &ServeResult) -> String {
    match res {
        Ok(r) if r.degraded => "ok_degraded".into(),
        Ok(_) => "ok".into(),
        Err(rej) => rej.kind().label().into(),
    }
}

struct LiveRun {
    /// `(client, request index, outcome label)`, sorted — the
    /// resolution book as the clients observed it.
    book: Vec<(u64, u64, String)>,
    /// Client-observed wall-clock latencies, seconds.
    latency: wserv::Histogram,
    metrics: RemoteMetrics,
    client_retries: u64,
    /// Wall seconds of serialization + framing across both sides.
    comm_s: f64,
    elapsed_s: f64,
}

/// Drive `clients` real closed-loop clients against a `RemoteServer`
/// over the chosen transport, with the service's `ShardFaultPlan`
/// killing real worker threads mid-load and `wire` faulting both
/// directions of every connection.
fn live_closed_loop(
    tcp: bool,
    clients: usize,
    reqs_per_client: usize,
    service: ServiceConfig,
    wire: WireFaultPlan,
) -> LiveRun {
    let tick = Duration::from_millis(1);
    let remote = RemoteConfig {
        wire_faults: wire.clone(),
        ..RemoteConfig::default()
    };
    let (server, dial): (
        RemoteServer,
        Box<dyn Fn() -> Box<dyn Connector> + Send + Sync>,
    ) = if tcp {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0", tick).expect("bind localhost");
        let addr = acceptor.local_addr();
        (
            RemoteServer::start(service, remote, Box::new(acceptor)).expect("server starts"),
            Box::new(move || Box::new(TcpConnector { addr, tick })),
        )
    } else {
        let listener = MemListener::new(1 << 16, tick);
        let peer = listener.clone();
        (
            RemoteServer::start(service, remote, Box::new(listener)).expect("server starts"),
            Box::new(move || Box::new(peer.clone())),
        )
    };

    let requests = closed_requests(clients, reqs_per_client);
    let started = Instant::now();
    let mut handles = Vec::with_capacity(clients);
    for c in 0..clients {
        let stream: Vec<DecomposeRequest> =
            requests[c * reqs_per_client..(c + 1) * reqs_per_client].to_vec();
        let connector = dial();
        let plan = wire.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = RemoteClient::new(connector, c as u64)
                .with_faults(plan)
                .with_retry(RetryPolicy::default())
                .with_response_timeout(Duration::from_secs(10));
            let mut lat = Vec::with_capacity(stream.len());
            let mut book = Vec::with_capacity(stream.len());
            for (k, req) in stream.iter().enumerate() {
                let t0 = Instant::now();
                let res = client
                    .call(req)
                    .expect("the retry budget covers the fault plan");
                lat.push(t0.elapsed().as_secs_f64());
                book.push((c as u64, k as u64, outcome_label(&res)));
            }
            client.goodbye();
            (lat, book, client.transport, client.retries)
        }));
    }
    let mut latency = wserv::Histogram::default();
    let mut book = Vec::new();
    let mut client_retries = 0u64;
    let mut comm_s = 0.0;
    for h in handles {
        let (lat, b, transport, retries) = h.join().expect("client threads never panic");
        for v in lat {
            latency.record(v);
        }
        book.extend(b);
        client_retries += retries;
        comm_s += transport.ser_s;
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    let metrics = server.shutdown().expect("graceful drain succeeds");
    comm_s += metrics.transport.ser_s;
    book.sort();
    LiveRun {
        book,
        latency,
        metrics,
        client_retries,
        comm_s,
        elapsed_s,
    }
}

/// Run the live closed-loop comparison over both transports, assert
/// its invariants, and return the `transport_live` JSON rows (outside
/// the byte-compare: these are wall-clock numbers).
fn live_rows(clients: usize, reqs_per_client: usize, prediction: &ClosedLoopReport) -> String {
    let total = (clients * reqs_per_client) as u64;
    let mut rows = Vec::new();
    let mut books = Vec::new();
    for (transport, tcp) in [("shim", false), ("tcp", true)] {
        let run = live_closed_loop(
            tcp,
            clients,
            reqs_per_client,
            closed_loop_service(kill_plan()),
            wire_chaos_plan(),
        );
        // Exactly-once under real worker kills: the service resolved
        // every distinct request once — retried ids were answered from
        // the resolution book, not re-executed.
        assert_eq!(
            run.book.len() as u64,
            total,
            "{transport}: every request must terminate at its client"
        );
        assert_eq!(
            run.metrics.service.completed(),
            total,
            "{transport}: deadline-free closed-loop requests must all serve exactly once"
        );
        assert!(
            run.book.iter().all(|(_, _, label)| label == "ok"),
            "{transport}: failover must be lossless for closed-loop traffic"
        );
        assert!(
            run.metrics.transport.dedup_replays >= 1,
            "{transport}: the response-path fault must be recovered via dedup replay"
        );
        assert!(
            run.metrics.service.restarts() > 0,
            "{transport}: the worker-kill plan must actually kill a worker"
        );
        assert!(
            !run.metrics.service.failed_shards().is_empty(),
            "{transport}: the crash plan must actually fail a shard over"
        );
        eprintln!(
            "live {transport:<4} p99={:.3}ms (sim predicts {:.3}ms) replays={} \
             resets={} aborted={} retries={} elapsed={:.3}s",
            run.latency.quantile(0.99) * 1e3,
            prediction.latency.quantile(0.99) * 1e3,
            run.metrics.transport.dedup_replays,
            run.metrics.transport.conn_reset,
            run.metrics.transport.conn_aborted,
            run.client_retries,
            run.elapsed_s,
        );
        rows.push(format!(
            concat!(
                "{{\"transport\": \"{}\", \"scenario\": \"failover_under_load\", ",
                "\"clients\": {}, \"reqs_per_client\": {}, \"completed\": {}, ",
                "\"p50_ms\": {:.6}, \"p95_ms\": {:.6}, \"p99_ms\": {:.6}, ",
                "\"sim_p50_ms\": {:.6}, \"sim_p95_ms\": {:.6}, \"sim_p99_ms\": {:.6}, ",
                "\"comm_ms\": {:.6}, \"dedup_replays\": {}, \"conn_reset\": {}, ",
                "\"conn_aborted\": {}, \"client_retries\": {}, \"restarts\": {}, ",
                "\"failed_shards\": {}, \"elapsed_s\": {:.6}}}"
            ),
            transport,
            clients,
            reqs_per_client,
            run.metrics.service.completed(),
            run.latency.quantile(0.50) * 1e3,
            run.latency.quantile(0.95) * 1e3,
            run.latency.quantile(0.99) * 1e3,
            prediction.latency.quantile(0.50) * 1e3,
            prediction.latency.quantile(0.95) * 1e3,
            prediction.latency.quantile(0.99) * 1e3,
            run.comm_s * 1e3,
            run.metrics.transport.dedup_replays,
            run.metrics.transport.conn_reset,
            run.metrics.transport.conn_aborted,
            run.client_retries,
            run.metrics.service.restarts(),
            run.metrics.service.failed_shards().len(),
            run.elapsed_s,
        ));
        books.push(run.book);
    }
    assert_eq!(
        books[0], books[1],
        "shim and TCP must produce identical resolution books for the same seed"
    );
    let mut out = String::new();
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    ");
        out.push_str(r);
        out.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    out
}

// ---------------------------------------------------------------------
// Live progressive mode: real streaming, real cancels, real sockets
// ---------------------------------------------------------------------

/// The live progressive comparison stream: deep CDF 9/7 decompositions
/// of a smooth field plus faint texture. The smoothness is the point —
/// the fine detail planes quantize to near-empty sparse frames (the
/// deterministic byte saving), while the sinusoid's energy keeps the
/// coarse planes above the client tolerance so real mid-sequence
/// cancels occur too.
fn progressive_live_requests(clients: usize, reqs_per_client: usize) -> Vec<DecomposeRequest> {
    let tau = std::f64::consts::TAU;
    let smooth = |n: usize, salt: u64| {
        Matrix::from_fn(n, n, |r, c| {
            40.0 * (tau * r as f64 / n as f64).sin() * (tau * c as f64 / n as f64).sin()
                + ((r as u64 * 13 + c as u64 * 7 + salt) % 7) as f64 * 0.03
        })
    };
    let mut out = Vec::with_capacity(clients * reqs_per_client);
    for c in 0..clients {
        for k in 0..reqs_per_client {
            out.push(DecomposeRequest::new(
                smooth(64, (c * reqs_per_client + k) as u64 % 13),
                FilterBank::cdf97(),
                3,
            ));
        }
    }
    out
}

struct ProgressiveLiveRun {
    completed: u64,
    /// Server-side bytes put on the wire (responses dominate).
    bytes_out: u64,
    planes_sent: u64,
    cancels: u64,
    partials: u64,
    max_bound: f64,
    latency: wserv::Histogram,
    elapsed_s: f64,
}

/// Drive the progressive comparison workload live: a clean wire (the
/// byte comparison must not be confounded by faulted re-sends), with
/// every delivered response checked against the local engine oracle.
fn progressive_live(
    tcp: bool,
    clients: usize,
    reqs_per_client: usize,
    tolerance: Option<f64>,
) -> ProgressiveLiveRun {
    let tick = Duration::from_millis(1);
    let remote = RemoteConfig {
        progressive: tolerance.is_some().then(lossy_codec),
        ..RemoteConfig::default()
    };
    let service = closed_loop_service(ShardFaultPlan::none());
    let (server, dial): (
        RemoteServer,
        Box<dyn Fn() -> Box<dyn Connector> + Send + Sync>,
    ) = if tcp {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0", tick).expect("bind localhost");
        let addr = acceptor.local_addr();
        (
            RemoteServer::start(service, remote, Box::new(acceptor)).expect("server starts"),
            Box::new(move || Box::new(TcpConnector { addr, tick })),
        )
    } else {
        let listener = MemListener::new(1 << 16, tick);
        let peer = listener.clone();
        (
            RemoteServer::start(service, remote, Box::new(listener)).expect("server starts"),
            Box::new(move || Box::new(peer.clone())),
        )
    };

    let requests = progressive_live_requests(clients, reqs_per_client);
    let started = Instant::now();
    let mut handles = Vec::with_capacity(clients);
    for c in 0..clients {
        let stream: Vec<DecomposeRequest> =
            requests[c * reqs_per_client..(c + 1) * reqs_per_client].to_vec();
        let connector = dial();
        handles.push(std::thread::spawn(move || {
            let mut client = RemoteClient::new(connector, c as u64)
                .with_response_timeout(Duration::from_secs(10));
            if let Some(t) = tolerance {
                client = client.with_tolerance(t);
            }
            let mut lat = Vec::with_capacity(stream.len());
            let mut max_bound = 0.0f64;
            for req in &stream {
                let t0 = Instant::now();
                let resp = client
                    .call(req)
                    .expect("clean wire")
                    .expect("deadline-free requests all serve");
                lat.push(t0.elapsed().as_secs_f64());
                // The reported bound must be honest against the local
                // engine oracle and, when a tolerance is set, met.
                let oracle = dwt2d::decompose(&req.image, &req.bank, req.levels, req.mode)
                    .expect("pool geometry is valid");
                let actual = pyramid_max_abs_diff(&resp.pyramid, &oracle)
                    .expect("geometry matches the oracle");
                assert!(
                    actual <= resp.error_bound || resp.error_bound == 0.0 && actual == 0.0,
                    "actual error {actual} exceeds the reported bound {}",
                    resp.error_bound
                );
                if let Some(t) = tolerance {
                    assert!(
                        resp.error_bound <= t,
                        "reported bound {} must meet the {t} tolerance",
                        resp.error_bound
                    );
                }
                max_bound = max_bound.max(resp.error_bound);
            }
            client.goodbye();
            (lat, max_bound, client.progressive)
        }));
    }
    let mut latency = wserv::Histogram::default();
    let mut max_bound = 0.0f64;
    let mut cancels = 0u64;
    let mut partials = 0u64;
    for h in handles {
        let (lat, mb, tally) = h.join().expect("client threads never panic");
        for v in lat {
            latency.record(v);
        }
        max_bound = max_bound.max(mb);
        cancels += tally.cancels;
        partials += tally.partial_responses;
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    let metrics = server.shutdown().expect("graceful drain succeeds");
    ProgressiveLiveRun {
        completed: metrics.service.completed(),
        bytes_out: metrics.transport.bytes_out,
        planes_sent: metrics.transport.planes_sent,
        cancels,
        partials,
        max_bound,
        latency,
        elapsed_s,
    }
}

/// Run the monolithic-vs-progressive live comparison over both
/// transports, assert the bytes-to-tolerance and bound-honesty
/// invariants, and return the `progressive_live` JSON rows.
fn progressive_live_rows(clients: usize, reqs_per_client: usize) -> String {
    let total = (clients * reqs_per_client) as u64;
    let tolerance = 30.0;
    let mut rows = Vec::new();
    for (transport, tcp) in [("shim", false), ("tcp", true)] {
        let mono = progressive_live(tcp, clients, reqs_per_client, None);
        let prog = progressive_live(tcp, clients, reqs_per_client, Some(tolerance));
        for run in [&mono, &prog] {
            assert_eq!(
                run.completed, total,
                "{transport}: every request must serve exactly once"
            );
        }
        assert_eq!(mono.planes_sent, 0, "{transport}: baseline is monolithic");
        assert!(
            prog.partials >= 1,
            "{transport}: the tolerance must cut at least one sequence short"
        );
        assert!(
            prog.bytes_out < mono.bytes_out,
            "{transport}: progressive-to-tolerance must beat monolithic bytes \
             ({} vs {})",
            prog.bytes_out,
            mono.bytes_out
        );
        eprintln!(
            "progressive live {transport:<4} mono_B={:<8} prog_B={:<8} savings={:.1}% \
             planes={} cancels={} bound={:.3} elapsed={:.3}s",
            mono.bytes_out,
            prog.bytes_out,
            (1.0 - prog.bytes_out as f64 / mono.bytes_out as f64) * 100.0,
            prog.planes_sent,
            prog.cancels,
            prog.max_bound,
            mono.elapsed_s + prog.elapsed_s,
        );
        for (scenario, run) in [("monolithic", &mono), ("progressive_cancel", &prog)] {
            rows.push(format!(
                concat!(
                    "{{\"transport\": \"{}\", \"scenario\": \"{}\", ",
                    "\"clients\": {}, \"reqs_per_client\": {}, \"completed\": {}, ",
                    "\"tolerance\": {}, \"bytes_out\": {}, \"planes_sent\": {}, ",
                    "\"cancels\": {}, \"partial_responses\": {}, ",
                    "\"max_error_bound\": {:.6}, \"p50_ms\": {:.6}, ",
                    "\"p95_ms\": {:.6}, \"p99_ms\": {:.6}, \"elapsed_s\": {:.6}}}"
                ),
                transport,
                scenario,
                clients,
                reqs_per_client,
                run.completed,
                if scenario == "monolithic" {
                    "null".to_string()
                } else {
                    format!("{tolerance}")
                },
                run.bytes_out,
                run.planes_sent,
                run.cancels,
                run.partials,
                run.max_bound,
                run.latency.quantile(0.50) * 1e3,
                run.latency.quantile(0.95) * 1e3,
                run.latency.quantile(0.99) * 1e3,
                run.elapsed_s,
            ));
        }
    }
    let mut out = String::new();
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    ");
        out.push_str(r);
        out.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    out
}

// ---------------------------------------------------------------------
// Elastic sharding: static vs stealing vs split/merge under Zipf skew
// ---------------------------------------------------------------------

/// Zipf exponent of the elastic workload's shape popularity: a mild
/// real-traffic skew — the top shape draws ~31% of arrivals, the top
/// four ~63% — which lands disproportionately on whichever shards the
/// FNV placement happens to give the popular shapes.
const ZIPF_S: f64 = 1.1;

/// Seeded open-loop stream whose shape popularity is Zipf(`s`) over
/// the shared pool (rank k drawn with probability proportional to
/// `1/(k+1)^s`), priorities mixed. Same arrival process as [`stream`],
/// different popularity law: this is the imbalance generator the
/// elastic controller is benched against.
fn zipf_stream(n_reqs: usize, rate_hz: f64, s: f64) -> Vec<(f64, DecomposeRequest)> {
    let pool = shape_pool();
    let weights: Vec<f64> = (0..pool.len())
        .map(|k| 1.0 / ((k + 1) as f64).powf(s))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut rng = SplitMix64(SEED ^ 0xe1a5_71c5);
    let mut t = 0.0;
    let mut out = Vec::with_capacity(n_reqs);
    for _ in 0..n_reqs {
        t += -rng.unit_f64().ln() / rate_hz;
        // Inverse-CDF sample of the Zipf rank.
        let mut u = rng.unit_f64() * total;
        let mut rank = pool.len() - 1;
        for (k, w) in weights.iter().enumerate() {
            if u < *w {
                rank = k;
                break;
            }
            u -= *w;
        }
        let (size, bank, levels) = pool[rank].clone();
        let priority = Priority::ALL[(rng.next_u64() % 3) as usize];
        let req = DecomposeRequest::new(image(size, rng.next_u64() % 13), bank, levels)
            .with_priority(priority);
        out.push((t, req));
    }
    out
}

/// The elastic comparison grid: one static baseline and two controller
/// modes over the identical Zipf stream. Thresholds are scaled to the
/// simulator's microsecond-level service times (the policy defaults
/// target live wall-clock costs).
fn elastic_scenarios() -> Vec<(&'static str, Option<ElasticPolicy>)> {
    let stealing = ElasticPolicy {
        min_gap_s: 40e-6,
        steal_gap_s: 50e-6,
        ..ElasticPolicy::stealing()
    };
    let split_merge = ElasticPolicy {
        min_gap_s: 40e-6,
        steal_gap_s: 50e-6,
        split_backlog_s: 150e-6,
        merge_backlog_s: 30e-6,
        ..ElasticPolicy::split_merge(2)
    };
    vec![
        ("static", None),
        ("stealing", Some(stealing)),
        ("split_merge", Some(split_merge)),
    ]
}

struct ElasticCell {
    scenario: &'static str,
    requests: usize,
    rate_hz: f64,
    reserve: usize,
    report: SimReport,
}

impl ElasticCell {
    fn shed(&self) -> u64 {
        self.report.metrics.rejected(RejectKind::Shed)
    }

    fn imbalance_pct(&self) -> f64 {
        self.report
            .metrics
            .budget_report()
            .expect("completed work yields a budget report")
            .imbalance_pct()
    }

    fn p_ms(&self, q: f64) -> f64 {
        self.report.metrics.latency_quantile(q) * 1e3
    }

    fn json(&self) -> String {
        let m = &self.report.metrics;
        format!(
            concat!(
                "{{\"scenario\": \"{}\", \"requests\": {}, \"rate_hz\": {}, ",
                "\"zipf_s\": {}, \"shards\": {}, \"reserve\": {}, ",
                "\"accepted\": {}, \"completed\": {}, \"shed\": {}, ",
                "\"stolen\": {}, \"splits\": {}, \"merges\": {}, \"actions\": {}, ",
                "\"imbalance_pct\": {:.3}, \"p50_ms\": {:.6}, \"p95_ms\": {:.6}, ",
                "\"p99_ms\": {:.6}, \"throughput_hz\": {:.3}, \"makespan_s\": {:.9}}}"
            ),
            self.scenario,
            self.requests,
            self.rate_hz,
            ZIPF_S,
            ELASTIC_SHARDS,
            self.reserve,
            m.accepted(),
            m.completed(),
            self.shed(),
            m.stolen(),
            m.splits(),
            m.merges(),
            self.report.actions.len(),
            self.imbalance_pct(),
            self.p_ms(0.50),
            self.p_ms(0.95),
            self.p_ms(0.99),
            self.report.throughput(),
            self.report.makespan_s,
        )
    }
}

/// Base shard count of every elastic scenario (reserve slots extra).
const ELASTIC_SHARDS: usize = 4;

fn elastic_sweep(n_reqs: usize, rate_hz: f64) -> Vec<ElasticCell> {
    let cost = CostModel::default();
    let mut cells = Vec::new();
    for (scenario, policy) in elastic_scenarios() {
        let reserve = policy.as_ref().map_or(0, |p| p.reserve);
        let mut cfg = ServiceConfig::default()
            .with_shards(ELASTIC_SHARDS)
            .with_queue_capacity(64);
        if let Some(policy) = policy {
            cfg = cfg.with_elastic(policy);
        }
        let report = run_sim(&cfg, &cost, zipf_stream(n_reqs, rate_hz, ZIPF_S));
        let cell = ElasticCell {
            scenario,
            requests: n_reqs,
            rate_hz,
            reserve,
            report,
        };
        eprintln!(
            "elastic {scenario:<12} completed={:<4} stolen={:<3} splits={} merges={} \
             imbalance={:.1}% p95={:.3}ms",
            cell.report.metrics.completed(),
            cell.report.metrics.stolen(),
            cell.report.metrics.splits(),
            cell.report.metrics.merges(),
            cell.imbalance_pct(),
            cell.p_ms(0.95),
        );
        cells.push(cell);
    }
    cells
}

/// Elastic acceptance criteria:
/// * exactly-once: every request terminates, completions match the Ok
///   count, the admission books balance despite migration;
/// * both controller modes actually act (steals > 0; splits and merges
///   > 0 for split/merge);
/// * both controller modes beat the static layout on imbalance, and
///   hold the matched-set p95 at least even under the same skew.
fn assert_elastic_coverage(cells: &[ElasticCell]) {
    let find = |name: &str| -> &ElasticCell {
        cells
            .iter()
            .find(|c| c.scenario == name)
            .expect("scenario present in the elastic grid")
    };
    for cell in cells {
        assert_eq!(
            cell.report.outcomes.len(),
            cell.requests,
            "{}: every request must terminate exactly once",
            cell.scenario
        );
        let ok = cell.report.outcomes.iter().filter(|o| o.is_ok()).count() as u64;
        assert_eq!(
            ok,
            cell.report.metrics.completed(),
            "{}: completions must match the outcome log",
            cell.scenario
        );
        assert_eq!(
            cell.report.metrics.accepted(),
            ok + cell.shed(),
            "{}: migration must be counter-neutral in the books",
            cell.scenario
        );
    }
    let stat = find("static");
    assert_eq!(stat.report.metrics.stolen(), 0);
    assert!(stat.report.actions.is_empty());
    for name in ["stealing", "split_merge"] {
        let ela = find(name);
        assert!(
            ela.report.metrics.stolen() > 0,
            "{name}: the Zipf skew must trigger steals"
        );
        assert!(
            ela.imbalance_pct() < stat.imbalance_pct(),
            "{name}: imbalance {:.2}% must undercut static {:.2}%",
            ela.imbalance_pct(),
            stat.imbalance_pct()
        );
        let (stat_p95, ela_p95) = matched_p95(&stat.report, &ela.report);
        assert!(
            ela_p95 <= stat_p95,
            "{name}: matched-set p95 {:.4}ms must not regress static {:.4}ms",
            ela_p95 * 1e3,
            stat_p95 * 1e3
        );
    }
    let sm = find("split_merge");
    assert!(
        sm.report.metrics.splits() > 0,
        "split_merge: the hot shard must split onto a reserve"
    );
    assert!(
        sm.report.metrics.merges() > 0,
        "split_merge: drained reserves must retire"
    );
}

fn render(
    n_reqs: usize,
    cells: &[Cell],
    chaos: &[ChaosCell],
    transport: &[TransportCell],
    progressive: &[ProgressiveCell],
    elastic: &[ElasticCell],
) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"wserv_load\",\n");
    out.push_str("  \"unit\": \"virtual_seconds\",\n");
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"requests_per_cell\": {n_reqs},\n"));
    out.push_str(&format!("  \"shape_pool\": {},\n", shape_pool().len()));
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&c.json());
        out.push_str(if i + 1 == cells.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"chaos_requests_per_cell\": {},\n",
        chaos.first().map_or(0, |c| c.requests)
    ));
    out.push_str("  \"chaos_results\": [\n");
    for (i, c) in chaos.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&c.json());
        out.push_str(if i + 1 == chaos.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"transport_results\": [\n");
    for (i, c) in transport.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&c.json());
        out.push_str(if i + 1 == transport.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"progressive_results\": [\n");
    for (i, c) in progressive.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&c.json());
        out.push_str(if i + 1 == progressive.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"elastic_results\": [\n");
    for (i, c) in elastic.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&c.json());
        out.push_str(if i + 1 == elastic.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// p95 latency of each run over the *matched set* of request ids that
/// completed in both. Under overload the two systems shed different
/// victims, so comparing raw completed-set quantiles confounds speed
/// with survivorship (the slower system completes a faster-skewed
/// subset); the matched set removes that bias.
fn matched_p95(a: &SimReport, b: &SimReport) -> (f64, f64) {
    let mut ha = wserv::Histogram::default();
    let mut hb = wserv::Histogram::default();
    for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
        if let (Ok(rx), Ok(ry)) = (x, y) {
            ha.record(rx.latency_s());
            hb.record(ry.latency_s());
        }
    }
    (ha.quantile(0.95), hb.quantile(0.95))
}

/// Acceptance criteria, checked on every run:
/// * at the top arrival rate, cache-on strictly beats cache-off on
///   matched-set p95 at equal shard count and batching;
/// * at the top arrival rate, batching strictly raises saturation
///   throughput over batch-1 at equal shard count and caching.
fn assert_dominance(cells: &[Cell], top_rate: f64) {
    let find = |shards: usize, cache: usize, batch: usize| -> &Cell {
        cells
            .iter()
            .find(|c| {
                c.shards == shards
                    && c.cache_capacity == cache
                    && c.max_batch == batch
                    && c.rate_hz == top_rate
            })
            .expect("cell present in the grid")
    };
    let shard_grid: Vec<usize> = {
        let mut v: Vec<usize> = cells.iter().map(|c| c.shards).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    for &shards in &shard_grid {
        for &batch in &[1usize, 8] {
            let on = find(shards, 16, batch);
            let off = find(shards, 0, batch);
            let (on_p95, off_p95) = matched_p95(&on.report, &off.report);
            assert!(
                on_p95 < off_p95,
                "cache-on matched-set p95 {:.4}ms must undercut cache-off {:.4}ms \
                 (shards={shards} batch={batch})",
                on_p95 * 1e3,
                off_p95 * 1e3
            );
            assert!(on.report.metrics.cache_hit_rate() > 0.0);
        }
        for &cache in &[0usize, 16] {
            let batched = find(shards, cache, 8);
            let single = find(shards, cache, 1);
            assert!(
                batched.report.throughput() > single.report.throughput(),
                "batch-8 throughput {:.0}/s must beat batch-1 {:.0}/s \
                 (shards={shards} cache={cache})",
                batched.report.throughput(),
                single.report.throughput()
            );
        }
    }
}

fn main() {
    let smoke = std::env::var("WSERV_SMOKE").is_ok_and(|v| v == "1");
    let (n_reqs, shard_grid, rates): (usize, Vec<usize>, Vec<f64>) = if smoke {
        (300, vec![2], vec![20_000.0, 120_000.0])
    } else {
        (1500, vec![1, 4], vec![5_000.0, 20_000.0, 120_000.0])
    };
    let top_rate = *rates.last().expect("non-empty rate grid");

    let chaos_reqs = if smoke { 200 } else { 800 };
    let chaos_rate = 50_000.0;

    let (cl_clients, cl_reqs) = if smoke { (3, 6) } else { (4, 12) };

    let cells = sweep(n_reqs, &shard_grid, &rates);
    assert_dominance(&cells, top_rate);
    let chaos = chaos_sweep(chaos_reqs, chaos_rate);
    assert_chaos_coverage(&chaos);
    let transport = transport_sweep(cl_clients, cl_reqs);
    assert_transport_coverage(&transport);
    let progressive = progressive_sweep(cl_clients, cl_reqs);
    assert_progressive_coverage(&progressive);
    let (elastic_reqs, elastic_rate) = if smoke {
        (400, 220_000.0)
    } else {
        (1200, 220_000.0)
    };
    let elastic = elastic_sweep(elastic_reqs, elastic_rate);
    assert_elastic_coverage(&elastic);
    let report = render(n_reqs, &cells, &chaos, &transport, &progressive, &elastic);

    // Byte-reproducibility is part of the contract: regenerate the
    // whole sweep — chaos, transport, progressive, and elastic rows
    // included — and require the identical document.
    let again = render(
        n_reqs,
        &sweep(n_reqs, &shard_grid, &rates),
        &chaos_sweep(chaos_reqs, chaos_rate),
        &transport_sweep(cl_clients, cl_reqs),
        &progressive_sweep(cl_clients, cl_reqs),
        &elastic_sweep(elastic_reqs, elastic_rate),
    );
    assert_eq!(report, again, "service bench must be byte-reproducible");

    // Live closed-loop comparison: wall-clock rows, appended after the
    // byte-compare. The simulator's failover-under-load row is the
    // prediction the live tails are reported against.
    let prediction = &transport
        .iter()
        .find(|c| c.scenario == "failover_under_load")
        .expect("failover scenario present")
        .report;
    let live = live_rows(cl_clients, cl_reqs, prediction);
    let plive = progressive_live_rows(cl_clients, cl_reqs);
    let report = {
        let tail = "  ]\n}\n";
        let base = report
            .strip_suffix(tail)
            .expect("render ends with the elastic section");
        format!(
            "{base}  ],\n  \"transport_live\": [\n{live}  ],\n  \
             \"progressive_live\": [\n{plive}  ]\n}}\n"
        )
    };

    let path = if smoke {
        "target/BENCH_service_smoke.json"
    } else {
        "BENCH_service.json"
    };
    std::fs::write(path, &report).unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path}");
}
