//! Machine-readable serving benchmark: a seeded open-loop load
//! generator drives the `wserv` discrete-event simulator across an
//! arrival-rate x shard-count x cache x batching grid and writes
//! `BENCH_service.json` in the current directory.
//!
//! Every latency and throughput number is *virtual* (simulated) time:
//! the whole file is a pure function of the seed, and this harness
//! proves it by generating the report twice and comparing the bytes.
//!
//! Run from the repo root with `just serve-bench` (or
//! `cargo run --release -p bench --bin bench_service`). Set
//! `WSERV_SMOKE=1` for the downscaled CI mode, which writes
//! `target/BENCH_service_smoke.json` instead and additionally asserts
//! the acceptance conditions on the smaller grid.

use dwt::{FilterBank, Matrix};
use wserv::sim::{run_sim, CostModel, SimReport};
use wserv::{DecomposeRequest, Priority, RejectKind, ServiceConfig};

const SEED: u64 = 1996; // the paper's year; any fixed seed works

/// SplitMix64 — the same generator `paragon::faults` seeds from.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        // Strictly positive so ln() is finite.
        ((self.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64
    }
}

/// The tenant shape pool: sizes x banks x depths, sixteen plan shapes.
/// The CDF 5/3 and 9/7 entries compile to lifting-kernel plans, so the
/// cache and batch paths exercise both engine kinds under load.
fn shape_pool() -> Vec<(usize, FilterBank, usize)> {
    let haar = FilterBank::haar();
    let d4 = FilterBank::daubechies(4).expect("D4 exists");
    let cdf53 = FilterBank::cdf53();
    let cdf97 = FilterBank::cdf97();
    vec![
        (32, haar.clone(), 1),
        (32, haar.clone(), 2),
        (32, d4.clone(), 1),
        (32, d4.clone(), 2),
        (64, haar.clone(), 1),
        (64, haar, 2),
        (64, d4.clone(), 1),
        (64, d4, 2),
        (32, cdf53.clone(), 1),
        (32, cdf53.clone(), 2),
        (64, cdf53.clone(), 2),
        (96, cdf53, 3),
        (32, cdf97.clone(), 1),
        (64, cdf97.clone(), 2),
        (96, cdf97.clone(), 1),
        (128, cdf97, 3),
    ]
}

fn image(n: usize, salt: u64) -> Matrix {
    Matrix::from_fn(n, n, |r, c| {
        ((r as u64 * 31 + c as u64 * 17 + salt * 7) % 61) as f64 - 30.0
    })
}

/// Seeded open-loop stream: exponential inter-arrivals at `rate_hz`,
/// shapes uniform over the pool, priorities mixed, and a tight deadline
/// on part of the interactive class so the expiry path is exercised.
fn stream(n_reqs: usize, rate_hz: f64) -> Vec<(f64, DecomposeRequest)> {
    let pool = shape_pool();
    let mut rng = SplitMix64(SEED);
    let mut t = 0.0;
    let mut out = Vec::with_capacity(n_reqs);
    for _ in 0..n_reqs {
        t += -rng.unit_f64().ln() / rate_hz;
        let (size, bank, levels) = pool[(rng.next_u64() % pool.len() as u64) as usize].clone();
        let priority = Priority::ALL[(rng.next_u64() % 3) as usize];
        let mut req = DecomposeRequest::new(image(size, rng.next_u64() % 13), bank, levels)
            .with_priority(priority);
        // Loose enough not to censor the p95 comparison at saturation,
        // tight enough that deep overload still trips the expiry path.
        if priority == Priority::Interactive && rng.next_u64().is_multiple_of(2) {
            req = req.with_deadline(t + 5e-3);
        }
        out.push((t, req));
    }
    out
}

struct Cell {
    shards: usize,
    cache_capacity: usize,
    max_batch: usize,
    rate_hz: f64,
    report: SimReport,
}

impl Cell {
    fn p_ms(&self, q: f64) -> f64 {
        self.report.metrics.latency_quantile(q) * 1e3
    }

    fn json(&self) -> String {
        let m = &self.report.metrics;
        let budget = m.budget_report().expect("at least one shard");
        format!(
            concat!(
                "{{\"shards\": {}, \"cache_capacity\": {}, \"max_batch\": {}, ",
                "\"rate_hz\": {}, \"accepted\": {}, \"completed\": {}, ",
                "\"rejected_queue_full\": {}, \"rejected_shed\": {}, ",
                "\"rejected_deadline\": {}, \"cache_hit_rate\": {:.4}, ",
                "\"mean_batch_occupancy\": {:.4}, \"p50_ms\": {:.6}, ",
                "\"p95_ms\": {:.6}, \"p99_ms\": {:.6}, \"throughput_hz\": {:.3}, ",
                "\"makespan_s\": {:.9}, \"useful_pct\": {:.3}, \"imbalance_pct\": {:.3}}}"
            ),
            self.shards,
            self.cache_capacity,
            self.max_batch,
            self.rate_hz,
            m.accepted(),
            m.completed(),
            m.rejected(RejectKind::QueueFull),
            m.rejected(RejectKind::Shed),
            m.rejected(RejectKind::DeadlineExpired),
            m.cache_hit_rate(),
            m.mean_batch_occupancy(),
            self.p_ms(0.50),
            self.p_ms(0.95),
            self.p_ms(0.99),
            self.report.throughput(),
            self.report.makespan_s,
            budget.useful_pct(),
            budget.imbalance_pct(),
        )
    }
}

fn sweep(n_reqs: usize, shard_grid: &[usize], rates: &[f64]) -> Vec<Cell> {
    let cost = CostModel::default();
    let mut cells = Vec::new();
    for &shards in shard_grid {
        for &(cache_capacity, max_batch) in &[(16usize, 8usize), (0, 8), (16, 1), (0, 1)] {
            for &rate_hz in rates {
                let cfg = ServiceConfig::default()
                    .with_shards(shards)
                    .with_queue_capacity(64)
                    .with_cache_capacity(cache_capacity)
                    .with_max_batch(max_batch);
                let report = run_sim(&cfg, &cost, stream(n_reqs, rate_hz));
                let cell = Cell {
                    shards,
                    cache_capacity,
                    max_batch,
                    rate_hz,
                    report,
                };
                eprintln!(
                    "shards={shards} cache={cache_capacity:<2} batch={max_batch} \
                     rate={rate_hz:<8} p95={:.3}ms tput={:.0}/s hit={:.2}",
                    cell.p_ms(0.95),
                    cell.report.throughput(),
                    cell.report.metrics.cache_hit_rate()
                );
                cells.push(cell);
            }
        }
    }
    cells
}

fn render(n_reqs: usize, cells: &[Cell]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"wserv_load\",\n");
    out.push_str("  \"unit\": \"virtual_seconds\",\n");
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"requests_per_cell\": {n_reqs},\n"));
    out.push_str(&format!("  \"shape_pool\": {},\n", shape_pool().len()));
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&c.json());
        out.push_str(if i + 1 == cells.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// p95 latency of each run over the *matched set* of request ids that
/// completed in both. Under overload the two systems shed different
/// victims, so comparing raw completed-set quantiles confounds speed
/// with survivorship (the slower system completes a faster-skewed
/// subset); the matched set removes that bias.
fn matched_p95(a: &SimReport, b: &SimReport) -> (f64, f64) {
    let mut ha = wserv::Histogram::default();
    let mut hb = wserv::Histogram::default();
    for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
        if let (Ok(rx), Ok(ry)) = (x, y) {
            ha.record(rx.latency_s());
            hb.record(ry.latency_s());
        }
    }
    (ha.quantile(0.95), hb.quantile(0.95))
}

/// Acceptance criteria, checked on every run:
/// * at the top arrival rate, cache-on strictly beats cache-off on
///   matched-set p95 at equal shard count and batching;
/// * at the top arrival rate, batching strictly raises saturation
///   throughput over batch-1 at equal shard count and caching.
fn assert_dominance(cells: &[Cell], top_rate: f64) {
    let find = |shards: usize, cache: usize, batch: usize| -> &Cell {
        cells
            .iter()
            .find(|c| {
                c.shards == shards
                    && c.cache_capacity == cache
                    && c.max_batch == batch
                    && c.rate_hz == top_rate
            })
            .expect("cell present in the grid")
    };
    let shard_grid: Vec<usize> = {
        let mut v: Vec<usize> = cells.iter().map(|c| c.shards).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    for &shards in &shard_grid {
        for &batch in &[1usize, 8] {
            let on = find(shards, 16, batch);
            let off = find(shards, 0, batch);
            let (on_p95, off_p95) = matched_p95(&on.report, &off.report);
            assert!(
                on_p95 < off_p95,
                "cache-on matched-set p95 {:.4}ms must undercut cache-off {:.4}ms \
                 (shards={shards} batch={batch})",
                on_p95 * 1e3,
                off_p95 * 1e3
            );
            assert!(on.report.metrics.cache_hit_rate() > 0.0);
        }
        for &cache in &[0usize, 16] {
            let batched = find(shards, cache, 8);
            let single = find(shards, cache, 1);
            assert!(
                batched.report.throughput() > single.report.throughput(),
                "batch-8 throughput {:.0}/s must beat batch-1 {:.0}/s \
                 (shards={shards} cache={cache})",
                batched.report.throughput(),
                single.report.throughput()
            );
        }
    }
}

fn main() {
    let smoke = std::env::var("WSERV_SMOKE").is_ok_and(|v| v == "1");
    let (n_reqs, shard_grid, rates): (usize, Vec<usize>, Vec<f64>) = if smoke {
        (300, vec![2], vec![20_000.0, 120_000.0])
    } else {
        (1500, vec![1, 4], vec![5_000.0, 20_000.0, 120_000.0])
    };
    let top_rate = *rates.last().expect("non-empty rate grid");

    let cells = sweep(n_reqs, &shard_grid, &rates);
    assert_dominance(&cells, top_rate);
    let report = render(n_reqs, &cells);

    // Byte-reproducibility is part of the contract: regenerate the
    // whole sweep and require the identical document.
    let again = render(n_reqs, &sweep(n_reqs, &shard_grid, &rates));
    assert_eq!(report, again, "service bench must be byte-reproducible");

    let path = if smoke {
        "target/BENCH_service_smoke.json"
    } else {
        "BENCH_service.json"
    };
    std::fs::write(path, &report).unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path}");
}
